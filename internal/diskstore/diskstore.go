// Package diskstore is the crash-safe persistent tier under the
// session's bounded in-memory store: a content-addressed cache of
// encoded analysis artifacts (package artifact records) on local disk.
//
// Durability protocol: every publish is write-to-temp → fsync → rename
// into place → fsync the directory, all within one filesystem, so a
// kill -9 at any instant leaves either the old state or the new state —
// never a readable-but-wrong entry. The directory is the source of
// truth: Open rescans it, and the manifest is only an advisory
// access-order hint (corrupt or missing, it is ignored).
//
// Self-healing read path: every Get re-verifies the record container
// (magic, versions, kind, key, CRC-32C). Anything that fails — bit rot,
// truncation, version skew after an upgrade, a stray file — is moved to
// a quarantine directory, counted, and reported as a miss, so callers
// transparently rebuild. Corruption is never served and never surfaces
// as an error to a client.
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"thinslice/internal/artifact"
)

const (
	objectsDir    = "objects"
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
	manifestName  = "manifest.json"
	entryExt      = ".art"
)

// Op identifies a disk operation to the fault-injection hook.
type Op string

// Disk operations the IOHook observes.
const (
	OpRead  Op = "read"  // reading a published entry
	OpWrite Op = "write" // writing a temp file before publish
)

// IOHook intercepts disk I/O for fault injection: it may transform the
// data (bit-flips, short reads/torn writes) and/or return an error
// (EIO). Production caches run with no hook installed.
type IOHook func(op Op, path string, data []byte) ([]byte, error)

var ioHook atomic.Pointer[IOHook]

// SetIOHook installs h (nil clears) and returns a func restoring the
// previous hook. Test-only.
func SetIOHook(h IOHook) (restore func()) {
	var p *IOHook
	if h != nil {
		p = &h
	}
	old := ioHook.Swap(p)
	return func() { ioHook.Store(old) }
}

func applyHook(op Op, path string, data []byte) ([]byte, error) {
	if h := ioHook.Load(); h != nil {
		return (*h)(op, path, data)
	}
	return data, nil
}

// Stats are the disk tier's counters. Sizes and entry counts describe
// the current state; the rest are monotonic since Open.
type Stats struct {
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	MaxBytes     int64 `json:"max_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	PutErrors    int64 `json:"put_errors"`
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	Quarantines  int64 `json:"quarantines"`
}

// entry is one published cache file.
type entry struct {
	key  string
	size int64
	seq  int64 // LRU clock: higher = more recently used
}

// Cache is a bounded, content-addressed, crash-safe disk cache. All
// methods are safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int64
	seq     int64
	stats   Stats
}

// Open opens (creating if needed) a cache rooted at dir, bounded to
// maxBytes of published entries (0 means 256 MiB). Leftover temp files
// from a crashed writer are removed; the objects directory is scanned
// as the source of truth, with the manifest consulted only to restore
// the access order.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	for _, sub := range []string{objectsDir, tmpDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	// Temp files are, by protocol, unpublished — a crashed writer's
	// leftovers are garbage regardless of content.
	if tmps, err := os.ReadDir(filepath.Join(dir, tmpDir)); err == nil {
		for _, de := range tmps {
			os.Remove(filepath.Join(dir, tmpDir, de.Name()))
		}
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, entries: make(map[string]*entry)}

	des, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	order := c.loadManifest()
	rank := make(map[string]int, len(order))
	for i, k := range order {
		rank[k] = i + 1
	}
	var scanned []*entry
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		scanned = append(scanned, &entry{key: strings.TrimSuffix(name, entryExt), size: info.Size()})
	}
	// Restore access order: manifest rank first (oldest first), then
	// unknown entries by name for determinism.
	sort.Slice(scanned, func(i, j int) bool {
		ri, rj := rank[scanned[i].key], rank[scanned[j].key]
		if ri != rj {
			return ri < rj
		}
		return scanned[i].key < scanned[j].key
	})
	for _, e := range scanned {
		c.seq++
		e.seq = c.seq
		c.entries[e.key] = e
		c.bytes += e.size
	}
	c.evictLocked()
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) objectPath(key string) string {
	return filepath.Join(c.dir, objectsDir, key+entryExt)
}

// Get returns the verified payload stored under (kind, key), or
// ok=false on a miss. A file that exists but fails verification is
// quarantined and reported as a miss.
func (c *Cache) Get(kind, key string) ([]byte, bool) {
	path := c.objectPath(key)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err == nil {
		data, err = applyHook(OpRead, path, data)
	}
	if err != nil {
		// Unreadable entries cannot be verified; treat as corrupt.
		c.quarantine(key, fmt.Sprintf("read: %v", err))
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	payload, err := artifact.Decode(data, kind, key)
	if err != nil {
		c.quarantine(key, err.Error())
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.seq++
		e.seq = c.seq
	}
	c.stats.Hits++
	c.mu.Unlock()
	return payload, true
}

// Keys returns the keys of every published entry, sorted. The
// snapshot may be stale by the time it is used (entries evict
// concurrently); callers must tolerate a later miss.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// GetRecord returns the raw, verified container record stored under
// key along with its kind — the exact bytes a peer can re-verify
// end-to-end (cluster artifact fetch and warm handoff use this).
// Corrupt records are quarantined and reported as a miss, like Get.
// The read does not bump the LRU clock and is not counted as a hit:
// a drain handoff sweeping every entry must not distort access stats.
func (c *Cache) GetRecord(key string) (data []byte, kind string, ok bool) {
	path := c.objectPath(key)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		return nil, "", false
	}
	data, err := os.ReadFile(path)
	if err == nil {
		data, err = applyHook(OpRead, path, data)
	}
	if err != nil {
		c.quarantine(key, fmt.Sprintf("read: %v", err))
		return nil, "", false
	}
	kind, recKey, err := artifact.Inspect(data)
	if err != nil || recKey != key {
		if err == nil {
			err = fmt.Errorf("record keyed %q stored under %q", recKey, key)
		}
		c.quarantine(key, err.Error())
		return nil, "", false
	}
	return data, kind, true
}

// Put publishes payload under (kind, key) with the atomic
// write-temp-fsync-rename protocol, then evicts least-recently-used
// entries if the cache exceeds its byte budget. Put failures are
// counted and swallowed into the returned error; the cache is never
// left with a partially written published entry.
func (c *Cache) Put(kind, key string, payload []byte) error {
	if err := c.put(kind, key, payload); err != nil {
		c.count(func(s *Stats) { s.PutErrors++ })
		return fmt.Errorf("diskstore: put %s/%s: %w", kind, key, err)
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

func (c *Cache) put(kind, key string, payload []byte) error {
	rec := artifact.Encode(kind, key, payload)
	tmp, err := os.CreateTemp(filepath.Join(c.dir, tmpDir), key+".*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	// Any failure below must leave no temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	data, err := applyHook(OpWrite, tmpPath, rec)
	if err != nil {
		// A torn write leaves partial bytes in the temp file — exactly
		// what a real mid-write crash leaves — but never publishes.
		tmp.Write(data)
		return fail(err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	path := c.objectPath(key)
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	syncDir(filepath.Dir(path))

	size := int64(len(data))
	c.mu.Lock()
	if old := c.entries[key]; old != nil {
		c.bytes -= old.size
	}
	c.seq++
	c.entries[key] = &entry{key: key, size: size, seq: c.seq}
	c.bytes += size
	c.evictLocked()
	manifest := c.manifestLocked()
	c.mu.Unlock()
	c.writeManifest(manifest)
	return nil
}

// syncDir best-effort fsyncs a directory so the rename itself is
// durable. Filesystems that do not support directory fsync are fine:
// the entry either survives or is absent, never torn.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// evictLocked drops least-recently-used entries until within budget.
func (c *Cache) evictLocked() {
	if c.bytes <= c.maxBytes {
		return
	}
	var es []*entry
	for _, e := range c.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	for _, e := range es {
		if c.bytes <= c.maxBytes {
			break
		}
		os.Remove(c.objectPath(e.key))
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
		c.stats.EvictedBytes += e.size
	}
}

// quarantine moves a corrupt entry out of the objects directory. The
// file is preserved under quarantine/ for postmortem inspection.
func (c *Cache) quarantine(key, reason string) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.bytes -= e.size
		delete(c.entries, key)
	}
	c.stats.Quarantines++
	c.mu.Unlock()
	src := c.objectPath(key)
	dst := filepath.Join(c.dir, quarantineDir, key+entryExt)
	if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		// Rename can fail on exotic setups; removal still protects the
		// read path from re-serving the corrupt bytes.
		os.Remove(src)
	}
}

// Quarantine removes the entry stored under key as corrupt. The
// session layer calls this when a record's *payload* fails structural
// decoding — the container was intact but the content was not usable.
func (c *Cache) Quarantine(kind, key, reason string) {
	_ = kind
	_ = reason
	c.quarantine(key, reason)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	return s
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// --- manifest (advisory access-order hint) ---

type manifest struct {
	// Keys in access order, oldest first.
	Order []string `json:"order"`
}

func (c *Cache) manifestLocked() manifest {
	var es []*entry
	for _, e := range c.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	m := manifest{Order: make([]string, len(es))}
	for i, e := range es {
		m.Order[i] = e.key
	}
	return m
}

// writeManifest atomically replaces the manifest. Failures are ignored:
// the manifest is purely advisory.
func (c *Cache) writeManifest(m manifest) {
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Join(c.dir, tmpDir), "manifest.*")
	if err != nil {
		return
	}
	tmpPath := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	tmp.Close()
	if err := os.Rename(tmpPath, filepath.Join(c.dir, manifestName)); err != nil {
		os.Remove(tmpPath)
	}
}

func (c *Cache) loadManifest() []string {
	data, err := os.ReadFile(filepath.Join(c.dir, manifestName))
	if err != nil {
		return nil
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil // corrupt manifest: directory scan order stands
	}
	return m.Order
}

// --- maintenance (thinslice cache fsck / gc) ---

// FsckEntry describes one verified cache entry.
type FsckEntry struct {
	Key  string
	Kind string
	Size int64
	Err  error // nil when the record verified cleanly
}

// Fsck verifies the container of every published entry. With repair
// set, corrupt entries are quarantined; otherwise they are only
// reported. The returned slice is sorted by key.
func (c *Cache) Fsck(repair bool) []FsckEntry {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	out := make([]FsckEntry, 0, len(keys))
	for _, key := range keys {
		fe := FsckEntry{Key: key}
		data, err := os.ReadFile(c.objectPath(key))
		if err == nil {
			fe.Size = int64(len(data))
			var kind, recKey string
			kind, recKey, err = artifact.Inspect(data)
			if err == nil && recKey != key {
				err = fmt.Errorf("record keyed %q stored under %q", recKey, key)
			}
			fe.Kind = kind
		}
		if err != nil {
			fe.Err = err
			if repair {
				c.quarantine(key, err.Error())
			}
		}
		out = append(out, fe)
	}
	return out
}

// GC removes quarantined files and stray temp files, and re-applies the
// byte budget. It returns the number of files removed.
func (c *Cache) GC() int {
	removed := 0
	for _, sub := range []string{quarantineDir, tmpDir} {
		dir := filepath.Join(c.dir, sub)
		des, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, de := range des {
			if os.Remove(filepath.Join(dir, de.Name())) == nil {
				removed++
			}
		}
	}
	c.mu.Lock()
	before := len(c.entries)
	c.evictLocked()
	removed += before - len(c.entries)
	manifest := c.manifestLocked()
	c.mu.Unlock()
	c.writeManifest(manifest)
	return removed
}
