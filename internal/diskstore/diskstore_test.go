package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"thinslice/internal/artifact"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("artifact bytes")
	if err := c.Put("ir", testKey(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("ir", testKey(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("ir", testKey(2)); ok {
		t.Fatal("Get of absent key succeeded")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWarmReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put("pts", testKey(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh process over the same directory sees every entry.
	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, ok := c2.Get("pts", testKey(i))
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("entry %d: %q, %v", i, got, ok)
		}
	}
	if s := c2.Stats(); s.Entries != 5 || s.Hits != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Records have container overhead; size the budget so roughly three
	// 1 KiB payloads fit.
	c, err := Open(dir, 3500)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 3; i++ {
		if err := c.Put("ir", testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 is now the LRU.
	if _, ok := c.Get("ir", testKey(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := c.Put("ir", testKey(3), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("ir", testKey(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 3} {
		if _, ok := c.Get("ir", testKey(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	if s := c.Stats(); s.Evictions == 0 || s.EvictedBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvictionOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 1024)
	for i := 0; i < 3; i++ {
		if err := c.Put("ir", testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with a budget that only fits two entries: the manifest's
	// access order makes entry 0 (oldest) the one to go.
	c2, err := Open(dir, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("ir", testKey(0)); ok {
		t.Fatal("oldest entry survived reopen under a smaller budget")
	}
	for _, i := range []int{1, 2} {
		if _, ok := c2.Get("ir", testKey(i)); !ok {
			t.Fatalf("entry %d lost on reopen", i)
		}
	}
}

func TestCorruptionQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("sdg", testKey(7), []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip one bit of the published file, as bit rot would.
	path := filepath.Join(dir, objectsDir, testKey(7)+entryExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("sdg", testKey(7)); ok {
		t.Fatal("corrupt entry served")
	}
	s := c.Stats()
	if s.Quarantines != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The corrupt file was preserved under quarantine/.
	qs, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qs) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qs), err)
	}
	// Subsequent gets are plain misses, not repeated quarantines.
	if _, ok := c.Get("sdg", testKey(7)); ok {
		t.Fatal("entry resurrected")
	}
	if s := c.Stats(); s.Quarantines != 1 {
		t.Fatalf("repeat get re-quarantined: %+v", s)
	}
}

func TestVersionSkewQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft a valid record of a future codec version: bump the
	// codec byte and re-checksum, as a newer build would have written.
	rec := artifact.Encode("ir", testKey(9), []byte("future payload"))
	rec = rec[:len(rec)-4]
	rec[len("TSART\x00")+1]++ // codec version byte
	sum := crc32Castagnoli(rec)
	rec = append(rec, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	path := filepath.Join(dir, objectsDir, testKey(9)+entryExt)
	if err := os.WriteFile(path, rec, 0o644); err != nil {
		t.Fatal(err)
	}
	// The scan-based index only sees the file on reopen.
	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("ir", testKey(9)); ok {
		t.Fatal("version-skewed entry served")
	}
	if s := c2.Stats(); s.Quarantines != 1 {
		t.Fatalf("stats = %+v", s)
	}
	_ = c
}

func TestCrashedTempFilesCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-write: partial bytes in tmp/.
	torn := filepath.Join(dir, tmpDir, "deadbeef.12345")
	if err := os.WriteFile(torn, []byte("partial rec"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn temp file survived reopen")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("torn write became an entry: %+v", s)
	}
}

func TestCorruptManifestIgnored(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("ir", testKey(1), []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("ir", testKey(1)); !ok {
		t.Fatal("entry lost to a corrupt manifest")
	}
}

func TestIOHookFaults(t *testing.T) {
	t.Run("eio-on-write", func(t *testing.T) {
		c, err := Open(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		restore := SetIOHook(func(op Op, path string, data []byte) ([]byte, error) {
			if op == OpWrite {
				return nil, errors.New("injected EIO")
			}
			return data, nil
		})
		defer restore()
		if err := c.Put("ir", testKey(1), []byte("p")); err == nil {
			t.Fatal("Put succeeded under injected EIO")
		}
		restore()
		if _, ok := c.Get("ir", testKey(1)); ok {
			t.Fatal("failed Put left a readable entry")
		}
		if s := c.Stats(); s.PutErrors != 1 || s.Entries != 0 {
			t.Fatalf("stats = %+v", s)
		}
	})
	t.Run("bit-flip-on-write", func(t *testing.T) {
		c, err := Open(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		restore := SetIOHook(func(op Op, path string, data []byte) ([]byte, error) {
			if op == OpWrite {
				flipped := append([]byte(nil), data...)
				flipped[len(flipped)/3] ^= 0x40
				return flipped, nil
			}
			return data, nil
		})
		// The flipped record publishes "successfully"...
		if err := c.Put("ir", testKey(2), []byte("payload")); err != nil {
			t.Fatal(err)
		}
		restore()
		// ...but the read path detects and quarantines it.
		if _, ok := c.Get("ir", testKey(2)); ok {
			t.Fatal("bit-flipped record served")
		}
		if s := c.Stats(); s.Quarantines != 1 {
			t.Fatalf("stats = %+v", s)
		}
	})
	t.Run("short-read", func(t *testing.T) {
		c, err := Open(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put("ir", testKey(3), []byte("payload")); err != nil {
			t.Fatal(err)
		}
		restore := SetIOHook(func(op Op, path string, data []byte) ([]byte, error) {
			if op == OpRead {
				return data[:len(data)/2], nil
			}
			return data, nil
		})
		defer restore()
		if _, ok := c.Get("ir", testKey(3)); ok {
			t.Fatal("short read served")
		}
		if s := c.Stats(); s.Quarantines != 1 {
			t.Fatalf("stats = %+v", s)
		}
	})
}

func TestFsck(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put("ir", testKey(i), []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one entry on disk.
	path := filepath.Join(dir, objectsDir, testKey(1)+entryExt)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	report := c.Fsck(false)
	bad := 0
	for _, fe := range report {
		if fe.Err != nil {
			bad++
			if fe.Key != testKey(1) {
				t.Fatalf("wrong entry flagged: %s", fe.Key)
			}
		} else if fe.Kind != "ir" {
			t.Fatalf("entry %s kind = %q", fe.Key, fe.Kind)
		}
	}
	if bad != 1 {
		t.Fatalf("fsck found %d corrupt entries, want 1", bad)
	}
	// Without repair the entry is still indexed; with repair it is
	// quarantined.
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("fsck without repair changed the index: %+v", s)
	}
	c.Fsck(true)
	if s := c.Stats(); s.Entries != 2 || s.Quarantines != 1 {
		t.Fatalf("fsck repair: %+v", s)
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("ir", testKey(1), []byte("p")); err != nil {
		t.Fatal(err)
	}
	// Force a quarantined file and a stray temp file.
	path := filepath.Join(dir, objectsDir, testKey(1)+entryExt)
	os.WriteFile(path, []byte("bad"), 0o644)
	c.Get("ir", testKey(1))
	os.WriteFile(filepath.Join(dir, tmpDir, "stray.tmp"), []byte("x"), 0o644)
	if n := c.GC(); n != 2 {
		t.Fatalf("GC removed %d files, want 2", n)
	}
	qs, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
	ts, _ := os.ReadDir(filepath.Join(dir, tmpDir))
	if len(qs) != 0 || len(ts) != 0 {
		t.Fatalf("GC left %d quarantined, %d temp files", len(qs), len(ts))
	}
}

func TestStrayFilesIgnoredOnScan(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, objectsDir, "README.txt"), []byte("hello"), 0o644)
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stray file indexed: %+v", s)
	}
}

// crc32Castagnoli mirrors the artifact container's checksum for the
// version-skew test.
func crc32Castagnoli(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

func TestKeysSnapshot(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Keys(); len(got) != 0 {
		t.Fatalf("empty cache Keys = %v", got)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put("ir", testKey(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Keys()
	if len(got) != 4 {
		t.Fatalf("Keys = %v, want 4 sorted keys", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Keys not sorted: %v", got)
		}
	}
}

func TestGetRecordRoundTripsContainer(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sdg payload bytes")
	if err := c.Put("sdg", testKey(7), payload); err != nil {
		t.Fatal(err)
	}
	rec, kind, ok := c.GetRecord(testKey(7))
	if !ok || kind != "sdg" {
		t.Fatalf("GetRecord ok=%v kind=%q", ok, kind)
	}
	// The record is the full verified container: a peer can Decode it
	// end-to-end and recover the payload byte-for-byte.
	got, err := artifact.Decode(rec, "sdg", testKey(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Missing keys are a plain miss.
	if _, _, ok := c.GetRecord(testKey(8)); ok {
		t.Fatal("GetRecord of absent key succeeded")
	}
	// GetRecord must not distort access stats: no hits counted.
	if s := c.Stats(); s.Hits != 0 {
		t.Fatalf("GetRecord counted hits: %+v", s)
	}
}

func TestGetRecordQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("ir", testKey(3), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the published file.
	path := filepath.Join(dir, "objects", testKey(3)+".art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.GetRecord(testKey(3)); ok {
		t.Fatal("corrupt record served")
	}
	if s := c.Stats(); s.Quarantines != 1 || s.Entries != 0 {
		t.Fatalf("stats after corrupt GetRecord = %+v", s)
	}
	// The corrupt file is out of the objects directory.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still published: %v", err)
	}
}
