package dataflow_test

import (
	"bytes"
	"testing"

	"thinslice/internal/budget"
	"thinslice/internal/dataflow"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// world bundles the upstream artifacts a solve needs.
type world struct {
	in   dataflow.Inputs
	sess *session.Session
}

func buildWorld(t *testing.T, src string, opts ...session.Option) *world {
	t.Helper()
	s := session.Open(map[string]string{"main.mj": src}, opts...)
	prog, err := s.Prog()
	if err != nil {
		t.Fatalf("Prog: %v", err)
	}
	pts, err := s.PointsTo()
	if err != nil {
		t.Fatalf("PointsTo: %v", err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	cg, err := s.CHA()
	if err != nil {
		t.Fatalf("CHA: %v", err)
	}
	return &world{in: dataflow.Inputs{Prog: prog, Pts: pts, Graph: g, CHA: cg}, sess: s}
}

func solve(t *testing.T, w *world, p dataflow.Problem, bud *budget.Budget) *dataflow.Results {
	t.Helper()
	res, err := dataflow.Solve(w.in, p, bud)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

// instrsAtLine returns the instructions of user code at the given line.
func instrsAtLine(prog *ir.Program, line int) []ir.Instr {
	var out []ir.Instr
	for _, m := range prog.Methods {
		m.Instrs(func(ins ir.Instr) {
			if p := ins.Pos(); p.Line == line && p.File != "<prelude>" {
				out = append(out, ins)
			}
		})
	}
	return out
}

// callAtLine returns the unique call instruction at a source line.
func callAtLine(t *testing.T, prog *ir.Program, line int) *ir.Call {
	t.Helper()
	for _, ins := range instrsAtLine(prog, line) {
		if c, ok := ins.(*ir.Call); ok {
			return c
		}
	}
	t.Fatalf("no call at line %d", line)
	return nil
}

const taintInterprocSrc = `class Pipe {
    int held;
    void stash(int v) {
        this.held = v; // STASH
    }
    int fetch() {
        return this.held; // FETCH
    }
}
class Main {
    static int launder(int x) {
        int y = x + 1; // LAUNDER
        return y;
    }
    static void main() {
        int raw = inputInt(); // SOURCE
        int thru = Main.launder(raw); // THRU
        Pipe p = new Pipe();
        p.stash(thru); // STORE
        int back = p.fetch(); // LOAD
        exec(back); // SINK
        int clean = 7; // CLEAN
        exec(clean); // CLEANSINK
    }
    static void exec(int c) { }
}
`

// TestTaintInterprocedural drives input-derived data through a static
// call, a heap cell, and back out of an instance method, and asserts
// the taint fact holds exactly at the tainted sink argument.
func TestTaintInterprocedural(t *testing.T) {
	w := buildWorld(t, taintInterprocSrc)
	res := solve(t, w, dataflow.NewTaintProblem(nil), nil)
	if res.Truncated {
		t.Fatalf("unexpectedly truncated: %v", res.Err)
	}

	sinkLine := papercases.Line(taintInterprocSrc, "// SINK")
	cleanLine := papercases.Line(taintInterprocSrc, "// CLEANSINK")
	sink := callAtLine(t, w.in.Prog, sinkLine)
	clean := callAtLine(t, w.in.Prog, cleanLine)

	holdsArg := func(call *ir.Call) bool {
		for _, n := range w.in.Graph.NodesOf(call) {
			d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindReg, Reg: call.Args[0]})
			if d != dataflow.Zero && res.Holds(n, d) {
				return true
			}
		}
		return false
	}
	if !holdsArg(sink) {
		t.Errorf("taint fact missing at sink argument (line %d)", sinkLine)
	}
	if holdsArg(clean) {
		t.Errorf("taint fact wrongly present at clean sink (line %d)", cleanLine)
	}

	// The witness trace must start at the sink node and end at the
	// generating input() statement.
	n := w.in.Graph.NodesOf(sink)[0]
	d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindReg, Reg: sink.Args[0]})
	steps := res.Trace(n, d)
	if len(steps) < 2 {
		t.Fatalf("trace too short: %d steps", len(steps))
	}
	last := steps[len(steps)-1]
	if _, ok := last.Ins.(*ir.Input); !ok {
		t.Errorf("trace does not end at the input source: ends at %s", last.Ins)
	}
	srcLine := papercases.Line(taintInterprocSrc, "// SOURCE")
	if last.Ins.Pos().Line != srcLine {
		t.Errorf("trace source at line %d, want %d", last.Ins.Pos().Line, srcLine)
	}
}

// TestCloseFileBug runs the close-protocol problem over the paper's
// Figure 4 program: the File is closed via one alias and then used via
// another, so the closed fact must hold at the isOpen() check.
func TestCloseFileBug(t *testing.T) {
	w := buildWorld(t, papercases.FileBug)
	res := solve(t, w, dataflow.CloseProblem{}, nil)

	checkLine := papercases.Line(papercases.FileBug, "// CHECK")
	check := callAtLine(t, w.in.Prog, checkLine)
	found := false
	for _, n := range w.in.Graph.NodesOf(check) {
		mc := w.in.Graph.CtxOf(n)
		for _, o := range w.in.Pts.PointsToIn(check.Recv, mc) {
			d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindObjState, Obj: o, State: dataflow.StateClosed})
			if d != dataflow.Zero && res.Holds(n, d) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("closed fact missing at isOpen() check (line %d)", checkLine)
	}

	// Before the close() call itself no closed fact may hold.
	closeLine := papercases.Line(papercases.FileBug, "// CLOSECALL")
	closeCall := callAtLine(t, w.in.Prog, closeLine)
	for _, n := range w.in.Graph.NodesOf(closeCall) {
		for _, d := range res.FactsAt(n) {
			if res.Facts().Desc(d).Kind == dataflow.KindObjState {
				t.Errorf("closed fact already holds before the first close()")
			}
		}
	}
}

const initFlowSrc = `class Box {
    int val;
    Box() { } // no init in the constructor
    void fill() {
        this.val = 5; // FILL
    }
}
class Main {
    static void main() {
        Box b = new Box();
        int before = b.val; // EARLY (read before any fill)
        b.fill();
        int after = b.val; // LATE (fill on every path)
        print(before + after);
    }
}
`

// TestInitFlowSensitivity checks the may-init facts are flow-sensitive:
// the read before fill() sees no init fact, the read after does.
func TestInitFlowSensitivity(t *testing.T) {
	w := buildWorld(t, initFlowSrc)
	res := solve(t, w, dataflow.InitProblem{}, nil)

	getAt := func(line int) *ir.GetField {
		for _, ins := range instrsAtLine(w.in.Prog, line) {
			if g, ok := ins.(*ir.GetField); ok {
				return g
			}
		}
		t.Fatalf("no GetField at line %d", line)
		return nil
	}
	hasInit := func(g *ir.GetField) bool {
		for _, n := range w.in.Graph.NodesOf(g) {
			mc := w.in.Graph.CtxOf(n)
			for _, o := range w.in.Pts.PointsToIn(g.Obj, mc) {
				d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindObjField, Obj: o, Field: g.Field})
				if d != dataflow.Zero && res.Holds(n, d) {
					return true
				}
			}
		}
		return false
	}
	early := getAt(papercases.Line(initFlowSrc, "// EARLY"))
	late := getAt(papercases.Line(initFlowSrc, "// LATE"))
	if hasInit(early) {
		t.Errorf("init fact present before fill() — not flow-sensitive")
	}
	if !hasInit(late) {
		t.Errorf("init fact missing after fill()")
	}
}

// TestSolveDeterministic asserts two independent solves produce
// byte-identical encodings (fact IDs, node tables, parents).
func TestSolveDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"filebug", papercases.FileBug},
		{"firstnames", papercases.FirstNames},
		{"taintpipe", taintInterprocSrc},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := buildWorld(t, tc.src)
			a := solve(t, w, dataflow.NewTaintProblem(nil), nil)
			b := solve(t, w, dataflow.NewTaintProblem(nil), nil)
			ab, err := dataflow.EncodeResults(a)
			if err != nil {
				t.Fatalf("encode a: %v", err)
			}
			bb, err := dataflow.EncodeResults(b)
			if err != nil {
				t.Fatalf("encode b: %v", err)
			}
			if !bytes.Equal(ab, bb) {
				t.Errorf("two solves encoded differently (%d vs %d bytes)", len(ab), len(bb))
			}
		})
	}
}

// TestSolveTruncation exhausts the dataflow budget mid-solve and
// checks the partial is typed, truncated, and all its facts agree with
// the full solve (monotonicity: a partial never invents facts).
func TestSolveTruncation(t *testing.T) {
	w := buildWorld(t, papercases.FileBug)
	full := solve(t, w, dataflow.CloseProblem{}, nil)

	bud := budget.New(nil, budget.WithPhaseSteps(budget.PhaseDataflow, 40))
	part := solve(t, w, dataflow.CloseProblem{}, bud)
	if !part.Truncated {
		t.Fatalf("40-step solve not truncated")
	}
	if !budget.IsExhausted(part.Err) {
		t.Fatalf("truncation error not ErrExhausted: %v", part.Err)
	}
	if ph, _ := budget.PhaseOf(part.Err); ph != budget.PhaseDataflow {
		t.Errorf("truncation phase %q, want %q", ph, budget.PhaseDataflow)
	}
	for n := 0; n < w.in.Graph.NumNodes(); n++ {
		for _, d := range part.FactsAt(sdg.Node(n)) {
			desc := part.Facts().Desc(d)
			fd := full.Facts().Lookup(desc)
			if d != dataflow.Zero && (fd == dataflow.Zero || !full.Holds(sdg.Node(n), fd)) {
				t.Fatalf("truncated solve invented fact %v at node %d", desc, n)
			}
		}
	}
	// A truncated result must refuse to encode.
	if _, err := dataflow.EncodeResults(part); err == nil {
		t.Errorf("EncodeResults accepted a truncated result")
	}
}

// TestCodecRoundTrip encodes, decodes, and re-encodes results and
// checks byte identity plus query equivalence.
func TestCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		p    dataflow.Problem
	}{
		{"taint", taintInterprocSrc, dataflow.NewTaintProblem(nil)},
		{"close", papercases.FileBug, dataflow.CloseProblem{}},
		{"init", initFlowSrc, dataflow.InitProblem{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := buildWorld(t, tc.src)
			orig := solve(t, w, tc.p, nil)
			enc, err := dataflow.EncodeResults(orig)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := dataflow.DecodeResults(enc, w.in.Prog, w.in.Pts, w.in.Graph)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			re, err := dataflow.EncodeResults(dec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(re))
			}
			if dec.Name != orig.Name || dec.ConfigKey != orig.ConfigKey {
				t.Errorf("identity lost: %q/%q vs %q/%q", dec.Name, dec.ConfigKey, orig.Name, orig.ConfigKey)
			}
			for n := 0; n < w.in.Graph.NumNodes(); n++ {
				of, df := orig.FactsAt(sdg.Node(n)), dec.FactsAt(sdg.Node(n))
				if len(of) != len(df) {
					t.Fatalf("node %d: %d facts vs %d after round-trip", n, len(of), len(df))
				}
			}
			// Traces survive the round-trip (same length and endpoints).
			for n := 0; n < w.in.Graph.NumNodes(); n++ {
				for _, d := range orig.FactsAt(sdg.Node(n)) {
					a, b := orig.Trace(sdg.Node(n), d), dec.Trace(sdg.Node(n), d)
					if len(a) != len(b) {
						t.Fatalf("node %d fact %d: trace %d vs %d steps", n, d, len(a), len(b))
					}
				}
			}
		})
	}
}

// TestCodecRejectsCorruption flips bytes and truncates the payload and
// requires decode errors, never panics or silent acceptance of
// out-of-range nodes and facts.
func TestCodecRejectsCorruption(t *testing.T) {
	w := buildWorld(t, initFlowSrc)
	res := solve(t, w, dataflow.InitProblem{}, nil)
	enc, err := dataflow.EncodeResults(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := dataflow.DecodeResults(enc, w.in.Prog, w.in.Pts, w.in.Graph); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decode panicked: %v", r)
		}
	}()
	rejected := 0
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		if _, err := dataflow.DecodeResults(mut, w.in.Prog, w.in.Pts, w.in.Graph); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Errorf("no bit flip was rejected")
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := dataflow.DecodeResults(enc[:cut], w.in.Prog, w.in.Pts, w.in.Graph); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestCancellationReturnsError distinguishes cancellation (an error,
// no partial) from exhaustion (a truncated partial).
func TestCancellationReturnsError(t *testing.T) {
	w := buildWorld(t, papercases.FileBug)
	bud := budget.New(nil, budget.WithTimeout(0))
	_, err := dataflow.Solve(w.in, dataflow.CloseProblem{}, bud)
	if !budget.IsCanceled(err) {
		t.Fatalf("expired-deadline solve returned %v, want ErrCanceled", err)
	}
}
