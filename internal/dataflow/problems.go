package dataflow

import (
	"sort"
	"strings"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
)

// The stock problems are all gen-only: no flow function ever kills a
// heap, typestate, or static fact. That invariant is what makes
// routing global facts both through a callee (Call/Return) and around
// it (CallToReturn) safe — the two copies can never disagree, the
// meet (union) just merges them. A future kill-ful problem (e.g.
// strong-update typestate) would need to drop globals from
// CallToReturn and rely on summaries alone.

// globalsAndZero appends the identity image of d when d is the zero
// fact or a global (heap/typestate/static) fact; local register facts
// are dropped, which is the right default at call and return
// boundaries where frames change.
func globalsAndZero(env *Env, d Fact, dst []Fact) []Fact {
	if d == Zero || env.Facts.Desc(d).Global() {
		return append(dst, d)
	}
	return dst
}

// paramOffset returns the index shift between call.Args and the
// callee's Params: instance methods carry the receiver at Params[0].
func paramOffset(callee *ir.Method) int {
	if callee.Sig.Static {
		return 0
	}
	return 1
}

// TaintProblem is the IFDS formulation of the taint checker: facts are
// "this register / heap cell holds input-derived data". Sources are
// the input() intrinsic family (configurable by name); sinks are not
// part of the problem — they are applied at query time, so one cached
// solve serves any sink set.
type TaintProblem struct {
	// Sources is the sorted set of source intrinsic names
	// ("input", "inputInt"). Use NewTaintProblem to normalize.
	Sources []string
}

// NewTaintProblem builds a taint problem for the given source names
// (defaulting to the full input family), normalized so equal sets get
// equal ConfigKeys.
func NewTaintProblem(sources []string) *TaintProblem {
	if len(sources) == 0 {
		sources = []string{"input", "inputInt"}
	}
	s := make([]string, len(sources))
	copy(s, sources)
	sort.Strings(s)
	return &TaintProblem{Sources: s}
}

// Name implements Problem.
func (p *TaintProblem) Name() string { return "taint" }

// ConfigKey implements Problem. Only the source set shapes the flow
// functions, so only it is part of the key.
func (p *TaintProblem) ConfigKey() string { return strings.Join(p.Sources, ",") }

func (p *TaintProblem) isSource(in *ir.Input) bool {
	name := "input"
	if in.IsInt {
		name = "inputInt"
	}
	for _, s := range p.Sources {
		if s == name {
			return true
		}
	}
	return false
}

// Normal implements Problem.
func (p *TaintProblem) Normal(env *Env, mc *pointsto.MCtx, ins ir.Instr, d Fact, dst []Fact) []Fact {
	fx := env.Facts
	dst = append(dst, d) // gen-only: everything survives straight-line flow
	if d == Zero {
		if in, ok := ins.(*ir.Input); ok && p.isSource(in) {
			dst = append(dst, fx.Reg(in.Dst))
		}
		return dst
	}
	switch desc := fx.Desc(d); desc.Kind {
	case KindReg:
		r := desc.Reg
		// Local producer flow: a tainted operand in producer role
		// taints the result — the same edges a thin slice follows.
		if def := ins.Def(); def != nil {
			tainted := false
			ins.EachUse(func(u *ir.Reg, role ir.Role) {
				if u == r && role == ir.RoleProducer {
					tainted = true
				}
			})
			if tainted {
				dst = append(dst, fx.Reg(def))
			}
		}
		// Heap stores: the tainted value escapes into abstract cells.
		switch t := ins.(type) {
		case *ir.SetField:
			if t.Val == r {
				for _, o := range env.PointsTo(t.Obj, mc) {
					dst = append(dst, fx.ObjField(o, t.Field))
				}
			}
		case *ir.SetStatic:
			if t.Val == r {
				dst = append(dst, fx.Static(t.Field))
			}
		case *ir.ArrayStore:
			if t.Val == r {
				for _, o := range env.PointsTo(t.Arr, mc) {
					dst = append(dst, fx.ObjElem(o))
				}
			}
		case *ir.NewArray:
			if t.Len == r {
				for _, o := range env.PointsTo(t.Dst, mc) {
					dst = append(dst, fx.ObjLen(o))
				}
			}
		}
	case KindObjField:
		if t, ok := ins.(*ir.GetField); ok && t.Field == desc.Field && env.PointsToHas(t.Obj, mc, desc.Obj) {
			dst = append(dst, fx.Reg(t.Dst))
		}
	case KindObjElem:
		if t, ok := ins.(*ir.ArrayLoad); ok && env.PointsToHas(t.Arr, mc, desc.Obj) {
			dst = append(dst, fx.Reg(t.Dst))
		}
	case KindObjLen:
		if t, ok := ins.(*ir.ArrayLen); ok && env.PointsToHas(t.Arr, mc, desc.Obj) {
			dst = append(dst, fx.Reg(t.Dst))
		}
	case KindStatic:
		if t, ok := ins.(*ir.GetStatic); ok && t.Field == desc.Field {
			dst = append(dst, fx.Reg(t.Dst))
		}
	}
	return dst
}

// Call implements Problem: actual-to-formal binding for register
// facts, identity for the zero fact and globals.
func (p *TaintProblem) Call(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, d Fact, dst []Fact) []Fact {
	dst = globalsAndZero(env, d, dst)
	desc := env.Facts.Desc(d)
	if desc.Kind != KindReg {
		return dst
	}
	r := desc.Reg
	params := callee.Method.Params
	off := paramOffset(callee.Method)
	if call.Recv != nil && call.Recv == r && off == 1 && len(params) > 0 {
		dst = append(dst, env.Facts.Reg(params[0].Dst))
	}
	for i, arg := range call.Args {
		if arg == r && i+off < len(params) {
			dst = append(dst, env.Facts.Reg(params[i+off].Dst))
		}
	}
	return dst
}

// Return implements Problem: return-value binding for register facts,
// identity for the zero fact and globals.
func (p *TaintProblem) Return(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, exit ir.Instr, d Fact, dst []Fact) []Fact {
	dst = globalsAndZero(env, d, dst)
	desc := env.Facts.Desc(d)
	if desc.Kind != KindReg || call.Dst == nil {
		return dst
	}
	if ret, ok := exit.(*ir.Return); ok && ret.Val != nil && ret.Val == desc.Reg {
		dst = append(dst, env.Facts.Reg(call.Dst))
	}
	return dst
}

// CallToReturn implements Problem: full identity — a callee cannot
// kill the caller's locals, and globals ride around as well as through
// (safe because the problem is gen-only).
func (p *TaintProblem) CallToReturn(env *Env, caller *pointsto.MCtx, call *ir.Call, resolved bool, d Fact, dst []Fact) []Fact {
	return append(dst, d)
}

// StateClosed is the single protocol state of CloseProblem: the
// object's close() method has been called on some path.
const StateClosed uint8 = 1

// CloseProblem tracks the close() protocol: the fact ObjState(o,
// StateClosed) holds wherever some path has already invoked close()
// on o. Any instance method named "close" is the transition — a closed
// fact therefore only ever exists for objects that actually
// participate in the protocol, so no class allow-list is needed.
// Queries: a call on a possibly-closed receiver is a use-after-close
// (or a double-close when the call is itself close()).
type CloseProblem struct{}

// Name implements Problem.
func (CloseProblem) Name() string { return "close" }

// ConfigKey implements Problem.
func (CloseProblem) ConfigKey() string { return "" }

// Normal implements Problem: pure identity — the domain has no
// register facts and nothing intraprocedural changes typestate.
func (CloseProblem) Normal(env *Env, mc *pointsto.MCtx, ins ir.Instr, d Fact, dst []Fact) []Fact {
	return append(dst, d)
}

// Call implements Problem.
func (CloseProblem) Call(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, d Fact, dst []Fact) []Fact {
	return globalsAndZero(env, d, dst)
}

// Return implements Problem.
func (CloseProblem) Return(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, exit ir.Instr, d Fact, dst []Fact) []Fact {
	return globalsAndZero(env, d, dst)
}

// CallToReturn implements Problem: identity plus the protocol
// transition — after a close() call every receiver pointee is closed.
func (CloseProblem) CallToReturn(env *Env, caller *pointsto.MCtx, call *ir.Call, resolved bool, d Fact, dst []Fact) []Fact {
	dst = append(dst, d)
	if d == Zero && call.Recv != nil && call.Callee.Name == "close" {
		for _, o := range env.PointsTo(call.Recv, caller) {
			dst = append(dst, env.Facts.ObjState(o, StateClosed))
		}
	}
	return dst
}

// InitProblem tracks may-initialization of instance fields: the fact
// ObjField(o, f) holds wherever some path has stored to o.f. Queries
// invert it: a reachable GetField whose every pointee's field fact is
// ABSENT is a definite-uninitialized read — no path initializes it
// first. Because the query relies on fact absence, it is only valid
// on complete (non-Truncated) results.
type InitProblem struct{}

// Name implements Problem.
func (InitProblem) Name() string { return "init" }

// ConfigKey implements Problem.
func (InitProblem) ConfigKey() string { return "" }

// Normal implements Problem: identity plus the store gen.
func (InitProblem) Normal(env *Env, mc *pointsto.MCtx, ins ir.Instr, d Fact, dst []Fact) []Fact {
	dst = append(dst, d)
	if d == Zero {
		if t, ok := ins.(*ir.SetField); ok {
			for _, o := range env.PointsTo(t.Obj, mc) {
				dst = append(dst, env.Facts.ObjField(o, t.Field))
			}
		}
	}
	return dst
}

// Call implements Problem.
func (InitProblem) Call(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, d Fact, dst []Fact) []Fact {
	return globalsAndZero(env, d, dst)
}

// Return implements Problem.
func (InitProblem) Return(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, exit ir.Instr, d Fact, dst []Fact) []Fact {
	return globalsAndZero(env, d, dst)
}

// CallToReturn implements Problem.
func (InitProblem) CallToReturn(env *Env, caller *pointsto.MCtx, call *ir.Call, resolved bool, d Fact, dst []Fact) []Fact {
	return append(dst, d)
}
