// Package dataflow is an IFDS-style interprocedural finite
// distributive subset solver (Reps–Horwitz–Sagiv tabulation) over an
// exploded supergraph derived from the SSA IR, the points-to-resolved
// call edges, and the CHA call graph. Where the slicers answer "which
// producer statements can this value come from", the dataflow engine
// answers "which facts hold before this statement instance" — flow-
// and context-sensitively, with summary edges per (callee, entry fact)
// making re-analysis of a procedure under the same entry fact free.
//
// The node space is borrowed from the dependence graph: a supergraph
// node is an sdg.Node, i.e. an (instruction, call-graph context) pair,
// so dataflow facts, slice membership, and witness chains all speak
// the same coordinates. Control-flow successors come from the IR block
// structure; interprocedural edges from pointsto.CalleesAt, falling
// back to the CHA cone when a truncated points-to result has no edge
// for a reachable call site.
//
// The solver is budgeted (budget.PhaseDataflow): exhaustion or
// cancellation mid-solve yields a typed Truncated partial whose facts
// are all genuine (the tabulation is monotone), never a panic or a
// wrong answer. Truncated results are never cached by sessions.
//
// Every (node, fact) pair records the edge that first discovered it,
// so Trace reconstructs a witness path — the same thin-slice-style
// step chains checker findings already carry.
package dataflow

import (
	"fmt"
	"sort"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// Fact identifies one dataflow fact in a problem's domain. Facts are
// interned by the engine's Facts table; Zero is the distinguished
// "reachable at all" fact present in every domain.
type Fact int32

// Zero is the IFDS zero fact Λ: it holds at every reachable program
// point and is the source of every gen edge.
const Zero Fact = 0

// FactKind classifies a fact descriptor. The vocabulary is fixed so
// results can be encoded and decoded independent of the problem that
// produced them: SSA registers, abstract heap locations (field,
// array-element, and array-length cells of a points-to object),
// per-object typestate, and static fields.
type FactKind uint8

// Fact kinds.
const (
	KindZero     FactKind = iota // the zero fact
	KindReg                      // an SSA register holds the property
	KindObjField                 // field cell of an abstract object
	KindObjElem                  // element cell of an abstract array
	KindObjLen                   // length cell of an abstract array
	KindObjState                 // abstract object is in a protocol state
	KindStatic                   // a static field cell
)

func (k FactKind) String() string {
	switch k {
	case KindZero:
		return "zero"
	case KindReg:
		return "reg"
	case KindObjField:
		return "objfield"
	case KindObjElem:
		return "objelem"
	case KindObjLen:
		return "objlen"
	case KindObjState:
		return "objstate"
	case KindStatic:
		return "static"
	}
	return "?"
}

// FactDesc is the structural identity of a fact.
type FactDesc struct {
	Kind  FactKind
	Reg   *ir.Reg          // KindReg
	Obj   *pointsto.Object // KindObjField, KindObjElem, KindObjLen, KindObjState
	Field *types.FieldInfo // KindObjField, KindStatic
	State uint8            // KindObjState: problem-defined protocol state
}

// Global reports whether the fact names a location that outlives any
// stack frame — heap cells, typestate, and statics. Global facts cross
// call, return, and call-to-return edges unchanged in the stock
// problems (all of which are gen-only for globals, so the double
// routing can never disagree with itself).
func (d FactDesc) Global() bool {
	switch d.Kind {
	case KindObjField, KindObjElem, KindObjLen, KindObjState, KindStatic:
		return true
	}
	return false
}

func (d FactDesc) String() string {
	switch d.Kind {
	case KindZero:
		return "Λ"
	case KindReg:
		return fmt.Sprintf("reg %s", d.Reg)
	case KindObjField:
		return fmt.Sprintf("%s.%s", d.Obj, d.Field.QualifiedName())
	case KindObjElem:
		return fmt.Sprintf("%s[*]", d.Obj)
	case KindObjLen:
		return fmt.Sprintf("%s.length", d.Obj)
	case KindObjState:
		return fmt.Sprintf("%s@state%d", d.Obj, d.State)
	case KindStatic:
		return fmt.Sprintf("static %s", d.Field.QualifiedName())
	}
	return "?"
}

type objFieldKey struct {
	obj   int
	field *types.FieldInfo
}

type objTagKey struct {
	obj   int
	kind  FactKind
	state uint8
}

// Facts interns fact descriptors into dense Fact IDs. IDs are assigned
// in first-request order, which is deterministic because the solver's
// evaluation order is.
type Facts struct {
	descs    []FactDesc
	regs     map[*ir.Reg]Fact
	objField map[objFieldKey]Fact
	objTag   map[objTagKey]Fact
	statics  map[*types.FieldInfo]Fact
}

// NewFacts returns a table holding only the zero fact.
func NewFacts() *Facts {
	return &Facts{
		descs:    []FactDesc{{Kind: KindZero}},
		regs:     make(map[*ir.Reg]Fact),
		objField: make(map[objFieldKey]Fact),
		objTag:   make(map[objTagKey]Fact),
		statics:  make(map[*types.FieldInfo]Fact),
	}
}

// NumFacts returns the number of interned facts (zero included).
func (f *Facts) NumFacts() int { return len(f.descs) }

// Desc returns the descriptor of d.
func (f *Facts) Desc(d Fact) FactDesc { return f.descs[d] }

func (f *Facts) intern(desc FactDesc) Fact {
	f.descs = append(f.descs, desc)
	return Fact(len(f.descs) - 1)
}

// Reg interns the fact "register r holds the property".
func (f *Facts) Reg(r *ir.Reg) Fact {
	if d, ok := f.regs[r]; ok {
		return d
	}
	d := f.intern(FactDesc{Kind: KindReg, Reg: r})
	f.regs[r] = d
	return d
}

// ObjField interns the fact for the (object, field) heap cell.
func (f *Facts) ObjField(o *pointsto.Object, fld *types.FieldInfo) Fact {
	k := objFieldKey{o.ID, fld}
	if d, ok := f.objField[k]; ok {
		return d
	}
	d := f.intern(FactDesc{Kind: KindObjField, Obj: o, Field: fld})
	f.objField[k] = d
	return d
}

// ObjElem interns the fact for the element cell of array object o.
func (f *Facts) ObjElem(o *pointsto.Object) Fact { return f.objTagFact(o, KindObjElem, 0) }

// ObjLen interns the fact for the length cell of array object o.
func (f *Facts) ObjLen(o *pointsto.Object) Fact { return f.objTagFact(o, KindObjLen, 0) }

// ObjState interns the fact "object o is in protocol state s".
func (f *Facts) ObjState(o *pointsto.Object, s uint8) Fact { return f.objTagFact(o, KindObjState, s) }

func (f *Facts) objTagFact(o *pointsto.Object, kind FactKind, state uint8) Fact {
	k := objTagKey{o.ID, kind, state}
	if d, ok := f.objTag[k]; ok {
		return d
	}
	d := f.intern(FactDesc{Kind: kind, Obj: o, State: state})
	f.objTag[k] = d
	return d
}

// Lookup returns the interned fact matching desc without interning a
// new one; Zero doubles as "not present" for non-zero descriptors (an
// un-interned fact cannot hold anywhere).
func (f *Facts) Lookup(desc FactDesc) Fact {
	switch desc.Kind {
	case KindReg:
		return f.regs[desc.Reg]
	case KindObjField:
		return f.objField[objFieldKey{desc.Obj.ID, desc.Field}]
	case KindObjElem, KindObjLen, KindObjState:
		st := desc.State
		if desc.Kind != KindObjState {
			st = 0
		}
		return f.objTag[objTagKey{desc.Obj.ID, desc.Kind, st}]
	case KindStatic:
		return f.statics[desc.Field]
	}
	return Zero
}

// Static interns the fact for a static field cell.
func (f *Facts) Static(fld *types.FieldInfo) Fact {
	if d, ok := f.statics[fld]; ok {
		return d
	}
	d := f.intern(FactDesc{Kind: KindStatic, Field: fld})
	f.statics[fld] = d
	return d
}

// Problem defines one IFDS client analysis: a distributive subset
// problem given fact-by-fact as flow functions over supergraph edges.
// Flow functions append the complete successor set of d to dst and
// return it — identity is NOT implicit; a fact not appended is killed.
// The zero fact must always survive (append it back), and gen edges
// originate from it. Implementations must be deterministic and must
// not retain dst.
type Problem interface {
	// Name is the stable problem identifier, part of the artifact key.
	Name() string
	// ConfigKey captures any configuration that shapes the flow
	// functions (e.g. the taint source set); two problems with equal
	// Name and ConfigKey must compute identical results.
	ConfigKey() string
	// Normal maps fact d holding before ins (in context mc) to the
	// facts holding before ins's intraprocedural successors.
	Normal(env *Env, mc *pointsto.MCtx, ins ir.Instr, d Fact, dst []Fact) []Fact
	// Call maps fact d holding before a call (in the caller's context)
	// to the facts holding at the callee's entry point.
	Call(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, d Fact, dst []Fact) []Fact
	// Return maps fact d holding before exit (a Return or Throw in the
	// callee) to the facts holding at the caller's return site.
	Return(env *Env, caller *pointsto.MCtx, call *ir.Call, callee *pointsto.MCtx, exit ir.Instr, d Fact, dst []Fact) []Fact
	// CallToReturn maps fact d holding before a call to the facts
	// carried around the call along the local bypass edge; resolved
	// reports whether any callee was found for the site.
	CallToReturn(env *Env, caller *pointsto.MCtx, call *ir.Call, resolved bool, d Fact, dst []Fact) []Fact
}

// Env is the read-only world flow functions see: the interning fact
// table plus the points-to result for heap-cell resolution.
type Env struct {
	Facts *Facts
	Pts   *pointsto.Result
}

// PointsTo returns the points-to set of reg in context mc (empty for
// untracked or non-reference registers).
func (e *Env) PointsTo(reg *ir.Reg, mc *pointsto.MCtx) []*pointsto.Object {
	return e.Pts.PointsToIn(reg, mc)
}

// PointsToHas reports whether obj is in the points-to set of reg in mc.
func (e *Env) PointsToHas(reg *ir.Reg, mc *pointsto.MCtx, obj *pointsto.Object) bool {
	for _, o := range e.PointsTo(reg, mc) {
		if o == obj {
			return true
		}
	}
	return false
}

// StepKind classifies one hop of a witness trace.
type StepKind uint8

// Trace step kinds.
const (
	StepGen     StepKind = iota // fact generated here (from the zero fact)
	StepFlow                    // intraprocedural transfer
	StepCall                    // carried into a callee at a call site
	StepReturn                  // carried back to the caller at an exit
	StepSummary                 // jumped over a call via a summary edge
)

// EdgeKind maps the step onto the dependence-edge vocabulary thin
// slice witnesses use, so IFDS traces render exactly like slicer
// chains.
func (k StepKind) EdgeKind() sdg.EdgeKind {
	switch k {
	case StepCall:
		return sdg.EdgeParam
	case StepReturn:
		return sdg.EdgeReturn
	case StepSummary:
		return sdg.EdgeParam
	}
	return sdg.EdgeLocal
}

// Step is one hop of a reconstructed witness path.
type Step struct {
	Node sdg.Node
	Ins  ir.Instr
	Fact Fact
	Kind StepKind
}

// Inputs bundles the artifacts the solver reads.
type Inputs struct {
	Prog  *ir.Program
	Pts   *pointsto.Result
	Graph *sdg.Graph // supplies the (instruction, context) node space
	CHA   *cha.CallGraph
}

// parentRec records how a (node, fact) pair was first discovered:
// prev is the predecessor's packed node/fact key (parentRoot for
// seeds and gens at entry) and step classifies the edge.
type parentRec struct {
	prev uint64
	step StepKind
}

const parentRoot = ^uint64(0)

func nfKey(n sdg.Node, d Fact) uint64 { return uint64(uint32(n))<<32 | uint64(uint32(d)) }

// Results holds the solved exploded-supergraph reachability: which
// facts hold before which statement instances, plus the discovery
// parents for witness reconstruction.
type Results struct {
	// Truncated reports the solve stopped early on an exhausted budget
	// or cancellation: every recorded fact is genuine but later ones
	// may be missing, so absence-based queries are unreliable. Err
	// carries the typed budget error.
	Truncated bool
	Err       error

	// Name and ConfigKey echo the problem that produced the results.
	Name      string
	ConfigKey string

	graph   *sdg.Graph
	facts   *Facts
	atNode  map[uint64]parentRec
	factsAt map[sdg.Node][]Fact // first-discovery order per node

	// PathEdges counts distinct tabulated path edges; SummaryEdges
	// counts (callee entry fact → exit fact) summaries. Surfaced in
	// solver stats and tests.
	PathEdges    int
	SummaryEdges int
}

// Facts returns the fact table of the results.
func (r *Results) Facts() *Facts { return r.facts }

// Graph returns the dependence graph supplying the node space.
func (r *Results) Graph() *sdg.Graph { return r.graph }

// NumNodeFacts returns the number of recorded (node, fact) pairs —
// the size proxy cost-accounted stores use.
func (r *Results) NumNodeFacts() int { return len(r.atNode) }

// Holds reports whether fact d holds before statement instance n.
func (r *Results) Holds(n sdg.Node, d Fact) bool {
	_, ok := r.atNode[nfKey(n, d)]
	return ok
}

// Reachable reports whether n is reachable at all (the zero fact
// holds there).
func (r *Results) Reachable(n sdg.Node) bool { return r.Holds(n, Zero) }

// FactsAt returns the facts holding before n (zero included), in
// discovery order. Callers must not mutate the slice.
func (r *Results) FactsAt(n sdg.Node) []Fact { return r.factsAt[n] }

// Trace reconstructs a witness path for fact d at node n: the chain of
// statement instances along which d was first discovered, most recent
// first (the queried node leads, the generating statement ends it).
// Hops where the fact merely flows unchanged through straight-line
// code are compressed away, leaving the thin-slice-style chain of
// fact-changing steps. Returns nil when d does not hold at n.
func (r *Results) Trace(n sdg.Node, d Fact) []Step {
	key := nfKey(n, d)
	rec, ok := r.atNode[key]
	if !ok {
		return nil
	}
	const maxSteps = 128
	out := []Step{{Node: n, Ins: r.graph.InstrOf(n), Fact: d, Kind: rec.step}}
	for rec.prev != parentRoot && len(out) < maxSteps {
		key = rec.prev
		prevNode, prevFact := sdg.Node(int32(key>>32)), Fact(int32(uint32(key)))
		next, ok := r.atNode[key]
		if !ok {
			break
		}
		// Keep hops where the fact identity changes (gens, parameter
		// and return bindings, heap transfers) or a call boundary is
		// crossed; drop same-fact straight-line flow outright — the
		// step already kept is where the fact was produced, and the
		// dropped instructions merely sit between producer and use.
		if prevFact != out[len(out)-1].Fact || next.step == StepCall || next.step == StepReturn || next.step == StepSummary {
			out = append(out, Step{Node: prevNode, Ins: r.graph.InstrOf(prevNode), Fact: prevFact, Kind: next.step})
		}
		// For a non-zero query the chain ends at the generating
		// statement: the first zero-fact step is the origin, and
		// walking further would only retrace plain reachability.
		if d != Zero && out[len(out)-1].Fact == Zero {
			break
		}
		rec = next
	}
	return out
}

// entryKey identifies a procedure instance entered with a given fact.
type entryKey struct {
	mc *pointsto.MCtx
	d  Fact
}

type callerRec struct {
	call sdg.Node
	d1   Fact // caller's path-edge source fact
	d2   Fact // fact at the call site
}

type exitRec struct {
	exit sdg.Node
	d    Fact
}

type pathEdge struct {
	d1 Fact // fact at the procedure entry
	n  sdg.Node
	d2 Fact // fact at n
}

// solver is the tabulation state.
type solver struct {
	in    Inputs
	p     Problem
	env   *Env
	meter *budget.Meter

	res        *Results
	pathSet    map[pathEdge]struct{}
	work       []pathEdge
	head       int
	incoming   map[entryKey][]callerRec
	endSummary map[entryKey][]exitRec
	// deltas caches per-context node-ID offsets (sdg.NodeOf without
	// the map lookups in the hot loop).
	deltas map[*pointsto.MCtx]int32
	buf    []Fact
	stop   error
}

// Solve runs the tabulation for problem p. Budget exhaustion returns a
// Truncated partial result (facts found so far, all genuine);
// cancellation and deadline expiry return a typed error.
func Solve(in Inputs, p Problem, bud *budget.Budget) (*Results, error) {
	if err := bud.Err(budget.PhaseDataflow); err != nil {
		return nil, err
	}
	fx := NewFacts()
	s := &solver{
		in:    in,
		p:     p,
		env:   &Env{Facts: fx, Pts: in.Pts},
		meter: bud.Phase(budget.PhaseDataflow),
		res: &Results{
			Name:      p.Name(),
			ConfigKey: p.ConfigKey(),
			graph:     in.Graph,
			facts:     fx,
			atNode:    make(map[uint64]parentRec),
			factsAt:   make(map[sdg.Node][]Fact),
		},
		pathSet:    make(map[pathEdge]struct{}),
		incoming:   make(map[entryKey][]callerRec),
		endSummary: make(map[entryKey][]exitRec),
		deltas:     make(map[*pointsto.MCtx]int32),
	}
	s.seed()
	s.run()
	if s.stop != nil {
		if budget.IsCanceled(s.stop) {
			return nil, s.stop
		}
		s.res.Truncated, s.res.Err = true, s.stop
	}
	s.res.PathEdges = len(s.pathSet)
	return s.res, nil
}

// nodeOf maps (context, instruction) to its supergraph node.
func (s *solver) nodeOf(mc *pointsto.MCtx, ins ir.Instr) sdg.Node {
	delta, ok := s.deltas[mc]
	if !ok {
		first := mc.Method.Blocks[0].Instrs[0]
		delta = int32(int(s.in.Graph.NodeOf(mc, first)) - first.ID())
		s.deltas[mc] = delta
	}
	return sdg.Node(delta + int32(ins.ID()))
}

// seed roots the tabulation at every analysis entry method.
func (s *solver) seed() {
	for _, m := range s.in.Pts.Entries() {
		for _, mc := range s.in.Pts.MCtxsOf(m) {
			entry := s.nodeOf(mc, m.Blocks[0].Instrs[0])
			s.propagate(pathEdge{Zero, entry, Zero}, parentRoot, StepGen)
		}
	}
}

// propagate adds a path edge if new, recording the discovery parent of
// its (node, fact) pair the first time the pair is seen.
func (s *solver) propagate(e pathEdge, parent uint64, step StepKind) {
	if _, ok := s.pathSet[e]; ok {
		return
	}
	s.pathSet[e] = struct{}{}
	s.work = append(s.work, e)
	key := nfKey(e.n, e.d2)
	if _, ok := s.res.atNode[key]; !ok {
		s.res.atNode[key] = parentRec{prev: parent, step: step}
		s.res.factsAt[e.n] = append(s.res.factsAt[e.n], e.d2)
	}
}

// callees resolves the call targets at a call site in context. When
// a truncated points-to result has no edge for the site, the CHA cone
// provides the fallback targets (their analyzed contexts).
func (s *solver) callees(call *ir.Call, mc *pointsto.MCtx) []*pointsto.MCtx {
	out := s.in.Pts.CalleesAt(call, mc)
	if len(out) > 0 || s.in.CHA == nil || !s.in.Pts.Truncated {
		return out
	}
	for _, m := range s.in.CHA.Callees(call) {
		out = append(out, s.in.Pts.MCtxsOf(m)...)
	}
	return out
}

// succs appends the intraprocedural CFG successor nodes of ins.
func succs(mc *pointsto.MCtx, ins ir.Instr, nodeOf func(*pointsto.MCtx, ir.Instr) sdg.Node, dst []sdg.Node) []sdg.Node {
	b := ins.Block()
	for i, cur := range b.Instrs {
		if cur != ins {
			continue
		}
		if i+1 < len(b.Instrs) {
			return append(dst, nodeOf(mc, b.Instrs[i+1]))
		}
		break
	}
	switch t := ins.(type) {
	case *ir.If:
		return append(dst, nodeOf(mc, t.Then.Instrs[0]), nodeOf(mc, t.Else.Instrs[0]))
	case *ir.Goto:
		return append(dst, nodeOf(mc, t.Target.Instrs[0]))
	}
	return dst // Return, Throw: no intraprocedural successors
}

// run is the tabulation worklist loop.
func (s *solver) run() {
	var succBuf [2]sdg.Node
	for s.head < len(s.work) {
		if err := s.meter.Tick(); err != nil {
			s.stop = err
			return
		}
		e := s.work[s.head]
		s.head++
		ins := s.in.Graph.InstrOf(e.n)
		mc := s.in.Graph.CtxOf(e.n)
		switch t := ins.(type) {
		case *ir.Call:
			s.processCall(e, t, mc)
		case *ir.Return, *ir.Throw:
			s.processExit(e, ins, mc)
		default:
			out := s.p.Normal(s.env, mc, ins, e.d2, s.buf[:0])
			parent := nfKey(e.n, e.d2)
			for _, sn := range succs(mc, ins, s.nodeOf, succBuf[:0]) {
				for _, d3 := range out {
					s.propagate(pathEdge{e.d1, sn, d3}, parent, stepFor(e.d2, d3))
				}
			}
			s.buf = out[:0]
		}
	}
}

// stepFor classifies an intraprocedural hop: a new fact born from the
// zero fact is a gen, everything else is flow.
func stepFor(from, to Fact) StepKind {
	if from == Zero && to != Zero {
		return StepGen
	}
	return StepFlow
}

// processCall handles a call node: call edges into each resolved
// callee (registering incoming and applying any summaries already
// discovered), plus the local call-to-return bypass.
func (s *solver) processCall(e pathEdge, call *ir.Call, mc *pointsto.MCtx) {
	parent := nfKey(e.n, e.d2)
	retSite := s.retSite(e.n, call, mc)
	callees := s.callees(call, mc)
	for _, callee := range callees {
		entryIns := callee.Method.Blocks[0].Instrs[0]
		entryNode := s.nodeOf(callee, entryIns)
		out := s.p.Call(s.env, mc, call, callee, e.d2, s.buf[:0])
		for _, d3 := range out {
			s.propagate(pathEdge{d3, entryNode, d3}, parent, StepCall)
			// Register the caller under the callee's entry fact, then
			// apply any summaries already tabulated for it.
			k := entryKey{callee, d3}
			if !hasCaller(s.incoming[k], e.n, e.d1, e.d2) {
				s.incoming[k] = append(s.incoming[k], callerRec{e.n, e.d1, e.d2})
			}
			for _, ex := range s.endSummary[k] {
				exitIns := s.in.Graph.InstrOf(ex.exit)
				rout := s.p.Return(s.env, mc, call, callee, exitIns, ex.d, nil)
				for _, d5 := range rout {
					s.propagate(pathEdge{e.d1, retSite, d5}, nfKey(ex.exit, ex.d), StepReturn)
				}
			}
		}
		s.buf = out[:0]
	}
	out := s.p.CallToReturn(s.env, mc, call, len(callees) > 0, e.d2, s.buf[:0])
	for _, d3 := range out {
		s.propagate(pathEdge{e.d1, retSite, d3}, parent, stepFor(e.d2, d3))
	}
	s.buf = out[:0]
}

// processExit handles a Return/Throw node: record the summary for this
// procedure instance's entry fact and flow back to every registered
// caller.
func (s *solver) processExit(e pathEdge, exit ir.Instr, mc *pointsto.MCtx) {
	k := entryKey{mc, e.d1}
	if !hasExit(s.endSummary[k], e.n, e.d2) {
		s.endSummary[k] = append(s.endSummary[k], exitRec{e.n, e.d2})
		s.res.SummaryEdges++
	}
	parent := nfKey(e.n, e.d2)
	for _, cr := range s.incoming[k] {
		callIns := s.in.Graph.InstrOf(cr.call).(*ir.Call)
		callerCtx := s.in.Graph.CtxOf(cr.call)
		retSite := s.retSite(cr.call, callIns, callerCtx)
		out := s.p.Return(s.env, callerCtx, callIns, mc, exit, e.d2, s.buf[:0])
		for _, d5 := range out {
			s.propagate(pathEdge{cr.d1, retSite, d5}, parent, StepReturn)
		}
		s.buf = out[:0]
	}
}

// retSite returns the node after a call in the caller (calls are never
// block terminators, so the next instruction always exists).
func (s *solver) retSite(callNode sdg.Node, call *ir.Call, mc *pointsto.MCtx) sdg.Node {
	b := call.Block()
	for i, cur := range b.Instrs {
		if cur == call {
			return s.nodeOf(mc, b.Instrs[i+1])
		}
	}
	panic(fmt.Sprintf("dataflow: call %s not found in its block", call))
}

func hasCaller(list []callerRec, call sdg.Node, d1, d2 Fact) bool {
	for _, c := range list {
		if c.call == call && c.d1 == d1 && c.d2 == d2 {
			return true
		}
	}
	return false
}

func hasExit(list []exitRec, exit sdg.Node, d Fact) bool {
	for _, e := range list {
		if e.exit == exit && e.d == d {
			return true
		}
	}
	return false
}

// NodesHolding returns every node where fact d holds, sorted. Intended
// for tests and diagnostics, not hot paths.
func (r *Results) NodesHolding(d Fact) []sdg.Node {
	var out []sdg.Node
	for n, facts := range r.factsAt {
		for _, f := range facts {
			if f == d {
				out = append(out, n)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
