package dataflow

// Persistent encoding of Results (package artifact's "df" payload).
// Facts are stored over stable coordinates — defining-instruction IDs
// for registers, points-to object IDs and qualified field names for
// heap cells — and relinked against prog, pts, and the dependence
// graph at decode. The (node, fact) table is emitted node-sorted with
// each node's fact list in discovery order, so re-encoding a decoded
// result is byte-identical. Truncated results are refused at encode:
// a partial fact table must never masquerade as a complete artifact.

import (
	"fmt"
	"sort"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/artifact"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// EncodeResults returns the persistent payload for r.
func EncodeResults(r *Results) ([]byte, error) {
	if r.Truncated {
		return nil, fmt.Errorf("dataflow: refusing to encode truncated results")
	}
	var w artifact.Writer
	w.String(r.Name)
	w.String(r.ConfigKey)

	// Fact descriptors, zero fact implied at index 0.
	w.Uvarint(uint64(r.facts.NumFacts() - 1))
	for i := 1; i < r.facts.NumFacts(); i++ {
		d := r.facts.Desc(Fact(i))
		w.Uvarint(uint64(d.Kind))
		switch d.Kind {
		case KindReg:
			w.Uvarint(uint64(d.Reg.Def.ID()))
		case KindObjField:
			w.Uvarint(uint64(d.Obj.ID))
			w.String(d.Field.QualifiedName())
		case KindObjElem, KindObjLen:
			w.Uvarint(uint64(d.Obj.ID))
		case KindObjState:
			w.Uvarint(uint64(d.Obj.ID))
			w.Uvarint(uint64(d.State))
		case KindStatic:
			w.String(d.Field.QualifiedName())
		default:
			return nil, fmt.Errorf("dataflow: encode: bad fact kind %d", d.Kind)
		}
	}

	// Per-node fact lists with their discovery parents, node-sorted.
	nodes := make([]sdg.Node, 0, len(r.factsAt))
	for n := range r.factsAt { //determinism:ok — sorted below
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	w.Uvarint(uint64(len(nodes)))
	for _, n := range nodes {
		facts := r.factsAt[n]
		w.Uvarint(uint64(n))
		w.Uvarint(uint64(len(facts)))
		for _, d := range facts {
			rec := r.atNode[nfKey(n, d)]
			w.Uvarint(uint64(d))
			w.Uvarint(rec.prev)
			w.Uvarint(uint64(rec.step))
		}
	}
	w.Int(r.PathEdges)
	w.Int(r.SummaryEdges)
	return w.Bytes(), nil
}

// DecodeResults rebuilds Results from data against prog, pts, and the
// dependence graph supplying the node space. Any structural fault in
// data is an error.
func DecodeResults(data []byte, prog *ir.Program, pts *pointsto.Result, g *sdg.Graph) (*Results, error) {
	fields := make(map[string]*types.FieldInfo)
	for _, ci := range prog.Info.Classes {
		for _, fi := range ci.Fields {
			fields[fi.QualifiedName()] = fi
		}
	}
	objects := pts.Objects()

	r := artifact.NewReader(data)
	res := &Results{
		Name:      r.String(),
		ConfigKey: r.String(),
		graph:     g,
		facts:     NewFacts(),
		atNode:    make(map[uint64]parentRec),
		factsAt:   make(map[sdg.Node][]Fact),
	}
	fx := res.facts

	numFacts := r.Len()
	for i := 0; i < numFacts; i++ {
		kind := FactKind(r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		var got Fact
		switch kind {
		case KindReg:
			id := int(r.Uvarint())
			ins := prog.InstrByID(id)
			if ins == nil || ins.Def() == nil {
				return nil, fmt.Errorf("dataflow: decode: instr %d does not define a register", id)
			}
			got = fx.Reg(ins.Def())
		case KindObjField:
			o, err := decodeObj(r, objects)
			if err != nil {
				return nil, err
			}
			fi, err := decodeField(r, fields)
			if err != nil {
				return nil, err
			}
			got = fx.ObjField(o, fi)
		case KindObjElem, KindObjLen, KindObjState:
			o, err := decodeObj(r, objects)
			if err != nil {
				return nil, err
			}
			switch kind {
			case KindObjElem:
				got = fx.ObjElem(o)
			case KindObjLen:
				got = fx.ObjLen(o)
			default:
				got = fx.ObjState(o, uint8(r.Uvarint()))
			}
		case KindStatic:
			fi, err := decodeField(r, fields)
			if err != nil {
				return nil, err
			}
			got = fx.Static(fi)
		default:
			return nil, fmt.Errorf("dataflow: decode: bad fact kind %d", kind)
		}
		if got != Fact(i+1) {
			return nil, fmt.Errorf("dataflow: decode: fact %d re-interned as %d (duplicate descriptor)", i+1, got)
		}
	}

	numNodes := r.Len()
	for i := 0; i < numNodes; i++ {
		n := sdg.Node(r.Uvarint())
		cnt := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if int(n) < 0 || int(n) >= g.NumNodes() {
			return nil, fmt.Errorf("dataflow: decode: node %d of %d", n, g.NumNodes())
		}
		for j := 0; j < cnt; j++ {
			d := Fact(r.Uvarint())
			prev := r.Uvarint()
			step := StepKind(r.Uvarint())
			if r.Err() != nil {
				return nil, r.Err()
			}
			if int(d) >= fx.NumFacts() {
				return nil, fmt.Errorf("dataflow: decode: fact %d of %d", d, fx.NumFacts())
			}
			if step > StepSummary {
				return nil, fmt.Errorf("dataflow: decode: bad step kind %d", step)
			}
			key := nfKey(n, d)
			if _, dup := res.atNode[key]; dup {
				return nil, fmt.Errorf("dataflow: decode: duplicate fact %d at node %d", d, n)
			}
			res.atNode[key] = parentRec{prev: prev, step: step}
			res.factsAt[n] = append(res.factsAt[n], d)
		}
	}
	res.PathEdges = r.Int()
	res.SummaryEdges = r.Int()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	// Parent references must resolve within the table (or be roots) so
	// Trace can never walk into the void.
	for _, rec := range res.atNode {
		if rec.prev == parentRoot {
			continue
		}
		if _, ok := res.atNode[rec.prev]; !ok {
			return nil, fmt.Errorf("dataflow: decode: dangling parent reference %#x", rec.prev)
		}
	}
	return res, nil
}

func decodeObj(r *artifact.Reader, objects []*pointsto.Object) (*pointsto.Object, error) {
	id := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if id >= uint64(len(objects)) {
		return nil, fmt.Errorf("dataflow: decode: object ID %d of %d", id, len(objects))
	}
	return objects[id], nil
}

func decodeField(r *artifact.Reader, fields map[string]*types.FieldInfo) (*types.FieldInfo, error) {
	name := r.String()
	if r.Err() != nil {
		return nil, r.Err()
	}
	fi, ok := fields[name]
	if !ok {
		return nil, fmt.Errorf("dataflow: decode: unknown field %q", name)
	}
	return fi, nil
}
