package randprog_test

import (
	"testing"
	"testing/quick"

	"thinslice/internal/ir"
	"thinslice/internal/ir/ssa"
	"thinslice/internal/lang/loader"
	"thinslice/internal/randprog"
)

func TestGeneratedProgramsTypeCheck(t *testing.T) {
	f := func(seed int64) bool {
		srcs := randprog.Generate(seed, randprog.DefaultConfig)
		_, err := loader.Load(srcs)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, srcs["rand.mj"])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedProgramsLowerToValidSSA(t *testing.T) {
	f := func(seed int64) bool {
		info, err := loader.Load(randprog.Generate(seed, randprog.DefaultConfig))
		if err != nil {
			return false
		}
		prog := ir.Lower(info)
		for _, m := range prog.Methods {
			if err := ssa.Verify(m); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := randprog.Generate(7, randprog.DefaultConfig)
	b := randprog.Generate(7, randprog.DefaultConfig)
	if a["rand.mj"] != b["rand.mj"] {
		t.Fatal("same seed produced different programs")
	}
	c := randprog.Generate(8, randprog.DefaultConfig)
	if a["rand.mj"] == c["rand.mj"] {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestLargerConfigs(t *testing.T) {
	cfg := randprog.Config{Classes: 5, Stmts: 80, MaxDepth: 4}
	for seed := int64(0); seed < 5; seed++ {
		if _, err := loader.Load(randprog.Generate(seed, cfg)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
