// Package randprog generates random, well-typed programs in the
// MiniJava-style source language, for property-based testing
// (testing/quick) across the whole pipeline: SSA well-formedness,
// slicer inclusion laws, points-to soundness against the interpreter,
// and dynamic-vs-static slice containment.
//
// Generated programs always terminate: loops are bounded counters, and
// there is no recursion. Reference-typed expressions may evaluate to
// null, so generated field accesses are guarded.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// Classes is the number of data classes (≥1).
	Classes int
	// Stmts is the rough number of statements in main.
	Stmts int
	// MaxDepth bounds expression nesting.
	MaxDepth int
}

// DefaultConfig is a moderate size suitable for quick.Check rounds.
var DefaultConfig = Config{Classes: 3, Stmts: 25, MaxDepth: 3}

// Generate produces a deterministic random program for a seed.
func Generate(seed int64, cfg Config) map[string]string {
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	if cfg.Stmts < 1 {
		cfg.Stmts = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	return map[string]string{"rand.mj": g.program()}
}

type varInfo struct {
	name string
	typ  string // "int", "boolean", "string", or a class name
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	b      strings.Builder
	indent int
	vars   []varInfo
	nVars  int
	loops  int
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
}

func (g *gen) fresh() string {
	g.nVars++
	return fmt.Sprintf("v%d", g.nVars)
}

func (g *gen) className(i int) string { return fmt.Sprintf("P%d", i) }

func (g *gen) program() string {
	// Data classes: each has an int field, a string field, a reference
	// to the previous class, and getter/setter/compute methods.
	for i := 0; i < g.cfg.Classes; i++ {
		name := g.className(i)
		g.w("class %s {", name)
		g.indent++
		g.w("int val;")
		g.w("string tag;")
		if i > 0 {
			g.w("%s prev;", g.className(i-1))
		}
		g.w("%s(int v) {", name)
		g.indent++
		g.w("this.val = v;")
		g.w("this.tag = \"%s-\" + itoa(v);", name)
		if i > 0 {
			g.w("this.prev = null;")
		}
		g.indent--
		g.w("}")
		g.w("int value() {")
		g.indent++
		g.w("return this.val;")
		g.indent--
		g.w("}")
		g.w("void setValue(int v) {")
		g.indent++
		g.w("this.val = v;")
		g.indent--
		g.w("}")
		g.w("int compute(int x) {")
		g.indent++
		g.w("return this.val * %d + x;", g.rng.Intn(7)+1)
		g.indent--
		g.w("}")
		g.indent--
		g.w("}")
	}
	// Utility statics.
	g.w("class Util {")
	g.indent++
	g.w("static int twice(int x) {")
	g.indent++
	g.w("return x + x;")
	g.indent--
	g.w("}")
	g.w("static int pickMax(int a, int b) {")
	g.indent++
	g.w("if (a > b) {")
	g.indent++
	g.w("return a;")
	g.indent--
	g.w("}")
	g.w("return b;")
	g.indent--
	g.w("}")
	g.indent--
	g.w("}")

	g.w("class Main {")
	g.indent++
	g.w("static void main() {")
	g.indent++
	// Seed variables so expressions always have material.
	g.declare("int", fmt.Sprintf("%d", g.rng.Intn(100)))
	g.declare("int", "inputInt()")
	g.declare("boolean", "true")
	g.declare("string", "input()")
	for i := 0; i < g.cfg.Classes; i++ {
		cls := g.className(i)
		g.declare(cls, fmt.Sprintf("new %s(%d)", cls, g.rng.Intn(50)))
	}
	g.declare("Vector", "new Vector()")
	for i := 0; i < g.cfg.Stmts; i++ {
		g.stmt(0)
	}
	// Always end by printing everything, so every variable is a
	// potential seed with real flow behind it.
	for _, v := range g.vars {
		switch v.typ {
		case "int", "boolean", "string":
			g.w("print(%s);", v.name)
		}
	}
	g.indent--
	g.w("}")
	g.indent--
	g.w("}")
	return g.b.String()
}

func (g *gen) declare(typ, init string) string {
	name := g.fresh()
	g.w("%s %s = %s;", typ, name, init)
	g.vars = append(g.vars, varInfo{name, typ})
	return name
}

// pick returns a random in-scope variable of the given type, or "".
func (g *gen) pick(typ string) string {
	var cands []string
	for _, v := range g.vars {
		if v.typ == typ {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.rng.Intn(len(cands))]
}

func (g *gen) anyClassVar() (string, string) {
	var cands []varInfo
	for _, v := range g.vars {
		if strings.HasPrefix(v.typ, "P") {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return "", ""
	}
	c := cands[g.rng.Intn(len(cands))]
	return c.name, c.typ
}

// intExpr generates an int-typed expression.
func (g *gen) intExpr(depth int) string {
	if depth >= g.cfg.MaxDepth || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(100))
		case 1:
			if v := g.pick("int"); v != "" {
				return v
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		default:
			if v, _ := g.anyClassVar(); v != "" {
				return fmt.Sprintf("%s.val", v)
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 2:
		return fmt.Sprintf("(%s * %d)", g.intExpr(depth+1), g.rng.Intn(5)+1)
	case 3:
		return fmt.Sprintf("Util.twice(%s)", g.intExpr(depth+1))
	case 4:
		return fmt.Sprintf("Util.pickMax(%s, %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	default:
		if v, _ := g.anyClassVar(); v != "" {
			return fmt.Sprintf("%s.compute(%s)", v, g.intExpr(depth+1))
		}
		return g.intExpr(depth + 1)
	}
}

func (g *gen) boolExpr(depth int) string {
	if depth >= g.cfg.MaxDepth || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			if v := g.pick("boolean"); v != "" {
				return v
			}
		}
		return []string{"true", "false"}[g.rng.Intn(2)]
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s < %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s == %s)", g.intExpr(depth+1), g.intExpr(depth+1))
	case 2:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth+1), g.boolExpr(depth+1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth+1))
	}
}

func (g *gen) strExpr(depth int) string {
	if depth >= g.cfg.MaxDepth || g.rng.Intn(2) == 0 {
		if g.rng.Intn(2) == 0 {
			if v := g.pick("string"); v != "" {
				return v
			}
		}
		return fmt.Sprintf("\"s%d\"", g.rng.Intn(50))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.strExpr(depth+1), g.strExpr(depth+1))
	case 1:
		return fmt.Sprintf("itoa(%s)", g.intExpr(depth+1))
	default:
		if v, _ := g.anyClassVar(); v != "" {
			return fmt.Sprintf("%s.tag", v)
		}
		return fmt.Sprintf("\"t%d\"", g.rng.Intn(50))
	}
}

// stmt emits one random statement. nesting bounds block depth.
func (g *gen) stmt(nesting int) {
	choice := g.rng.Intn(12)
	if nesting >= 2 && choice >= 9 {
		choice = g.rng.Intn(9)
	}
	switch choice {
	case 0:
		g.declare("int", g.intExpr(0))
	case 1:
		g.declare("boolean", g.boolExpr(0))
	case 2:
		g.declare("string", g.strExpr(0))
	case 3:
		if v := g.pick("int"); v != "" {
			g.w("%s = %s;", v, g.intExpr(0))
		} else {
			g.declare("int", g.intExpr(0))
		}
	case 4:
		if v, _ := g.anyClassVar(); v != "" {
			g.w("%s.setValue(%s);", v, g.intExpr(0))
		} else {
			g.declare("int", g.intExpr(0))
		}
	case 5:
		if v, _ := g.anyClassVar(); v != "" {
			g.w("%s.val = %s;", v, g.intExpr(0))
		} else {
			g.declare("int", g.intExpr(0))
		}
	case 6:
		// Container round trip: push a value, pull it back with a cast.
		vec := g.pick("Vector")
		cv, ct := g.anyClassVar()
		if vec != "" && cv != "" {
			g.w("%s.add(%s);", vec, cv)
			name := g.fresh()
			g.w("%s %s = (%s) %s.get(%s.size() - 1);", ct, name, ct, vec, vec)
			g.vars = append(g.vars, varInfo{name, ct})
		}
	case 7:
		cls := g.className(g.rng.Intn(g.cfg.Classes))
		g.declare(cls, fmt.Sprintf("new %s(%s)", cls, g.intExpr(0)))
	case 8:
		g.w("print(%s);", g.intExpr(0))
	case 9:
		// Bounded if.
		g.w("if (%s) {", g.boolExpr(0))
		g.indent++
		saved := len(g.vars)
		n := g.rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			g.stmt(nesting + 1)
		}
		g.vars = g.vars[:saved]
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			saved := len(g.vars)
			g.stmt(nesting + 1)
			g.vars = g.vars[:saved]
			g.indent--
		}
		g.w("}")
	case 10:
		// Bounded counter loop: always terminates.
		i := g.fresh()
		bound := g.rng.Intn(5) + 1
		g.w("int %s = 0;", i)
		g.w("while (%s < %d) {", i, bound)
		g.indent++
		saved := len(g.vars)
		g.stmt(nesting + 1)
		g.vars = g.vars[:saved]
		g.w("%s = %s + 1;", i, i)
		g.indent--
		g.w("}")
	default:
		// Link two class instances if the hierarchy allows it.
		if g.cfg.Classes > 1 {
			hi := g.rng.Intn(g.cfg.Classes-1) + 1
			a := g.pick(g.className(hi))
			b := g.pick(g.className(hi - 1))
			if a != "" && b != "" {
				g.w("%s.prev = %s;", a, b)
				return
			}
		}
		g.w("print(%s);", g.strExpr(0))
	}
}
