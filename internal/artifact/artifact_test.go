package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Int(-17)
	w.Int64(1 << 50)
	w.Bool(true)
	w.Bool(false)
	w.String("")
	w.String("héllo\x00world")
	w.Ints([]int{3, -1, 0, 1 << 30})
	w.Ints(nil)

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d, want %d", got, uint64(1)<<40)
	}
	if got := r.Int(); got != -17 {
		t.Errorf("Int = %d, want -17", got)
	}
	if got := r.Int64(); got != 1<<50 {
		t.Errorf("Int64 = %d, want %d", got, int64(1)<<50)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.String(); got != "héllo\x00world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Ints(); len(got) != 4 || got[0] != 3 || got[1] != -1 || got[3] != 1<<30 {
		t.Errorf("Ints = %v", got)
	}
	if got := r.Ints(); got != nil {
		t.Errorf("empty Ints = %v, want nil", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestReaderRejectsMalformedInput(t *testing.T) {
	cases := map[string]func(r *Reader){
		"truncated uvarint": func(r *Reader) { r.Uvarint() },
		"oversized string":  func(r *Reader) { _ = r.String() },
		"oversized count":   func(r *Reader) { r.Ints() },
	}
	inputs := map[string][]byte{
		"truncated uvarint": {0x80},             // continuation bit, no next byte
		"oversized string":  {0xFF, 0xFF, 0x03}, // length way past the end
		"oversized count":   {0xFF, 0xFF, 0x03},
	}
	for name, read := range cases {
		r := NewReader(inputs[name])
		read(r)
		if r.Err() == nil {
			t.Errorf("%s: no error", name)
		}
		// Sticky: further reads stay failed and return zero values.
		if got := r.Uvarint(); got != 0 {
			t.Errorf("%s: read after error = %d, want 0", name, got)
		}
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	var w Writer
	w.Uvarint(7)
	data := append(w.Bytes(), 0x01)
	r := NewReader(data)
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("Uvarint = %d", got)
	}
	if err := r.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload \x00\x01\x02")
	rec := Encode("ir", "abc123", payload)
	got, err := Decode(rec, "ir", "abc123")
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	kind, key, err := Inspect(rec)
	if err != nil || kind != "ir" || key != "abc123" {
		t.Fatalf("Inspect = %q, %q, %v", kind, key, err)
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	rec := Encode("sdg", "k", nil)
	got, err := Decode(rec, "sdg", "k")
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %v, want empty", got)
	}
}

// reencode rebuilds a record from mutated body bytes with a fresh,
// valid checksum — for tests that must get past the CRC to reach the
// header checks (version skew, kind/key mismatch).
func reencode(rec []byte, mutate func(body []byte) []byte) []byte {
	body := mutate(append([]byte(nil), rec[:len(rec)-4]...))
	sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(body, sum)
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	rec := Encode("pts", "key1", []byte("payload"))
	// The format and codec version bytes immediately follow the magic
	// (both are < 128, so single-byte varints).
	fmtOff := len(magic)
	codecOff := fmtOff + 1

	for name, off := range map[string]int{"format": fmtOff, "codec": codecOff} {
		skewed := reencode(rec, func(body []byte) []byte {
			body[off] = body[off] + 1
			return body
		})
		_, err := Decode(skewed, "pts", "key1")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s skew: err = %v, want *CorruptError", name, err)
		}
		if !ce.IsVersionSkew() {
			t.Errorf("%s skew: reason = %q, want version skew", name, ce.Reason)
		}
	}
}

func TestDecodeRejectsKindAndKeyMismatch(t *testing.T) {
	rec := Encode("cha", "deadbeef", []byte("x"))
	if _, err := Decode(rec, "modref", "deadbeef"); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("kind mismatch: %v", err)
	}
	if _, err := Decode(rec, "cha", "feedface"); err == nil || !strings.Contains(err.Error(), "key") {
		t.Errorf("key mismatch: %v", err)
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	rec := Encode("ir", "k", bytes.Repeat([]byte("abcdefgh"), 16))
	// Flip one bit at every position; every mutation must be detected.
	for i := range rec {
		mutated := append([]byte(nil), rec...)
		mutated[i] ^= 0x10
		if _, err := Decode(mutated, "ir", "k"); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
		var ce *CorruptError
		if _, err := Decode(mutated, "ir", "k"); !errors.As(err, &ce) {
			t.Fatalf("bit flip at byte %d: err not *CorruptError: %v", i, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	rec := Encode("sdg", "k", []byte("some payload bytes"))
	for n := 0; n < len(rec); n++ {
		if _, err := Decode(rec[:n], "sdg", "k"); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte{0xFF}, 64), []byte("TSART\x00 but not really a record")} {
		if _, err := Decode(data, "ir", "k"); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}
