// Package artifact defines the stable on-disk encoding shared by every
// persisted analysis artifact: low-level wire primitives (varints,
// length-prefixed strings) plus a self-describing, versioned,
// checksummed record container. The per-artifact codecs (ir, pointsto,
// sdg, cha, modref) build their payloads with Writer/Reader and wrap
// them in Encode/Decode, so a schema change, a truncated file, or a
// flipped bit is always *detected* — decoded into a typed
// *CorruptError — and never misinterpreted as a valid artifact.
package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer builds a payload. The zero value is ready to use; methods
// never fail (encoding is total).
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// Int appends a signed integer (zigzag varint).
func (w *Writer) Int(x int) { w.Int64(int64(x)) }

// Int64 appends a signed 64-bit integer (zigzag varint).
func (w *Writer) Int64(x int64) {
	w.buf = binary.AppendVarint(w.buf, x)
}

// Bool appends a boolean.
func (w *Writer) Bool(b bool) {
	if b {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Ints appends a length-prefixed slice of signed integers.
func (w *Writer) Ints(xs []int) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Int(x)
	}
}

// Reader consumes a payload produced by Writer. Every accessor is
// bounds-checked and sticky-error: after the first malformed field all
// further reads return zero values, and Err/Finish report the fault.
// Corrupt input can therefore never panic a decoder — only produce an
// error.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Finish returns an error if decoding failed or bytes remain
// unconsumed (trailing garbage is corruption, not slack).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("artifact: %d trailing byte(s) after payload", len(r.data)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("artifact: malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return x
}

// Int reads a signed integer. Values outside the int range fail.
func (r *Reader) Int() int {
	x := r.Int64()
	if int64(int(x)) != x {
		r.fail("artifact: integer %d overflows int", x)
		return 0
	}
	return int(x)
}

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("artifact: malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return x
}

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	switch v := r.Uvarint(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("artifact: boolean out of range: %d", v)
		return false
	}
}

// String reads a length-prefixed string. The length is validated
// against the remaining bytes before any allocation, so a corrupt
// length cannot trigger a huge allocation.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("artifact: string length %d exceeds %d remaining bytes", n, len(r.data)-r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Ints reads a length-prefixed slice of signed integers.
func (r *Reader) Ints() []int {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Int()
		if r.err != nil {
			return nil
		}
	}
	return xs
}

// Len reads a length prefix and validates it against the remaining
// input (every encoded element costs at least one byte), so corrupt
// counts cannot drive huge allocations in decoders.
func (r *Reader) Len() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)-r.off) || n > math.MaxInt32 {
		r.fail("artifact: element count %d exceeds %d remaining bytes", n, len(r.data)-r.off)
		return 0
	}
	return int(n)
}
