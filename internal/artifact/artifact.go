package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Format versions. FormatVersion covers the container layout below;
// CodecVersion covers the per-artifact payload encodings (the ir /
// pointsto / sdg / cha / modref codecs). Bump CodecVersion on any
// payload schema change; bump FormatVersion only if the container
// itself changes. A reader never interprets a record written under a
// different version — it reports version skew and the caller rebuilds.
const (
	FormatVersion = 1
	// CodecVersion 2: points-to results canonicalize object/context IDs
	// (PR 9), which reorders the pointsto and sdg payload bytes; records
	// written under version 1 would relink but carry the old ordering,
	// so they must miss.
	CodecVersion = 2
)

// magic identifies a thinslice artifact file. The trailing byte pins
// byte order and leaves no prefix ambiguity with text formats.
const magic = "TSART\x00"

// crcTable is the Castagnoli polynomial, the common choice for storage
// checksums (hardware-accelerated by the stdlib where available).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError describes why a record was rejected. Every rejection
// reason — bad magic, version skew, kind/key mismatch, truncation,
// checksum mismatch, or a payload that fails structural decoding — is
// corruption from the cache's point of view: the file is quarantined
// and the artifact rebuilt.
type CorruptError struct {
	// Reason is a stable, single-word class: "magic", "format-version",
	// "codec-version", "kind", "key", "truncated", "checksum",
	// "payload".
	Reason string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("artifact: corrupt record (%s): %s", e.Reason, e.Detail)
}

// IsVersionSkew reports whether the record was written under a
// different (past or future) format or codec version — well-formed,
// just not ours.
func (e *CorruptError) IsVersionSkew() bool {
	return e.Reason == "format-version" || e.Reason == "codec-version"
}

func corrupt(reason, format string, args ...any) error {
	return &CorruptError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// Encode frames payload as a self-describing record:
//
//	magic | format | codec | kind | key | len(payload) | payload | crc32c
//
// kind names the artifact type ("ir", "pts", ...) and key echoes the
// content-hash store key, so a record read back under the wrong name —
// a renamed file, a hash collision in the path layer, a bug — is
// detected before its payload is ever interpreted.
func Encode(kind, key string, payload []byte) []byte {
	var w Writer
	w.buf = append(w.buf, magic...)
	w.Uvarint(FormatVersion)
	w.Uvarint(CodecVersion)
	w.String(kind)
	w.String(key)
	w.Uvarint(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	sum := crc32.Checksum(w.buf, crcTable)
	return binary.LittleEndian.AppendUint32(w.buf, sum)
}

// Decode verifies data against wantKind/wantKey and returns the
// payload. Any failure is a *CorruptError; the payload is returned
// only after the whole-record checksum has been verified, so a
// returned payload is exactly what Encode wrote.
func Decode(data []byte, wantKind, wantKey string) ([]byte, error) {
	if len(data) < len(magic)+4 {
		return nil, corrupt("truncated", "record is %d bytes", len(data))
	}
	// Checksum first: everything else in the header is only trustworthy
	// once the record as a whole is known intact.
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, corrupt("checksum", "crc32c %08x, record says %08x", got, want)
	}
	if string(body[:len(magic)]) != magic {
		return nil, corrupt("magic", "bad magic %q", body[:len(magic)])
	}
	r := NewReader(body[len(magic):])
	if v := r.Uvarint(); r.Err() == nil && v != FormatVersion {
		return nil, corrupt("format-version", "record format v%d, this build reads v%d", v, FormatVersion)
	}
	if v := r.Uvarint(); r.Err() == nil && v != CodecVersion {
		return nil, corrupt("codec-version", "record codec v%d, this build reads v%d", v, CodecVersion)
	}
	kind := r.String()
	key := r.String()
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, corrupt("truncated", "header: %v", err)
	}
	if kind != wantKind {
		return nil, corrupt("kind", "record holds %q, expected %q", kind, wantKind)
	}
	if key != wantKey {
		return nil, corrupt("key", "record keyed %q, expected %q", key, wantKey)
	}
	rest := body[len(magic)+r.off:]
	if uint64(len(rest)) != n {
		return nil, corrupt("truncated", "payload is %d bytes, header says %d", len(rest), n)
	}
	return rest, nil
}

// Inspect reads only the self-describing header of a record, verifying
// the checksum: it returns the kind and key the record claims to hold.
// fsck uses it to describe entries without knowing their expected key.
func Inspect(data []byte) (kind, key string, err error) {
	if len(data) < len(magic)+4 {
		return "", "", corrupt("truncated", "record is %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return "", "", corrupt("checksum", "crc32c %08x, record says %08x", got, want)
	}
	if string(body[:len(magic)]) != magic {
		return "", "", corrupt("magic", "bad magic %q", body[:len(magic)])
	}
	r := NewReader(body[len(magic):])
	if v := r.Uvarint(); r.Err() == nil && v != FormatVersion {
		return "", "", corrupt("format-version", "record format v%d, this build reads v%d", v, FormatVersion)
	}
	if v := r.Uvarint(); r.Err() == nil && v != CodecVersion {
		return "", "", corrupt("codec-version", "record codec v%d, this build reads v%d", v, CodecVersion)
	}
	kind = r.String()
	key = r.String()
	if err := r.Err(); err != nil {
		return "", "", corrupt("truncated", "header: %v", err)
	}
	return kind, key, nil
}
