package checkers

import (
	"fmt"
	"strings"
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/papercases"
)

// corpusSets returns the equivalence corpus: each paper case as its own
// program (their class names collide), plus the seeded-bug fixtures as
// one multi-entry set.
func corpusSets(t *testing.T) []map[string]string {
	t.Helper()
	return []map[string]string{
		{papercases.FirstNamesFile: papercases.FirstNames},
		{papercases.ToyFile: papercases.Toy},
		{papercases.FileBugFile: papercases.FileBug},
		{papercases.ToughCastFile: papercases.ToughCast},
		loadExamples(t),
	}
}

// TestTaintIFDSSuperset is the dataflow-equivalence gate: on the whole
// corpus, every sink the thin-slice-membership formulation flags is
// also flagged by the IFDS formulation (IFDS ⊇ slice-based), and the
// clean fixtures stay clean under IFDS.
func TestTaintIFDSSuperset(t *testing.T) {
	keys := func(rep *Report) map[string]bool {
		out := make(map[string]bool)
		for _, f := range rep.Findings {
			out[fmt.Sprintf("%s:%d", f.Pos.File, f.Pos.Line)] = true
		}
		return out
	}
	sliceTotal := 0
	for _, set := range corpusSets(t) {
		a := analyze(t, set)
		ifds := keys(Run(a, []Checker{Taint{}}, Config{}))
		slice := keys(Run(a, []Checker{sliceTaint{}}, Config{}))
		sliceTotal += len(slice)
		for k := range slice {
			if !ifds[k] {
				t.Errorf("slice-based taint finding at %s missing from IFDS taint", k)
			}
		}
		for k := range ifds {
			if strings.Contains(k, "clean") {
				t.Errorf("IFDS taint finding in a clean fixture: %s", k)
			}
		}
	}
	if sliceTotal == 0 {
		t.Fatal("corpus produced no slice-based taint findings; superset check is vacuous")
	}
}

// TestTypestateFileBug: the paper's Figure 4 — a File retrieved from a
// Vector is closed through one alias and used through another. The
// use-after-close is the isOpen() check inside readFromFile.
func TestTypestateFileBug(t *testing.T) {
	rep := runAll(t, map[string]string{papercases.FileBugFile: papercases.FileBug})
	fs := findingsIn(rep, "typestate", papercases.FileBugFile)
	if len(fs) != 1 {
		t.Fatalf("want 1 typestate finding, got %v", rep.Findings)
	}
	if want := papercases.Line(papercases.FileBug, "CHECK"); fs[0].Pos.Line != want {
		t.Errorf("finding at line %d, want the CHECK line %d", fs[0].Pos.Line, want)
	}
	if !strings.Contains(fs[0].Message, "use after close") {
		t.Errorf("message %q does not name a use after close", fs[0].Message)
	}
	w := fs[0].Witness
	if w == nil || len(w.Chain) < 2 {
		t.Fatalf("want a discovery-trace witness crossing to the close, got %v", w)
	}
	end := w.Chain[len(w.Chain)-1].Ins
	if want := papercases.Line(papercases.FileBug, "CLOSECALL"); end.Pos().Line != want {
		t.Errorf("witness ends at %s, want the CLOSECALL line %d", end.Pos(), want)
	}
}

func TestTypestateDoubleClose(t *testing.T) {
	rep := runAll(t, prog(`
class Main {
    static void main() {
        Stream s = new Stream(1);
        print(s.read());
        s.close();
        s.close();
    }
}`))
	fs := findingsIn(rep, "typestate", "t.mj")
	if len(fs) != 1 {
		t.Fatalf("want 1 typestate finding, got %v", rep.Findings)
	}
	if fs[0].Pos.Line != 7 || !strings.Contains(fs[0].Message, "double close") {
		t.Errorf("want double close at line 7, got %v", fs[0])
	}
}

// TestTypestateNegative: the protocol-respecting order (use, then one
// close) produces nothing, even with the same calls present.
func TestTypestateNegative(t *testing.T) {
	rep := runAll(t, prog(`
class Main {
    static void main() {
        Stream s = new Stream(1);
        print(s.read());
        s.write(2);
        s.close();
    }
}`))
	if fs := findingsIn(rep, "typestate", "t.mj"); len(fs) != 0 {
		t.Errorf("protocol-respecting program flagged: %v", fs)
	}
}

// TestDefUninitPositive: the read happens before the initializing call,
// so UninitField (is it ever stored?) stays silent while DefUninit (is
// it stored on every path to here?) fires — exactly the sharpening.
func TestDefUninitPositive(t *testing.T) {
	rep := runAll(t, prog(`
class Box {
    int val;
    Box() { }
    void fill(int v) { this.val = v; }
}
class Main {
    static void main() {
        Box b = new Box();
        print(b.val);
        b.fill(3);
        print(b.val);
    }
}`))
	fs := findingsIn(rep, "defuninit", "t.mj")
	if len(fs) != 1 {
		t.Fatalf("want 1 defuninit finding, got %v", rep.Findings)
	}
	if fs[0].Pos.Line != 10 {
		t.Errorf("finding at line %d, want the early read at line 10", fs[0].Pos.Line)
	}
	if len(findingsIn(rep, "uninitfield", "t.mj")) != 0 {
		t.Error("uninitfield fired on a field that IS stored; defuninit should be the only reporter")
	}
}

func TestDefUninitNegative(t *testing.T) {
	rep := runAll(t, prog(`
class Box {
    int val;
    Box(int v) { this.val = v; }
}
class Main {
    static void main() {
        Box b = new Box(1);
        print(b.val);
    }
}`))
	if fs := findingsIn(rep, "defuninit", "t.mj"); len(fs) != 0 {
		t.Errorf("constructor-initialized read flagged: %v", fs)
	}
}

// TestDefUninitBranchInit: initialization on only one branch is still
// "may init" at the join, so the definite checker stays silent — it
// only fires when NO path initializes.
func TestDefUninitBranchInit(t *testing.T) {
	rep := runAll(t, prog(`
class Box {
    int val;
    Box() { }
}
class Main {
    static void main() {
        Box b = new Box();
        if (inputInt() > 0) { b.val = 1; }
        print(b.val);
    }
}`))
	if fs := findingsIn(rep, "defuninit", "t.mj"); len(fs) != 0 {
		t.Errorf("one-branch init flagged as definite: %v", fs)
	}
}

// TestDataflowBudgetTruncation: exhausting PhaseDataflow mid-solve must
// degrade the run to a Truncated report with the typed error — never a
// panic or a silently complete-looking answer — and the absence-based
// defuninit checker must emit nothing from the partial facts.
func TestDataflowBudgetTruncation(t *testing.T) {
	b := budget.New(nil, budget.WithPhaseSteps(budget.PhaseDataflow, 5))
	a := analyze(t, loadExamples(t), analyzer.WithBudget(b))
	rep := Run(a, All(), Config{})
	if !rep.Truncated {
		t.Fatal("want Truncated report under a 5-step dataflow budget")
	}
	if rep.Err == nil || !budget.IsExhausted(rep.Err) {
		t.Fatalf("want ErrExhausted, got %v", rep.Err)
	}
	if ph, _ := budget.PhaseOf(rep.Err); ph != budget.PhaseDataflow {
		t.Fatalf("want phase %q, got %q", budget.PhaseDataflow, ph)
	}
	for _, f := range rep.Findings {
		if f.Checker == "defuninit" {
			t.Errorf("absence-based defuninit finding from a truncated solve: %v", f)
		}
	}
}
