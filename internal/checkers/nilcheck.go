package checkers

import (
	"fmt"

	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
)

// NilDeref finds dereferences of references that may be null: field
// accesses, array accesses, and virtual calls whose base value derives
// from a `null` literal along some SSA path not dominated by a null
// check. The analysis is flow-sensitive per block: `if (x != null)`
// guards (and `x instanceof C` tests, which imply non-nullness) refine
// the facts on their branch edges, and a successful dereference proves
// its base non-null for the rest of the block. Points-to reachability
// prunes the methods examined.
type NilDeref struct{}

// Name implements Checker.
func (NilDeref) Name() string { return "nilderef" }

// Desc implements Checker.
func (NilDeref) Desc() string { return "dereference of a possibly-null reference" }

// Run implements Checker.
func (cc NilDeref) Run(ctx *Context) []Finding {
	var out []Finding
	for _, m := range ctx.methods() {
		out = append(out, cc.runMethod(ctx, m)...)
		if ctx.stop != nil {
			break
		}
	}
	return out
}

func (cc NilDeref) runMethod(ctx *Context, m *ir.Method) []Finding {
	// Pass 1: SSA may-null derivation. origins[r] is the set of
	// ConstNull statements whose value may reach r through producer
	// flow (Copy, Cast, Phi); regs absent from the map cannot be null
	// by local derivation.
	origins := make(map[*ir.Reg][]ir.Instr)
	changed := true
	for changed {
		changed = false
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			var dst *ir.Reg
			var srcs []*ir.Reg
			switch ins := ins.(type) {
			case *ir.ConstNull:
				if len(origins[ins.Dst]) == 0 {
					origins[ins.Dst] = []ir.Instr{ins}
					changed = true
				}
				return
			case *ir.Copy:
				dst, srcs = ins.Dst, []*ir.Reg{ins.Src}
			case *ir.Cast:
				dst, srcs = ins.Dst, []*ir.Reg{ins.Src}
			case *ir.Phi:
				dst, srcs = ins.Dst, ins.Edges
			default:
				return
			}
			for _, s := range srcs {
				for _, o := range origins[s] {
					if !containsInstr(origins[dst], o) {
						origins[dst] = append(origins[dst], o)
						changed = true
					}
				}
			}
		})
		if ctx.stop != nil {
			return nil
		}
	}
	if len(origins) == 0 {
		return nil // no null literal flows anywhere in this method
	}

	// isNullReg reports whether r is the null literal itself (used to
	// recognize x == null / x != null comparisons).
	isNullReg := func(r *ir.Reg) bool {
		_, ok := r.Def.(*ir.ConstNull)
		return ok
	}

	// Pass 2: forward flow analysis of proven-non-null registers.
	// in/out are per-block sets; the meet over incoming edges is set
	// intersection, with branch refinements applied per edge.
	type factSet map[*ir.Reg]bool
	outSet := make([]factSet, len(m.Blocks))
	// transfer computes the out-set of b from its in-set; when emit is
	// non-nil it also reports unguarded dereferences.
	transfer := func(b *ir.Block, in factSet, emit func(ins ir.Instr, base *ir.Reg)) factSet {
		cur := make(factSet, len(in))
		for r := range in {
			cur[r] = true
		}
		for _, ins := range b.Instrs {
			if !ctx.tick() {
				return cur
			}
			for _, base := range derefBases(ins) {
				if len(origins[base]) > 0 && !cur[base] && emit != nil {
					emit(ins, base)
				}
				// Surviving the dereference proves the base non-null.
				cur[base] = true
			}
		}
		return cur
	}
	// edgeFacts returns the extra facts valid on the CFG edge b→succ,
	// from the branch condition.
	edgeFacts := func(b *ir.Block, succ *ir.Block) []*ir.Reg {
		last := b.Instrs[len(b.Instrs)-1]
		br, ok := last.(*ir.If)
		if !ok {
			return nil
		}
		var facts []*ir.Reg
		switch cond := br.Cond.Def.(type) {
		case *ir.BinOp:
			var tested *ir.Reg
			switch {
			case isNullReg(cond.Y):
				tested = cond.X
			case isNullReg(cond.X):
				tested = cond.Y
			default:
				return nil
			}
			// x != null: non-null on the then edge;
			// x == null: non-null on the else edge.
			if (cond.Op == token.NEQ && succ == br.Then) ||
				(cond.Op == token.EQL && succ == br.Else) {
				facts = append(facts, tested)
			}
		case *ir.InstanceOf:
			// x instanceof C is false for null, so x is non-null on
			// the then edge.
			if succ == br.Then {
				facts = append(facts, cond.Src)
			}
		}
		return facts
	}

	// Iterate to a fixpoint. visited marks blocks whose out-set is
	// meaningful; unvisited predecessors are TOP (ignored in the meet).
	visited := make([]bool, len(m.Blocks))
	inOf := func(b *ir.Block) factSet {
		var in factSet
		for _, p := range b.Preds {
			if !visited[p.Index] {
				continue
			}
			edge := make(factSet, len(outSet[p.Index]))
			for r := range outSet[p.Index] {
				edge[r] = true
			}
			for _, r := range edgeFacts(p, b) {
				edge[r] = true
			}
			if in == nil {
				in = edge
				continue
			}
			for r := range in {
				if !edge[r] {
					delete(in, r)
				}
			}
		}
		if in == nil {
			in = make(factSet)
		}
		return in
	}
	for pass := true; pass; {
		pass = false
		for _, b := range m.Blocks {
			if ctx.stop != nil {
				return nil
			}
			out := transfer(b, inOf(b), nil)
			if !visited[b.Index] || !sameFacts(out, outSet[b.Index]) {
				visited[b.Index] = true
				outSet[b.Index] = out
				pass = true
			}
		}
	}

	// Final reporting pass with stable facts.
	var out []Finding
	reported := make(map[*ir.Reg]bool)
	for _, b := range m.Blocks {
		transfer(b, inOf(b), func(ins ir.Instr, base *ir.Reg) {
			if reported[base] || !ctx.keepPos(ins.Pos()) {
				return
			}
			reported[base] = true
			name := base.Hint
			if name == "" {
				name = base.String()
			}
			out = append(out, Finding{
				Checker: cc.Name(),
				Pos:     ins.Pos(),
				Ins:     ins,
				Message: fmt.Sprintf("possible null dereference of %q (null can flow here)", name),
				Witness: ctx.witness(base.Def, origins[base]...),
			})
		})
	}
	return out
}

// derefBases returns the reference operands ins dereferences.
func derefBases(ins ir.Instr) []*ir.Reg {
	switch ins := ins.(type) {
	case *ir.GetField:
		return []*ir.Reg{ins.Obj}
	case *ir.SetField:
		return []*ir.Reg{ins.Obj}
	case *ir.ArrayLoad:
		return []*ir.Reg{ins.Arr}
	case *ir.ArrayStore:
		return []*ir.Reg{ins.Arr}
	case *ir.ArrayLen:
		return []*ir.Reg{ins.Arr}
	case *ir.Call:
		if ins.Mode == ir.CallVirtual && ins.Recv != nil {
			return []*ir.Reg{ins.Recv}
		}
	}
	return nil
}

func containsInstr(list []ir.Instr, ins ir.Instr) bool {
	for _, x := range list {
		if x == ins {
			return true
		}
	}
	return false
}

func sameFacts(a, b map[*ir.Reg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}
