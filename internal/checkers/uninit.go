package checkers

import (
	"fmt"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/ir"
)

// UninitField finds field reads that can only observe the default
// value: a GetField where some object flowing to the receiver is never
// stored to at that field anywhere in the program. The MOD sets of the
// interprocedural mod/ref analysis provide "ever stored" per abstract
// (object, field) location, so a read through any alias of the object
// counts as initialized.
type UninitField struct{}

// Name implements Checker.
func (UninitField) Name() string { return "uninitfield" }

// Desc implements Checker.
func (UninitField) Desc() string { return "field read before any store on an object flowing here" }

// Run implements Checker.
func (cc UninitField) Run(ctx *Context) []Finding {
	stored := ctx.ModRef.ModUnion()
	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			get, ok := ins.(*ir.GetField)
			if !ok || !ctx.keepPos(get.Pos()) {
				return
			}
			for _, o := range ctx.Pts.PointsTo(get.Obj) {
				if stored[modref.Loc{Obj: o, Field: get.Field}] {
					continue
				}
				// Prelude-internal objects follow library idioms the
				// user cannot fix; skip unless asked for.
				if !ctx.keepPos(o.Site.Pos()) {
					continue
				}
				out = append(out, Finding{
					Checker: cc.Name(),
					Pos:     get.Pos(),
					Ins:     get,
					Message: fmt.Sprintf("field %s read but never stored on object allocated at %s",
						get.Field.QualifiedName(), o.Site.Pos()),
					Witness: ctx.witness(get.Obj.Def, o.Site),
				})
				break // one finding per read site
			}
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}
