package checkers

import (
	"fmt"

	"thinslice/internal/dataflow"
	"thinslice/internal/ir"
	"thinslice/internal/sdg"
)

// Taint finds flows from input sources (the `input()` intrinsic
// family, configurable via Config.TaintSources) to sink calls (method
// names in Config.TaintSinks). Propagation is the IFDS taint problem:
// flow- and context-sensitive local def-use, heap store→load through
// points-to-resolved abstract cells, and parameter/return binding with
// per-(callee, entry-fact) summaries — a strict superset of the flows
// the earlier thin-slice-membership formulation saw, with the witness
// reconstructed from the solver's own discovery trace.
type Taint struct{}

// Name implements Checker.
func (Taint) Name() string { return "taint" }

// Desc implements Checker.
func (Taint) Desc() string { return "input()-family source reaches a sink call" }

// Run implements Checker.
func (cc Taint) Run(ctx *Context) []Finding {
	sinks := ctx.Config.TaintSinks
	if len(sinks) == 0 {
		sinks = DefaultSinks
	}
	sinkSet := make(map[string]bool, len(sinks))
	for _, s := range sinks {
		sinkSet[s] = true
	}
	res := ctx.dataflow(dataflow.NewTaintProblem(ctx.Config.TaintSources))
	if res == nil {
		return nil
	}

	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			call, ok := ins.(*ir.Call)
			if !ok || !sinkSet[call.Callee.Name] || !ctx.keepPos(call.Pos()) {
				return
			}
			for argIdx, arg := range call.Args {
				d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindReg, Reg: arg})
				if d == dataflow.Zero {
					continue
				}
				var hit *Finding
				for _, n := range ctx.Graph.NodesOf(call) {
					if !res.Holds(n, d) {
						continue
					}
					// The sink call itself is a consumer, not a producer:
					// seed the witness at the argument's producer chain so
					// every member is in the thin slice of the seed, the
					// same contract the slicer-backed witnesses satisfy.
					w := ctx.dfWitness(res, n, d)
					if w != nil && len(w.Chain) > 1 && w.Chain[0].Ins == ins {
						w.Chain = w.Chain[1:]
						w.Chain[0].Kind = 0
						w.Seed = w.Chain[0].Ins
					}
					hit = &Finding{
						Checker: cc.Name(),
						Pos:     call.Pos(),
						Ins:     call,
						Message: fmt.Sprintf("argument %d of sink %s is tainted by %s",
							argIdx+1, call.Callee.QualifiedName(), taintSource(res, n, d)),
						Witness: w,
					}
					break
				}
				if hit != nil {
					out = append(out, *hit)
					break // one finding per sink call
				}
			}
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}

// taintSource names the input intrinsic at the end of the discovery
// trace of the tainted fact.
func taintSource(res *dataflow.Results, n sdg.Node, d dataflow.Fact) string {
	steps := res.Trace(n, d)
	if len(steps) > 0 {
		if in, ok := steps[len(steps)-1].Ins.(*ir.Input); ok {
			return sourceName(in) + "()"
		}
	}
	return "an input source"
}

func sourceName(in *ir.Input) string {
	if in.IsInt {
		return "inputInt"
	}
	return "input"
}
