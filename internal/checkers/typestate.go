package checkers

import (
	"fmt"

	"thinslice/internal/dataflow"
	"thinslice/internal/ir"
)

// Typestate finds violations of the close() protocol on IO-style
// handles (the prelude's Stream, or any class exposing close()): a
// method call whose receiver may already be closed on some realizable
// path. A second close() is reported as a double close, any other
// call as a use after close — the paper's Figure 4 File bug is
// exactly such a use reached through container aliasing. The closed
// facts come from the IFDS close-protocol problem, so the check is
// flow- and context-sensitive and the witness is the solver's own
// discovery chain from the faulty use back to the closing call.
type Typestate struct{}

// Name implements Checker.
func (Typestate) Name() string { return "typestate" }

// Desc implements Checker.
func (Typestate) Desc() string { return "method call on a receiver that may already be closed" }

// Run implements Checker.
func (cc Typestate) Run(ctx *Context) []Finding {
	res := ctx.dataflow(dataflow.CloseProblem{})
	if res == nil {
		return nil
	}
	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			call, ok := ins.(*ir.Call)
			if !ok || call.Recv == nil || !ctx.keepPos(call.Pos()) {
				return
			}
			for _, n := range ctx.Graph.NodesOf(call) {
				mc := ctx.Graph.CtxOf(n)
				for _, o := range ctx.Pts.PointsToIn(call.Recv, mc) {
					d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindObjState, Obj: o, State: dataflow.StateClosed})
					if d == dataflow.Zero || !res.Holds(n, d) {
						continue
					}
					verb := "use after close"
					if call.Callee.Name == "close" {
						verb = "double close"
					}
					out = append(out, Finding{
						Checker: cc.Name(),
						Pos:     call.Pos(),
						Ins:     call,
						Message: fmt.Sprintf("%s: call to %s on object allocated at %s that may already be closed",
							verb, call.Callee.QualifiedName(), o.Site.Pos()),
						Witness: ctx.dfWitness(res, n, d),
					})
					return // one finding per call site
				}
			}
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}
