package checkers

import (
	"fmt"

	"thinslice/internal/dataflow"
	"thinslice/internal/ir"
)

// DefUninit finds definitely-uninitialized field reads: a reachable
// GetField where, for every object the receiver may point to, NO path
// from the program entry stores to that field first. It sharpens
// UninitField — which only asks "is the field ever stored anywhere" —
// into a flow-sensitive question over the IFDS may-init facts, so a
// read that happens before the initializing call is caught even when
// an initializer exists later in the program.
//
// The query relies on fact ABSENCE (no path initializes), so it bails
// entirely on truncated dataflow results — a partial solve could be
// missing the very init fact that proves the read fine.
type DefUninit struct{}

// Name implements Checker.
func (DefUninit) Name() string { return "defuninit" }

// Desc implements Checker.
func (DefUninit) Desc() string { return "field read no path initializes first" }

// Run implements Checker.
func (cc DefUninit) Run(ctx *Context) []Finding {
	res := ctx.dataflow(dataflow.InitProblem{})
	if res == nil || res.Truncated {
		return nil
	}
	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			get, ok := ins.(*ir.GetField)
			if !ok || !ctx.keepPos(get.Pos()) {
				return
			}
			// Definite means: in every reachable statement instance, no
			// pointee of the receiver has a may-init fact. An instance
			// with an empty points-to set is unknowable, not definite.
			reachable := false
			definite := true
			var culprit *ir.Instr
			for _, n := range ctx.Graph.NodesOf(get) {
				if !res.Reachable(n) {
					continue
				}
				reachable = true
				mc := ctx.Graph.CtxOf(n)
				objs := ctx.Pts.PointsToIn(get.Obj, mc)
				if len(objs) == 0 {
					definite = false
					break
				}
				for _, o := range objs {
					if !ctx.keepPos(o.Site.Pos()) {
						definite = false // library-internal object
						break
					}
					d := res.Facts().Lookup(dataflow.FactDesc{Kind: dataflow.KindObjField, Obj: o, Field: get.Field})
					if d != dataflow.Zero && res.Holds(n, d) {
						definite = false
						break
					}
					if culprit == nil {
						site := ir.Instr(o.Site)
						culprit = &site
					}
				}
				if !definite {
					break
				}
			}
			if !reachable || !definite || culprit == nil {
				return
			}
			out = append(out, Finding{
				Checker: cc.Name(),
				Pos:     get.Pos(),
				Ins:     get,
				Message: fmt.Sprintf("field %s read before any path initializes it (object allocated at %s)",
					get.Field.QualifiedName(), (*culprit).Pos()),
				Witness: ctx.witness(get.Obj.Def, *culprit),
			})
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}
