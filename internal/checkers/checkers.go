// Package checkers is a static-analysis pass framework over the IR and
// the pointer-analysis results: client analyses of the thin slicing
// engine, in the spirit of the paper's debugging evaluation (§6). Each
// checker inspects the analyzed program for one class of defect — null
// dereference, uninitialized-field read, unsafe downcast, tainted
// sink call — and attaches a **thin-slice witness** to every finding:
// the shortest producer chain (the same chains the -why flag prints)
// explaining where the suspicious value comes from, so reports read
// like the paper's hierarchical explanations.
//
// Checkers draw steps from the shared budget (PhaseCheck); an
// exhausted budget degrades the run to the findings collected so far,
// flagged Truncated, rather than running unbounded.
package checkers

import (
	"fmt"
	"sort"
	"strings"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/dataflow"
	"thinslice/internal/ir"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/token"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// Config tunes the configurable checkers.
type Config struct {
	// TaintSources names the input intrinsics treated as taint sources
	// ("input", "inputInt"). Empty means both.
	TaintSources []string
	// TaintSinks names the methods whose arguments must not be tainted.
	// Empty means DefaultSinks.
	TaintSinks []string
	// IncludeLibrary reports findings located in the container prelude
	// as well; off by default, so library-internal idioms do not drown
	// out findings in the user's own sources.
	IncludeLibrary bool
}

// DefaultSinks is the default sink method-name list for taint tracking.
var DefaultSinks = []string{"exec", "eval", "send", "sink"}

// Finding is one checker report, anchored at a faulty instruction.
type Finding struct {
	Checker string    // checker name
	Pos     token.Pos // source position of the faulty statement
	Ins     ir.Instr  // the faulty instruction
	Message string    // human-readable description
	// Witness is the thin-slice producer chain explaining the value
	// involved in the finding; nil when no chain exists (e.g. the
	// producer is the faulty statement itself and slicing was cut off
	// by the budget).
	Witness *Witness
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: [%s] %s", f.Pos, f.Checker, f.Message)
	if f.Witness != nil {
		for i, step := range f.Witness.Chain {
			arrow := "value"
			if i > 0 {
				arrow = "<-" + step.Kind.String() + "-"
			}
			fmt.Fprintf(&b, "\n    %-10s %s: %s", arrow, step.Ins.Pos(), step.Ins)
			if step.ViaCall != nil {
				fmt.Fprintf(&b, "\n    %-10s   (passed at call %s)", "", step.ViaCall.Pos())
			}
		}
	}
	return b.String()
}

// Witness is a thin-slice explanation of a finding: the shortest
// producer chain from Seed (the statement computing the suspicious
// value) to its origin, traversing only edges the thin slicer follows.
// Every chain member is, by construction, in the thin slice of Seed.
type Witness struct {
	Seed  ir.Instr        // the instruction the slicer was seeded at
	Chain []core.PathStep // seed-first producer chain
}

// Report is the outcome of one checker run.
type Report struct {
	Findings []Finding
	// Truncated reports that the run stopped early on an exhausted
	// budget: every finding is genuine, but later program points were
	// not examined. Err carries the typed budget error.
	Truncated bool
	Err       error
}

// Context is the shared pass state handed to each checker.
type Context struct {
	Prog   *ir.Program
	Pts    *pointsto.Result
	Graph  *sdg.Graph
	CHA    *cha.CallGraph
	ModRef *modref.Result
	// Slicer is a thin slicer over Graph, used for witnesses.
	Slicer *core.Slicer
	Config Config

	// sess, when non-nil, memoizes IFDS dataflow solves (and their
	// disk-tier artifacts); bud bounds direct solves without one.
	sess  *session.Session
	bud   *budget.Budget
	meter *budget.Meter
	stop  error
	// partial records a truncated dataflow solve: the findings drawn
	// from it stand, but coverage is incomplete, so the report is
	// flagged Truncated without aborting the remaining checkers.
	partial error
}

// tick spends one budget step; once it fails the run stops examining
// further program points (sticky, like the solver meters).
func (c *Context) tick() bool {
	if c.stop != nil {
		return false
	}
	if err := c.meter.Tick(); err != nil {
		c.stop = err
		return false
	}
	return true
}

// keepPos reports whether findings at p should be emitted.
func (c *Context) keepPos(p token.Pos) bool {
	return c.Config.IncludeLibrary || p.File != prelude.FileName
}

// witness computes the shortest producer chain from seed to any of the
// origin statements, or nil if none is reachable.
func (c *Context) witness(seed ir.Instr, origins ...ir.Instr) *Witness {
	var best []core.PathStep
	for _, o := range origins {
		if p := c.Slicer.PathTo(o, seed); p != nil && (best == nil || len(p) < len(best)) {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	return &Witness{Seed: seed, Chain: best}
}

// methods returns the pointer-analysis-reachable methods in
// deterministic order — the pruning every checker starts from.
func (c *Context) methods() []*ir.Method {
	return c.Pts.ReachableMethods()
}

// dataflow returns the solved IFDS results for p — session-cached when
// the analysis came from a session, solved directly otherwise. Errors
// stop the run; a truncated solve records its typed error as the stop
// cause but is still returned, since every fact a partial holds is
// genuine (only absence queries must bail, and they check Truncated).
func (c *Context) dataflow(p dataflow.Problem) *dataflow.Results {
	if c.stop != nil {
		return nil
	}
	var (
		res *dataflow.Results
		err error
	)
	if c.sess != nil {
		res, err = c.sess.Dataflow(p)
	} else {
		res, err = dataflow.Solve(dataflow.Inputs{Prog: c.Prog, Pts: c.Pts, Graph: c.Graph, CHA: c.CHA}, p, c.bud)
	}
	if err != nil {
		c.stop = err
		return nil
	}
	if res.Truncated {
		c.partial = res.Err
	}
	return res
}

// dfWitness converts the IFDS discovery trace of fact d at node n into
// the same thin-slice step chain slicer witnesses carry: the faulty
// statement leads, the generating statement ends it, and each hop is
// labeled with the dependence-edge kind of the transfer that linked it.
func (c *Context) dfWitness(res *dataflow.Results, n sdg.Node, d dataflow.Fact) *Witness {
	steps := res.Trace(n, d)
	if len(steps) == 0 {
		return nil
	}
	chain := make([]core.PathStep, len(steps))
	for i, st := range steps {
		chain[i] = core.PathStep{Node: st.Node, Ins: st.Ins}
		if i > 0 {
			chain[i].Kind = steps[i-1].Kind.EdgeKind()
		}
	}
	return &Witness{Seed: steps[0].Ins, Chain: chain}
}

// Checker is one analysis pass.
type Checker interface {
	// Name is the stable identifier used by -checks.
	Name() string
	// Desc is a one-line description for usage text.
	Desc() string
	// Run examines the program and returns its findings. It must call
	// ctx.tick in its per-instruction loops and stop when it fails.
	Run(ctx *Context) []Finding
}

// All returns every registered checker, in canonical order.
func All() []Checker {
	return []Checker{NilDeref{}, UninitField{}, UnsafeCast{}, Taint{}, Typestate{}, DefUninit{}}
}

// Select resolves comma-separated checker names ("" or "all" selects
// every checker). Unknown names are an error listing the valid ones.
func Select(names string) ([]Checker, error) {
	all := All()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := make(map[string]Checker, len(all))
	var valid []string
	for _, c := range all {
		byName[c.Name()] = c
		valid = append(valid, c.Name())
	}
	var out []Checker
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// Run executes the given checkers over an analysis, drawing from the
// analysis' budget (PhaseCheck). Findings are sorted deterministically
// by (file, line, instruction ID, checker name).
//
// The CHA call graph and mod-ref summaries are fetched from the
// analysis' session, so successive runs (and other session consumers)
// share one copy instead of each re-deriving them.
func Run(a *analyzer.Analysis, checks []Checker, cfg Config) *Report {
	ctx := &Context{
		Prog:   a.Prog,
		Pts:    a.Pts,
		Graph:  a.Graph,
		Slicer: a.ThinSlicer(),
		Config: cfg,
		sess:   a.Session(),
		bud:    a.Budget(),
		meter:  a.Budget().Phase(budget.PhaseCheck),
	}
	if sess := a.Session(); sess != nil {
		// Both passes are deterministic, so an error here can only be
		// cancellation; the direct fallback below keeps the pre-session
		// behavior of running them unbudgeted.
		ctx.CHA, _ = sess.CHA()
		ctx.ModRef, _ = sess.ModRef()
	}
	if ctx.CHA == nil {
		ctx.CHA = cha.Build(a.Prog, a.Pts.Entries())
	}
	if ctx.ModRef == nil {
		ctx.ModRef = modref.Compute(a.Prog, a.Pts)
	}
	rep := &Report{}
	for _, c := range checks {
		rep.Findings = append(rep.Findings, c.Run(ctx)...)
		if ctx.stop != nil {
			break
		}
	}
	if ctx.stop != nil {
		rep.Truncated, rep.Err = true, ctx.stop
	} else if ctx.partial != nil {
		rep.Truncated, rep.Err = true, ctx.partial
	}
	// A truncated slicer budget also makes witnesses incomplete.
	if a.Partial() {
		rep.Truncated = true
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Ins.ID() != b.Ins.ID() {
			return a.Ins.ID() < b.Ins.ID()
		}
		return a.Checker < b.Checker
	})
	return rep
}
