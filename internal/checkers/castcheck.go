package checkers

import (
	"fmt"
	"sort"
	"strings"

	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// UnsafeCast finds downcasts that can fail at runtime: a checkcast
// whose source may point to an object whose class is outside the CHA
// type cone of the cast target (the paper's "tough cast" notion, §6.3,
// turned into a checker). The points-to analysis supplies the may
// point-to set; class hierarchy analysis supplies the cone.
type UnsafeCast struct{}

// Name implements Checker.
func (UnsafeCast) Name() string { return "unsafecast" }

// Desc implements Checker.
func (UnsafeCast) Desc() string { return "downcast that can fail for some object flowing here" }

// Run implements Checker.
func (cc UnsafeCast) Run(ctx *Context) []Finding {
	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			cast, ok := ins.(*ir.Cast)
			if !ok || !types.IsRef(cast.Target) || !ctx.keepPos(cast.Pos()) {
				return
			}
			objs := ctx.Pts.PointsTo(cast.Src)
			var bad []ir.Instr // allocation sites of incompatible objects
			var badNames []string
			seenName := make(map[string]bool)
			for _, o := range objs {
				compatible := o.CompatibleWith(cast.Target)
				if tc, isClass := cast.Target.(*types.Class); isClass && o.Class != nil {
					// Cross-check against the CHA cone; the two must
					// agree, and the cone gives the report its
					// vocabulary ("C is not a subclass of T").
					compatible = ctx.CHA.InCone(o.Class, tc.Info)
				}
				if compatible {
					continue
				}
				bad = append(bad, o.Site)
				name := "?"
				if o.Class != nil {
					name = o.Class.Name
				} else if o.IsArray() {
					name = o.Elem.String() + "[]"
				}
				if !seenName[name] {
					seenName[name] = true
					badNames = append(badNames, name)
				}
			}
			if len(bad) == 0 {
				return
			}
			sort.Strings(badNames)
			out = append(out, Finding{
				Checker: cc.Name(),
				Pos:     cast.Pos(),
				Ins:     cast,
				Message: fmt.Sprintf("cast to %s can fail: may point to %s (outside the target's type cone)",
					cast.Target, strings.Join(badNames, ", ")),
				Witness: ctx.witness(cast, bad...),
			})
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}
