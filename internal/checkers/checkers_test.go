package checkers

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
)

// exampleDir is the seeded-bug fixture directory, relative to this
// package; the same programs are referenced from the README.
const exampleDir = "../../examples/checkers"

// loadExamples reads every fixture program (one seeded bug per file,
// plus the clean program) as one multi-entry source set.
func loadExamples(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(exampleDir, "*.mj"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example fixtures in %s: %v", exampleDir, err)
	}
	sources := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		sources[filepath.Base(p)] = string(data)
	}
	return sources
}

func analyze(t *testing.T, sources map[string]string, opts ...analyzer.Option) *analyzer.Analysis {
	t.Helper()
	opts = append(opts, analyzer.WithVerifyIR())
	a, err := analyzer.Analyze(sources, opts...)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func runAll(t *testing.T, sources map[string]string) *Report {
	t.Helper()
	rep := Run(analyze(t, sources), All(), Config{})
	if rep.Truncated {
		t.Fatalf("unexpected truncation: %v", rep.Err)
	}
	return rep
}

// findingsIn returns the findings of one checker located in one file.
func findingsIn(rep *Report, checker, file string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Checker == checker && f.Pos.File == file {
			out = append(out, f)
		}
	}
	return out
}

// TestSeededExamples is the acceptance check: each seeded-bug fixture
// is flagged by its checker with a thin-slice witness, and the clean
// fixture produces zero findings.
func TestSeededExamples(t *testing.T) {
	rep := runAll(t, loadExamples(t))
	want := map[string]string{ // file → checker expected to fire there
		"nil.mj":       "nilderef",
		"uninit.mj":    "uninitfield",
		"cast.mj":      "unsafecast",
		"taint.mj":     "taint",
		"close.mj":     "typestate",
		"defuninit.mj": "defuninit",
	}
	for file, checker := range want {
		fs := findingsIn(rep, checker, file)
		if len(fs) != 1 {
			t.Errorf("%s: want 1 %s finding, got %d (%v)", file, checker, len(fs), fs)
			continue
		}
		if fs[0].Witness == nil || len(fs[0].Witness.Chain) == 0 {
			t.Errorf("%s: finding has no thin-slice witness: %v", file, fs[0])
		}
	}
	for _, f := range rep.Findings {
		if f.Pos.File == "clean.mj" {
			t.Errorf("clean.mj: unexpected finding %v", f)
		}
		if _, seeded := want[f.Pos.File]; !seeded {
			t.Errorf("finding outside fixture files: %v", f)
		}
	}
}

// TestWitnessIsThinSlice asserts the witness contract: every emitted
// chain starts at its seed and every member is in the thin slice of
// that seed (the witness IS a path through a valid thin slice).
func TestWitnessIsThinSlice(t *testing.T) {
	a := analyze(t, loadExamples(t))
	rep := Run(a, All(), Config{})
	if len(rep.Findings) == 0 {
		t.Fatal("no findings to validate")
	}
	for _, f := range rep.Findings {
		w := f.Witness
		if w == nil {
			t.Errorf("%v: no witness", f.Pos)
			continue
		}
		if w.Chain[0].Ins != w.Seed {
			t.Errorf("%v: chain starts at %s, not the seed %s", f.Pos, w.Chain[0].Ins, w.Seed)
		}
		if f.Checker == "typestate" {
			// Typestate witnesses are IFDS discovery traces crossing from
			// the faulty use to the state-changing call — a realizable
			// path, not a producer chain, so thin-slice membership does
			// not apply.
			continue
		}
		sl := a.ThinSlicer().Slice(w.Seed)
		for _, step := range w.Chain {
			if !sl.Contains(step.Ins) {
				t.Errorf("%v: witness step %s not in the thin slice of %s", f.Pos, step.Ins, w.Seed)
			}
		}
	}
}

// TestDeterministicOrder runs the suite twice and demands identical
// finding order (sorted by file, line, instruction ID).
func TestDeterministicOrder(t *testing.T) {
	render := func() []string {
		rep := runAll(t, loadExamples(t))
		var out []string
		for _, f := range rep.Findings {
			out = append(out, f.String())
		}
		return out
	}
	first, second := render(), render()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("nondeterministic findings:\n%v\nvs\n%v", first, second)
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] > first[i] && strings.Split(first[i-1], ":")[0] != strings.Split(first[i], ":")[0] {
			t.Errorf("findings not sorted: %q before %q", first[i-1], first[i])
		}
	}
}

// TestBudgetExhaustion: a tiny PhaseCheck step cap must degrade the run
// to a partial report flagged Truncated, not an error or a hang.
func TestBudgetExhaustion(t *testing.T) {
	b := budget.New(nil, budget.WithPhaseSteps(budget.PhaseCheck, 3))
	a := analyze(t, loadExamples(t), analyzer.WithBudget(b))
	rep := Run(a, All(), Config{})
	if !rep.Truncated {
		t.Fatal("want Truncated report under a 3-step check budget")
	}
	if rep.Err == nil || !budget.IsExhausted(rep.Err) {
		t.Fatalf("want ErrExhausted, got %v", rep.Err)
	}
	if ph, _ := budget.PhaseOf(rep.Err); ph != budget.PhaseCheck {
		t.Fatalf("want phase %q, got %q", budget.PhaseCheck, ph)
	}
}

// --- per-checker true-positive / true-negative unit tests ---

func prog(body string) map[string]string { return map[string]string{"t.mj": body} }

func TestNilDerefPositive(t *testing.T) {
	rep := runAll(t, prog(`
class B { int v; B(int v) { this.v = v; } int get() { return this.v; } }
class Main {
    static void main() {
        B b = new B(1);
        if (inputInt() > 0) { b = null; }
        print(b.get());
    }
}`))
	fs := findingsIn(rep, "nilderef", "t.mj")
	if len(fs) != 1 {
		t.Fatalf("want 1 nilderef finding, got %v", rep.Findings)
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want 7", fs[0].Pos.Line)
	}
}

func TestNilDerefNegativeGuarded(t *testing.T) {
	rep := runAll(t, prog(`
class B { int v; B(int v) { this.v = v; } int get() { return this.v; } }
class Main {
    static void main() {
        B b = new B(1);
        if (inputInt() > 0) { b = null; }
        if (b != null) { print(b.get()); }
        if (b == null) { print(0); } else { print(b.get()); }
    }
}`))
	if fs := findingsIn(rep, "nilderef", "t.mj"); len(fs) != 0 {
		t.Errorf("guarded dereferences flagged: %v", fs)
	}
}

func TestNilDerefNegativeInstanceOf(t *testing.T) {
	rep := runAll(t, prog(`
class B { int v; B(int v) { this.v = v; } int get() { return this.v; } }
class Main {
    static void main() {
        B b = new B(1);
        if (inputInt() > 0) { b = null; }
        if (b instanceof B) { print(b.get()); }
    }
}`))
	if fs := findingsIn(rep, "nilderef", "t.mj"); len(fs) != 0 {
		t.Errorf("instanceof-guarded dereference flagged: %v", fs)
	}
}

func TestUninitFieldPositive(t *testing.T) {
	rep := runAll(t, prog(`
class C { int a; int b; C(int a) { this.a = a; } int f() { return this.b; } }
class Main { static void main() { C c = new C(1); print(c.f()); } }`))
	fs := findingsIn(rep, "uninitfield", "t.mj")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "C.b") {
		t.Fatalf("want 1 uninitfield finding on C.b, got %v", rep.Findings)
	}
}

func TestUninitFieldNegative(t *testing.T) {
	rep := runAll(t, prog(`
class C { int a; int b; C(int a) { this.a = a; this.b = a + 1; } int f() { return this.b; } }
class Main { static void main() { C c = new C(1); print(c.f()); } }`))
	if fs := findingsIn(rep, "uninitfield", "t.mj"); len(fs) != 0 {
		t.Errorf("initialized field flagged: %v", fs)
	}
}

// TestUninitFieldLateStore: a store anywhere in the program counts as
// initialization, even outside the constructor.
func TestUninitFieldLateStore(t *testing.T) {
	rep := runAll(t, prog(`
class C { int a; C() { } int f() { return this.a; } }
class Main { static void main() { C c = new C(); c.a = 5; print(c.f()); } }`))
	if fs := findingsIn(rep, "uninitfield", "t.mj"); len(fs) != 0 {
		t.Errorf("late-stored field flagged: %v", fs)
	}
}

func TestUnsafeCastPositive(t *testing.T) {
	rep := runAll(t, prog(`
class S { S() { } }
class A extends S { A() { } int f() { return 1; } }
class B extends S { B() { } }
class Main {
    static void main() {
        S s = new A();
        if (inputInt() > 0) { s = new B(); }
        A a = (A) s;
        print(a.f());
    }
}`))
	fs := findingsIn(rep, "unsafecast", "t.mj")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "B") {
		t.Fatalf("want 1 unsafecast finding naming B, got %v", rep.Findings)
	}
}

func TestUnsafeCastNegative(t *testing.T) {
	rep := runAll(t, prog(`
class S { S() { } }
class A extends S { A() { } int f() { return 1; } }
class Main {
    static void main() {
        S s = new A();
        A a = (A) s;
        print(a.f());
    }
}`))
	if fs := findingsIn(rep, "unsafecast", "t.mj"); len(fs) != 0 {
		t.Errorf("safe downcast flagged: %v", fs)
	}
}

func TestTaintPositive(t *testing.T) {
	rep := runAll(t, prog(`
class D { D() { } void exec(string q) { print(q); } }
class Main {
    static void main() {
        string q = "cmd " + input();
        D d = new D();
        d.exec(q);
    }
}`))
	fs := findingsIn(rep, "taint", "t.mj")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "input()") {
		t.Fatalf("want 1 taint finding naming input(), got %v", rep.Findings)
	}
}

func TestTaintNegative(t *testing.T) {
	rep := runAll(t, prog(`
class D { D() { } void exec(string q) { print(q); } }
class Main {
    static void main() {
        int n = inputInt();
        print(n);
        D d = new D();
        d.exec("constant");
    }
}`))
	if fs := findingsIn(rep, "taint", "t.mj"); len(fs) != 0 {
		t.Errorf("constant sink argument flagged: %v", fs)
	}
}

// TestTaintThroughHeap: taint must propagate over the heap edges the
// thin slicer follows (store→load), not just local def-use.
func TestTaintThroughHeap(t *testing.T) {
	rep := runAll(t, prog(`
class H { string s; H() { this.s = ""; } }
class D { D() { } void exec(string q) { print(q); } }
class Main {
    static void main() {
        H h = new H();
        h.s = input();
        D d = new D();
        d.exec(h.s);
    }
}`))
	fs := findingsIn(rep, "taint", "t.mj")
	if len(fs) != 1 {
		t.Fatalf("want 1 taint finding through the heap, got %v", rep.Findings)
	}
}

func TestTaintConfigurableSinks(t *testing.T) {
	src := prog(`
class D { D() { } void store(string q) { print(q); } }
class Main {
    static void main() {
        D d = new D();
        d.store(input());
    }
}`)
	if rep := runAll(t, src); len(findingsIn(rep, "taint", "t.mj")) != 0 {
		t.Fatal("non-default sink flagged without configuration")
	}
	rep := Run(analyze(t, src), All(), Config{TaintSinks: []string{"store"}})
	if fs := findingsIn(rep, "taint", "t.mj"); len(fs) != 1 {
		t.Fatalf("configured sink not flagged: %v", rep.Findings)
	}
}

func TestSelect(t *testing.T) {
	if cs, err := Select(""); err != nil || len(cs) != 6 {
		t.Fatalf("Select(\"\"): %v, %d checkers", err, len(cs))
	}
	cs, err := Select("taint,nilderef")
	if err != nil || len(cs) != 2 || cs[0].Name() != "taint" || cs[1].Name() != "nilderef" {
		t.Fatalf("Select(taint,nilderef): %v %v", cs, err)
	}
	if _, err := Select("bogus"); err == nil || !strings.Contains(err.Error(), "unknown checker") {
		t.Fatalf("Select(bogus): want unknown-checker error, got %v", err)
	}
}
