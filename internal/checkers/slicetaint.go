package checkers

import (
	"fmt"
	"strings"

	"thinslice/internal/ir"
)

// sliceTaint is the pre-IFDS taint formulation, kept as the oracle for
// the dataflow-equivalence suite: a sink argument is tainted iff a
// source statement is in the thin slice of the statement producing the
// argument. The IFDS checker must report a superset of these findings
// (same sink positions) on the equivalence corpus — thin-slice
// membership merges contexts, so anything it sees a realizable-path
// analysis sees too. Not registered in All().
type sliceTaint struct{}

func (sliceTaint) Name() string { return "slicetaint" }

func (sliceTaint) Desc() string { return "thin-slice-membership taint (equivalence oracle)" }

func (cc sliceTaint) Run(ctx *Context) []Finding {
	sources := ctx.Config.TaintSources
	if len(sources) == 0 {
		sources = []string{"input", "inputInt"}
	}
	srcSet := make(map[string]bool, len(sources))
	for _, s := range sources {
		srcSet[s] = true
	}
	sinks := ctx.Config.TaintSinks
	if len(sinks) == 0 {
		sinks = DefaultSinks
	}
	sinkSet := make(map[string]bool, len(sinks))
	for _, s := range sinks {
		sinkSet[s] = true
	}

	// Collect the source statements once.
	var sourceInstrs []ir.Instr
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if in, ok := ins.(*ir.Input); ok && srcSet[sourceName(in)] {
				sourceInstrs = append(sourceInstrs, in)
			}
		})
	}
	if len(sourceInstrs) == 0 {
		return nil
	}

	var out []Finding
	for _, m := range ctx.methods() {
		m.Instrs(func(ins ir.Instr) {
			if !ctx.tick() {
				return
			}
			call, ok := ins.(*ir.Call)
			if !ok || !sinkSet[call.Callee.Name] || !ctx.keepPos(call.Pos()) {
				return
			}
			for argIdx, arg := range call.Args {
				if arg.Def == nil {
					continue
				}
				// The thin slice of the argument's producer holds every
				// statement whose value can reach it.
				sl := ctx.Slicer.Slice(arg.Def)
				if sl.Truncated {
					ctx.stop = sl.Err
				}
				var hit []ir.Instr
				for _, src := range sourceInstrs {
					if sl.Contains(src) {
						hit = append(hit, src)
					}
				}
				if len(hit) == 0 {
					continue
				}
				var names []string
				seen := make(map[string]bool)
				for _, h := range hit {
					n := sourceName(h.(*ir.Input)) + "()"
					if !seen[n] {
						seen[n] = true
						names = append(names, n)
					}
				}
				out = append(out, Finding{
					Checker: cc.Name(),
					Pos:     call.Pos(),
					Ins:     call,
					Message: fmt.Sprintf("argument %d of sink %s is tainted by %s",
						argIdx+1, call.Callee.QualifiedName(), strings.Join(names, ", ")),
					Witness: ctx.witness(arg.Def, hit...),
				})
				break // one finding per sink call
			}
		})
		if ctx.stop != nil {
			break
		}
	}
	return out
}
