package core_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func TestPathToFollowsProducerChain(t *testing.T) {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatal(err)
	}
	thin := a.ThinSlicer()
	seeds := a.SeedsAt(file, papercases.Line(src, "SEED"))
	var bug ir.Instr
	for _, ins := range a.SeedsAt(file, papercases.Line(src, "BUG")) {
		if s, ok := ins.(*ir.StrOp); ok && s.Op == ir.StrSubstring {
			bug = ins
		}
	}
	if bug == nil {
		t.Fatal("substring not found at the bug line")
	}
	path := thin.PathTo(bug, seeds...)
	if path == nil {
		t.Fatal("no path from seed to the bug")
	}
	// The chain starts at a seed statement and ends at the bug.
	first, last := path[0], path[len(path)-1]
	if first.Ins.Pos().Line != papercases.Line(src, "SEED") {
		t.Errorf("path starts at %s, want the seed line", first.Ins.Pos())
	}
	if last.Ins != bug {
		t.Errorf("path ends at %s, want the bug", last.Ins.Pos())
	}
	// Every step after the first names an edge kind the slicer follows.
	for _, step := range path[1:] {
		if !thin.Follows(step.Kind) {
			t.Errorf("path step uses unfollowed edge kind %s", step.Kind)
		}
	}
	// The chain passes through the heap (the Vector hop of Figure 1).
	sawHeap := false
	for _, step := range path[1:] {
		if step.Kind.String() == "heap" {
			sawHeap = true
		}
	}
	if !sawHeap {
		t.Error("producer chain to the bug should cross the heap (Vector)")
	}
}

func TestPathToMissingTarget(t *testing.T) {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatal(err)
	}
	thin := a.ThinSlicer()
	seeds := a.SeedsAt(file, papercases.Line(src, "SEED"))
	// The Vector construction is an explainer, not a producer: no thin
	// path may reach it.
	var newVec ir.Instr
	for _, ins := range a.SeedsAt(file, papercases.Line(src, "new Vector()")) {
		if _, ok := ins.(*ir.New); ok {
			newVec = ins
		}
	}
	if newVec == nil {
		t.Fatal("vector allocation not found")
	}
	if path := thin.PathTo(newVec, seeds...); path != nil {
		t.Fatalf("thin path to an explainer statement should not exist, got %d steps", len(path))
	}
	// The traditional slicer, following base edges, does reach it.
	trad := a.TraditionalSlicer(false)
	if path := trad.PathTo(newVec, seeds...); path == nil {
		t.Fatal("traditional path should exist")
	}
}

func TestPathToSeedItself(t *testing.T) {
	a, err := analyzer.Analyze(map[string]string{"t.mj": `class Main {
		static void main() { print(1); }
	}`})
	if err != nil {
		t.Fatal(err)
	}
	var seed ir.Instr
	for _, m := range a.Pts.Entries() {
		m.Instrs(func(ins ir.Instr) {
			if _, ok := ins.(*ir.Print); ok {
				seed = ins
			}
		})
	}
	path := a.ThinSlicer().PathTo(seed, seed)
	if len(path) != 1 || path[0].Ins != seed {
		t.Fatalf("self path wrong: %v", path)
	}
}

// TestPathConsistentWithSlice: every member of a thin slice has a path,
// and the path's statements are all members.
func TestPathConsistentWithSlice(t *testing.T) {
	src := papercases.FileBug
	file := papercases.FileBugFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatal(err)
	}
	thin := a.ThinSlicer()
	seeds := a.SeedsAt(file, papercases.Line(src, "CHECK"))
	sl := thin.Slice(seeds...)
	for _, member := range sl.Instrs() {
		path := thin.PathTo(member, seeds...)
		if path == nil {
			t.Errorf("member %s (%s) has no path", member, member.Pos())
			continue
		}
		for _, step := range path {
			if !sl.Contains(step.Ins) {
				t.Errorf("path step %s not a slice member", step.Ins.Pos())
			}
		}
	}
}
