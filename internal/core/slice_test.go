package core_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
	"thinslice/internal/sdg"
)

func analyzeCase(t *testing.T, file, src string) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func seedAt(t *testing.T, a *analyzer.Analysis, file string, line int) []ir.Instr {
	t.Helper()
	seeds := a.SeedsAt(file, line)
	if len(seeds) == 0 {
		t.Fatalf("no statements at %s:%d", file, line)
	}
	return seeds
}

// userLines counts slice lines inside the given file (excluding the
// prelude), a proxy for what the user reads.
func userLines(sl *core.Slice, file string) int {
	n := 0
	for _, p := range sl.Lines() {
		if p.File == file {
			n++
		}
	}
	return n
}

// --- Figure 2: the toy heap-flow example ---

func TestToyThinSliceMatchesPaper(t *testing.T) {
	a := analyzeCase(t, papercases.ToyFile, papercases.Toy)
	seedLine := papercases.Line(papercases.Toy, "L7")
	thin := a.ThinSlicer().Slice(seedAt(t, a, papercases.ToyFile, seedLine)...)

	mustHave := []string{"L5", "L3", "L7"}
	mustNotHave := []string{"L1", "L2", "L4", "L6"}
	for _, m := range mustHave {
		if !thin.ContainsLine(papercases.ToyFile, papercases.Line(papercases.Toy, m)) {
			t.Errorf("thin slice missing %s", m)
		}
	}
	for _, m := range mustNotHave {
		if thin.ContainsLine(papercases.ToyFile, papercases.Line(papercases.Toy, m)) {
			t.Errorf("thin slice must exclude %s", m)
		}
	}
}

func TestToyTraditionalSliceIsWholeExample(t *testing.T) {
	a := analyzeCase(t, papercases.ToyFile, papercases.Toy)
	seedLine := papercases.Line(papercases.Toy, "L7")
	trad := a.TraditionalSlicer(true).Slice(seedAt(t, a, papercases.ToyFile, seedLine)...)
	for _, m := range []string{"L1", "L2", "L3", "L4", "L5", "L6", "L7"} {
		if !trad.ContainsLine(papercases.ToyFile, papercases.Line(papercases.Toy, m)) {
			t.Errorf("traditional slice missing %s", m)
		}
	}
}

func TestToyTraditionalWithoutControlExcludesBranch(t *testing.T) {
	a := analyzeCase(t, papercases.ToyFile, papercases.Toy)
	seedLine := papercases.Line(papercases.Toy, "L7")
	trad := a.TraditionalSlicer(false).Slice(seedAt(t, a, papercases.ToyFile, seedLine)...)
	// Base-pointer flow (L1, L2, L4) is included, but the branch L6 is
	// a control dependence and must be excluded.
	for _, m := range []string{"L1", "L2", "L4"} {
		if !trad.ContainsLine(papercases.ToyFile, papercases.Line(papercases.Toy, m)) {
			t.Errorf("traditional-no-control slice missing %s", m)
		}
	}
	condLine := papercases.Line(papercases.Toy, "L6")
	if trad.ContainsLine(papercases.ToyFile, condLine) {
		t.Errorf("traditional-no-control slice must exclude the branch L6")
	}
}

// --- Figure 1: first names through a Vector and session state ---

func TestFirstNamesThinSliceFindsBug(t *testing.T) {
	a := analyzeCase(t, papercases.FirstNamesFile, papercases.FirstNames)
	src := papercases.FirstNames
	seedLine := papercases.Line(src, "SEED")
	bugLine := papercases.Line(src, "BUG")
	thin := a.ThinSlicer().Slice(seedAt(t, a, papercases.FirstNamesFile, seedLine)...)

	if !thin.ContainsLine(papercases.FirstNamesFile, bugLine) {
		t.Fatal("thin slice must contain the buggy substring statement")
	}
	// The producer chain passes through the Vector: add call and the
	// input read feeding the name.
	addLine := papercases.Line(src, "firstNames.add(firstName)")
	inputLine := papercases.Line(src, "input()")
	if !thin.ContainsLine(papercases.FirstNamesFile, addLine) {
		t.Error("thin slice must contain the add call (value-passing producer)")
	}
	if !thin.ContainsLine(papercases.FirstNamesFile, inputLine) {
		t.Error("thin slice must contain the input read")
	}
	// Container construction and session-state plumbing are explainer
	// material, not producers.
	newVecLine := papercases.Line(src, "new Vector()")
	setNamesLine := papercases.Line(src, "s.setNames(firstNames)")
	if thin.ContainsLine(papercases.FirstNamesFile, newVecLine) {
		t.Error("thin slice must exclude the Vector construction")
	}
	if thin.ContainsLine(papercases.FirstNamesFile, setNamesLine) {
		t.Error("thin slice must exclude the SessionState plumbing")
	}
}

func TestFirstNamesTraditionalIncludesPlumbing(t *testing.T) {
	a := analyzeCase(t, papercases.FirstNamesFile, papercases.FirstNames)
	src := papercases.FirstNames
	seedLine := papercases.Line(src, "SEED")
	trad := a.TraditionalSlicer(true).Slice(seedAt(t, a, papercases.FirstNamesFile, seedLine)...)
	for _, marker := range []string{"new Vector()", "s.setNames(firstNames)", "SessionState s = getState()"} {
		if !trad.ContainsLine(papercases.FirstNamesFile, papercases.Line(src, marker)) {
			t.Errorf("traditional slice missing %q", marker)
		}
	}
}

func TestFirstNamesThinMuchSmallerThanTraditional(t *testing.T) {
	a := analyzeCase(t, papercases.FirstNamesFile, papercases.FirstNames)
	src := papercases.FirstNames
	seedLine := papercases.Line(src, "SEED")
	seeds := seedAt(t, a, papercases.FirstNamesFile, seedLine)
	thin := a.ThinSlicer().Slice(seeds...)
	trad := a.TraditionalSlicer(true).Slice(seeds...)
	tn, tr := userLines(thin, papercases.FirstNamesFile), userLines(trad, papercases.FirstNamesFile)
	if tn*2 >= tr {
		t.Errorf("thin slice (%d lines) should be much smaller than traditional (%d lines)", tn, tr)
	}
}

// --- Figure 5: the tough cast ---

func TestToughCastNotVerifiedByPointerAnalysis(t *testing.T) {
	a := analyzeCase(t, papercases.ToughCastFile, papercases.ToughCast)
	castLine := papercases.Line(papercases.ToughCast, "CAST")
	var cast *ir.Cast
	for _, ins := range a.SeedsAt(papercases.ToughCastFile, castLine) {
		if c, ok := ins.(*ir.Cast); ok {
			cast = c
		}
	}
	if cast == nil {
		t.Fatal("cast statement not found")
	}
	verified, nonEmpty := a.Pts.CastCheckable(cast)
	if verified || !nonEmpty {
		t.Fatalf("the Figure 5 cast must be tough (verified=%t nonEmpty=%t)", verified, nonEmpty)
	}
}

func TestToughCastThinSliceOfOpcodeFindsConstructors(t *testing.T) {
	a := analyzeCase(t, papercases.ToughCastFile, papercases.ToughCast)
	src := papercases.ToughCast
	readLine := papercases.Line(src, "READOP")
	thin := a.ThinSlicer().Slice(seedAt(t, a, papercases.ToughCastFile, readLine)...)
	for _, m := range []string{"SETOP", "ADDOP", "SUBOP"} {
		if !thin.ContainsLine(papercases.ToughCastFile, papercases.Line(src, m)) {
			t.Errorf("thin slice of opcode read missing %s", m)
		}
	}
}

// --- slicer mechanics on small programs ---

func TestSliceIncludesCallSitesAsProducers(t *testing.T) {
	src := `class Util {
    static int id(int x) {
        return x; // RET
    }
}
class Main {
    static void main() {
        int a = inputInt(); // IN
        int b = Util.id(a); // CALL
        print(b); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	for _, m := range []string{"IN", "CALL", "RET"} {
		if !thin.ContainsLine("t.mj", papercases.Line(src, m)) {
			t.Errorf("thin slice missing %s", m)
		}
	}
}

func TestCallResultDoesNotPullUnrelatedArgs(t *testing.T) {
	// The return value of pick does not depend on its second argument's
	// producer when the callee ignores it.
	src := `class Util {
    static int pick(int x, int y) {
        return x;
    }
}
class Main {
    static void main() {
        int wanted = inputInt(); // WANTED
        int ignored = inputInt(); // IGNORED
        int r = Util.pick(wanted, ignored);
        print(r); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	if !thin.ContainsLine("t.mj", papercases.Line(src, "WANTED")) {
		t.Error("thin slice missing the used argument")
	}
	if thin.ContainsLine("t.mj", papercases.Line(src, "IGNORED")) {
		t.Error("thin slice must not include the ignored argument")
	}
}

func TestFieldSlicingThroughDistinctObjects(t *testing.T) {
	src := `class Box {
    int v;
    Box() { }
}
class Main {
    static void main() {
        Box b1 = new Box();
        Box b2 = new Box();
        b1.v = inputInt(); // GOOD
        b2.v = inputInt(); // OTHER
        print(b1.v); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	if !thin.ContainsLine("t.mj", papercases.Line(src, "GOOD")) {
		t.Error("thin slice missing the store to b1.v")
	}
	if thin.ContainsLine("t.mj", papercases.Line(src, "OTHER")) {
		t.Error("thin slice must exclude the store to the other box")
	}
}

func TestStaticFieldFlow(t *testing.T) {
	src := `class G {
    static int conf;
}
class Main {
    static void main() {
        G.conf = inputInt(); // STORE
        print(G.conf); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	if !thin.ContainsLine("t.mj", papercases.Line(src, "STORE")) {
		t.Error("thin slice missing static field store")
	}
}

func TestArrayLengthFlowsFromAllocation(t *testing.T) {
	src := `class Main {
    static void main() {
        int n = inputInt(); // N
        int[] a = new int[n]; // ALLOC
        print(a.length); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	for _, m := range []string{"ALLOC", "N"} {
		if !thin.ContainsLine("t.mj", papercases.Line(src, m)) {
			t.Errorf("thin slice missing %s", m)
		}
	}
}

func TestArrayIndexExcludedFromThin(t *testing.T) {
	src := `class Main {
    static void main() {
        int[] a = new int[10];
        int i = inputInt(); // IDX
        a[i] = inputInt(); // STORE
        int j = inputInt(); // JDX
        print(a[j]); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer().Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	if !thin.ContainsLine("t.mj", papercases.Line(src, "STORE")) {
		t.Error("thin slice missing array store")
	}
	// Index computations are explainer material (paper §4.1): a[j]'s
	// own line contains JDX's def... use distinct lines to check.
	if thin.ContainsLine("t.mj", papercases.Line(src, "IDX")) {
		t.Error("thin slice must exclude the store index computation")
	}
	if thin.ContainsLine("t.mj", papercases.Line(src, "JDX")) {
		t.Error("thin slice must exclude the load index computation")
	}
}

func TestSubsetProperty(t *testing.T) {
	// thin ⊆ traditional(no control) ⊆ traditional(control), on every
	// statement of the Figure 1 program.
	a := analyzeCase(t, papercases.FirstNamesFile, papercases.FirstNames)
	thin := a.ThinSlicer()
	tradNC := a.TraditionalSlicer(false)
	tradC := a.TraditionalSlicer(true)
	count := 0
	for _, m := range a.Prog.Methods {
		if !a.Graph.Reachable(m) || count > 400 {
			continue
		}
		m.Instrs(func(seed ir.Instr) {
			count++
			if count > 400 {
				return
			}
			st := thin.Slice(seed)
			snc := tradNC.Slice(seed)
			sc := tradC.Slice(seed)
			for _, ins := range st.Instrs() {
				if !snc.Contains(ins) {
					t.Fatalf("thin ⊄ traditional at seed %s: %s", seed, ins)
				}
			}
			for _, ins := range snc.Instrs() {
				if !sc.Contains(ins) {
					t.Fatalf("trad-no-control ⊄ trad-control at seed %s: %s", seed, ins)
				}
			}
		})
	}
}

func TestSeedsAtIgnoresUnreachable(t *testing.T) {
	src := `class Dead {
    void never() {
        print(1); // DEADPRINT
    }
}
class Main {
    static void main() {
        print(2);
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	if seeds := a.SeedsAt("t.mj", papercases.Line(src, "DEADPRINT")); len(seeds) != 0 {
		t.Errorf("unreachable code should yield no seeds, got %d", len(seeds))
	}
}

func TestFollowsClassification(t *testing.T) {
	a := analyzeCase(t, papercases.ToyFile, papercases.Toy)
	thin := a.ThinSlicer()
	trad := a.TraditionalSlicer(true)
	tradNC := a.TraditionalSlicer(false)
	cases := []struct {
		kind           sdg.EdgeKind
		thin, tnc, trd bool
	}{
		{sdg.EdgeLocal, true, true, true},
		{sdg.EdgeHeap, true, true, true},
		{sdg.EdgeParam, true, true, true},
		{sdg.EdgeReturn, true, true, true},
		{sdg.EdgeBase, false, true, true},
		{sdg.EdgeControl, false, false, true},
		{sdg.EdgeCallControl, false, false, true},
	}
	for _, c := range cases {
		if thin.Follows(c.kind) != c.thin {
			t.Errorf("thin.Follows(%s) = %t", c.kind, !c.thin)
		}
		if tradNC.Follows(c.kind) != c.tnc {
			t.Errorf("tradNC.Follows(%s) = %t", c.kind, !c.tnc)
		}
		if trad.Follows(c.kind) != c.trd {
			t.Errorf("trad.Follows(%s) = %t", c.kind, !c.trd)
		}
	}
}
