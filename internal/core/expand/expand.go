// Package expand implements hierarchical expansion of thin slices
// (paper §4): explaining heap-based value flow via additional thin
// slices on the aliased base pointers (restricted to objects that flow
// to both, §4.1), explaining array index agreement, surfacing control
// dependences (§4.2), and the limit construction that recovers the
// traditional slice.
package expand

import (
	"sort"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/sdg"
)

// HeapPair is a store→load producer edge through the heap appearing in
// a slice; the pair whose aliasing a user may ask to have explained.
type HeapPair struct {
	Load  sdg.Node // GetField, ArrayLoad, or ArrayLen instance
	Store sdg.Node // SetField, ArrayStore, or NewArray (for lengths)
}

// HeapPairs returns the heap edges internal to sl, ordered.
func HeapPairs(g *sdg.Graph, sl *core.Slice) []HeapPair {
	var out []HeapPair
	for _, n := range sl.Nodes() {
		for _, d := range g.Deps(n) {
			if d.Kind == sdg.EdgeHeap && sl.ContainsNode(d.Src) {
				out = append(out, HeapPair{Load: n, Store: d.Src})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load < out[j].Load
		}
		return out[i].Store < out[j].Store
	})
	return out
}

// basePointer returns the base-pointer register of a heap access, or
// nil when the access has none (static fields).
func basePointer(ins ir.Instr) *ir.Reg {
	switch ins := ins.(type) {
	case *ir.GetField:
		return ins.Obj
	case *ir.SetField:
		return ins.Obj
	case *ir.ArrayLoad:
		return ins.Arr
	case *ir.ArrayStore:
		return ins.Arr
	case *ir.ArrayLen:
		return ins.Arr
	case *ir.NewArray:
		return ins.Dst
	}
	return nil
}

// indexOperand returns the index register of an array access, or nil.
func indexOperand(ins ir.Instr) *ir.Reg {
	switch ins := ins.(type) {
	case *ir.ArrayLoad:
		return ins.Idx
	case *ir.ArrayStore:
		return ins.Idx
	}
	return nil
}

// AliasExplanation answers "why do these two accesses touch the same
// location?" with two filtered thin slices (paper §4.1).
type AliasExplanation struct {
	Pair HeapPair
	// Common is the set of abstract objects that flow to both base
	// pointers, establishing the aliasing.
	Common []*pointsto.Object
	// LoadFlow and StoreFlow are thin slices showing how a common
	// object reaches the load's and the store's base pointer,
	// restricted to statements carrying a common object.
	LoadFlow  *core.Slice
	StoreFlow *core.Slice
	// IndexFlows are thin slices on the array index expressions, when
	// the accesses are array accesses (paper §4.1's second question).
	IndexFlows []*core.Slice
}

// Statements returns the union of explanation statements, sorted.
func (e *AliasExplanation) Statements() []ir.Instr {
	seen := make(map[ir.Instr]bool)
	var out []ir.Instr
	collect := func(sl *core.Slice) {
		if sl == nil {
			return
		}
		for _, ins := range sl.Instrs() {
			if !seen[ins] {
				seen[ins] = true
				out = append(out, ins)
			}
		}
	}
	collect(e.LoadFlow)
	collect(e.StoreFlow)
	for _, sl := range e.IndexFlows {
		collect(sl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ExplainAliasing computes the aliasing explanation for a heap pair:
// two more thin slices, seeded at the definitions of the two base
// pointers and filtered to the flow of objects common to both
// points-to sets (in the respective contexts of the two accesses).
func ExplainAliasing(g *sdg.Graph, pair HeapPair) *AliasExplanation {
	return explainAliasing(g, pair, core.NewThin(g))
}

// explainAliasing is ExplainAliasing over a caller-provided thin
// slicer, so expansions can reuse one carrying their budget.
func explainAliasing(g *sdg.Graph, pair HeapPair, thin *core.Slicer) *AliasExplanation {
	exp := &AliasExplanation{Pair: pair}
	loadIns := g.InstrOf(pair.Load)
	storeIns := g.InstrOf(pair.Store)
	loadBase := basePointer(loadIns)
	storeBase := basePointer(storeIns)
	if loadBase == nil || storeBase == nil {
		return exp // static field: no aliasing to explain
	}
	loadCtx := g.CtxOf(pair.Load)
	storeCtx := g.CtxOf(pair.Store)
	common := commonObjects(
		g.Pts.PointsToIn(loadBase, loadCtx),
		g.Pts.PointsToIn(storeBase, storeCtx))
	exp.Common = common
	commonIDs := make(map[int]bool, len(common))
	for _, o := range common {
		commonIDs[o.ID] = true
	}
	keep := func(ins ir.Instr) bool { return carriesObject(g.Pts, ins, commonIDs) }
	if loadBase.Def != nil {
		exp.LoadFlow = thin.SliceFiltered(keep, g.NodeOf(loadCtx, loadBase.Def))
	}
	if storeBase.Def != nil {
		exp.StoreFlow = thin.SliceFiltered(keep, g.NodeOf(storeCtx, storeBase.Def))
	}
	// Array accesses additionally raise "how can the indices agree?".
	for _, acc := range []struct {
		node sdg.Node
		ins  ir.Instr
		ctx  *pointsto.MCtx
	}{{pair.Load, loadIns, loadCtx}, {pair.Store, storeIns, storeCtx}} {
		if idx := indexOperand(acc.ins); idx != nil && idx.Def != nil {
			exp.IndexFlows = append(exp.IndexFlows, thin.SliceNodes(g.NodeOf(acc.ctx, idx.Def)))
		}
	}
	return exp
}

func commonObjects(a, b []*pointsto.Object) []*pointsto.Object {
	inA := make(map[int]bool)
	for _, o := range a {
		inA[o.ID] = true
	}
	var out []*pointsto.Object
	for _, o := range b {
		if inA[o.ID] {
			out = append(out, o)
		}
	}
	return out
}

// carriesObject reports whether a statement moves one of the given
// objects: it defines a reference holding one, or stores one into the
// heap. This is the §4.1 filter that drops statements showing flow of
// an object to only one of the two base pointers. The check uses the
// context-insensitive projection of the points-to sets.
func carriesObject(pts *pointsto.Result, ins ir.Instr, ids map[int]bool) bool {
	check := func(r *ir.Reg) bool {
		for _, o := range pts.PointsTo(r) {
			if ids[o.ID] {
				return true
			}
		}
		return false
	}
	if d := ins.Def(); d != nil && check(d) {
		return true
	}
	switch ins := ins.(type) {
	case *ir.SetField:
		return check(ins.Val)
	case *ir.ArrayStore:
		return check(ins.Val)
	case *ir.SetStatic:
		return check(ins.Val)
	case *ir.Return:
		return ins.Val != nil && check(ins.Val)
	}
	return false
}

// ControlExplanation returns the statements that ins is directly
// control dependent on, in any context: branch conditions in its
// method and, for statements that always execute on entry, the call
// sites of the method (paper §4.2). The user would next thin-slice
// from these.
func ControlExplanation(g *sdg.Graph, ins ir.Instr) []ir.Instr {
	var out []ir.Instr
	seen := make(map[ir.Instr]bool)
	for _, n := range g.NodesOf(ins) {
		for _, d := range g.Deps(n) {
			if !d.Kind.IsControl() {
				continue
			}
			src := g.InstrOf(d.Src)
			if !seen[src] {
				seen[src] = true
				out = append(out, src)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Expansion is an iterative expansion state over a thin slice.
type Expansion struct {
	g    *sdg.Graph
	thin *core.Slicer
	// Members is the current statement-instance set.
	Members map[sdg.Node]bool
	// Depth counts expansion rounds performed.
	Depth int
	// Filtered selects whether aliasing explanations restrict to
	// common objects (the interactive behavior) or include all base
	// pointer flow (the limit construction covering the traditional
	// slice).
	Filtered bool
	// Truncated reports that a violated budget stopped the expansion
	// before its fixpoint; Err carries the typed budget error.
	Truncated bool
	Err       error

	meter *budget.Meter
}

// NewExpansion starts an unbounded expansion from the thin slice of
// the seeds.
func NewExpansion(g *sdg.Graph, filtered bool, seeds ...ir.Instr) *Expansion {
	return NewExpansionBudget(g, filtered, nil, seeds...)
}

// NewExpansionBudget starts an expansion whose rounds and inner thin
// slices are bounded by b (PhaseExpand / PhaseSlice). A violated
// budget leaves the expansion at its current member set, flagged
// Truncated — by construction every member is still a valid
// explanation statement.
func NewExpansionBudget(g *sdg.Graph, filtered bool, b *budget.Budget, seeds ...ir.Instr) *Expansion {
	e := &Expansion{
		g:        g,
		thin:     core.NewThin(g).WithBudget(b),
		Members:  make(map[sdg.Node]bool),
		Filtered: filtered,
		meter:    b.Phase(budget.PhaseExpand),
	}
	initial := e.thin.Slice(seeds...)
	e.noteSlice(initial)
	for _, n := range initial.Nodes() {
		e.Members[n] = true
	}
	return e
}

// noteSlice folds a component slice's truncation into the expansion.
func (e *Expansion) noteSlice(sl *core.Slice) {
	if sl != nil && sl.Truncated {
		e.Truncated = true
		if e.Err == nil {
			e.Err = sl.Err
		}
	}
}

// Size returns the current statement-instance count.
func (e *Expansion) Size() int { return len(e.Members) }

// Contains reports whether any instance of ins is a member.
func (e *Expansion) Contains(ins ir.Instr) bool {
	for _, n := range e.g.NodesOf(ins) {
		if e.Members[n] {
			return true
		}
	}
	return false
}

// Instrs returns the member statements (instruction projection).
func (e *Expansion) Instrs() map[ir.Instr]bool {
	out := make(map[ir.Instr]bool, len(e.Members))
	for n := range e.Members {
		out[e.g.InstrOf(n)] = true
	}
	return out
}

// Step performs one expansion round: for every member, add control
// explanations (plus their thin slices) and aliasing explanations for
// heap edges and base pointers. It reports whether the set grew.
func (e *Expansion) Step() bool {
	before := len(e.Members)
	add := func(n sdg.Node) { e.Members[n] = true }
	addSlice := func(sl *core.Slice) {
		if sl == nil {
			return
		}
		e.noteSlice(sl)
		for _, n := range sl.Nodes() {
			add(n)
		}
	}
	members := make([]sdg.Node, 0, len(e.Members))
	for n := range e.Members {
		members = append(members, n)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, n := range members {
		if err := e.meter.Tick(); err != nil {
			e.Truncated = true
			if e.Err == nil {
				e.Err = err
			}
			return false
		}
		ctx := e.g.CtxOf(n)
		// Control: include the branches/calls and their producer chains.
		for _, d := range e.g.Deps(n) {
			switch {
			case d.Kind.IsControl():
				add(d.Src)
				addSlice(e.thin.SliceNodes(d.Src))
			case d.Kind == sdg.EdgeHeap && e.Filtered:
				exp := explainAliasing(e.g, HeapPair{Load: n, Store: d.Src}, e.thin)
				if exp.LoadFlow != nil {
					addSlice(exp.LoadFlow)
				}
				if exp.StoreFlow != nil {
					addSlice(exp.StoreFlow)
				}
				for _, sl := range exp.IndexFlows {
					addSlice(sl)
				}
			case d.Kind == sdg.EdgeBase && !e.Filtered:
				add(d.Src)
				addSlice(e.thin.SliceNodes(d.Src))
			}
		}
		if e.Filtered {
			// Base-pointer flow of accesses with no matched store
			// (e.g. the seed's own reads) still deserves an
			// explanation seed.
			ins := e.g.InstrOf(n)
			if base := basePointer(ins); base != nil && base.Def != nil {
				add(e.g.NodeOf(ctx, base.Def))
			}
		}
	}
	e.Depth++
	return len(e.Members) > before
}

// Run expands to fixpoint and returns the number of rounds.
func (e *Expansion) Run() int {
	for e.Step() {
	}
	return e.Depth
}

// ExpandToTraditional runs the unfiltered expansion to fixpoint. By
// construction this converges to (at least) the traditional slice with
// control dependences (paper §2: "in the limit yielding a traditional
// slice"), which the property tests verify.
func ExpandToTraditional(g *sdg.Graph, seeds ...ir.Instr) map[ir.Instr]bool {
	e := NewExpansion(g, false, seeds...)
	e.Run()
	return e.Instrs()
}
