package expand_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/core"
	"thinslice/internal/core/expand"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func analyzeCase(t *testing.T, file, src string) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func seedAt(t *testing.T, a *analyzer.Analysis, file string, line int) []ir.Instr {
	t.Helper()
	seeds := a.SeedsAt(file, line)
	if len(seeds) == 0 {
		t.Fatalf("no statements at %s:%d", file, line)
	}
	return seeds
}

func containsLine(instrs []ir.Instr, file string, line int) bool {
	for _, ins := range instrs {
		p := ins.Pos()
		if p.File == file && p.Line == line {
			return true
		}
	}
	return false
}

func mapContainsLine(set map[ir.Instr]bool, file string, line int) bool {
	for ins := range set {
		p := ins.Pos()
		if p.File == file && p.Line == line {
			return true
		}
	}
	return false
}

// --- Figure 4: the full debugging session ---

// TestFileBugSession walks the paper's §4 debugging session: thin slice
// from the guard finds the open-flag producers; a control explanation
// connects the throw to the guard; an aliasing explanation reveals
// which File reaches close().
func TestFileBugSession(t *testing.T) {
	src := papercases.FileBug
	file := papercases.FileBugFile
	a := analyzeCase(t, file, src)

	// Step 1: the failure is the throw; its only control dependence is
	// the guard.
	throwSeeds := seedAt(t, a, file, papercases.Line(src, "THROW"))
	var throwIns ir.Instr
	for _, s := range throwSeeds {
		if _, ok := s.(*ir.Throw); ok {
			throwIns = s
		}
	}
	if throwIns == nil {
		t.Fatal("throw instruction not found")
	}
	ctrl := expand.ControlExplanation(a.Graph, throwIns)
	guardLine := papercases.Line(src, "GUARD")
	if !containsLine(ctrl, file, guardLine) {
		t.Fatalf("control explanation of the throw must surface the guard, got %v", ctrl)
	}

	// Step 2: thin slice from the guard condition finds the open-flag
	// producers: the constructor's store of true and close()'s store of
	// false.
	thin := a.ThinSlicer()
	guardSlice := thin.Slice(seedAt(t, a, file, papercases.Line(src, "CHECK"))...)
	for _, m := range []string{"OPEN", "CLOSE", "READ"} {
		if !guardSlice.ContainsLine(file, papercases.Line(src, m)) {
			t.Errorf("thin slice of the check missing %s", m)
		}
	}
	// The Vector plumbing is not in the thin slice.
	if guardSlice.ContainsLine(file, papercases.Line(src, "NEWVEC")) {
		t.Error("thin slice must exclude the Vector construction")
	}

	// Step 3: the heap pair (read of this.open in isOpen, store in
	// close) gets an aliasing explanation showing the File's flow
	// through the Vector.
	pairs := expand.HeapPairs(a.Graph, guardSlice)
	var pair *expand.HeapPair
	for i := range pairs {
		loadIns := a.Graph.InstrOf(pairs[i].Load)
		storeIns := a.Graph.InstrOf(pairs[i].Store)
		if _, isSet := storeIns.(*ir.SetField); isSet {
			if loadIns.Pos().Line == papercases.Line(src, "READ") &&
				storeIns.Pos().Line == papercases.Line(src, "CLOSE") {
				pair = &pairs[i]
			}
		}
	}
	if pair == nil {
		t.Fatalf("heap pair READ<-CLOSE not found among %d pairs", len(pairs))
	}
	exp := expand.ExplainAliasing(a.Graph, *pair)
	if len(exp.Common) == 0 {
		t.Fatal("no common objects: aliasing unexplained")
	}
	stmts := exp.Statements()
	for _, m := range []string{"NEWFILE", "ADD", "GET1", "GET2"} {
		if !containsLine(stmts, file, papercases.Line(src, m)) {
			t.Errorf("aliasing explanation missing %s", m)
		}
	}
	// Paper: "line 16 is still omitted, as it does not touch the File
	// object."
	if containsLine(stmts, file, papercases.Line(src, "NEWVEC")) {
		t.Error("aliasing explanation must exclude the Vector allocation")
	}
}

func TestHeapPairsFindsVectorFlow(t *testing.T) {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a := analyzeCase(t, file, src)
	thin := a.ThinSlicer()
	sl := thin.Slice(seedAt(t, a, file, papercases.Line(src, "SEED"))...)
	pairs := expand.HeapPairs(a.Graph, sl)
	if len(pairs) == 0 {
		t.Fatal("no heap pairs in the first-names thin slice")
	}
	// At least one pair is the Vector's backing array load/store.
	foundArray := false
	for _, p := range pairs {
		if _, ok := a.Graph.InstrOf(p.Load).(*ir.ArrayLoad); ok {
			if _, ok := a.Graph.InstrOf(p.Store).(*ir.ArrayStore); ok {
				foundArray = true
			}
		}
	}
	if !foundArray {
		t.Error("expected an array element heap pair through the Vector")
	}
}

func TestAliasExplanationFiltersUnrelatedFlow(t *testing.T) {
	src := `class Box {
    Object v;
    Box() { }
}
class Main {
    static Box route(Box b, Box unrelated) {
        print(unrelated); // UNRELATED
        return b; // ROUTE
    }
    static void main() {
        Box b1 = new Box(); // TARGET
        Box decoy = new Box(); // DECOY
        Box b2 = route(b1, decoy); // CALL
        b1.v = input(); // STORE
        print(b2.v); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer()
	sl := thin.Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	pairs := expand.HeapPairs(a.Graph, sl)
	if len(pairs) != 1 {
		t.Fatalf("got %d heap pairs, want 1", len(pairs))
	}
	exp := expand.ExplainAliasing(a.Graph, pairs[0])
	stmts := exp.Statements()
	if !containsLine(stmts, "t.mj", papercases.Line(src, "TARGET")) {
		t.Error("explanation missing the common allocation")
	}
	if !containsLine(stmts, "t.mj", papercases.Line(src, "ROUTE")) {
		t.Error("explanation missing the routing return")
	}
	if containsLine(stmts, "t.mj", papercases.Line(src, "DECOY")) {
		t.Error("explanation must filter the decoy allocation (flows to neither base)")
	}
}

func TestIndexFlowExplanation(t *testing.T) {
	src := `class Main {
    static void main() {
        Object[] a = new Object[8];
        int i = inputInt(); // IDX
        a[i] = new Object(); // STORE
        print(a[i]); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	thin := a.ThinSlicer()
	sl := thin.Slice(seedAt(t, a, "t.mj", papercases.Line(src, "SEED"))...)
	pairs := expand.HeapPairs(a.Graph, sl)
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	exp := expand.ExplainAliasing(a.Graph, pairs[0])
	if len(exp.IndexFlows) != 2 {
		t.Fatalf("got %d index flows, want 2 (load and store)", len(exp.IndexFlows))
	}
	found := false
	for _, fl := range exp.IndexFlows {
		if fl.ContainsLine("t.mj", papercases.Line(src, "IDX")) {
			found = true
		}
	}
	if !found {
		t.Error("index explanation missing the index computation")
	}
}

func TestExpansionGrowsMonotonically(t *testing.T) {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a := analyzeCase(t, file, src)
	seeds := seedAt(t, a, file, papercases.Line(src, "SEED"))
	e := expand.NewExpansion(a.Graph, true, seeds...)
	prev := e.Size()
	if prev == 0 {
		t.Fatal("empty initial expansion")
	}
	for e.Step() {
		if e.Size() < prev {
			t.Fatal("expansion shrank")
		}
		prev = e.Size()
		if e.Depth > 100 {
			t.Fatal("expansion did not converge")
		}
	}
}

// TestExpansionLimitCoversTraditional checks the paper's §2 claim: the
// hierarchical expansion, run to fixpoint without the common-object
// filter, recovers (at least) the traditional slice with control
// dependences.
func TestExpansionLimitCoversTraditional(t *testing.T) {
	cases := []struct{ file, src string }{
		{papercases.ToyFile, papercases.Toy},
		{papercases.FileBugFile, papercases.FileBug},
		{papercases.ToughCastFile, papercases.ToughCast},
		{papercases.FirstNamesFile, papercases.FirstNames},
	}
	for _, c := range cases {
		a := analyzeCase(t, c.file, c.src)
		trad := a.TraditionalSlicer(true)
		// Take a handful of seeds spread across the program.
		var seeds []ir.Instr
		for _, m := range a.Prog.Methods {
			if !a.Graph.Reachable(m) {
				continue
			}
			m.Instrs(func(ins ir.Instr) {
				switch ins.(type) {
				case *ir.Print, *ir.Throw, *ir.Cast:
					seeds = append(seeds, ins)
				}
			})
		}
		for _, seed := range seeds {
			limit := expand.ExpandToTraditional(a.Graph, seed)
			tslice := trad.Slice(seed)
			for _, ins := range tslice.Instrs() {
				if !limit[ins] {
					t.Errorf("%s: expansion limit from %s missing traditional member %s",
						c.file, seed, ins)
					return
				}
			}
			// The filtered interactive expansion stays within the thin
			// closure of the traditional slice's statements (sanity:
			// no wild growth beyond the program).
			if len(limit) > a.Graph.NumNodes() {
				t.Errorf("%s: expansion exceeded program size", c.file)
			}
		}
	}
}

func TestControlExplanationOfToughCast(t *testing.T) {
	src := papercases.ToughCast
	file := papercases.ToughCastFile
	a := analyzeCase(t, file, src)
	castLine := papercases.Line(src, "CAST")
	var cast ir.Instr
	for _, s := range seedAt(t, a, file, castLine) {
		if _, ok := s.(*ir.Cast); ok {
			cast = s
		}
	}
	ctrl := expand.ControlExplanation(a.Graph, cast)
	if !containsLine(ctrl, file, papercases.Line(src, "GUARD")) {
		t.Fatal("control explanation of the cast must surface the opcode guard")
	}
	// Thin slicing from the guard finds the constructor opcode writes —
	// completing the paper's §6.3 workflow.
	guardSeeds := seedAt(t, a, file, papercases.Line(src, "GUARD"))
	sl := a.ThinSlicer().Slice(guardSeeds...)
	for _, m := range []string{"SETOP", "ADDOP", "SUBOP"} {
		if !sl.ContainsLine(file, papercases.Line(src, m)) {
			t.Errorf("guard thin slice missing %s", m)
		}
	}
}

func TestFilteredExpansionStaysSmallerThanUnfiltered(t *testing.T) {
	src := papercases.FileBug
	file := papercases.FileBugFile
	a := analyzeCase(t, file, src)
	seeds := seedAt(t, a, file, papercases.Line(src, "CHECK"))
	filtered := expand.NewExpansion(a.Graph, true, seeds...)
	filtered.Run()
	unfiltered := expand.NewExpansion(a.Graph, false, seeds...)
	unfiltered.Run()
	if filtered.Size() > unfiltered.Size() {
		t.Errorf("filtered expansion (%d) larger than unfiltered (%d)",
			filtered.Size(), unfiltered.Size())
	}
	_ = mapContainsLine
	_ = core.Thin
}
