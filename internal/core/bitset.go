package core

import "math/bits"

// bitset is a dense fixed-capacity bit membership set with a member
// count. Slice traversal uses it in place of map[sdg.Node]bool /
// map[ir.Instr]bool: membership tests become one shift+mask, admission
// allocates nothing after construction, and iteration yields members
// in ascending index order for free (the order the sorted accessors
// need).
type bitset struct {
	words []uint64
	n     int
}

// newBitset returns a set over indices [0, capacity).
func newBitset(capacity int) bitset {
	return bitset{words: make([]uint64, (capacity+63)/64)}
}

// add inserts i and reports whether it was new.
func (b *bitset) add(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.n++
	return true
}

// has reports membership of i.
func (b *bitset) has(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(i)&63)) != 0
}

// count returns the number of members.
func (b *bitset) count() int { return b.n }

// forEach calls f for every member in ascending order.
func (b *bitset) forEach(f func(int)) {
	for w, word := range b.words {
		for word != 0 {
			f(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
