package core_test

import (
	"testing"
	"testing/quick"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analyzer"
	"thinslice/internal/core/expand"
	"thinslice/internal/csslice"
	"thinslice/internal/ir"
	"thinslice/internal/randprog"
	"thinslice/internal/sdg"
)

// analyzeSeed builds the full pipeline for one random program.
func analyzeSeed(t *testing.T, seed int64) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(randprog.Generate(seed, randprog.DefaultConfig))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return a
}

// printSeeds collects up to n Print statements of the entry method as
// slicing seeds.
func printSeeds(a *analyzer.Analysis, n int) []ir.Instr {
	var out []ir.Instr
	for _, m := range a.Pts.Entries() {
		m.Instrs(func(ins ir.Instr) {
			if len(out) < n {
				if _, ok := ins.(*ir.Print); ok {
					out = append(out, ins)
				}
			}
		})
	}
	return out
}

// Property: thin ⊆ traditional(no control) ⊆ traditional(control) on
// random programs, and every slice contains its seed.
func TestPropertySliceInclusion(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		thin := a.ThinSlicer()
		tnc := a.TraditionalSlicer(false)
		tc := a.TraditionalSlicer(true)
		for _, s := range printSeeds(a, 6) {
			st := thin.Slice(s)
			snc := tnc.Slice(s)
			sc := tc.Slice(s)
			if !st.Contains(s) {
				t.Logf("seed %d: slice lost its seed", seed)
				return false
			}
			for _, ins := range st.Instrs() {
				if !snc.Contains(ins) {
					t.Logf("seed %d: thin ⊄ trad-nc at %s", seed, ins)
					return false
				}
			}
			for _, ins := range snc.Instrs() {
				if !sc.Contains(ins) {
					t.Logf("seed %d: trad-nc ⊄ trad-c at %s", seed, ins)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: slicing is monotone in seeds — the slice of {s1, s2}
// contains the union of the singleton slices' statements.
func TestPropertySeedMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		thin := a.ThinSlicer()
		seeds := printSeeds(a, 2)
		if len(seeds) < 2 {
			return true
		}
		both := thin.Slice(seeds...)
		for _, s := range seeds {
			for _, ins := range thin.Slice(s).Instrs() {
				if !both.Contains(ins) {
					t.Logf("seed %d: union slice missing %s", seed, ins)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: slicing is idempotent under re-query — slicing twice from
// the same seed yields identical statement sets (determinism).
func TestPropertySliceDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		thin := a.ThinSlicer()
		for _, s := range printSeeds(a, 3) {
			x := thin.Slice(s).Instrs()
			y := thin.Slice(s).Instrs()
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the unfiltered expansion fixpoint covers the traditional
// slice with control dependences (the §2 limit claim), on random
// programs.
func TestPropertyExpansionCoversTraditional(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		trad := a.TraditionalSlicer(true)
		for _, s := range printSeeds(a, 2) {
			limit := expand.ExpandToTraditional(a.Graph, s)
			for _, ins := range trad.Slice(s).Instrs() {
				if !limit[ins] {
					t.Logf("seed %d: expansion missing %s", seed, ins)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: the context-sensitive thin slice never covers more source
// lines than the context-insensitive one (realizable paths are a
// subset of all paths).
func TestPropertyCSWithinCI(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		mr := modref.Compute(a.Prog, a.Pts)
		g := csslice.Build(a.Prog, a.Pts, mr)
		cs := csslice.NewSlicer(g, true, false)
		ci := a.ThinSlicer()
		for _, s := range printSeeds(a, 3) {
			ciLines := make(map[string]bool)
			for _, p := range ci.Slice(s).Lines() {
				ciLines[p.String()] = true
			}
			for p := range csslice.SliceLines(cs.Slice(s)) {
				if !ciLines[p.String()] {
					t.Logf("seed %d: CS line %s not in CI slice", seed, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: thin slices ignore base-pointer provenance — removing base
// edges from consideration means a thin slice never includes a
// statement whose only connection is through base/control edges.
// Concretely: every member (other than Via call sites) is reachable
// from the seed through producer edges alone, which we re-verify with
// an independent traversal.
func TestPropertyThinMembersProducerReachable(t *testing.T) {
	f := func(seed int64) bool {
		a := analyzeSeed(t, seed)
		thin := a.ThinSlicer()
		for _, s := range printSeeds(a, 3) {
			sl := thin.Slice(s)
			// Independent closure over producer edges at node level.
			reach := make(map[int64]bool)
			var stack []int64
			for _, n := range a.Graph.NodesOf(s) {
				reach[int64(n)] = true
				stack = append(stack, int64(n))
			}
			viaOK := make(map[int64]bool)
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range a.Graph.Deps(sdg.Node(n)) {
					if !d.Kind.IsProducerFlow() {
						continue
					}
					if d.Via >= 0 {
						viaOK[int64(d.Via)] = true
					}
					if !reach[int64(d.Src)] {
						reach[int64(d.Src)] = true
						stack = append(stack, int64(d.Src))
					}
				}
			}
			for _, n := range sl.Nodes() {
				if !reach[int64(n)] && !viaOK[int64(n)] {
					t.Logf("seed %d: thin member %s not producer-reachable", seed, a.Graph.InstrOf(n))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
