// Package core implements the paper's primary contribution: thin
// slicing (producer-statement closure over the dependence graph,
// paper §2–3, §5.2) and the traditional slicing baseline, over the
// context-insensitive SDG variant. Context-sensitive slicing via
// tabulation lives in package csslice.
package core

import (
	"sort"

	"thinslice/internal/budget"
	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
	"thinslice/internal/sdg"
)

// Mode selects the relevance definition.
type Mode int

// Slicing modes.
const (
	// Thin follows only producer flow: local def-use into producer
	// operands, heap store→load flow, and parameter/return passing.
	Thin Mode = iota
	// Traditional additionally follows base-pointer flow dependences
	// and (optionally) control dependences.
	Traditional
)

func (m Mode) String() string {
	if m == Thin {
		return "thin"
	}
	return "traditional"
}

// Options configures a slicer.
type Options struct {
	Mode Mode
	// FollowControl includes control dependence edges. The paper's
	// evaluation (§6.1) excludes control dependences from both slicers
	// and accounts for them separately, so experiment code sets this
	// false; the full traditional slice sets it true.
	FollowControl bool
}

// Slicer computes backward slices over a dependence graph.
type Slicer struct {
	G    *sdg.Graph
	Opts Options
	// Budget bounds each Slice call (PhaseSlice, one step per node
	// admitted or edge traversed). Nil means unlimited. A violated
	// budget stops the closure early and flags the slice Truncated.
	Budget *budget.Budget
}

// WithBudget attaches a budget to the slicer and returns it.
func (s *Slicer) WithBudget(b *budget.Budget) *Slicer {
	s.Budget = b
	return s
}

// NewThin returns a thin slicer (producer statements only).
func NewThin(g *sdg.Graph) *Slicer {
	return &Slicer{G: g, Opts: Options{Mode: Thin}}
}

// NewTraditional returns a traditional slicer; withControl selects
// whether transitive control dependences are included.
func NewTraditional(g *sdg.Graph, withControl bool) *Slicer {
	return &Slicer{G: g, Opts: Options{Mode: Traditional, FollowControl: withControl}}
}

// Follows reports whether the slicer traverses edges of kind k.
func (s *Slicer) Follows(k sdg.EdgeKind) bool {
	if k.IsProducerFlow() {
		return true
	}
	if s.Opts.Mode == Thin {
		return false
	}
	if k == sdg.EdgeBase {
		return true
	}
	return s.Opts.FollowControl && k.IsControl()
}

// Slice is a computed backward slice: a set of statement instances,
// projected onto instructions and source lines for reporting.
type Slice struct {
	// Truncated reports that the backward closure stopped early on a
	// violated budget: every member is a true producer statement, but
	// the slice may be missing members. Err carries the typed,
	// phase-tagged budget error that stopped the traversal.
	Truncated bool
	Err       error

	g     *sdg.Graph
	seeds []sdg.Node
	// nodes and instrs are dense bitsets (over statement-instance IDs
	// and program-wide instruction IDs): membership is one shift+mask
	// and traversal admits members without allocating.
	nodes bitset
	// instrs is the projection of nodes onto instructions.
	instrs bitset
}

// ContainsNode reports whether the statement instance n is in the slice.
func (sl *Slice) ContainsNode(n sdg.Node) bool { return sl.nodes.has(int(n)) }

// Contains reports whether any instance of ins is in the slice.
func (sl *Slice) Contains(ins ir.Instr) bool { return sl.instrs.has(ins.ID()) }

// Size returns the number of distinct member statements (instructions).
func (sl *Slice) Size() int { return sl.instrs.count() }

// NumNodes returns the number of member statement instances.
func (sl *Slice) NumNodes() int { return sl.nodes.count() }

// Nodes returns the member statement instances, sorted.
func (sl *Slice) Nodes() []sdg.Node {
	out := make([]sdg.Node, 0, sl.nodes.count())
	sl.nodes.forEach(func(n int) { out = append(out, sdg.Node(n)) })
	return out
}

// Instrs returns the member statements ordered by instruction ID.
func (sl *Slice) Instrs() []ir.Instr {
	out := make([]ir.Instr, 0, sl.instrs.count())
	sl.instrs.forEach(func(id int) { out = append(out, sl.g.Prog.InstrByID(id)) })
	return out
}

// Seeds returns the seed statement instances.
func (sl *Slice) Seeds() []sdg.Node { return sl.seeds }

// Lines returns the distinct source positions (file:line) covered by
// the slice, sorted.
func (sl *Slice) Lines() []token.Pos {
	seen := make(map[token.Pos]bool)
	var out []token.Pos
	sl.instrs.forEach(func(id int) {
		p := sl.g.Prog.InstrByID(id).Pos()
		p.Col = 0
		if p.IsValid() && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// ContainsLine reports whether any member statement is at file:line.
func (sl *Slice) ContainsLine(file string, line int) bool {
	found := false
	sl.instrs.forEach(func(id int) {
		p := sl.g.Prog.InstrByID(id).Pos()
		if p.File == file && p.Line == line {
			found = true
		}
	})
	return found
}

// Slice computes the backward closure from all statement instances of
// the seed instructions.
func (s *Slicer) Slice(seeds ...ir.Instr) *Slice {
	var nodes []sdg.Node
	for _, seed := range seeds {
		nodes = append(nodes, s.G.NodesOf(seed)...)
	}
	return s.SliceNodes(nodes...)
}

// SliceNodes computes the backward closure from specific statement
// instances.
func (s *Slicer) SliceNodes(seeds ...sdg.Node) *Slice {
	return s.sliceFiltered(nil, seeds)
}

// SliceFiltered computes a backward closure where traversal only
// continues through statements accepted by keep. Seeds are always
// accepted. Used by hierarchical expansion to restrict aliasing
// explanations to the flow of common objects (paper §4.1).
func (s *Slicer) SliceFiltered(keep func(ir.Instr) bool, seeds ...sdg.Node) *Slice {
	return s.sliceFiltered(keep, seeds)
}

func (s *Slicer) sliceFiltered(keep func(ir.Instr) bool, seeds []sdg.Node) *Slice {
	sl := &Slice{
		g:      s.G,
		seeds:  seeds,
		nodes:  newBitset(s.G.NumNodes()),
		instrs: newBitset(s.G.Prog.NumInstrs),
	}
	// Inherit the graph's truncation: a slice over an incomplete graph
	// is itself potentially incomplete.
	if s.G.Truncated {
		sl.Truncated, sl.Err = true, s.G.LimitErr
	}
	meter := s.Budget.Phase(budget.PhaseSlice)
	var work []sdg.Node
	// traversed is distinct from membership: call sites recorded as
	// Via members must still be traversable if reached through an
	// edge later.
	traversed := newBitset(s.G.NumNodes())
	admit := func(n sdg.Node, isSeed bool) bool {
		if traversed.has(int(n)) {
			return false
		}
		if !isSeed && keep != nil && !keep(s.G.InstrOf(n)) {
			return false
		}
		traversed.add(int(n))
		sl.nodes.add(int(n))
		sl.instrs.add(s.G.InstrOf(n).ID())
		work = append(work, n)
		return true
	}
	for _, seed := range seeds {
		admit(seed, true)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		deps := s.G.Deps(n)
		if err := meter.TickN(1 + int64(len(deps))); err != nil {
			sl.Truncated, sl.Err = true, err
			return sl
		}
		for _, d := range deps {
			if !s.Follows(d.Kind) {
				continue
			}
			admitted := admit(d.Src, false)
			if d.Via != sdg.NoNode && (admitted || sl.nodes.has(int(d.Src))) {
				// The call site passing the value is itself a producer
				// statement (paper Fig. 1, line 17), but its own
				// dependences are return-value flow, which is not part
				// of this value's producer chain: include, don't
				// traverse.
				if sl.nodes.add(int(d.Via)) {
					sl.instrs.add(s.G.InstrOf(d.Via).ID())
				}
			}
		}
	}
	return sl
}

// SeedsAt returns the statements of g's program located at file:line
// in reachable methods — the usual way a user names a slicing seed.
func SeedsAt(g *sdg.Graph, file string, line int) []ir.Instr {
	var out []ir.Instr
	for _, m := range g.Prog.Methods {
		if !g.Reachable(m) {
			continue
		}
		m.Instrs(func(ins ir.Instr) {
			p := ins.Pos()
			if p.File == file && p.Line == line {
				out = append(out, ins)
			}
		})
	}
	return out
}
