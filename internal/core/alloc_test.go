package core_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/core"
	"thinslice/internal/sdg"
)

// benchGraph builds the dependence graph of a generated benchmark once
// for traversal measurements.
func benchGraph(tb testing.TB) (*sdg.Graph, []sdg.Node) {
	tb.Helper()
	bm := bench.Generate("nanoxml", 2)
	a, err := analyzer.Analyze(bm.Sources)
	if err != nil {
		tb.Fatal(err)
	}
	var seeds []sdg.Node
	for _, s := range bm.QuerySeeds() {
		for _, ins := range core.SeedsAt(a.Graph, s.File, s.Line) {
			seeds = append(seeds, a.Graph.NodesOf(ins)...)
		}
	}
	if len(seeds) == 0 {
		tb.Fatal("no seed nodes")
	}
	return a.Graph, seeds
}

// TestSliceTraversalDoesNotAllocatePerNode is the perf-smoke guard the
// CI job runs: the backward closure must admit members through dense
// bitsets, not per-node map inserts. A regression to map-based
// membership allocates at least once per admitted node; the bitset
// implementation allocates a small constant number of backing arrays.
func TestSliceTraversalDoesNotAllocatePerNode(t *testing.T) {
	g, seeds := benchGraph(t)
	slicer := core.NewThin(g)
	warm := slicer.SliceNodes(seeds...)
	if warm.NumNodes() < 64 {
		t.Fatalf("slice too small to be a meaningful guard: %d nodes", warm.NumNodes())
	}
	allocs := testing.AllocsPerRun(10, func() {
		slicer.SliceNodes(seeds...)
	})
	// Bitsets + work stack + the Slice header: well under one
	// allocation per admitted node, and under a small constant.
	if allocs >= float64(warm.NumNodes()) {
		t.Fatalf("slice traversal allocates per node: %.0f allocs for %d nodes", allocs, warm.NumNodes())
	}
	if allocs > 32 {
		t.Fatalf("slice traversal allocates too much: %.0f allocs (want <= 32)", allocs)
	}
}

// BenchmarkSliceTraversal measures one warm backward closure over a
// built graph — the hot loop behind every /slice request. Allocations
// are reported; the guard test above pins them to O(1) per call.
func BenchmarkSliceTraversal(b *testing.B) {
	g, seeds := benchGraph(b)
	slicer := core.NewThin(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slicer.SliceNodes(seeds...)
	}
}

// BenchmarkPathTo measures the witness-path BFS over the dense parents
// array.
func BenchmarkPathTo(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	a, err := analyzer.Analyze(bm.Sources)
	if err != nil {
		b.Fatal(err)
	}
	seedSpec := bm.QuerySeeds()[0]
	seeds := core.SeedsAt(a.Graph, seedSpec.File, seedSpec.Line)
	sl := a.ThinSlicer().Slice(seeds...)
	instrs := sl.Instrs()
	target := instrs[len(instrs)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ThinSlicer().PathTo(target, seeds...)
	}
}
