package core

import (
	"thinslice/internal/ir"
	"thinslice/internal/sdg"
)

// PathStep is one hop of a dependence chain: the statement reached and
// the edge kind used to reach it from the previous step (the first
// step has no incoming edge and Kind is meaningless).
type PathStep struct {
	Node sdg.Node
	Ins  ir.Instr
	// Kind is the dependence kind connecting the previous step to this
	// one (EdgeLocal for the seed step).
	Kind sdg.EdgeKind
	// ViaCall is the call site mediating a param edge, or nil.
	ViaCall ir.Instr
}

// PathTo returns a shortest chain of dependence edges from any seed
// statement to any instance of target, traversing only edges this
// slicer follows — the "why is this statement in my slice?" question a
// browsing tool must answer. It returns nil when target is not in the
// slice. The chain starts at a seed and ends at target.
func (s *Slicer) PathTo(target ir.Instr, seeds ...ir.Instr) []PathStep {
	g := s.G
	type parentEdge struct {
		prev sdg.Node
		kind sdg.EdgeKind
		via  sdg.Node
	}
	// Dense BFS state: one parents entry per statement instance and a
	// visited bitset, replacing the map-based frontier.
	parents := make([]parentEdge, g.NumNodes())
	inQueue := newBitset(g.NumNodes())
	var queue []sdg.Node
	for _, seed := range seeds {
		for _, n := range g.NodesOf(seed) {
			if inQueue.add(int(n)) {
				parents[n] = parentEdge{prev: sdg.NoNode, via: sdg.NoNode}
				queue = append(queue, n)
			}
		}
	}
	targetNodes := newBitset(g.NumNodes())
	for _, n := range g.NodesOf(target) {
		targetNodes.add(int(n))
	}
	var hit sdg.Node = sdg.NoNode
	for head := 0; head < len(queue) && hit == sdg.NoNode; head++ {
		n := queue[head]
		if targetNodes.has(int(n)) {
			hit = n
			break
		}
		for _, d := range g.Deps(n) {
			if !s.Follows(d.Kind) {
				continue
			}
			// A Via call site is itself a reachable member: answer for
			// it too, treating it as reached through the param edge.
			if d.Via != sdg.NoNode && targetNodes.has(int(d.Via)) {
				if inQueue.add(int(d.Via)) {
					parents[d.Via] = parentEdge{prev: n, kind: d.Kind, via: sdg.NoNode}
				}
				hit = d.Via
				break
			}
			if inQueue.add(int(d.Src)) {
				parents[d.Src] = parentEdge{prev: n, kind: d.Kind, via: d.Via}
				queue = append(queue, d.Src)
			}
		}
	}
	if hit == sdg.NoNode {
		return nil
	}
	// Walk parents back to the seed, then reverse into seed→target order.
	var rev []PathStep
	for n := hit; ; {
		pe := parents[n]
		step := PathStep{Node: n, Ins: g.InstrOf(n), Kind: pe.kind}
		if pe.via != sdg.NoNode {
			step.ViaCall = g.InstrOf(pe.via)
		}
		rev = append(rev, step)
		if pe.prev == sdg.NoNode {
			break
		}
		n = pe.prev
	}
	out := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
