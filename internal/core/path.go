package core

import (
	"thinslice/internal/ir"
	"thinslice/internal/sdg"
)

// PathStep is one hop of a dependence chain: the statement reached and
// the edge kind used to reach it from the previous step (the first
// step has no incoming edge and Kind is meaningless).
type PathStep struct {
	Node sdg.Node
	Ins  ir.Instr
	// Kind is the dependence kind connecting the previous step to this
	// one (EdgeLocal for the seed step).
	Kind sdg.EdgeKind
	// ViaCall is the call site mediating a param edge, or nil.
	ViaCall ir.Instr
}

// PathTo returns a shortest chain of dependence edges from any seed
// statement to any instance of target, traversing only edges this
// slicer follows — the "why is this statement in my slice?" question a
// browsing tool must answer. It returns nil when target is not in the
// slice. The chain starts at a seed and ends at target.
func (s *Slicer) PathTo(target ir.Instr, seeds ...ir.Instr) []PathStep {
	g := s.G
	type parentEdge struct {
		prev sdg.Node
		kind sdg.EdgeKind
		via  sdg.Node
	}
	parents := make(map[sdg.Node]parentEdge)
	var queue []sdg.Node
	inQueue := make(map[sdg.Node]bool)
	for _, seed := range seeds {
		for _, n := range g.NodesOf(seed) {
			if !inQueue[n] {
				inQueue[n] = true
				parents[n] = parentEdge{prev: sdg.NoNode, via: sdg.NoNode}
				queue = append(queue, n)
			}
		}
	}
	targetNodes := make(map[sdg.Node]bool)
	for _, n := range g.NodesOf(target) {
		targetNodes[n] = true
	}
	var hit sdg.Node = sdg.NoNode
	for len(queue) > 0 && hit == sdg.NoNode {
		n := queue[0]
		queue = queue[1:]
		if targetNodes[n] {
			hit = n
			break
		}
		for _, d := range g.Deps(n) {
			if !s.Follows(d.Kind) {
				continue
			}
			// A Via call site is itself a reachable member: answer for
			// it too, treating it as reached through the param edge.
			if d.Via != sdg.NoNode && targetNodes[d.Via] {
				if !inQueue[d.Via] {
					inQueue[d.Via] = true
					parents[d.Via] = parentEdge{prev: n, kind: d.Kind, via: sdg.NoNode}
				}
				hit = d.Via
				break
			}
			if !inQueue[d.Src] {
				inQueue[d.Src] = true
				parents[d.Src] = parentEdge{prev: n, kind: d.Kind, via: d.Via}
				queue = append(queue, d.Src)
			}
		}
	}
	if hit == sdg.NoNode {
		return nil
	}
	// Walk parents back to the seed, then reverse into seed→target order.
	var rev []PathStep
	for n := hit; ; {
		pe := parents[n]
		step := PathStep{Node: n, Ins: g.InstrOf(n), Kind: pe.kind}
		if pe.via != sdg.NoNode {
			step.ViaCall = g.InstrOf(pe.via)
		}
		rev = append(rev, step)
		if pe.prev == sdg.NoNode {
			break
		}
		n = pe.prev
	}
	out := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
