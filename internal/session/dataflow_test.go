package session_test

import (
	"context"
	"errors"
	"testing"

	"thinslice/internal/budget"
	"thinslice/internal/dataflow"
	"thinslice/internal/diskstore"
	"thinslice/internal/faults"
	"thinslice/internal/session"
)

// taintSource is a small program with a real source→sink flow, so the
// taint solve has non-trivial facts to cache.
const taintSourceFile = "taintflow.mj"

const taintSource = `class Db {
    Db() { }
    void exec(string q) { print(q); }
}
class Main {
    static void main() {
        string q = "cmd " + input();
        Db d = new Db();
        d.exec(q);
    }
}
`

func taintSources() map[string]string {
	return map[string]string{taintSourceFile: taintSource}
}

func mustDataflow(t *testing.T, s *session.Session, p dataflow.Problem) *dataflow.Results {
	t.Helper()
	res, err := s.Dataflow(p)
	if err != nil {
		t.Fatalf("Dataflow(%s): %v", p.Name(), err)
	}
	return res
}

// TestDataflowWarmRequerySkipsSolve: a second query for the same
// problem (a fresh value with equal name and config) answers from the
// session cache without re-running the tabulation.
func TestDataflowWarmRequerySkipsSolve(t *testing.T) {
	s := session.Open(taintSources())
	first := mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if first.NumNodeFacts() == 0 {
		t.Fatal("taint solve found no facts; fixture is broken")
	}
	if got := s.Stats().Dataflows; got != 1 {
		t.Fatalf("cold query ran %d solves, want 1", got)
	}
	second := mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if got := s.Stats().Dataflows; got != 1 {
		t.Fatalf("warm re-query re-ran the solver: Dataflows = %d, want 1", got)
	}
	if second.NumNodeFacts() != first.NumNodeFacts() {
		t.Fatal("cached result differs from the first solve")
	}
	// A different problem is a different artifact, not a cache hit.
	mustDataflow(t, s, dataflow.CloseProblem{})
	if got := s.Stats().Dataflows; got != 2 {
		t.Fatalf("distinct problem did not solve: Dataflows = %d, want 2", got)
	}
	// So is the same problem under a different configuration.
	mustDataflow(t, s, dataflow.NewTaintProblem([]string{"inputInt"}))
	if got := s.Stats().Dataflows; got != 3 {
		t.Fatalf("distinct config did not solve: Dataflows = %d, want 3", got)
	}
}

// TestDataflowUpdateInvalidates: editing a source file invalidates the
// cached dataflow artifact (it is downstream of the program), while a
// same-content update invalidates nothing.
func TestDataflowUpdateInvalidates(t *testing.T) {
	srcs := taintSources()
	srcs["extra.mj"] = extraClass
	s := session.Open(srcs)

	mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if got := s.Stats().Dataflows; got != 1 {
		t.Fatalf("cold query ran %d solves, want 1", got)
	}

	s.Update("extra.mj", extraClassEdited)
	mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if got := s.Stats().Dataflows; got != 2 {
		t.Fatalf("edit did not invalidate the dataflow artifact: Dataflows = %d, want 2", got)
	}

	s.Update("extra.mj", extraClassEdited)
	mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if got := s.Stats().Dataflows; got != 2 {
		t.Fatalf("same-content update invalidated the dataflow artifact: Dataflows = %d, want 2", got)
	}
}

// TestDataflowTruncatedNotCached: a solve cut off by the budget is
// returned as a typed partial but recomputed on every query — a
// truncated artifact must never poison the store.
func TestDataflowTruncatedNotCached(t *testing.T) {
	b := budget.New(context.Background(), budget.WithPhaseSteps(budget.PhaseDataflow, 5))
	s := session.Open(taintSources(), session.WithBudget(b))

	res := mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if !res.Truncated {
		t.Fatal("tiny dataflow budget did not truncate the solve")
	}
	if !budget.IsExhausted(res.Err) {
		t.Fatalf("partial result carries %v, want ErrExhausted", res.Err)
	}
	if ph, _ := budget.PhaseOf(res.Err); ph != budget.PhaseDataflow {
		t.Fatalf("partial result tagged phase %q, want %q", ph, budget.PhaseDataflow)
	}
	mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if got := s.Stats().Dataflows; got != 2 {
		t.Fatalf("truncated dataflow result was cached: Dataflows = %d, want 2", got)
	}
}

// TestDataflowDiskRoundTrip: a second session over a fresh in-memory
// store but the same disk cache answers the query from disk — zero
// solver runs — and the restored result encodes byte-identically.
func TestDataflowDiskRoundTrip(t *testing.T) {
	disk, err := diskstore.Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s1 := session.Open(taintSources(), session.WithDiskCache(disk))
	first := mustDataflow(t, s1, dataflow.NewTaintProblem(nil))
	firstBytes, err := dataflow.EncodeResults(first)
	if err != nil {
		t.Fatal(err)
	}

	s2 := session.Open(taintSources(), session.WithDiskCache(disk))
	second := mustDataflow(t, s2, dataflow.NewTaintProblem(nil))
	if got := s2.Stats().Dataflows; got != 0 {
		t.Fatalf("warm-restart session re-ran the solver: Dataflows = %d, want 0", got)
	}
	secondBytes, err := dataflow.EncodeResults(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(firstBytes) != string(secondBytes) {
		t.Fatal("disk-restored dataflow result is not byte-identical to the original")
	}
}

// TestDataflowFaultInjection drives the phase hook: an injected
// exhaustion or panic at the dataflow boundary surfaces as the typed
// error, caches nothing, and the session recovers on the next query.
func TestDataflowFaultInjection(t *testing.T) {
	reg := faults.NewRegistry()
	defer reg.Install()()

	h := reg.Add(faults.Rule{Phase: budget.PhaseDataflow, Mode: faults.Exhaust, Times: 1})
	s := session.Open(taintSources())
	_, err := s.Dataflow(dataflow.NewTaintProblem(nil))
	if err == nil || !budget.IsExhausted(err) {
		t.Fatalf("injected exhaustion surfaced as %v, want ErrExhausted", err)
	}
	if h.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", h.Fired())
	}
	if got := s.Stats().Dataflows; got != 0 {
		t.Fatalf("aborted phase still ran the solver: Dataflows = %d", got)
	}
	res := mustDataflow(t, s, dataflow.NewTaintProblem(nil))
	if res.Truncated {
		t.Fatal("recovered query returned a truncated result")
	}
	if got := s.Stats().Dataflows; got != 1 {
		t.Fatalf("recovered query did not solve exactly once: Dataflows = %d", got)
	}

	reg.Clear()
	reg.Add(faults.Rule{Phase: budget.PhaseDataflow, Mode: faults.Panic, Times: 1})
	s2 := session.Open(taintSources())
	_, err = s2.Dataflow(dataflow.NewTaintProblem(nil))
	var internal *budget.ErrInternal
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	} else if !errors.As(err, &internal) {
		t.Fatalf("injected panic surfaced as %T (%v), want *budget.ErrInternal", err, err)
	}
	if res := mustDataflow(t, s2, dataflow.NewTaintProblem(nil)); res.Truncated {
		t.Fatal("session did not recover after an injected panic")
	}
}
