package session

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key is a content hash identifying one artifact: the hash of the
// artifact's inputs (source bytes, upstream artifact keys, and the
// configuration that shaped it). Equal keys mean equal artifacts.
type Key string

// hashParts derives a Key from length-prefixed parts, so no two
// distinct part lists collide by concatenation.
func hashParts(parts ...string) Key {
	h := sha256.New()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Store is a content-addressed artifact cache shared by any number of
// sessions. Artifacts are immutable once built (ASTs, typed programs,
// IR, points-to results, dependence graphs), so sharing them across
// sessions is safe; a build is single-flighted per key so concurrent
// sessions asking for the same artifact build it once.
//
// Failed builds and incomplete artifacts (budget-truncated results)
// are never retained: a later caller with a healthier budget gets a
// fresh build rather than a poisoned cache entry.
type Store struct {
	mu      sync.Mutex
	entries map[Key]*storeEntry
}

type storeEntry struct {
	done chan struct{}
	val  any
	ok   bool // false: errored, uncacheable, or panicked — rebuild
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{entries: make(map[Key]*storeEntry)}
}

// Len returns the number of cached artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// get returns the artifact for k, building it with build on a miss.
// build reports via its second result whether the artifact may be
// cached (complete artifacts only); errors are never cached. If build
// panics, the entry is released (waiters rebuild) and the panic
// propagates to the caller's recover boundary.
func (s *Store) get(k Key, build func() (any, bool, error)) (any, error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok {
			s.mu.Unlock()
			<-e.done
			if e.ok {
				return e.val, nil
			}
			// The winning builder failed or produced an uncacheable
			// artifact; loop to claim the (now vacated) slot ourselves.
			continue
		}
		e := &storeEntry{done: make(chan struct{})}
		s.entries[k] = e
		s.mu.Unlock()

		completed := false
		defer func() {
			if !completed { // build panicked: vacate and release waiters
				s.mu.Lock()
				delete(s.entries, k)
				s.mu.Unlock()
				close(e.done)
			}
		}()
		val, cacheable, err := build()
		completed = true
		if err != nil || !cacheable {
			s.mu.Lock()
			delete(s.entries, k)
			s.mu.Unlock()
			close(e.done)
			return val, err
		}
		e.val, e.ok = val, true
		close(e.done)
		return val, nil
	}
}
