package session

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime/debug"
	"sync"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/csslice"
	"thinslice/internal/dataflow"
	"thinslice/internal/depgraph"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// Key is a content hash identifying one artifact: the hash of the
// artifact's inputs (source bytes, upstream artifact keys, and the
// configuration that shaped it). Equal keys mean equal artifacts.
type Key string

// hashParts derives a Key from length-prefixed parts, so no two
// distinct part lists collide by concatenation.
func hashParts(parts ...string) Key {
	h := sha256.New()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// StoreLimits bounds a store for long-running processes. Zero fields
// mean unlimited. MaxCost is an approximate byte budget: each cached
// artifact is charged an estimated in-memory size (see estimateCost),
// so the cap tracks real memory pressure rather than entry counts
// alone.
type StoreLimits struct {
	MaxEntries int
	MaxCost    int64
}

// StoreStats is a snapshot of a store's cache behaviour, for
// observability endpoints and the eviction tests.
type StoreStats struct {
	Entries     int   // cached (completed) artifacts
	Cost        int64 // estimated bytes held by cached artifacts
	Hits        int64
	Misses      int64
	Evictions   int64
	CostEvicted int64 // cumulative estimated bytes evicted
}

// Store is a content-addressed artifact cache shared by any number of
// sessions. Artifacts are immutable once built (ASTs, typed programs,
// IR, points-to results, dependence graphs), so sharing them across
// sessions is safe; a build is single-flighted per key so concurrent
// sessions asking for the same artifact build it once.
//
// Failed builds and incomplete artifacts (budget-truncated results)
// are never retained: a later caller with a healthier budget gets a
// fresh build rather than a poisoned cache entry. A builder that
// panics is recovered here: the panic becomes a typed
// *budget.ErrInternal delivered to the claiming caller and to every
// goroutine already waiting on the key, and the in-flight slot is
// cleared so a later caller rebuilds from scratch.
//
// A store built with NewBoundedStore additionally evicts
// least-recently-used artifacts once its entry or cost cap is
// exceeded, keeping hot programs warm while a long-running process
// stays within a fixed memory budget.
type Store struct {
	mu      sync.Mutex
	entries map[Key]*storeEntry
	lru     *list.List // completed cached entries; front = most recent
	cost    int64
	limits  StoreLimits
	stats   StoreStats
	phases  Stats // phase builds aggregated over every session in the store
}

// PhaseStats returns the pipeline-phase build counters aggregated over
// every session backed by this store — the serving layer's view of how
// much real analysis work the process has done (cache hits don't
// count; see Session.Stats for the per-session split).
func (st *Store) PhaseStats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.phases
}

// countPhase applies one session's counter bump to the aggregate.
func (st *Store) countPhase(f func(*Stats)) {
	st.mu.Lock()
	f(&st.phases)
	st.mu.Unlock()
}

type storeEntry struct {
	key  Key
	done chan struct{}
	val  any
	ok   bool // false: errored, uncacheable, or panicked — rebuild
	// panicErr, when non-nil, is the typed error a panicking builder
	// left behind; waiters receive it instead of rebuilding.
	panicErr error
	cost     int64
	elem     *list.Element // lru position; nil while in flight or evicted
}

// NewStore returns an empty, unbounded artifact store.
func NewStore() *Store {
	return NewBoundedStore(StoreLimits{})
}

// NewBoundedStore returns an empty store enforcing the given caps with
// LRU eviction.
func NewBoundedStore(l StoreLimits) *Store {
	return &Store{entries: make(map[Key]*storeEntry), lru: list.New(), limits: l}
}

// Len returns the number of cached artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the store's cache counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Cost = s.cost
	return st
}

// Limits returns the caps the store enforces (zero fields unlimited).
func (s *Store) Limits() StoreLimits { return s.limits }

// get returns the artifact for k, building it with build on a miss.
// build reports via its second result whether the artifact may be
// cached (complete artifacts only); errors are never cached. If build
// panics, the panic is recovered into a *budget.ErrInternal tagged p
// (the phase requesting the artifact), returned to the caller and to
// every waiter of the same key, and the slot is vacated so later
// callers rebuild.
func (s *Store) get(k Key, p budget.Phase, build func() (any, bool, error)) (any, error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok {
			if e.elem != nil {
				s.lru.MoveToFront(e.elem)
			}
			s.stats.Hits++
			s.mu.Unlock()
			<-e.done
			if e.ok {
				return e.val, nil
			}
			if e.panicErr != nil {
				// The winning builder panicked; don't re-run a build
				// that just proved itself broken — surface its typed
				// error. The slot is already vacated, so a *later*
				// call (e.g. after a fix) rebuilds.
				return nil, e.panicErr
			}
			// The winning builder failed or produced an uncacheable
			// artifact; loop to claim the (now vacated) slot ourselves.
			continue
		}
		s.stats.Misses++
		e := &storeEntry{key: k, done: make(chan struct{})}
		s.entries[k] = e
		s.mu.Unlock()
		return s.runBuild(e, p, build)
	}
}

// peek returns the cached artifact for k if one is already completed,
// without triggering or waiting on a build. Used by the incremental
// lowering path to probe for per-unit payloads it can reuse.
func (s *Store) peek(k Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok && e.elem != nil {
		s.lru.MoveToFront(e.elem)
		s.stats.Hits++
		return e.val, true
	}
	s.stats.Misses++
	return nil, false
}

// put caches v under k if the key is absent (existing entries,
// completed or in flight, win — artifacts are content-addressed, so a
// racing value is identical). Used to publish per-unit payloads as a
// side effect of a whole-program lowering.
func (s *Store) put(k Key, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return
	}
	e := &storeEntry{key: k, done: make(chan struct{}), val: v, ok: true, cost: estimateCost(v)}
	close(e.done)
	s.entries[k] = e
	e.elem = s.lru.PushFront(e)
	s.cost += e.cost
	s.evictOverCap()
}

// runBuild executes build for the in-flight entry e, handling the
// three outcomes: success (cache + evict over cap), failure or
// uncacheable (vacate, waiters rebuild), and panic (vacate, waiters
// and caller get the same typed error).
func (s *Store) runBuild(e *storeEntry, p budget.Phase, build func() (any, bool, error)) (val any, err error) {
	completed := false
	defer func() {
		if completed {
			return
		}
		// build panicked: convert, vacate the slot, release waiters.
		e.panicErr = &budget.ErrInternal{Phase: p, Value: recover(), Stack: debug.Stack()}
		s.mu.Lock()
		delete(s.entries, e.key)
		s.mu.Unlock()
		close(e.done)
		val, err = nil, e.panicErr
	}()
	val, cacheable, err := build()
	completed = true
	if err != nil || !cacheable {
		s.mu.Lock()
		delete(s.entries, e.key)
		s.mu.Unlock()
		close(e.done)
		return val, err
	}
	e.val, e.ok, e.cost = val, true, estimateCost(val)
	s.mu.Lock()
	e.elem = s.lru.PushFront(e)
	s.cost += e.cost
	s.evictOverCap()
	s.mu.Unlock()
	close(e.done)
	return val, nil
}

// evictOverCap drops least-recently-used cached artifacts until both
// caps hold. Called with s.mu held. In-flight builds are never on the
// lru list and so are never evicted; goroutines that already hold a
// pointer to an evicted artifact keep using it (artifacts are
// immutable), the store just stops retaining it.
func (s *Store) evictOverCap() {
	over := func() bool {
		return (s.limits.MaxEntries > 0 && s.lru.Len() > s.limits.MaxEntries) ||
			(s.limits.MaxCost > 0 && s.cost > s.limits.MaxCost)
	}
	for over() {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*storeEntry)
		s.lru.Remove(back)
		e.elem = nil
		delete(s.entries, e.key)
		s.cost -= e.cost
		s.stats.Evictions++
		s.stats.CostEvicted += e.cost
	}
}

// estimateCost approximates an artifact's resident size in bytes from
// cheap exported counts. The estimates are deliberately coarse — the
// cost cap bounds growth and ranks artifacts against each other; it is
// not an allocator audit.
func estimateCost(v any) int64 {
	const (
		perClass = 1 << 10
		perExpr  = 96
		perInstr = 160
		perNode  = 96
		perCtx   = 512
		base     = 1 << 10
	)
	switch v := v.(type) {
	case parseResult:
		return base + int64(len(v.classes))*perClass
	case *types.Info:
		return base + int64(len(v.Classes))*perClass + int64(len(v.ExprTypes))*perExpr
	case *ir.Program:
		return base + int64(v.NumInstrs)*perInstr
	case *pointsto.Result:
		return base + int64(v.NumCGNodes())*perCtx + int64(len(v.Objects()))*perNode
	case *sdg.Graph:
		return base + int64(v.NumNodes())*perNode + int64(v.NumEdges())*32
	case *csslice.Graph:
		return base + int64(v.NumNodes())*perNode + int64(v.NumEdges())*32
	case *dataflow.Results:
		return base + int64(v.NumNodeFacts())*48
	case *depgraph.Graph:
		return base + int64(len(v.Units))*256
	case []byte:
		return base + int64(len(v))
	case *cha.CallGraph:
		return 16 << 10
	case *modref.Result:
		return 16 << 10
	default:
		return base
	}
}
