package session_test

import (
	"bytes"
	"testing"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// The incremental fixture: three files, so a one-method edit leaves
// whole files (and the prelude) untouched. The Alpha edit below swaps
// one line for another of the same shape, so no other declaration's
// positions move and exactly one depgraph unit key changes.
const incAlpha = `class Alpha {
    int val;
    void set(int v) { this.val = v; }
    int get() { return this.val; }
    int bump(int x) { return x + 1; }
}
`

const incAlphaEdited = `class Alpha {
    int val;
    void set(int v) { this.val = v; }
    int get() { return this.val; }
    int bump(int x) { return x + 2; }
}
`

const incBeta = `class Beta {
    static int scale(int x) { return x * 3; }
}
`

const incBetaEdited = `class Beta {
    static int scale(int x) { return x * 4; }
}
`

const incMain = `class Main {
    static void main() {
        Alpha a = new Alpha();
        a.set(Beta.scale(2));
        int x = a.bump(a.get());
        print(x);
    }
}
`

func incSources() map[string]string {
	return map[string]string{"alpha.mj": incAlpha, "beta.mj": incBeta, "main.mj": incMain}
}

// assertMatchesColdBuild pins the incremental session's points-to
// result and dependence graph byte-identical (codec payload and
// fingerprint) to a fresh non-incremental session over the same
// sources.
func assertMatchesColdBuild(t *testing.T, s *session.Session, srcs map[string]string) {
	t.Helper()
	pts, err := s.PointsTo()
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cold := session.Open(srcs)
	cpts, err := cold.PointsTo()
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cold.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gf, cf := g.Fingerprint(), cg.Fingerprint(); gf != cf {
		t.Errorf("sdg fingerprint diverged from cold build\n incr %s\n cold %s", gf, cf)
	}
	gb, err := sdg.EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sdg.EncodeGraph(cg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, cb) {
		t.Errorf("sdg codec payload diverged from cold build (%d vs %d bytes)", len(gb), len(cb))
	}
	pb, err := pointsto.EncodeResult(pts)
	if err != nil {
		t.Fatal(err)
	}
	cpb, err := pointsto.EncodeResult(cpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, cpb) {
		t.Errorf("points-to codec payload diverged from cold build (%d vs %d bytes)", len(pb), len(cpb))
	}
}

// TestIncrementalSingleMethodEdit is the tentpole acceptance gate:
// after editing one method body in a multi-file program, the session
// re-lowers exactly that unit, re-solves points-to by delta instead of
// a full analysis, rebuilds the SDG incrementally, and the results are
// byte-identical to a from-scratch build.
func TestIncrementalSingleMethodEdit(t *testing.T) {
	srcs := incSources()
	s := session.Open(srcs, session.WithIncremental())
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	depg, err := s.Depgraph()
	if err != nil {
		t.Fatal(err)
	}
	units := len(depg.Units)
	cold := s.Stats()
	if cold.Lowers != 0 || cold.UnitLowers != units || cold.UnitReuses != 0 {
		t.Fatalf("cold incremental build did not lower via units: %+v (units %d)", cold, units)
	}
	if cold.PointsTos != 1 || cold.DeltaSolves != 0 || cold.SDGs != 1 || cold.DeltaSDGs != 0 {
		t.Fatalf("cold incremental build ran unexpected phases: %+v", cold)
	}

	srcs["alpha.mj"] = incAlphaEdited
	s.Update("alpha.mj", incAlphaEdited)
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	want := cold
	want.Parses++
	want.Checks++
	want.Depgraphs++
	want.UnitLowers++            // Alpha.bump, and nothing else
	want.UnitReuses += units - 1 // every other unit cloned from the store
	want.DeltaSolves++
	want.DeltaSDGs++
	if warm != want {
		t.Fatalf("single-method edit re-derived the wrong artifacts:\ncold %+v\nwarm %+v\nwant %+v", cold, warm, want)
	}
	assertMatchesColdBuild(t, s, srcs)
}

// TestUpdateFastPathNoInvalidation pins the Update fast path: writing
// identical content back re-runs no phase and misses no store entry.
func TestUpdateFastPathNoInvalidation(t *testing.T) {
	s := session.Open(incSources(), session.WithIncremental())
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	misses := s.Store().Stats().Misses

	s.Update("alpha.mj", incAlpha)
	s.Update("beta.mj", incBeta)
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got != stats {
		t.Fatalf("identical-content update re-ran phases:\nbefore %+v\nafter  %+v", stats, got)
	}
	if got := s.Store().Stats().Misses; got != misses {
		t.Fatalf("identical-content update missed the store: %d -> %d misses", misses, got)
	}
}

// TestRemoveReAddReusesUnits removes a file, edits another, then
// re-adds the removed file with identical content: its units must come
// back from the shared store without a single fresh lowering.
func TestRemoveReAddReusesUnits(t *testing.T) {
	// standalone.mj is referenced by nothing, so removing it leaves every
	// other unit key (and the typed program's health) intact.
	srcs := map[string]string{
		"standalone.mj": incAlpha,
		"beta.mj":       incBeta,
		"main.mj": `class Main {
    static void main() {
        int x = Beta.scale(5);
        print(x);
    }
}
`,
	}
	s := session.Open(srcs, session.WithIncremental())
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	full, err := s.Depgraph()
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	// Remove: the surviving units are all reused.
	s.Remove("standalone.mj")
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	shrunk, err := s.Depgraph()
	if err != nil {
		t.Fatal(err)
	}
	mid := s.Stats()
	if got, want := mid.UnitLowers-before.UnitLowers, 0; got != want {
		t.Fatalf("removal re-lowered %d units, want %d", got, want)
	}
	if got, want := mid.UnitReuses-before.UnitReuses, len(shrunk.Units); got != want {
		t.Fatalf("removal reused %d units, want %d", got, want)
	}
	if mid.DeltaSolves != before.DeltaSolves+1 || mid.PointsTos != before.PointsTos {
		t.Fatalf("removal did not delta-solve: %+v -> %+v", before, mid)
	}

	// Edit the surviving file so the re-add below cannot be a whole-
	// artifact cache hit — it must go through the unit layer.
	s.Update("beta.mj", incBetaEdited)
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	edited := s.Stats()
	if got := edited.UnitLowers - mid.UnitLowers; got != 1 {
		t.Fatalf("one-method edit re-lowered %d units, want 1", got)
	}

	// Re-add the identical file: every one of its units is still in the
	// store under its content key.
	srcs["standalone.mj"] = incAlpha
	srcs["beta.mj"] = incBetaEdited
	s.Update("standalone.mj", incAlpha)
	if _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if got := after.UnitLowers - edited.UnitLowers; got != 0 {
		t.Fatalf("re-adding an identical file re-lowered %d units, want 0", got)
	}
	if got, want := after.UnitReuses-edited.UnitReuses, len(full.Units); got != want {
		t.Fatalf("re-add reused %d units, want %d", got, want)
	}
	if after.DeltaSolves != edited.DeltaSolves+1 || after.PointsTos != edited.PointsTos {
		t.Fatalf("re-add did not delta-solve: %+v -> %+v", edited, after)
	}
	assertMatchesColdBuild(t, s, srcs)
}
