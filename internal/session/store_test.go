package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"thinslice/internal/budget"
)

// TestStorePanickingBuilderReleasesWaiters is the single-flight
// regression test: a builder that panics must not wedge goroutines
// waiting on the same key. Waiters receive a typed *budget.ErrInternal
// (they do not re-run the broken build), the in-flight slot is
// cleared, and a later healthy build succeeds.
func TestStorePanickingBuilderReleasesWaiters(t *testing.T) {
	st := NewStore()
	k := hashParts("poison")

	started := make(chan struct{})
	release := make(chan struct{})
	winnerErr := make(chan error, 1)
	go func() {
		_, err := st.get(k, budget.PhasePointsTo, func() (any, bool, error) {
			close(started)
			<-release
			panic("injected builder panic")
		})
		winnerErr <- err
	}()
	<-started

	// Pile waiters onto the in-flight key, then let the builder panic.
	const waiters = 8
	errs := make(chan error, waiters)
	var queued sync.WaitGroup
	queued.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			queued.Done()
			_, err := st.get(k, budget.PhasePointsTo, func() (any, bool, error) {
				t.Error("waiter re-ran the panicking build")
				return nil, false, nil
			})
			errs <- err
		}()
	}
	queued.Wait()
	time.Sleep(10 * time.Millisecond) // let waiters block on the entry
	close(release)

	deadline := time.After(5 * time.Second)
	for i := 0; i < waiters+1; i++ {
		var err error
		select {
		case err = <-winnerErr:
		case err = <-errs:
		case <-deadline:
			t.Fatalf("goroutine %d wedged waiting on a panicked build", i)
		}
		var internal *budget.ErrInternal
		if !errors.As(err, &internal) {
			t.Fatalf("got %v, want *budget.ErrInternal", err)
		}
		if internal.Phase != budget.PhasePointsTo {
			t.Fatalf("panic error tagged phase %q, want %q", internal.Phase, budget.PhasePointsTo)
		}
	}

	// The slot was vacated: a later build runs and caches normally.
	v, err := st.get(k, budget.PhasePointsTo, func() (any, bool, error) {
		return "healthy", true, nil
	})
	if err != nil || v != "healthy" {
		t.Fatalf("rebuild after panic: got %v, %v", v, err)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d entries after rebuild, want 1", st.Len())
	}
}

// TestStoreLRUEviction pins the eviction policy: the entry cap holds
// after every insert, the least-recently-used artifact goes first, and
// a cache hit refreshes recency.
func TestStoreLRUEviction(t *testing.T) {
	st := NewBoundedStore(StoreLimits{MaxEntries: 3})
	put := func(name string) {
		t.Helper()
		_, err := st.get(hashParts(name), budget.PhaseLoad, func() (any, bool, error) {
			return name, true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	cached := func(name string) bool {
		hit := true
		_, _ = st.get(hashParts(name), budget.PhaseLoad, func() (any, bool, error) {
			hit = false
			return name, true, nil
		})
		return hit
	}

	put("a")
	put("b")
	put("c")
	put("a") // hit: refresh a's recency so b is now least recent
	put("d") // over cap: evicts b
	if st.Len() != 3 {
		t.Fatalf("store has %d entries, want 3", st.Len())
	}
	if cached("b") {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	// The probe above rebuilt and re-cached b, evicting the LRU (c).
	for _, name := range []string{"a", "d", "b"} {
		if !cached(name) {
			t.Fatalf("recently used entry %s was evicted", name)
		}
	}

	stats := st.Stats()
	if stats.Evictions < 2 {
		t.Fatalf("Evictions = %d, want >= 2", stats.Evictions)
	}
	if stats.Entries != 3 {
		t.Fatalf("stats.Entries = %d, want 3", stats.Entries)
	}
}

// TestStoreCostCap exercises the byte-cost cap: total estimated cost
// never exceeds the limit, and eviction metrics account what was
// dropped.
func TestStoreCostCap(t *testing.T) {
	// Unknown artifact types cost the 1KiB default, so a 4KiB cap
	// holds at most 4 entries.
	st := NewBoundedStore(StoreLimits{MaxCost: 4 << 10})
	for i := 0; i < 10; i++ {
		_, err := st.get(hashParts(fmt.Sprint(i)), budget.PhaseLoad, func() (any, bool, error) {
			return i, true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Stats().Cost; got > 4<<10 {
			t.Fatalf("store cost %d exceeds the %d cap", got, 4<<10)
		}
	}
	stats := st.Stats()
	if stats.Entries != 4 {
		t.Fatalf("stats.Entries = %d, want 4", stats.Entries)
	}
	if stats.Evictions != 6 || stats.CostEvicted != 6<<10 {
		t.Fatalf("eviction metrics = %d evictions / %d bytes, want 6 / %d", stats.Evictions, stats.CostEvicted, 6<<10)
	}
}

// TestStoreErrorNotCached pins the pre-existing failure semantics:
// plain build errors vacate the slot so concurrent waiters (and later
// callers) rebuild.
func TestStoreErrorNotCached(t *testing.T) {
	st := NewStore()
	k := hashParts("flaky")
	calls := 0
	build := func() (any, bool, error) {
		calls++
		if calls == 1 {
			return nil, false, errors.New("transient")
		}
		return "ok", true, nil
	}
	if _, err := st.get(k, budget.PhaseLoad, build); err == nil {
		t.Fatal("first build did not error")
	}
	v, err := st.get(k, budget.PhaseLoad, build)
	if err != nil || v != "ok" {
		t.Fatalf("retry after error: got %v, %v", v, err)
	}
}
