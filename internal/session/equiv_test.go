package session_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
	"thinslice/internal/session"
)

// The randomized edit-script sweep: scripted sequences of insert-,
// modify-, and delete-method edits over multi-file programs (synthetic,
// papercases, and randprog bases), each step asserting the incremental
// session's points-to result and dependence graph byte-identical to a
// from-scratch build. This is the session-level closure of the
// per-layer equivalence proofs (pointsto.SolveDelta, sdg.BuildDelta):
// whatever frontier the depgraph computes, the pipeline must not drift.

// sweepMethod is one generated (and editable) method of a sweep class.
type sweepMethod struct {
	name    string
	variant int
	k       int
	callee  string // class whose static base() variant 2 calls, or ""
}

// sweepClass is one editable class, rendered into its own file.
type sweepClass struct {
	file    string
	name    string
	bias    int // constant inside base() — a reachable-body edit target
	methods []sweepMethod
}

func (c *sweepClass) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s {\n", c.name)
	b.WriteString("    int val;\n")
	b.WriteString("    void set(int v) { this.val = v; }\n")
	b.WriteString("    int get() { return this.val; }\n")
	fmt.Fprintf(&b, "    static int base(int x) { return x + %d; }\n", c.bias)
	for _, m := range c.methods {
		switch m.variant {
		case 0:
			fmt.Fprintf(&b, "    int %s(int x) { return x + %d; }\n", m.name, m.k)
		case 1:
			fmt.Fprintf(&b, "    int %s(int x) { if (x > %d) { return x * 2; } return this.val; }\n", m.name, m.k)
		case 2:
			fmt.Fprintf(&b, "    int %s(int x) { return %s.base(x) + %d; }\n", m.name, m.callee, m.k)
		default:
			fmt.Fprintf(&b, "    int %s(int x) { this.val = x + %d; return this.val; }\n", m.name, m.k)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// sweepProg is the evolving program of one edit script.
type sweepProg struct {
	rng     *rand.Rand
	static  map[string]string // base files never edited by the script
	classes []*sweepClass
	mainK   int // constant in the synthetic main (0 = no synthetic main)
	hasMain bool
	nextID  int
}

func newSweepProg(rng *rand.Rand) *sweepProg {
	p := &sweepProg{rng: rng, static: map[string]string{}}
	nClasses := 2 + rng.Intn(2)
	for i := 0; i < nClasses; i++ {
		c := &sweepClass{
			file: fmt.Sprintf("e%d.mj", i),
			name: fmt.Sprintf("E%d", i),
			bias: rng.Intn(10),
		}
		for j := rng.Intn(3); j > 0; j-- {
			c.methods = append(c.methods, p.genMethod(c))
		}
		p.classes = append(p.classes, c)
	}
	switch rng.Intn(3) {
	case 0: // pure synthetic program with its own main
		p.hasMain = true
		p.mainK = rng.Intn(10)
	case 1: // papercases base: the editable classes ride along as extra files
		p.static[papercases.FirstNamesFile] = papercases.FirstNames
	default: // randprog base (brings its own Main, Util, containers)
		for name, src := range randprog.Generate(rng.Int63(), randprog.Config{Classes: 2, Stmts: 8, MaxDepth: 2}) {
			p.static[name] = src
		}
	}
	return p
}

func (p *sweepProg) genMethod(c *sweepClass) sweepMethod {
	p.nextID++
	m := sweepMethod{
		name:    fmt.Sprintf("g%d", p.nextID),
		variant: p.rng.Intn(4),
		k:       p.rng.Intn(20),
	}
	if m.variant == 2 {
		// Call a previously built class's base(), or our own while the
		// program is still being seeded.
		if len(p.classes) > 0 {
			m.callee = p.classes[p.rng.Intn(len(p.classes))].name
		} else {
			m.callee = c.name
		}
	}
	return m
}

func (p *sweepProg) render() map[string]string {
	srcs := make(map[string]string, len(p.static)+len(p.classes)+1)
	for name, src := range p.static {
		srcs[name] = src
	}
	for _, c := range p.classes {
		srcs[c.file] = c.render()
	}
	if p.hasMain {
		var b strings.Builder
		b.WriteString("class Main {\n    static void main() {\n")
		fmt.Fprintf(&b, "        %s a = new %s();\n", p.classes[0].name, p.classes[0].name)
		b.WriteString("        int acc = 0;\n")
		for _, c := range p.classes {
			fmt.Fprintf(&b, "        acc = acc + %s.base(acc);\n", c.name)
		}
		b.WriteString("        a.set(acc);\n")
		b.WriteString("        Vector v = new Vector();\n")
		b.WriteString("        v.add(a);\n")
		fmt.Fprintf(&b, "        %s c = (%s) v.get(0);\n", p.classes[0].name, p.classes[0].name)
		fmt.Fprintf(&b, "        print(c.get() + %d);\n", p.mainK)
		b.WriteString("    }\n}\n")
		srcs["main.mj"] = b.String()
	}
	return srcs
}

// mutate applies one random insert/modify/delete-method edit.
func (p *sweepProg) mutate() {
	c := p.classes[p.rng.Intn(len(p.classes))]
	switch p.rng.Intn(5) {
	case 0: // insert a method
		c.methods = append(c.methods, p.genMethod(c))
	case 1: // delete a method (if the class has any left)
		if n := len(c.methods); n > 0 {
			i := p.rng.Intn(n)
			c.methods = append(c.methods[:i], c.methods[i+1:]...)
		} else {
			c.bias++
		}
	case 2: // modify a generated method's body
		if n := len(c.methods); n > 0 {
			m := &c.methods[p.rng.Intn(n)]
			m.k = p.rng.Intn(20)
			m.variant = p.rng.Intn(4)
			if m.variant == 2 {
				m.callee = p.classes[p.rng.Intn(len(p.classes))].name
			}
		} else {
			c.bias++
		}
	case 3: // modify a reachable body: the class's base() constant
		c.bias = p.rng.Intn(100)
	default: // modify the synthetic main, when there is one
		if p.hasMain {
			p.mainK = p.rng.Intn(100)
		} else {
			c.bias++
		}
	}
}

// runSweepScript drives one script: open an incremental session over
// the base revision, then per edit step apply the changed files and
// assert byte-identity with a cold build.
func runSweepScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	p := newSweepProg(rng)
	srcs := p.render()
	s := session.Open(srcs, session.WithIncremental())
	assertMatchesColdBuild(t, s, srcs)
	steps := 3 + rng.Intn(3)
	for step := 0; step < steps; step++ {
		p.mutate()
		next := p.render()
		for name, src := range next {
			if srcs[name] != src {
				s.Update(name, src)
			}
		}
		srcs = next
		assertMatchesColdBuild(t, s, srcs)
		if t.Failed() {
			var files []string
			for name := range srcs {
				files = append(files, name)
			}
			sort.Strings(files)
			t.Fatalf("seed %d diverged at step %d (files %v)", seed, step, files)
		}
	}
}

func TestRandomEditScriptsMatchColdBuilds(t *testing.T) {
	scripts := 200
	if testing.Short() {
		scripts = 20
	}
	for i := 0; i < scripts; i++ {
		seed := int64(i)
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			runSweepScript(t, seed)
		})
	}
}
