package session

import (
	"fmt"

	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/ir"
)

// Seed names one slicing query: the statements at a source position.
type Seed struct {
	File string
	Line int
}

func (s Seed) String() string { return fmt.Sprintf("%s:%d", s.File, s.Line) }

// SeedResult is the outcome of one seed in a batch query.
type SeedResult struct {
	Seed   Seed
	Instrs []ir.Instr // the reachable statements at the seed position
	Slice  *core.Slice
}

// ThinSlicer returns a thin slicer over the session's dependence
// graph, bounded by the session's budget.
func (s *Session) ThinSlicer() (*core.Slicer, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return core.NewThin(g).WithBudget(s.cfg.budget), nil
}

// TraditionalSlicer returns a traditional slicer; withControl includes
// transitive control dependences.
func (s *Session) TraditionalSlicer(withControl bool) (*core.Slicer, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return core.NewTraditional(g, withControl).WithBudget(s.cfg.budget), nil
}

// SeedsAt returns the reachable statements at file:line.
func (s *Session) SeedsAt(file string, line int) ([]ir.Instr, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return core.SeedsAt(g, file, line), nil
}

// SliceAll answers a batch of seed queries over one shared dependence
// graph and one slicer — the artifacts are built (or fetched) once and
// each seed costs only its own backward closure. A seed that matches
// no reachable statement yields a SeedResult with empty Instrs and a
// nil Slice; results are returned in seed order.
func (s *Session) SliceAll(opts core.Options, seeds []Seed) ([]SeedResult, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	var slicer *core.Slicer
	if opts.Mode == core.Thin {
		slicer = core.NewThin(g)
	} else {
		slicer = core.NewTraditional(g, opts.FollowControl)
	}
	slicer.WithBudget(s.cfg.budget)
	results := make([]SeedResult, 0, len(seeds))
	for _, seed := range seeds {
		if err := s.cfg.budget.Err(budget.PhaseSlice); err != nil {
			return nil, err
		}
		instrs := core.SeedsAt(g, seed.File, seed.Line)
		res := SeedResult{Seed: seed, Instrs: instrs}
		if len(instrs) > 0 {
			res.Slice = slicer.Slice(instrs...)
		}
		results = append(results, res)
	}
	return results, nil
}
