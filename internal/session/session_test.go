package session_test

import (
	"context"
	"testing"

	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

func firstNamesSources() map[string]string {
	return map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
}

// extraClass is a standalone class used to exercise file updates
// without perturbing the rest of the program.
const extraClass = `class Extra {
    static void helper() {
        print("extra");
    }
}
`

const extraClassEdited = `class Extra {
    static void helper() {
        print("extra, edited");
    }
}
`

func mustSlice(t *testing.T, s *session.Session, file string, line int) *core.Slice {
	t.Helper()
	slicer, err := s.ThinSlicer()
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := s.SeedsAt(file, line)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatalf("no seeds at %s:%d", file, line)
	}
	return slicer.Slice(seeds...)
}

// TestWarmRequerySkipsPipeline is the acceptance gate for the session
// cache: after a first query builds the pipeline, slicing a second seed
// in the same session performs no parse, type check, lowering,
// points-to analysis, or SDG build — only the backward closure runs.
func TestWarmRequerySkipsPipeline(t *testing.T) {
	s := session.Open(firstNamesSources())
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")
	bugLine := papercases.Line(papercases.FirstNames, "// BUG")

	first := mustSlice(t, s, papercases.FirstNamesFile, seedLine)
	if first.Size() == 0 {
		t.Fatal("first slice is empty")
	}
	cold := s.Stats()
	if cold.Parses == 0 || cold.Checks != 1 || cold.Lowers != 1 || cold.PointsTos != 1 || cold.SDGs != 1 {
		t.Fatalf("cold query ran unexpected phases: %+v", cold)
	}

	second := mustSlice(t, s, papercases.FirstNamesFile, bugLine)
	if second.Size() == 0 {
		t.Fatal("second slice is empty")
	}
	warm := s.Stats()
	if warm != cold {
		t.Fatalf("warm re-query re-ran pipeline phases:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestUpdateInvalidatesDownstream edits one of two source files and
// asserts the next query re-derives exactly the artifacts downstream
// of the change: the edited file is re-parsed (the unchanged one is
// not) and check/lower/points-to/SDG each run once more. A same-content
// update invalidates nothing.
func TestUpdateInvalidatesDownstream(t *testing.T) {
	srcs := firstNamesSources()
	srcs["extra.mj"] = extraClass
	s := session.Open(srcs)
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")

	mustSlice(t, s, papercases.FirstNamesFile, seedLine)
	before := s.Stats()

	s.Update("extra.mj", extraClassEdited)
	mustSlice(t, s, papercases.FirstNamesFile, seedLine)
	after := s.Stats()

	want := before
	want.Parses++
	want.Checks++
	want.Lowers++
	want.PointsTos++
	want.SDGs++
	if after != want {
		t.Fatalf("update invalidated the wrong artifacts:\nbefore %+v\nafter  %+v\nwant   %+v", before, after, want)
	}

	// Re-writing identical content must not invalidate anything.
	s.Update("extra.mj", extraClassEdited)
	mustSlice(t, s, papercases.FirstNamesFile, seedLine)
	if got := s.Stats(); got != after {
		t.Fatalf("same-content update invalidated artifacts:\nafter %+v\ngot   %+v", after, got)
	}
}

// TestSessionsShareNoMutableState opens two sessions over the same
// sources, edits one, and asserts the other still answers from its own
// snapshot with untouched counters. The parsed container prelude is a
// process-wide immutable and must not be re-parsed per session.
func TestSessionsShareNoMutableState(t *testing.T) {
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")

	s1 := session.Open(firstNamesSources())
	sl1 := mustSlice(t, s1, papercases.FirstNamesFile, seedLine)
	preludeParses := session.PreludeParseCount()

	s2 := session.Open(firstNamesSources())
	mustSlice(t, s2, papercases.FirstNamesFile, seedLine)
	if got := session.PreludeParseCount(); got != preludeParses {
		t.Fatalf("second session re-parsed the prelude: %d -> %d", preludeParses, got)
	}

	// Mutating session 2's source set must not disturb session 1.
	stats1 := s1.Stats()
	s2.Update(papercases.FirstNamesFile, papercases.Toy)
	again := mustSlice(t, s1, papercases.FirstNamesFile, seedLine)
	if s1.Stats() != stats1 {
		t.Fatalf("editing one session re-ran phases in another: %+v -> %+v", stats1, s1.Stats())
	}
	if again.Size() != sl1.Size() {
		t.Fatalf("slice changed after editing an unrelated session: %d -> %d statements", sl1.Size(), again.Size())
	}
}

// TestSharedStoreSkipsRebuild opens a second session over the same
// sources in the same store: every artifact is fetched, none rebuilt.
func TestSharedStoreSkipsRebuild(t *testing.T) {
	st := session.NewStore()
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")

	s1 := session.Open(firstNamesSources(), session.InStore(st))
	mustSlice(t, s1, papercases.FirstNamesFile, seedLine)

	s2 := session.Open(firstNamesSources(), session.InStore(st))
	mustSlice(t, s2, papercases.FirstNamesFile, seedLine)
	if got := s2.Stats(); got != (session.Stats{}) {
		t.Fatalf("second session over a shared store rebuilt artifacts: %+v", got)
	}
}

// TestSliceAllMatchesIndividualQueries pins the batch API to the
// per-seed API: same graph, same membership, seed order preserved.
func TestSliceAllMatchesIndividualQueries(t *testing.T) {
	s := session.Open(firstNamesSources())
	seeds := []session.Seed{
		{File: papercases.FirstNamesFile, Line: papercases.Line(papercases.FirstNames, "// SEED")},
		{File: papercases.FirstNamesFile, Line: papercases.Line(papercases.FirstNames, "// BUG")},
		{File: papercases.FirstNamesFile, Line: 99999}, // no statements here
	}
	results, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(seeds) {
		t.Fatalf("got %d results for %d seeds", len(results), len(seeds))
	}
	for i, res := range results[:2] {
		if res.Seed != seeds[i] {
			t.Fatalf("result %d out of order: got %v want %v", i, res.Seed, seeds[i])
		}
		want := mustSlice(t, s, res.Seed.File, res.Seed.Line)
		if res.Slice == nil || res.Slice.Size() != want.Size() {
			t.Fatalf("seed %v: batch slice differs from individual slice", res.Seed)
		}
		for _, ins := range want.Instrs() {
			if !res.Slice.Contains(ins) {
				t.Fatalf("seed %v: batch slice missing %v", res.Seed, ins)
			}
		}
	}
	if empty := results[2]; len(empty.Instrs) != 0 || empty.Slice != nil {
		t.Fatalf("seed with no statements produced a slice: %+v", empty)
	}
}

// TestTruncatedResultsNotCached caps the points-to phase so the solver
// truncates, and asserts the degraded artifact is recomputed on every
// query instead of poisoning the store.
func TestTruncatedResultsNotCached(t *testing.T) {
	b := budget.New(context.Background(), budget.WithPhaseSteps(budget.PhasePointsTo, 5))
	s := session.Open(firstNamesSources(), session.WithBudget(b))

	pts, err := s.PointsTo()
	if err != nil {
		t.Fatal(err)
	}
	if !pts.Truncated && !pts.Downgraded {
		t.Fatal("tiny points-to budget did not truncate the result")
	}
	if _, err := s.PointsTo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PointsTos; got != 2 {
		t.Fatalf("truncated points-to result was cached: PointsTos = %d, want 2", got)
	}
}
