// Package session turns the one-shot analysis pipeline into a
// reusable, demand-driven analysis session (the paper's §4 stance that
// slices are cheap enough to compute per query, applied to the whole
// pipeline). A Session owns a content-hashed artifact store covering
// every phase — per-file ASTs, the typed program, SSA IR, points-to,
// the dependence graph, and the derived CHA/mod-ref/context-sensitive
// artifacts — each memoized by the hash of its inputs, so repeated and
// multi-seed queries over the same program skip straight to slicing,
// and editing one source file invalidates exactly the artifacts
// downstream of it.
//
// Sessions also own the parallel construction paths: per-method SSA
// lowering (ir.LowerWorkers) and dependence-graph construction
// (sdg.BuildWorkers) run over bounded worker pools and produce output
// byte-identical to the sequential builds, so worker count never keys
// the cache.
//
// analyzer.Analyze is a thin convenience wrapper over this package.
package session

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/csslice"
	"thinslice/internal/dataflow"
	"thinslice/internal/depgraph"
	"thinslice/internal/diskstore"
	"thinslice/internal/ir"
	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/parser"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// Stats counts the phase executions a session actually performed —
// cache hits do not increment. The warm-query tests assert on these.
type Stats struct {
	Parses        int // user source files parsed
	PreludeParses int // times the container prelude was parsed (process-wide cache)
	Checks        int // type checks
	Lowers        int // whole-program SSA lowerings (non-incremental path)
	Depgraphs     int // symbol dependency graph builds
	UnitLowers    int // per-method lowering units derived fresh
	UnitReuses    int // per-method lowering units reused from the store
	PointsTos     int // full pointer analyses
	DeltaSolves   int // incremental pointer re-solves (pointsto.SolveDelta)
	SDGs          int // full dependence graph builds
	DeltaSDGs     int // incremental dependence graph rebuilds (sdg.BuildDelta)
	CHAs          int // class-hierarchy call graph builds
	ModRefs       int // mod-ref computations
	CSGraphs      int // context-sensitive SDG builds
	Dataflows     int // IFDS dataflow solves
}

type config struct {
	objSens     bool
	containers  []string
	entries     []string
	noPrelude   bool
	verifyIR    bool
	budget      *budget.Budget
	workers     int
	store       *Store
	disk        *diskstore.Cache
	remote      RemoteFetch
	incremental bool
}

// Option configures Open.
type Option func(*config)

// WithObjSens toggles object-sensitive container handling in the
// pointer analysis (default on, the paper's precise configuration).
func WithObjSens(on bool) Option { return func(c *config) { c.objSens = on } }

// WithContainers overrides the set of container classes cloned
// object-sensitively.
func WithContainers(names []string) Option { return func(c *config) { c.containers = names } }

// WithEntries sets explicit entry methods by qualified name
// (e.g. "Main.main"); default is every static method named main.
func WithEntries(names ...string) Option { return func(c *config) { c.entries = names } }

// WithoutPrelude analyzes the sources without the container prelude.
func WithoutPrelude() Option { return func(c *config) { c.noPrelude = true } }

// WithVerifyIR runs ir.Verify over the lowered program and fails the
// pipeline with the violations found.
func WithVerifyIR() Option { return func(c *config) { c.verifyIR = true } }

// WithBudget bounds every phase the session runs by the given budget.
// Artifacts a budget truncates or degrades are never cached.
func WithBudget(b *budget.Budget) Option { return func(c *config) { c.budget = b } }

// WithWorkers sets the worker count for the parallel construction
// phases: 1 forces sequential builds, 0 (the default) selects
// GOMAXPROCS. Output is byte-identical either way.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// InStore places the session's artifacts in an existing store, sharing
// them with every other session using that store.
func InStore(st *Store) Option { return func(c *config) { c.store = st } }

// WithIncremental turns on the session's keyed derivation graph: the
// IR artifact is assembled from per-method lowering units addressed by
// depgraph unit keys (so an edit re-lowers only its transitively
// affected frontier, in Kahn-style callee-first batches), and the
// pointer analysis and dependence graph retain enough state after each
// complete build to re-derive the next revision incrementally
// (pointsto.SolveDelta, sdg.BuildDelta) — both proven byte-identical
// to from-scratch builds. Retention costs memory proportional to the
// last build, so it is opt-in; thinslice watch and the server's /watch
// stream open their sessions with it. Incremental re-derivation engages
// only for unbudgeted sessions (a truncated delta would poison every
// later one); budgeted sessions fall back to full builds.
func WithIncremental() Option { return func(c *config) { c.incremental = true } }

// WithDiskCache layers a persistent disk tier under the in-memory
// store: on a store miss the session first tries to decode the artifact
// from disk, and successful builds are encoded and published there. A
// disk entry that fails verification or decoding is quarantined and the
// artifact rebuilt — disk corruption never surfaces as a session error.
func WithDiskCache(c *diskstore.Cache) Option { return func(cfg *config) { cfg.disk = c } }

// RemoteFetch retrieves an already-verified artifact payload for
// (kind, key) from somewhere else — in practice another cluster
// replica's disk tier — or nil on a miss. Implementations must verify
// integrity (the cluster fetcher checks the container CRC) before
// returning bytes; the session still treats the payload as untrusted
// and quarantines it if structural decoding fails, so a byzantine
// source can cause a rebuild but never a wrong answer.
type RemoteFetch func(kind string, key Key) []byte

// WithRemoteFetch layers a remote tier under the disk tier: on a store
// and disk miss the session asks the fetcher before rebuilding, and a
// fetched payload is published to the local disk tier (when present)
// so the next miss is local. Fetch failures of any kind degrade to a
// normal cold build.
func WithRemoteFetch(f RemoteFetch) Option { return func(cfg *config) { cfg.remote = f } }

// Session is a stateful analysis over one evolving source set. All
// accessors are safe for concurrent use; artifacts are immutable.
type Session struct {
	mu       sync.Mutex
	cfg      config
	sources  map[string]string
	fileKeys map[string]Key
	stats    Stats
	// snap caches snapshot()'s derived view of the source set (every
	// phase lookup needs it, and re-hashing all sources per phase is
	// measurable). Invalidated by Update/Remove.
	snap struct {
		valid bool
		names []string
		srcs  map[string]string
		key   Key
	}
	// last is the retained state of the most recent complete build of an
	// incremental session; nil otherwise. Guarded by mu; the artifacts it
	// points at are immutable.
	last *retained
}

// retained is what an incremental session keeps from its last complete
// build to derive the next revision by delta. The points-to triplet
// (depg, prog, pts) is updated atomically — SolveDelta maps the
// retained solver state through a ProgramMap between exactly these two
// programs. The SDG templates are base-relative and program-independent,
// so they carry their own revision marker (sdgDepg) and may lag the
// points-to state when Graph() is queried less often than PointsTo().
type retained struct {
	srcKey  Key
	depg    *depgraph.Graph
	prog    *ir.Program
	pts     *pointsto.Result
	sdgSt   *sdg.BuildState
	sdgDepg *depgraph.Graph
}

// retainedState returns a copy of the retained-state record (zero value
// when nothing is retained).
func (s *Session) retainedState() retained {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return retained{}
	}
	return *s.last
}

// updateRetained applies f to the retained-state record, creating it on
// first use.
func (s *Session) updateRetained(f func(*retained)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		s.last = &retained{}
	}
	f(s.last)
}

// Open starts a session over the given sources (name → content). The
// map is copied; use Update to evolve the source set afterwards.
func Open(sources map[string]string, opts ...Option) *Session {
	cfg := config{objSens: true, containers: prelude.ContainerClasses}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.store == nil {
		cfg.store = NewStore()
	}
	s := &Session{
		cfg:      cfg,
		sources:  make(map[string]string, len(sources)),
		fileKeys: make(map[string]Key, len(sources)),
	}
	for name, src := range sources {
		s.sources[name] = src
		s.fileKeys[name] = hashParts("file", name, src)
	}
	return s
}

// Update adds or replaces one source file. Artifacts derived from the
// old content stay in the store (another session may still want them);
// this session's next query re-derives exactly the artifacts downstream
// of the change.
func (s *Session) Update(name, content string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.sources[name]; ok && old == content {
		// Fast path: identical content hashes to the identical file key,
		// so every derived artifact is already current — invalidate
		// nothing, not even the cached snapshot.
		return
	}
	s.sources[name] = content
	s.fileKeys[name] = hashParts("file", name, content)
	s.snap.valid = false
}

// Remove drops one source file from the session's source set.
func (s *Session) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sources, name)
	delete(s.fileKeys, name)
	s.snap.valid = false
}

// Stats returns the phase-execution counters so far.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Store returns the artifact store backing this session.
func (s *Session) Store() *Store { return s.cfg.store }

// Budget returns the budget bounding this session's phases and the
// slicers it hands out (nil means unlimited).
func (s *Session) Budget() *budget.Budget { return s.cfg.budget }

// count applies a counter update under the session lock.
func (s *Session) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
	s.cfg.store.countPhase(f)
}

// snapshot returns the current file set in deterministic name order
// together with the source-set key that roots all artifact keys. The
// view is cached between source mutations; callers must treat the
// returned slice and map as read-only.
func (s *Session) snapshot() (names []string, srcs map[string]string, srcKey Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.valid {
		return s.snap.names, s.snap.srcs, s.snap.key
	}
	srcs = make(map[string]string, len(s.sources)+1)
	keys := make(map[string]Key, len(s.sources)+1)
	for name, src := range s.sources {
		srcs[name] = src
		keys[name] = s.fileKeys[name]
		names = append(names, name)
	}
	if !s.cfg.noPrelude {
		if _, ok := srcs[prelude.FileName]; !ok {
			srcs[prelude.FileName] = prelude.Source
			keys[prelude.FileName] = hashParts("file", prelude.FileName, prelude.Source)
			names = append(names, prelude.FileName)
		}
	}
	sort.Strings(names)
	parts := []string{"srcset"}
	for _, name := range names {
		parts = append(parts, name, string(keys[name]))
	}
	s.snap.valid = true
	s.snap.names, s.snap.srcs, s.snap.key = names, srcs, hashParts(parts...)
	return s.snap.names, s.snap.srcs, s.snap.key
}

// PhaseHook is a test-only interception point consulted at every phase
// boundary with the phase about to run and the session's source-set
// key. A non-nil error aborts the phase with that error; a panic is
// recovered by the phase boundary like any other internal fault. The
// fault-injection harness (package faults) installs its registry here.
type PhaseHook func(p budget.Phase, srcKey Key) error

var phaseHook atomic.Pointer[PhaseHook]

// SetPhaseHook installs h (nil clears) and returns a func restoring
// the previous hook. Test-only: production sessions must run with no
// hook installed.
func SetPhaseHook(h PhaseHook) (restore func()) {
	var p *PhaseHook
	if h != nil {
		p = &h
	}
	old := phaseHook.Swap(p)
	return func() { phaseHook.Store(old) }
}

// SourceKey returns the content hash of the session's current source
// set (prelude included unless the session was opened WithoutPrelude).
// Equal keys mean the same program; the server's circuit breaker and
// the fault-injection registry key on it.
func (s *Session) SourceKey() Key {
	_, _, srcKey := s.snapshot()
	return srcKey
}

// phase runs f with the session's panic boundary: a panic inside any
// phase surfaces as a *budget.ErrInternal tagged p, never a crash. The
// budget's cancellation/deadline is checked first, mirroring the
// sequential pipeline's phase boundaries.
func (s *Session) phase(p budget.Phase, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &budget.ErrInternal{Phase: p, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := s.cfg.budget.Err(p); err != nil {
		return err
	}
	if h := phaseHook.Load(); h != nil {
		if err := (*h)(p, s.SourceKey()); err != nil {
			return err
		}
	}
	return f()
}

// preludeCache caches the parsed container prelude process-wide: its
// source is a compile-time constant, so every session (and every
// analyzer.Analyze call) shares one AST.
var preludeCache struct {
	mu      sync.Mutex
	classes []*ast.ClassDecl
	parses  int
}

// PreludeParseCount reports how many times the container prelude has
// been parsed in this process (expected: at most once).
func PreludeParseCount() int {
	preludeCache.mu.Lock()
	defer preludeCache.mu.Unlock()
	return preludeCache.parses
}

func parsedPrelude() ([]*ast.ClassDecl, bool, error) {
	preludeCache.mu.Lock()
	defer preludeCache.mu.Unlock()
	if preludeCache.classes == nil {
		classes, err := parser.ParseFile(prelude.FileName, prelude.Source)
		if err != nil {
			return nil, false, err
		}
		preludeCache.classes = classes
		preludeCache.parses++
		return classes, true, nil
	}
	return preludeCache.classes, false, nil
}

// diskGet returns the verified record payload stored under (kind, key)
// in the session's disk tier, or nil. Container-level corruption is
// already quarantined inside the cache.
func (s *Session) diskGet(kind string, key Key) []byte {
	if s.cfg.disk != nil {
		if payload, ok := s.cfg.disk.Get(kind, string(key)); ok {
			return payload
		}
	}
	if s.cfg.remote != nil {
		if payload := s.cfg.remote(kind, key); payload != nil {
			// Publish locally first: if structural decoding then rejects
			// the payload, the caller's diskQuarantine removes and counts
			// it, and the rebuild re-publishes clean bytes.
			if s.cfg.disk != nil {
				_ = s.cfg.disk.Put(kind, string(key), payload)
			}
			return payload
		}
	}
	return nil
}

// diskQuarantine reports a record whose container verified but whose
// payload failed structural decoding — content corruption the artifact
// layer cannot see. The entry is removed so the rebuild can re-publish.
func (s *Session) diskQuarantine(kind string, key Key, err error) {
	if s.cfg.disk != nil {
		s.cfg.disk.Quarantine(kind, string(key), err.Error())
	}
}

// diskPut encodes and publishes an artifact. Encode or publish failures
// are swallowed: persistence is an optimization, never a correctness
// dependency.
func (s *Session) diskPut(kind string, key Key, encode func() ([]byte, error)) {
	if s.cfg.disk == nil {
		return
	}
	payload, err := encode()
	if err != nil {
		return
	}
	_ = s.cfg.disk.Put(kind, string(key), payload)
}

// parseResult is the cached artifact of parsing one file. Parse errors
// are deterministic properties of the content, so they are cached too
// (as values, not store errors).
type parseResult struct {
	classes []*ast.ClassDecl
	err     error
}

// Info returns the parsed and type-checked program, building (or
// fetching) per-file ASTs and the typed Info on demand.
func (s *Session) Info() (*types.Info, error) {
	var info *types.Info
	err := s.phase(budget.PhaseLoad, func() error {
		names, srcs, srcKey := s.snapshot()
		key := hashParts("check", string(srcKey))
		v, err := s.cfg.store.get(key, budget.PhaseLoad, func() (any, bool, error) {
			prog := &ast.Program{}
			var all parser.ErrorList
			for _, name := range names {
				classes, perr := s.parseFile(name, srcs[name])
				prog.SrcBytes += len(srcs[name])
				prog.Classes = append(prog.Classes, classes...)
				if perr != nil {
					all = append(all, perr.(parser.ErrorList)...)
				}
			}
			if len(all) > 0 {
				return nil, false, all
			}
			s.count(func(st *Stats) { st.Checks++ })
			info, cerr := types.Check(prog)
			if cerr != nil {
				return nil, false, cerr
			}
			return info, true, nil
		})
		if err != nil {
			return err
		}
		info = v.(*types.Info)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

// parseFile returns the AST of one file, via the process-wide prelude
// cache or the per-file content-keyed store.
func (s *Session) parseFile(name, src string) ([]*ast.ClassDecl, error) {
	if name == prelude.FileName && src == prelude.Source {
		classes, parsed, err := parsedPrelude()
		if parsed {
			s.count(func(st *Stats) { st.PreludeParses++ })
		}
		return classes, err
	}
	v, _ := s.cfg.store.get(hashParts("parse", name, src), budget.PhaseLoad, func() (any, bool, error) {
		s.count(func(st *Stats) { st.Parses++ })
		classes, err := parser.ParseFile(name, src)
		return parseResult{classes, err}, err == nil, nil
	})
	res := v.(parseResult)
	return res.classes, res.err
}

// Depgraph returns the cross-file symbol dependency graph of the
// current source set: one unit per lowering job, keyed by a content
// hash covering the unit's declaration and the deep fingerprints of
// every class its lowering can observe. The incremental pipeline hangs
// off it three ways — unit keys address per-method IR payloads in the
// store, Diff against the previous revision's graph yields the
// changed-symbol frontier, and TopoBatches schedules the frontier's
// re-derivation callees-first.
func (s *Session) Depgraph() (*depgraph.Graph, error) {
	info, err := s.Info()
	if err != nil {
		return nil, err
	}
	var g *depgraph.Graph
	err = s.phase(budget.PhaseLoad, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("depg", string(srcKey))
		v, err := s.cfg.store.get(key, budget.PhaseLoad, func() (any, bool, error) {
			if payload := s.diskGet("depg", key); payload != nil {
				if decoded, derr := depgraph.DecodeGraph(payload); derr == nil {
					return decoded, true, nil
				} else {
					s.diskQuarantine("depg", key, derr)
				}
			}
			s.count(func(st *Stats) { st.Depgraphs++ })
			built := depgraph.Build(info)
			s.diskPut("depg", key, func() ([]byte, error) { return depgraph.EncodeGraph(built) })
			return built, true, nil
		})
		if err != nil {
			return err
		}
		g = v.(*depgraph.Graph)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// unitStoreKey addresses one per-method IR payload. The depgraph unit
// key already covers file content and referenced-symbol fingerprints,
// so two revisions (or two sessions) containing an identical unit share
// the entry — including a Remove followed by re-Adding the same file.
func unitStoreKey(depgraphKey string) Key { return hashParts("unit", depgraphKey) }

// lowerViaUnits assembles the program from per-method units: cached
// payloads are cloned, the dirty frontier is re-lowered in Kahn-style
// callee-first batches over the worker pool, and freshly derived units
// are published back to the store (and disk tier) under their unit
// keys. The result is byte-identical to ir.LowerWorkers.
func (s *Session) lowerViaUnits(info *types.Info, depg *depgraph.Graph) (*ir.Program, error) {
	reuse := make(map[string][]byte, len(depg.Units))
	cached := 0
	dirty := make(map[string]bool)
	for _, u := range depg.Units {
		uk := unitStoreKey(u.Key)
		if v, ok := s.cfg.store.peek(uk); ok {
			reuse[u.QName] = v.([]byte)
			cached++
			continue
		}
		if payload := s.diskGet("unit", uk); payload != nil {
			reuse[u.QName] = payload
			s.cfg.store.put(uk, payload)
			cached++
			continue
		}
		dirty[u.QName] = true
	}
	fresh := map[string][]byte{}
	if len(dirty) > 0 && cached > 0 {
		// Warm rebuild: re-derive only the frontier, callees before
		// callers so each batch fans out independently.
		fresh = ir.LowerBatches(info, depg.TopoBatches(dirty), s.cfg.workers)
		for q, p := range fresh {
			reuse[q] = p
		}
	}
	prog, lst, err := ir.LowerUnits(info, reuse, s.cfg.workers)
	if err != nil {
		return nil, err
	}
	s.count(func(st *Stats) {
		st.UnitReuses += cached
		st.UnitLowers += len(fresh) + lst.Lowered
	})
	if len(prog.Diags) > 0 {
		return prog, nil // caller surfaces the diagnostics; publish nothing
	}
	var byQ map[string]*ir.Method
	for _, u := range depg.Units {
		if !dirty[u.QName] {
			continue
		}
		payload := fresh[u.QName]
		if payload == nil {
			if byQ == nil {
				byQ = make(map[string]*ir.Method, len(prog.Methods))
				for _, m := range prog.Methods {
					byQ[m.Sig.QualifiedName()] = m
				}
			}
			payload = ir.EncodeUnit(byQ[u.QName])
		}
		uk := unitStoreKey(u.Key)
		s.cfg.store.put(uk, payload)
		s.diskPut("unit", uk, func() ([]byte, error) { return payload, nil })
	}
	return prog, nil
}

// Prog returns the SSA IR lowered from the typed program, verified
// when the session was opened WithVerifyIR. Incremental sessions
// assemble it from per-method units addressed by depgraph keys.
func (s *Session) Prog() (*ir.Program, error) {
	info, err := s.Info()
	if err != nil {
		return nil, err
	}
	var depg *depgraph.Graph
	if s.cfg.incremental {
		if depg, err = s.Depgraph(); err != nil {
			return nil, err
		}
	}
	var prog *ir.Program
	err = s.phase(budget.PhaseLower, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("ir", string(srcKey), strconv.FormatBool(s.cfg.verifyIR))
		v, err := s.cfg.store.get(key, budget.PhaseLower, func() (any, bool, error) {
			if payload := s.diskGet("ir", key); payload != nil {
				if p, derr := ir.DecodeProgram(payload, info); derr == nil {
					return p, true, nil
				} else {
					s.diskQuarantine("ir", key, derr)
				}
			}
			var p *ir.Program
			if depg != nil {
				var lerr error
				if p, lerr = s.lowerViaUnits(info, depg); lerr != nil {
					p = nil // unit payload failed to relink: fall back to a full lower
				}
			}
			if p == nil {
				s.count(func(st *Stats) { st.Lowers++ })
				p = ir.LowerWorkers(info, s.cfg.workers)
			}
			if len(p.Diags) > 0 {
				return nil, false, p.Diags
			}
			s.diskPut("ir", key, func() ([]byte, error) { return ir.EncodeProgram(p) })
			return p, true, nil
		})
		if err != nil {
			return err
		}
		prog = v.(*ir.Program)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.cfg.verifyIR {
		if err := s.phase(budget.PhaseVerify, func() error {
			if verrs := ir.Verify(prog); len(verrs) > 0 {
				return fmt.Errorf("analyzer: IR verification failed: %w (%d violation(s))", verrs[0], len(verrs))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ptsConfigKey captures the pointer-analysis configuration that shapes
// the points-to artifact and everything derived from it.
func (s *Session) ptsConfigKey(srcKey Key) Key {
	return hashParts("pts", string(srcKey),
		strconv.FormatBool(s.cfg.objSens),
		strings.Join(s.cfg.containers, "\x00"),
		strings.Join(s.cfg.entries, "\x00"))
}

// deltaCapable reports whether this session may use the incremental
// re-derivation paths: opted in, and unbudgeted (a budgeted delta could
// truncate, and a truncated artifact must never seed the next delta).
func (s *Session) deltaCapable() bool {
	return s.cfg.incremental && s.cfg.budget == nil
}

// ptsConfig is the pointer-analysis configuration of this session over
// the given resolved entries. Incremental sessions retain solver state
// so the next revision can re-seed the difference-propagation worklist
// instead of re-solving.
func (s *Session) ptsConfig(entries []*ir.Method) pointsto.Config {
	return pointsto.Config{
		Entries:           entries,
		ObjSensContainers: s.cfg.objSens,
		ContainerClasses:  s.cfg.containers,
		Budget:            s.cfg.budget,
		RetainState:       s.deltaCapable(),
	}
}

// trySolveDelta attempts the incremental pointer re-solve against the
// session's retained state. Any structural obstacle — no retained
// state, an unmappable program pair, or a SolveDelta safety-net error —
// reports false and the caller runs the full analysis.
func (s *Session) trySolveDelta(prog *ir.Program, depg *depgraph.Graph, entries []*ir.Method) (*pointsto.Result, bool) {
	last := s.retainedState()
	if last.pts == nil || last.prog == nil || last.depg == nil {
		return nil, false
	}
	d := depgraph.Diff(last.depg, depg)
	removed := append(append([]string(nil), d.Changed...), d.Removed...)
	added := append(append([]string(nil), d.Changed...), d.Added...)
	gone := make(map[string]bool, len(removed))
	for _, q := range removed {
		gone[q] = true
	}
	var unchanged []string
	for _, m := range last.prog.Methods {
		if q := m.Sig.QualifiedName(); !gone[q] {
			unchanged = append(unchanged, q)
		}
	}
	pm, err := ir.MapPrograms(last.prog, prog, unchanged)
	if err != nil {
		return nil, false
	}
	res, _, err := pointsto.SolveDelta(last.pts, prog, pm, removed, added, s.ptsConfig(entries))
	if err != nil {
		return nil, false
	}
	s.count(func(st *Stats) { st.DeltaSolves++ })
	return res, true
}

// PointsTo returns the pointer-analysis result. Truncated or
// downgraded results (budget exhaustion) are returned but not cached.
// Incremental sessions re-derive the result from the previous build's
// retained solver state when the edit frontier allows, falling back to
// the full analysis on any delta error.
func (s *Session) PointsTo() (*pointsto.Result, error) {
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	var depg *depgraph.Graph
	if s.cfg.incremental {
		if depg, err = s.Depgraph(); err != nil {
			return nil, err
		}
	}
	var pts *pointsto.Result
	err = s.phase(budget.PhasePointsTo, func() error {
		entries, err := resolveEntries(prog, s.cfg.entries)
		if err != nil {
			return err
		}
		_, _, srcKey := s.snapshot()
		key := s.ptsConfigKey(srcKey)
		v, err := s.cfg.store.get(key, budget.PhasePointsTo, func() (any, bool, error) {
			if payload := s.diskGet("pts", key); payload != nil {
				if res, derr := pointsto.DecodeResult(payload, prog); derr == nil {
					return res, true, nil
				} else {
					s.diskQuarantine("pts", key, derr)
				}
			}
			var res *pointsto.Result
			if s.deltaCapable() && depg != nil {
				res, _ = s.trySolveDelta(prog, depg, entries)
			}
			if res == nil {
				s.count(func(st *Stats) { st.PointsTos++ })
				var aerr error
				res, aerr = pointsto.Analyze(prog, s.ptsConfig(entries))
				if aerr != nil {
					return nil, false, aerr
				}
			}
			cacheable := !res.Truncated && !res.Downgraded
			if cacheable {
				if s.deltaCapable() && depg != nil {
					s.updateRetained(func(r *retained) {
						r.srcKey, r.depg, r.prog, r.pts = srcKey, depg, prog, res
					})
				}
				s.diskPut("pts", key, func() ([]byte, error) { return pointsto.EncodeResult(res) })
			}
			return res, cacheable, nil
		})
		if err != nil {
			return err
		}
		pts = v.(*pointsto.Result)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Graph returns the dependence graph, built in parallel when the
// session's worker count allows. Truncated graphs are not cached.
// Incremental sessions rebuild it off the previous build's per-method
// templates, recomputing only the points-to-derived edges.
func (s *Session) Graph() (*sdg.Graph, error) {
	pts, err := s.PointsTo()
	if err != nil {
		return nil, err
	}
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	var depg *depgraph.Graph
	if s.cfg.incremental {
		if depg, err = s.Depgraph(); err != nil {
			return nil, err
		}
	}
	var g *sdg.Graph
	err = s.phase(budget.PhaseSDG, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("sdg", string(s.ptsConfigKey(srcKey)))
		v, err := s.cfg.store.get(key, budget.PhaseSDG, func() (any, bool, error) {
			if payload := s.diskGet("sdg", key); payload != nil {
				if graph, derr := sdg.DecodeGraph(payload, prog, pts); derr == nil {
					return graph, true, nil
				} else {
					s.diskQuarantine("sdg", key, derr)
				}
			}
			if s.deltaCapable() && depg != nil && !pts.Truncated && !pts.Downgraded {
				last := s.retainedState()
				var prevSt *sdg.BuildState
				var changed []string
				if last.sdgSt != nil && last.sdgDepg != nil {
					d := depgraph.Diff(last.sdgDepg, depg)
					changed = append(append([]string(nil), d.Changed...), d.Added...)
					prevSt = last.sdgSt
				}
				graph, st, _ := sdg.BuildDelta(prog, pts, prevSt, changed)
				s.count(func(stt *Stats) {
					if prevSt != nil {
						stt.DeltaSDGs++
					} else {
						stt.SDGs++
					}
				})
				s.updateRetained(func(r *retained) { r.sdgSt, r.sdgDepg = st, depg })
				s.diskPut("sdg", key, func() ([]byte, error) { return sdg.EncodeGraph(graph) })
				return graph, true, nil
			}
			s.count(func(st *Stats) { st.SDGs++ })
			graph, err := sdg.BuildWorkers(prog, pts, s.cfg.budget, s.cfg.workers)
			if err != nil {
				return nil, false, err
			}
			if !graph.Truncated {
				s.diskPut("sdg", key, func() ([]byte, error) { return sdg.EncodeGraph(graph) })
			}
			return graph, !graph.Truncated, nil
		})
		if err != nil {
			return err
		}
		g = v.(*sdg.Graph)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// CHA returns the class-hierarchy call graph rooted at the analysis
// entries (used by the checker suite).
func (s *Session) CHA() (*cha.CallGraph, error) {
	pts, err := s.PointsTo()
	if err != nil {
		return nil, err
	}
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	var cg *cha.CallGraph
	err = s.phase(budget.PhaseCheck, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("cha", string(s.ptsConfigKey(srcKey)))
		v, err := s.cfg.store.get(key, budget.PhaseCheck, func() (any, bool, error) {
			if payload := s.diskGet("cha", key); payload != nil {
				if decoded, derr := cha.DecodeCallGraph(payload, prog); derr == nil {
					return decoded, true, nil
				} else {
					s.diskQuarantine("cha", key, derr)
				}
			}
			s.count(func(st *Stats) { st.CHAs++ })
			built := cha.Build(prog, pts.Entries())
			s.diskPut("cha", key, func() ([]byte, error) { return cha.EncodeCallGraph(built) })
			return built, true, nil
		})
		if err != nil {
			return err
		}
		cg = v.(*cha.CallGraph)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cg, nil
}

// ModRef returns the mod-ref summaries over the points-to result.
func (s *Session) ModRef() (*modref.Result, error) {
	pts, err := s.PointsTo()
	if err != nil {
		return nil, err
	}
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	var mr *modref.Result
	err = s.phase(budget.PhaseCheck, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("modref", string(s.ptsConfigKey(srcKey)))
		v, err := s.cfg.store.get(key, budget.PhaseCheck, func() (any, bool, error) {
			if payload := s.diskGet("modref", key); payload != nil {
				if decoded, derr := modref.DecodeResult(payload, prog, pts); derr == nil {
					return decoded, true, nil
				} else {
					s.diskQuarantine("modref", key, derr)
				}
			}
			s.count(func(st *Stats) { st.ModRefs++ })
			computed := modref.Compute(prog, pts)
			s.diskPut("modref", key, func() ([]byte, error) { return modref.EncodeResult(computed) })
			return computed, true, nil
		})
		if err != nil {
			return err
		}
		mr = v.(*modref.Result)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mr, nil
}

// Dataflow returns the solved IFDS results for problem p over the
// session's program, keyed by the problem's name and configuration on
// top of the pointer-analysis configuration (so a source edit or a
// points-to config change invalidates exactly the dataflow artifacts
// downstream). Results are cached in memory and on disk; a result is
// only cacheable when it and every upstream artifact it was computed
// from is complete — a truncated solve, or a solve over a truncated
// points-to or dependence graph, is returned but never cached.
func (s *Session) Dataflow(p dataflow.Problem) (*dataflow.Results, error) {
	pts, err := s.PointsTo()
	if err != nil {
		return nil, err
	}
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	cg, err := s.CHA()
	if err != nil {
		return nil, err
	}
	var res *dataflow.Results
	err = s.phase(budget.PhaseDataflow, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("df", string(s.ptsConfigKey(srcKey)), p.Name(), p.ConfigKey())
		v, err := s.cfg.store.get(key, budget.PhaseDataflow, func() (any, bool, error) {
			upstreamComplete := !pts.Truncated && !pts.Downgraded && !g.Truncated
			if upstreamComplete {
				if payload := s.diskGet("df", key); payload != nil {
					if decoded, derr := dataflow.DecodeResults(payload, prog, pts, g); derr == nil {
						return decoded, true, nil
					} else {
						s.diskQuarantine("df", key, derr)
					}
				}
			}
			s.count(func(st *Stats) { st.Dataflows++ })
			solved, err := dataflow.Solve(dataflow.Inputs{Prog: prog, Pts: pts, Graph: g, CHA: cg}, p, s.cfg.budget)
			if err != nil {
				return nil, false, err
			}
			cacheable := upstreamComplete && !solved.Truncated
			if cacheable {
				s.diskPut("df", key, func() ([]byte, error) { return dataflow.EncodeResults(solved) })
			}
			return solved, cacheable, nil
		})
		if err != nil {
			return err
		}
		res = v.(*dataflow.Results)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CSGraph returns the context-sensitive dependence graph with heap
// parameters (paper §5.3), for the csslice comparison slicer.
func (s *Session) CSGraph() (*csslice.Graph, error) {
	pts, err := s.PointsTo()
	if err != nil {
		return nil, err
	}
	prog, err := s.Prog()
	if err != nil {
		return nil, err
	}
	mr, err := s.ModRef()
	if err != nil {
		return nil, err
	}
	var g *csslice.Graph
	err = s.phase(budget.PhaseSDG, func() error {
		_, _, srcKey := s.snapshot()
		key := hashParts("cs", string(s.ptsConfigKey(srcKey)))
		v, err := s.cfg.store.get(key, budget.PhaseSDG, func() (any, bool, error) {
			s.count(func(st *Stats) { st.CSGraphs++ })
			return csslice.Build(prog, pts, mr), true, nil
		})
		if err != nil {
			return err
		}
		g = v.(*csslice.Graph)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// resolveEntries maps explicit entry names to methods. A name that
// matches nothing is an error naming the available candidates, rather
// than a silent empty analysis.
func resolveEntries(prog *ir.Program, names []string) ([]*ir.Method, error) {
	var entries []*ir.Method
	var missing []string
	for _, name := range names {
		found := false
		for _, m := range prog.Methods {
			if m.Name() == name {
				entries = append(entries, m)
				found = true
			}
		}
		if !found {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		var mains []string
		for _, m := range prog.Methods {
			if m.Sig.Static && m.Sig.Name == "main" {
				mains = append(mains, m.Name())
			}
		}
		sort.Strings(mains)
		candidates := "none found"
		if len(mains) > 0 {
			candidates = strings.Join(mains, ", ")
		}
		return nil, fmt.Errorf("analyzer: entry method(s) not found: %s (available main candidates: %s)",
			strings.Join(missing, ", "), candidates)
	}
	return entries, nil
}
