package session_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"thinslice/internal/artifact"
	"thinslice/internal/core"
	"thinslice/internal/diskstore"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

// diskFetcher serves verified payloads out of another replica's disk
// cache — the in-process analogue of the cluster's /internal/artifact
// fetch, including the CRC verification before any payload is trusted.
// lines renders a slice's line set for byte-level comparison.
func lines(sl *core.Slice) string {
	return fmt.Sprint(sl.Lines())
}

func diskFetcher(t *testing.T, donor *diskstore.Cache, fetches *atomic.Int64) session.RemoteFetch {
	t.Helper()
	return func(kind string, key session.Key) []byte {
		fetches.Add(1)
		rec, recKind, ok := donor.GetRecord(string(key))
		if !ok || recKind != kind {
			return nil
		}
		payload, err := artifact.Decode(rec, kind, string(key))
		if err != nil {
			return nil
		}
		return payload
	}
}

// TestRemoteFetchWarmsFromPeer: a fresh session with an empty local
// disk answers entirely from a peer's artifacts — zero pointer
// analyses, zero SDG builds — and the fetched artifacts are published
// locally so the next restart doesn't re-fetch.
func TestRemoteFetchWarmsFromPeer(t *testing.T) {
	donorDisk, err := diskstore.Open(t.TempDir(), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")
	donor := session.Open(firstNamesSources(), session.WithDiskCache(donorDisk))
	want := mustSlice(t, donor, papercases.FirstNamesFile, seedLine)

	localDir := t.TempDir()
	localDisk, err := diskstore.Open(localDir, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	var fetches atomic.Int64
	s := session.Open(firstNamesSources(),
		session.WithDiskCache(localDisk),
		session.WithRemoteFetch(diskFetcher(t, donorDisk, &fetches)))
	got := mustSlice(t, s, papercases.FirstNamesFile, seedLine)

	if lines(got) != lines(want) {
		t.Fatalf("peer-warmed slice differs:\n%s\nvs\n%s", lines(got), lines(want))
	}
	stats := s.Stats()
	if stats.PointsTos != 0 || stats.SDGs != 0 {
		t.Fatalf("peer-warmed session rebuilt artifacts: %+v", stats)
	}
	if fetches.Load() == 0 {
		t.Fatal("remote fetcher never consulted")
	}
	if localDisk.Stats().Puts == 0 {
		t.Fatal("fetched artifacts not published to the local disk tier")
	}

	// A restart over the same local dir is warm without the peer.
	restartDisk, err := diskstore.Open(localDir, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	fetches.Store(0)
	s2 := session.Open(firstNamesSources(),
		session.WithDiskCache(restartDisk),
		session.WithRemoteFetch(diskFetcher(t, donorDisk, &fetches)))
	if got2 := mustSlice(t, s2, papercases.FirstNamesFile, seedLine); lines(got2) != lines(want) {
		t.Fatal("restart slice differs")
	}
	if fetches.Load() != 0 {
		t.Fatalf("restart re-fetched %d artifacts from the peer", fetches.Load())
	}
}

// TestRemoteFetchByzantinePayloadQuarantined: a peer that returns
// garbage (valid transport, wrong bytes) costs a rebuild, never a
// wrong answer. The poisoned payload is published, fails structural
// decoding, gets quarantined from the local tier, and the rebuild
// re-publishes clean bytes.
func TestRemoteFetchByzantinePayloadQuarantined(t *testing.T) {
	localDisk, err := diskstore.Open(t.TempDir(), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	var fetches atomic.Int64
	byzantine := func(kind string, key session.Key) []byte {
		fetches.Add(1)
		return []byte("not an artifact payload")
	}
	seedLine := papercases.Line(papercases.FirstNames, "// SEED")
	s := session.Open(firstNamesSources(),
		session.WithDiskCache(localDisk),
		session.WithRemoteFetch(byzantine))
	got := mustSlice(t, s, papercases.FirstNamesFile, seedLine)

	truth := mustSlice(t, session.Open(firstNamesSources()), papercases.FirstNamesFile, seedLine)
	if lines(got) != lines(truth) {
		t.Fatalf("byzantine peer changed the answer:\n%s\nvs\n%s", lines(got), lines(truth))
	}
	if s.Stats().PointsTos != 1 {
		t.Fatalf("expected a full rebuild under a byzantine peer: %+v", s.Stats())
	}
	if fetches.Load() == 0 {
		t.Fatal("byzantine fetcher never consulted")
	}
	if q := localDisk.Stats().Quarantines; q == 0 {
		t.Fatal("poisoned payloads were not quarantined")
	}
	// The rebuild re-published clean artifacts: a fresh session over the
	// same disk is warm and correct without the fetcher.
	s2 := session.Open(firstNamesSources(), session.WithDiskCache(localDisk))
	if got2 := mustSlice(t, s2, papercases.FirstNamesFile, seedLine); lines(got2) != lines(truth) {
		t.Fatal("post-quarantine disk state yields a wrong answer")
	}
	if s2.Stats().PointsTos != 0 {
		t.Fatalf("post-quarantine disk not warm: %+v", s2.Stats())
	}
}
