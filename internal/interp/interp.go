// Package interp is a reference interpreter for the lowered IR. It
// executes programs with scripted inputs, which lets the test suite
// (a) confirm that generated benchmark bugs actually manifest,
// (b) validate the pointer analysis against runtime allocation sites,
// and (c) record dynamic data dependences for dynamic thin slicing —
// the straightforward extension the paper sketches ("dynamic thin
// slices can be defined in a straightforward manner using dynamic
// data dependences", §1).
package interp

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"thinslice/internal/budget"
	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
	"thinslice/internal/lang/types"
)

// Value is a runtime value: int64, bool, string, *Object, *Array, or
// nil (the null reference).
type Value any

// Object is a runtime class instance, tagged with its allocation site.
type Object struct {
	Class  *types.ClassInfo
	Site   ir.Instr
	Fields map[*types.FieldInfo]Value
	id     int
}

func (o *Object) String() string { return fmt.Sprintf("%s@%d", o.Class.Name, o.id) }

// Array is a runtime array, tagged with its allocation site.
type Array struct {
	Elems []Value
	Elem  types.Type
	Site  ir.Instr
	id    int
}

func (a *Array) String() string { return fmt.Sprintf("%s[%d]@%d", a.Elem, len(a.Elems), a.id) }

// RuntimeError is an execution failure (uncaught throw, failed assert,
// null dereference, bad cast, out-of-bounds access, fuel/budget
// exhaustion, call-depth overflow).
type RuntimeError struct {
	Pos  token.Pos
	Kind string
	Msg  string
	// Cause is the underlying typed error for resource failures: a
	// *budget.ErrExhausted for fuel/step exhaustion, *budget.ErrCanceled
	// for cancellation, so errors.As/budget.IsExhausted work through it.
	Cause error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Kind, e.Msg)
}

func (e *RuntimeError) Unwrap() error { return e.Cause }

// Truncated reports whether err means execution was cut off by a
// resource bound (fuel, budget, deadline, call depth) rather than a
// program fault — the "partial result" outcomes a caller may want to
// treat as soft failures.
func Truncated(err error) bool {
	if budget.IsExhausted(err) || budget.IsCanceled(err) {
		return true
	}
	if re, ok := err.(*RuntimeError); ok {
		return re.Kind == "limit" || re.Kind == "depth"
	}
	return false
}

// Machine executes a program.
type Machine struct {
	Prog *ir.Program
	// Inputs script the input()/inputInt() builtins; each call consumes
	// one entry (cycling when exhausted, defaulting to ""/0 if empty).
	Inputs    []string
	InputInts []int64
	// StepLimit is the fuel: it bounds executed instructions (default
	// 2_000_000), guaranteeing termination on unterminated loops.
	StepLimit int
	// MaxDepth bounds the call stack (default 10_000), converting
	// runaway recursion into a RuntimeError instead of a fatal Go
	// stack overflow.
	MaxDepth int
	// Budget, when non-nil, additionally bounds execution by the shared
	// pipeline budget (PhaseInterp steps, cancellation, deadline).
	Budget *budget.Budget
	// Output collects print() results.
	Output []string
	// Trace, when non-nil, records dynamic dependences (see trace.go).
	Trace *Trace
	// BaseHook, when non-nil, observes every heap access's concrete
	// base value before the access executes — used by tests to check
	// the pointer analysis against runtime allocation sites.
	BaseHook func(ins ir.Instr, base Value)

	steps    int
	depth    int
	meter    *budget.Meter
	nextID   int
	statics  map[*types.FieldInfo]Value
	inputPos int
	intPos   int
}

// New returns a machine for prog.
func New(prog *ir.Program) *Machine {
	return &Machine{
		Prog:      prog,
		StepLimit: 2_000_000,
		MaxDepth:  10_000,
		statics:   make(map[*types.FieldInfo]Value),
	}
}

// Run executes the entry method (a static method named main when name
// is empty). It never panics: internal faults are converted to a
// phase-tagged *budget.ErrInternal, and resource bounds (fuel, budget,
// call depth) surface as RuntimeErrors for which Truncated reports
// true.
func (m *Machine) Run(entryName string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &budget.ErrInternal{Phase: budget.PhaseInterp, Value: r, Stack: debug.Stack()}
		}
	}()
	var entry *ir.Method
	for _, mm := range m.Prog.Methods {
		if entryName == "" && mm.Sig.Static && mm.Sig.Name == "main" {
			entry = mm
			break
		}
		if mm.Name() == entryName {
			entry = mm
			break
		}
	}
	if entry == nil {
		return fmt.Errorf("interp: entry method %q not found", entryName)
	}
	m.meter = m.Budget.Phase(budget.PhaseInterp)
	_, err = m.call(entry, nil, nil)
	return err
}

func (m *Machine) errAt(ins ir.Instr, kind, format string, args ...any) *RuntimeError {
	return &RuntimeError{Pos: ins.Pos(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

type frame struct {
	regs map[*ir.Reg]Value
	// defInst maps registers to their defining event instance (tracing).
	defInst map[*ir.Reg]int
}

func (f *frame) get(r *ir.Reg) Value { return f.regs[r] }
func (f *frame) set(r *ir.Reg, v Value) {
	f.regs[r] = v
}

// call invokes a method with evaluated arguments (receiver first for
// instance methods). cc carries tracing info for the call boundary and
// is nil when tracing is off or at the entry method.
func (m *Machine) call(meth *ir.Method, args []Value, cc *callCtx) (Value, error) {
	m.depth++
	defer func() { m.depth-- }()
	if m.MaxDepth > 0 && m.depth > m.MaxDepth {
		return nil, &RuntimeError{
			Kind:  "depth",
			Msg:   fmt.Sprintf("call depth %d exceeded entering %s", m.MaxDepth, meth.Name()),
			Cause: &budget.ErrExhausted{Phase: budget.PhaseInterp, Limit: int64(m.MaxDepth), Spent: int64(m.depth)},
		}
	}
	f := &frame{regs: make(map[*ir.Reg]Value)}
	if m.Trace != nil {
		f.defInst = make(map[*ir.Reg]int)
	}
	// Bind formal parameters (their Param instructions then record
	// trace events when executed).
	for i, p := range meth.Params {
		if i < len(args) {
			f.set(p.Dst, args[i])
		}
	}
	blk := meth.Entry()
	var prev *ir.Block
	for {
		// Evaluate phis atomically on block entry.
		if prev != nil {
			edge := -1
			for i, p := range blk.Preds {
				if p == prev {
					edge = i
					break
				}
			}
			if edge < 0 {
				return nil, fmt.Errorf("interp: edge %s->%s missing in %s", prev, blk, meth.Name())
			}
			var vals []Value
			var insts []int
			var phis []*ir.Phi
			for _, ins := range blk.Instrs {
				phi, ok := ins.(*ir.Phi)
				if !ok {
					break
				}
				phis = append(phis, phi)
				vals = append(vals, f.get(phi.Edges[edge]))
				if m.Trace != nil {
					insts = append(insts, instOf(f, phi.Edges[edge]))
				}
			}
			for i, phi := range phis {
				f.set(phi.Dst, vals[i])
				if m.Trace != nil {
					f.defInst[phi.Dst] = m.Trace.record(phi, []int{insts[i]}, nil)
				}
			}
		}
		redirected := false
		for _, ins := range blk.Instrs {
			if _, ok := ins.(*ir.Phi); ok {
				continue // handled on entry
			}
			m.steps++
			if m.StepLimit > 0 && m.steps > m.StepLimit {
				rerr := m.errAt(ins, "limit", "step limit %d exceeded (out of fuel)", m.StepLimit)
				rerr.Cause = &budget.ErrExhausted{
					Phase: budget.PhaseInterp, Limit: int64(m.StepLimit), Spent: int64(m.steps),
				}
				return nil, rerr
			}
			if err := m.meter.Tick(); err != nil {
				kind := "limit"
				if budget.IsCanceled(err) {
					kind = "canceled"
				}
				rerr := m.errAt(ins, kind, "budget violated: %v", err)
				rerr.Cause = err
				return nil, rerr
			}
			next, ret, returned, err := m.exec(f, ins, cc)
			if err != nil {
				return nil, err
			}
			if returned {
				return ret, nil
			}
			if next != nil {
				prev = blk
				blk = next
				redirected = true
				break
			}
		}
		if !redirected {
			return nil, fmt.Errorf("interp: block %s of %s fell through", blk, meth.Name())
		}
	}
}

// callCtx carries tracing info across a call boundary.
type callCtx struct {
	callInst int   // event index of the call instruction
	argInsts []int // defining instances of receiver+args in the caller
}

// exec runs one instruction. It returns the next block for
// terminators, or the return value.
func (m *Machine) exec(f *frame, ins ir.Instr, cc *callCtx) (next *ir.Block, ret Value, returned bool, err error) {
	tr := m.Trace
	// dep returns the defining instance of a register, or -1.
	dep := func(r *ir.Reg) int {
		if tr == nil {
			return -1
		}
		if v, ok := f.defInst[r]; ok {
			return v
		}
		return -1
	}
	rec := func(deps []int, vias []int) int {
		if tr == nil {
			return -1
		}
		return tr.record(ins, deps, vias)
	}
	def := func(r *ir.Reg, inst int) {
		if tr != nil {
			f.defInst[r] = inst
		}
	}

	switch ins := ins.(type) {
	case *ir.Param:
		// Parameter values are bound by call(); record the event here.
		if tr != nil {
			var deps []int
			var vias []int
			if cc != nil {
				if ins.Index < len(cc.argInsts) {
					deps = append(deps, cc.argInsts[ins.Index])
				}
				vias = append(vias, cc.callInst)
			}
			def(ins.Dst, tr.record(ins, deps, vias))
		}
	case *ir.ConstInt:
		f.set(ins.Dst, ins.Val)
		def(ins.Dst, rec(nil, nil))
	case *ir.ConstBool:
		f.set(ins.Dst, ins.Val)
		def(ins.Dst, rec(nil, nil))
	case *ir.ConstStr:
		f.set(ins.Dst, ins.Val)
		def(ins.Dst, rec(nil, nil))
	case *ir.ConstNull:
		f.set(ins.Dst, nil)
		def(ins.Dst, rec(nil, nil))
	case *ir.Copy:
		f.set(ins.Dst, f.get(ins.Src))
		def(ins.Dst, rec([]int{dep(ins.Src)}, nil))
	case *ir.BinOp:
		v, e := m.binop(ins, f.get(ins.X), f.get(ins.Y))
		if e != nil {
			return nil, nil, false, e
		}
		f.set(ins.Dst, v)
		def(ins.Dst, rec([]int{dep(ins.X), dep(ins.Y)}, nil))
	case *ir.UnOp:
		switch ins.Op {
		case token.NOT:
			f.set(ins.Dst, !f.get(ins.X).(bool))
		case token.SUB:
			f.set(ins.Dst, -f.get(ins.X).(int64))
		}
		def(ins.Dst, rec([]int{dep(ins.X)}, nil))
	case *ir.StrOp:
		v, e := m.strop(ins, f)
		if e != nil {
			return nil, nil, false, e
		}
		f.set(ins.Dst, v)
		var deps []int
		if tr != nil {
			for _, a := range ins.Args {
				deps = append(deps, dep(a))
			}
		}
		def(ins.Dst, rec(deps, nil))
	case *ir.Input:
		if ins.IsInt {
			var v int64
			if len(m.InputInts) > 0 {
				v = m.InputInts[m.intPos%len(m.InputInts)]
				m.intPos++
			}
			f.set(ins.Dst, v)
		} else {
			v := ""
			if len(m.Inputs) > 0 {
				v = m.Inputs[m.inputPos%len(m.Inputs)]
				m.inputPos++
			}
			f.set(ins.Dst, v)
		}
		def(ins.Dst, rec(nil, nil))
	case *ir.New:
		m.nextID++
		f.set(ins.Dst, &Object{Class: ins.Class, Site: ins, Fields: make(map[*types.FieldInfo]Value), id: m.nextID})
		def(ins.Dst, rec(nil, nil))
	case *ir.NewArray:
		n, ok := f.get(ins.Len).(int64)
		if !ok || n < 0 {
			return nil, nil, false, m.errAt(ins, "array", "bad array length")
		}
		m.nextID++
		arr := &Array{Elems: make([]Value, n), Elem: ins.Elem, Site: ins, id: m.nextID}
		if z := zeroOf(ins.Elem); z != nil {
			for i := range arr.Elems {
				arr.Elems[i] = z
			}
		}
		f.set(ins.Dst, arr)
		inst := rec([]int{dep(ins.Len)}, nil)
		def(ins.Dst, inst)
		if tr != nil {
			tr.lastLen[arr] = inst
		}
	case *ir.GetField:
		if m.BaseHook != nil {
			m.BaseHook(ins, f.get(ins.Obj))
		}
		obj, ok := f.get(ins.Obj).(*Object)
		if !ok {
			return nil, nil, false, m.errAt(ins, "null", "field read %s on null/non-object", ins.Field.Name)
		}
		v, present := obj.Fields[ins.Field]
		if !present {
			v = zeroOf(ins.Field.Type)
		}
		f.set(ins.Dst, v)
		var deps []int
		if tr != nil {
			if w, ok := tr.lastField[fieldKey{obj, ins.Field}]; ok {
				deps = append(deps, w)
			}
		}
		def(ins.Dst, rec(deps, nil))
	case *ir.SetField:
		if m.BaseHook != nil {
			m.BaseHook(ins, f.get(ins.Obj))
		}
		obj, ok := f.get(ins.Obj).(*Object)
		if !ok {
			return nil, nil, false, m.errAt(ins, "null", "field write %s on null/non-object", ins.Field.Name)
		}
		obj.Fields[ins.Field] = f.get(ins.Val)
		inst := rec([]int{dep(ins.Val)}, nil)
		if tr != nil {
			tr.lastField[fieldKey{obj, ins.Field}] = inst
		}
	case *ir.GetStatic:
		v, present := m.statics[ins.Field]
		if !present {
			v = zeroOf(ins.Field.Type)
		}
		f.set(ins.Dst, v)
		var deps []int
		if tr != nil {
			if w, ok := tr.lastStatic[ins.Field]; ok {
				deps = append(deps, w)
			}
		}
		def(ins.Dst, rec(deps, nil))
	case *ir.SetStatic:
		m.statics[ins.Field] = f.get(ins.Val)
		inst := rec([]int{dep(ins.Val)}, nil)
		if tr != nil {
			tr.lastStatic[ins.Field] = inst
		}
	case *ir.ArrayLoad:
		if m.BaseHook != nil {
			m.BaseHook(ins, f.get(ins.Arr))
		}
		arr, i, e := m.arrayAt(ins, f.get(ins.Arr), f.get(ins.Idx))
		if e != nil {
			return nil, nil, false, e
		}
		f.set(ins.Dst, arr.Elems[i])
		var deps []int
		if tr != nil {
			if w, ok := tr.lastElem[elemKey{arr, i}]; ok {
				deps = append(deps, w)
			}
		}
		def(ins.Dst, rec(deps, nil))
	case *ir.ArrayStore:
		if m.BaseHook != nil {
			m.BaseHook(ins, f.get(ins.Arr))
		}
		arr, i, e := m.arrayAt(ins, f.get(ins.Arr), f.get(ins.Idx))
		if e != nil {
			return nil, nil, false, e
		}
		arr.Elems[i] = f.get(ins.Val)
		inst := rec([]int{dep(ins.Val)}, nil)
		if tr != nil {
			tr.lastElem[elemKey{arr, i}] = inst
		}
	case *ir.ArrayLen:
		arr, ok := f.get(ins.Arr).(*Array)
		if !ok {
			return nil, nil, false, m.errAt(ins, "null", "length of null array")
		}
		f.set(ins.Dst, int64(len(arr.Elems)))
		var deps []int
		if tr != nil {
			if w, ok := tr.lastLen[arr]; ok {
				deps = append(deps, w)
			}
		}
		def(ins.Dst, rec(deps, nil))
	case *ir.Cast:
		v := f.get(ins.Src)
		if e := m.checkCast(ins, v); e != nil {
			return nil, nil, false, e
		}
		f.set(ins.Dst, v)
		def(ins.Dst, rec([]int{dep(ins.Src)}, nil))
	case *ir.InstanceOf:
		v := f.get(ins.Src)
		res := false
		if obj, ok := v.(*Object); ok {
			res = obj.Class.IsSubclassOf(ins.Class)
		}
		if s, ok := v.(string); ok {
			_ = s
			res = ins.Class.Name == "String" || ins.Class.Name == "Object"
		}
		f.set(ins.Dst, res)
		def(ins.Dst, rec([]int{dep(ins.Src)}, nil))
	case *ir.Call:
		return nil, nil, false, m.execCall(f, ins)
	case *ir.Print:
		m.Output = append(m.Output, format(f.get(ins.Val)))
		rec([]int{dep(ins.Val)}, nil)
	case *ir.Assert:
		rec([]int{dep(ins.Cond)}, nil)
		if ok, isBool := f.get(ins.Cond).(bool); !isBool || !ok {
			return nil, nil, false, m.errAt(ins, "assert", "assertion failed")
		}
	case *ir.Return:
		var v Value
		if ins.Val != nil {
			v = f.get(ins.Val)
			rec([]int{dep(ins.Val)}, nil)
			if tr != nil {
				tr.lastReturn = tr.nextInst() - 1
			}
		} else {
			rec(nil, nil)
		}
		return nil, v, true, nil
	case *ir.Throw:
		rec([]int{dep(ins.Val)}, nil)
		name := "?"
		if obj, ok := f.get(ins.Val).(*Object); ok {
			name = obj.Class.Name
		}
		return nil, nil, false, m.errAt(ins, "throw", "uncaught exception %s", name)
	case *ir.If:
		rec([]int{dep(ins.Cond)}, nil)
		if f.get(ins.Cond).(bool) {
			return ins.Then, nil, false, nil
		}
		return ins.Else, nil, false, nil
	case *ir.Goto:
		rec(nil, nil)
		return ins.Target, nil, false, nil
	default:
		return nil, nil, false, fmt.Errorf("interp: unexpected instruction %T", ins)
	}
	return nil, nil, false, nil
}

// execCall evaluates a call instruction in frame f.
func (m *Machine) execCall(f *frame, ins *ir.Call) error {
	tr := m.Trace
	var target *ir.Method
	var args []Value
	var argInsts []int
	if ins.Recv != nil {
		recv := f.get(ins.Recv)
		obj, ok := recv.(*Object)
		if !ok {
			return m.errAt(ins, "null", "call %s on null receiver", ins.Callee.Name)
		}
		var sig *types.MethodInfo
		if ins.Mode == ir.CallCtor {
			sig = ins.Callee
		} else {
			sig = obj.Class.LookupMethod(ins.Callee.Name)
			if sig == nil {
				return m.errAt(ins, "dispatch", "no method %s on %s", ins.Callee.Name, obj.Class.Name)
			}
		}
		target = m.Prog.MethodOf[sig]
		args = append(args, recv)
		if tr != nil {
			argInsts = append(argInsts, instOf(f, ins.Recv))
		}
	} else {
		target = m.Prog.MethodOf[ins.Callee]
	}
	if target == nil {
		return m.errAt(ins, "dispatch", "no body for %s", ins.Callee.QualifiedName())
	}
	for _, a := range ins.Args {
		args = append(args, f.get(a))
		if tr != nil {
			argInsts = append(argInsts, instOf(f, a))
		}
	}
	var cc2 *callCtx
	var callInst int
	if tr != nil {
		callInst = tr.record(ins, nil, nil) // deps patched after return
		cc2 = &callCtx{callInst: callInst, argInsts: argInsts}
	}
	ret, err := m.call(target, args, cc2)
	if err != nil {
		return err
	}
	if ins.Dst != nil {
		f.set(ins.Dst, ret)
		if tr != nil {
			// The call's value depends on the callee's last return.
			tr.addDep(callInst, tr.lastReturn)
			f.defInst[ins.Dst] = callInst
		}
	}
	return nil
}

func (m *Machine) binop(ins *ir.BinOp, x, y Value) (Value, error) {
	switch ins.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		xi, xok := x.(int64)
		yi, yok := y.(int64)
		if !xok || !yok {
			return nil, m.errAt(ins, "type", "integer op on non-integers")
		}
		switch ins.Op {
		case token.ADD:
			return xi + yi, nil
		case token.SUB:
			return xi - yi, nil
		case token.MUL:
			return xi * yi, nil
		case token.QUO:
			if yi == 0 {
				return nil, m.errAt(ins, "arith", "division by zero")
			}
			return xi / yi, nil
		case token.REM:
			if yi == 0 {
				return nil, m.errAt(ins, "arith", "division by zero")
			}
			return xi % yi, nil
		case token.LSS:
			return xi < yi, nil
		case token.LEQ:
			return xi <= yi, nil
		case token.GTR:
			return xi > yi, nil
		default:
			return xi >= yi, nil
		}
	case token.EQL, token.NEQ:
		eq := valueEq(x, y)
		if ins.Op == token.NEQ {
			return !eq, nil
		}
		return eq, nil
	}
	return nil, m.errAt(ins, "type", "unexpected operator %s", ins.Op)
}

func valueEq(x, y Value) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	switch xv := x.(type) {
	case int64:
		yv, ok := y.(int64)
		return ok && xv == yv
	case bool:
		yv, ok := y.(bool)
		return ok && xv == yv
	case string:
		yv, ok := y.(string)
		return ok && xv == yv // string identity approximated by value
	case *Object:
		yv, ok := y.(*Object)
		return ok && xv == yv
	case *Array:
		yv, ok := y.(*Array)
		return ok && xv == yv
	}
	return false
}

func (m *Machine) strop(ins *ir.StrOp, f *frame) (Value, error) {
	argStr := func(i int) (string, error) {
		v := f.get(ins.Args[i])
		if s, ok := v.(string); ok {
			return s, nil
		}
		return "", m.errAt(ins, "null", "string op on null")
	}
	argInt := func(i int) (int64, error) {
		v := f.get(ins.Args[i])
		if n, ok := v.(int64); ok {
			return n, nil
		}
		return 0, m.errAt(ins, "type", "expected int operand")
	}
	switch ins.Op {
	case ir.StrConcat:
		parts := make([]string, 2)
		for i := 0; i < 2; i++ {
			v := f.get(ins.Args[i])
			switch v := v.(type) {
			case string:
				parts[i] = v
			case int64:
				parts[i] = strconv.FormatInt(v, 10)
			case nil:
				parts[i] = "null"
			default:
				parts[i] = format(v)
			}
		}
		return parts[0] + parts[1], nil
	case ir.StrSubstring:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		i, err := argInt(1)
		if err != nil {
			return nil, err
		}
		j, err := argInt(2)
		if err != nil {
			return nil, err
		}
		if i < 0 || j < i || j > int64(len(s)) {
			return nil, m.errAt(ins, "bounds", "substring(%d, %d) of %q", i, j, s)
		}
		return s[i:j], nil
	case ir.StrIndexOf:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		t, err := argStr(1)
		if err != nil {
			return nil, err
		}
		return int64(strings.Index(s, t)), nil
	case ir.StrCharAt:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		i, err := argInt(1)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(s)) {
			return nil, m.errAt(ins, "bounds", "charAt(%d) of %q", i, s)
		}
		return int64(s[i]), nil
	case ir.StrLength:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		return int64(len(s)), nil
	case ir.StrEquals:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		t, err := argStr(1)
		if err != nil {
			return nil, err
		}
		return s == t, nil
	case ir.StrStartsWith:
		s, err := argStr(0)
		if err != nil {
			return nil, err
		}
		t, err := argStr(1)
		if err != nil {
			return nil, err
		}
		return strings.HasPrefix(s, t), nil
	case ir.StrItoa:
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return strconv.FormatInt(n, 10), nil
	}
	return nil, m.errAt(ins, "type", "unexpected string op")
}

func (m *Machine) arrayAt(ins ir.Instr, av, iv Value) (*Array, int64, error) {
	arr, ok := av.(*Array)
	if !ok {
		return nil, 0, m.errAt(ins, "null", "array access on null")
	}
	i, ok := iv.(int64)
	if !ok || i < 0 || i >= int64(len(arr.Elems)) {
		return nil, 0, m.errAt(ins, "bounds", "index %v out of range [0,%d)", iv, len(arr.Elems))
	}
	return arr, i, nil
}

func (m *Machine) checkCast(ins *ir.Cast, v Value) error {
	if v == nil {
		return nil // null casts to any reference type
	}
	switch t := ins.Target.(type) {
	case *types.Class:
		if t.Info.Name == "Object" {
			return nil
		}
		if s, ok := v.(string); ok {
			_ = s
			if t.Info.Name == "String" {
				return nil
			}
			return m.errAt(ins, "cast", "String is not %s", t.Info.Name)
		}
		obj, ok := v.(*Object)
		if !ok || !obj.Class.IsSubclassOf(t.Info) {
			return m.errAt(ins, "cast", "%v is not a %s", v, t.Info.Name)
		}
	case *types.Array:
		if _, ok := v.(*Array); !ok {
			return m.errAt(ins, "cast", "%v is not an array", v)
		}
	}
	return nil
}

// zeroOf returns the default value of a field type: 0, false, or null.
func zeroOf(t types.Type) Value {
	switch t {
	case types.Type(types.IntT):
		return int64(0)
	case types.Type(types.BoolT):
		return false
	}
	return nil
}

// instOf returns a register's defining instance in f, or -1.
func instOf(f *frame, r *ir.Reg) int {
	if v, ok := f.defInst[r]; ok {
		return v
	}
	return -1
}

func format(v Value) string {
	switch v := v.(type) {
	case nil:
		return "null"
	case int64:
		return strconv.FormatInt(v, 10)
	case bool:
		return strconv.FormatBool(v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}
