package interp_test

import (
	"testing"
	"testing/quick"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
)

// runTraced analyzes and executes one program with tracing on.
func runTraced(t *testing.T, sources map[string]string, inputs []string, ints []int64) (*analyzer.Analysis, *interp.Machine) {
	t.Helper()
	a, err := analyzer.Analyze(sources)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m := interp.New(a.Prog)
	m.Trace = interp.NewTrace()
	m.Inputs = inputs
	m.InputInts = ints
	if err := m.Run(""); err != nil {
		t.Fatalf("run: %v", err)
	}
	return a, m
}

func lastPrint(a *analyzer.Analysis) ir.Instr {
	var seed ir.Instr
	for _, meth := range a.Pts.Entries() {
		meth.Instrs(func(ins ir.Instr) {
			if _, ok := ins.(*ir.Print); ok {
				seed = ins
			}
		})
	}
	return seed
}

func TestDynamicSliceStraightLine(t *testing.T) {
	src := `class Main {
    static void main() {
        int unused = inputInt(); // UNUSED
        int x = inputInt(); // X
        int y = x + 1; // Y
        print(y); // SEED
    }
}
`
	a, m := runTraced(t, map[string]string{"t.mj": src}, nil, []int64{5, 7})
	seed := lastPrint(a)
	dyn := m.Trace.DynamicThinSlice(seed)
	hasLine := func(line int) bool {
		for ins := range dyn {
			if ins.Pos().Line == line {
				return true
			}
		}
		return false
	}
	for _, mark := range []string{"X", "Y", "SEED"} {
		if !hasLine(papercases.Line(src, mark)) {
			t.Errorf("dynamic slice missing %s", mark)
		}
	}
	if hasLine(papercases.Line(src, "UNUSED")) {
		t.Error("dynamic slice must exclude the unused input")
	}
}

// TestDynamicSliceBranchSensitivity: the dynamic slice only contains
// the branch actually taken — strictly sharper than the static slice.
func TestDynamicSliceBranchSensitivity(t *testing.T) {
	src := `class Main {
    static void main() {
        int x = 0;
        if (inputInt() > 0) {
            x = inputInt() + 1; // TAKEN
        } else {
            x = inputInt() + 2; // NOTTAKEN
        }
        print(x); // SEED
    }
}
`
	a, m := runTraced(t, map[string]string{"t.mj": src}, nil, []int64{1, 10, 20})
	seed := lastPrint(a)
	dyn := m.Trace.DynamicThinSlice(seed)
	taken, notTaken := papercases.Line(src, "TAKEN"), papercases.Line(src, "NOTTAKEN")
	hasTaken, hasNot := false, false
	for ins := range dyn {
		if ins.Pos().Line == taken {
			hasTaken = true
		}
		if ins.Pos().Line == notTaken {
			hasNot = true
		}
	}
	if !hasTaken {
		t.Error("dynamic slice missing the executed branch")
	}
	if hasNot {
		t.Error("dynamic slice must exclude the untaken branch")
	}
	// The static thin slice includes both (it covers all executions).
	static := a.ThinSlicer().Slice(seed)
	if !static.ContainsLine("t.mj", notTaken) {
		t.Error("static slice should include both branches")
	}
}

func TestDynamicSliceThroughVector(t *testing.T) {
	// The dynamic flow through Vector.add/get mirrors Figure 1.
	a, m := func() (*analyzer.Analysis, *interp.Machine) {
		return runTraced(t, map[string]string{papercases.FirstNamesFile: papercases.FirstNames},
			[]string{"John Doe"}, []int64{1})
	}()
	var seed ir.Instr
	seedLine := papercases.Line(papercases.FirstNames, "SEED")
	for _, s := range a.SeedsAt(papercases.FirstNamesFile, seedLine) {
		if _, ok := s.(*ir.Print); ok {
			seed = s
		}
	}
	dyn := m.Trace.DynamicThinSlice(seed)
	bugLine := papercases.Line(papercases.FirstNames, "BUG")
	found := false
	for ins := range dyn {
		p := ins.Pos()
		if p.File == papercases.FirstNamesFile && p.Line == bugLine {
			found = true
		}
	}
	if !found {
		t.Fatal("dynamic thin slice missing the buggy substring")
	}
}

// TestPropertyDynamicWithinStatic is the central cross-validation: on
// random programs, the dynamic thin slice of any executed print is a
// subset of the static thin slice (the static analysis soundly covers
// every execution).
func TestPropertyDynamicWithinStatic(t *testing.T) {
	f := func(seed int64, in1, in2 int64) bool {
		srcs := randprog.Generate(seed, randprog.DefaultConfig)
		a, err := analyzer.Analyze(srcs)
		if err != nil {
			return false
		}
		m := interp.New(a.Prog)
		m.Trace = interp.NewTrace()
		m.Inputs = []string{"alpha beta", "x=1>t"}
		m.InputInts = []int64{in1 % 50, in2 % 50}
		if err := m.Run(""); err != nil {
			// Random programs are termination-safe but the interpreter
			// may legally hit a guard (e.g. substring on random input);
			// the generator avoids those, so failures are real bugs.
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		thin := a.ThinSlicer()
		checked := 0
		for _, meth := range a.Pts.Entries() {
			var fail bool
			meth.Instrs(func(ins ir.Instr) {
				if fail || checked > 5 {
					return
				}
				if _, ok := ins.(*ir.Print); !ok {
					return
				}
				dyn := m.Trace.DynamicThinSlice(ins)
				if len(dyn) == 0 {
					return // not executed
				}
				checked++
				static := thin.Slice(ins)
				for dins := range dyn {
					if !static.Contains(dins) {
						t.Logf("seed %d: dynamic member %s (%s) not in static thin slice of %s",
							seed, dins, dins.Pos(), ins.Pos())
						fail = true
						return
					}
				}
			})
			if fail {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPointsToSoundAtRuntime: every concrete base object
// observed at a heap access was predicted by the pointer analysis (its
// allocation site appears in the points-to set of the base register).
func TestPropertyPointsToSoundAtRuntime(t *testing.T) {
	f := func(seed int64) bool {
		srcs := randprog.Generate(seed, randprog.DefaultConfig)
		a, err := analyzer.Analyze(srcs)
		if err != nil {
			return false
		}
		m := interp.New(a.Prog)
		m.Inputs = []string{"alpha beta"}
		m.InputInts = []int64{3}
		violation := ""
		m.BaseHook = func(ins ir.Instr, base interp.Value) {
			if violation != "" {
				return
			}
			var site ir.Instr
			switch b := base.(type) {
			case *interp.Object:
				site = b.Site
			case *interp.Array:
				site = b.Site
			default:
				return
			}
			var reg *ir.Reg
			switch ins := ins.(type) {
			case *ir.GetField:
				reg = ins.Obj
			case *ir.SetField:
				reg = ins.Obj
			case *ir.ArrayLoad:
				reg = ins.Arr
			case *ir.ArrayStore:
				reg = ins.Arr
			}
			for _, o := range a.Pts.PointsTo(reg) {
				if o.Site == site {
					return
				}
			}
			violation = ins.String()
		}
		if err := m.Run(""); err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		if violation != "" {
			t.Logf("seed %d: points-to unsound at %s", seed, violation)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedBenchmarksExecute runs a few generated benchmarks under
// the interpreter to confirm they are real programs, and that the
// xmlsec fingerprint assertion fails as designed.
func TestGeneratedBenchmarksExecute(t *testing.T) {
	t.Run("jtopas", func(t *testing.T) {
		a, err := analyzer.Analyze(mustBench(t, "jtopas"))
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(a.Prog)
		m.Inputs = []string{"abc 123 x"}
		if err := m.Run(""); err != nil {
			t.Fatalf("jtopas run: %v", err)
		}
		if len(m.Output) == 0 {
			t.Error("no output")
		}
	})
	t.Run("mtrt", func(t *testing.T) {
		a, err := analyzer.Analyze(mustBench(t, "mtrt"))
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(a.Prog)
		m.InputInts = []int64{1, 2, 3}
		if err := m.Run(""); err != nil {
			t.Fatalf("mtrt run: %v (the tough casts must not fail dynamically)", err)
		}
	})
	t.Run("javac", func(t *testing.T) {
		a, err := analyzer.Analyze(mustBench(t, "javac"))
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(a.Prog)
		m.StepLimit = 5_000_000
		if err := m.Run(""); err != nil {
			t.Fatalf("javac run: %v (worklist casts must not fail dynamically)", err)
		}
	})
}

func mustBench(t *testing.T, name string) map[string]string {
	t.Helper()
	return benchSources(name)
}

func benchSources(name string) map[string]string {
	return bench.Generate(name, 1).Sources
}
