package interp_test

import (
	"strings"
	"testing"

	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/papercases"
)

func run(t *testing.T, src string, inputs []string, ints []int64) (*interp.Machine, error) {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	m := interp.New(prog)
	m.Inputs = inputs
	m.InputInts = ints
	return m, m.Run("")
}

func mustRun(t *testing.T, src string, inputs []string, ints []int64) *interp.Machine {
	t.Helper()
	m, err := run(t, src, inputs, ints)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func wantOutput(t *testing.T, m *interp.Machine, want ...string) {
	t.Helper()
	if len(m.Output) != len(want) {
		t.Fatalf("got output %q, want %q", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output %d: got %q, want %q", i, m.Output[i], want[i])
		}
	}
}

func TestArithmeticAndControl(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			int sum = 0;
			for (int i = 1; i <= 5; i++) {
				sum = sum + i;
			}
			print(sum);
			if (sum == 15 && sum > 0) { print("ok"); } else { print("bad"); }
			print(17 % 5);
			print(-sum);
		}
	}`, nil, nil)
	wantOutput(t, m, "15", "ok", "2", "-15")
}

func TestStringsSemantics(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			string s = "John Doe";
			int sp = s.indexOf(" ");
			print(sp);
			print(s.substring(0, sp));
			print(s.substring(0, sp - 1));
			print(s.length());
			print(s.charAt(0));
			print("a" + "b" + 3);
			print(itoa(42));
			if (s.startsWith("John")) { print("starts"); }
			if (s.equals("John Doe")) { print("equals"); }
		}
	}`, nil, nil)
	wantOutput(t, m, "4", "John", "Joh", "8", "74", "ab3", "42", "starts", "equals")
}

func TestObjectsDispatchAndFields(t *testing.T) {
	m := mustRun(t, `
		class Shape { int area() { return 0; } }
		class Circle extends Shape { int r; Circle(int r) { this.r = r; } int area() { return 3 * this.r * this.r; } }
		class Square extends Shape { int s; Square(int s) { this.s = s; } int area() { return this.s * this.s; } }
		class Main {
			static void main() {
				Shape a = new Circle(2);
				Shape b = new Square(3);
				print(a.area() + b.area());
			}
		}`, nil, nil)
	wantOutput(t, m, "21")
}

func TestVectorPreludeAtRuntime(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			Vector v = new Vector();
			int i = 0;
			while (i < 15) { // forces an ensure() grow past capacity 10
				v.add(itoa(i));
				i = i + 1;
			}
			print(v.size());
			print((string) v.get(0));
			print((string) v.get(14));
			Iterator it = v.iterator();
			int count = 0;
			while (it.hasNext()) {
				string s = (string) it.next();
				count = count + 1;
			}
			print(count);
		}
	}`, nil, nil)
	wantOutput(t, m, "15", "0", "14", "15")
}

func TestHashMapPreludeAtRuntime(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			HashMap h = new HashMap();
			h.put("a", "1");
			h.put("b", "2");
			h.put("a", "updated");
			print((string) h.get("a"));
			print((string) h.get("b"));
			print(h.size());
			if (h.get("zz") == null) { print("missing"); }
		}
	}`, nil, nil)
	wantOutput(t, m, "updated", "2", "2", "missing")
}

func TestLinkedListPreludeAtRuntime(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			LinkedList l = new LinkedList();
			l.add("x");
			l.add("y");
			print((string) l.first());
			print((string) l.get(1));
			print(l.size());
		}
	}`, nil, nil)
	wantOutput(t, m, "x", "y", "2")
}

// TestFigure1BugManifests executes the paper's Figure 1 program and
// observes the actual bug: "John Doe" prints as "FIRST NAME: Joh".
func TestFigure1BugManifests(t *testing.T) {
	info, err := loader.Load(map[string]string{papercases.FirstNamesFile: papercases.FirstNames})
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(ir.Lower(info))
	m.Inputs = []string{"John Doe"}
	m.InputInts = []int64{1}
	if err := m.Run(""); err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, line := range m.Output {
		if line == "FIRST NAME: Joh" {
			found = true
		}
		if line == "FIRST NAME: John" {
			t.Fatal("bug did not manifest: correct output printed")
		}
	}
	if !found {
		t.Fatalf("expected the buggy output, got %q", m.Output)
	}
}

// TestFigure4ExceptionManifests executes Figure 4 and observes the
// ClosedException.
func TestFigure4ExceptionManifests(t *testing.T) {
	info, err := loader.Load(map[string]string{papercases.FileBugFile: papercases.FileBug})
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(ir.Lower(info))
	err = m.Run("")
	if err == nil || !strings.Contains(err.Error(), "ClosedException") {
		t.Fatalf("expected ClosedException, got %v", err)
	}
}

// TestFigure5CastNeverFails executes Figure 5: the tough cast is
// dynamically safe.
func TestFigure5CastNeverFails(t *testing.T) {
	info, err := loader.Load(map[string]string{papercases.ToughCastFile: papercases.ToughCast})
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(ir.Lower(info))
	if err := m.Run(""); err != nil {
		t.Fatalf("the Figure 5 cast must not fail at runtime: %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, kind string
	}{
		{"null-deref", `class P { int x; P() { } } class Main { static void main() { P p = null; print(p.x); } }`, "null"},
		{"div-zero", `class Main { static void main() { int z = inputInt(); print(7 / z); } }`, "arith"},
		{"bad-cast", `class A { } class B extends A { }
			class Main { static void main() { A a = new A(); B b = (B) a; print(1); } }`, "cast"},
		{"assert", `class Main { static void main() { assert(1 == 2); } }`, "assert"},
		{"throw", `class E { } class Main { static void main() { throw new E(); } }`, "throw"},
		{"bounds", `class Main { static void main() { int[] a = new int[2]; print(a[5]); } }`, "bounds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := run(t, c.src, nil, nil)
			re, ok := err.(*interp.RuntimeError)
			if !ok {
				t.Fatalf("expected RuntimeError, got %v", err)
			}
			if re.Kind != c.kind {
				t.Errorf("got kind %q, want %q", re.Kind, c.kind)
			}
		})
	}
}

func TestNullCastAllowed(t *testing.T) {
	mustRun(t, `class A { }
		class Main { static void main() { Object o = null; A a = (A) o; print(1); } }`, nil, nil)
}

func TestStaticFieldsAtRuntime(t *testing.T) {
	m := mustRun(t, `class G { static int counter; }
		class Main {
			static void bump() { G.counter = G.counter + 1; }
			static void main() {
				Main.bump();
				Main.bump();
				print(G.counter);
			}
		}`, nil, nil)
	wantOutput(t, m, "2")
}

func TestStepLimit(t *testing.T) {
	info, err := loader.Load(map[string]string{"t.mj": `class Main {
		static void main() {
			while (true) { print(1); }
		}
	}`})
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(ir.Lower(info))
	m.StepLimit = 1000
	err = m.Run("")
	re, ok := err.(*interp.RuntimeError)
	if !ok || re.Kind != "limit" {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

func TestInputsScripted(t *testing.T) {
	m := mustRun(t, `class Main {
		static void main() {
			print(input());
			print(input());
			print(inputInt() + inputInt());
		}
	}`, []string{"first", "second"}, []int64{20, 22})
	wantOutput(t, m, "first", "second", "42")
}

func TestShortCircuitEvaluation(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// here it would divide by zero.
	m := mustRun(t, `class Main {
		static void main() {
			int z = inputInt();
			boolean safe = z > 0 && (10 / z) > 1;
			print(safe);
		}
	}`, nil, []int64{0})
	wantOutput(t, m, "false")
}
