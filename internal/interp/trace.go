package interp

import (
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// Event is one executed instruction instance with its dynamic producer
// dependences: the instances whose values flowed into it (local
// def-use, heap store→load on the concrete location, parameter and
// return passing). Vias are call-site instances surfaced as producer
// statements without being traversed, mirroring the static slicer's
// handling of Dep.Via.
type Event struct {
	Ins  ir.Instr
	Deps []int
	Vias []int
}

type fieldKey struct {
	obj   *Object
	field *types.FieldInfo
}

type elemKey struct {
	arr *Array
	idx int64
}

// Trace records the dynamic data dependences of one execution.
type Trace struct {
	events     []Event
	lastField  map[fieldKey]int
	lastElem   map[elemKey]int
	lastStatic map[*types.FieldInfo]int
	lastLen    map[*Array]int
	lastReturn int
}

// NewTrace returns an empty trace; assign it to Machine.Trace before
// running.
func NewTrace() *Trace {
	return &Trace{
		lastField:  make(map[fieldKey]int),
		lastElem:   make(map[elemKey]int),
		lastStatic: make(map[*types.FieldInfo]int),
		lastLen:    make(map[*Array]int),
		lastReturn: -1,
	}
}

// record appends an event, dropping absent (-1) dependences.
func (t *Trace) record(ins ir.Instr, deps, vias []int) int {
	var kept []int
	for _, d := range deps {
		if d >= 0 {
			kept = append(kept, d)
		}
	}
	var keptVias []int
	for _, v := range vias {
		if v >= 0 {
			keptVias = append(keptVias, v)
		}
	}
	t.events = append(t.events, Event{Ins: ins, Deps: kept, Vias: keptVias})
	return len(t.events) - 1
}

func (t *Trace) nextInst() int { return len(t.events) }

// addDep patches a dependence onto an already-recorded event (used for
// call results, whose return dependence is known only after the callee
// finishes).
func (t *Trace) addDep(inst, dep int) {
	if inst >= 0 && dep >= 0 {
		t.events[inst].Deps = append(t.events[inst].Deps, dep)
	}
}

// Events returns the recorded instances in execution order.
func (t *Trace) Events() []Event { return t.events }

// LastInstanceOf returns the index of the last executed instance of
// ins, or -1.
func (t *Trace) LastInstanceOf(ins ir.Instr) int {
	for i := len(t.events) - 1; i >= 0; i-- {
		if t.events[i].Ins == ins {
			return i
		}
	}
	return -1
}

// DynamicThinSlice computes the dynamic thin slice from the last
// executed instance of seed: the backward closure over dynamic
// producer dependences, projected onto instructions. Via call-site
// instances are included as members without being traversed, exactly
// like the static thin slicer.
func (t *Trace) DynamicThinSlice(seed ir.Instr) map[ir.Instr]bool {
	start := t.LastInstanceOf(seed)
	out := make(map[ir.Instr]bool)
	if start < 0 {
		return out
	}
	visited := make(map[int]bool)
	stack := []int{start}
	visited[start] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ev := t.events[i]
		out[ev.Ins] = true
		for _, v := range ev.Vias {
			out[t.events[v].Ins] = true
		}
		for _, d := range ev.Deps {
			if !visited[d] {
				visited[d] = true
				stack = append(stack, d)
			}
		}
	}
	return out
}
