package interp_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
)

func machineFor(t *testing.T, src string) *interp.Machine {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return interp.New(ir.Lower(info))
}

const whileTrue = `class Main {
	static void main() {
		int x = 0;
		while (true) { x = x + 1; }
		print(x);
	}
}`

// TestFuelTerminatesInfiniteLoop is the -dynamic hang fix: executing
// while(true) must end with a truncation error instead of hanging.
func TestFuelTerminatesInfiniteLoop(t *testing.T) {
	m := machineFor(t, whileTrue)
	m.StepLimit = 50_000
	start := time.Now()
	err := m.Run("")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %v, want < 2s", elapsed)
	}
	if err == nil {
		t.Fatal("want fuel-exhaustion error, got nil")
	}
	if !interp.Truncated(err) {
		t.Fatalf("Truncated(%v) = false, want true", err)
	}
	if !budget.IsExhausted(err) {
		t.Fatalf("IsExhausted(%v) = false, want true (fuel error must wrap ErrExhausted)", err)
	}
	if p, ok := budget.PhaseOf(err); !ok || p != budget.PhaseInterp {
		t.Fatalf("PhaseOf(%v) = %q, want %q", err, p, budget.PhaseInterp)
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Errorf("error should mention the limit: %v", err)
	}
}

// TestDefaultFuelIsBounded guards the default: a fresh machine has
// fuel, so -dynamic cannot hang even when callers forget to set it.
func TestDefaultFuelIsBounded(t *testing.T) {
	m := machineFor(t, whileTrue)
	if m.StepLimit <= 0 {
		t.Fatalf("default StepLimit = %d, want > 0", m.StepLimit)
	}
	if m.MaxDepth <= 0 {
		t.Fatalf("default MaxDepth = %d, want > 0", m.MaxDepth)
	}
}

// TestDepthLimitStopsRunawayRecursion: unbounded recursion must become
// a RuntimeError, not a Go stack overflow.
func TestDepthLimitStopsRunawayRecursion(t *testing.T) {
	m := machineFor(t, `class Main {
		static int down(int n) { return Main.down(n + 1); }
		static void main() { print(Main.down(0)); }
	}`)
	m.MaxDepth = 500
	err := m.Run("")
	if err == nil {
		t.Fatal("want depth error, got nil")
	}
	if !interp.Truncated(err) {
		t.Fatalf("Truncated(%v) = false, want true", err)
	}
	if !strings.Contains(err.Error(), "depth") {
		t.Errorf("error should mention call depth: %v", err)
	}
}

// TestBudgetCancellationStopsExecution: a canceled budget context is
// noticed promptly mid-run.
func TestBudgetCancellationStopsExecution(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := machineFor(t, whileTrue)
	m.Budget = budget.New(ctx)
	start := time.Now()
	err := m.Run("")
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation noticed after %v, want < 100ms", elapsed)
	}
	if !budget.IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false, want true", err)
	}
	if !interp.Truncated(err) {
		t.Fatalf("Truncated(%v) = false, want true", err)
	}
}

// TestBudgetDeadlineStopsExecution: the wall-clock deadline bounds a
// run that still has fuel.
func TestBudgetDeadlineStopsExecution(t *testing.T) {
	m := machineFor(t, whileTrue)
	m.Budget = budget.New(nil, budget.WithTimeout(30*time.Millisecond))
	start := time.Now()
	err := m.Run("")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline noticed after %v, want well under 1s", elapsed)
	}
	if !budget.IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false, want true", err)
	}
}

// TestFinishedRunUnaffectedByLimits: generous limits leave a normal
// run untouched.
func TestFinishedRunUnaffectedByLimits(t *testing.T) {
	m := machineFor(t, `class Main { static void main() { print(41 + 1); } }`)
	m.Budget = budget.New(nil, budget.WithTimeout(5*time.Second), budget.WithSteps(1_000_000))
	if err := m.Run(""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(m.Output) != 1 || m.Output[0] != "42" {
		t.Fatalf("output = %q, want [42]", m.Output)
	}
}
