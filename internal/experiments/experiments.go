// Package experiments regenerates the paper's evaluation: Table 1
// (benchmark characteristics), Table 2 (locating injected bugs),
// Table 3 (understanding tough casts), and the §6.1 scalability
// comparison. Both cmd/experiments and the bench harness drive it.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/core"
	"thinslice/internal/inspect"
	"thinslice/internal/ir"
	"thinslice/internal/session"
)

// analyzed caches the four analysis configurations of one benchmark.
type analyzed struct {
	b    *bench.Benchmark
	sens *analyzer.Analysis
	no   *analyzer.Analysis
}

func analyzeBoth(b *bench.Benchmark) (*analyzed, error) {
	// Both configurations share one artifact store: parsing, type
	// checking, and lowering are configuration-independent, so the
	// second analysis reuses them and only re-runs points-to onward.
	store := session.NewStore()
	sens, err := analyzer.Analyze(b.Sources, analyzer.InStore(store))
	if err != nil {
		return nil, fmt.Errorf("%s (objsens): %w", b.Name, err)
	}
	no, err := analyzer.Analyze(b.Sources, analyzer.WithObjSens(false), analyzer.InStore(store))
	if err != nil {
		return nil, fmt.Errorf("%s (noobjsens): %w", b.Name, err)
	}
	return &analyzed{b: b, sens: sens, no: no}, nil
}

// Table1Row is one row of the benchmark-characteristics table.
type Table1Row struct {
	Name       string
	Classes    int // classes in the program (including the prelude)
	Methods    int // methods discovered during on-the-fly CG construction
	CGNodes    int // call graph nodes (exceeds Methods due to cloning)
	IRStmts    int // IR statements across reachable methods
	SDGNodes   int // SDG statements (scalar statements across CG clones)
	SDGEdges   int
	AnalysisMS int64
}

// Table1 computes benchmark characteristics for every benchmark.
func Table1(scale int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range bench.AllNames {
		b := bench.Generate(name, scale)
		start := time.Now()
		a, err := analyzer.Analyze(b.Sources)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Milliseconds()
		irStmts := 0
		for _, m := range a.Pts.ReachableMethods() {
			m.Instrs(func(ir.Instr) { irStmts++ })
		}
		rows = append(rows, Table1Row{
			Name:       name,
			Classes:    len(a.Info.Classes),
			Methods:    len(a.Pts.ReachableMethods()),
			CGNodes:    a.Pts.NumCGNodes(),
			IRStmts:    irStmts,
			SDGNodes:   a.Graph.NumNodes(),
			SDGEdges:   a.Graph.NumEdges(),
			AnalysisMS: elapsed,
		})
	}
	return rows, nil
}

// TaskRow is one row of Table 2 or Table 3.
type TaskRow struct {
	Name    string
	Thin    int
	Trad    int
	Ratio   float64
	Control int
	ThinNo  int // thin, NoObjSens pointer analysis
	TradNo  int // traditional, NoObjSens pointer analysis
	Found   bool
}

// Summary aggregates a task table.
type Summary struct {
	ThinTotal int
	TradTotal int
	// Ratio is total traditional inspections over total thin
	// inspections (the paper's 3.3× / 9.4× headline numbers).
	Ratio float64
}

func measureRows(as []*analyzed, pick func(*bench.Benchmark) []inspect.Task) ([]TaskRow, Summary) {
	var rows []TaskRow
	var sum Summary
	for _, a := range as {
		thin := a.sens.ThinSlicer()
		trad := core.NewTraditional(a.sens.Graph, false)
		thinNo := a.no.ThinSlicer()
		tradNo := core.NewTraditional(a.no.Graph, false)
		for _, task := range pick(a.b) {
			rt := inspect.Measure(thin, a.sens.Graph, task)
			rr := inspect.Measure(trad, a.sens.Graph, task)
			rtn := inspect.Measure(thinNo, a.no.Graph, task)
			rrn := inspect.Measure(tradNo, a.no.Graph, task)
			row := TaskRow{
				Name:    task.Name,
				Thin:    rt.Inspected,
				Trad:    rr.Inspected,
				Control: task.ControlDeps,
				ThinNo:  rtn.Inspected,
				TradNo:  rrn.Inspected,
				Found:   rt.Found && rr.Found,
			}
			if row.Thin > 0 {
				row.Ratio = float64(row.Trad) / float64(row.Thin)
			}
			sum.ThinTotal += row.Thin
			sum.TradTotal += row.Trad
			rows = append(rows, row)
		}
	}
	if sum.ThinTotal > 0 {
		sum.Ratio = float64(sum.TradTotal) / float64(sum.ThinTotal)
	}
	return rows, sum
}

// Table2 runs the debugging experiment over the SIR-like benchmarks.
func Table2(scale int) ([]TaskRow, Summary, error) {
	var as []*analyzed
	for _, name := range bench.DebugNames {
		a, err := analyzeBoth(bench.Generate(name, scale))
		if err != nil {
			return nil, Summary{}, err
		}
		as = append(as, a)
	}
	rows, sum := measureRows(as, func(b *bench.Benchmark) []inspect.Task { return b.Debug })
	return rows, sum, nil
}

// Table3 runs the tough-casts experiment over the SPEC-like benchmarks.
func Table3(scale int) ([]TaskRow, Summary, error) {
	var as []*analyzed
	for _, name := range bench.CastNames {
		a, err := analyzeBoth(bench.Generate(name, scale))
		if err != nil {
			return nil, Summary{}, err
		}
		as = append(as, a)
	}
	rows, sum := measureRows(as, func(b *bench.Benchmark) []inspect.Task { return b.Casts })
	return rows, sum, nil
}

// HopelessRow records a failure point for which slicing cannot narrow
// the search (the paper's excluded bugs).
type HopelessRow struct {
	Name string
	// SliceLines is the size of the thin slice from the failure, in
	// source lines of the benchmark file.
	SliceLines int
	// FileLines is the number of lines in the benchmark file, for
	// context.
	FileLines int
}

// Hopeless measures the excluded bugs (five in xml-security, one in
// ant).
func Hopeless(scale int) ([]HopelessRow, error) {
	var rows []HopelessRow
	for _, name := range []string{"ant", "xmlsec"} {
		b := bench.Generate(name, scale)
		a, err := analyzer.Analyze(b.Sources)
		if err != nil {
			return nil, err
		}
		thin := a.ThinSlicer()
		for _, task := range b.Hopeless {
			seeds := a.SeedsAt(task.SeedFile, task.SeedLine)
			sl := thin.Slice(seeds...)
			inFile := 0
			for _, p := range sl.Lines() {
				if p.File == b.File {
					inFile++
				}
			}
			rows = append(rows, HopelessRow{
				Name:       task.Name,
				SliceLines: inFile,
				FileLines:  strings.Count(b.Src(), "\n"),
			})
		}
	}
	return rows, nil
}

// --- rendering ---

// WriteTable1 renders Table 1 in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: benchmark characteristics\n")
	fmt.Fprintf(w, "%-10s %8s %8s %9s %9s %10s %10s %8s\n",
		"bench", "classes", "methods", "CG-nodes", "IR-stmts", "SDG-stmts", "SDG-edges", "t(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %9d %9d %10d %10d %8d\n",
			r.Name, r.Classes, r.Methods, r.CGNodes, r.IRStmts, r.SDGNodes, r.SDGEdges, r.AnalysisMS)
	}
}

// WriteTaskTable renders Table 2 or Table 3 in the paper's layout.
func WriteTaskTable(w io.Writer, title string, rows []TaskRow, sum Summary) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %6s %6s %6s %9s %14s %14s\n",
		"task", "#Thin", "#Trad", "Ratio", "#Control", "#ThinNoObjSens", "#TradNoObjSens")
	for _, r := range rows {
		note := ""
		if !r.Found {
			note = "  (!)"
		}
		fmt.Fprintf(w, "%-16s %6d %6d %6.2f %9d %14d %14d%s\n",
			r.Name, r.Thin, r.Trad, r.Ratio, r.Control, r.ThinNo, r.TradNo, note)
	}
	fmt.Fprintf(w, "%-16s %6d %6d %6.2f\n", "TOTAL", sum.ThinTotal, sum.TradTotal, sum.Ratio)
}

// WriteHopeless renders the excluded-bug report.
func WriteHopeless(w io.Writer, rows []HopelessRow) {
	fmt.Fprintf(w, "Excluded failure points (no kind of slicing helps, paper §6.2):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s thin slice spans %d source lines of %d\n",
			r.Name, r.SliceLines, r.FileLines)
	}
}
