package experiments_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
)

// TestScaleStress analyzes every benchmark at a larger generator scale,
// guarding against blowups or panics as programs grow. Skipped in
// -short mode.
func TestScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("scale stress skipped in -short mode")
	}
	for _, name := range bench.AllNames {
		t.Run(name, func(t *testing.T) {
			small := bench.Generate(name, 1)
			big := bench.Generate(name, 3)
			as, err := analyzer.Analyze(small.Sources)
			if err != nil {
				t.Fatalf("scale 1: %v", err)
			}
			ab, err := analyzer.Analyze(big.Sources)
			if err != nil {
				t.Fatalf("scale 3: %v", err)
			}
			if ab.Graph.NumNodes() <= as.Graph.NumNodes() {
				t.Errorf("scale 3 graph (%d nodes) not larger than scale 1 (%d)",
					ab.Graph.NumNodes(), as.Graph.NumNodes())
			}
			// Task lists are scale-invariant: the same bugs and casts
			// exist at every scale.
			if len(big.Debug) != len(small.Debug) || len(big.Casts) != len(small.Casts) {
				t.Error("task lists changed with scale")
			}
		})
	}
}
