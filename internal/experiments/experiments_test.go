package experiments_test

import (
	"strings"
	"testing"

	"thinslice/internal/experiments"
)

func TestTable1Shape(t *testing.T) {
	rows, err := experiments.Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	byName := map[string]experiments.Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Methods == 0 || r.SDGNodes == 0 || r.SDGEdges == 0 {
			t.Errorf("%s: empty row %+v", r.Name, r)
		}
		if r.CGNodes < r.Methods {
			t.Errorf("%s: CG nodes (%d) below method count (%d)", r.Name, r.CGNodes, r.Methods)
		}
		if r.SDGNodes < r.IRStmts {
			t.Errorf("%s: SDG statements (%d) below IR statements (%d)", r.Name, r.SDGNodes, r.IRStmts)
		}
	}
	// Container benchmarks clone: CG nodes strictly exceed methods.
	for _, name := range []string{"nanoxml", "jess", "jack"} {
		r := byName[name]
		if r.CGNodes <= r.Methods {
			t.Errorf("%s: expected cloning (CG %d vs methods %d)", name, r.CGNodes, r.Methods)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, sum, err := experiments.Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("got %d rows, want 13", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("%s: not all slicers found the bug", r.Name)
		}
		if r.Thin > r.Trad {
			t.Errorf("%s: thin (%d) above traditional (%d)", r.Name, r.Thin, r.Trad)
		}
		if r.ThinNo < r.Thin {
			t.Errorf("%s: NoObjSens thin (%d) below ObjSens thin (%d)", r.Name, r.ThinNo, r.Thin)
		}
	}
	if sum.Ratio <= 1.0 {
		t.Errorf("aggregate ratio %.2f should exceed 1 (paper: 3.3)", sum.Ratio)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, sum, err := experiments.Table3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("got %d rows, want 22 (2 mtrt + 6 jess + 4 javac + 10 jack)", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("%s: not all slicers found the invariant", r.Name)
		}
		if r.Thin > r.Trad {
			t.Errorf("%s: thin (%d) above traditional (%d)", r.Name, r.Thin, r.Trad)
		}
	}
	if sum.Ratio <= 1.5 {
		t.Errorf("aggregate ratio %.2f too low (paper: 9.4)", sum.Ratio)
	}
	// javac rows dominate the traditional side, as in the paper.
	var javacTrad, mtrtTrad int
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "javac") {
			javacTrad += r.Trad
		}
		if strings.HasPrefix(r.Name, "mtrt") {
			mtrtTrad += r.Trad
		}
	}
	if javacTrad <= mtrtTrad {
		t.Errorf("javac traditional total (%d) should dominate mtrt's (%d)", javacTrad, mtrtTrad)
	}
}

func TestHopelessReport(t *testing.T) {
	rows, err := experiments.Hopeless(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d hopeless rows, want 6 (5 xmlsec + 1 ant)", len(rows))
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "xml-security") && r.SliceLines*2 < r.FileLines {
			t.Errorf("%s: slice spans %d of %d lines — should cover most of the pipeline",
				r.Name, r.SliceLines, r.FileLines)
		}
	}
}

func TestScalabilityShape(t *testing.T) {
	rows, err := experiments.Scalability(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CSNodes < r.CINodes {
			t.Errorf("%s: CS nodes (%d) below CI nodes (%d)", r.Name, r.CSNodes, r.CINodes)
		}
		if r.CSNodes != r.CINodes+r.CSHeapParams+methodsExitSlack(r) {
			// CS nodes = instr nodes + heap params + one RetOut per
			// method; allow the identity only approximately via ≥.
			if r.CSNodes < r.CINodes {
				t.Errorf("%s: inconsistent node accounting %+v", r.Name, r)
			}
		}
	}
	// The container-heavy benchmarks blow up hardest.
	byName := map[string]experiments.ScalRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	blowup := func(r experiments.ScalRow) float64 { return float64(r.CSNodes) / float64(r.CINodes) }
	if blowup(byName["nanoxml"]) < 2 {
		t.Errorf("nanoxml blowup too small: %.1f", blowup(byName["nanoxml"]))
	}
	if blowup(byName["javac"]) < 2 {
		t.Errorf("javac blowup too small: %.1f", blowup(byName["javac"]))
	}
}

func methodsExitSlack(r experiments.ScalRow) int {
	return r.CSNodes - r.CINodes - r.CSHeapParams // RetOut nodes
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	rows, _ := experiments.Table1(1)
	experiments.WriteTable1(&b, rows)
	if !strings.Contains(b.String(), "nanoxml") || !strings.Contains(b.String(), "SDG-stmts") {
		t.Error("Table 1 rendering incomplete")
	}
	b.Reset()
	trows, sum, _ := experiments.Table2(1)
	experiments.WriteTaskTable(&b, "Table 2", trows, sum)
	out := b.String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "jtopas-1") {
		t.Error("Table 2 rendering incomplete")
	}
}
