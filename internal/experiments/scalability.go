package experiments

import (
	"fmt"
	"io"
	"time"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/csslice"
	"thinslice/internal/ir"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/sdg"
)

// ScalRow compares the context-insensitive dependence graph (§5.2,
// direct heap edges) against the context-sensitive SDG with heap
// parameters (§5.3) on one benchmark. The paper's observation is that
// heap parameter nodes explode as programs grow while the CI variant
// stays near-linear.
type ScalRow struct {
	Name string

	CINodes   int
	CIEdges   int
	CIBuildMS int64
	// CIBuildParMS is the same build over a GOMAXPROCS worker pool
	// (byte-identical output; see sdg.BuildWorkers).
	CIBuildParMS int64
	// CISliceUS is the time for one thin slice over the CI graph, in
	// microseconds ("insignificant compared to the pointer analysis").
	CISliceUS int64

	CSNodes      int
	CSHeapParams int
	CSEdges      int
	CSBuildMS    int64
	// CSSummaryMS is the tabulation summary precomputation time.
	CSSummaryMS int64
}

// Scalability measures both graph variants on every benchmark.
func Scalability(scale int) ([]ScalRow, error) {
	var rows []ScalRow
	for _, name := range bench.AllNames {
		b := bench.Generate(name, scale)
		a, err := analyzer.Analyze(b.Sources)
		if err != nil {
			return nil, err
		}
		row := ScalRow{Name: name}

		start := time.Now()
		g := sdg.Build(a.Prog, a.Pts)
		row.CIBuildMS = time.Since(start).Milliseconds()
		row.CINodes = g.NumNodes()
		row.CIEdges = g.NumEdges()

		start = time.Now()
		if _, err := sdg.BuildWorkers(a.Prog, a.Pts, nil, 0); err != nil {
			return nil, err
		}
		row.CIBuildParMS = time.Since(start).Milliseconds()

		seed := representativeSeed(a)
		if seed != nil {
			start = time.Now()
			a.ThinSlicer().Slice(seed)
			row.CISliceUS = time.Since(start).Microseconds()
		}

		start = time.Now()
		mr := modref.Compute(a.Prog, a.Pts)
		cs := csslice.Build(a.Prog, a.Pts, mr)
		row.CSBuildMS = time.Since(start).Milliseconds()
		row.CSNodes = cs.NumNodes()
		row.CSHeapParams = cs.NumHeapParamNodes()
		row.CSEdges = cs.NumEdges()

		start = time.Now()
		csslice.NewSlicer(cs, true, false)
		row.CSSummaryMS = time.Since(start).Milliseconds()

		rows = append(rows, row)
	}
	return rows, nil
}

// representativeSeed picks a deterministic seed statement: the first
// Print in an entry method, else any Print.
func representativeSeed(a *analyzer.Analysis) ir.Instr {
	var seed ir.Instr
	for _, m := range a.Pts.Entries() {
		m.Instrs(func(ins ir.Instr) {
			if seed == nil {
				if _, ok := ins.(*ir.Print); ok {
					seed = ins
				}
			}
		})
		if seed != nil {
			return seed
		}
	}
	for _, m := range a.Pts.ReachableMethods() {
		m.Instrs(func(ins ir.Instr) {
			if seed == nil {
				if _, ok := ins.(*ir.Print); ok {
					seed = ins
				}
			}
		})
		if seed != nil {
			break
		}
	}
	return seed
}

// WriteScalability renders the comparison.
func WriteScalability(w io.Writer, rows []ScalRow) {
	fmt.Fprintf(w, "Scalability (§6.1): CI direct-heap-edge graph vs CS SDG with heap parameters\n")
	fmt.Fprintf(w, "%-10s | %9s %9s %7s %8s %9s | %9s %10s %9s %7s %9s\n",
		"bench", "CI-nodes", "CI-edges", "t(ms)", "tpar(ms)", "slice(us)",
		"CS-nodes", "heapparams", "CS-edges", "t(ms)", "summ(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %9d %9d %7d %8d %9d | %9d %10d %9d %7d %9d\n",
			r.Name, r.CINodes, r.CIEdges, r.CIBuildMS, r.CIBuildParMS, r.CISliceUS,
			r.CSNodes, r.CSHeapParams, r.CSEdges, r.CSBuildMS, r.CSSummaryMS)
	}
}

// noObjSensPointsTo exists for ablation benches: a pointer analysis at
// reduced precision over the same program.
func noObjSensPointsTo(a *analyzer.Analysis) *pointsto.Result {
	// No budget: the ablation run is unbounded, so Analyze cannot fail.
	res, err := pointsto.Analyze(a.Prog, pointsto.Config{
		ObjSensContainers: false,
		ContainerClasses:  prelude.ContainerClasses,
	})
	if err != nil {
		panic(err)
	}
	return res
}
