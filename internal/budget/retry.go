package budget

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryConfig shapes Retry's backoff. The zero value is usable: 3
// attempts, 10ms base delay doubling to a 1s cap, full jitter, and
// only *ErrInternal treated as transient.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3, minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per retry up to MaxDelay (default 1s). The actual
	// delay is jittered uniformly over [delay/2, delay) so synchronized
	// clients (a batch fan-out) don't retry in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Retryable decides which errors are transient. Nil retries only
	// *ErrInternal: exhaustion and cancellation are deterministic for
	// a given budget, and analysis errors (parse/type) are properties
	// of the input — retrying either just burns the budget.
	Retryable func(error) bool
	// Sleep overrides the backoff sleep, for tests (default: a
	// context-aware wait).
	Sleep func(context.Context, time.Duration) error
}

// Retry runs op until it succeeds, returns a non-retryable error, the
// attempts are spent, or ctx is done. op receives the 1-based attempt
// number. On context cancellation mid-backoff the returned error joins
// the context error with the last attempt's error, so both
// errors.Is(err, context.Canceled) and the typed budget predicates
// keep working.
func Retry(ctx context.Context, cfg RetryConfig, op func(attempt int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := cfg.MaxAttempts
	if attempts < 1 {
		attempts = 3
	}
	base := cfg.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxDelay := cfg.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	retryable := cfg.Retryable
	if retryable == nil {
		retryable = func(err error) bool {
			var internal *ErrInternal
			return errors.As(err, &internal)
		}
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	var lastErr error
	delay := base
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, lastErr)
		}
		lastErr = op(attempt)
		if lastErr == nil {
			return nil
		}
		if attempt >= attempts || !retryable(lastErr) {
			return lastErr
		}
		jittered := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if err := sleep(ctx, jittered); err != nil {
			return errors.Join(err, lastErr)
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}
