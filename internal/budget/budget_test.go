package budget_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"thinslice/internal/budget"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *budget.Budget
	m := b.Phase(budget.PhasePointsTo)
	for i := 0; i < 10_000; i++ {
		if err := m.Tick(); err != nil {
			t.Fatalf("nil meter ticked with error: %v", err)
		}
	}
	if err := b.Err(budget.PhaseSDG); err != nil {
		t.Fatalf("nil budget Err: %v", err)
	}
	if m.Spent() != 0 {
		t.Fatalf("nil meter Spent = %d", m.Spent())
	}
}

func TestStepExhaustion(t *testing.T) {
	b := budget.New(context.Background(), budget.WithSteps(100))
	m := b.Phase(budget.PhaseSlice)
	var err error
	ticks := 0
	for err == nil {
		err = m.Tick()
		ticks++
		if ticks > 1000 {
			t.Fatal("meter never exhausted")
		}
	}
	if !budget.IsExhausted(err) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	var ex *budget.ErrExhausted
	errors.As(err, &ex)
	if ex.Phase != budget.PhaseSlice || ex.Limit != 100 {
		t.Fatalf("bad exhaustion tag: %+v", ex)
	}
	if p, ok := budget.PhaseOf(err); !ok || p != budget.PhaseSlice {
		t.Fatalf("PhaseOf = %v, %v", p, ok)
	}
}

func TestPerPhaseLimitsOverrideDefault(t *testing.T) {
	b := budget.New(context.Background(),
		budget.WithSteps(5), budget.WithPhaseSteps(budget.PhaseSDG, 0))
	if err := b.Phase(budget.PhaseSDG).TickN(1000); err != nil {
		t.Fatalf("uncapped phase errored: %v", err)
	}
	if err := b.Phase(budget.PhaseSlice).TickN(1000); !budget.IsExhausted(err) {
		t.Fatalf("capped phase did not exhaust: %v", err)
	}
}

func TestCancellationDetectedOnFirstTick(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := budget.New(ctx)
	err := b.Phase(budget.PhasePointsTo).Tick()
	if !budget.IsCanceled(err) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	var ce *budget.ErrCanceled
	errors.As(err, &ce)
	if ce.Phase != budget.PhasePointsTo || !errors.Is(err, context.Canceled) {
		t.Fatalf("bad cancellation tag: %+v", ce)
	}
}

func TestDeadlinePromptness(t *testing.T) {
	b := budget.New(context.Background(), budget.WithTimeout(20*time.Millisecond))
	m := b.Phase(budget.PhaseInterp)
	start := time.Now()
	var err error
	for err == nil && time.Since(start) < 2*time.Second {
		err = m.Tick()
	}
	elapsed := time.Since(start)
	if !budget.IsCanceled(err) {
		t.Fatalf("want ErrCanceled on deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should be DeadlineExceeded: %v", err)
	}
	if elapsed > 120*time.Millisecond {
		t.Fatalf("deadline noticed after %v, want ~20ms (+100ms slack)", elapsed)
	}
}

func TestContextDeadlineTightensBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(10*time.Millisecond))
	defer cancel()
	b := budget.New(ctx, budget.WithTimeout(time.Hour))
	time.Sleep(15 * time.Millisecond)
	if err := b.Err(budget.PhaseLoad); !budget.IsCanceled(err) {
		t.Fatalf("context deadline ignored: %v", err)
	}
}

func TestFreshMeterPerPhaseCall(t *testing.T) {
	b := budget.New(context.Background(), budget.WithSteps(10))
	if err := b.Phase(budget.PhasePointsTo).TickN(11); !budget.IsExhausted(err) {
		t.Fatal("first meter should exhaust")
	}
	// A retry (e.g. the degraded context-insensitive run) gets a fresh
	// allowance.
	if err := b.Phase(budget.PhasePointsTo).TickN(10); err != nil {
		t.Fatalf("fresh meter should not start exhausted: %v", err)
	}
}
