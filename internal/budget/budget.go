// Package budget bounds the work every analysis phase may perform.
// A Budget wraps a context.Context with an optional wall-clock deadline
// and per-phase step caps; phases draw a Meter and call Tick() in their
// hot loops. Exhaustion and cancellation surface as distinct typed,
// phase-tagged errors, letting callers degrade gracefully (retry at
// lower precision, return a partial result flagged Truncated) instead
// of hanging or dying — the practical concern paper §5 raises when the
// context-sensitive analyses exhaust memory on the large benchmarks.
//
// A nil *Budget (and the nil *Meter it hands out) is valid and means
// "unlimited": pipeline stages accept a budget without forcing every
// caller to construct one.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Phase names a pipeline stage for error attribution.
type Phase string

// Pipeline phases, in execution order.
const (
	PhaseLoad     Phase = "load"     // parse + type check
	PhaseLower    Phase = "lower"    // AST → SSA IR
	PhaseVerify   Phase = "verify"   // IR invariant verification
	PhasePointsTo Phase = "pointsto" // Andersen solver
	PhaseSDG      Phase = "sdg"      // dependence graph construction
	PhaseDataflow Phase = "dataflow" // IFDS interprocedural dataflow solve
	PhaseSlice    Phase = "slice"    // backward slice closure
	PhaseExpand   Phase = "expand"   // hierarchical expansion
	PhaseCheck    Phase = "check"    // checker suite
	PhaseInterp   Phase = "interp"   // dynamic execution
)

// ErrExhausted reports that a phase spent its step cap. Work bounded
// this way can usually continue degraded (fewer contexts, partial
// result); it is distinct from cancellation.
type ErrExhausted struct {
	Phase Phase
	Limit int64
	Spent int64
}

func (e *ErrExhausted) Error() string {
	return fmt.Sprintf("budget: %s exhausted %d-step limit (spent %d)", e.Phase, e.Limit, e.Spent)
}

// ErrCanceled reports that the context was canceled or the wall-clock
// deadline passed while a phase was running. Cause is the context
// error (context.Canceled or context.DeadlineExceeded).
type ErrCanceled struct {
	Phase Phase
	Cause error
}

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("budget: %s canceled: %v", e.Phase, e.Cause)
}

func (e *ErrCanceled) Unwrap() error { return e.Cause }

// ErrInternal is an internal panic converted to an error at the facade
// boundary, tagged with the phase that was running.
type ErrInternal struct {
	Phase Phase
	Value any
	Stack []byte
}

func (e *ErrInternal) Error() string {
	return fmt.Sprintf("budget: internal error in %s: %v", e.Phase, e.Value)
}

// IsExhausted reports whether err is (or wraps) an ErrExhausted.
func IsExhausted(err error) bool {
	var e *ErrExhausted
	return errors.As(err, &e)
}

// IsCanceled reports whether err is (or wraps) an ErrCanceled.
func IsCanceled(err error) bool {
	var e *ErrCanceled
	return errors.As(err, &e)
}

// PhaseOf extracts the phase tag of a budget error, if any.
func PhaseOf(err error) (Phase, bool) {
	var ex *ErrExhausted
	if errors.As(err, &ex) {
		return ex.Phase, true
	}
	var ca *ErrCanceled
	if errors.As(err, &ca) {
		return ca.Phase, true
	}
	var in *ErrInternal
	if errors.As(err, &in) {
		return in.Phase, true
	}
	return "", false
}

// Budget is a shared allowance for one pipeline run. Phases draw
// Meters from it; the context and deadline are common to all phases
// while step caps are per-phase.
type Budget struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	limits      map[Phase]int64
	defLimit    int64 // 0 = unlimited
}

// Option configures a Budget.
type Option func(*Budget)

// WithSteps caps every phase at n steps (0 = unlimited). Per-phase
// limits set with WithPhaseSteps take precedence.
func WithSteps(n int64) Option { return func(b *Budget) { b.defLimit = n } }

// WithPhaseSteps caps one phase at n steps (0 = unlimited).
func WithPhaseSteps(p Phase, n int64) Option {
	return func(b *Budget) { b.limits[p] = n }
}

// WithTimeout sets a wall-clock deadline d from now. The deadline is
// checked by Tick; unlike context.WithTimeout it needs no cleanup and
// keeps the budget a plain value.
func WithTimeout(d time.Duration) Option {
	return func(b *Budget) { b.deadline, b.hasDeadline = time.Now().Add(d), true }
}

// WithDeadline sets an absolute wall-clock deadline.
func WithDeadline(t time.Time) Option {
	return func(b *Budget) { b.deadline, b.hasDeadline = t, true }
}

// New builds a budget over ctx. A nil ctx means context.Background().
func New(ctx context.Context, opts ...Option) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, limits: make(map[Phase]int64)}
	for _, o := range opts {
		o(b)
	}
	if d, ok := ctx.Deadline(); ok && (!b.hasDeadline || d.Before(b.deadline)) {
		b.deadline, b.hasDeadline = d, true
	}
	return b
}

// limitFor returns the step cap for a phase (0 = unlimited).
func (b *Budget) limitFor(p Phase) int64 {
	if n, ok := b.limits[p]; ok {
		return n
	}
	return b.defLimit
}

// checkEvery is how many ticks pass between context/deadline checks,
// keeping Tick a couple of integer operations on the fast path while
// still noticing cancellation within well under 100ms (a check every
// 256 solver/BFS steps is microseconds of latency).
const checkEvery = 256

// Phase draws a fresh meter for phase p. Each call restarts the step
// count — a degraded retry of a phase gets its full allowance again.
// Nil-safe: a nil budget yields a nil (unlimited) meter.
func (b *Budget) Phase(p Phase) *Meter {
	if b == nil {
		return nil
	}
	return &Meter{b: b, phase: p, limit: b.limitFor(p)}
}

// Limited reports whether phase p runs under a step cap (as opposed to
// only cancellation/deadline checks). Parallel construction phases use
// this to fall back to their sequential form: deterministic truncation
// under a step cap requires the sequential tick interleaving. Nil-safe.
func (b *Budget) Limited(p Phase) bool {
	return b != nil && b.limitFor(p) > 0
}

// Err checks cancellation and deadline only (no step spend) — for
// phase boundaries and code outside hot loops. Nil-safe.
func (b *Budget) Err(p Phase) error {
	if b == nil {
		return nil
	}
	return b.cancelErr(p)
}

func (b *Budget) cancelErr(p Phase) error {
	select {
	case <-b.ctx.Done():
		return &ErrCanceled{Phase: p, Cause: b.ctx.Err()}
	default:
	}
	if b.hasDeadline && time.Now().After(b.deadline) {
		return &ErrCanceled{Phase: p, Cause: context.DeadlineExceeded}
	}
	return nil
}

// Context returns the underlying context (context.Background() for a
// nil budget).
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Meter is a phase-scoped step counter. Not safe for concurrent use;
// each goroutine should draw its own.
type Meter struct {
	b     *Budget
	phase Phase
	limit int64
	spent int64
	until int64 // ticks remaining before the next cancellation check
}

// Tick spends one step. It returns a typed error once the phase limit
// is exhausted or the budget's context/deadline fires. Nil-safe: a nil
// meter never errs.
func (m *Meter) Tick() error { return m.TickN(1) }

// TickN spends n steps at once (for stages whose unit of work is a
// batch, e.g. all out-edges of a node).
func (m *Meter) TickN(n int64) error {
	if m == nil {
		return nil
	}
	m.spent += n
	if m.limit > 0 && m.spent > m.limit {
		return &ErrExhausted{Phase: m.phase, Limit: m.limit, Spent: m.spent}
	}
	m.until -= n
	if m.until <= 0 {
		m.until = checkEvery
		return m.b.cancelErr(m.phase)
	}
	return nil
}

// Err checks cancellation/deadline without spending a step.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	return m.b.cancelErr(m.phase)
}

// Spent returns the steps consumed so far.
func (m *Meter) Spent() int64 {
	if m == nil {
		return 0
	}
	return m.spent
}

// PhaseName returns the meter's phase ("" for a nil meter).
func (m *Meter) PhaseName() Phase {
	if m == nil {
		return ""
	}
	return m.phase
}
