package budget_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"thinslice/internal/budget"
)

var errInjected = &budget.ErrInternal{Phase: budget.PhaseSlice, Value: "boom"}

// fakeSleep records requested delays and never actually sleeps.
type fakeSleep struct{ delays []time.Duration }

func (f *fakeSleep) sleep(_ context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return nil
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := budget.Retry(context.Background(), budget.RetryConfig{MaxAttempts: 5, Sleep: fs.sleep}, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d reported as %d", calls, attempt)
		}
		if calls < 3 {
			return errInjected
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want success", err)
	}
	if calls != 3 || len(fs.delays) != 2 {
		t.Fatalf("calls = %d, sleeps = %d; want 3 calls, 2 sleeps", calls, len(fs.delays))
	}
}

func TestRetryMaxAttemptsReturnsLastError(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := budget.Retry(context.Background(), budget.RetryConfig{MaxAttempts: 3, Sleep: fs.sleep}, func(int) error {
		calls++
		return errInjected
	})
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	var internal *budget.ErrInternal
	if !errors.As(err, &internal) {
		t.Fatalf("Retry = %v, want the last *budget.ErrInternal", err)
	}
}

// TestRetryNonRetryableStopsImmediately: errors outside the Retryable
// predicate (default: anything but *ErrInternal) end the loop at once.
func TestRetryNonRetryableStopsImmediately(t *testing.T) {
	calls := 0
	exhausted := &budget.ErrExhausted{Phase: budget.PhaseSlice, Limit: 1, Spent: 2}
	err := budget.Retry(context.Background(), budget.RetryConfig{MaxAttempts: 5}, func(int) error {
		calls++
		return exhausted
	})
	if calls != 1 {
		t.Fatalf("non-retryable error retried %d times", calls)
	}
	if !budget.IsExhausted(err) {
		t.Fatalf("Retry = %v, want the ErrExhausted back", err)
	}
}

// TestRetryContextCancelDuringBackoff: cancellation mid-backoff aborts
// promptly with an error carrying both the context error and the last
// attempt's typed error.
func TestRetryContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	err := budget.Retry(ctx, budget.RetryConfig{MaxAttempts: 10, BaseDelay: time.Hour}, func(int) error {
		calls++
		cancel() // fires before the first backoff sleep
		return errInjected
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Retry slept through cancellation (%v)", elapsed)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancellation, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled in the chain", err)
	}
	var internal *budget.ErrInternal
	if !errors.As(err, &internal) {
		t.Fatalf("Retry = %v, want the last attempt's error joined in", err)
	}
}

// TestRetryPreCancelledContext: a context already done runs op zero
// times.
func TestRetryPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := budget.Retry(ctx, budget.RetryConfig{}, func(int) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls = %d, err = %v; want 0 calls and context.Canceled", calls, err)
	}
}

// TestRetryBackoffDoublesWithJitter: requested sleeps stay within
// [delay/2, delay] as the delay doubles to its cap.
func TestRetryBackoffDoublesWithJitter(t *testing.T) {
	fs := &fakeSleep{}
	cfg := budget.RetryConfig{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Sleep:       fs.sleep,
	}
	_ = budget.Retry(context.Background(), cfg, func(int) error { return errInjected })
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond, 250 * time.Millisecond}
	if len(fs.delays) != len(want) {
		t.Fatalf("slept %d times, want %d", len(fs.delays), len(want))
	}
	for i, d := range fs.delays {
		if d < want[i]/2 || d > want[i] {
			t.Fatalf("sleep %d = %v, want within [%v, %v]", i, d, want[i]/2, want[i])
		}
	}
}

// TestRetryJitterIsFullJitterDistribution samples many independent
// backoff draws and checks the jitter actually spreads over the
// [delay/2, delay] window rather than collapsing to a constant: every
// draw is in bounds, and the observed spread covers a meaningful part
// of the window. (With 200 draws, the odds of all landing in one half
// of the window are ~2^-200 — a failure means the jitter is broken,
// not unlucky.)
func TestRetryJitterIsFullJitterDistribution(t *testing.T) {
	const base = 100 * time.Millisecond
	var draws []time.Duration
	for i := 0; i < 200; i++ {
		fs := &fakeSleep{}
		cfg := budget.RetryConfig{MaxAttempts: 2, BaseDelay: base, Sleep: fs.sleep}
		_ = budget.Retry(context.Background(), cfg, func(int) error { return errInjected })
		if len(fs.delays) != 1 {
			t.Fatalf("draw %d: slept %d times, want 1", i, len(fs.delays))
		}
		draws = append(draws, fs.delays[0])
	}
	lo, hi := draws[0], draws[0]
	for _, d := range draws {
		if d < base/2 || d > base {
			t.Fatalf("jittered sleep %v outside [%v, %v]", d, base/2, base)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if spread := hi - lo; spread < base/4 {
		t.Fatalf("jitter collapsed: 200 draws span only %v of the %v window (lo %v, hi %v)", spread, base/2, lo, hi)
	}
}

// TestRetryRealSleeperHonoursCancellation exercises the default
// sleeper (no injected Sleep): a cancellation arriving mid-backoff
// returns promptly instead of sleeping out the full delay.
func TestRetryRealSleeperHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := budget.Retry(ctx, budget.RetryConfig{MaxAttempts: 3, BaseDelay: time.Hour}, func(int) error {
		return errInjected
	})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("real sleeper ignored cancellation: took %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled joined in", err)
	}
	var internal *budget.ErrInternal
	if !errors.As(err, &internal) {
		t.Fatalf("Retry = %v, want the last attempt's typed error joined in", err)
	}
}

// TestRetryContextDeadlineDuringBackoff: a deadline (not an explicit
// cancel) expiring during backoff surfaces context.DeadlineExceeded.
func TestRetryContextDeadlineDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	err := budget.Retry(ctx, budget.RetryConfig{MaxAttempts: 5, BaseDelay: time.Hour}, func(int) error {
		calls++
		return errInjected
	})
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Retry = %v, want context.DeadlineExceeded in the chain", err)
	}
}
