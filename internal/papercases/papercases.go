// Package papercases encodes the paper's running examples (Figures 1,
// 2, 4, and 5) as programs in our source language, with helpers to
// locate their interesting lines. Tests, examples, and documentation
// all reference these programs, so the paper's walkthroughs can be
// checked mechanically.
package papercases

import (
	"fmt"
	"strings"
)

// FirstNamesFile names the Figure 1 source.
const FirstNamesFile = "firstnames.mj"

// FirstNames is Figure 1: full names are read, first names extracted
// (with an off-by-one bug) and stored in a Vector; a web-session-style
// indirection later retrieves and prints them. The thin slice from the
// print leads straight to the buggy substring.
const FirstNames = `class Names {
    Vector readNames(int n) {
        Vector firstNames = new Vector();
        int i = 0;
        while (i < n) {
            string fullName = input();
            int spaceInd = fullName.indexOf(" ");
            string firstName = fullName.substring(0, spaceInd - 1); // BUG: off by one
            firstNames.add(firstName);
            i = i + 1;
        }
        return firstNames;
    }
    void printNames(Vector firstNames) {
        int i = 0;
        while (i < firstNames.size()) {
            string firstName = (string) firstNames.get(i);
            print("FIRST NAME: " + firstName); // SEED
            i = i + 1;
        }
    }
}
class SessionState {
    Vector names;
    SessionState() { }
    void setNames(Vector v) { this.names = v; }
    Vector getNames() { return this.names; }
}
class Main {
    static SessionState state;
    static SessionState getState() {
        if (Main.state == null) {
            Main.state = new SessionState();
        }
        return Main.state;
    }
    static void main() {
        Names app = new Names();
        Vector firstNames = app.readNames(inputInt());
        SessionState s = getState();
        s.setNames(firstNames);
        SessionState t = getState();
        app.printNames(t.getNames());
    }
}
`

// ToyFile names the Figure 2 source.
const ToyFile = "toy.mj"

// Toy is Figure 2: the minimal heap-flow example. The thin slice for
// the read of z.f is {store w.f = y, alloc of y, seed}; the statements
// establishing the aliasing of w and z and the branch are explainers.
const Toy = `class A2 {
    Object f;
    A2() { }
}
class Main {
    static void main() {
        A2 x = new A2(); // L1
        A2 z = x; // L2
        Object y = new Object(); // L3
        A2 w = x; // L4
        w.f = y; // L5
        if (w == z) { // L6
            Object v = z.f; // L7 (seed)
            print(v);
        }
    }
}
`

// FileBugFile names the Figure 4 source.
const FileBugFile = "filebug.mj"

// FileBug is Figure 4: a File is stored in a Vector, retrieved and
// erroneously closed, then retrieved again and read, throwing. The
// debugging session needs one control dependence (the guard of the
// throw) and one aliasing explanation (which File reaches close()).
const FileBug = `class ClosedException {
    ClosedException() { }
}
class File {
    boolean open;
    File() {
        this.open = true; // OPEN
    }
    boolean isOpen() {
        return this.open; // READ
    }
    void close() {
        this.open = false; // CLOSE
    }
}
class Main {
    static void readFromFile(File f) {
        boolean open = f.isOpen(); // CHECK
        if (!open) { // GUARD
            throw new ClosedException(); // THROW (failure)
        }
    }
    static void main() {
        File f = new File(); // NEWFILE
        Vector files = new Vector(); // NEWVEC
        files.add(f); // ADD
        File g = (File) files.get(0); // GET1
        g.close(); // CLOSECALL
        File h = (File) files.get(0); // GET2
        readFromFile(h); // READCALL
    }
}
`

// ToughCastFile names the Figure 5 source.
const ToughCastFile = "toughcast.mj"

// ToughCast is Figure 5: a javac-style opcode-field invariant makes a
// downcast safe in ways pointer analysis cannot verify. Understanding
// it requires one control dependence (the switch guard) and a thin
// slice of the opcode field.
const ToughCast = `class Node {
    int op;
    Node(int op) {
        this.op = op; // SETOP
    }
}
class AddNode extends Node {
    int lhs;
    AddNode() {
        super(1); // ADDOP
    }
}
class SubNode extends Node {
    SubNode() {
        super(2); // SUBOP
    }
}
class Main {
    static void simplify(Node n) {
        int op = n.op; // READOP
        if (op == 1) { // GUARD
            AddNode add = (AddNode) n; // CAST (tough)
            print(add.lhs);
        }
    }
    static void main() {
        Node a = new AddNode();
        Node b = new SubNode();
        simplify(a);
        simplify(b);
    }
}
`

// Line returns the 1-based line number of the first source line
// containing marker; it panics when the marker is missing, since the
// cases are fixed constants.
func Line(src, marker string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	panic(fmt.Sprintf("papercases: marker %q not found", marker))
}
