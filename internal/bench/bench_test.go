package bench_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/inspect"
	"thinslice/internal/ir"
)

func analyzeBench(t *testing.T, b *bench.Benchmark, objSens bool) *analyzer.Analysis {
	t.Helper()
	opts := []analyzer.Option{}
	if !objSens {
		opts = append(opts, analyzer.WithObjSens(false))
	}
	a, err := analyzer.Analyze(b.Sources, opts...)
	if err != nil {
		t.Fatalf("%s: analyze: %v", b.Name, err)
	}
	return a
}

func TestAllBenchmarksLoadAndAnalyze(t *testing.T) {
	for _, b := range bench.All() {
		a := analyzeBench(t, b, true)
		if a.Graph.NumNodes() == 0 {
			t.Errorf("%s: empty graph", b.Name)
		}
		if len(a.Pts.Entries()) == 0 {
			t.Errorf("%s: no entry points", b.Name)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	for _, name := range bench.AllNames {
		a := bench.Generate(name, 1)
		b := bench.Generate(name, 1)
		if a.Src() != b.Src() {
			t.Errorf("%s: generation not deterministic", name)
		}
		if len(a.Debug) != len(b.Debug) || len(a.Casts) != len(b.Casts) {
			t.Errorf("%s: task lists differ", name)
		}
	}
}

func TestScaleGrowsPrograms(t *testing.T) {
	for _, name := range bench.AllNames {
		small := bench.Generate(name, 1)
		big := bench.Generate(name, 3)
		if len(big.Src()) <= len(small.Src()) {
			t.Errorf("%s: scale 3 not larger than scale 1", name)
		}
	}
}

func TestTaskCounts(t *testing.T) {
	counts := map[string]struct{ debug, casts, hopeless int }{
		"nanoxml": {6, 0, 0},
		"jtopas":  {2, 0, 0},
		"ant":     {4, 0, 1},
		"xmlsec":  {1, 0, 5},
		"mtrt":    {0, 2, 0},
		"jess":    {0, 6, 0},
		"javac":   {0, 4, 0},
		"jack":    {0, 10, 0},
	}
	for _, b := range bench.All() {
		want := counts[b.Name]
		if len(b.Debug) != want.debug || len(b.Casts) != want.casts || len(b.Hopeless) != want.hopeless {
			t.Errorf("%s: got %d/%d/%d tasks, want %d/%d/%d", b.Name,
				len(b.Debug), len(b.Casts), len(b.Hopeless),
				want.debug, want.casts, want.hopeless)
		}
	}
}

// TestDebugTasksSolvable checks that, as in Table 2, both slicers find
// the buggy statement for every debugging task and thin never needs
// more inspections than traditional.
func TestDebugTasksSolvable(t *testing.T) {
	for _, name := range bench.DebugNames {
		b := bench.Generate(name, 1)
		a := analyzeBench(t, b, true)
		thin := a.ThinSlicer()
		trad := a.TraditionalSlicer(false)
		for _, task := range b.Debug {
			rt := inspect.Measure(thin, a.Graph, task)
			rr := inspect.Measure(trad, a.Graph, task)
			if !rt.Found {
				t.Errorf("%s: thin did not find the bug (visited %d)", task.Name, rt.Inspected)
				continue
			}
			if !rr.Found {
				t.Errorf("%s: traditional did not find the bug", task.Name)
				continue
			}
			if rt.Inspected > rr.Inspected {
				t.Errorf("%s: thin=%d > traditional=%d", task.Name, rt.Inspected, rr.Inspected)
			}
		}
	}
}

// TestCastTasksSolvable checks the Table 3 equivalents.
func TestCastTasksSolvable(t *testing.T) {
	for _, name := range bench.CastNames {
		b := bench.Generate(name, 1)
		a := analyzeBench(t, b, true)
		thin := a.ThinSlicer()
		trad := a.TraditionalSlicer(false)
		for _, task := range b.Casts {
			rt := inspect.Measure(thin, a.Graph, task)
			rr := inspect.Measure(trad, a.Graph, task)
			if !rt.Found {
				t.Errorf("%s: thin did not find the invariant (visited %d)", task.Name, rt.Inspected)
				continue
			}
			if !rr.Found {
				t.Errorf("%s: traditional did not find the invariant", task.Name)
				continue
			}
			if rt.Inspected > rr.Inspected {
				t.Errorf("%s: thin=%d > traditional=%d", task.Name, rt.Inspected, rr.Inspected)
			}
		}
	}
}

// TestMeasuredCastsAreTough verifies that every Table 3 cast is indeed
// unverifiable by the pointer analysis with a non-empty points-to set.
func TestMeasuredCastsAreTough(t *testing.T) {
	for _, name := range bench.CastNames {
		b := bench.Generate(name, 1)
		a := analyzeBench(t, b, true)
		for _, task := range b.Casts {
			var cast *ir.Cast
			for _, ins := range a.SeedsAt(task.SeedFile, task.SeedLine) {
				if c, ok := ins.(*ir.Cast); ok {
					cast = c
				}
			}
			if cast == nil {
				t.Errorf("%s: no cast at seed line", task.Name)
				continue
			}
			verified, nonEmpty := a.Pts.CastCheckable(cast)
			if verified || !nonEmpty {
				t.Errorf("%s: cast not tough (verified=%t nonEmpty=%t)", task.Name, verified, nonEmpty)
			}
		}
	}
}

// TestNoObjSensInflatesContainerTasks checks the ThinNoObjSens columns:
// for the container-mediated tasks, turning off object-sensitive
// container handling inflates the thin inspection count.
func TestNoObjSensInflatesContainerTasks(t *testing.T) {
	containerTasks := map[string][]string{
		"nanoxml": {"nanoxml-2", "nanoxml-3"},
		"jack":    {"jack-1", "jack-2"},
	}
	for name, taskNames := range containerTasks {
		b := bench.Generate(name, 1)
		aSens := analyzeBench(t, b, true)
		aNo := analyzeBench(t, b, false)
		want := map[string]bool{}
		for _, n := range taskNames {
			want[n] = true
		}
		for _, task := range append(append([]inspect.Task{}, b.Debug...), b.Casts...) {
			if !want[task.Name] {
				continue
			}
			sens := inspect.Measure(aSens.ThinSlicer(), aSens.Graph, task)
			no := inspect.Measure(aNo.ThinSlicer(), aNo.Graph, task)
			if !sens.Found {
				t.Errorf("%s: objsens thin did not find desired", task.Name)
				continue
			}
			if !no.Found {
				// Acceptable: without precision the desired statement
				// may drown entirely; it still counts as inflation.
				continue
			}
			if no.Inspected <= sens.Inspected {
				t.Errorf("%s: NoObjSens (%d) should inflate over ObjSens (%d)",
					task.Name, no.Inspected, sens.Inspected)
			}
		}
	}
}

// TestHopelessTasksDragInThePipeline verifies the paper's observation
// for the excluded bugs: slicing cannot narrow them down — the slice
// from the failing assertion contains most of the computation (§6.2:
// "slicing from this assertion failure will inevitably bring in most
// or all of the code that computes the hash function").
func TestHopelessTasksDragInThePipeline(t *testing.T) {
	minLines := map[string]int{"xmlsec": 30, "ant": 9}
	for _, name := range []string{"xmlsec", "ant"} {
		b := bench.Generate(name, 1)
		a := analyzeBench(t, b, true)
		thin := a.ThinSlicer()
		for _, task := range b.Hopeless {
			seeds := a.SeedsAt(task.SeedFile, task.SeedLine)
			if len(seeds) == 0 {
				t.Fatalf("%s: no seeds", task.Name)
			}
			sl := thin.Slice(seeds...)
			inFile := 0
			for _, p := range sl.Lines() {
				if p.File == b.File {
					inFile++
				}
			}
			if inFile < minLines[name] {
				t.Errorf("%s: thin slice covers only %d lines — expected the whole pipeline (≥%d)",
					task.Name, inFile, minLines[name])
			}
		}
	}
}

// TestAliasingTaskNeedsExpansion verifies the nanoxml-5 structure: the
// thin slicer alone misses the desired statements, the one-level
// aliasing expansion finds them.
func TestAliasingTaskNeedsExpansion(t *testing.T) {
	b := bench.Generate("nanoxml", 1)
	a := analyzeBench(t, b, true)
	var task inspect.Task
	for _, x := range b.Debug {
		if x.Name == "nanoxml-5" {
			task = x
		}
	}
	if !task.ExplainAliasing {
		t.Fatal("nanoxml-5 must be an aliasing task")
	}
	// With expansion (Measure applies it for thin): found.
	res := inspect.Measure(a.ThinSlicer(), a.Graph, task)
	if !res.Found {
		t.Fatalf("nanoxml-5 with aliasing expansion should be solvable, visited %d", res.Inspected)
	}
	// Without any explainer allowance (no aliasing level, no control
	// hops) the mutation site is invisible to pure producer flow.
	plain := task
	plain.ExplainAliasing = false
	plain.ControlDeps = 0
	if r := inspect.Measure(a.ThinSlicer(), a.Graph, plain); r.Found {
		t.Error("nanoxml-5 should require explainer statements for thin slicing")
	}
}
