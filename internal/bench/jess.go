package bench

import "fmt"

// genJess mimics the jess rule engine: facts and rule-network nodes
// carry integer tags, and the engine downcasts after tag tests. Most
// of its six tough casts are justified by tag invariants two control
// hops away (Table 3 shows #Control = 2 for most jess rows); jess-2's
// operand additionally flows through the agenda Vector, giving it the
// container sensitivity visible in its NoObjSens numbers.
func genJess(scale int) *Benchmark {
	e := newEmitter()
	file := "jess.mj"

	e.w("class ReteNode {")
	e.w("    int tag;")
	e.w("    ReteNode(int tag) {")
	e.w("        this.tag = tag; //@setTag")
	e.w("    }")
	e.w("}")
	kinds := []string{"AlphaNode", "BetaNode", "JoinNode", "TermNode", "TestNode", "NotNode"}
	for i, k := range kinds {
		e.w("class %s extends ReteNode {", k)
		e.w("    int weight%d;", i)
		e.w("    %s() {", k)
		e.w("        super(%d); //@tag%s", i+1, k)
		e.w("        this.weight%d = %d;", i, i*10)
		e.w("    }")
		e.w("}")
	}
	e.w("class Agenda {")
	e.w("    Vector items;")
	e.w("    Agenda() {")
	e.w("        this.items = new Vector();")
	e.w("    }")
	e.w("    void post(ReteNode n) {")
	e.w("        this.items.add(n); //@agendaAdd")
	e.w("    }")
	e.w("    ReteNode take(int i) {")
	e.w("        return (ReteNode) this.items.get(i);")
	e.w("    }")
	e.w("}")
	e.w("class Engine {")
	// jess-1, jess-3..jess-6: tag-guarded casts over parameters that
	// merge every node kind.
	for i, k := range kinds {
		if i == 1 {
			continue // BetaNode handled by the agenda-mediated cast below
		}
		e.w("    int fire%s(ReteNode n) {", k)
		e.w("        if (n.tag > 0) { //@outer%s", k)
		e.w("            if (n.tag == %d) { //@guard%s", i+1, k)
		e.w("                %s x = (%s) n; //@cast%s", k, k, k)
		e.w("                return x.weight%d;", i)
		e.w("            }")
		e.w("        }")
		e.w("        return 0;")
		e.w("    }")
	}
	// jess-2: the BetaNode comes back out of the agenda.
	e.w("    int fireAgenda(Agenda a) {")
	e.w("        ReteNode n = a.take(0);")
	e.w("        BetaNode b = (BetaNode) n; //@castAgenda")
	e.w("        return b.weight1;")
	e.w("    }")
	e.w("}")
	// Decoy container traffic (rule text caches) so the NoObjSens
	// configuration floods jess-2.
	e.w("class RuleCache {")
	for f := 0; f < 2*scale; f++ {
		e.w("    static void fill%d() {", f)
		e.w("        Vector defs = new Vector();")
		for s := 0; s < 8; s++ {
			e.w("        defs.add(new AlphaNode());")
			e.w("        defs.add(new TestNode());")
		}
		e.w("        print(((ReteNode) defs.get(0)).tag);")
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        Engine eng = new Engine();")
	for _, k := range kinds {
		e.w("        ReteNode n%s = new %s(); //@alloc%s", k, k, k)
	}
	for i, k := range kinds {
		if i == 1 {
			continue
		}
		// Every node kind flows into every fire method: the casts are
		// tough.
		for _, k2 := range kinds {
			e.w("        print(eng.fire%s(n%s));", k, k2)
		}
	}
	e.w("        Agenda agenda = new Agenda();")
	e.w("        agenda.post(nBetaNode); //@postBeta")
	e.w("        agenda.post(nJoinNode); //@postJoin")
	e.w("        print(eng.fireAgenda(agenda));")
	for f := 0; f < 2*scale; f++ {
		e.w("        RuleCache.fill%d();", f)
	}
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "jess",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	idx := 1
	for i, k := range kinds {
		if i == 1 {
			continue
		}
		if idx == 2 {
			idx = 3 // jess-2 is the agenda-mediated cast below
		}
		// Safety rests on the tag invariant: the subclass constructor's
		// tag write and the shared ReteNode store, two control hops up.
		b.Casts = append(b.Casts, e.task(file,
			fmt.Sprintf("jess-%d", idx), "cast"+k, 2, "tag"+k, "setTag"))
		idx++
	}
	agendaTask := e.task(file, "jess-2", "castAgenda", 0, "postBeta", "allocBetaNode")
	b.Casts = append(b.Casts, agendaTask)
	return b
}
