package bench_test

import (
	"strings"
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/interp"
)

// TestBenchmarksAreExecutablePrograms runs every generated benchmark
// under the reference interpreter with inputs chosen to drive its main
// path, verifying the corpus is real executable code — and that the
// failures the tasks are built around actually occur where designed.
func TestBenchmarksAreExecutablePrograms(t *testing.T) {
	cases := []struct {
		name      string
		inputs    []string
		inputInts []int64
		// wantErr is a substring of the expected runtime failure, or
		// empty for a clean run.
		wantErr string
	}{
		// nanoxml parses one element then hits the injected attr bug;
		// the run ends at the unexpectedly-disabled guard or cleanly,
		// depending on cursor input. With cursor 0 it runs to the end.
		{"nanoxml", []string{"name attr=v>txt"}, []int64{1, 0}, ""},
		{"jtopas", []string{"abc 123 ;"}, nil, ""},
		// ant ends at its fingerprint assertion (the hopeless bug).
		{"ant", []string{"/base"}, []int64{3}, "assert"},
		// xmlsec's hash assertions hold on this input; the buried bugs
		// are slicing seeds, not guaranteed dynamic failures.
		{"xmlsec", []string{"data blob"}, nil, ""},
		{"mtrt", nil, []int64{1, 2, 3}, ""},
		{"jess", nil, nil, ""},
		{"javac", nil, nil, ""},
		{"jack", []string{"tok"}, []int64{7}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := bench.Generate(c.name, 1)
			a, err := analyzer.Analyze(b.Sources)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			m := interp.New(a.Prog)
			m.Inputs = c.inputs
			m.InputInts = c.inputInts
			m.StepLimit = 5_000_000
			runErr := m.Run("")
			if c.wantErr == "" {
				if runErr != nil {
					t.Fatalf("expected a clean run, got: %v", runErr)
				}
				if len(m.Output) == 0 {
					t.Error("program produced no output")
				}
				return
			}
			if runErr == nil || !strings.Contains(runErr.Error(), c.wantErr) {
				t.Fatalf("expected failure containing %q, got: %v", c.wantErr, runErr)
			}
		})
	}
}

// TestNanoxmlBugOutputs drives nanoxml to its printing seeds and checks
// the container-mediated bugs corrupt the observable output exactly as
// injected (the = and > are kept by the off-by-one substrings).
func TestNanoxmlBugOutputs(t *testing.T) {
	b := bench.Generate("nanoxml", 1)
	a, err := analyzer.Analyze(b.Sources)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(a.Prog)
	m.Inputs = []string{"name id=value>text"}
	m.InputInts = []int64{1, 0}
	if err := m.Run(""); err != nil {
		t.Fatalf("run: %v", err)
	}
	joined := strings.Join(m.Output, "\n")
	if !strings.Contains(joined, "=value") {
		t.Errorf("bug2 (attr keeps '='): output %q", joined)
	}
	if !strings.Contains(joined, ">text") {
		t.Errorf("bug3 (text keeps '>'): output %q", joined)
	}
}
