package bench

import "thinslice/internal/inspect"

// genMtrt mimics the mtrt raytracer: vector math over a scene of
// tagged primitives. Its two tough casts are justified by which
// allocations flow into dedicated scene fields — no containers are
// involved, so (as in Table 3) the NoObjSens configuration behaves
// identically.
func genMtrt(scale int) *Benchmark {
	e := newEmitter()
	file := "mtrt.mj"

	e.w("class Vec {")
	e.w("    int x;")
	e.w("    int y;")
	e.w("    int z;")
	e.w("    Vec(int x, int y, int z) {")
	e.w("        this.x = x;")
	e.w("        this.y = y;")
	e.w("        this.z = z;")
	e.w("    }")
	e.w("    int dot(Vec o) {")
	e.w("        return this.x * o.x + this.y * o.y + this.z * o.z;")
	e.w("    }")
	e.w("    Vec add(Vec o) {")
	e.w("        return new Vec(this.x + o.x, this.y + o.y, this.z + o.z);")
	e.w("    }")
	e.w("}")
	e.w("class Prim {")
	e.w("    int kind;")
	e.w("    Vec center;")
	e.w("    Prim(int kind, Vec c) {")
	e.w("        this.kind = kind;")
	e.w("        this.center = c;")
	e.w("    }")
	e.w("}")
	e.w("class Sphere extends Prim {")
	e.w("    int radius;")
	e.w("    Sphere(Vec c, int r) {")
	e.w("        super(1, c); //@sphereKind")
	e.w("        this.radius = r;")
	e.w("    }")
	e.w("}")
	e.w("class Tri extends Prim {")
	e.w("    Vec a;")
	e.w("    Tri(Vec c, Vec a) {")
	e.w("        super(2, c); //@triKind")
	e.w("        this.a = a;")
	e.w("    }")
	e.w("}")
	e.w("class Scene {")
	e.w("    Prim bounding;")
	e.w("    Prim occluder;")
	e.w("    Scene() {")
	e.w("        this.bounding = null;")
	e.w("        this.occluder = null;")
	e.w("    }")
	// install is the single registration chokepoint: pointer analysis
	// merges both primitive kinds through its parameter, making the
	// downstream casts tough, while the slot argument actually
	// discriminates — the kind of undocumented global invariant §6.3
	// describes.
	e.w("    void install(Prim p, int slot) {")
	e.w("        if (slot == 1) {")
	e.w("            this.bounding = p; //@storeBounding")
	e.w("        } else {")
	e.w("            this.occluder = p; //@storeOccluder")
	e.w("        }")
	e.w("    }")
	e.w("}")
	e.w("class Tracer {")
	e.w("    int shadeBounding(Scene s, Vec ray) {")
	e.w("        Prim p = s.bounding;")
	e.w("        Sphere sp = (Sphere) p; //@cast1")
	e.w("        return sp.radius + ray.dot(sp.center);")
	e.w("    }")
	e.w("    int shadeOccluder(Scene s, Vec ray) {")
	e.w("        Prim q = s.occluder;")
	e.w("        Tri tr = (Tri) q; //@cast2")
	e.w("        return ray.dot(tr.a);")
	e.w("    }")
	for f := 0; f < 3*scale; f++ {
		e.w("    int bounce%d(Vec a, Vec b) {", f)
		e.w("        Vec c = a.add(b);")
		e.w("        Vec d = c.add(a);")
		e.w("        return d.dot(b) + %d;", f)
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        Scene s = new Scene();")
	e.w("        Vec o = new Vec(inputInt(), inputInt(), inputInt());")
	e.w("        Sphere bound = new Sphere(o, 10); //@allocSphere")
	e.w("        s.install(bound, 1); //@installSphere")
	e.w("        Tri shadow = new Tri(o, new Vec(1, 2, 3)); //@allocTri")
	e.w("        s.install(shadow, 2); //@installTri")
	e.w("        Tracer t = new Tracer();")
	e.w("        print(t.shadeBounding(s, o));")
	e.w("        print(t.shadeOccluder(s, o));")
	for f := 0; f < 3*scale; f++ {
		e.w("        print(t.bounce%d(o, new Vec(%d, %d, %d)));", f, f, f+1, f+2)
	}
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "mtrt",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	// Cast safety follows from which allocations are installed into
	// which slot: the desired statements are the discriminating store,
	// the install call, and the allocation.
	b.Casts = []inspect.Task{
		e.task(file, "mtrt-1", "cast1", 0, "storeBounding", "installSphere", "allocSphere"),
		e.task(file, "mtrt-2", "cast2", 0, "storeOccluder", "installTri", "allocTri"),
	}
	return b
}
