// Package bench generates the synthetic benchmark corpus standing in
// for the paper's evaluation subjects. The SIR artifacts (nanoxml,
// jtopas, ant, xml-security) and SPECjvm98 programs (mtrt, jess, javac,
// jack) are Java-only and unavailable, so each generator produces a
// program in our source language mimicking the structural traits the
// paper attributes to its namesake — container-mediated value flow,
// opcode-field class families, hash pipelines, many-return task
// methods — together with the injected bugs (Table 2) or tough casts
// (Table 3) measured on it. Generation is deterministic: the same
// scale always produces the same program and tasks.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"thinslice/internal/inspect"
	"thinslice/internal/session"
)

// Benchmark is one generated evaluation subject.
type Benchmark struct {
	Name    string
	File    string
	Sources map[string]string
	// Debug are the injected-bug tasks (Table 2 rows).
	Debug []inspect.Task
	// Casts are the tough-cast tasks (Table 3 rows).
	Casts []inspect.Task
	// Hopeless are failure points for which no kind of slicing helps
	// (the paper's five xml-security bugs and one ant bug, excluded
	// from Table 2 with a note).
	Hopeless []inspect.Task
}

// Src returns the single main source text of the benchmark.
func (b *Benchmark) Src() string { return b.Sources[b.File] }

// QuerySeeds returns every task seed position (debug, cast, and
// hopeless tasks alike) as a batch slicing query, in task order — the
// multi-seed workload a session answers over one shared build.
func (b *Benchmark) QuerySeeds() []session.Seed {
	var seeds []session.Seed
	for _, tasks := range [][]inspect.Task{b.Debug, b.Casts, b.Hopeless} {
		for _, t := range tasks {
			seeds = append(seeds, session.Seed{File: t.SeedFile, Line: t.SeedLine})
		}
	}
	return seeds
}

// DebugNames lists the benchmarks used in the debugging experiment
// (Table 2), in the paper's order.
var DebugNames = []string{"nanoxml", "jtopas", "ant", "xmlsec"}

// CastNames lists the benchmarks used in the tough-casts experiment
// (Table 3), in the paper's order.
var CastNames = []string{"mtrt", "jess", "javac", "jack"}

// AllNames lists every benchmark name.
var AllNames = append(append([]string{}, DebugNames...), CastNames...)

type generator func(scale int) *Benchmark

var registry = map[string]generator{
	"nanoxml": genNanoXML,
	"jtopas":  genJtopas,
	"ant":     genAnt,
	"xmlsec":  genXMLSec,
	"mtrt":    genMtrt,
	"jess":    genJess,
	"javac":   genJavac,
	"jack":    genJack,
}

// Generate builds the named benchmark at the given scale (1 is the
// default evaluation size; larger values grow decoy structure for
// scalability experiments). It panics on unknown names, which are
// programming errors.
func Generate(name string, scale int) *Benchmark {
	g, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("bench: unknown benchmark %q", name))
	}
	if scale < 1 {
		scale = 1
	}
	return g(scale)
}

// All generates every benchmark at scale 1, in the paper's order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(AllNames))
	for _, n := range AllNames {
		out = append(out, Generate(n, 1))
	}
	return out
}

// --- generation helpers ---

// emitter accumulates source text and records marker lines.
type emitter struct {
	b       strings.Builder
	line    int
	markers map[string][]int
}

func newEmitter() *emitter {
	return &emitter{line: 0, markers: make(map[string][]int)}
}

// w writes one source line; any "//@name" suffix registers a marker.
func (e *emitter) w(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	e.line++
	if i := strings.Index(s, "//@"); i >= 0 {
		name := strings.TrimSpace(s[i+3:])
		e.markers[name] = append(e.markers[name], e.line)
	}
	e.b.WriteString(s)
	e.b.WriteString("\n")
}

// mark returns the unique line of a marker, panicking on absent or
// duplicated markers (generator bugs).
func (e *emitter) mark(name string) int {
	ls := e.markers[name]
	if len(ls) != 1 {
		panic(fmt.Sprintf("bench: marker %q has %d occurrences", name, len(ls)))
	}
	return ls[0]
}

// marks returns all lines of a marker prefix, sorted.
func (e *emitter) marksWithPrefix(prefix string) []int {
	var out []int
	for name, ls := range e.markers {
		if strings.HasPrefix(name, prefix) {
			out = append(out, ls...)
		}
	}
	sort.Ints(out)
	return out
}

func (e *emitter) src() string { return e.b.String() }

// task builds an inspect.Task with the seed at one marker and desired
// statements at others.
func (e *emitter) task(file, name, seedMark string, ctrl int, desiredMarks ...string) inspect.Task {
	t := inspect.Task{
		Name:        name,
		SeedFile:    file,
		SeedLine:    e.mark(seedMark),
		ControlDeps: ctrl,
	}
	for _, m := range desiredMarks {
		t.Desired = append(t.Desired, inspect.Line{File: file, Line: e.mark(m)})
	}
	return t
}

// rng is a small deterministic xorshift64* generator so benchmark
// structure can vary without depending on the runtime's rand.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
