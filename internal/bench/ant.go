package bench

import "thinslice/internal/inspect"

// genAnt mimics the Ant build tool: a Project with a property map, a
// target graph, and a path-resolution routine with many return
// statements (the trait behind the paper's ant-3 row and its 15
// pre-identified control dependences). One extra failure point is
// hopeless for any slicer, matching the paper's excluded ant bug.
func genAnt(scale int) *Benchmark {
	e := newEmitter()
	file := "ant.mj"

	e.w("class Project {")
	e.w("    HashMap properties;")
	e.w("    Vector targets;")
	e.w("    Project() {")
	e.w("        this.properties = new HashMap();")
	e.w("        this.targets = new Vector();")
	e.w("    }")
	e.w("    void setProperty(string k, string v) {")
	e.w("        this.properties.put(k, v);")
	e.w("    }")
	e.w("    string getProperty(string k) {")
	e.w("        return (string) this.properties.get(k);")
	e.w("    }")
	e.w("    void addTarget(Target t) {")
	e.w("        this.targets.add(t);")
	e.w("    }")
	e.w("    Target targetAt(int i) {")
	e.w("        return (Target) this.targets.get(i);")
	e.w("    }")
	e.w("}")
	e.w("class Target {")
	e.w("    string name;")
	e.w("    Project proj;")
	e.w("    Vector dependsOn;")
	e.w("    boolean executed;")
	e.w("    Target(Project p, string name) {")
	e.w("        this.proj = p;")
	e.w("        this.name = name;")
	e.w("        this.dependsOn = new Vector();")
	e.w("        this.executed = false;")
	e.w("    }")
	e.w("    void execute() {")
	e.w("        int i = 0;")
	e.w("        while (i < this.dependsOn.size()) {")
	e.w("            Target d = (Target) this.dependsOn.get(i);")
	e.w("            if (!d.executed) {")
	e.w("                d.execute();")
	e.w("            }")
	e.w("            i = i + 1;")
	e.w("        }")
	e.w("        this.executed = true;")
	e.w("    }")
	e.w("}")
	e.w("class PathUtil {")
	e.w("    static string join(string a, string b) {")
	e.w("        string sep = \"/\";")
	e.w("        return b + sep + b; //@bug3")
	e.w("    }")
	e.w("    static string resolve(Project p, int kind) {")
	e.w("        string basedir = p.getProperty(\"basedir\");")
	for i := 0; i < 11; i++ {
		e.w("        if (kind == %d) { //@retguard%d", i, i)
		switch i % 3 {
		case 0:
			e.w("            return PathUtil.join(basedir, \"dir%d\"); //@ret%d", i, i)
		case 1:
			e.w("            return p.getProperty(\"path%d\"); //@ret%d", i, i)
		default:
			e.w("            return basedir + \":%d\"; //@ret%d", i, i)
		}
		e.w("        }")
	}
	e.w("        return basedir; //@ret11")
	e.w("    }")
	e.w("}")
	// Scaled filler: extra task types executing against the project.
	e.w("class Tasks {")
	for f := 0; f < 2*scale; f++ {
		e.w("    static void run%d(Project p) {", f)
		e.w("        string v = p.getProperty(\"opt%d\");", f)
		e.w("        if (v == null) {")
		e.w("            p.setProperty(\"opt%d\", \"default%d\");", f, f)
		e.w("        }")
		e.w("        print(p.getProperty(\"opt%d\"));", f)
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        Project p = new Project();")
	e.w("        p.setProperty(\"basedir\", input());")
	e.w("        Target compile = new Target(p, \"compile\");")
	e.w("        Target dist = new Target(p, \"dist\");")
	e.w("        dist.dependsOn.add(compile);")
	e.w("        p.addTarget(compile);")
	e.w("        p.addTarget(dist);")
	e.w("        p.targetAt(1).execute();")
	for f := 0; f < 2*scale; f++ {
		e.w("        Tasks.run%d(p);", f)
	}
	// ant-1: a property lookup comes back null because the write was
	// (notionally) deleted; the failure is one control hop from the
	// buggy guard.
	e.w("        string outProp = p.getProperty(\"output\");")
	e.w("        if (outProp == null) { //@guard1")
	e.w("            assert(1 == 2); //@seed1")
	e.w("        }")
	// ant-2: a corrupted property value flows through the map to its
	// use.
	e.w("        string distDir = input();")
	e.w("        p.setProperty(\"dist\", distDir + distDir); //@bug2")
	e.w("        string outPath = p.getProperty(\"dist\");")
	e.w("        print(outPath); //@seed2")
	// ant-3: a resolution result is wrong; the bug hides in the join
	// helper behind one of twelve returns.
	e.w("        print(PathUtil.resolve(p, inputInt())); //@seed3")
	// ant-4: nested guards, bug two control hops up.
	e.w("        int depCount = inputInt();")
	e.w("        if (depCount > 1) { //@bug4")
	e.w("            if (depCount < 100) { //@guard4")
	e.w("                assert(3 == 4); //@seed4")
	e.w("            }")
	e.w("        }")
	// The hopeless failure: a build fingerprint computed by a long
	// mixing chain; slicing drags in the whole chain.
	e.w("        int fp = 17;")
	for i := 0; i < 10*scale; i++ {
		if i == 5*scale {
			e.w("        fp = fp * 31 + %d; //@hopelessbug", i)
		} else {
			e.w("        fp = fp * 33 + %d;", i)
		}
	}
	e.w("        assert(fp == 424242); //@hopelessseed")
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "ant",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	b.Debug = []inspect.Task{
		e.task(file, "ant-1", "seed1", 1, "guard1"),
		e.task(file, "ant-2", "seed2", 0, "bug2"),
		e.task(file, "ant-3", "seed3", 15, "bug3"),
		e.task(file, "ant-4", "seed4", 2, "bug4"),
	}
	b.Hopeless = []inspect.Task{
		e.task(file, "ant-hopeless", "hopelessseed", 1, "hopelessbug"),
	}
	return b
}
