package bench

import "fmt"

// genJavac mimics the javac compiler: a large family of Tree node
// subclasses whose constructors establish an opcode-field invariant
// (exactly paper Figure 5), a parser that builds deep trees through
// field plumbing, and a worklist-driven folding pass whose downcasts
// are guarded by opcode tests.
//
// The measured thin slices stay small — the opcode read leads straight
// to the constructors' opcode writes, which the paper notes "could be
// quickly inspected" — while traditional slicing additionally follows
// the base-pointer flow into the parser's tree plumbing, reproducing
// the 16–34× ratios of Table 3.
func genJavac(scale int) *Benchmark {
	e := newEmitter()
	file := "javac.mj"

	ops := []string{
		"Add", "Sub", "Mul", "Div", "Rem", "Neg", "Not", "And", "Or",
		"Lt", "Gt", "Eq", "Assign", "Call", "Index", "Field", "Literal",
		"Ident", "Block", "If", "While", "Return", "Throw", "New",
	}
	e.w("class Tree {")
	e.w("    int op;")
	e.w("    Tree left;")
	e.w("    Tree right;")
	e.w("    Tree(int op) {")
	e.w("        this.op = op; //@setOp")
	e.w("        this.left = null;")
	e.w("        this.right = null;")
	e.w("    }")
	e.w("}")
	for i, op := range ops {
		e.w("class %sTree extends Tree {", op)
		e.w("    int extra%d;", i)
		e.w("    %sTree(Tree l, Tree r) {", op)
		e.w("        super(OpTable.code(%d)); //@super%s", i+1, op)
		e.w("        this.left = l;")
		e.w("        this.right = r;")
		e.w("        this.extra%d = %d;", i, i)
		e.w("    }")
		e.w("}")
	}
	// OpTable holds the opcode constants: the "undocumented global
	// invariant" (§6.3) that justifies the casts lives in these fill
	// statements, reached by thin-slicing the opcode read.
	e.w("class OpTable {")
	e.w("    static int[] codes;")
	for i, op := range ops {
		e.w("    static int base%s() {", op)
		e.w("        return %d; //@op%s", i+1, op)
		e.w("    }")
	}
	e.w("    static void init() {")
	e.w("        OpTable.codes = new int[%d];", len(ops)+1)
	for i, op := range ops {
		e.w("        OpTable.codes[%d] = OpTable.base%s(); //@fill%s", i+1, op, op)
	}
	e.w("    }")
	e.w("    static int code(int k) {")
	e.w("        return OpTable.codes[k];")
	e.w("    }")
	e.w("}")
	// Parser: node factories register every created node on a worklist
	// (the flat node stream the folder consumes); the parseLevel bodies
	// are the field plumbing a traditional slice wades through.
	e.w("class Parser {")
	e.w("    Tree root;")
	e.w("    Tree pending;")
	e.w("    Vector worklist;")
	e.w("    int cursor;")
	e.w("    int marks;")
	e.w("    int ticks;")
	e.w("    Parser() {")
	e.w("        this.root = null;")
	e.w("        this.pending = null;")
	e.w("        this.worklist = new Vector();")
	e.w("        this.cursor = 0;")
	e.w("        this.marks = 0;")
	e.w("        this.ticks = 0;")
	e.w("    }")
	e.w("    Tree log(Tree n) {")
	e.w("        this.worklist.add(n);")
	e.w("        return n;")
	e.w("    }")
	for _, op := range ops {
		e.w("    Tree mk%s(Tree l, Tree r) {", op)
		e.w("        return this.log(new %sTree(l, r)); //@alloc%s", op, op)
		e.w("    }")
	}
	e.w("    Tree leaf() {")
	e.w("        Tree lit = this.mkLiteral(null, null);")
	e.w("        Tree id = this.mkIdent(null, null);")
	e.w("        if (this.cursor > 0) {")
	e.w("            return lit;")
	e.w("        }")
	e.w("        return id;")
	e.w("    }")
	rnd := newRng(97)
	for f := 0; f < 4*scale; f++ {
		e.w("    Tree parseLevel%d() {", f)
		e.w("        Tree acc = this.leaf();")
		for s := 0; s < len(ops); s++ {
			op := ops[rnd.intn(len(ops))]
			e.w("        acc = this.mk%s(acc, this.leaf());", op)
			e.w("        this.pending = acc.left;")
			e.w("        acc.right = this.pending.right;")
			e.w("        this.cursor = Sched.clamp(this.cursor + %d);", s)
			e.w("        this.marks = Sched.norm(this.marks + %d);", s+1)
			e.w("        this.ticks = Sched.scale(this.ticks + %d);", s+2)
		}
		e.w("        return acc;")
		e.w("    }")
	}
	e.w("    Tree parseProgram() {")
	e.w("        Tree t = this.parseLevel0();")
	for f := 1; f < 4*scale; f++ {
		e.w("        t = this.mkBlock(t, this.parseLevel%d());", f)
	}
	e.w("        this.root = t;")
	e.w("        return t;")
	e.w("    }")
	e.w("}")
	// Folder: walks the parser's worklist and downcasts after opcode
	// tests — the measured tough casts.
	castOps := []string{"Add", "Sub", "Mul", "If"}
	e.w("class Folder {")
	e.w("    int visit(Tree t) {")
	e.w("        int n = 0;")
	e.w("        int op = t.op; //@readOp")
	for i, op := range castOps {
		e.w("        if (op == %d) { //@guard%s", opIndex(ops, op)+1, op)
		e.w("            %sTree c%d = (%sTree) t; //@cast%s", op, i, op, op)
		e.w("            n = n + c%d.extra%d;", i, opIndex(ops, op))
		e.w("        }")
	}
	e.w("        return n;")
	e.w("    }")
	e.w("    int run(Parser p) {")
	e.w("        int total = 0;")
	e.w("        int i = 0;")
	e.w("        while (i < p.worklist.size()) {")
	e.w("            int slot = Sched.clamp(i) + Sched.norm(p.cursor) + Sched.scale(p.marks);")
	e.w("            if (slot >= p.worklist.size()) {")
	e.w("                slot = i;")
	e.w("            }")
	e.w("            Tree t = (Tree) p.worklist.get(slot);")
	e.w("            total = total + this.visit(t);")
	e.w("            i = i + 1;")
	e.w("        }")
	e.w("        return total;")
	e.w("    }")
	e.w("}")
	// Sched computes the worklist visitation order. Array indices are
	// explainer material for thin slicing (§4.1's second question), so
	// the hub functions below — each with hundreds of bookkeeping call
	// sites in the parser — only burden the traditional slicer: the
	// pervasive-plumbing effect behind javac's huge Table 3 ratios.
	e.w("class Sched {")
	for _, hub := range []string{"clamp", "norm", "scale"} {
		e.w("    static int %s(int x) {", hub)
		e.w("        if (x < 0) {")
		e.w("            return 0 - x;")
		e.w("        }")
		e.w("        return x;")
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        OpTable.init();")
	e.w("        Parser p = new Parser();")
	e.w("        Tree prog = p.parseProgram();")
	e.w("        Folder f = new Folder();")
	e.w("        print(f.run(p));")
	e.w("        print(prog.op);")
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "javac",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	for i, op := range castOps {
		// Safety rests on the opcode invariant: reached by one control
		// hop to the guard, then thin slicing the opcode read back to
		// the constructors (paper §6.3's Figure 5 walkthrough).
		b.Casts = append(b.Casts, e.task(file,
			fmt.Sprintf("javac-%d", i+1), "cast"+op, 1, "op"+op, "setOp"))
	}
	return b
}

func opIndex(ops []string, name string) int {
	for i, o := range ops {
		if o == name {
			return i
		}
	}
	panic("bench: unknown op " + name)
}
