package bench

import "thinslice/internal/inspect"

// genJtopas mimics the jtopas tokenizer: a character-classification
// scanner producing tokens. Its two Table 2 bugs sit essentially at
// the failure point (the paper notes such bugs are debuggable without
// tools but includes them for completeness): jtopas-1's buggy
// statement fails itself (1 inspected statement), jtopas-2 is one
// control dependence away (2 inspected statements).
func genJtopas(scale int) *Benchmark {
	e := newEmitter()
	file := "jtopas.mj"

	e.w("class Token {")
	e.w("    int kind;")
	e.w("    string image;")
	e.w("    int startPos;")
	e.w("    Token(int kind, string image, int start) {")
	e.w("        this.kind = kind;")
	e.w("        this.image = image;")
	e.w("        this.startPos = start;")
	e.w("    }")
	e.w("}")
	e.w("class Tokenizer {")
	e.w("    string src;")
	e.w("    int pos;")
	e.w("    Token current;")
	e.w("    Tokenizer(string src) {")
	e.w("        this.src = src;")
	e.w("        this.pos = 0;")
	e.w("        this.current = null;")
	e.w("    }")
	e.w("    boolean isLetter(int c) {")
	e.w("        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');")
	e.w("    }")
	e.w("    boolean isDigit(int c) {")
	e.w("        return c >= '0' && c <= '9';")
	e.w("    }")
	e.w("    boolean isSpace(int c) {")
	e.w("        return c == ' ' || c == '\\t';")
	e.w("    }")
	e.w("    Token next() {")
	e.w("        while (this.pos < this.src.length() && this.isSpace(this.src.charAt(this.pos))) {")
	e.w("            this.pos = this.pos + 1;")
	e.w("        }")
	e.w("        if (this.pos >= this.src.length()) {")
	e.w("            this.current = null; //@nullToken")
	e.w("            return null;")
	e.w("        }")
	e.w("        int c = this.src.charAt(this.pos);")
	e.w("        int start = this.pos;")
	e.w("        if (this.isLetter(c)) {")
	e.w("            while (this.pos < this.src.length() && this.isLetter(this.src.charAt(this.pos))) {")
	e.w("                this.pos = this.pos + 1;")
	e.w("            }")
	e.w("            this.current = new Token(1, this.src.substring(start, this.pos), start);")
	e.w("            return this.current;")
	e.w("        }")
	e.w("        if (this.isDigit(c)) {")
	e.w("            while (this.pos < this.src.length() && this.isDigit(this.src.charAt(this.pos))) {")
	e.w("                this.pos = this.pos + 1;")
	e.w("            }")
	e.w("            this.current = new Token(2, this.src.substring(start, this.pos), start);")
	e.w("            return this.current;")
	e.w("        }")
	e.w("        this.pos = this.pos + 1;")
	e.w("        this.current = new Token(3, this.src.substring(start, this.pos), start);")
	e.w("        return this.current;")
	e.w("    }")
	e.w("}")
	// Some token-stream consumers for program bulk; scaled.
	e.w("class TokenCounter {")
	for f := 0; f < scale; f++ {
		e.w("    static int countKind%d(Tokenizer t, int kind) {", f)
		e.w("        int n = 0;")
		e.w("        Token tok = t.next();")
		e.w("        while (!(tok == null)) {")
		e.w("            if (tok.kind == kind) {")
		e.w("                n = n + 1;")
		e.w("            }")
		e.w("            tok = t.next();")
		e.w("        }")
		e.w("        return n;")
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        Tokenizer t = new Tokenizer(input());")
	e.w("        Token tok = t.next();")
	// jtopas-1: the buggy statement dereferences a possibly-null token
	// and is itself the failure point (seed == desired).
	e.w("        print(tok.image); //@bug1")
	// jtopas-2: the bug is the guard condition itself (an injected
	// wrong comparison); the failure is one control hop below it.
	e.w("        if (tok.kind == 2) { //@bug2")
	e.w("            assert(tok.startPos >= 0); //@seed2")
	e.w("        }")
	for f := 0; f < scale; f++ {
		e.w("        print(TokenCounter.countKind%d(new Tokenizer(input()), %d));", f, 1+f%3)
	}
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "jtopas",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	b.Debug = []inspect.Task{
		e.task(file, "jtopas-1", "bug1", 0, "bug1"),
		e.task(file, "jtopas-2", "seed2", 1, "bug2"),
	}
	return b
}
