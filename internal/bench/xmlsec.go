package bench

import (
	"fmt"

	"thinslice/internal/inspect"
)

// genXMLSec mimics the xml-security benchmark: a canonicalization and
// digest pipeline whose hash computation spans many helper routines.
// Its one table row (xml-security-1) sits right at the failure; the
// other five injected bugs are buried in the digest internals, where
// the paper observes that no kind of slicing helps — slicing from the
// failing assertion inevitably brings in most of the hash code.
func genXMLSec(scale int) *Benchmark {
	e := newEmitter()
	file := "xmlsec.mj"
	rounds := 10 * scale

	e.w("class Canonicalizer {")
	e.w("    static string normalize(string s) {")
	e.w("        int sp = s.indexOf(\" \");")
	e.w("        if (sp < 0) {")
	e.w("            return s;")
	e.w("        }")
	e.w("        return s.substring(0, sp);")
	e.w("    }")
	e.w("}")
	e.w("class Digest {")
	e.w("    static int mix(int h, int c) {")
	e.w("        int r = h * 131 + c;")
	e.w("        if (r < 0) {")
	e.w("            r = 0 - r;")
	e.w("        }")
	e.w("        return r;")
	e.w("    }")
	// A chain of round functions; five of them carry buried bugs.
	buried := map[int]int{rounds / 6: 1, rounds / 3: 2, rounds / 2: 3, 2 * rounds / 3: 4, 5 * rounds / 6: 5}
	for i := 0; i < rounds; i++ {
		e.w("    static int round%d(int h, string data) {", i)
		e.w("        int i = 0;")
		e.w("        int acc = h;")
		e.w("        while (i < data.length()) {")
		if k, isBug := buried[i]; isBug {
			e.w("            acc = Digest.mix(acc, data.charAt(i) + %d); //@buried%d", i, k)
		} else {
			e.w("            acc = Digest.mix(acc, data.charAt(i));")
		}
		e.w("            i = i + 1;")
		e.w("        }")
		e.w("        return acc + %d;", i*7)
		e.w("    }")
	}
	e.w("    static int compute(string data) {")
	e.w("        int h = 5381;")
	for i := 0; i < rounds; i++ {
		e.w("        h = Digest.round%d(h, data);", i)
	}
	e.w("        return h;")
	e.w("    }")
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        string data = Canonicalizer.normalize(input());")
	// xml-security-1: the failure is one control hop from the buggy
	// guard comparing a signature length.
	e.w("        int sigLen = data.length() - 1;")
	e.w("        if (sigLen == 0) { //@guard1")
	e.w("            assert(5 == 6); //@seed1")
	e.w("        }")
	e.w("        int hash = Digest.compute(data); //@computeCall")
	for k := 1; k <= 5; k++ {
		e.w("        assert(hash > %d); //@hseed%d", k*1000, k)
	}
	e.w("        print(hash);")
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "xmlsec",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	b.Debug = []inspect.Task{
		e.task(file, "xml-security-1", "seed1", 1, "guard1"),
	}
	for k := 1; k <= 5; k++ {
		b.Hopeless = append(b.Hopeless, e.task(file,
			fmt.Sprintf("xml-security-h%d", k),
			fmt.Sprintf("hseed%d", k), 1, fmt.Sprintf("buried%d", k)))
	}
	return b
}
