package bench

import "thinslice/internal/inspect"

// genNanoXML mimics the NanoXML parser: a tree of elements whose
// attributes and text live in HashMaps and Vectors, plus unrelated
// container traffic elsewhere in the application (decoys). The six
// injected bugs follow the Table 2 rows: short local chains (bug 1),
// container-mediated value corruption (bugs 2, 3, 6), a guarded
// counter bug (bug 4), and a mutation-through-alias bug needing an
// aliasing explanation (bug 5, the paper's nanoxml-5).
func genNanoXML(scale int) *Benchmark {
	e := newEmitter()
	file := "nanoxml.mj"

	e.w("class XMLElement {")
	e.w("    string name;")
	e.w("    Vector children;")
	e.w("    HashMap attributes;")
	e.w("    Vector textChunks;")
	e.w("    boolean enabled;")
	e.w("    int childCount;")
	e.w("    XMLElement(string name) {")
	e.w("        this.name = name;")
	e.w("        this.children = new Vector();")
	e.w("        this.attributes = new HashMap();")
	e.w("        this.textChunks = new Vector();")
	e.w("        this.enabled = true; //@enabledTrue")
	e.w("        this.childCount = 0;")
	e.w("    }")
	e.w("    void addChild(XMLElement c) {")
	e.w("        this.children.add(c);")
	e.w("        this.childCount = this.childCount + 2; //@bug4")
	e.w("    }")
	e.w("    XMLElement childAt(int i) {")
	e.w("        return (XMLElement) this.children.get(i);")
	e.w("    }")
	e.w("    void setAttribute(string k, string v) {")
	e.w("        this.attributes.put(k, v); //@putAttr")
	e.w("    }")
	e.w("    string getAttribute(string k) {")
	e.w("        return (string) this.attributes.get(k);")
	e.w("    }")
	e.w("    void addText(string t) {")
	e.w("        this.textChunks.add(t);")
	e.w("    }")
	e.w("    string textAt(int i) {")
	e.w("        return (string) this.textChunks.get(i);")
	e.w("    }")
	e.w("    void disable() {")
	e.w("        this.enabled = false; //@bug5store")
	e.w("    }")
	e.w("    boolean isEnabled() {")
	e.w("        return this.enabled;")
	e.w("    }")
	e.w("}")
	e.w("class EntityDef {")
	e.w("    string name;")
	e.w("    string value;")
	e.w("    EntityDef(string n, string v) {")
	e.w("        this.name = n;")
	e.w("        this.value = n; //@bug6")
	e.w("    }")
	e.w("}")
	e.w("class EntityTable {")
	e.w("    LinkedList entries;")
	e.w("    EntityTable() {")
	e.w("        this.entries = new LinkedList();")
	e.w("    }")
	e.w("    void define(string name, string value) {")
	e.w("        this.entries.add(new EntityDef(name, value)); //@defineEntity")
	e.w("    }")
	e.w("    string resolve(int i) {")
	e.w("        EntityDef d = (EntityDef) this.entries.get(i);")
	e.w("        return d.value;")
	e.w("    }")
	e.w("}")
	e.w("class XMLParser {")
	e.w("    XMLElement parse(int n) {")
	e.w("        XMLElement root = new XMLElement(\"root\");")
	e.w("        int i = 0;")
	e.w("        while (i < n) {")
	e.w("            string line = input(); //@readLine")
	e.w("            XMLElement el = new XMLElement(this.parseName(line));")
	e.w("            el.setAttribute(\"id\", this.parseAttr(line)); //@setId")
	e.w("            el.addText(this.parseText(line)); //@addTextCall")
	e.w("            root.addChild(el);")
	e.w("            i = i + 1;")
	e.w("        }")
	e.w("        return root;")
	e.w("    }")
	e.w("    string parseName(string line) {")
	e.w("        int sp = line.indexOf(\" \");")
	e.w("        string raw = line.substring(0, sp); //@parseName")
	e.w("        return raw;")
	e.w("    }")
	e.w("    string parseAttr(string line) {")
	e.w("        int eq = line.indexOf(\"=\");")
	e.w("        string v = line.substring(eq, line.length()); //@bug2")
	e.w("        return v;")
	e.w("    }")
	e.w("    string parseText(string line) {")
	e.w("        int gt = line.indexOf(\">\");")
	e.w("        string t = line.substring(gt, line.length()); //@bug3")
	e.w("        return t;")
	e.w("    }")
	e.w("    int checksum(string name) {")
	e.w("        int h = 7;")
	e.w("        int i = 0;")
	e.w("        while (i < name.length()) {")
	e.w("            h = h * 33 + name.charAt(i); //@bug1")
	e.w("            i = i + 1;")
	e.w("        }")
	e.w("        return h;")
	e.w("    }")
	e.w("}")

	// Decoy container traffic: raw Vectors and HashMaps elsewhere in
	// the application. With object-sensitive container cloning these
	// stay apart from the document's containers; without it, every
	// store below floods the BFS from any container read.
	// Idx computes cursor positions. Indices are explainer material for
	// thin slicing, so the hub functions below — called from every
	// decoy loop — burden only the traditional slicer.
	e.w("class Idx {")
	for _, hub := range []string{"clamp", "norm"} {
		e.w("    static int %s(int x) {", hub)
		e.w("        if (x < 0) {")
		e.w("            return 0 - x;")
		e.w("        }")
		e.w("        return x;")
		e.w("    }")
	}
	e.w("}")
	decoyFns := 4 * scale
	storesPer := 16
	e.w("class DecoyCache {")
	for f := 0; f < decoyFns; f++ {
		e.w("    static int warm%d() {", f)
		e.w("        Vector v = new Vector();")
		e.w("        HashMap m = new HashMap();")
		e.w("        LinkedList l = new LinkedList();")
		e.w("        int pos = 0;")
		for s := 0; s < storesPer; s++ {
			e.w("        v.add(\"cache-%d-%d\");", f, s)
			e.w("        m.put(\"key%d%d\", \"val-%d-%d\");", f, s, f, s)
			e.w("        l.add(\"entry-%d-%d\");", f, s)
			e.w("        pos = Idx.clamp(pos + %d);", s)
			e.w("        pos = Idx.norm(pos + %d);", s+1)
		}
		e.w("        print((string) v.get(0));")
		e.w("        print((string) m.get(\"key%d0\"));", f)
		e.w("        print((string) l.get(0));")
		e.w("        return pos;")
		e.w("    }")
	}
	e.w("}")

	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        XMLParser p = new XMLParser();")
	e.w("        XMLElement doc = p.parse(inputInt()); //@parseCall")
	for f := 0; f < decoyFns; f++ {
		e.w("        DecoyCache.warm%d();", f)
	}
	e.w("        int cursor = Idx.clamp(inputInt());")
	e.w("        XMLElement first = doc.childAt(Idx.norm(cursor)); //@firstChild")
	e.w("        print(p.checksum(first.name)); //@seed1")
	e.w("        print(first.getAttribute(\"id\")); //@seed2")
	e.w("        int tpos = Idx.clamp(cursor);")
	e.w("        print(first.textAt(tpos)); //@seed3")
	e.w("        if (doc.childCount > inputInt()) { //@guard4")
	e.w("            print(doc.childCount); //@seed4")
	e.w("        }")
	e.w("        XMLElement alias = doc.childAt(Idx.norm(cursor)); //@aliasGet")
	e.w("        alias.disable(); //@disableCall")
	e.w("        if (!first.isEnabled()) { //@seed5")
	e.w("            print(\"element unexpectedly disabled\");")
	e.w("        }")
	e.w("        EntityTable ents = new EntityTable();")
	e.w("        ents.define(\"amp\", input()); //@defineCall")
	e.w("        print(ents.resolve(0)); //@seed6")
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "nanoxml",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	aliasTask := e.task(file, "nanoxml-5", "seed5", 1, "bug5store", "disableCall")
	aliasTask.ExplainAliasing = true
	b.Debug = []inspect.Task{
		e.task(file, "nanoxml-1", "seed1", 0, "bug1"),
		e.task(file, "nanoxml-2", "seed2", 0, "bug2"),
		e.task(file, "nanoxml-3", "seed3", 0, "bug3"),
		e.task(file, "nanoxml-4", "seed4", 1, "bug4"),
		aliasTask,
		e.task(file, "nanoxml-6", "seed6", 0, "bug6"),
	}
	return b
}
