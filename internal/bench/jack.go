package bench

import "fmt"

// genJack mimics the jack parser generator: tokens flow through a
// Vector-backed stream into production methods that downcast them.
// Cast safety rests on which token kinds the scanner pushed for which
// slot, so the explanations run through container internals — this is
// the benchmark where the paper observes 5.9–16.9× inflation without
// object-sensitive container handling, which the decoy grammar-table
// traffic below reproduces.
func genJack(scale int) *Benchmark {
	e := newEmitter()
	file := "jack.mj"

	e.w("class Token {")
	e.w("    int kind;")
	e.w("    string image;")
	e.w("    Token(int kind, string image) {")
	e.w("        this.kind = kind; //@setKind")
	e.w("        this.image = image;")
	e.w("    }")
	e.w("}")
	e.w("class IdentToken extends Token {")
	e.w("    IdentToken(string image) {")
	e.w("        super(1, image); //@kindIdent")
	e.w("    }")
	e.w("}")
	e.w("class NumToken extends Token {")
	e.w("    int value;")
	e.w("    NumToken(string image, int v) {")
	e.w("        super(2, image); //@kindNum")
	e.w("        this.value = v;")
	e.w("    }")
	e.w("}")
	e.w("class PunctToken extends Token {")
	e.w("    PunctToken(string image) {")
	e.w("        super(3, image); //@kindPunct")
	e.w("    }")
	e.w("}")
	e.w("class TokenStream {")
	e.w("    Vector toks;")
	e.w("    int pos;")
	e.w("    TokenStream() {")
	e.w("        this.toks = new Vector();")
	e.w("        this.pos = 0;")
	e.w("    }")
	e.w("    void push(Token t) {")
	e.w("        this.toks.add(t); //@pushStore")
	e.w("    }")
	e.w("    Token at(int i) {")
	e.w("        return (Token) this.toks.get(i);")
	e.w("    }")
	e.w("}")
	// Productions: each downcasts a stream slot to the kind its grammar
	// position requires. The stream holds all three kinds, so pointer
	// analysis cannot verify the casts.
	nProds := 10
	e.w("class Productions {")
	for i := 0; i < nProds; i++ {
		castTo := []string{"IdentToken", "NumToken"}[i%2]
		e.w("    static int reduce%d(TokenStream ts) {", i)
		e.w("        Token raw = ts.at(%d);", i%4)
		e.w("        %s t%d = (%s) raw; //@cast%d", castTo, i, castTo, i)
		if i%2 == 1 {
			e.w("        return t%d.value;", i)
		} else {
			e.w("        return t%d.image.length();", i)
		}
		e.w("    }")
	}
	e.w("}")
	// Decoy grammar tables: rule and state names in their own Vectors.
	e.w("class GrammarTables {")
	for f := 0; f < 3*scale; f++ {
		e.w("    static void load%d() {", f)
		e.w("        Vector rules = new Vector();")
		e.w("        LinkedList states = new LinkedList();")
		for s := 0; s < 10; s++ {
			e.w("        rules.add(\"rule-%d-%d\");", f, s)
			e.w("        states.add(\"state-%d-%d\");", f, s)
		}
		e.w("        print((string) rules.get(%d));", f%10)
		e.w("        print((string) states.get(0));")
		e.w("    }")
	}
	e.w("}")
	e.w("class Main {")
	e.w("    static void main() {")
	e.w("        TokenStream ts = new TokenStream();")
	e.w("        ts.push(new IdentToken(input())); //@pushIdent0")
	e.w("        ts.push(new NumToken(input(), inputInt())); //@pushNum1")
	e.w("        ts.push(new IdentToken(input())); //@pushIdent2")
	e.w("        ts.push(new NumToken(input(), inputInt())); //@pushNum3")
	e.w("        ts.push(new PunctToken(\";\")); //@pushPunct")
	for i := 0; i < nProds; i++ {
		e.w("        print(Productions.reduce%d(ts));", i)
	}
	for f := 0; f < 3*scale; f++ {
		e.w("        GrammarTables.load%d();", f)
	}
	e.w("    }")
	e.w("}")

	b := &Benchmark{
		Name:    "jack",
		File:    file,
		Sources: map[string]string{file: e.src()},
	}
	for i := 0; i < nProds; i++ {
		pushMark := []string{"pushIdent0", "pushNum1", "pushIdent2", "pushNum3"}[i%4]
		// Safety rests on which token the scanner pushed for this
		// slot: the push site (which names the allocated token kind)
		// is producer-reachable through the stream's Vector, with
		// #Control = 0 as in the paper's jack rows.
		b.Casts = append(b.Casts, e.task(file,
			fmt.Sprintf("jack-%d", i+1), fmt.Sprintf("cast%d", i), 0, pushMark))
	}
	return b
}
