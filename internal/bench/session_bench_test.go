package bench_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/bench"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// openSession opens a fresh session (own store) over a benchmark.
func openSession(b *bench.Benchmark, workers int) *session.Session {
	return session.Open(b.Sources, session.WithWorkers(workers))
}

// BenchmarkSessionColdBuild measures the full pipeline from sources to
// dependence graph with an empty store.
func BenchmarkSessionColdBuild(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := openSession(bm, 1).Graph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionWarmRequery measures one additional seed query on an
// already-built session: the cache answers every phase, leaving only
// the backward closure.
func BenchmarkSessionWarmRequery(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	s := openSession(bm, 1)
	seeds := bm.QuerySeeds()[:1]
	if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionBatchAllSeeds measures answering every task seed of
// a benchmark over one shared build.
func BenchmarkSessionBatchAllSeeds(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	s := openSession(bm, 1)
	seeds := bm.QuerySeeds()
	if _, err := s.Graph(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDGBuildSequential and BenchmarkSDGBuildParallel time the
// dependence-graph construction alone; their outputs are byte-identical
// (pinned by the sdg equivalence tests).
func benchmarkSDGBuild(b *testing.B, workers int) {
	bm := bench.Generate("javac", 2)
	s := openSession(bm, 1)
	prog, err := s.Prog()
	if err != nil {
		b.Fatal(err)
	}
	pts, err := s.PointsTo()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdg.BuildWorkers(prog, pts, nil, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDGBuildSequential(b *testing.B) { benchmarkSDGBuild(b, 1) }
func BenchmarkSDGBuildParallel(b *testing.B)  { benchmarkSDGBuild(b, runtime.GOMAXPROCS(0)) }

// BenchmarkLowerSequential and BenchmarkLowerParallel time per-method
// SSA lowering alone.
func benchmarkLower(b *testing.B, workers int) {
	bm := bench.Generate("javac", 2)
	info, err := loader.Load(bm.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.LowerWorkers(info, workers)
	}
}

func BenchmarkLowerSequential(b *testing.B) { benchmarkLower(b, 1) }
func BenchmarkLowerParallel(b *testing.B)   { benchmarkLower(b, runtime.GOMAXPROCS(0)) }

// --- recorded benchmark artifact ---

// sessionBenchRow is one benchmark's session-performance record.
type sessionBenchRow struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale"`
	Seeds     int    `json:"seeds"`
	// ColdBuildMS is sources → dependence graph with an empty store.
	ColdBuildMS float64 `json:"cold_build_ms"`
	// WarmRequeryUS is one extra seed query on a built session, in
	// microseconds — the headline number: re-queries skip the pipeline.
	WarmRequeryUS float64 `json:"warm_requery_us"`
	// BatchAllSeedsMS answers every task seed over one shared build.
	BatchAllSeedsMS float64 `json:"batch_all_seeds_ms"`
	// PerSeedColdMS is the old regime for comparison: one full
	// pipeline per seed (sampled, extrapolated per seed).
	PerSeedColdMS float64 `json:"per_seed_cold_ms"`
	// PtsSolveMS times the context-sensitive points-to solve alone
	// (difference propagation + online cycle elimination).
	PtsSolveMS float64 `json:"pts_solve_ms"`
	// CSRBuildUS is the time one sequential build spends packing the
	// dependence edges into the CSR arrays, in microseconds (near zero
	// on the two-pass path, which fills final slots directly).
	CSRBuildUS float64 `json:"csr_build_us"`
	// SliceTraverseUS is one warm thin-slice backward traversal over
	// the CSR graph (artifacts already built), in microseconds.
	SliceTraverseUS float64 `json:"slice_traverse_us"`
	// SDG build timings, sequential vs worker-pool. Outputs are
	// byte-identical; below the work threshold the pool is skipped, so
	// small programs never pay pool overhead.
	SDGSeqMS  float64 `json:"sdg_build_sequential_ms"`
	SDGParMS  float64 `json:"sdg_build_parallel_ms"`
	LowerSeq  float64 `json:"lower_sequential_ms"`
	LowerPar  float64 `json:"lower_parallel_ms"`
	ParWorker int     `json:"parallel_workers"`
}

// sessionBenchRun is one full measurement sweep at a fixed GOMAXPROCS.
type sessionBenchRun struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Rows       []sessionBenchRow `json:"rows"`
}

type sessionBenchReport struct {
	HostCPUs int               `json:"host_cpus"`
	Note     string            `json:"note"`
	Runs     []sessionBenchRun `json:"runs"`
}

// timeIt returns the best-of-7 duration of f in milliseconds. Minima
// rather than means: the recording box is a shared VM, and the minimum
// is the least contaminated by host-level contention. Each round
// starts from a freshly collected heap (as testing.B does between
// benchmarks) so no round pays to collect its predecessor's garbage;
// collections triggered by f's own allocations still count.
func timeIt(f func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 7; i++ {
		runtime.GC()
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// measureRow runs one benchmark's full sweep at the current GOMAXPROCS.
func measureRow(t *testing.T, name string, scale, workers int) sessionBenchRow {
	bm := bench.Generate(name, scale)
	seeds := bm.QuerySeeds()
	row := sessionBenchRow{Benchmark: name, Scale: scale, Seeds: len(seeds), ParWorker: workers}

	row.ColdBuildMS = timeIt(func() {
		if _, err := openSession(bm, 1).Graph(); err != nil {
			t.Fatal(err)
		}
	})

	s := openSession(bm, 1)
	warm, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds[:1])
	if err != nil {
		t.Fatal(err)
	}
	row.WarmRequeryUS = timeIt(func() {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds[:1]); err != nil {
			t.Fatal(err)
		}
	}) * 1000
	row.BatchAllSeedsMS = timeIt(func() {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			t.Fatal(err)
		}
	})

	// Old regime: a fresh pipeline per seed. Sample one cold
	// build + slice; per-seed cost is that times one.
	row.PerSeedColdMS = timeIt(func() {
		fresh := openSession(bm, 1)
		if _, err := fresh.SliceAll(core.Options{Mode: core.Thin}, seeds[:1]); err != nil {
			t.Fatal(err)
		}
	})

	prog, err := s.Prog()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.PointsTo()
	if err != nil {
		t.Fatal(err)
	}
	row.PtsSolveMS = timeIt(func() {
		if _, err := pointsto.Analyze(prog, pointsto.Config{
			ObjSensContainers: true,
			ContainerClasses:  prelude.ContainerClasses,
		}); err != nil {
			t.Fatal(err)
		}
	})
	// Sequential and parallel builds are timed in interleaved rounds so
	// host-load drift during the sweep biases neither side; below the
	// work threshold both resolve to the same sequential construction
	// and any recorded delta is measurement noise.
	bestSeq, bestPar := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < 9; i++ {
		runtime.GC()
		start := time.Now()
		if _, err := sdg.BuildWorkers(prog, pts, nil, 1); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < bestSeq {
			bestSeq = d
		}
		runtime.GC()
		start = time.Now()
		if _, err := sdg.BuildWorkers(prog, pts, nil, workers); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < bestPar {
			bestPar = d
		}
	}
	row.SDGSeqMS = float64(bestSeq) / float64(time.Millisecond)
	row.SDGParMS = float64(bestPar) / float64(time.Millisecond)
	g, err := sdg.BuildWorkers(prog, pts, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	row.CSRBuildUS = float64(g.CSRBuildDuration()) / float64(time.Microsecond)

	// Pure traversal: seed nodes already resolved, graph already built.
	if len(warm) > 0 && warm[0].Slice != nil {
		seedNodes := warm[0].Slice.Seeds()
		slicer := core.NewThin(g)
		row.SliceTraverseUS = timeIt(func() {
			slicer.SliceNodes(seedNodes...)
		}) * 1000
	}

	info, err := loader.Load(bm.Sources)
	if err != nil {
		t.Fatal(err)
	}
	row.LowerSeq = timeIt(func() { ir.LowerWorkers(info, 1) })
	row.LowerPar = timeIt(func() { ir.LowerWorkers(info, workers) })

	if row.WarmRequeryUS/1000 > row.ColdBuildMS {
		t.Errorf("%s: warm re-query (%.1fms) not faster than cold build (%.1fms)",
			name, row.WarmRequeryUS/1000, row.ColdBuildMS)
	}
	return row
}

// TestRecordSessionBenchmarks measures the session workloads at
// GOMAXPROCS 1 and 4 and records both sweeps in BENCH_session.json at
// the repository root, giving the perf trajectory a committed
// baseline. Skipped under -short.
func TestRecordSessionBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark recording skipped in -short mode")
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	report := sessionBenchReport{
		HostCPUs: runtime.NumCPU(),
		Note: "best of 7 per cell, freshly collected heap per round; runs sweep GOMAXPROCS 1 and 4; warm_requery_us and " +
			"batch_all_seeds_ms are the headline wins (cached sessions skip " +
			"parse/lower/points-to/SDG); parallel construction is byte-identical to " +
			"sequential and falls back to the sequential path below a work threshold, " +
			"so sdg_build_parallel_ms never pays pool overhead on small programs",
	}
	const scale = 2
	const workers = 4
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		run := sessionBenchRun{GOMAXPROCS: gmp}
		for _, name := range []string{"nanoxml", "javac"} {
			run.Rows = append(run.Rows, measureRow(t, name, scale, workers))
		}
		report.Runs = append(report.Runs, run)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_session.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
