package bench_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"thinslice/internal/bench"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// openSession opens a fresh session (own store) over a benchmark.
func openSession(b *bench.Benchmark, workers int) *session.Session {
	return session.Open(b.Sources, session.WithWorkers(workers))
}

// BenchmarkSessionColdBuild measures the full pipeline from sources to
// dependence graph with an empty store.
func BenchmarkSessionColdBuild(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := openSession(bm, 1).Graph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionWarmRequery measures one additional seed query on an
// already-built session: the cache answers every phase, leaving only
// the backward closure.
func BenchmarkSessionWarmRequery(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	s := openSession(bm, 1)
	seeds := bm.QuerySeeds()[:1]
	if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionBatchAllSeeds measures answering every task seed of
// a benchmark over one shared build.
func BenchmarkSessionBatchAllSeeds(b *testing.B) {
	bm := bench.Generate("nanoxml", 2)
	s := openSession(bm, 1)
	seeds := bm.QuerySeeds()
	if _, err := s.Graph(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDGBuildSequential and BenchmarkSDGBuildParallel time the
// dependence-graph construction alone; their outputs are byte-identical
// (pinned by the sdg equivalence tests).
func benchmarkSDGBuild(b *testing.B, workers int) {
	bm := bench.Generate("javac", 2)
	s := openSession(bm, 1)
	prog, err := s.Prog()
	if err != nil {
		b.Fatal(err)
	}
	pts, err := s.PointsTo()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdg.BuildWorkers(prog, pts, nil, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDGBuildSequential(b *testing.B) { benchmarkSDGBuild(b, 1) }
func BenchmarkSDGBuildParallel(b *testing.B)  { benchmarkSDGBuild(b, runtime.GOMAXPROCS(0)) }

// BenchmarkLowerSequential and BenchmarkLowerParallel time per-method
// SSA lowering alone.
func benchmarkLower(b *testing.B, workers int) {
	bm := bench.Generate("javac", 2)
	info, err := loader.Load(bm.Sources)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.LowerWorkers(info, workers)
	}
}

func BenchmarkLowerSequential(b *testing.B) { benchmarkLower(b, 1) }
func BenchmarkLowerParallel(b *testing.B)   { benchmarkLower(b, runtime.GOMAXPROCS(0)) }

// --- recorded benchmark artifact ---

// sessionBenchRow is one benchmark's session-performance record.
type sessionBenchRow struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale"`
	Seeds     int    `json:"seeds"`
	// ColdBuildMS is sources → dependence graph with an empty store.
	ColdBuildMS float64 `json:"cold_build_ms"`
	// WarmRequeryUS is one extra seed query on a built session, in
	// microseconds — the headline number: re-queries skip the pipeline.
	WarmRequeryUS float64 `json:"warm_requery_us"`
	// BatchAllSeedsMS answers every task seed over one shared build.
	BatchAllSeedsMS float64 `json:"batch_all_seeds_ms"`
	// PerSeedColdMS is the old regime for comparison: one full
	// pipeline per seed (sampled, extrapolated per seed).
	PerSeedColdMS float64 `json:"per_seed_cold_ms"`
	// SDG build timings, sequential vs worker-pool. Outputs are
	// byte-identical; on a single-CPU host the parallel number
	// measures pool overhead, not speedup.
	SDGSeqMS  float64 `json:"sdg_build_sequential_ms"`
	SDGParMS  float64 `json:"sdg_build_parallel_ms"`
	LowerSeq  float64 `json:"lower_sequential_ms"`
	LowerPar  float64 `json:"lower_parallel_ms"`
	ParWorker int     `json:"parallel_workers"`
}

type sessionBenchReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Note       string            `json:"note"`
	Rows       []sessionBenchRow `json:"rows"`
}

// timeIt returns the best-of-3 duration of f in milliseconds.
func timeIt(f func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// TestRecordSessionBenchmarks measures the session workloads and
// records them in BENCH_session.json at the repository root, giving
// the perf trajectory a committed baseline. Skipped under -short.
func TestRecordSessionBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark recording skipped in -short mode")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4 // still exercise the pool; the JSON records the host width
	}
	report := sessionBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "best of 3; warm_requery_us and batch_all_seeds_ms are the headline wins " +
			"(cached sessions skip parse/lower/points-to/SDG); parallel construction is " +
			"byte-identical to sequential, and on a single-CPU host its timing measures " +
			"pool overhead rather than speedup",
	}
	const scale = 2
	for _, name := range []string{"nanoxml", "javac"} {
		bm := bench.Generate(name, scale)
		seeds := bm.QuerySeeds()
		row := sessionBenchRow{Benchmark: name, Scale: scale, Seeds: len(seeds), ParWorker: workers}

		row.ColdBuildMS = timeIt(func() {
			if _, err := openSession(bm, 1).Graph(); err != nil {
				t.Fatal(err)
			}
		})

		s := openSession(bm, 1)
		if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds[:1]); err != nil {
			t.Fatal(err)
		}
		row.WarmRequeryUS = timeIt(func() {
			if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds[:1]); err != nil {
				t.Fatal(err)
			}
		}) * 1000
		row.BatchAllSeedsMS = timeIt(func() {
			if _, err := s.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
				t.Fatal(err)
			}
		})

		// Old regime: a fresh pipeline per seed. Sample one cold
		// build + slice; per-seed cost is that times one.
		row.PerSeedColdMS = timeIt(func() {
			fresh := openSession(bm, 1)
			if _, err := fresh.SliceAll(core.Options{Mode: core.Thin}, seeds[:1]); err != nil {
				t.Fatal(err)
			}
		})

		prog, err := s.Prog()
		if err != nil {
			t.Fatal(err)
		}
		pts, err := s.PointsTo()
		if err != nil {
			t.Fatal(err)
		}
		row.SDGSeqMS = timeIt(func() {
			if _, err := sdg.BuildWorkers(prog, pts, nil, 1); err != nil {
				t.Fatal(err)
			}
		})
		row.SDGParMS = timeIt(func() {
			if _, err := sdg.BuildWorkers(prog, pts, nil, workers); err != nil {
				t.Fatal(err)
			}
		})

		info, err := loader.Load(bm.Sources)
		if err != nil {
			t.Fatal(err)
		}
		row.LowerSeq = timeIt(func() { ir.LowerWorkers(info, 1) })
		row.LowerPar = timeIt(func() { ir.LowerWorkers(info, workers) })

		report.Rows = append(report.Rows, row)

		if row.WarmRequeryUS/1000 > row.ColdBuildMS {
			t.Errorf("%s: warm re-query (%.1fms) not faster than cold build (%.1fms)",
				name, row.WarmRequeryUS/1000, row.ColdBuildMS)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_session.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
