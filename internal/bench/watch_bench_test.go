package bench_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"thinslice/internal/core"
	"thinslice/internal/session"
)

// --- recorded watch-mode benchmark artifact ---
//
// TestRecordWatchBenchmarks measures the edit→updated-slice latency of
// an incremental session — the number a watch stream's user actually
// waits on — for the three canonical edit shapes, against the cold
// build they replace:
//
//   - single_method_edit: a one-literal body change dirties exactly one
//     derivation unit (the method's positions are unchanged), so the
//     revision is one unit lower + delta solve + delta SDG.
//   - class_shape_change: adding a method changes the class fingerprint,
//     dirtying every unit that references the class — the expensive end
//     of the invalidation spectrum, still well under a cold build.
//   - file_add: a new file with an unreferenced class; every old unit
//     is reused and the delta solver only seeds the new constraints.

// watchBenchRow is one edit shape's latency record.
type watchBenchRow struct {
	Scenario string `json:"scenario"`
	// WarmEditMS is apply-edit → updated slice on the live session,
	// best of 7.
	WarmEditMS float64 `json:"warm_edit_ms"`
}

// watchBenchRun is one sweep at a fixed GOMAXPROCS.
type watchBenchRun struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// ColdBuildMS is the from-scratch sources → slice latency the warm
	// numbers are up against.
	ColdBuildMS float64         `json:"cold_build_ms"`
	Rows        []watchBenchRow `json:"rows"`
}

type watchBenchReport struct {
	HostCPUs int             `json:"host_cpus"`
	Classes  int             `json:"classes"`
	Note     string          `json:"note"`
	Runs     []watchBenchRun `json:"runs"`
}

// genWatchProgram builds an n-class program whose Main exercises every
// class, plus the seed on Main's final print.
func genWatchProgram(n int) (map[string]string, session.Seed) {
	srcs := make(map[string]string, n+1)
	for i := 0; i < n; i++ {
		srcs[fmt.Sprintf("c%d.mj", i)] = watchClassSource(i, 7, false)
	}
	var b strings.Builder
	b.WriteString("class Main {\n    static void main() {\n        int acc;\n        acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "        C%d v%d = new C%d();\n        v%d.set(%d);\n        acc = acc + v%d.work(v%d.get());\n",
			i, i, i, i, i, i, i)
	}
	b.WriteString("        print(acc);\n    }\n}\n")
	srcs["main.mj"] = b.String()
	return srcs, session.Seed{File: "main.mj", Line: 3*n + 5}
}

// watchClassSource renders class Ci. The bias literal is the
// single-method-edit knob (same line shape, one digit differs); extra
// toggles a trailing method, the class-shape knob.
func watchClassSource(i, bias int, extra bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class C%d {\n    int val;\n    void set(int v) { this.val = v; }\n    int get() { return this.val; }\n", i)
	fmt.Fprintf(&b, "    int work(int x) { return x + %d; }\n", bias)
	if extra {
		b.WriteString("    int spare(int x) { return x; }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

const watchExtraFile = "class Extra {\n    int val;\n    int echo(int x) { return x; }\n}\n"

// measureWarmEdits runs 7 rounds of apply-edit-then-slice on the live
// session and returns the best round in milliseconds. apply receives
// the round number so it can alternate edit variants (every round must
// be a real edit, or the fast path answers from cache).
func measureWarmEdits(t *testing.T, sess *session.Session, seeds []session.Seed, apply func(round int)) float64 {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 7; i++ {
		runtime.GC()
		start := time.Now()
		apply(i)
		if _, err := sess.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// measureWatchRun collects one GOMAXPROCS sweep.
func measureWatchRun(t *testing.T, classes, gmp int) watchBenchRun {
	run := watchBenchRun{GOMAXPROCS: gmp}
	srcs, seed := genWatchProgram(classes)
	seeds := []session.Seed{seed}

	run.ColdBuildMS = timeIt(func() {
		fresh := session.Open(srcs, session.WithIncremental(), session.WithWorkers(gmp))
		if _, err := fresh.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			t.Fatal(err)
		}
	})

	sess := session.Open(srcs, session.WithIncremental(), session.WithWorkers(gmp))
	if _, err := sess.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
		t.Fatal(err)
	}

	run.Rows = append(run.Rows, watchBenchRow{
		Scenario: "single_method_edit",
		WarmEditMS: measureWarmEdits(t, sess, seeds, func(round int) {
			sess.Update("c0.mj", watchClassSource(0, 8+round%2, false))
		}),
	})
	run.Rows = append(run.Rows, watchBenchRow{
		Scenario: "class_shape_change",
		WarmEditMS: measureWarmEdits(t, sess, seeds, func(round int) {
			sess.Update("c1.mj", watchClassSource(1, 7, round%2 == 0))
		}),
	})
	// File add: reset (remove + settle) happens outside the timed
	// region, so every round measures the add direction.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 7; i++ {
		sess.Remove("extra.mj")
		if _, err := sess.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		start := time.Now()
		sess.Update("extra.mj", watchExtraFile)
		if _, err := sess.SliceAll(core.Options{Mode: core.Thin}, seeds); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	run.Rows = append(run.Rows, watchBenchRow{
		Scenario:   "file_add",
		WarmEditMS: float64(best) / float64(time.Millisecond),
	})

	// Every warm round above must have gone down the delta paths; a
	// silent fallback to full rebuilds would make the numbers a lie.
	if st := sess.Stats(); st.DeltaSolves == 0 || st.DeltaSDGs == 0 || st.UnitReuses == 0 {
		t.Fatalf("warm edits did not engage the delta paths: %+v", st)
	}
	for _, row := range run.Rows {
		if row.WarmEditMS >= run.ColdBuildMS {
			t.Errorf("GOMAXPROCS %d %s: warm edit (%.2fms) not faster than cold build (%.2fms)",
				gmp, row.Scenario, row.WarmEditMS, run.ColdBuildMS)
		}
	}
	return run
}

// TestRecordWatchBenchmarks records the watch-mode latency sweep in
// BENCH_watch.json at the repository root. Skipped under -short.
func TestRecordWatchBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark recording skipped in -short mode")
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	report := watchBenchReport{
		HostCPUs: runtime.NumCPU(),
		Classes:  24,
		Note: "best of 7 per cell; warm_edit_ms is apply-edit → updated thin slice on a live " +
			"incremental session (unit re-lower + delta points-to + delta SDG), byte-identical " +
			"to the cold build it replaces; single_method_edit dirties one derivation unit, " +
			"class_shape_change re-derives every unit referencing the class, file_add reuses " +
			"every existing unit",
	}
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		report.Runs = append(report.Runs, measureWatchRun(t, report.Classes, gmp))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_watch.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
