package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// serveBenchRow records end-to-end request performance at one client
// concurrency level, against a warm artifact store (the steady state a
// long-lived service converges to).
type serveBenchRow struct {
	Clients int `json:"clients"`
	// Requests issued across all clients for the throughput sample.
	Requests int `json:"requests"`
	// MeanLatencyUS and P99LatencyUS are per-request wall times.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	// ThroughputRPS is requests / wall-clock for the whole sample.
	ThroughputRPS float64 `json:"throughput_rps"`
}

// coldStartRow records the first-request latency of a freshly started
// server — the restart cost the persistent disk cache exists to cut.
type coldStartRow struct {
	// Scenario is "empty_cache" (full rebuild) or "disk_warm" (every
	// artifact decoded from the persistent cache).
	Scenario string `json:"scenario"`
	// Trials first requests, each on a brand-new server.
	Trials int `json:"trials"`
	// MeanFirstRequestUS is the mean first-request wall time.
	MeanFirstRequestUS float64 `json:"mean_first_request_us"`
}

type serveBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Workers    int             `json:"workers"`
	Note       string          `json:"note"`
	Rows       []serveBenchRow `json:"rows"`
	ColdStart  []coldStartRow  `json:"cold_start"`
	// Cluster is recorded by the cluster package's bench test; carried
	// through verbatim so the two recorders can run in either order.
	Cluster json.RawMessage `json:"cluster,omitempty"`
}

// TestRecordServeBenchmarks measures warm-cache request latency and
// throughput of the hardened server at 1, 4, and 16 concurrent
// clients and records them in BENCH_serve.json at the repository
// root, mirroring BENCH_session.json. Skipped under -short.
func TestRecordServeBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark recording skipped in -short mode")
	}
	workers := max(runtime.GOMAXPROCS(0), 2)
	srv := mustNew(t, Config{Workers: workers, QueueDepth: 64, QueueWait: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(Request{Sources: firstNames(), Seed: seedAt("// SEED")})
	if err != nil {
		t.Fatal(err)
	}
	do := func(client *http.Client) time.Duration {
		start := time.Now()
		res, err := client.Post(ts.URL+"/slice", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("benchmark request failed: HTTP %d", res.StatusCode)
		}
		return time.Since(start)
	}

	// Warm the store so every measured request is the steady state.
	do(http.DefaultClient)

	report := serveBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Note: "warm-cache /slice requests over HTTP loopback; every phase is served " +
			"from the bounded artifact store, so latency is admission + JSON + the " +
			"backward closure; on a single-CPU host higher concurrency measures " +
			"queueing rather than speedup",
	}
	for _, clients := range []int{1, 4, 16} {
		perClient := 100 / clients
		if perClient < 5 {
			perClient = 5
		}
		total := clients * perClient
		latencies := make([]time.Duration, total)
		var wg sync.WaitGroup
		wallStart := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := &http.Client{Timeout: 30 * time.Second}
				for j := 0; j < perClient; j++ {
					latencies[c*perClient+j] = do(client)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(wallStart)

		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		sorted := append([]time.Duration(nil), latencies...)
		for i := 1; i < len(sorted); i++ { // insertion sort; n ≤ 100
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		p99 := sorted[len(sorted)*99/100]
		report.Rows = append(report.Rows, serveBenchRow{
			Clients:       clients,
			Requests:      total,
			MeanLatencyUS: float64(sum) / float64(total) / float64(time.Microsecond),
			P99LatencyUS:  float64(p99) / float64(time.Microsecond),
			ThroughputRPS: float64(total) / wall.Seconds(),
		})
	}

	if st := srv.store.Stats(); st.Hits == 0 {
		t.Error("benchmark never hit the warm store; the numbers measure cold builds")
	}

	// Cold-start-after-restart: the first request on a fresh server
	// (empty in-memory store), against an empty cache dir vs one left
	// warm by a previous server over the same sources.
	warmDir := t.TempDir()
	firstRequest := func(cfg Config) time.Duration {
		srv := mustNew(t, cfg)
		fresh := httptest.NewServer(srv.Handler())
		defer fresh.Close()
		start := time.Now()
		res, err := http.Post(fresh.URL+"/slice", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("cold-start request failed: HTTP %d", res.StatusCode)
		}
		return time.Since(start)
	}
	firstRequest(Config{Workers: workers, CacheDir: warmDir}) // populate the disk tier
	const trials = 5
	var emptySum, warmSum time.Duration
	for i := 0; i < trials; i++ {
		emptySum += firstRequest(Config{Workers: workers, CacheDir: t.TempDir()})
		warmSum += firstRequest(Config{Workers: workers, CacheDir: warmDir})
	}
	report.ColdStart = []coldStartRow{
		{Scenario: "empty_cache", Trials: trials, MeanFirstRequestUS: float64(emptySum) / trials / float64(time.Microsecond)},
		{Scenario: "disk_warm", Trials: trials, MeanFirstRequestUS: float64(warmSum) / trials / float64(time.Microsecond)},
	}
	if old, err := os.ReadFile("../../BENCH_serve.json"); err == nil {
		var prev serveBenchReport
		if json.Unmarshal(old, &prev) == nil {
			report.Cluster = prev.Cluster
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Rows {
		fmt.Printf("serve bench: %2d clients  mean %7.0fus  p99 %7.0fus  %7.1f req/s\n",
			r.Clients, r.MeanLatencyUS, r.P99LatencyUS, r.ThroughputRPS)
	}
	for _, r := range report.ColdStart {
		fmt.Printf("serve bench: cold start %-11s  first request %7.0fus\n", r.Scenario, r.MeanFirstRequestUS)
	}
}
