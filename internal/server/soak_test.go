package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/faults"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

// soakStoreEntries/soakStoreBytes are the deliberately tight caps the
// soak asserts against.
const (
	soakStoreEntries = 8
	soakStoreBytes   = 8 << 20
)

// variantSources derives the i-th distinct program: same semantics,
// unique content hash, so the workload churns the bounded store far
// past its entry cap.
func variantSources(i int) map[string]string {
	return map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames + fmt.Sprintf("// soak variant %d\n", i),
	}
}

// allowedStatus is the closed set of HTTP statuses the hardened
// server may emit; anything else fails the soak.
var allowedStatus = map[int]bool{
	http.StatusOK:                  true, // ok / partial
	http.StatusBadRequest:          true, // malformed requests in the mix
	http.StatusUnprocessableEntity: true, // program errors
	http.StatusTooManyRequests:     true, // admission shed
	http.StatusInternalServerError: true, // injected panics
	http.StatusServiceUnavailable:  true, // breaker open / exhausted
	http.StatusGatewayTimeout:      true, // injected deadline expiry
}

var allowedKinds = map[string]bool{
	"bad_request": true, "program_error": true, "deadline": true,
	"canceled": true, "exhausted": true, "internal": true,
	"saturated": true, "breaker_open": true, "draining": true,
}

// TestSoakFaultInjection is the acceptance soak: 16 concurrent clients
// hammer the server while the fault harness injects panics, slow
// builds, spurious errors, and budget exhaustion across all session
// phases — plus one permanently poisoned program. It asserts that
//
//   - every response is a well-formed typed Response from the closed
//     status/kind sets,
//   - the bounded store never exceeds its entry or cost caps,
//   - the poisoned program's circuit opens (short-circuit 503s) and
//     recovers through a half-open probe once the faults stop,
//   - after drain the goroutine count returns to its baseline.
//
// Runs under -race in CI (the dedicated soak job).
func TestSoakFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	srv := mustNew(t, Config{
		Workers:           4,
		QueueDepth:        8,
		QueueWait:         150 * time.Millisecond,
		DefaultTimeout:    3 * time.Second,
		MaxTimeout:        5 * time.Second,
		StoreEntries:      soakStoreEntries,
		StoreBytes:        soakStoreBytes,
		BreakerFailures:   2,
		BreakerBackoff:    50 * time.Millisecond,
		BreakerMaxBackoff: 400 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())

	poison := variantSources(1000)
	poisonKey := string(session.Open(poison).SourceKey())[:16]
	reg := faults.NewRegistry()
	// The poisoned program panics in points-to on every request.
	reg.Add(faults.Rule{Phase: budget.PhasePointsTo, KeyPrefix: poisonKey, Mode: faults.Panic})
	// Sporadic background faults across all programs and phases.
	reg.Add(faults.Rule{Phase: budget.PhaseLoad, Mode: faults.Sleep, Delay: 2 * time.Millisecond, After: 5, Times: 60})
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, Mode: faults.Error, After: 11, Times: 12})
	reg.Add(faults.Rule{Phase: budget.PhasePointsTo, Mode: faults.Exhaust, After: 17, Times: 8})
	reg.Add(faults.Rule{Phase: budget.PhaseLower, Mode: faults.Panic, After: 29, Times: 4})
	uninstall := reg.Install()

	seedLine := papercases.Line(papercases.FirstNames, "// SEED")
	bugLine := papercases.Line(papercases.FirstNames, "// BUG")
	seed := fmt.Sprintf("%s:%d", papercases.FirstNamesFile, seedLine)
	bug := fmt.Sprintf("%s:%d", papercases.FirstNamesFile, bugLine)

	const clients = 16
	const perClient = 25
	var (
		wg          sync.WaitGroup
		capViolated atomic.Bool
		sawBreaker  atomic.Int64
		mu          sync.Mutex
		badResps    []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		if len(badResps) < 20 {
			badResps = append(badResps, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	checkCaps := func() {
		st := srv.store.Stats()
		if st.Entries > soakStoreEntries || st.Cost > soakStoreBytes {
			capViolated.Store(true)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	doPost := func(path string, body []byte) {
		res, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			report("%s: transport error: %v", path, err)
			return
		}
		defer res.Body.Close()
		if !allowedStatus[res.StatusCode] {
			report("%s: unexpected HTTP %d", path, res.StatusCode)
			return
		}
		var resp Response
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			report("%s: undecodable body (HTTP %d): %v", path, res.StatusCode, err)
			return
		}
		switch resp.Status {
		case "ok", "partial":
			if res.StatusCode != http.StatusOK {
				report("%s: status %q with HTTP %d", path, resp.Status, res.StatusCode)
			}
		case "error":
			if !allowedKinds[resp.Kind] {
				report("%s: unknown error kind %q", path, resp.Kind)
			}
			if resp.Kind == "breaker_open" {
				sawBreaker.Add(1)
			}
		default:
			report("%s: unknown status %q", path, resp.Status)
		}
		checkCaps()
	}

	marshal := func(req Request) []byte {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				switch {
				case j%7 == 3:
					// The poisoned program: internal error or, once
					// the circuit opens, a short-circuit 503.
					doPost("/slice", marshal(Request{Sources: poison, Seed: seed}))
				case j%5 == 2:
					// A deliberately tiny deadline on a dedicated
					// program (its breaker may open; that's typed
					// behaviour, not collateral for other variants).
					doPost("/slice", marshal(Request{Sources: variantSources(50 + c%3), Seed: seed, TimeoutMS: 2}))
				case j%13 == 7:
					doPost("/slice", []byte(`{"sources": not json`))
				case j%11 == 5:
					doPost("/check", marshal(Request{Sources: variantSources((c + j) % 12)}))
				case j%3 == 0:
					doPost("/batch", marshal(Request{Sources: variantSources((c + j) % 12), Seeds: []string{seed, bug}}))
				default:
					doPost("/slice", marshal(Request{Sources: variantSources((c + j) % 12), Seed: seed}))
				}
			}
		}(c)
	}
	wg.Wait()

	for _, msg := range badResps {
		t.Error(msg)
	}
	if capViolated.Load() {
		t.Errorf("session store exceeded its caps (entries ≤ %d, cost ≤ %d): %+v",
			soakStoreEntries, soakStoreBytes, srv.store.Stats())
	}
	stats := srv.Stats()
	if stats.Store.Evictions == 0 {
		t.Error("store churn produced no evictions; the bound was never exercised")
	}
	if sawBreaker.Load() == 0 || stats.Requests.BreakerOpen == 0 {
		t.Error("breaker never opened under a permanently poisoned program")
	}
	if stats.Requests.Internal == 0 {
		t.Error("no injected panic surfaced as a typed internal response")
	}

	// Stop injecting: the poisoned program's circuit must recover via
	// a half-open probe within a few backoff windows.
	uninstall()
	recoverDeadline := time.Now().Add(15 * time.Second)
	for {
		res, err := client.Post(ts.URL+"/slice", "application/json",
			bytes.NewReader(marshal(Request{Sources: poison, Seed: seed})))
		if err == nil {
			code := res.StatusCode
			res.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(recoverDeadline) {
			t.Fatal("poisoned program's circuit never recovered after faults stopped")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Other variants (the tiny-deadline ones) may legitimately still be
	// open — they were never re-probed. Only boundedness is asserted.
	if keys, _ := srv.breaker.tracked(); keys > 1024 {
		t.Errorf("breaker tracks %d keys, exceeding its cap", keys)
	}

	// Drain and hand-rolled goroutine-leak check: close the server,
	// drop idle client connections, and wait for the count to settle
	// back to (near) baseline.
	ts.Close()
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	settleDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(settleDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, after drain %d\n%s",
				baseline, now, truncateStack(string(buf[:n])))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// truncateStack keeps leak reports readable.
func truncateStack(s string) string {
	const limit = 8000
	if len(s) <= limit {
		return s
	}
	return s[:limit] + "\n... (truncated)"
}

// TestSoakWarmStoreKeepsHotProgramWarm is a small companion: under
// store churn, a program queried every round stays cached (LRU keeps
// it at the front) while one-shot programs are evicted around it.
func TestSoakWarmStoreKeepsHotProgramWarm(t *testing.T) {
	srv := mustNew(t, Config{
		Workers:      2,
		StoreEntries: 12, // hot program needs ~6 artifacts; leave room for churn
		StoreBytes:   soakStoreBytes,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hot := variantSources(0)
	seed := fmt.Sprintf("%s:%d", papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "// SEED"))
	postOK := func(req Request) {
		t.Helper()
		body, _ := json.Marshal(req)
		res, err := http.Post(ts.URL+"/slice", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("request failed: HTTP %d", res.StatusCode)
		}
	}

	postOK(Request{Sources: hot, Seed: seed})
	built := srv.store.Stats().Misses
	for i := 1; i <= 20; i++ {
		postOK(Request{Sources: variantSources(i), Seed: seed}) // churn
		postOK(Request{Sources: hot, Seed: seed})               // keep hot warm
	}
	// The hot program was re-touched every round: its artifacts must
	// never have been evicted and rebuilt. Churn programs rebuild
	// constantly, so misses grow — but every miss must belong to a
	// churn variant, which we can't distinguish by count alone; query
	// the hot program once more with a cold-stats check instead.
	before := srv.store.Stats().Misses
	postOK(Request{Sources: hot, Seed: seed})
	if got := srv.store.Stats().Misses; got != before {
		t.Fatalf("hot program was evicted despite constant use (misses %d -> %d, first build %d)", before, got, built)
	}
	if st := srv.store.Stats(); st.Entries > 12 {
		t.Fatalf("store exceeded its cap: %+v", st)
	}
}
