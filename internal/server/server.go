// Package server exposes the analysis pipeline as a hardened,
// long-running HTTP+JSON service (`thinslice serve`): interactive
// slice, batch, and checker queries over a shared, bounded artifact
// store, designed so no single request can take the process down.
//
// The hardening layers, outermost first:
//
//   - Admission control: a bounded worker pool behind a bounded wait
//     queue. Saturation is a fast, typed 429 with Retry-After — load
//     is shed at the door instead of accumulating goroutines.
//   - Deadline propagation: the per-request timeout flows from the
//     client (timeout_ms, clamped) through the request context into a
//     budget.Budget, so an expired or disconnected request abandons
//     analysis mid-phase with a typed error and frees its worker.
//   - A bounded session store: artifacts live in a cost-accounted LRU
//     (session.NewBoundedStore), keeping hot programs warm while
//     memory stays capped; eviction metrics are served at /statsz.
//   - A circuit breaker keyed by program content hash: a program that
//     repeatedly panics, times out, or exhausts its budget is
//     short-circuited with its cached typed error and exponential
//     backoff, so a pathological input cannot monopolize workers.
//   - A recover boundary around every request on top of the session's
//     per-phase boundary: the response is always well-formed JSON.
//
// Endpoints: POST /slice, /batch, /check, /watch (a long-lived
// incremental edit stream, see watch.go); GET /healthz, /readyz,
// /statsz. See the README "Serving" section for the wire format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/checkers"
	"thinslice/internal/core"
	"thinslice/internal/diskstore"
	"thinslice/internal/session"
)

// Config shapes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Workers bounds concurrent analyses (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the
	// running ones (default 4×Workers). Requests past the queue are
	// rejected immediately with 429.
	QueueDepth int
	// QueueWait bounds how long an admitted request may wait for a
	// worker before a 429 (default 2s).
	QueueWait time.Duration
	// DefaultTimeout is the per-request analysis deadline when the
	// client sets none; MaxTimeout clamps client-requested deadlines
	// (defaults 10s / 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSteps caps every analysis phase per request (0 = unlimited).
	MaxSteps int64
	// MaxRequestBytes bounds the request body (default 4 MiB).
	MaxRequestBytes int64
	// StoreEntries/StoreBytes cap the shared artifact store (defaults
	// 256 entries / 256 MiB estimated; 0 = unlimited).
	StoreEntries int
	StoreBytes   int64
	// BreakerFailures consecutive failures open a program's circuit
	// for BreakerBackoff, doubling per re-open up to BreakerMaxBackoff
	// (defaults 3 / 500ms / 30s).
	BreakerFailures   int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// CacheDir enables the persistent artifact cache: analysis
	// artifacts are encoded to a crash-safe content-addressed disk
	// store under this directory and survive process restarts. Empty
	// (the default) keeps the cache purely in memory.
	CacheDir string
	// CacheMaxBytes bounds the disk cache (0 = 256 MiB); the least
	// recently used artifacts are evicted beyond it.
	CacheMaxBytes int64
	// WatchHeartbeat is the interval between heartbeat events on an
	// otherwise-idle /watch stream (default 20s); a failed heartbeat
	// write releases the stream slot of a dead client promptly.
	WatchHeartbeat time.Duration
	// WatchIdleTimeout ends a /watch stream that has sent no edits for
	// this long (default 5m), so a silent-but-connected client cannot
	// pin one of the stream slots forever.
	WatchIdleTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof. Off by
	// default: the profiler is a debugging backdoor, not a public
	// endpoint.
	EnablePprof bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 4 << 20
	}
	if c.StoreEntries == 0 {
		c.StoreEntries = 256
	}
	if c.StoreBytes == 0 {
		c.StoreBytes = 256 << 20
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 500 * time.Millisecond
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 30 * time.Second
	}
	if c.WatchHeartbeat <= 0 {
		c.WatchHeartbeat = 20 * time.Second
	}
	if c.WatchIdleTimeout <= 0 {
		c.WatchIdleTimeout = 5 * time.Minute
	}
}

// Request is the wire format shared by /slice, /batch, and /check.
type Request struct {
	// Sources maps file name to content; required.
	Sources map[string]string `json:"sources"`
	// Seed ("file.mj:line") selects the /slice query; Seeds the
	// /batch query.
	Seed  string   `json:"seed,omitempty"`
	Seeds []string `json:"seeds,omitempty"`
	// Mode is "thin" (default) or "traditional"; Control adds
	// transitive control dependences to the traditional slice.
	Mode    string `json:"mode,omitempty"`
	Control bool   `json:"control,omitempty"`
	// NoObjSens disables object-sensitive container handling.
	NoObjSens bool `json:"no_obj_sens,omitempty"`
	// TimeoutMS is the client's analysis deadline, clamped to the
	// server's MaxTimeout; 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Checks selects checkers for /check ("all" when empty).
	Checks string `json:"checks,omitempty"`
}

// Response is the typed wire result every endpoint returns: Status is
// "ok", "partial" (a truncated-but-sound result), or "error", and
// error responses always carry a Kind from the closed set below plus
// the phase that failed when one did.
type Response struct {
	Status string `json:"status"`
	// Kind classifies errors: bad_request, program_error, deadline,
	// canceled, exhausted, internal, saturated, breaker_open,
	// draining.
	Kind         string `json:"kind,omitempty"`
	Error        string `json:"error,omitempty"`
	Phase        string `json:"phase,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// Truncated marks partial results (budget exhaustion mid-slice or
	// a degraded pointer analysis).
	Truncated bool          `json:"truncated,omitempty"`
	Slices []SliceResult `json:"slices,omitempty"`
	// Findings is present (possibly empty) on every successful /check
	// response — "no findings" must be distinguishable from "no data".
	Findings []Finding `json:"findings"`
}

// SliceResult is one seed's slice.
type SliceResult struct {
	Seed       string   `json:"seed"`
	Statements int      `json:"statements"`
	Lines      []string `json:"lines"`
	Truncated  bool     `json:"truncated,omitempty"`
}

// Finding is one checker finding.
type Finding struct {
	Checker string `json:"checker"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// Stats is the /statsz payload. Disk is nil (absent from the JSON)
// when the server runs without a persistent cache.
type Stats struct {
	Store session.StoreStats `json:"store"`
	// Phases counts pipeline-phase builds (parse, check, lower,
	// points-to, SDG, CHA, mod-ref, dataflow, ...) aggregated over
	// every session served from the store — cache hits don't count.
	Phases   session.Stats    `json:"phases"`
	Disk     *diskstore.Stats `json:"disk,omitempty"`
	Breaker  BreakerStats     `json:"breaker"`
	Running  int              `json:"running"`
	Queued   int              `json:"queued"`
	Requests RequestStats     `json:"requests"`
	Draining bool             `json:"draining"`
	// Cluster is present only when the server fronts a cluster node
	// (cluster.New registers the provider via SetClusterStats).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the cluster node's /statsz section: peer health by
// typed state plus the routing, hedging, peer-fetch, and handoff
// counters. The type lives here (not in package cluster) so the
// /statsz schema stays defined in one place; package cluster imports
// server, never the reverse.
type ClusterStats struct {
	Self          string `json:"self"`
	Members       int    `json:"members"`
	PeersUp       int    `json:"peers_up"`
	PeersDegraded int    `json:"peers_degraded"`
	PeersDown     int    `json:"peers_down"`
	// Forwards counts requests routed to a remote owner; Hedges the
	// secondary attempts launched after the latency threshold;
	// LocalFallbacks requests answered locally after every candidate
	// peer failed (the never-a-5xx degradation path).
	Forwards       int64 `json:"forwards"`
	ForwardErrors  int64 `json:"forward_errors"`
	Hedges         int64 `json:"hedges"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	// Peer artifact fetch outcomes; corrupt counts records that failed
	// container verification and were discarded before any decode.
	PeerFetchHits    int64 `json:"peer_fetch_hits"`
	PeerFetchMisses  int64 `json:"peer_fetch_misses"`
	PeerFetchCorrupt int64 `json:"peer_fetch_corrupt"`
	// Handoff artifact counts: sent while draining, received from a
	// draining peer, rejected because the record failed verification.
	HandoffsSent     int64 `json:"handoffs_sent"`
	HandoffsReceived int64 `json:"handoffs_received"`
	HandoffRejects   int64 `json:"handoff_rejects"`
}

// BreakerStats summarizes circuit-breaker state: how many programs
// carry state at all, and the per-state breakdown (closed + open +
// half_open = tracked_programs). OpenCircuits keeps its original
// meaning — circuits not yet settled back to closed — so it equals
// open + half_open.
type BreakerStats struct {
	TrackedPrograms int `json:"tracked_programs"`
	OpenCircuits    int `json:"open_circuits"`
	Closed          int `json:"closed"`
	Open            int `json:"open"`
	HalfOpen        int `json:"half_open"`
}

// RequestStats counts finished requests by outcome.
type RequestStats struct {
	Total        int64 `json:"total"`
	OK           int64 `json:"ok"`
	Partial      int64 `json:"partial"`
	BadRequest   int64 `json:"bad_request"`
	ProgramError int64 `json:"program_error"`
	Saturated    int64 `json:"saturated"`
	BreakerOpen  int64 `json:"breaker_open"`
	Deadline     int64 `json:"deadline"`
	Exhausted    int64 `json:"exhausted"`
	Internal     int64 `json:"internal"`
	Draining     int64 `json:"draining"`
}

type metrics struct {
	total, ok, partial, badRequest, programError, saturated,
	breakerOpen, deadline, exhausted, internal, draining atomic.Int64
}

func (m *metrics) snapshot() RequestStats {
	return RequestStats{
		Total: m.total.Load(), OK: m.ok.Load(), Partial: m.partial.Load(),
		BadRequest: m.badRequest.Load(), ProgramError: m.programError.Load(),
		Saturated: m.saturated.Load(), BreakerOpen: m.breakerOpen.Load(),
		Deadline: m.deadline.Load(), Exhausted: m.exhausted.Load(),
		Internal: m.internal.Load(), Draining: m.draining.Load(),
	}
}

// Server is the hardened slicing service. Create with New; serve its
// Handler, or Run it with graceful drain.
type Server struct {
	cfg      Config
	store    *session.Store
	disk     *diskstore.Cache
	breaker  *breaker
	admit    *admission
	mux      *http.ServeMux
	draining atomic.Bool
	metrics  metrics

	// Cluster integration points, set once by cluster.New before the
	// server starts serving (atomics so /statsz reads race-free).
	clusterStats atomic.Pointer[func() ClusterStats]
	remoteFetch  atomic.Pointer[session.RemoteFetch]
}

// New builds a Server, filling config defaults. It fails only when a
// configured CacheDir cannot be opened — a server without a persistent
// cache never errors.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	var disk *diskstore.Cache
	if cfg.CacheDir != "" {
		var err error
		disk, err = diskstore.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("opening cache dir %s: %w", cfg.CacheDir, err)
		}
	}
	s := &Server{
		cfg:  cfg,
		disk: disk,
		store: session.NewBoundedStore(session.StoreLimits{
			MaxEntries: max(cfg.StoreEntries, 0),
			MaxCost:    max(cfg.StoreBytes, 0),
		}),
		breaker: newBreaker(breakerConfig{
			failures: cfg.BreakerFailures,
			base:     cfg.BreakerBackoff,
			max:      cfg.BreakerMaxBackoff,
		}),
		admit: newAdmission(cfg.Workers, cfg.QueueDepth, cfg.QueueWait),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/slice", s.analysisHandler(runSlice))
	s.mux.HandleFunc("/batch", s.analysisHandler(runBatch))
	s.mux.HandleFunc("/check", s.analysisHandler(runCheck))
	s.mux.HandleFunc("/watch", s.watchHandler)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// DiskCache returns the persistent artifact cache, or nil when the
// server runs memory-only. The cluster layer serves peer artifact
// fetches and drain handoffs from it.
func (s *Server) DiskCache() *diskstore.Cache { return s.disk }

// RequestByteLimit reports the configured request body bound, so the
// cluster routing layer can buffer bodies under the same limit.
func (s *Server) RequestByteLimit() int64 { return s.cfg.MaxRequestBytes }

// SetClusterStats registers the provider for the /statsz cluster
// section. Call before serving.
func (s *Server) SetClusterStats(f func() ClusterStats) {
	s.clusterStats.Store(&f)
}

// SetRemoteFetch layers a remote artifact tier (peer fetch) under the
// disk tier of every session the server opens. Call before serving.
func (s *Server) SetRemoteFetch(f session.RemoteFetch) {
	s.remoteFetch.Store(&f)
}

// StartDrain flips the server into draining mode: analysis and watch
// endpoints answer 503 draining, /readyz fails. Run calls it on
// context cancellation; the cluster node calls it before streaming its
// warm artifacts away.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Stats snapshots the server's observable state.
func (s *Server) Stats() Stats {
	closed, open, halfOpen := s.breaker.stateCounts()
	running, queued := s.admit.load()
	st := Stats{
		Store:  s.store.Stats(),
		Phases: s.store.PhaseStats(),
		Breaker: BreakerStats{
			TrackedPrograms: closed + open + halfOpen,
			OpenCircuits:    open + halfOpen,
			Closed:          closed,
			Open:            open,
			HalfOpen:        halfOpen,
		},
		Running:  running,
		Queued:   queued,
		Requests: s.metrics.snapshot(),
		Draining: s.draining.Load(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.Disk = &ds
	}
	if f := s.clusterStats.Load(); f != nil {
		cs := (*f)()
		st.Cluster = &cs
	}
	return st
}

// Run serves ln until ctx is cancelled, then drains gracefully: new
// requests get 503 draining, in-flight requests finish (bounded by
// drainTimeout), and only then does Run return.
func (s *Server) Run(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		s.StartDrain()
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-serveErr // always http.ErrServerClosed after Shutdown
		return err
	}
}

// runFunc executes one admitted, breaker-approved request.
type runFunc func(sess *session.Session, req *Request) (*Response, error)

// analysisHandler wraps run with the hardening shell: drain check,
// body bounds, admission, deadline propagation, breaker, and a panic
// boundary. Every path writes a typed JSON Response.
func (s *Server) analysisHandler(run runFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.write(w, http.StatusServiceUnavailable, &Response{
				Status: "error", Kind: "draining", Error: "server is draining",
				RetryAfterMS: 1000,
			})
			return
		}
		if r.Method != http.MethodPost {
			s.write(w, http.StatusMethodNotAllowed, &Response{
				Status: "error", Kind: "bad_request", Error: "POST required",
			})
			return
		}
		req, errResp := s.decode(w, r)
		if errResp != nil {
			s.write(w, http.StatusBadRequest, errResp)
			return
		}

		// Deadline propagation: client timeout (clamped) or server
		// default → request context → budget → every analysis phase.
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
			if timeout > s.cfg.MaxTimeout {
				timeout = s.cfg.MaxTimeout
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		release, err := s.admit.acquire(ctx)
		if err != nil {
			var sat errSaturated
			if errors.As(err, &sat) {
				s.write(w, http.StatusTooManyRequests, &Response{
					Status: "error", Kind: "saturated",
					Error:        "worker pool and queue are full",
					RetryAfterMS: retryAfterMS(sat.retryAfter),
				})
				return
			}
			// The request's own deadline or connection died while
			// queued.
			s.write(w, http.StatusGatewayTimeout, &Response{
				Status: "error", Kind: "deadline",
				Error: "request expired while queued",
			})
			return
		}
		defer release()

		bud := s.newBudget(ctx)
		sess := s.openSession(req, bud)
		key := sess.SourceKey()

		dec := s.breaker.admit(key)
		if !dec.allow {
			resp := &Response{
				Status: "error", Kind: "breaker_open",
				Error:        fmt.Sprintf("circuit open for this program after repeated failures (last: %s: %s)", dec.lastKind, dec.lastErr),
				RetryAfterMS: retryAfterMS(dec.retryAfter),
			}
			s.write(w, http.StatusServiceUnavailable, resp)
			return
		}

		resp, err := runGuarded(run, sess, req)
		if err != nil {
			resp, code := errorResponse(err)
			if breakerCounts(err) {
				s.breaker.failure(key, resp.Kind, resp.Error)
			} else if dec.probe {
				s.breaker.abort(key)
			}
			s.write(w, code, resp)
			return
		}
		s.breaker.success(key)
		s.write(w, http.StatusOK, resp)
	}
}

// runGuarded is the outermost panic boundary: even a panic outside the
// session's per-phase boundary (slicing, encoding preparation) becomes
// a typed internal error.
func runGuarded(run runFunc, sess *session.Session, req *Request) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &budget.ErrInternal{Phase: "serve", Value: r, Stack: debug.Stack()}
		}
	}()
	return run(sess, req)
}

// decode parses and validates the request body. A non-nil *Response is
// the bad-request answer.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (*Request, *Response) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req Request
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &Response{Status: "error", Kind: "bad_request", Error: "malformed request body: " + err.Error()}
	}
	if len(req.Sources) == 0 {
		return nil, &Response{Status: "error", Kind: "bad_request", Error: "sources is required"}
	}
	switch req.Mode {
	case "", "thin", "traditional":
	default:
		return nil, &Response{Status: "error", Kind: "bad_request", Error: fmt.Sprintf("unknown mode %q", req.Mode)}
	}
	return &req, nil
}

func (s *Server) newBudget(ctx context.Context) *budget.Budget {
	var opts []budget.Option
	if s.cfg.MaxSteps > 0 {
		opts = append(opts, budget.WithSteps(s.cfg.MaxSteps))
	}
	return budget.New(ctx, opts...)
}

func (s *Server) openSession(req *Request, bud *budget.Budget) *session.Session {
	opts := []session.Option{
		session.InStore(s.store),
		session.WithBudget(bud),
		session.WithObjSens(!req.NoObjSens),
	}
	if s.disk != nil {
		opts = append(opts, session.WithDiskCache(s.disk))
	}
	if f := s.remoteFetch.Load(); f != nil {
		opts = append(opts, session.WithRemoteFetch(*f))
	}
	return session.Open(req.Sources, opts...)
}

// sliceOptions maps the request's mode to slicer options.
func sliceOptions(req *Request) core.Options {
	if req.Mode == "traditional" {
		return core.Options{Mode: core.Traditional, FollowControl: req.Control}
	}
	return core.Options{Mode: core.Thin}
}

// runSlice answers POST /slice: one seed, one slice.
func runSlice(sess *session.Session, req *Request) (*Response, error) {
	if req.Seed == "" {
		return nil, badRequestError{"seed is required"}
	}
	seed, err := parseSeed(req.Seed)
	if err != nil {
		return nil, badRequestError{err.Error()}
	}
	results, err := sess.SliceAll(sliceOptions(req), []session.Seed{seed})
	if err != nil {
		return nil, err
	}
	if len(results[0].Instrs) == 0 {
		return nil, programError{fmt.Sprintf("no reachable statements at %s", seed)}
	}
	return buildSliceResponse(sess, results)
}

// runBatch answers POST /batch: many seeds over one shared build. A
// seed matching nothing yields an empty per-seed result, not an error.
func runBatch(sess *session.Session, req *Request) (*Response, error) {
	if len(req.Seeds) == 0 {
		return nil, badRequestError{"seeds is required"}
	}
	seeds := make([]session.Seed, 0, len(req.Seeds))
	for _, raw := range req.Seeds {
		seed, err := parseSeed(raw)
		if err != nil {
			return nil, badRequestError{err.Error()}
		}
		seeds = append(seeds, seed)
	}
	results, err := sess.SliceAll(sliceOptions(req), seeds)
	if err != nil {
		return nil, err
	}
	return buildSliceResponse(sess, results)
}

func buildSliceResponse(sess *session.Session, results []session.SeedResult) (*Response, error) {
	resp := &Response{Status: "ok"}
	for _, r := range results {
		sr := SliceResult{Seed: r.Seed.String(), Lines: []string{}}
		if r.Slice != nil {
			sr.Statements = r.Slice.Size()
			sr.Truncated = r.Slice.Truncated
			lines := r.Slice.Lines()
			for _, p := range lines {
				sr.Lines = append(sr.Lines, fmt.Sprintf("%s:%d", p.File, p.Line))
			}
			if r.Slice.Truncated {
				resp.Truncated = true
			}
		}
		resp.Slices = append(resp.Slices, sr)
	}
	if partial, err := analysisPartial(sess); err == nil && partial {
		resp.Truncated = true
	}
	if resp.Truncated {
		resp.Status = "partial"
	}
	return resp, nil
}

// analysisPartial reports whether the (already built, hence cached)
// pipeline artifacts are budget-degraded.
func analysisPartial(sess *session.Session) (bool, error) {
	pts, err := sess.PointsTo()
	if err != nil {
		return false, err
	}
	g, err := sess.Graph()
	if err != nil {
		return false, err
	}
	return pts.Truncated || pts.Downgraded || g.Truncated, nil
}

// runCheck answers POST /check with the checker suite's findings.
func runCheck(sess *session.Session, req *Request) (*Response, error) {
	sel := req.Checks
	if sel == "" {
		sel = "all"
	}
	checks, err := checkers.Select(sel)
	if err != nil {
		return nil, badRequestError{err.Error()}
	}
	a, err := analyzer.FromSession(sess)
	if err != nil {
		return nil, err
	}
	rep := checkers.Run(a, checks, checkers.Config{})
	resp := &Response{Status: "ok", Findings: []Finding{}}
	for _, f := range rep.Findings {
		resp.Findings = append(resp.Findings, Finding{
			Checker: f.Checker, File: f.Pos.File, Line: f.Pos.Line, Message: f.Message,
		})
	}
	if rep.Truncated {
		resp.Truncated = true
		resp.Status = "partial"
	}
	return resp, nil
}

// badRequestError and programError type the two client-fault error
// classes run funcs can produce.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

type programError struct{ msg string }

func (e programError) Error() string { return e.msg }

// errorResponse maps a pipeline error to its typed response and HTTP
// status. The mapping is total: anything not recognized as a budget
// error or a request fault is a deterministic program error
// (parse/type failures, bad entries).
func errorResponse(err error) (*Response, int) {
	resp := &Response{Status: "error", Error: err.Error()}
	if phase, ok := budget.PhaseOf(err); ok {
		resp.Phase = string(phase)
	}
	var bad badRequestError
	var prog programError
	var internal *budget.ErrInternal
	switch {
	case errors.As(err, &bad):
		resp.Kind = "bad_request"
		return resp, http.StatusBadRequest
	case errors.As(err, &prog):
		resp.Kind = "program_error"
		return resp, http.StatusUnprocessableEntity
	case budget.IsCanceled(err):
		if errors.Is(err, context.DeadlineExceeded) {
			resp.Kind = "deadline"
		} else {
			resp.Kind = "canceled"
		}
		return resp, http.StatusGatewayTimeout
	case budget.IsExhausted(err):
		resp.Kind = "exhausted"
		resp.RetryAfterMS = 1000
		return resp, http.StatusServiceUnavailable
	case errors.As(err, &internal):
		resp.Kind = "internal"
		// The panic value is already in Error; drop the stack from
		// the wire (it is in the server's hands via the error).
		resp.Error = fmt.Sprintf("internal error in %s", internal.Phase)
		return resp, http.StatusInternalServerError
	default:
		resp.Kind = "program_error"
		return resp, http.StatusUnprocessableEntity
	}
}

// breakerCounts reports whether err should trip the program's circuit:
// internal faults, budget exhaustion, and deadline expiry do; a client
// disconnect (context.Canceled) and deterministic program errors do
// not.
func breakerCounts(err error) bool {
	var internal *budget.ErrInternal
	if errors.As(err, &internal) {
		return true
	}
	if budget.IsExhausted(err) {
		return true
	}
	return budget.IsCanceled(err) && errors.Is(err, context.DeadlineExceeded)
}

// write emits the response with its Retry-After header and bumps the
// retryAfterMS converts a backoff duration to the wire's millisecond
// hint, rounding up and clamping to at least 1ms. Plain
// Milliseconds() truncates: a sub-millisecond backoff (an early
// breaker re-open, a tiny configured base) became 0, which suppressed
// both the JSON hint and the Retry-After header entirely — the client
// was told nothing instead of "soon". With the floor, write() below
// then emits Retry-After ≥ 1 second (its own ceiling division can
// never round a positive hint down to 0).
func retryAfterMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// outcome counters.
func (s *Server) write(w http.ResponseWriter, code int, resp *Response) {
	s.count(resp)
	if resp.RetryAfterMS > 0 {
		// Ceiling division: any positive hint yields Retry-After ≥ 1s,
		// never a truncated-to-0 header.
		secs := (resp.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) count(resp *Response) {
	s.metrics.total.Add(1)
	switch {
	case resp.Status == "ok":
		s.metrics.ok.Add(1)
	case resp.Status == "partial":
		s.metrics.partial.Add(1)
	default:
		switch resp.Kind {
		case "bad_request":
			s.metrics.badRequest.Add(1)
		case "program_error":
			s.metrics.programError.Add(1)
		case "saturated":
			s.metrics.saturated.Add(1)
		case "breaker_open":
			s.metrics.breakerOpen.Add(1)
		case "deadline", "canceled":
			s.metrics.deadline.Add(1)
		case "exhausted":
			s.metrics.exhausted.Add(1)
		case "internal":
			s.metrics.internal.Add(1)
		case "draining":
			s.metrics.draining.Add(1)
		}
	}
}

// parseSeed parses "file.mj:line".
func parseSeed(raw string) (session.Seed, error) {
	i := strings.LastIndex(raw, ":")
	if i < 0 {
		return session.Seed{}, fmt.Errorf("seed %q is not of the form file:line", raw)
	}
	line, err := strconv.Atoi(raw[i+1:])
	if err != nil || line <= 0 {
		return session.Seed{}, fmt.Errorf("seed %q has an invalid line number", raw)
	}
	return session.Seed{File: raw[:i], Line: line}, nil
}
