package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/faults"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

func testConfig() Config {
	return Config{
		Workers:           2,
		QueueDepth:        2,
		QueueWait:         200 * time.Millisecond,
		DefaultTimeout:    5 * time.Second,
		StoreEntries:      32,
		StoreBytes:        32 << 20,
		BreakerFailures:   2,
		BreakerBackoff:    100 * time.Millisecond,
		BreakerMaxBackoff: time.Second,
	}
}

// mustNew builds a Server or fails the test; New errors only on an
// unopenable cache dir, which no default test config has.
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func firstNames() map[string]string {
	return map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
}

func seedAt(marker string) string {
	return fmt.Sprintf("%s:%d", papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, marker))
}

// post sends req to path and decodes the typed response.
func post(t *testing.T, base, path string, req any) (int, Response, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatalf("%s: response is not well-formed JSON: %v", path, err)
	}
	return res.StatusCode, resp, res.Header
}

func TestSliceEndpoint(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, "/slice", Request{Sources: firstNames(), Seed: seedAt("// SEED")})
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("slice: code %d, resp %+v", code, resp)
	}
	if len(resp.Slices) != 1 || resp.Slices[0].Statements == 0 || len(resp.Slices[0].Lines) == 0 {
		t.Fatalf("slice result empty: %+v", resp.Slices)
	}

	// Second request over the same program answers from the shared
	// store: no new misses beyond the first build.
	misses := srv.store.Stats().Misses
	code, _, _ = post(t, ts.URL, "/slice", Request{Sources: firstNames(), Seed: seedAt("// BUG")})
	if code != http.StatusOK {
		t.Fatalf("warm slice: code %d", code)
	}
	if got := srv.store.Stats().Misses; got != misses {
		t.Fatalf("warm request rebuilt artifacts: misses %d -> %d", misses, got)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, "/batch", Request{
		Sources: firstNames(),
		Seeds:   []string{seedAt("// SEED"), seedAt("// BUG"), papercases.FirstNamesFile + ":99999"},
	})
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("batch: code %d, resp %+v", code, resp)
	}
	if len(resp.Slices) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(resp.Slices))
	}
	if resp.Slices[0].Statements == 0 || resp.Slices[1].Statements == 0 {
		t.Fatalf("batch slices empty: %+v", resp.Slices)
	}
	if resp.Slices[2].Statements != 0 {
		t.Fatalf("seed with no statements produced a slice: %+v", resp.Slices[2])
	}
}

func TestCheckEndpoint(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, "/check", Request{Sources: firstNames()})
	if code != http.StatusOK || (resp.Status != "ok" && resp.Status != "partial") {
		t.Fatalf("check: code %d, resp %+v", code, resp)
	}
	if resp.Findings == nil {
		t.Fatal("check response omitted the findings array")
	}
}

func TestBadRequests(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  Request
	}{
		{"missing sources", Request{Seed: "x.mj:1"}},
		{"missing seed", Request{Sources: firstNames()}},
		{"bad seed", Request{Sources: firstNames(), Seed: "nocolon"}},
		{"bad mode", Request{Sources: firstNames(), Seed: seedAt("// SEED"), Mode: "hyperslice"}},
	}
	for _, tc := range cases {
		code, resp, _ := post(t, ts.URL, "/slice", tc.req)
		if code != http.StatusBadRequest || resp.Kind != "bad_request" {
			t.Errorf("%s: code %d kind %q, want 400 bad_request", tc.name, code, resp.Kind)
		}
	}

	// Malformed JSON body.
	res, err := http.Post(ts.URL+"/slice", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: code %d, want 400", res.StatusCode)
	}

	// Wrong method.
	res, err = http.Get(ts.URL + "/slice")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /slice: code %d, want 405", res.StatusCode)
	}
}

func TestProgramErrorIsTyped(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, "/slice", Request{
		Sources: map[string]string{"broken.mj": "class { this is not a program"},
		Seed:    "broken.mj:1",
	})
	if code != http.StatusUnprocessableEntity || resp.Kind != "program_error" {
		t.Fatalf("broken program: code %d kind %q, want 422 program_error", code, resp.Kind)
	}
	if resp.Error == "" {
		t.Fatal("program error lost its message")
	}
}

// TestDeadlinePropagation: a request-level timeout reaches the running
// phase and surfaces as a typed, phase-tagged deadline response — the
// worker is freed, not stuck.
func TestDeadlinePropagation(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := session.Open(firstNames()).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, KeyPrefix: string(key)[:16], Mode: faults.Sleep, Delay: 300 * time.Millisecond})
	defer reg.Install()()

	start := time.Now()
	code, resp, _ := post(t, ts.URL, "/slice", Request{Sources: firstNames(), Seed: seedAt("// SEED"), TimeoutMS: 50})
	if code != http.StatusGatewayTimeout || resp.Kind != "deadline" {
		t.Fatalf("deadline: code %d resp %+v, want 504 deadline", code, resp)
	}
	if resp.Phase == "" {
		t.Fatal("deadline response lost its phase tag")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
}

// TestSaturationSheds: with one worker wedged, excess load gets fast,
// typed 429s with Retry-After instead of piling up.
func TestSaturationSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Workers, cfg.QueueDepth, cfg.QueueWait = 1, 1, 100*time.Millisecond
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wedge the single worker on a slow program.
	slowSrc := map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
	key := session.Open(slowSrc).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, KeyPrefix: string(key)[:16], Mode: faults.Sleep, Delay: 600 * time.Millisecond})
	defer reg.Install()()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := post(t, ts.URL, "/slice", Request{Sources: slowSrc, Seed: seedAt("// SEED")})
		if code != http.StatusOK {
			t.Errorf("slow request finished %d, want 200", code)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let it claim the worker

	saturated := 0
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp, hdr := post(t, ts.URL, "/slice", Request{Sources: slowSrc, Seed: seedAt("// SEED")})
			if code == http.StatusTooManyRequests {
				mu.Lock()
				saturated++
				mu.Unlock()
				if resp.Kind != "saturated" || hdr.Get("Retry-After") == "" {
					t.Errorf("429 without typed body/Retry-After: %+v", resp)
				}
			}
		}()
	}
	wg.Wait()
	if saturated == 0 {
		t.Fatal("no request was shed at saturation")
	}
	if got := srv.Stats().Requests.Saturated; got == 0 {
		t.Fatal("saturation not counted in stats")
	}
}

// TestBreakerShortCircuitsPoisonedProgram: repeated injected panics on
// one program open its circuit — later requests short-circuit with the
// cached typed error without running analysis — and the circuit
// recovers via a half-open probe once the program stops failing.
func TestBreakerShortCircuitsPoisonedProgram(t *testing.T) {
	srv := mustNew(t, testConfig()) // BreakerFailures: 2, backoff 100ms
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	poison := firstNames()
	key := session.Open(poison).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhasePointsTo, KeyPrefix: string(key)[:16], Mode: faults.Panic, Times: 2})
	defer reg.Install()()

	req := Request{Sources: poison, Seed: seedAt("// SEED")}
	for i := 0; i < 2; i++ {
		code, resp, _ := post(t, ts.URL, "/slice", req)
		if code != http.StatusInternalServerError || resp.Kind != "internal" {
			t.Fatalf("poisoned request %d: code %d resp %+v, want 500 internal", i, code, resp)
		}
	}

	code, resp, hdr := post(t, ts.URL, "/slice", req)
	if code != http.StatusServiceUnavailable || resp.Kind != "breaker_open" {
		t.Fatalf("after failures: code %d kind %q, want 503 breaker_open", code, resp.Kind)
	}
	if hdr.Get("Retry-After") == "" || resp.RetryAfterMS <= 0 {
		t.Fatal("breaker rejection missing Retry-After")
	}

	// A different program is unaffected.
	other := map[string]string{papercases.ToyFile: papercases.Toy}
	otherSeed := fmt.Sprintf("%s:%d", papercases.ToyFile, papercases.Line(papercases.Toy, "// L7"))
	if code, resp, _ := post(t, ts.URL, "/slice", Request{Sources: other, Seed: otherSeed}); code != http.StatusOK {
		t.Fatalf("healthy program rejected while another's circuit is open: %d %+v", code, resp)
	}

	// The fault rule is spent (Times: 2): after the backoff window the
	// half-open probe succeeds and the circuit closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ = post(t, ts.URL, "/slice", req)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; last code %d", code)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, open := srv.breaker.tracked(); open != 0 {
		t.Fatalf("%d circuits still open after recovery", open)
	}
}

// TestDrainingResponses: a draining server answers typed 503s on the
// analysis endpoints and 503 on /readyz while /healthz stays 200.
func TestDrainingResponses(t *testing.T) {
	srv := mustNew(t, testConfig())
	srv.draining.Store(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, "/slice", Request{Sources: firstNames(), Seed: seedAt("// SEED")})
	if code != http.StatusServiceUnavailable || resp.Kind != "draining" {
		t.Fatalf("draining slice: code %d kind %q", code, resp.Kind)
	}
	res, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", res.StatusCode)
	}
}

// TestGracefulDrain: cancelling Run's context lets the in-flight
// request finish before the listener goes away for good.
func TestGracefulDrain(t *testing.T) {
	srv := mustNew(t, testConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	key := session.Open(firstNames()).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, KeyPrefix: string(key)[:16], Mode: faults.Sleep, Delay: 400 * time.Millisecond})
	defer reg.Install()()

	slowDone := make(chan int, 1)
	go func() {
		code, _, _ := post(t, base, "/slice", Request{Sources: firstNames(), Seed: seedAt("// SEED")})
		slowDone <- code
	}()
	time.Sleep(100 * time.Millisecond) // in-flight now
	cancel()

	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain finished %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	if !srv.Stats().Draining {
		t.Fatal("stats do not report draining")
	}
}

// TestStatszWellFormed: the observability endpoint returns the typed
// stats snapshot.
func TestStatszWellFormed(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _, _ := post(t, ts.URL, "/slice", Request{Sources: firstNames(), Seed: seedAt("// SEED")}); code != http.StatusOK {
		t.Fatalf("warmup request: %d", code)
	}
	res, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatalf("statsz not decodable: %v", err)
	}
	if st.Requests.Total == 0 || st.Store.Entries == 0 {
		t.Fatalf("statsz empty after a served request: %+v", st)
	}
}
