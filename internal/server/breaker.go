package server

import (
	"sync"
	"time"

	"thinslice/internal/session"
)

// breakerConfig shapes the per-program circuit breaker.
type breakerConfig struct {
	// failures is how many consecutive failures open the circuit.
	failures int
	// base is the first open window; it doubles per consecutive open
	// up to max (exponential backoff for persistently bad programs).
	base time.Duration
	max  time.Duration
	// maxKeys caps the tracked-program map; the least recently
	// touched state is dropped beyond it (a dropped program restarts
	// with a clean circuit — acceptable: tracking exists to shed
	// repeat offenders, not to be a permanent ledger).
	maxKeys int
	// now is the clock, injectable for tests.
	now func() time.Time
}

// breaker is a circuit breaker keyed by program content hash. Healthy
// programs carry no state at all — entries are created on first
// failure and deleted on success — so the map holds only the
// currently-suspicious tail of the workload.
//
// Per key the circuit is either closed (counting consecutive
// failures), open (rejecting until a backoff deadline), or half-open
// (one probe request allowed through after the deadline; its outcome
// closes or re-opens the circuit with a doubled window).
type breaker struct {
	cfg breakerConfig
	mu  sync.Mutex
	m   map[session.Key]*breakerState
}

type breakerState struct {
	fails     int       // consecutive failures while closed
	opens     int       // consecutive open windows (backoff exponent)
	open      bool      // rejecting (or probing) until openUntil passes
	openUntil time.Time
	probing   bool // a half-open probe is in flight
	lastErr   string
	lastKind  string
	touched   time.Time
}

// breakerDecision is the outcome of admit.
type breakerDecision struct {
	allow bool
	// probe marks a half-open trial request: its outcome must be
	// reported via success/failure to settle the circuit.
	probe bool
	// retryAfter and the cached error describe a rejection.
	retryAfter time.Duration
	lastErr    string
	lastKind   string
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.maxKeys <= 0 {
		cfg.maxKeys = 1024
	}
	return &breaker{cfg: cfg, m: make(map[session.Key]*breakerState)}
}

// admit decides whether a request for program k may run.
func (b *breaker) admit(k session.Key) breakerDecision {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.m[k]
	if !ok {
		return breakerDecision{allow: true}
	}
	st.touched = b.cfg.now()
	if !st.open {
		return breakerDecision{allow: true}
	}
	if remaining := st.openUntil.Sub(b.cfg.now()); remaining > 0 {
		return breakerDecision{retryAfter: remaining, lastErr: st.lastErr, lastKind: st.lastKind}
	}
	if st.probing {
		// Another request is already probing the half-open circuit;
		// shed this one with a short retry rather than stampeding a
		// program that just failed repeatedly.
		return breakerDecision{retryAfter: b.cfg.base, lastErr: st.lastErr, lastKind: st.lastKind}
	}
	st.probing = true
	return breakerDecision{allow: true, probe: true}
}

// success reports a completed request: the program is healthy, drop
// its state entirely.
func (b *breaker) success(k session.Key) {
	b.mu.Lock()
	delete(b.m, k)
	b.mu.Unlock()
}

// abort un-reserves a half-open probe that never ran the pipeline
// (e.g. the worker pool rejected it), leaving the circuit as it was.
func (b *breaker) abort(k session.Key) {
	b.mu.Lock()
	if st, ok := b.m[k]; ok {
		st.probing = false
	}
	b.mu.Unlock()
}

// failure reports a failed request with the typed error it produced;
// kind/msg become the cached short-circuit response.
func (b *breaker) failure(k session.Key, kind, msg string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.m[k]
	if !ok {
		b.evictOverCapLocked()
		st = &breakerState{}
		b.m[k] = st
	}
	st.touched = b.cfg.now()
	st.lastErr, st.lastKind = msg, kind
	if st.open && st.probing {
		// Failed probe: re-open immediately with a doubled window.
		st.probing = false
		st.opens++
		st.openUntil = b.cfg.now().Add(b.backoff(st.opens))
		return
	}
	st.fails++
	if st.fails >= b.cfg.failures {
		st.fails = 0
		st.open = true
		st.opens++
		st.openUntil = b.cfg.now().Add(b.backoff(st.opens))
	}
}

// backoff returns the open window for the nth consecutive open.
func (b *breaker) backoff(opens int) time.Duration {
	d := b.cfg.base
	for i := 1; i < opens; i++ {
		d *= 2
		if d >= b.cfg.max {
			return b.cfg.max
		}
	}
	if d > b.cfg.max {
		d = b.cfg.max
	}
	return d
}

// tracked returns how many programs currently carry breaker state, and
// how many of those are open.
func (b *breaker) tracked() (keys, open int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, st := range b.m {
		if st.open {
			open++
		}
	}
	return len(b.m), open
}

// stateCounts breaks the tracked programs down by circuit state at this
// instant: closed (still counting consecutive failures), open (hard
// rejecting until the backoff deadline), and half-open (past the
// deadline, so the next request becomes — or already is — a probe).
func (b *breaker) stateCounts() (closed, open, halfOpen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	for _, st := range b.m {
		switch {
		case !st.open:
			closed++
		case st.openUntil.After(now) && !st.probing:
			open++
		default:
			halfOpen++
		}
	}
	return closed, open, halfOpen
}

// evictOverCapLocked drops the least recently touched state to make
// room for one more. Called with b.mu held.
func (b *breaker) evictOverCapLocked() {
	if len(b.m) < b.cfg.maxKeys {
		return
	}
	var oldestKey session.Key
	var oldest time.Time
	first := true
	for k, st := range b.m {
		if first || st.touched.Before(oldest) {
			first = false
			oldestKey, oldest = k, st.touched
		}
	}
	delete(b.m, oldestKey)
}
