package server

// Tests for the persistent artifact cache behind the server: warm
// restarts serve byte-identical responses from disk, and every
// injected corruption — bit-flips, torn writes, short reads, EIO — is
// detected, quarantined, and transparently rebuilt. A corrupt cache
// never changes a response and never produces a 5xx.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"thinslice/internal/diskstore"
	"thinslice/internal/faults"
)

// diskConfig is testConfig plus a persistent cache in a fresh temp dir.
func diskConfig(t *testing.T) Config {
	cfg := testConfig()
	cfg.CacheDir = t.TempDir()
	return cfg
}

// rawPost returns the exact response bytes — the oracle for
// byte-identical restarts.
func rawPost(t *testing.T, base, path string, req Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, data
}

func sliceReq() Request {
	return Request{Sources: firstNames(), Seed: seedAt("// SEED")}
}

// populate runs one server against cfg, records the canonical response
// bytes, and shuts it down with the disk cache warm.
func populate(t *testing.T, cfg Config) []byte {
	t.Helper()
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := rawPost(t, ts.URL, "/slice", sliceReq())
	if code != http.StatusOK {
		t.Fatalf("populate: code %d body %s", code, body)
	}
	if puts := srv.Stats().Disk.Puts; puts == 0 {
		t.Fatal("populate wrote nothing to disk")
	}
	return body
}

func TestDiskWarmRestartByteIdentical(t *testing.T) {
	cfg := diskConfig(t)
	want := populate(t, cfg)

	// A fresh server over the same cache dir — a cold process, a warm
	// disk — must answer byte-identically without rebuilding.
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, got := rawPost(t, ts.URL, "/slice", sliceReq())
	if code != http.StatusOK {
		t.Fatalf("warm restart: code %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("warm restart response differs:\n got: %s\nwant: %s", got, want)
	}
	st := srv.Stats()
	if st.Disk == nil || st.Disk.Hits == 0 {
		t.Fatalf("warm restart served without disk hits: %+v", st.Disk)
	}
	if st.Disk.Quarantines != 0 {
		t.Fatalf("clean cache produced %d quarantines", st.Disk.Quarantines)
	}
}

func TestDiskCorruptionQuarantinedNeverServed(t *testing.T) {
	cfg := diskConfig(t)
	want := populate(t, cfg)

	// Flip a byte in the middle of every published artifact.
	objects := filepath.Join(cfg.CacheDir, "objects")
	des, err := os.ReadDir(objects)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range des {
		path := filepath.Join(objects, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no artifacts on disk to corrupt")
	}

	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, got := rawPost(t, ts.URL, "/slice", sliceReq())
	if code != http.StatusOK {
		t.Fatalf("corrupt cache surfaced as code %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("corrupt cache changed the response:\n got: %s\nwant: %s", got, want)
	}
	st := srv.Stats()
	if st.Disk.Quarantines == 0 {
		t.Fatal("corrupt entries were not quarantined")
	}
	if qs, err := os.ReadDir(filepath.Join(cfg.CacheDir, "quarantine")); err != nil || len(qs) == 0 {
		t.Fatalf("quarantine dir empty (err %v)", err)
	}
	// The rebuild re-published clean artifacts: a third server serves
	// them from disk again.
	srv2 := mustNew(t, cfg)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if code, got := rawPost(t, ts2.URL, "/slice", sliceReq()); code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("rebuilt cache: code %d, identical %v", code, bytes.Equal(got, want))
	}
	if st := srv2.Stats(); st.Disk.Hits == 0 || st.Disk.Quarantines != 0 {
		t.Fatalf("rebuilt cache not warm/clean: %+v", st.Disk)
	}
}

// TestDiskFaultInjection drives each faults.DiskMode through a live
// server: reads that fail or lie are quarantined and rebuilt, writes
// that fail or tear publish nothing — and no mode ever surfaces as an
// error response.
func TestDiskFaultInjection(t *testing.T) {
	t.Run("torn write publishes nothing", func(t *testing.T) {
		cfg := diskConfig(t)
		reg := faults.NewDiskRegistry()
		h := reg.Add(faults.DiskRule{Op: diskstore.OpWrite, Mode: faults.TornWrite})
		defer reg.Install()()

		srv := mustNew(t, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		code, _ := rawPost(t, ts.URL, "/slice", sliceReq())
		if code != http.StatusOK {
			t.Fatalf("torn writes surfaced as code %d", code)
		}
		if h.Fired() == 0 {
			t.Fatal("torn-write rule never fired")
		}
		st := srv.Stats()
		if st.Disk.PutErrors == 0 || st.Disk.Entries != 0 {
			t.Fatalf("torn writes published entries: %+v", st.Disk)
		}
	})

	t.Run("EIO on read rebuilds", func(t *testing.T) {
		cfg := diskConfig(t)
		want := populate(t, cfg)
		reg := faults.NewDiskRegistry()
		h := reg.Add(faults.DiskRule{Op: diskstore.OpRead, Mode: faults.EIO, Times: 1})
		defer reg.Install()()

		srv := mustNew(t, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		code, got := rawPost(t, ts.URL, "/slice", sliceReq())
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("EIO: code %d, identical %v", code, bytes.Equal(got, want))
		}
		if h.Fired() != 1 {
			t.Fatalf("EIO rule fired %d times, want 1", h.Fired())
		}
		if st := srv.Stats(); st.Disk.Quarantines == 0 {
			t.Fatalf("unreadable entry not quarantined: %+v", st.Disk)
		}
	})

	t.Run("short read rebuilds", func(t *testing.T) {
		cfg := diskConfig(t)
		want := populate(t, cfg)
		reg := faults.NewDiskRegistry()
		reg.Add(faults.DiskRule{Op: diskstore.OpRead, Mode: faults.ShortRead, Times: 2})
		defer reg.Install()()

		srv := mustNew(t, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		code, got := rawPost(t, ts.URL, "/slice", sliceReq())
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("short read: code %d, identical %v", code, bytes.Equal(got, want))
		}
		if st := srv.Stats(); st.Disk.Quarantines == 0 {
			t.Fatalf("truncated entry not quarantined: %+v", st.Disk)
		}
	})

	t.Run("bit flip on write caught on read", func(t *testing.T) {
		cfg := diskConfig(t)
		reg := faults.NewDiskRegistry()
		h := reg.Add(faults.DiskRule{Op: diskstore.OpWrite, Mode: faults.BitFlip})
		uninstall := reg.Install()
		want := populate(t, cfg) // every publish is silently corrupted
		uninstall()
		if h.Fired() == 0 {
			t.Fatal("bit-flip rule never fired")
		}

		srv := mustNew(t, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		code, got := rawPost(t, ts.URL, "/slice", sliceReq())
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("bit flip: code %d, identical %v", code, bytes.Equal(got, want))
		}
		if st := srv.Stats(); st.Disk.Quarantines == 0 {
			t.Fatalf("flipped entries not quarantined: %+v", st.Disk)
		}
	})
}

// TestPprofAbsentByDefault pins that the profiler is opt-in: without
// EnablePprof the mux has no /debug/pprof routes at all.
func TestPprofAbsentByDefault(t *testing.T) {
	srv := mustNew(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof: code %d, want 404", res.StatusCode)
	}

	cfg := testConfig()
	cfg.EnablePprof = true
	srv2 := mustNew(t, cfg)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	res, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with -pprof: code %d, want 200", res.StatusCode)
	}
}

// jsonKeys flattens a decoded JSON object into sorted dotted key paths
// — the schema, independent of values.
func jsonKeys(prefix string, v any) []string {
	obj, ok := v.(map[string]any)
	if !ok {
		return []string{prefix}
	}
	var out []string
	for k, sub := range obj {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		out = append(out, jsonKeys(p, sub)...)
	}
	sort.Strings(out)
	return out
}

// TestStatszSchemaGolden pins the exact /statsz key set with the disk
// tier enabled. Monitoring dashboards key on these names; a rename or
// removal must be a conscious, test-visible decision.
func TestStatszSchemaGolden(t *testing.T) {
	cfg := diskConfig(t)
	srv := mustNew(t, cfg)
	// Register a cluster stats provider so the golden pins the cluster
	// section's key names too (absent entirely on non-cluster servers,
	// which the non-cluster goldens elsewhere already cover).
	srv.SetClusterStats(func() ClusterStats {
		return ClusterStats{Self: "a", Members: 3}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := rawPost(t, ts.URL, "/slice", sliceReq()); code != http.StatusOK {
		t.Fatalf("warmup: code %d", code)
	}
	res, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	want := []string{
		"breaker.closed",
		"breaker.half_open",
		"breaker.open",
		"breaker.open_circuits",
		"breaker.tracked_programs",
		"cluster.forward_errors",
		"cluster.forwards",
		"cluster.handoff_rejects",
		"cluster.handoffs_received",
		"cluster.handoffs_sent",
		"cluster.hedges",
		"cluster.local_fallbacks",
		"cluster.members",
		"cluster.peer_fetch_corrupt",
		"cluster.peer_fetch_hits",
		"cluster.peer_fetch_misses",
		"cluster.peers_degraded",
		"cluster.peers_down",
		"cluster.peers_up",
		"cluster.self",
		"disk.bytes",
		"disk.entries",
		"disk.evicted_bytes",
		"disk.evictions",
		"disk.hits",
		"disk.max_bytes",
		"disk.misses",
		"disk.put_errors",
		"disk.puts",
		"disk.quarantines",
		"draining",
		"phases.CHAs",
		"phases.CSGraphs",
		"phases.Checks",
		"phases.Dataflows",
		"phases.DeltaSDGs",
		"phases.DeltaSolves",
		"phases.Depgraphs",
		"phases.Lowers",
		"phases.ModRefs",
		"phases.Parses",
		"phases.PointsTos",
		"phases.PreludeParses",
		"phases.SDGs",
		"phases.UnitLowers",
		"phases.UnitReuses",
		"queued",
		"requests.bad_request",
		"requests.breaker_open",
		"requests.deadline",
		"requests.draining",
		"requests.exhausted",
		"requests.internal",
		"requests.ok",
		"requests.partial",
		"requests.program_error",
		"requests.saturated",
		"requests.total",
		"running",
		"store.Cost",
		"store.CostEvicted",
		"store.Entries",
		"store.Evictions",
		"store.Hits",
		"store.Misses",
	}
	got := jsonKeys("", stats)
	if len(got) != len(want) {
		t.Fatalf("statsz schema changed:\n got  %v\n want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("statsz schema changed at %q (want %q):\n got  %v", got[i], want[i], got)
		}
	}
}
