package server

import (
	"sync"
	"testing"
	"time"

	"thinslice/internal/session"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(failures int) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(breakerConfig{
		failures: failures,
		base:     time.Second,
		max:      8 * time.Second,
		maxKeys:  4,
		now:      clk.now,
	})
	return b, clk
}

const keyA, keyB = session.Key("aaaa"), session.Key("bbbb")

// TestBreakerOpensAfterConsecutiveFailures walks the state machine:
// closed → open after N failures → rejecting with the cached error →
// half-open probe after the window → closed again on probe success.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, clk := newTestBreaker(3)
	for i := 0; i < 3; i++ {
		if d := b.admit(keyA); !d.allow || d.probe {
			t.Fatalf("failure %d: closed circuit rejected or probed", i)
		}
		b.failure(keyA, "internal", "injected panic")
	}
	d := b.admit(keyA)
	if d.allow {
		t.Fatal("circuit still admitting after the failure threshold")
	}
	if d.lastKind != "internal" || d.lastErr != "injected panic" {
		t.Fatalf("rejection lost the cached error: %+v", d)
	}
	if d.retryAfter <= 0 || d.retryAfter > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", d.retryAfter)
	}

	// After the window: exactly one half-open probe; concurrent
	// requests are still shed.
	clk.advance(1100 * time.Millisecond)
	first, second := b.admit(keyA), b.admit(keyA)
	if !first.allow || !first.probe {
		t.Fatalf("post-window request was not a probe: %+v", first)
	}
	if second.allow {
		t.Fatal("two probes admitted concurrently")
	}

	b.success(keyA)
	if d := b.admit(keyA); !d.allow || d.probe {
		t.Fatalf("circuit not closed after probe success: %+v", d)
	}
	if keys, _ := b.tracked(); keys != 0 {
		t.Fatalf("healthy program still tracked (%d keys)", keys)
	}
}

// TestBreakerProbeFailureDoublesBackoff: each consecutive re-open
// doubles the window up to the cap.
func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	b, clk := newTestBreaker(1)
	b.failure(keyA, "deadline", "timeout") // opens with 1s window

	want := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second}
	for round, wantWindow := range want {
		clk.advance(9 * time.Second) // past any window
		d := b.admit(keyA)
		if !d.probe {
			t.Fatalf("round %d: expected a probe, got %+v", round, d)
		}
		b.failure(keyA, "deadline", "timeout") // probe fails → re-open doubled
		if d := b.admit(keyA); d.allow {
			t.Fatalf("round %d: circuit admitted right after probe failure", round)
		} else if d.retryAfter != wantWindow {
			t.Fatalf("round %d: window = %v, want %v", round, d.retryAfter, wantWindow)
		}
	}
}

// TestBreakerAbortLeavesCircuitOpen: a probe that never ran (shed by
// admission) must not settle the circuit either way.
func TestBreakerAbortLeavesCircuitOpen(t *testing.T) {
	b, clk := newTestBreaker(1)
	b.failure(keyA, "internal", "x")
	clk.advance(2 * time.Second)
	if d := b.admit(keyA); !d.probe {
		t.Fatalf("expected probe, got %+v", d)
	}
	b.abort(keyA)
	// The probe slot is free again: the next request may probe.
	if d := b.admit(keyA); !d.probe {
		t.Fatalf("probe slot not released after abort: %+v", d)
	}
}

// TestBreakerKeysAreIndependent: one program's failures never affect
// another's circuit.
func TestBreakerKeysAreIndependent(t *testing.T) {
	b, _ := newTestBreaker(1)
	b.failure(keyA, "internal", "x")
	if d := b.admit(keyA); d.allow {
		t.Fatal("failed program admitted")
	}
	if d := b.admit(keyB); !d.allow {
		t.Fatal("healthy program rejected")
	}
}

// TestBreakerMapBounded: the tracked-program map never exceeds its
// cap; the least recently touched state is dropped.
func TestBreakerMapBounded(t *testing.T) {
	b, clk := newTestBreaker(1)
	for i := 0; i < 10; i++ {
		clk.advance(time.Millisecond)
		b.failure(session.Key(string(rune('a'+i))), "internal", "x")
	}
	if keys, _ := b.tracked(); keys > 4 {
		t.Fatalf("breaker tracks %d keys, cap is 4", keys)
	}
}
