package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/faults"
	"thinslice/internal/session"
)

// TestRetryAfterMSRoundsUp pins the wire-hint conversion: any positive
// backoff yields a positive hint. Plain Milliseconds() truncated
// sub-millisecond backoffs to 0, which suppressed the JSON hint and
// the Retry-After header entirely.
func TestRetryAfterMSRoundsUp(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want int64
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 1},
		{100 * time.Microsecond, 1},
		{time.Millisecond, 1},
		{1500 * time.Microsecond, 2},
		{999 * time.Millisecond, 999},
		{2 * time.Second, 2000},
	}
	for _, c := range cases {
		if got := retryAfterMS(c.in); got != c.want {
			t.Errorf("retryAfterMS(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestBreakerSubSecondBackoffKeepsRetryAfter is the regression test
// for the truncation bug: with a breaker backoff well under a second,
// the open-circuit rejection must still carry retry_after_ms ≥ 1 and a
// Retry-After header of at least one second — not a silent zero.
func TestBreakerSubSecondBackoffKeepsRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.BreakerFailures = 2
	cfg.BreakerBackoff = 100 * time.Microsecond // sub-millisecond
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	poison := firstNames()
	key := session.Open(poison).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhasePointsTo, KeyPrefix: string(key)[:16], Mode: faults.Panic, Times: 2})
	defer reg.Install()()

	req := Request{Sources: poison, Seed: seedAt("// SEED")}
	for i := 0; i < 2; i++ {
		if code, resp, _ := post(t, ts.URL, "/slice", req); code != http.StatusInternalServerError {
			t.Fatalf("poisoned request %d: code %d resp %+v", i, code, resp)
		}
	}

	// The circuit is open with a ~100µs backoff. The rejection races
	// the tiny window, so allow the breaker to have already half-opened
	// (the fault rule is spent, a probe succeeds) — but any breaker_open
	// answer we do see must carry usable retry hints.
	sawOpen := false
	for i := 0; i < 50 && !sawOpen; i++ {
		code, resp, hdr := post(t, ts.URL, "/slice", req)
		if code != http.StatusServiceUnavailable || resp.Kind != "breaker_open" {
			continue
		}
		sawOpen = true
		if resp.RetryAfterMS < 1 {
			t.Fatalf("sub-second backoff truncated retry_after_ms to %d", resp.RetryAfterMS)
		}
		secs, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || secs < 1 {
			t.Fatalf("sub-second backoff produced Retry-After %q, want an integer ≥ 1", hdr.Get("Retry-After"))
		}
	}
	if !sawOpen {
		t.Skip("breaker half-opened before any rejection was observed (backoff too fast on this machine)")
	}
}

// TestSaturationRetryAfterHeaderAtLeastOneSecond drives the queue-full
// path with a sub-second queue wait and checks the same rounding
// contract on the saturation rejection.
func TestSaturationRetryAfterHeaderAtLeastOneSecond(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.QueueWait = 50 * time.Millisecond // sub-second retry hint
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow := firstNames()
	key := session.Open(slow).SourceKey()
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, KeyPrefix: string(key)[:16], Mode: faults.Sleep, Delay: 500 * time.Millisecond})
	defer reg.Install()()

	req := Request{Sources: slow, Seed: seedAt("// SEED")}
	results := make(chan http.Header, 8)
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			code, _, hdr := post(t, ts.URL, "/slice", req)
			codes <- code
			results <- hdr
		}()
	}
	saw429 := false
	for i := 0; i < 8; i++ {
		code := <-codes
		hdr := <-results
		if code != http.StatusTooManyRequests {
			continue
		}
		saw429 = true
		secs, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || secs < 1 {
			t.Fatalf("saturated rejection Retry-After %q, want integer ≥ 1", hdr.Get("Retry-After"))
		}
	}
	if !saw429 {
		t.Skip("pool drained too fast to observe saturation on this machine")
	}
}
