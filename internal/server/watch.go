package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/checkers"
	"thinslice/internal/session"
)

// POST /watch is the long-lived incremental endpoint: the client opens
// one full-duplex connection, sends an initial Request-shaped object,
// and then streams edit objects (newline-delimited JSON) as files
// change. The server keeps one incremental session (WithIncremental)
// alive for the connection and answers every revision — the initial
// one and each edit — with one WatchEvent line carrying the updated
// slices, checker findings, and the incremental counters showing how
// little was re-derived. Program errors in an intermediate revision
// (a half-typed edit that no longer parses) are reported as
// revision-scoped error events and the stream continues; only a
// malformed stream, a drained server, or a closed connection ends it.
//
// Watch sessions run unbudgeted: the incremental delta paths refuse to
// engage under a budget (a truncated delta would poison every later
// one), and an editor-driven stream is interactive by nature. The
// per-revision work is still admitted through the worker pool, so a
// watch stream cannot starve request traffic between edits.

// WatchEdit is one edit message on a /watch stream. Any combination of
// fields may be set; an empty edit just re-queries the current
// revision.
type WatchEdit struct {
	// Update maps file name to new content (added or replaced).
	Update map[string]string `json:"update,omitempty"`
	// Remove lists file names to drop from the source set.
	Remove []string `json:"remove,omitempty"`
	// Seeds, when non-empty, replaces the watched seed list.
	Seeds []string `json:"seeds,omitempty"`
}

// WatchIncremental reports what one revision actually re-derived —
// the observable form of the session's derivation graph at work.
type WatchIncremental struct {
	UnitLowers  int `json:"unit_lowers"`  // per-method units lowered fresh
	UnitReuses  int `json:"unit_reuses"`  // units cloned from the store
	DeltaSolves int `json:"delta_solves"` // incremental points-to re-solves
	FullSolves  int `json:"full_solves"`  // full pointer analyses
	DeltaSDGs   int `json:"delta_sdgs"`   // incremental SDG rebuilds
	FullSDGs    int `json:"full_sdgs"`    // full SDG builds
}

// WatchEvent is one revision's answer on a /watch stream. Between
// revisions the server also emits events with Status "heartbeat" at
// the configured WatchHeartbeat interval — they carry the current Rev
// and no other payload, and double as liveness probes: a heartbeat
// that fails to write tears the stream down and frees its slot.
type WatchEvent struct {
	Rev       int           `json:"rev"`
	Status    string        `json:"status"` // ok, partial, error, or heartbeat
	Kind      string        `json:"kind,omitempty"`
	Error     string        `json:"error,omitempty"`
	Phase     string        `json:"phase,omitempty"`
	ElapsedMS int64         `json:"elapsed_ms"`
	Slices    []SliceResult `json:"slices,omitempty"`
	// Findings is present (possibly empty) whenever the stream was
	// opened with checks enabled and the revision analyzed cleanly.
	Findings    []Finding         `json:"findings,omitempty"`
	Incremental *WatchIncremental `json:"incremental,omitempty"`
}

// watchStreams caps concurrent /watch connections independently of the
// worker pool (a stream holds no worker while idle).
const maxWatchStreams = 32

var watchStreams atomic.Int64

// watchHandler serves POST /watch.
func (s *Server) watchHandler(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.write(w, http.StatusServiceUnavailable, &Response{
			Status: "error", Kind: "draining", Error: "server is draining", RetryAfterMS: 1000,
		})
		return
	}
	if r.Method != http.MethodPost {
		s.write(w, http.StatusMethodNotAllowed, &Response{
			Status: "error", Kind: "bad_request", Error: "POST required",
		})
		return
	}
	if n := watchStreams.Add(1); n > maxWatchStreams {
		watchStreams.Add(-1)
		s.write(w, http.StatusTooManyRequests, &Response{
			Status: "error", Kind: "saturated",
			Error:        "too many watch streams",
			RetryAfterMS: 1000,
		})
		return
	}
	defer watchStreams.Add(-1)

	// The stream is read incrementally for the connection's lifetime, so
	// the request-wide byte bound does not apply; each message is bounded
	// by the decoder's own buffer growth on one JSON value.
	dec := json.NewDecoder(r.Body)
	var init Request
	if err := dec.Decode(&init); err != nil {
		s.write(w, http.StatusBadRequest, &Response{
			Status: "error", Kind: "bad_request", Error: "malformed init message: " + err.Error(),
		})
		return
	}
	if len(init.Sources) == 0 {
		s.write(w, http.StatusBadRequest, &Response{
			Status: "error", Kind: "bad_request", Error: "sources is required",
		})
		return
	}
	seeds, err := parseWatchSeeds(&init)
	if err != nil {
		s.write(w, http.StatusBadRequest, &Response{
			Status: "error", Kind: "bad_request", Error: err.Error(),
		})
		return
	}

	opts := []session.Option{
		session.InStore(s.store),
		session.WithObjSens(!init.NoObjSens),
		session.WithIncremental(),
	}
	if s.disk != nil {
		opts = append(opts, session.WithDiskCache(s.disk))
	}
	sess := session.Open(init.Sources, opts...)

	// The stream reads edits and writes events concurrently for the
	// connection's lifetime; without full duplex the server would try to
	// drain the (endless) request body before releasing the response
	// headers and deadlock against a client waiting for revision 0.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		s.write(w, http.StatusInternalServerError, &Response{
			Status: "error", Kind: "internal", Error: "connection does not support full-duplex streaming",
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev *WatchEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	rev := 0
	if !emit(s.watchRevision(r, sess, &init, seeds, rev)) {
		return
	}

	// Edits are decoded on their own goroutine so the main loop can
	// multiplex them with the heartbeat ticker and the idle timer. The
	// reader owns the channel; done unblocks its send when the handler
	// returns first (the deferred close happens-before the connection
	// close that would eventually error the blocked Decode).
	type editMsg struct {
		edit WatchEdit
		err  error
	}
	edits := make(chan editMsg)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			var m editMsg
			m.err = dec.Decode(&m.edit)
			select {
			case edits <- m:
			case <-done:
				return
			}
			if m.err != nil {
				return
			}
		}
	}()

	heartbeat := time.NewTicker(s.cfg.WatchHeartbeat)
	defer heartbeat.Stop()
	idle := time.NewTimer(s.cfg.WatchIdleTimeout)
	defer idle.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// Doubles as a liveness probe: writing to a closed
			// connection fails and frees the stream slot without
			// waiting out the idle timer.
			if !emit(&WatchEvent{Rev: rev, Status: "heartbeat"}) {
				return
			}
		case <-idle.C:
			emit(&WatchEvent{
				Rev: rev, Status: "error", Kind: "deadline",
				Error: fmt.Sprintf("watch stream idle: no edits within %s", s.cfg.WatchIdleTimeout),
			})
			return
		case m := <-edits:
			if m.err != nil {
				if !errors.Is(m.err, io.EOF) && r.Context().Err() == nil {
					emit(&WatchEvent{
						Rev: rev + 1, Status: "error", Kind: "bad_request",
						Error: "malformed edit message: " + m.err.Error(),
					})
				}
				return
			}
			idle.Reset(s.cfg.WatchIdleTimeout)
			edit := m.edit
			for name, content := range edit.Update {
				sess.Update(name, content)
			}
			for _, name := range edit.Remove {
				sess.Remove(name)
			}
			if len(edit.Seeds) > 0 {
				init.Seeds = edit.Seeds
				init.Seed = ""
				if seeds, err = parseWatchSeeds(&init); err != nil {
					rev++
					if !emit(&WatchEvent{Rev: rev, Status: "error", Kind: "bad_request", Error: err.Error()}) {
						return
					}
					continue
				}
			}
			rev++
			if !emit(s.watchRevision(r, sess, &init, seeds, rev)) {
				return
			}
			if s.draining.Load() {
				return
			}
		}
	}
}

// watchRevision computes one revision's event: admission, the guarded
// slice/check run, and the incremental counter delta around it.
func (s *Server) watchRevision(r *http.Request, sess *session.Session, init *Request, seeds []session.Seed, rev int) *WatchEvent {
	start := time.Now()
	release, err := s.admit.acquire(r.Context())
	if err != nil {
		ev := &WatchEvent{Rev: rev, Status: "error", ElapsedMS: time.Since(start).Milliseconds()}
		var sat errSaturated
		if errors.As(err, &sat) {
			ev.Kind, ev.Error = "saturated", "worker pool and queue are full"
		} else {
			ev.Kind, ev.Error = "canceled", "watch connection closed while queued"
		}
		return ev
	}
	defer release()

	before := sess.Stats()
	resp, err := runGuarded(func(sess *session.Session, req *Request) (*Response, error) {
		return runWatchQuery(sess, req, seeds)
	}, sess, init)
	after := sess.Stats()
	ev := &WatchEvent{Rev: rev}
	if err != nil {
		errResp, _ := errorResponse(err)
		ev.Status, ev.Kind, ev.Error, ev.Phase = "error", errResp.Kind, errResp.Error, errResp.Phase
	} else {
		ev.Status = resp.Status
		ev.Slices = resp.Slices
		ev.Findings = resp.Findings
	}
	ev.Incremental = &WatchIncremental{
		UnitLowers:  after.UnitLowers - before.UnitLowers,
		UnitReuses:  after.UnitReuses - before.UnitReuses,
		DeltaSolves: after.DeltaSolves - before.DeltaSolves,
		FullSolves:  after.PointsTos - before.PointsTos,
		DeltaSDGs:   after.DeltaSDGs - before.DeltaSDGs,
		FullSDGs:    after.SDGs - before.SDGs,
	}
	ev.ElapsedMS = time.Since(start).Milliseconds()
	return ev
}

// runWatchQuery answers one revision: slices for every watched seed
// (seeds that match nothing yield empty results, as in /batch — a line
// can temporarily hold no statement mid-edit), plus checker findings
// when the stream was opened with checks.
func runWatchQuery(sess *session.Session, init *Request, seeds []session.Seed) (*Response, error) {
	resp := &Response{Status: "ok"}
	if len(seeds) > 0 {
		results, err := sess.SliceAll(sliceOptions(init), seeds)
		if err != nil {
			return nil, err
		}
		sliced, err := buildSliceResponse(sess, results)
		if err != nil {
			return nil, err
		}
		resp = sliced
	}
	if init.Checks != "" {
		checks, err := checkers.Select(init.Checks)
		if err != nil {
			return nil, badRequestError{err.Error()}
		}
		a, err := analyzer.FromSession(sess)
		if err != nil {
			return nil, err
		}
		rep := checkers.Run(a, checks, checkers.Config{})
		resp.Findings = []Finding{}
		for _, f := range rep.Findings {
			resp.Findings = append(resp.Findings, Finding{
				Checker: f.Checker, File: f.Pos.File, Line: f.Pos.Line, Message: f.Message,
			})
		}
		if rep.Truncated {
			resp.Truncated = true
			resp.Status = "partial"
		}
	}
	return resp, nil
}

// parseWatchSeeds resolves the stream's seed list from Seed/Seeds.
func parseWatchSeeds(req *Request) ([]session.Seed, error) {
	raw := req.Seeds
	if req.Seed != "" {
		raw = append([]string{req.Seed}, raw...)
	}
	seeds := make([]session.Seed, 0, len(raw))
	for _, one := range raw {
		seed, err := parseSeed(one)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, seed)
	}
	if len(seeds) == 0 && req.Checks == "" {
		return nil, fmt.Errorf("watch needs at least one seed or a checks selection")
	}
	return seeds, nil
}
