package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

const watchAlpha = `class Alpha {
    int val;
    void set(int v) { this.val = v; }
    int get() { return this.val; }
    int bump(int x) { return x + 1; }
}
`

const watchAlphaEdited = `class Alpha {
    int val;
    void set(int v) { this.val = v; }
    int get() { return this.val; }
    int bump(int x) { return x + 2; }
}
`

const watchAlphaBroken = `class Alpha {
    int val;
    void set(int v) { this.val = v; }
    int get() { return this.val; }
    int bump(int x) { return x + ; }
}
`

const watchMain = `class Main {
    static void main() {
        Alpha a = new Alpha();
        a.set(3);
        int x = a.bump(a.get());
        print(x);
    }
}
`

// watchClient drives one full-duplex /watch stream over a raw TCP
// connection (the stdlib HTTP/1.1 client is half-duplex: it holds the
// response back until the request body is fully written, which is
// exactly what a watch stream never does). Edits go down the wire as
// chunked-encoding chunks; events come back off the streamed response
// body.
type watchClient struct {
	t      *testing.T
	conn   net.Conn
	resp   *http.Response
	events *bufio.Scanner
}

func dialWatch(t *testing.T, tsURL string, init any) *watchClient {
	t.Helper()
	u, err := url.Parse(tsURL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /watch HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n", u.Host)
	c := &watchClient{t: t, conn: conn}
	c.sendJSON(init)
	resp, err := http.ReadResponse(bufio.NewReader(conn), &http.Request{Method: http.MethodPost})
	if err != nil {
		t.Fatalf("reading watch response: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	c.resp = resp
	c.events = sc
	// Close the raw connection first: Body.Close on a chunked body
	// drains to EOF, which a live stream never reaches.
	t.Cleanup(func() {
		_ = conn.Close()
		_ = resp.Body.Close()
	})
	return c
}

// sendJSON writes one JSON value as one HTTP chunk.
func (c *watchClient) sendJSON(v any) {
	c.t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		c.t.Fatal(err)
	}
	b = append(b, '\n')
	if _, err := fmt.Fprintf(c.conn, "%x\r\n%s\r\n", len(b), b); err != nil {
		c.t.Fatalf("sending edit: %v", err)
	}
}

func (c *watchClient) send(edit WatchEdit) { c.sendJSON(edit) }

// closeSend ends the request body (terminal chunk): the server sees
// EOF and closes the stream.
func (c *watchClient) closeSend() {
	if _, err := io.WriteString(c.conn, "0\r\n\r\n"); err != nil {
		c.t.Fatalf("closing send side: %v", err)
	}
}

func (c *watchClient) next() WatchEvent {
	c.t.Helper()
	if !c.events.Scan() {
		c.t.Fatalf("watch stream ended early: %v", c.events.Err())
	}
	var ev WatchEvent
	if err := json.Unmarshal(c.events.Bytes(), &ev); err != nil {
		c.t.Fatalf("malformed event %q: %v", c.events.Text(), err)
	}
	return ev
}

// TestWatchStreamIncrementalEdits is the end-to-end watch gate: a
// stream over a multi-file program answers the initial revision with a
// full build, answers a single-method edit with a delta build (one
// unit re-lowered, SolveDelta and BuildDelta instead of full solves),
// survives a revision that does not parse, and recovers on the fix.
func TestWatchStreamIncrementalEdits(t *testing.T) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	// Cleanup, not defer: dialWatch registers the connection close as a
	// cleanup, and ts.Close blocks until the stream's connection dies.
	t.Cleanup(ts.Close)

	c := dialWatch(t, ts.URL, map[string]any{
		"sources": map[string]string{"alpha.mj": watchAlpha, "main.mj": watchMain},
		"seed":    "main.mj:6",
	})
	if ct := c.resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	cold := c.next()
	if cold.Rev != 0 || cold.Status != "ok" {
		t.Fatalf("cold revision: %+v", cold)
	}
	if len(cold.Slices) != 1 || cold.Slices[0].Statements == 0 {
		t.Fatalf("cold revision produced no slice: %+v", cold.Slices)
	}
	if inc := cold.Incremental; inc == nil || inc.FullSolves != 1 || inc.DeltaSolves != 0 || inc.UnitReuses != 0 {
		t.Fatalf("cold revision counters: %+v", cold.Incremental)
	}

	// One-line body edit: the warm revision must be a pure delta.
	c.send(WatchEdit{Update: map[string]string{"alpha.mj": watchAlphaEdited}})
	warm := c.next()
	if warm.Rev != 1 || warm.Status != "ok" {
		t.Fatalf("warm revision: %+v", warm)
	}
	if len(warm.Slices) != 1 || warm.Slices[0].Statements == 0 {
		t.Fatalf("warm revision produced no slice: %+v", warm.Slices)
	}
	inc := warm.Incremental
	if inc == nil {
		t.Fatal("warm revision missing incremental counters")
	}
	if inc.UnitLowers != 1 || inc.UnitReuses == 0 {
		t.Errorf("warm revision re-lowered %d units (reused %d), want exactly 1 fresh", inc.UnitLowers, inc.UnitReuses)
	}
	if inc.DeltaSolves != 1 || inc.FullSolves != 0 {
		t.Errorf("warm revision solves: %+v, want one delta and no full solve", inc)
	}
	if inc.DeltaSDGs != 1 || inc.FullSDGs != 0 {
		t.Errorf("warm revision SDG builds: %+v, want one delta and no full build", inc)
	}

	// A half-typed revision: the stream reports the program error and
	// keeps going.
	c.send(WatchEdit{Update: map[string]string{"alpha.mj": watchAlphaBroken}})
	broken := c.next()
	if broken.Rev != 2 || broken.Status != "error" || broken.Kind != "program_error" {
		t.Fatalf("broken revision: %+v", broken)
	}

	// The fix restores service; the edit is identical to revision 1's
	// content, so the whole pipeline is a cache hit.
	c.send(WatchEdit{Update: map[string]string{"alpha.mj": watchAlphaEdited}})
	fixed := c.next()
	if fixed.Rev != 3 || fixed.Status != "ok" || len(fixed.Slices) != 1 {
		t.Fatalf("fixed revision: %+v", fixed)
	}
	if fi := fixed.Incremental; fi.UnitLowers != 0 || fi.FullSolves != 0 || fi.DeltaSolves != 0 {
		t.Errorf("fixed revision re-derived artifacts despite identical content: %+v", fi)
	}
}

// TestWatchRejectsBadInit pins the non-stream error paths: bad method,
// malformed init, and missing sources all answer with the typed JSON
// error shape, not a stream.
func TestWatchRejectsBadInit(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /watch: %d", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"malformed":  "{not json",
		"no sources": `{"seed":"a.mj:1"}`,
		"no seed":    `{"sources":{"a.mj":"class A {}"}}`,
	} {
		resp, err := http.Post(ts.URL+"/watch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var r Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("%s: undecodable response: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || r.Kind != "bad_request" {
			t.Fatalf("%s: got status %d kind %q", name, resp.StatusCode, r.Kind)
		}
	}
}

// TestWatchClosesOnClientEOF pins stream shutdown: closing the request
// body ends the handler promptly (no goroutine parked on a dead
// connection).
func TestWatchClosesOnClientEOF(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c := dialWatch(t, ts.URL, map[string]any{
		"sources": map[string]string{"alpha.mj": watchAlpha, "main.mj": watchMain},
		"seed":    "main.mj:6",
	})
	if ev := c.next(); ev.Status != "ok" {
		t.Fatalf("cold revision: %+v", ev)
	}
	c.closeSend()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c.events.Scan() {
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not close after client EOF")
	}
}

// TestWatchHeartbeatAndIdleTimeout drives a silent client: it opens a
// stream, reads revision 0, and then never sends another byte. The
// server must keep proving liveness with heartbeat events, eventually
// end the stream with a typed idle-timeout error event, and — the real
// point — release the stream slot so a dead client cannot pin one of
// the 32 forever.
func TestWatchHeartbeatAndIdleTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.WatchHeartbeat = 50 * time.Millisecond
	cfg.WatchIdleTimeout = 400 * time.Millisecond
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := watchStreams.Load()
	c := dialWatch(t, ts.URL, Request{
		Sources: map[string]string{"alpha.mj": watchAlpha, "main.mj": watchMain},
		Seeds:   []string{"main.mj:6"},
	})
	if ev := c.next(); ev.Rev != 0 || ev.Status != "ok" {
		t.Fatalf("rev 0: %+v", ev)
	}
	if got := watchStreams.Load(); got != before+1 {
		t.Fatalf("stream slot not held: %d, want %d", got, before+1)
	}

	// Stay silent. The server heartbeats until the idle timer fires,
	// then ends the stream with a typed error event.
	heartbeats := 0
	var last WatchEvent
	for {
		if !c.events.Scan() {
			t.Fatalf("stream ended without an idle-timeout event (heartbeats seen: %d): %v", heartbeats, c.events.Err())
		}
		var ev WatchEvent
		if err := json.Unmarshal(c.events.Bytes(), &ev); err != nil {
			t.Fatalf("malformed event %q: %v", c.events.Text(), err)
		}
		if ev.Status == "heartbeat" {
			heartbeats++
			if ev.Rev != 0 {
				t.Fatalf("heartbeat carries wrong rev: %+v", ev)
			}
			continue
		}
		last = ev
		break
	}
	if heartbeats < 2 {
		t.Fatalf("saw %d heartbeats before idle timeout, want ≥ 2", heartbeats)
	}
	if last.Status != "error" || last.Kind != "deadline" || !strings.Contains(last.Error, "idle") {
		t.Fatalf("final event is not a typed idle timeout: %+v", last)
	}
	// The stream is over: the scanner reaches EOF and the slot frees.
	for c.events.Scan() {
		t.Fatalf("unexpected event after idle timeout: %s", c.events.Text())
	}
	deadline := time.Now().Add(5 * time.Second)
	for watchStreams.Load() != before {
		if time.Now().After(deadline) {
			t.Fatalf("stream slot never released: %d held", watchStreams.Load()-before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchHeartbeatDetectsDeadClient kills the TCP connection without
// closing the stream; the next heartbeat write fails and the slot
// frees long before the idle timeout would fire.
func TestWatchHeartbeatDetectsDeadClient(t *testing.T) {
	cfg := testConfig()
	cfg.WatchHeartbeat = 50 * time.Millisecond
	cfg.WatchIdleTimeout = time.Hour // only heartbeats can reap it
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := watchStreams.Load()
	c := dialWatch(t, ts.URL, Request{
		Sources: map[string]string{"alpha.mj": watchAlpha, "main.mj": watchMain},
		Seeds:   []string{"main.mj:6"},
	})
	if ev := c.next(); ev.Rev != 0 || ev.Status != "ok" {
		t.Fatalf("rev 0: %+v", ev)
	}
	// Hard-close the socket: the client is gone, silently.
	c.conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for watchStreams.Load() != before {
		if time.Now().After(deadline) {
			t.Fatalf("dead client still pins a stream slot after 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
