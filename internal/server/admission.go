package server

import (
	"context"
	"time"
)

// admission is the bounded worker pool with a bounded wait queue. A
// request first claims a queue slot (covering both waiting and running
// requests); a full queue is an immediate rejection, so memory and
// goroutine count stay proportional to the configured bounds no matter
// the offered load. It then waits — at most queueWait, and never past
// its own deadline — for one of the worker slots that actually run
// analyses.
type admission struct {
	workers   chan struct{} // cap = concurrent analyses
	queue     chan struct{} // cap = workers + queued waiters
	queueWait time.Duration
}

func newAdmission(workers, queueDepth int, queueWait time.Duration) *admission {
	return &admission{
		workers:   make(chan struct{}, workers),
		queue:     make(chan struct{}, workers+queueDepth),
		queueWait: queueWait,
	}
}

// errSaturated reports an admission rejection and how long the client
// should back off.
type errSaturated struct {
	retryAfter time.Duration
}

func (e errSaturated) Error() string { return "server saturated; retry later" }

// acquire claims a worker slot, returning its release func. A full
// queue or an expired wait returns errSaturated; a context already
// done returns its error.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		// Queue full: shed immediately. Suggest the full queue-wait as
		// backoff — by then the present queue has drained or the
		// process is genuinely overloaded and the client should go
		// away for a while either way.
		return nil, errSaturated{retryAfter: a.queueWait}
	}
	unqueue := func() { <-a.queue }

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.workers <- struct{}{}:
		return func() { <-a.workers; unqueue() }, nil
	case <-timer.C:
		unqueue()
		return nil, errSaturated{retryAfter: a.queueWait}
	case <-ctx.Done():
		unqueue()
		return nil, ctx.Err()
	}
}

// load reports the current running and waiting request counts.
func (a *admission) load() (running, queued int) {
	running = len(a.workers)
	queued = len(a.queue) - running
	if queued < 0 {
		queued = 0
	}
	return running, queued
}
