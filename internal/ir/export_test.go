package ir

// ForceParallelLowerForTest lowers the sequential-fallback work
// threshold to zero so equivalence tests exercise the parallel
// lowering path on programs far below the production cutoff. Returns a
// restore func.
func ForceParallelLowerForTest() (restore func()) {
	old := lowerParallelMinStmts
	lowerParallelMinStmts = 0
	return func() { lowerParallelMinStmts = old }
}
