// Package ir defines a three-address, register-based intermediate
// representation in SSA form for the MiniJava-style language, plus the
// lowering from typed ASTs. The slicers operate on IR instructions:
// every instruction is an SDG node, and each operand use is classified
// as a producer use, a base-pointer use, or a control use — the
// distinction at the heart of thin slicing.
package ir

import (
	"fmt"
	"strings"

	"thinslice/internal/lang/token"
	"thinslice/internal/lang/types"
)

// Program is a whole lowered program.
type Program struct {
	Info     *types.Info
	Methods  []*Method
	MethodOf map[*types.MethodInfo]*Method
	// NumInstrs is the total number of instructions, which also bounds
	// instruction IDs (IDs are program-unique, dense from 0).
	NumInstrs int
	// Diags accumulates malformed constructs found during lowering; a
	// program with diagnostics is not safe to analyze (see Lower).
	Diags     Diagnostics
	instrByID []Instr
}

// InstrByID returns the instruction with the given program-unique ID.
func (p *Program) InstrByID(id int) Instr { return p.instrByID[id] }

// Method is a lowered method body in SSA form.
type Method struct {
	Sig    *types.MethodInfo
	Blocks []*Block // Blocks[0] is the entry
	Params []*Param // this (for instance methods) followed by declared params
	nextID int      // register numbering within the method
}

// Entry returns the entry block.
func (m *Method) Entry() *Block { return m.Blocks[0] }

// Name returns the qualified method name.
func (m *Method) Name() string { return m.Sig.QualifiedName() }

// Instrs calls f for every instruction in the method.
func (m *Method) Instrs(f func(Instr)) {
	for _, b := range m.Blocks {
		for _, ins := range b.Instrs {
			f(ins)
		}
	}
}

// Block is a basic block.
type Block struct {
	Index  int
	Method *Method
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.Index) }

// Reg is an SSA virtual register: defined exactly once.
type Reg struct {
	Num    int
	Typ    types.Type
	Def    Instr  // the defining instruction
	Hint   string // source-level name where known
	Method *Method
}

func (r *Reg) String() string {
	if r == nil {
		return "<nil>"
	}
	if r.Hint != "" {
		return fmt.Sprintf("%%%d(%s)", r.Num, r.Hint)
	}
	return fmt.Sprintf("%%%d", r.Num)
}

// Role classifies how an instruction uses an operand, following the
// paper's definition of "direct uses" (§2): producer uses carry value
// flow into the thin slice; base uses (pointer dereferences and array
// indices) are explainer material; control uses feed branches only.
type Role int

// Operand roles.
const (
	RoleProducer Role = iota
	RoleBase
	RoleControl
)

func (r Role) String() string {
	switch r {
	case RoleProducer:
		return "producer"
	case RoleBase:
		return "base"
	case RoleControl:
		return "control"
	}
	return "?"
}

// Instr is a single IR instruction.
type Instr interface {
	// ID returns the program-unique dense instruction ID.
	ID() int
	Pos() token.Pos
	Block() *Block
	// Def returns the register defined by this instruction, or nil.
	Def() *Reg
	// Uses returns operand registers (never nil entries).
	Uses() []*Reg
	// UseRoles returns roles parallel to Uses().
	UseRoles() []Role
	// EachUse visits every operand with its role, in Uses() order,
	// without allocating — the analyses' scan loops run it once per
	// instruction per context clone, where Uses()'s fresh slices were
	// a measurable share of whole-pipeline allocation.
	EachUse(f func(r *Reg, role Role))
	String() string

	setID(int)
	setBlock(*Block)
	replaceUse(old, new *Reg)
}

type instrBase struct {
	id  int
	pos token.Pos
	blk *Block
}

func (i *instrBase) ID() int           { return i.id }
func (i *instrBase) Pos() token.Pos    { return i.pos }
func (i *instrBase) Block() *Block     { return i.blk }
func (i *instrBase) setID(id int)      { i.id = id }
func (i *instrBase) setBlock(b *Block) { i.blk = b }

func repl(slot **Reg, old, new *Reg) {
	if *slot == old {
		*slot = new
	}
}

// Param declares a formal parameter; Index 0 is the receiver for
// instance methods. Param instructions live at the top of the entry
// block and serve as the SDG formal-in nodes.
type Param struct {
	instrBase
	Dst   *Reg
	Index int
	Name  string
}

func (i *Param) Def() *Reg                { return i.Dst }
func (i *Param) Uses() []*Reg             { return nil }
func (i *Param) EachUse(func(*Reg, Role))     {}
func (i *Param) UseRoles() []Role         { return nil }
func (i *Param) replaceUse(old, new *Reg) {}
func (i *Param) String() string {
	return fmt.Sprintf("%s = param#%d %s", i.Dst, i.Index, i.Name)
}

// ConstInt materializes an integer (or char) constant.
type ConstInt struct {
	instrBase
	Dst *Reg
	Val int64
}

func (i *ConstInt) Def() *Reg                { return i.Dst }
func (i *ConstInt) Uses() []*Reg             { return nil }
func (i *ConstInt) EachUse(func(*Reg, Role))     {}
func (i *ConstInt) UseRoles() []Role         { return nil }
func (i *ConstInt) replaceUse(old, new *Reg) {}
func (i *ConstInt) String() string           { return fmt.Sprintf("%s = const %d", i.Dst, i.Val) }

// ConstBool materializes a boolean constant.
type ConstBool struct {
	instrBase
	Dst *Reg
	Val bool
}

func (i *ConstBool) Def() *Reg                { return i.Dst }
func (i *ConstBool) Uses() []*Reg             { return nil }
func (i *ConstBool) EachUse(func(*Reg, Role))     {}
func (i *ConstBool) UseRoles() []Role         { return nil }
func (i *ConstBool) replaceUse(old, new *Reg) {}
func (i *ConstBool) String() string           { return fmt.Sprintf("%s = const %t", i.Dst, i.Val) }

// ConstStr materializes a string constant. Each ConstStr is also an
// allocation site for a String object.
type ConstStr struct {
	instrBase
	Dst *Reg
	Val string
}

func (i *ConstStr) Def() *Reg                { return i.Dst }
func (i *ConstStr) Uses() []*Reg             { return nil }
func (i *ConstStr) EachUse(func(*Reg, Role))     {}
func (i *ConstStr) UseRoles() []Role         { return nil }
func (i *ConstStr) replaceUse(old, new *Reg) {}
func (i *ConstStr) String() string           { return fmt.Sprintf("%s = const %q", i.Dst, i.Val) }

// ConstNull materializes the null reference.
type ConstNull struct {
	instrBase
	Dst *Reg
}

func (i *ConstNull) Def() *Reg                { return i.Dst }
func (i *ConstNull) Uses() []*Reg             { return nil }
func (i *ConstNull) EachUse(func(*Reg, Role))     {}
func (i *ConstNull) UseRoles() []Role         { return nil }
func (i *ConstNull) replaceUse(old, new *Reg) {}
func (i *ConstNull) String() string           { return fmt.Sprintf("%s = null", i.Dst) }

// Copy is a source-level local-to-local assignment (x = y). SSA
// construction would normally elide these, but they are materialized
// so every source copy statement remains a dependence-graph node, as
// in the paper's SDG statement model.
type Copy struct {
	instrBase
	Dst *Reg
	Src *Reg
}

func (i *Copy) Def() *Reg                { return i.Dst }
func (i *Copy) Uses() []*Reg             { return []*Reg{i.Src} }
func (i *Copy) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *Copy) EachUse(f func(*Reg, Role)) { f(i.Src, RoleProducer) }
func (i *Copy) replaceUse(old, new *Reg) { repl(&i.Src, old, new) }
func (i *Copy) String() string           { return fmt.Sprintf("%s = copy %s", i.Dst, i.Src) }

// BinOp is an arithmetic, comparison, or equality operation.
type BinOp struct {
	instrBase
	Dst  *Reg
	Op   token.Kind
	X, Y *Reg
}

func (i *BinOp) Def() *Reg        { return i.Dst }
func (i *BinOp) Uses() []*Reg     { return []*Reg{i.X, i.Y} }
func (i *BinOp) UseRoles() []Role { return []Role{RoleProducer, RoleProducer} }
func (i *BinOp) EachUse(f func(*Reg, Role)) { f(i.X, RoleProducer); f(i.Y, RoleProducer) }
func (i *BinOp) replaceUse(old, new *Reg) {
	repl(&i.X, old, new)
	repl(&i.Y, old, new)
}
func (i *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s", i.Dst, i.X, i.Op, i.Y)
}

// UnOp is !x or -x.
type UnOp struct {
	instrBase
	Dst *Reg
	Op  token.Kind
	X   *Reg
}

func (i *UnOp) Def() *Reg                { return i.Dst }
func (i *UnOp) Uses() []*Reg             { return []*Reg{i.X} }
func (i *UnOp) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *UnOp) EachUse(f func(*Reg, Role)) { f(i.X, RoleProducer) }
func (i *UnOp) replaceUse(old, new *Reg) { repl(&i.X, old, new) }
func (i *UnOp) String() string           { return fmt.Sprintf("%s = %s%s", i.Dst, i.Op, i.X) }

// StrKind identifies a string intrinsic.
type StrKind int

// String intrinsic kinds.
const (
	StrConcat StrKind = iota
	StrSubstring
	StrIndexOf
	StrCharAt
	StrLength
	StrEquals
	StrStartsWith
	StrItoa
)

func (k StrKind) String() string {
	switch k {
	case StrConcat:
		return "concat"
	case StrSubstring:
		return "substring"
	case StrIndexOf:
		return "indexOf"
	case StrCharAt:
		return "charAt"
	case StrLength:
		return "length"
	case StrEquals:
		return "equals"
	case StrStartsWith:
		return "startsWith"
	case StrItoa:
		return "itoa"
	}
	return "?"
}

// StrOp applies a string intrinsic. A StrOp producing a string is an
// allocation site for the result String object. All operand uses are
// direct (producer) uses: strings are values, not containers.
type StrOp struct {
	instrBase
	Dst  *Reg
	Op   StrKind
	Args []*Reg
}

func (i *StrOp) Def() *Reg    { return i.Dst }
func (i *StrOp) Uses() []*Reg { return i.Args }
func (i *StrOp) UseRoles() []Role {
	roles := make([]Role, len(i.Args))
	for j := range roles {
		roles[j] = RoleProducer
	}
	return roles
}
func (i *StrOp) EachUse(f func(*Reg, Role)) {
	for _, a := range i.Args {
		f(a, RoleProducer)
	}
}
func (i *StrOp) replaceUse(old, new *Reg) {
	for j := range i.Args {
		repl(&i.Args[j], old, new)
	}
}
func (i *StrOp) String() string {
	parts := make([]string, len(i.Args))
	for j, a := range i.Args {
		parts[j] = a.String()
	}
	return fmt.Sprintf("%s = str.%s(%s)", i.Dst, i.Op, strings.Join(parts, ", "))
}

// Input reads external input (the program's data source). Input
// producing a string is an allocation site.
type Input struct {
	instrBase
	Dst   *Reg
	IsInt bool
}

func (i *Input) Def() *Reg                { return i.Dst }
func (i *Input) Uses() []*Reg             { return nil }
func (i *Input) EachUse(func(*Reg, Role))     {}
func (i *Input) UseRoles() []Role         { return nil }
func (i *Input) replaceUse(old, new *Reg) {}
func (i *Input) String() string {
	if i.IsInt {
		return fmt.Sprintf("%s = inputInt()", i.Dst)
	}
	return fmt.Sprintf("%s = input()", i.Dst)
}

// New allocates an object (an allocation site). The constructor call is
// a separate Call instruction.
type New struct {
	instrBase
	Dst   *Reg
	Class *types.ClassInfo
}

func (i *New) Def() *Reg                { return i.Dst }
func (i *New) Uses() []*Reg             { return nil }
func (i *New) EachUse(func(*Reg, Role))     {}
func (i *New) UseRoles() []Role         { return nil }
func (i *New) replaceUse(old, new *Reg) {}
func (i *New) String() string           { return fmt.Sprintf("%s = new %s", i.Dst, i.Class.Name) }

// NewArray allocates an array. The length operand is a producer use:
// it flows to ArrayLen reads of this array.
type NewArray struct {
	instrBase
	Dst  *Reg
	Elem types.Type
	Len  *Reg
}

func (i *NewArray) Def() *Reg                { return i.Dst }
func (i *NewArray) Uses() []*Reg             { return []*Reg{i.Len} }
func (i *NewArray) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *NewArray) EachUse(f func(*Reg, Role)) { f(i.Len, RoleProducer) }
func (i *NewArray) replaceUse(old, new *Reg) { repl(&i.Len, old, new) }
func (i *NewArray) String() string {
	return fmt.Sprintf("%s = new %s[%s]", i.Dst, i.Elem, i.Len)
}

// GetField loads x.f. The base pointer is a base use (excluded from
// thin slices); the produced value arrives via heap edges from SetField.
type GetField struct {
	instrBase
	Dst   *Reg
	Obj   *Reg
	Field *types.FieldInfo
}

func (i *GetField) Def() *Reg                { return i.Dst }
func (i *GetField) Uses() []*Reg             { return []*Reg{i.Obj} }
func (i *GetField) UseRoles() []Role         { return []Role{RoleBase} }
func (i *GetField) EachUse(f func(*Reg, Role)) { f(i.Obj, RoleBase) }
func (i *GetField) replaceUse(old, new *Reg) { repl(&i.Obj, old, new) }
func (i *GetField) String() string {
	return fmt.Sprintf("%s = %s.%s", i.Dst, i.Obj, i.Field.QualifiedName())
}

// SetField stores x.f = v.
type SetField struct {
	instrBase
	Obj   *Reg
	Field *types.FieldInfo
	Val   *Reg
}

func (i *SetField) Def() *Reg        { return nil }
func (i *SetField) Uses() []*Reg     { return []*Reg{i.Obj, i.Val} }
func (i *SetField) UseRoles() []Role { return []Role{RoleBase, RoleProducer} }
func (i *SetField) EachUse(f func(*Reg, Role)) { f(i.Obj, RoleBase); f(i.Val, RoleProducer) }
func (i *SetField) replaceUse(old, new *Reg) {
	repl(&i.Obj, old, new)
	repl(&i.Val, old, new)
}
func (i *SetField) String() string {
	return fmt.Sprintf("%s.%s = %s", i.Obj, i.Field.QualifiedName(), i.Val)
}

// GetStatic loads a static field (a global location; no base pointer).
type GetStatic struct {
	instrBase
	Dst   *Reg
	Field *types.FieldInfo
}

func (i *GetStatic) Def() *Reg                { return i.Dst }
func (i *GetStatic) Uses() []*Reg             { return nil }
func (i *GetStatic) EachUse(func(*Reg, Role))     {}
func (i *GetStatic) UseRoles() []Role         { return nil }
func (i *GetStatic) replaceUse(old, new *Reg) {}
func (i *GetStatic) String() string {
	return fmt.Sprintf("%s = static %s", i.Dst, i.Field.QualifiedName())
}

// SetStatic stores a static field.
type SetStatic struct {
	instrBase
	Field *types.FieldInfo
	Val   *Reg
}

func (i *SetStatic) Def() *Reg                { return nil }
func (i *SetStatic) Uses() []*Reg             { return []*Reg{i.Val} }
func (i *SetStatic) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *SetStatic) EachUse(f func(*Reg, Role)) { f(i.Val, RoleProducer) }
func (i *SetStatic) replaceUse(old, new *Reg) { repl(&i.Val, old, new) }
func (i *SetStatic) String() string {
	return fmt.Sprintf("static %s = %s", i.Field.QualifiedName(), i.Val)
}

// ArrayLoad loads a[i]. Both the array pointer and the index are base
// uses: the paper treats index provenance, like aliasing, as explainer
// material reachable by expansion (§4.1).
type ArrayLoad struct {
	instrBase
	Dst *Reg
	Arr *Reg
	Idx *Reg
}

func (i *ArrayLoad) Def() *Reg        { return i.Dst }
func (i *ArrayLoad) Uses() []*Reg     { return []*Reg{i.Arr, i.Idx} }
func (i *ArrayLoad) UseRoles() []Role { return []Role{RoleBase, RoleBase} }
func (i *ArrayLoad) EachUse(f func(*Reg, Role)) { f(i.Arr, RoleBase); f(i.Idx, RoleBase) }
func (i *ArrayLoad) replaceUse(old, new *Reg) {
	repl(&i.Arr, old, new)
	repl(&i.Idx, old, new)
}
func (i *ArrayLoad) String() string {
	return fmt.Sprintf("%s = %s[%s]", i.Dst, i.Arr, i.Idx)
}

// ArrayStore stores a[i] = v.
type ArrayStore struct {
	instrBase
	Arr *Reg
	Idx *Reg
	Val *Reg
}

func (i *ArrayStore) Def() *Reg        { return nil }
func (i *ArrayStore) Uses() []*Reg     { return []*Reg{i.Arr, i.Idx, i.Val} }
func (i *ArrayStore) UseRoles() []Role { return []Role{RoleBase, RoleBase, RoleProducer} }
func (i *ArrayStore) EachUse(f func(*Reg, Role)) { f(i.Arr, RoleBase); f(i.Idx, RoleBase); f(i.Val, RoleProducer) }
func (i *ArrayStore) replaceUse(old, new *Reg) {
	repl(&i.Arr, old, new)
	repl(&i.Idx, old, new)
	repl(&i.Val, old, new)
}
func (i *ArrayStore) String() string {
	return fmt.Sprintf("%s[%s] = %s", i.Arr, i.Idx, i.Val)
}

// ArrayLen reads a.length. The value flows from the NewArray length
// operand through a pseudo-field; the array pointer is a base use.
type ArrayLen struct {
	instrBase
	Dst *Reg
	Arr *Reg
}

func (i *ArrayLen) Def() *Reg                { return i.Dst }
func (i *ArrayLen) Uses() []*Reg             { return []*Reg{i.Arr} }
func (i *ArrayLen) UseRoles() []Role         { return []Role{RoleBase} }
func (i *ArrayLen) EachUse(f func(*Reg, Role)) { f(i.Arr, RoleBase) }
func (i *ArrayLen) replaceUse(old, new *Reg) { repl(&i.Arr, old, new) }
func (i *ArrayLen) String() string           { return fmt.Sprintf("%s = %s.length", i.Dst, i.Arr) }

// Cast is a checkcast: the value flows through (producer use).
type Cast struct {
	instrBase
	Dst    *Reg
	Src    *Reg
	Target types.Type
}

func (i *Cast) Def() *Reg                { return i.Dst }
func (i *Cast) Uses() []*Reg             { return []*Reg{i.Src} }
func (i *Cast) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *Cast) EachUse(f func(*Reg, Role)) { f(i.Src, RoleProducer) }
func (i *Cast) replaceUse(old, new *Reg) { repl(&i.Src, old, new) }
func (i *Cast) String() string {
	return fmt.Sprintf("%s = (%s) %s", i.Dst, i.Target, i.Src)
}

// InstanceOf tests the dynamic type of a reference.
type InstanceOf struct {
	instrBase
	Dst   *Reg
	Src   *Reg
	Class *types.ClassInfo
}

func (i *InstanceOf) Def() *Reg                { return i.Dst }
func (i *InstanceOf) Uses() []*Reg             { return []*Reg{i.Src} }
func (i *InstanceOf) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *InstanceOf) EachUse(f func(*Reg, Role)) { f(i.Src, RoleProducer) }
func (i *InstanceOf) replaceUse(old, new *Reg) { repl(&i.Src, old, new) }
func (i *InstanceOf) String() string {
	return fmt.Sprintf("%s = %s instanceof %s", i.Dst, i.Src, i.Class.Name)
}

// CallMode distinguishes dispatch behavior.
type CallMode int

// Call modes.
const (
	CallVirtual CallMode = iota // dispatch on the runtime type of Recv
	CallStatic                  // static method, no receiver
	CallCtor                    // constructor invocation (known target)
)

func (m CallMode) String() string {
	switch m {
	case CallVirtual:
		return "virtual"
	case CallStatic:
		return "static"
	case CallCtor:
		return "ctor"
	}
	return "?"
}

// Call invokes a method. Receiver and argument uses are producer uses:
// parameter passing copies values (paper §5.1). The call's Dst is the
// actual-out node for the return value.
type Call struct {
	instrBase
	Dst    *Reg // nil for void calls
	Mode   CallMode
	Callee *types.MethodInfo // statically resolved target (dispatch root)
	Recv   *Reg              // nil for static calls
	Args   []*Reg
}

func (i *Call) Def() *Reg { return i.Dst }
func (i *Call) Uses() []*Reg {
	var uses []*Reg
	if i.Recv != nil {
		uses = append(uses, i.Recv)
	}
	return append(uses, i.Args...)
}
func (i *Call) UseRoles() []Role {
	n := len(i.Args)
	if i.Recv != nil {
		n++
	}
	roles := make([]Role, n)
	for j := range roles {
		roles[j] = RoleProducer
	}
	return roles
}
func (i *Call) EachUse(f func(*Reg, Role)) {
	if i.Recv != nil {
		f(i.Recv, RoleProducer)
	}
	for _, a := range i.Args {
		f(a, RoleProducer)
	}
}
func (i *Call) replaceUse(old, new *Reg) {
	if i.Recv != nil {
		repl(&i.Recv, old, new)
	}
	for j := range i.Args {
		repl(&i.Args[j], old, new)
	}
}
func (i *Call) String() string {
	parts := make([]string, len(i.Args))
	for j, a := range i.Args {
		parts[j] = a.String()
	}
	recv := ""
	if i.Recv != nil {
		recv = i.Recv.String() + "."
	}
	lhs := ""
	if i.Dst != nil {
		lhs = i.Dst.String() + " = "
	}
	return fmt.Sprintf("%s%s call %s%s(%s)", lhs, i.Mode, recv, i.Callee.QualifiedName(), strings.Join(parts, ", "))
}

// Print writes a value to the program's output: a common seed.
type Print struct {
	instrBase
	Val *Reg
}

func (i *Print) Def() *Reg                { return nil }
func (i *Print) Uses() []*Reg             { return []*Reg{i.Val} }
func (i *Print) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *Print) EachUse(f func(*Reg, Role)) { f(i.Val, RoleProducer) }
func (i *Print) replaceUse(old, new *Reg) { repl(&i.Val, old, new) }
func (i *Print) String() string           { return fmt.Sprintf("print %s", i.Val) }

// Assert checks a condition; a failing assert is a failure seed, so the
// condition is a producer use (slicing from the assert must reach the
// computation of the asserted value).
type Assert struct {
	instrBase
	Cond *Reg
}

func (i *Assert) Def() *Reg                { return nil }
func (i *Assert) Uses() []*Reg             { return []*Reg{i.Cond} }
func (i *Assert) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *Assert) EachUse(f func(*Reg, Role)) { f(i.Cond, RoleProducer) }
func (i *Assert) replaceUse(old, new *Reg) { repl(&i.Cond, old, new) }
func (i *Assert) String() string           { return fmt.Sprintf("assert %s", i.Cond) }

// Return exits the method; the returned value (if any) flows to the
// callers' Call.Dst (a producer edge).
type Return struct {
	instrBase
	Val *Reg // nil for void
}

func (i *Return) Def() *Reg { return nil }
func (i *Return) Uses() []*Reg {
	if i.Val == nil {
		return nil
	}
	return []*Reg{i.Val}
}
func (i *Return) UseRoles() []Role {
	if i.Val == nil {
		return nil
	}
	return []Role{RoleProducer}
}
func (i *Return) EachUse(f func(*Reg, Role)) {
	if i.Val != nil {
		f(i.Val, RoleProducer)
	}
}
func (i *Return) replaceUse(old, new *Reg) {
	if i.Val != nil {
		repl(&i.Val, old, new)
	}
}
func (i *Return) String() string {
	if i.Val == nil {
		return "return"
	}
	return fmt.Sprintf("return %s", i.Val)
}

// Throw raises an exception: control exits the method abruptly.
type Throw struct {
	instrBase
	Val *Reg
}

func (i *Throw) Def() *Reg                { return nil }
func (i *Throw) Uses() []*Reg             { return []*Reg{i.Val} }
func (i *Throw) UseRoles() []Role         { return []Role{RoleProducer} }
func (i *Throw) EachUse(f func(*Reg, Role)) { f(i.Val, RoleProducer) }
func (i *Throw) replaceUse(old, new *Reg) { repl(&i.Val, old, new) }
func (i *Throw) String() string           { return fmt.Sprintf("throw %s", i.Val) }

// If branches on a boolean: the condition is a control use.
type If struct {
	instrBase
	Cond *Reg
	Then *Block
	Else *Block
}

func (i *If) Def() *Reg                { return nil }
func (i *If) Uses() []*Reg             { return []*Reg{i.Cond} }
func (i *If) UseRoles() []Role         { return []Role{RoleControl} }
func (i *If) EachUse(f func(*Reg, Role)) { f(i.Cond, RoleControl) }
func (i *If) replaceUse(old, new *Reg) { repl(&i.Cond, old, new) }
func (i *If) String() string {
	return fmt.Sprintf("if %s goto %s else %s", i.Cond, i.Then, i.Else)
}

// Goto is an unconditional jump.
type Goto struct {
	instrBase
	Target *Block
}

func (i *Goto) Def() *Reg                { return nil }
func (i *Goto) Uses() []*Reg             { return nil }
func (i *Goto) EachUse(func(*Reg, Role))     {}
func (i *Goto) UseRoles() []Role         { return nil }
func (i *Goto) replaceUse(old, new *Reg) {}
func (i *Goto) String() string           { return fmt.Sprintf("goto %s", i.Target) }

// Phi merges values at a join point; Edges is parallel to Block.Preds.
type Phi struct {
	instrBase
	Dst   *Reg
	Edges []*Reg
}

func (i *Phi) Def() *Reg    { return i.Dst }
func (i *Phi) Uses() []*Reg { return i.Edges }
func (i *Phi) UseRoles() []Role {
	roles := make([]Role, len(i.Edges))
	for j := range roles {
		roles[j] = RoleProducer
	}
	return roles
}
func (i *Phi) EachUse(f func(*Reg, Role)) {
	for _, e := range i.Edges {
		f(e, RoleProducer)
	}
}
func (i *Phi) replaceUse(old, new *Reg) {
	for j := range i.Edges {
		repl(&i.Edges[j], old, new)
	}
}
func (i *Phi) String() string {
	parts := make([]string, len(i.Edges))
	for j, a := range i.Edges {
		parts[j] = a.String()
	}
	return fmt.Sprintf("%s = phi(%s)", i.Dst, strings.Join(parts, ", "))
}

// IsTerminator reports whether ins ends a basic block.
func IsTerminator(ins Instr) bool {
	switch ins.(type) {
	case *If, *Goto, *Return, *Throw:
		return true
	}
	return false
}

// String renders a method body as text, for debugging and golden tests.
func (m *Method) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s:\n", m.Name())
	for _, blk := range m.Blocks {
		preds := make([]string, len(blk.Preds))
		for i, p := range blk.Preds {
			preds[i] = p.String()
		}
		fmt.Fprintf(&b, "%s: ; preds=%s\n", blk, strings.Join(preds, ","))
		for _, ins := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", ins)
		}
	}
	return b.String()
}
