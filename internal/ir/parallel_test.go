package ir_test

import (
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
)

// paperSources enumerates the paper's running examples.
func paperSources() map[string]map[string]string {
	return map[string]map[string]string{
		"firstnames": {papercases.FirstNamesFile: papercases.FirstNames},
		"toy":        {papercases.ToyFile: papercases.Toy},
		"filebug":    {papercases.FileBugFile: papercases.FileBug},
		"toughcast":  {papercases.ToughCastFile: papercases.ToughCast},
	}
}

// TestParallelLoweringMatchesSequentialPapercases pins the parallel
// lowering contract: any worker count produces a byte-identical
// program listing (instruction IDs, register numbers, diagnostics).
func TestParallelLoweringMatchesSequentialPapercases(t *testing.T) {
	defer ir.ForceParallelLowerForTest()()
	for name, srcs := range paperSources() {
		t.Run(name, func(t *testing.T) {
			info, err := loader.Load(srcs)
			if err != nil {
				t.Fatal(err)
			}
			want := ir.Sprint(ir.LowerWorkers(info, 1))
			for _, workers := range []int{2, 4, 8} {
				got := ir.Sprint(ir.LowerWorkers(info, workers))
				if got != want {
					t.Fatalf("workers=%d produced a different program\nsequential:\n%s\nparallel:\n%s",
						workers, want, got)
				}
			}
		})
	}
}

// TestParallelLoweringMatchesSequentialRandprog sweeps the randomized
// corpus: 200 generated programs, each lowered sequentially and with a
// worker pool, compared byte-for-byte.
func TestParallelLoweringMatchesSequentialRandprog(t *testing.T) {
	defer ir.ForceParallelLowerForTest()()
	n := 200
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		info, err := loader.Load(randprog.Generate(int64(seed), randprog.DefaultConfig))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := ir.Sprint(ir.LowerWorkers(info, 1))
		got := ir.Sprint(ir.LowerWorkers(info, 4))
		if got != want {
			t.Fatalf("seed %d: parallel lowering diverged from sequential", seed)
		}
	}
}
