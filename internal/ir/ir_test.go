package ir_test

import (
	"strings"
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/ir/ssa"
	"thinslice/internal/lang/loader"
)

// lower builds IR for a program consisting of the given source plus the
// prelude, verifying SSA well-formedness of every method.
func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	for _, m := range prog.Methods {
		if err := ssa.Verify(m); err != nil {
			t.Fatalf("SSA verification failed:\n%s\n%v", m, err)
		}
	}
	return prog
}

func findMethod(t *testing.T, prog *ir.Program, qname string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == qname {
			return m
		}
	}
	t.Fatalf("method %s not found", qname)
	return nil
}

func countInstr[T ir.Instr](m *ir.Method) int {
	n := 0
	m.Instrs(func(ins ir.Instr) {
		if _, ok := ins.(T); ok {
			n++
		}
	})
	return n
}

func TestStraightLine(t *testing.T) {
	prog := lower(t, `class A { int m(int x) { int y = x + 1; return y * 2; } }`)
	m := findMethod(t, prog, "A.m")
	if len(m.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1:\n%s", len(m.Blocks), m)
	}
	if n := countInstr[*ir.BinOp](m); n != 2 {
		t.Errorf("got %d binops, want 2", n)
	}
	if n := countInstr[*ir.Phi](m); n != 0 {
		t.Errorf("got %d phis, want 0", n)
	}
}

func TestIfProducesPhi(t *testing.T) {
	prog := lower(t, `class A {
		int m(boolean c) {
			int x = 0;
			if (c) { x = 1; } else { x = 2; }
			return x;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 1 {
		t.Fatalf("got %d phis, want 1:\n%s", n, m)
	}
}

func TestIfWithoutElseJoins(t *testing.T) {
	prog := lower(t, `class A {
		int m(boolean c) {
			int x = 0;
			if (c) { x = 1; }
			return x;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 1 {
		t.Fatalf("got %d phis, want 1:\n%s", n, m)
	}
}

func TestNoPhiWhenUnchanged(t *testing.T) {
	// x is not modified in the branch: Braun construction must not
	// leave a phi behind (trivial phi removal).
	prog := lower(t, `class A {
		int m(boolean c) {
			int x = 7;
			if (c) { print(1); }
			return x;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 0 {
		t.Fatalf("got %d phis, want 0:\n%s", n, m)
	}
}

func TestWhileLoopPhi(t *testing.T) {
	prog := lower(t, `class A {
		int m(int n) {
			int i = 0;
			int sum = 0;
			while (i < n) {
				sum = sum + i;
				i = i + 1;
			}
			return sum;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 2 {
		t.Fatalf("got %d phis, want 2 (i and sum):\n%s", n, m)
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	prog := lower(t, `class A {
		int m(int n) {
			int sum = 0;
			for (int i = 0; i < n; i++) {
				if (i == 3) { continue; }
				if (i == 7) { break; }
				sum = sum + i;
			}
			return sum;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	// The loop must terminate in the IR: the return block is reachable.
	var hasReturn bool
	m.Instrs(func(ins ir.Instr) {
		if _, ok := ins.(*ir.Return); ok {
			hasReturn = true
		}
	})
	if !hasReturn {
		t.Fatal("no return instruction survived lowering")
	}
}

func TestShortCircuitValue(t *testing.T) {
	prog := lower(t, `class A {
		boolean m(int x, int y) {
			boolean b = x > 0 && y > 0;
			return b;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 1 {
		t.Fatalf("got %d phis, want 1 for &&-value:\n%s", n, m)
	}
	// && in a value position must still be control flow, not a BinOp.
	m.Instrs(func(ins ir.Instr) {
		if b, ok := ins.(*ir.BinOp); ok {
			if b.Op.String() == "&&" {
				t.Error("&& must not lower to a BinOp")
			}
		}
	})
}

func TestShortCircuitCondNoTemp(t *testing.T) {
	prog := lower(t, `class A {
		int m(int x, int y) {
			if (x > 0 && y > 0) { return 1; }
			return 0;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.Phi](m); n != 0 {
		t.Fatalf("condition && should not need phis:\n%s", m)
	}
	if n := countInstr[*ir.If](m); n != 2 {
		t.Errorf("got %d ifs, want 2", n)
	}
}

func TestFieldAccessLowering(t *testing.T) {
	prog := lower(t, `class A {
		int f;
		static int g;
		void m(A other) {
			this.f = 1;
			f = 2;
			other.f = this.f;
			g = 3;
			A.g = g + 1;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if n := countInstr[*ir.SetField](m); n != 3 {
		t.Errorf("got %d SetField, want 3", n)
	}
	if n := countInstr[*ir.GetField](m); n != 1 {
		t.Errorf("got %d GetField, want 1", n)
	}
	if n := countInstr[*ir.SetStatic](m); n != 2 {
		t.Errorf("got %d SetStatic, want 2", n)
	}
	if n := countInstr[*ir.GetStatic](m); n != 1 {
		t.Errorf("got %d GetStatic, want 1", n)
	}
}

func TestArrayLowering(t *testing.T) {
	prog := lower(t, `class A {
		int m() {
			int[] a = new int[5];
			a[0] = 42;
			int n = a.length;
			return a[n - 1];
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if countInstr[*ir.NewArray](m) != 1 || countInstr[*ir.ArrayStore](m) != 1 ||
		countInstr[*ir.ArrayLoad](m) != 1 || countInstr[*ir.ArrayLen](m) != 1 {
		t.Fatalf("array instruction mix wrong:\n%s", m)
	}
}

func TestCallLowering(t *testing.T) {
	prog := lower(t, `class A {
		int helper(int x) { return x; }
		static int stat(int x) { return x; }
		int m(A o) {
			int a = helper(1);
			int b = o.helper(2);
			int c = A.stat(3);
			int d = stat(4);
			return a + b + c + d;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	virt, stat := 0, 0
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok {
			switch c.Mode {
			case ir.CallVirtual:
				virt++
				if c.Recv == nil {
					t.Error("virtual call without receiver")
				}
			case ir.CallStatic:
				stat++
				if c.Recv != nil {
					t.Error("static call with receiver")
				}
			}
		}
	})
	if virt != 2 || stat != 2 {
		t.Errorf("got %d virtual + %d static calls, want 2+2", virt, stat)
	}
}

func TestNewLowersToAllocPlusCtor(t *testing.T) {
	prog := lower(t, `
		class P { int v; P(int v) { this.v = v; } }
		class A { P m() { return new P(3); } }
	`)
	m := findMethod(t, prog, "A.m")
	if countInstr[*ir.New](m) != 1 {
		t.Fatal("missing New")
	}
	found := false
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallCtor {
			found = true
			if c.Recv == nil || len(c.Args) != 1 {
				t.Errorf("ctor call malformed: %s", c)
			}
		}
	})
	if !found {
		t.Fatal("missing constructor call")
	}
}

func TestImplicitSuperCtor(t *testing.T) {
	prog := lower(t, `
		class Base { int x; Base() { this.x = 1; } }
		class Derived extends Base { Derived() { this.x = 2; } }
	`)
	m := findMethod(t, prog, "Derived.<init>")
	found := false
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallCtor && c.Callee.Owner.Name == "Base" {
			found = true
		}
	})
	if !found {
		t.Fatalf("implicit super() call missing:\n%s", m)
	}
}

func TestExplicitSuperCtorNotDuplicated(t *testing.T) {
	prog := lower(t, `
		class Node { int op; Node(int op) { this.op = op; } }
		class AddNode extends Node { AddNode() { super(1); } }
	`)
	m := findMethod(t, prog, "AddNode.<init>")
	count := 0
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallCtor {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("got %d super ctor calls, want 1:\n%s", count, m)
	}
}

func TestDefaultCtorSynthesized(t *testing.T) {
	prog := lower(t, `class A { } class B { A m() { return new A(); } }`)
	m := findMethod(t, prog, "A.<init>")
	if len(m.Blocks) == 0 {
		t.Fatal("default ctor has no body")
	}
}

func TestThrowTerminates(t *testing.T) {
	prog := lower(t, `
		class E { }
		class A {
			int m(boolean bad) {
				if (bad) { throw new E(); }
				return 1;
			}
		}
	`)
	m := findMethod(t, prog, "A.m")
	m.Instrs(func(ins ir.Instr) {
		if _, ok := ins.(*ir.Throw); ok {
			blk := ins.Block()
			if len(blk.Succs) != 0 {
				t.Error("throw block must have no successors")
			}
			if blk.Instrs[len(blk.Instrs)-1] != ins {
				t.Error("throw must terminate its block")
			}
		}
	})
}

func TestUnreachableCodeDropped(t *testing.T) {
	prog := lower(t, `class A {
		int m() {
			return 1;
			print(2);
		}
	}`)
	m := findMethod(t, prog, "A.m")
	m.Instrs(func(ins ir.Instr) {
		if _, ok := ins.(*ir.Print); ok {
			t.Error("unreachable print survived")
		}
	})
}

func TestInfiniteLoopLowered(t *testing.T) {
	prog := lower(t, `class A {
		void m() {
			while (true) { print(1); }
		}
	}`)
	m := findMethod(t, prog, "A.m")
	if len(m.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	// Postdominators must still be computable (virtual exit fixup).
	pd := ssa.PostDominators(m)
	if pd.NumNodes() != len(m.Blocks)+1 {
		t.Error("postdominator node count wrong")
	}
}

func TestStringOpsLowering(t *testing.T) {
	prog := lower(t, `class A {
		string m(string s) {
			int sp = s.indexOf(" ");
			string first = s.substring(0, sp - 1);
			return "got: " + first;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	kinds := map[ir.StrKind]int{}
	m.Instrs(func(ins ir.Instr) {
		if s, ok := ins.(*ir.StrOp); ok {
			kinds[s.Op]++
		}
	})
	if kinds[ir.StrIndexOf] != 1 || kinds[ir.StrSubstring] != 1 || kinds[ir.StrConcat] != 1 {
		t.Errorf("string op mix wrong: %v", kinds)
	}
}

func TestVoidMethodImplicitReturn(t *testing.T) {
	prog := lower(t, `class A { void m() { print(1); } }`)
	m := findMethod(t, prog, "A.m")
	last := m.Blocks[len(m.Blocks)-1].Instrs
	ret, ok := last[len(last)-1].(*ir.Return)
	if !ok || ret.Val != nil {
		t.Fatalf("implicit void return missing:\n%s", m)
	}
}

func TestNonVoidFallOffReturnsZero(t *testing.T) {
	prog := lower(t, `class A {
		int m(boolean c) {
			if (c) { return 1; }
			print(0);
		}
	}`)
	m := findMethod(t, prog, "A.m")
	returns := 0
	m.Instrs(func(ins ir.Instr) {
		if r, ok := ins.(*ir.Return); ok {
			returns++
			if r.Val == nil {
				t.Error("non-void return without a value")
			}
		}
	})
	if returns != 2 {
		t.Errorf("got %d returns, want 2", returns)
	}
}

func TestInstructionIDsDense(t *testing.T) {
	prog := lower(t, `class A { int m(int x) { return x + 1; } }`)
	seen := make(map[int]bool)
	total := 0
	for _, m := range prog.Methods {
		m.Instrs(func(ins ir.Instr) {
			if seen[ins.ID()] {
				t.Errorf("duplicate instruction ID %d", ins.ID())
			}
			seen[ins.ID()] = true
			if prog.InstrByID(ins.ID()) != ins {
				t.Errorf("InstrByID(%d) mismatch", ins.ID())
			}
			total++
		})
	}
	if total != prog.NumInstrs {
		t.Errorf("NumInstrs=%d, counted %d", prog.NumInstrs, total)
	}
}

func TestPreludeLowers(t *testing.T) {
	prog := lower(t, `class Main { static void main() { print(1); } }`)
	for _, want := range []string{"Vector.add", "Vector.get", "HashMap.put", "HashMap.get", "LinkedList.add", "Iterator.next"} {
		found := false
		for _, m := range prog.Methods {
			if m.Name() == want {
				found = true
			}
		}
		if !found {
			t.Errorf("prelude method %s not lowered", want)
		}
	}
}

func TestParamRolesAndNodes(t *testing.T) {
	prog := lower(t, `class A { int m(int x, int y) { return x + y; } }`)
	m := findMethod(t, prog, "A.m")
	if len(m.Params) != 3 { // this, x, y
		t.Fatalf("got %d params, want 3", len(m.Params))
	}
	if m.Params[0].Name != "this" || m.Params[1].Name != "x" {
		t.Errorf("param order wrong: %v %v", m.Params[0].Name, m.Params[1].Name)
	}
}

func TestUseRolesClassification(t *testing.T) {
	prog := lower(t, `class A {
		Object f;
		Object m(A o, Object[] arr, int i, Object v) {
			o.f = v;
			arr[i] = v;
			Object a = o.f;
			Object b = arr[i];
			return b;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	m.Instrs(func(ins ir.Instr) {
		roles := ins.UseRoles()
		uses := ins.Uses()
		if len(roles) != len(uses) {
			t.Fatalf("%s: roles/uses length mismatch", ins)
		}
		switch s := ins.(type) {
		case *ir.SetField:
			if roles[0] != ir.RoleBase || roles[1] != ir.RoleProducer {
				t.Errorf("SetField roles wrong: %v", roles)
			}
		case *ir.ArrayStore:
			if roles[0] != ir.RoleBase || roles[1] != ir.RoleBase || roles[2] != ir.RoleProducer {
				t.Errorf("ArrayStore roles wrong: %v", roles)
			}
		case *ir.GetField:
			if roles[0] != ir.RoleBase {
				t.Errorf("GetField roles wrong: %v", roles)
			}
		case *ir.ArrayLoad:
			if roles[0] != ir.RoleBase || roles[1] != ir.RoleBase {
				t.Errorf("ArrayLoad roles wrong: %v", roles)
			}
		case *ir.If:
			if roles[0] != ir.RoleControl {
				t.Errorf("If roles wrong: %v", roles)
			}
		default:
			_ = s
		}
	})
}

func TestMethodStringRendering(t *testing.T) {
	prog := lower(t, `class A { int m(int x) { return x; } }`)
	m := findMethod(t, prog, "A.m")
	s := m.String()
	if !strings.Contains(s, "func A.m:") || !strings.Contains(s, "return") {
		t.Errorf("rendering wrong:\n%s", s)
	}
}

func TestNestedLoopsVerify(t *testing.T) {
	lower(t, `class A {
		int m(int n) {
			int acc = 0;
			for (int i = 0; i < n; i++) {
				int j = 0;
				while (j < i) {
					if (j % 2 == 0) { acc = acc + j; } else { acc = acc - j; }
					j = j + 1;
				}
			}
			return acc;
		}
	}`)
}

func TestDominatorsOnDiamond(t *testing.T) {
	prog := lower(t, `class A {
		int m(boolean c) {
			int x = 0;
			if (c) { x = 1; } else { x = 2; }
			return x;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	dom := ssa.Dominators(m)
	entry := m.Entry()
	for _, b := range m.Blocks {
		if !dom.Dominates(entry, b) {
			t.Errorf("entry must dominate %s", b)
		}
	}
	// The join block is dominated by the entry but not by either branch.
	var join *ir.Block
	for _, b := range m.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	for _, p := range join.Preds {
		if dom.Dominates(p, join) {
			t.Errorf("branch %s must not dominate join", p)
		}
	}
}

func TestPostDominatorsOnDiamond(t *testing.T) {
	prog := lower(t, `class A {
		int m(boolean c) {
			int x = 0;
			if (c) { x = 1; } else { x = 2; }
			return x;
		}
	}`)
	m := findMethod(t, prog, "A.m")
	pd := ssa.PostDominators(m)
	var join, branch *ir.Block
	for _, b := range m.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
		if len(b.Succs) == 2 {
			branch = b
		}
	}
	if join == nil || branch == nil {
		t.Fatal("diamond shape not found")
	}
	if !pd.PostDominates(join.Index, branch.Index) {
		t.Error("join must postdominate the branch head")
	}
	for _, s := range branch.Succs {
		if pd.PostDominates(s.Index, branch.Index) {
			t.Errorf("branch arm %s must not postdominate the head", s)
		}
	}
}
