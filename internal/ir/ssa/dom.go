// Package ssa provides CFG analyses over the IR: reverse-postorder,
// dominator and postdominator trees (Cooper-Harvey-Kennedy), and an SSA
// well-formedness verifier used by tests and property checks.
package ssa

import (
	"fmt"

	"thinslice/internal/ir"
)

// RPO returns the blocks of m in reverse postorder from the entry.
func RPO(m *ir.Method) []*ir.Block {
	seen := make([]bool, len(m.Blocks))
	var post []*ir.Block
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(m.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree is a dominator tree over a method's blocks.
type DomTree struct {
	m *ir.Method
	// idom[b.Index] is the immediate dominator; entry's idom is itself.
	idom []*ir.Block
	// rpoNum[b.Index] is the reverse-postorder number.
	rpoNum   []int
	children [][]*ir.Block
}

// Dominators computes the dominator tree of m using the
// Cooper-Harvey-Kennedy iterative algorithm.
func Dominators(m *ir.Method) *DomTree {
	order := RPO(m)
	t := &DomTree{
		m:      m,
		idom:   make([]*ir.Block, len(m.Blocks)),
		rpoNum: make([]int, len(m.Blocks)),
	}
	for i := range t.rpoNum {
		t.rpoNum[i] = -1
	}
	for i, b := range order {
		t.rpoNum[b.Index] = i
	}
	entry := m.Entry()
	t.idom[entry.Index] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if t.rpoNum[p.Index] < 0 || t.idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.Index] != newIdom {
				t.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	t.children = make([][]*ir.Block, len(m.Blocks))
	for _, b := range m.Blocks {
		if b != entry && t.idom[b.Index] != nil {
			p := t.idom[b.Index]
			t.children[p.Index] = append(t.children[p.Index], b)
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoNum[a.Index] > t.rpoNum[b.Index] {
			a = t.idom[a.Index]
		}
		for t.rpoNum[b.Index] > t.rpoNum[a.Index] {
			b = t.idom[b.Index]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (the entry returns itself).
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b.Index] }

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.Index] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		id := t.idom[b.Index]
		if id == nil || id == b {
			return false
		}
		b = id
	}
}

// PostDomTree is a postdominator tree over blocks plus a virtual exit
// node that all Return/Throw blocks (and nothing else) lead to.
type PostDomTree struct {
	m *ir.Method
	// ipdom[i] is the immediate postdominator index of block i;
	// exit() for blocks postdominated only by the virtual exit.
	ipdom []int
	rpo   []int
	preds [][]int // reverse-CFG preds (i.e., CFG succs), by node index
	succs [][]int // reverse-CFG succs (i.e., CFG preds)
}

// exitIndex is the virtual exit's node index.
func (t *PostDomTree) exitIndex() int { return len(t.m.Blocks) }

// PostDominators computes the postdominator tree of m. Blocks that end
// in Return or Throw are connected to a virtual exit. Infinite loops
// (blocks from which no exit is reachable) are connected from their
// loop header to the virtual exit so the tree is total.
func PostDominators(m *ir.Method) *PostDomTree {
	n := len(m.Blocks) + 1
	exit := len(m.Blocks)
	t := &PostDomTree{
		m:     m,
		ipdom: make([]int, n),
		rpo:   make([]int, n),
		preds: make([][]int, n),
		succs: make([][]int, n),
	}
	// Build the reverse CFG: edge b->s in CFG becomes s->b here.
	addEdge := func(from, to int) {
		t.succs[from] = append(t.succs[from], to)
		t.preds[to] = append(t.preds[to], from)
	}
	for _, b := range m.Blocks {
		for _, s := range b.Succs {
			addEdge(s.Index, b.Index)
		}
		if len(b.Succs) == 0 {
			addEdge(exit, b.Index)
		}
	}
	// Connect blocks unreachable in the reverse graph (infinite loops)
	// to the exit, so every node is reachable from exit.
	reach := make([]bool, n)
	var mark func(int)
	mark = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		for _, s := range t.succs[i] {
			mark(s)
		}
	}
	mark(exit)
	for _, b := range m.Blocks {
		if !reach[b.Index] {
			addEdge(exit, b.Index)
			mark(b.Index)
		}
	}
	// RPO from exit over the reverse CFG.
	seen := make([]bool, n)
	var post []int
	var walk func(int)
	walk = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		for _, s := range t.succs[i] {
			walk(s)
		}
		post = append(post, i)
	}
	walk(exit)
	order := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for i := range t.rpo {
		t.rpo[i] = -1
	}
	for i, b := range order {
		t.rpo[b] = i
	}
	for i := range t.ipdom {
		t.ipdom[i] = -1
	}
	t.ipdom[exit] = exit
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == exit {
				continue
			}
			newIdom := -1
			for _, p := range t.preds[b] {
				if t.rpo[p] < 0 || t.ipdom[p] < 0 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && t.ipdom[b] != newIdom {
				t.ipdom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *PostDomTree) intersect(a, b int) int {
	for a != b {
		for t.rpo[a] > t.rpo[b] {
			a = t.ipdom[a]
		}
		for t.rpo[b] > t.rpo[a] {
			b = t.ipdom[b]
		}
	}
	return a
}

// IpdomIndex returns the immediate postdominator node index of block b;
// len(m.Blocks) denotes the virtual exit.
func (t *PostDomTree) IpdomIndex(b *ir.Block) int { return t.ipdom[b.Index] }

// PostDominates reports whether node a postdominates node b
// (reflexively), using node indices where len(m.Blocks) is the exit.
func (t *PostDomTree) PostDominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		ip := t.ipdom[b]
		if ip < 0 || ip == b {
			return false
		}
		b = ip
	}
}

// NumNodes returns the node count including the virtual exit.
func (t *PostDomTree) NumNodes() int { return len(t.m.Blocks) + 1 }

// Verify checks SSA well-formedness of m: single definitions, defs
// dominating uses, phi arity matching preds, terminator placement, and
// pred/succ symmetry. It returns the first violation found.
func Verify(m *ir.Method) error {
	// Pred/succ symmetry and terminator placement.
	for _, b := range m.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: block %s is empty", m.Name(), b)
		}
		for i, ins := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if ir.IsTerminator(ins) != isLast {
				return fmt.Errorf("%s: %s instruction %d (%s) terminator placement wrong", m.Name(), b, i, ins)
			}
			if _, isPhi := ins.(*ir.Phi); isPhi {
				// Phis must be at the start of the block.
				for j := 0; j < i; j++ {
					if _, ok := b.Instrs[j].(*ir.Phi); !ok {
						return fmt.Errorf("%s: %s phi %s after non-phi", m.Name(), b, ins)
					}
				}
			}
		}
		for _, s := range b.Succs {
			if !contains(s.Preds, b) {
				return fmt.Errorf("%s: edge %s->%s missing pred backlink", m.Name(), b, s)
			}
		}
		for _, p := range b.Preds {
			if !contains(p.Succs, b) {
				return fmt.Errorf("%s: pred %s of %s missing succ link", m.Name(), p, b)
			}
		}
	}
	// Single definition and def records.
	defs := make(map[*ir.Reg]ir.Instr)
	var err error
	m.Instrs(func(ins ir.Instr) {
		if err != nil {
			return
		}
		if d := ins.Def(); d != nil {
			if prev, dup := defs[d]; dup {
				err = fmt.Errorf("%s: register %s defined twice (%s and %s)", m.Name(), d, prev, ins)
				return
			}
			defs[d] = ins
			if d.Def != ins {
				err = fmt.Errorf("%s: register %s has stale Def pointer", m.Name(), d)
			}
		}
	})
	if err != nil {
		return err
	}
	// Defs dominate uses.
	dom := Dominators(m)
	for _, b := range m.Blocks {
		for _, ins := range b.Instrs {
			if phi, ok := ins.(*ir.Phi); ok {
				if len(phi.Edges) != len(b.Preds) {
					return fmt.Errorf("%s: %s phi arity %d != %d preds", m.Name(), b, len(phi.Edges), len(b.Preds))
				}
				for i, op := range phi.Edges {
					def := defs[op]
					if def == nil {
						return fmt.Errorf("%s: phi operand %s has no definition", m.Name(), op)
					}
					if !dom.Dominates(def.Block(), b.Preds[i]) {
						return fmt.Errorf("%s: phi operand %s def does not dominate pred %s", m.Name(), op, b.Preds[i])
					}
				}
				continue
			}
			for _, op := range ins.Uses() {
				def := defs[op]
				if def == nil {
					return fmt.Errorf("%s: use of undefined register %s in %s", m.Name(), op, ins)
				}
				if def.Block() == b {
					// Def must precede the use within the block.
					before := false
					for _, x := range b.Instrs {
						if x == def {
							before = true
							break
						}
						if x == ins {
							break
						}
					}
					if !before {
						return fmt.Errorf("%s: %s used before its definition in %s", m.Name(), op, b)
					}
				} else if !dom.Dominates(def.Block(), b) {
					return fmt.Errorf("%s: def of %s (%s) does not dominate use in %s (%s)", m.Name(), op, def.Block(), ins, b)
				}
			}
		}
	}
	return nil
}

func contains(bs []*ir.Block, b *ir.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
