package ssa_test

import (
	"testing"
	"testing/quick"

	"thinslice/internal/ir"
	"thinslice/internal/ir/ssa"
	"thinslice/internal/lang/loader"
	"thinslice/internal/randprog"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return ir.Lower(info)
}

func method(t *testing.T, prog *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s not found", name)
	return nil
}

func TestRPOStartsAtEntryAndCoversAll(t *testing.T) {
	prog := lower(t, `class A {
		int m(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) {
				if (i % 2 == 0) { s = s + i; } else { s = s - i; }
			}
			return s;
		}
	}`)
	m := method(t, prog, "A.m")
	order := ssa.RPO(m)
	if order[0] != m.Entry() {
		t.Error("RPO must start at the entry")
	}
	if len(order) != len(m.Blocks) {
		t.Errorf("RPO covers %d of %d blocks", len(order), len(m.Blocks))
	}
	// Property: every block appears exactly once.
	seen := map[*ir.Block]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("block %s repeated", b)
		}
		seen[b] = true
	}
}

// Property: on random programs, the dominator tree satisfies its
// defining laws — the entry dominates everything, idom(b) strictly
// dominates b, and dominance is consistent with all CFG paths (checked
// via the standard "removing the dominator disconnects b" argument on
// small methods).
func TestPropertyDominatorLaws(t *testing.T) {
	f := func(seed int64) bool {
		info, err := loader.Load(randprog.Generate(seed, randprog.DefaultConfig))
		if err != nil {
			return false
		}
		prog := ir.Lower(info)
		for _, m := range prog.Methods {
			dom := ssa.Dominators(m)
			entry := m.Entry()
			for _, b := range m.Blocks {
				if !dom.Dominates(entry, b) {
					t.Logf("seed %d: entry does not dominate %s in %s", seed, b, m.Name())
					return false
				}
				if b != entry {
					id := dom.Idom(b)
					if id == nil || id == b {
						t.Logf("seed %d: bad idom for %s in %s", seed, b, m.Name())
						return false
					}
					if !dom.Dominates(id, b) {
						t.Logf("seed %d: idom does not dominate %s", seed, b)
						return false
					}
					// Removing idom(b) must disconnect b from entry.
					if reachableAvoiding(m, entry, b, id) {
						t.Logf("seed %d: %s reachable avoiding its idom %s in %s", seed, b, id, m.Name())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// reachableAvoiding reports whether target is reachable from start
// without passing through avoid.
func reachableAvoiding(m *ir.Method, start, target, avoid *ir.Block) bool {
	if start == avoid {
		return false
	}
	seen := map[*ir.Block]bool{avoid: true}
	stack := []*ir.Block{start}
	seen[start] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == target {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Property: postdominator laws on random programs — every block is
// postdominated by the virtual exit, and ipdom postdominates its block.
func TestPropertyPostDominatorLaws(t *testing.T) {
	f := func(seed int64) bool {
		info, err := loader.Load(randprog.Generate(seed, randprog.DefaultConfig))
		if err != nil {
			return false
		}
		prog := ir.Lower(info)
		for _, m := range prog.Methods {
			pd := ssa.PostDominators(m)
			exit := len(m.Blocks)
			for _, b := range m.Blocks {
				if !pd.PostDominates(exit, b.Index) {
					t.Logf("seed %d: exit does not postdominate %s in %s", seed, b, m.Name())
					return false
				}
				ip := pd.IpdomIndex(b)
				if ip == b.Index {
					t.Logf("seed %d: block is its own ipdom", seed)
					return false
				}
				if !pd.PostDominates(ip, b.Index) {
					t.Logf("seed %d: ipdom does not postdominate %s", seed, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBrokenSSA(t *testing.T) {
	prog := lower(t, `class A { int m(int x) { return x + 1; } }`)
	m := method(t, prog, "A.m")
	if err := ssa.Verify(m); err != nil {
		t.Fatalf("valid SSA rejected: %v", err)
	}
	// Break it: duplicate a definition by reusing a register.
	var binop *ir.BinOp
	m.Instrs(func(ins ir.Instr) {
		if b, ok := ins.(*ir.BinOp); ok {
			binop = b
		}
	})
	var param *ir.Param
	m.Instrs(func(ins ir.Instr) {
		if p, ok := ins.(*ir.Param); ok && p.Name == "x" {
			param = p
		}
	})
	saved := binop.Dst
	binop.Dst = param.Dst // second definition of the same register
	if err := ssa.Verify(m); err == nil {
		t.Error("double definition not caught")
	}
	binop.Dst = saved
	if err := ssa.Verify(m); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}
