package ir

import (
	"fmt"

	"thinslice/internal/artifact"
	"thinslice/internal/lang/types"
)

// This file is the IR half of the session derivation graph (PR 9):
// per-method lowering units that can be cached, cloned, and reassembled
// into a whole program without re-lowering unchanged methods.
//
// A unit payload is exactly one encodeMethod stream (the same bytes the
// whole-program codec writes for that method), so the PR 6 round-trip
// proof carries over: decoding a unit against a new revision's
// types.Info yields a method byte-identical to re-lowering it, provided
// the unit's depgraph key is unchanged.

// EncodeUnit returns the self-contained payload for one lowered method.
// The caller must not encode methods that produced diagnostics (the
// session never caches those).
func EncodeUnit(m *Method) []byte {
	var w artifact.Writer
	encodeMethod(&w, m)
	return w.Bytes()
}

// DecodeUnit relinks one unit payload against info, producing a fresh
// Method whose signature, fields, and types resolve in info's world.
// Instruction IDs are unassigned until the method joins a program
// (AssembleProgram).
func DecodeUnit(data []byte, info *types.Info) (m *Method, err error) {
	return decodeUnit(data, newLinker(info))
}

func decodeUnit(data []byte, l *linker) (m *Method, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("ir: decode unit: malformed payload: %v", r)
		}
	}()
	r := artifact.NewReader(data)
	m, err = decodeMethod(r, l)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// LowerUnitsStats reports how a LowerUnits call split its work.
type LowerUnitsStats struct {
	Lowered int // methods lowered fresh
	Reused  int // methods cloned from cached unit payloads
}

// LowerUnits assembles a program from per-method units: jobs whose
// qualified name appears in reuse are cloned from the cached payload
// (relinked against info), all others are lowered fresh over up to
// workers goroutines. The output is byte-identical to LowerWorkers on
// the same info as long as every reused payload was produced by
// lowering a method whose depgraph unit key is unchanged; a payload
// that fails to decode is an error (the caller falls back to a full
// lower).
func LowerUnits(info *types.Info, reuse map[string][]byte, workers int) (*Program, LowerUnitsStats, error) {
	var stats LowerUnitsStats
	jobs := collectJobs(info)

	methods := make([]*Method, len(jobs))
	diags := make([]Diagnostics, len(jobs))

	// Clone reused units first (cheap, sequential), then fan the
	// remaining fresh jobs over the pool.
	var freshJobs []*types.MethodInfo
	var freshIdx []int
	l := newLinker(info)
	for i, mi := range jobs {
		if data, ok := reuse[mi.QualifiedName()]; ok {
			m, err := decodeUnit(data, l)
			if err != nil {
				return nil, stats, err
			}
			if m.Sig != mi {
				return nil, stats, fmt.Errorf("ir: unit %s relinked to a different signature", mi.QualifiedName())
			}
			methods[i] = m
			stats.Reused++
			continue
		}
		freshJobs = append(freshJobs, mi)
		freshIdx = append(freshIdx, i)
	}
	if len(freshJobs) > 0 {
		fm := make([]*Method, len(freshJobs))
		fd := make([]Diagnostics, len(freshJobs))
		lowerAll(info, freshJobs, fm, fd, workers)
		for k, i := range freshIdx {
			methods[i], diags[i] = fm[k], fd[k]
		}
		stats.Lowered = len(freshJobs)
	}
	return assembleProgram(info, jobs, methods, diags), stats, nil
}

// LowerBatches lowers the named units fresh, batch by batch, and
// returns the encoded unit payload of every unit that lowered without
// diagnostics. The session uses it to re-derive a depgraph frontier in
// Kahn order (callees before callers, per depgraph.TopoBatches), with
// each batch fanned over up to workers goroutines; units that produce
// diagnostics are omitted from the result so the assembling LowerUnits
// call re-lowers them and surfaces the diagnostics. Names that match no
// lowering job are ignored (the caller's frontier may mention units of
// the other revision).
func LowerBatches(info *types.Info, batches [][]string, workers int) map[string][]byte {
	jobBy := make(map[string]*types.MethodInfo)
	for _, mi := range collectJobs(info) {
		jobBy[mi.QualifiedName()] = mi
	}
	out := make(map[string][]byte)
	for _, batch := range batches {
		var jobs []*types.MethodInfo
		for _, q := range batch {
			if mi := jobBy[q]; mi != nil {
				jobs = append(jobs, mi)
			}
		}
		if len(jobs) == 0 {
			continue
		}
		methods := make([]*Method, len(jobs))
		diags := make([]Diagnostics, len(jobs))
		lowerAll(info, jobs, methods, diags, workers)
		for i, mi := range jobs {
			if len(diags[i]) == 0 {
				out[mi.QualifiedName()] = EncodeUnit(methods[i])
			}
		}
	}
	return out
}

// collectJobs gathers the lowering jobs in the canonical declaration
// order shared by LowerWorkers, LowerUnits, and depgraph.Build.
func collectJobs(info *types.Info) []*types.MethodInfo {
	var jobs []*types.MethodInfo
	for _, decl := range info.Prog.Classes {
		ci := info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue
		}
		for _, mdecl := range decl.Methods {
			if mi := info.MethodOfDecl[mdecl]; mi != nil {
				jobs = append(jobs, mi)
			}
		}
		if ci.Ctor != nil && ci.Ctor.Decl == nil {
			jobs = append(jobs, ci.Ctor) // synthesized default constructor
		}
	}
	return jobs
}

// assembleProgram stitches per-job methods into a Program exactly as
// LowerWorkers does: methods in job order, diagnostics merged in method
// order, dense program-unique instruction IDs in one deterministic
// pass.
func assembleProgram(info *types.Info, jobs []*types.MethodInfo, methods []*Method, diags []Diagnostics) *Program {
	prog := &Program{Info: info, MethodOf: make(map[*types.MethodInfo]*Method, len(jobs))}
	for i, mi := range jobs {
		prog.Methods = append(prog.Methods, methods[i])
		prog.MethodOf[mi] = methods[i]
		prog.Diags = append(prog.Diags, diags[i]...)
	}
	for _, m := range prog.Methods {
		m.Instrs(func(ins Instr) {
			ins.setID(prog.NumInstrs)
			prog.NumInstrs++
			prog.instrByID = append(prog.instrByID, ins)
		})
	}
	return prog
}

// ProgramMap aligns the IR objects of unchanged methods across two
// lowerings of successive revisions. Only methods listed as unchanged
// are mapped; everything else maps to nil/zero. The downstream deltas
// (pointsto.SolveDelta, sdg.BuildDelta) use it to translate retained
// solver state keyed by old pointers into the new program's world.
type ProgramMap struct {
	// Method maps an old method to its new clone (unchanged units only).
	Method map[*Method]*Method
	// Instr maps old program-wide instruction IDs to new instructions
	// (nil for instructions of changed/removed methods).
	Instr []Instr
	// Reg maps old registers of unchanged methods to their new clones.
	Reg map[*Reg]*Reg
}

// MapPrograms builds the old→new correspondence for the unchanged
// qualified names. Both programs must contain every listed name and the
// paired methods must be structurally identical (they are byte-
// identical clones when the depgraph key is unchanged); any mismatch is
// an error.
func MapPrograms(old, new *Program, unchanged []string) (*ProgramMap, error) {
	oldBy := methodsByQName(old)
	newBy := methodsByQName(new)
	pm := &ProgramMap{
		Method: make(map[*Method]*Method, len(unchanged)),
		Instr:  make([]Instr, old.NumInstrs),
		Reg:    make(map[*Reg]*Reg),
	}
	for _, q := range unchanged {
		om, nm := oldBy[q], newBy[q]
		if om == nil || nm == nil {
			return nil, fmt.Errorf("ir: map: unit %s missing from %s program", q, side(om == nil))
		}
		pm.Method[om] = nm
		var oi, ni []Instr
		om.Instrs(func(ins Instr) { oi = append(oi, ins) })
		nm.Instrs(func(ins Instr) { ni = append(ni, ins) })
		if len(oi) != len(ni) {
			return nil, fmt.Errorf("ir: map: unit %s instruction count changed (%d vs %d)", q, len(oi), len(ni))
		}
		for k, ins := range oi {
			pm.Instr[ins.ID()] = ni[k]
		}
		or, nr := MethodRegs(om), MethodRegs(nm)
		if len(or) != len(nr) {
			return nil, fmt.Errorf("ir: map: unit %s register count changed (%d vs %d)", q, len(or), len(nr))
		}
		for k, r := range or {
			pm.Reg[r] = nr[k]
		}
	}
	return pm, nil
}

func methodsByQName(p *Program) map[string]*Method {
	m := make(map[string]*Method, len(p.Methods))
	for _, meth := range p.Methods {
		m[meth.Sig.QualifiedName()] = meth
	}
	return m
}

func side(oldMissing bool) string {
	if oldMissing {
		return "old"
	}
	return "new"
}
