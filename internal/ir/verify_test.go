package ir_test

import (
	"fmt"
	"strings"
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
)

// lowerOK loads and lowers sources, failing the test on any error.
func lowerOK(t *testing.T, sources map[string]string) *ir.Program {
	t.Helper()
	info, err := loader.Load(sources)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	if len(prog.Diags) > 0 {
		t.Fatalf("lower diagnostics: %v", prog.Diags)
	}
	return prog
}

func verifyClean(t *testing.T, name string, prog *ir.Program) {
	t.Helper()
	errs := ir.Verify(prog)
	for i, e := range errs {
		if i >= 10 {
			t.Errorf("%s: ... and %d more violations", name, len(errs)-i)
			break
		}
		t.Errorf("%s: %v", name, e)
	}
}

// TestVerifyPaperCases checks the IR invariants on every hand-written
// paper program.
func TestVerifyPaperCases(t *testing.T) {
	cases := map[string]map[string]string{
		"firstnames": {papercases.FirstNamesFile: papercases.FirstNames},
		"toy":        {papercases.ToyFile: papercases.Toy},
		"filebug":    {papercases.FileBugFile: papercases.FileBug},
		"toughcast":  {papercases.ToughCastFile: papercases.ToughCast},
	}
	for name, sources := range cases {
		verifyClean(t, name, lowerOK(t, sources))
	}
}

// TestVerifyRandprogCorpus is the lowering property test: 500 random
// well-typed programs must all lower to IR that passes Verify. This
// catches SSA-construction bugs the hand-written cases miss.
func TestVerifyRandprogCorpus(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 50
	}
	for seed := 0; seed < n; seed++ {
		sources := randprog.Generate(int64(seed), randprog.DefaultConfig)
		prog := lowerOK(t, sources)
		if errs := ir.Verify(prog); len(errs) > 0 {
			t.Fatalf("seed %d: %d violation(s), first: %v\nprogram:\n%s",
				seed, len(errs), errs[0], sources["rand.mj"])
		}
	}
}

// TestVerifyDetectsCorruption mutates a well-formed program in ways
// the verifier must catch: it is only trustworthy if it rejects bad IR.
func TestVerifyDetectsCorruption(t *testing.T) {
	fresh := func() *ir.Program {
		return lowerOK(t, map[string]string{papercases.ToyFile: papercases.Toy})
	}
	check := func(name string, corrupt func(*ir.Program) bool) {
		prog := fresh()
		if !corrupt(prog) {
			t.Fatalf("%s: corruption not applied", name)
		}
		if errs := ir.Verify(prog); len(errs) == 0 {
			t.Errorf("%s: corrupted program passed Verify", name)
		}
	}

	check("dropped-pred-link", dropPredLink)
	check("reordered-instrs", func(p *ir.Program) bool {
		// Swapping two non-terminator instructions breaks ID contiguity
		// (and possibly def-before-use ordering).
		for _, m := range p.Methods {
			for _, b := range m.Blocks {
				if len(b.Instrs) >= 3 {
					b.Instrs[0], b.Instrs[1] = b.Instrs[1], b.Instrs[0]
					return true
				}
			}
		}
		return false
	})
	check("terminator-mid-block", func(p *ir.Program) bool {
		for _, m := range p.Methods {
			for _, b := range m.Blocks {
				if len(b.Instrs) >= 2 {
					// Move the terminator before the last instruction.
					last := len(b.Instrs) - 1
					b.Instrs[last-1], b.Instrs[last] = b.Instrs[last], b.Instrs[last-1]
					return true
				}
			}
		}
		return false
	})
	check("truncated-block", func(p *ir.Program) bool {
		for _, m := range p.Methods {
			for _, b := range m.Blocks {
				if len(b.Instrs) >= 1 {
					b.Instrs = b.Instrs[:0]
					return true
				}
			}
		}
		return false
	})
}

// badEachUse wraps an instruction and hides its operands from EachUse,
// so EachUse and Uses() disagree — the corruption the agreement
// invariant must catch.
type badEachUse struct{ ir.Instr }

func (badEachUse) EachUse(func(*ir.Reg, ir.Role)) {}

// TestVerifyDetectsEachUseDisagreement: the verifier is the only line
// of defense keeping the two operand-iteration APIs in sync, so it
// must reject an instruction whose EachUse skips operands.
func TestVerifyDetectsEachUseDisagreement(t *testing.T) {
	prog := lowerOK(t, map[string]string{papercases.ToyFile: papercases.Toy})
	planted := false
	for _, m := range prog.Methods {
		for _, b := range m.Blocks {
			for i, ins := range b.Instrs {
				if !planted && len(ins.Uses()) > 0 && !ir.IsTerminator(ins) {
					b.Instrs[i] = badEachUse{ins}
					planted = true
				}
			}
		}
	}
	if !planted {
		t.Fatal("no instruction with operands to corrupt")
	}
	errs := ir.Verify(prog)
	for _, e := range errs {
		if strings.Contains(e.Error(), "EachUse disagrees") {
			return
		}
	}
	t.Fatalf("EachUse/Uses disagreement not reported; got %v", errs)
}

func dropPredLink(p *ir.Program) bool {
	for _, m := range p.Methods {
		for _, b := range m.Blocks {
			if len(b.Preds) > 0 {
				b.Preds = b.Preds[:len(b.Preds)-1]
				return true
			}
		}
	}
	return false
}

// ExampleVerify demonstrates that a freshly lowered program verifies.
func ExampleVerify() {
	info, err := loader.Load(map[string]string{papercases.ToyFile: papercases.Toy})
	if err != nil {
		panic(err)
	}
	prog := ir.Lower(info)
	fmt.Println(len(ir.Verify(prog)))
	// Output: 0
}
