package ir_test

import (
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/papercases"
)

// lowerJobNames returns every lowered method's qualified name in
// declaration order.
func lowerJobNames(p *ir.Program) []string {
	names := make([]string, 0, len(p.Methods))
	for _, m := range p.Methods {
		names = append(names, m.Name())
	}
	return names
}

// TestLowerUnitsReassemblesByteIdentical pins the unit contract
// directly (the session tests only exercise it end to end): encoding
// every method of a cold lower as a unit payload and reassembling the
// program entirely from those payloads reproduces the cold listing
// byte for byte, with every method counted as reused.
func TestLowerUnitsReassemblesByteIdentical(t *testing.T) {
	for name, srcs := range paperSources() {
		t.Run(name, func(t *testing.T) {
			info, err := loader.Load(srcs)
			if err != nil {
				t.Fatal(err)
			}
			cold := ir.LowerWorkers(info, 1)
			want := ir.Sprint(cold)

			if len(cold.Diags) > 0 {
				t.Fatalf("fixture has diagnostics: %v", cold.Diags)
			}
			reuse := make(map[string][]byte, len(cold.Methods))
			for _, m := range cold.Methods {
				reuse[m.Name()] = ir.EncodeUnit(m)
			}
			for _, workers := range []int{1, 4} {
				got, st, err := ir.LowerUnits(info, reuse, workers)
				if err != nil {
					t.Fatal(err)
				}
				if st.Reused != len(reuse) || st.Lowered != len(cold.Methods)-len(reuse) {
					t.Fatalf("workers=%d: split %+v, want %d reused", workers, st, len(reuse))
				}
				if g := ir.Sprint(got); g != want {
					t.Fatalf("workers=%d: reassembled program differs\ncold:\n%s\nunits:\n%s", workers, want, g)
				}
			}
		})
	}
}

// TestLowerBatchesPayloadsMatchColdUnits pins the frontier re-derive
// path: LowerBatches over an arbitrary split of the job list produces,
// for every unit, exactly the payload a cold lower encodes — so a
// session mixing batch-lowered and cached units can never tell them
// apart. Unknown names must be ignored.
func TestLowerBatchesPayloadsMatchColdUnits(t *testing.T) {
	srcs := map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
	info, err := loader.Load(srcs)
	if err != nil {
		t.Fatal(err)
	}
	cold := ir.LowerWorkers(info, 1)
	names := lowerJobNames(cold)
	if len(names) < 2 {
		t.Fatalf("fixture too small: %v", names)
	}
	// Two batches splitting the list, plus a name from nowhere.
	mid := len(names) / 2
	batches := [][]string{append([]string{"NoSuch.unit"}, names[:mid]...), names[mid:]}
	payloads := ir.LowerBatches(info, batches, 4)

	if len(cold.Diags) > 0 {
		t.Fatalf("fixture has diagnostics: %v", cold.Diags)
	}
	want := make(map[string][]byte, len(cold.Methods))
	for _, m := range cold.Methods {
		want[m.Name()] = ir.EncodeUnit(m)
	}
	if len(payloads) != len(want) {
		t.Fatalf("got %d payloads, want %d", len(payloads), len(want))
	}
	for name, p := range payloads {
		if w, ok := want[name]; !ok {
			t.Errorf("unexpected unit %s", name)
		} else if string(p) != string(w) {
			t.Errorf("unit %s payload differs from cold encoding", name)
		}
	}

	// Round-trip: every payload decodes against the same info.
	for name, p := range payloads {
		if _, err := ir.DecodeUnit(p, info); err != nil {
			t.Errorf("unit %s does not decode: %v", name, err)
		}
	}
}

// TestMapProgramsRejectsMismatch pins MapPrograms' safety check: a
// name lowered from different sources in the two programs is a
// structural mismatch, not a silent bad mapping.
func TestMapProgramsRejectsMismatch(t *testing.T) {
	srcA := map[string]string{"a.mj": "class A {\n    int f(int x) { return x + 1; }\n}\n"}
	srcB := map[string]string{"a.mj": "class A {\n    int f(int x) { int y; y = x + 1;\n        return y + 2; }\n}\n"}
	infoA, err := loader.Load(srcA)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := loader.Load(srcB)
	if err != nil {
		t.Fatal(err)
	}
	progA := ir.LowerWorkers(infoA, 1)
	progB := ir.LowerWorkers(infoB, 1)
	names := lowerJobNames(progA)

	if _, err := ir.MapPrograms(progA, progA, names); err != nil {
		t.Fatalf("identical programs must map: %v", err)
	}
	if _, err := ir.MapPrograms(progA, progB, []string{"A.f"}); err == nil {
		t.Fatal("structurally different A.f mapped without error")
	}
}
