package ir

import (
	"fmt"
)

// Verify checks the structural and SSA invariants the analysis
// pipeline trusts after lowering:
//
//   - program/ID consistency: instruction IDs are dense from 0,
//     InstrByID is their inverse, and IDs are contiguous within each
//     method in traversal order (the SDG node layout depends on this);
//   - block structure: Blocks[i].Index == i, instruction Block()
//     back-pointers are correct, blocks are non-empty, and the
//     terminator is exactly the last instruction of its block;
//   - CFG consistency: If/Goto targets match the successor lists and
//     pred/succ links are symmetric;
//   - operand shape: Uses and UseRoles are parallel, contain no nil
//     entries, and EachUse visits exactly the Uses operands with the
//     UseRoles roles in order (the dataflow flow functions iterate
//     EachUse while the SDG builder walks the slices — disagreement
//     silently desynchronizes the two);
//   - SSA form: every register has exactly one definition, Reg.Def
//     points at it, phis lead their block with arity matching Preds,
//     and every definition dominates its uses (phi uses dominate the
//     corresponding predecessor).
//
// It returns every violation found, or nil for a well-formed program.
// The analyzer runs it behind WithVerifyIR; tests run it
// unconditionally over hand-written and generated programs.
func Verify(p *Program) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if p.NumInstrs != len(p.instrByID) {
		report("program: NumInstrs %d != %d indexed instructions", p.NumInstrs, len(p.instrByID))
	}
	for id, ins := range p.instrByID {
		if ins == nil {
			report("program: instruction ID %d is nil", id)
			continue
		}
		if ins.ID() != id {
			report("program: instruction at index %d reports ID %d", id, ins.ID())
		}
	}

	nextID := 0
	for _, m := range p.Methods {
		m.Instrs(func(ins Instr) {
			if ins.ID() != nextID {
				report("%s: instruction IDs not contiguous: %s has ID %d, want %d",
					m.Name(), ins, ins.ID(), nextID)
			}
			nextID++
		})
		errs = append(errs, verifyMethod(m)...)
	}
	if nextID != p.NumInstrs {
		report("program: methods contain %d instructions, NumInstrs is %d", nextID, p.NumInstrs)
	}
	return errs
}

// VerifyMethod checks one method's invariants in isolation (everything
// Verify checks except program-wide ID density).
func VerifyMethod(m *Method) []error { return verifyMethod(m) }

func verifyMethod(m *Method) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", m.Name(), fmt.Sprintf(format, args...)))
	}
	if len(m.Blocks) == 0 {
		report("method has no blocks")
		return errs
	}

	// Block structure, terminators, CFG link symmetry, operand shape.
	for i, b := range m.Blocks {
		if b.Index != i {
			report("block at position %d has Index %d", i, b.Index)
		}
		if b.Method != m {
			report("block %s has a foreign Method back-pointer", b)
		}
		if len(b.Instrs) == 0 {
			report("block %s is empty", b)
			continue
		}
		for j, ins := range b.Instrs {
			if ins.Block() != b {
				report("%s instruction %d (%s) has a stale Block back-pointer", b, j, ins)
			}
			isLast := j == len(b.Instrs)-1
			if IsTerminator(ins) != isLast {
				report("%s instruction %d (%s) terminator placement wrong", b, j, ins)
			}
			if _, isPhi := ins.(*Phi); isPhi && j > 0 {
				if _, prevPhi := b.Instrs[j-1].(*Phi); !prevPhi {
					report("%s phi %s after non-phi", b, ins)
				}
			}
			uses, roles := ins.Uses(), ins.UseRoles()
			if len(uses) != len(roles) {
				report("%s: %s has %d uses but %d roles", b, ins, len(uses), len(roles))
			}
			for k, u := range uses {
				if u == nil {
					report("%s: %s has nil operand %d", b, ins, k)
				}
			}
			idx, agree := 0, true
			ins.EachUse(func(u *Reg, role Role) {
				if idx >= len(uses) || u != uses[idx] || idx >= len(roles) || role != roles[idx] {
					agree = false
				}
				idx++
			})
			if !agree || idx != len(uses) {
				report("%s: %s EachUse disagrees with Uses/UseRoles (visited %d operands, Uses has %d)",
					b, ins, idx, len(uses))
			}
		}
		// Terminator targets must equal the successor list.
		var want []*Block
		switch t := b.Instrs[len(b.Instrs)-1].(type) {
		case *If:
			want = []*Block{t.Then, t.Else}
		case *Goto:
			want = []*Block{t.Target}
		case *Return, *Throw:
			want = nil
		default:
			continue // already reported as a terminator placement error
		}
		if !sameBlocks(want, b.Succs) {
			report("%s successor list %v does not match its terminator %s", b, b.Succs, b.Instrs[len(b.Instrs)-1])
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				report("edge %s->%s missing pred backlink", b, s)
			}
		}
		for _, pr := range b.Preds {
			if !containsBlock(pr.Succs, b) {
				report("pred %s of %s missing succ link", pr, b)
			}
		}
	}

	// Single definitions and Def back-pointers.
	defs := make(map[*Reg]Instr)
	m.Instrs(func(ins Instr) {
		d := ins.Def()
		if d == nil {
			return
		}
		if prev, dup := defs[d]; dup {
			report("register %s defined twice (%s and %s)", d, prev, ins)
			return
		}
		defs[d] = ins
		if d.Def != ins {
			report("register %s has a stale Def pointer", d)
		}
	})

	// Defs dominate uses.
	idom := dominators(m)
	dominates := func(a, b *Block) bool {
		for {
			if a == b {
				return true
			}
			id := idom[b.Index]
			if id == nil || id == b {
				return false
			}
			b = id
		}
	}
	for _, b := range m.Blocks {
		for pos, ins := range b.Instrs {
			if phi, ok := ins.(*Phi); ok {
				if len(phi.Edges) != len(b.Preds) {
					report("%s phi %s arity %d != %d preds", b, phi, len(phi.Edges), len(b.Preds))
					continue
				}
				for k, op := range phi.Edges {
					def := defs[op]
					if def == nil {
						report("phi operand %s has no definition", op)
						continue
					}
					if !dominates(def.Block(), b.Preds[k]) {
						report("phi operand %s def does not dominate pred %s", op, b.Preds[k])
					}
				}
				continue
			}
			for _, op := range ins.Uses() {
				if op == nil {
					continue // reported above
				}
				def := defs[op]
				if def == nil {
					report("use of undefined register %s in %s", op, ins)
					continue
				}
				if def.Block() == b {
					defPos := -1
					for j, x := range b.Instrs {
						if x == def {
							defPos = j
							break
						}
					}
					if defPos < 0 || defPos >= pos {
						report("%s used before its definition in %s", op, b)
					}
				} else if !dominates(def.Block(), b) {
					report("def of %s (%s) does not dominate its use in %s (%s)", op, def.Block(), ins, b)
				}
			}
		}
	}
	return errs
}

// dominators computes the immediate-dominator array of m's blocks with
// the Cooper-Harvey-Kennedy iteration. Duplicated from ir/ssa, which
// cannot be imported here without a cycle.
func dominators(m *Method) []*Block {
	// Reverse postorder from the entry.
	seen := make([]bool, len(m.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(m.Entry())
	rpoNum := make([]int, len(m.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	order := make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for i, b := range order {
		rpoNum[b.Index] = i
	}
	idom := make([]*Block, len(m.Blocks))
	entry := m.Entry()
	idom[entry.Index] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a.Index] > rpoNum[b.Index] {
				a = idom[a.Index]
			}
			for rpoNum[b.Index] > rpoNum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if rpoNum[p.Index] < 0 || idom[p.Index] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func sameBlocks(a, b []*Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
