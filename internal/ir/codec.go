package ir

// This file implements the persistent encoding of a lowered Program
// (package artifact's "ir" payload). The encoding is a relocatable
// snapshot: instead of serializing the pointer graph (which reaches
// into the whole type system), it stores flat tables over stable names
// — methods by qualified name, fields/classes by name, registers by a
// canonical per-method index, blocks by index — and DecodeProgram
// relinks them against a freshly checked *types.Info. Lowering is
// deterministic, so the decoded program is byte-identical (Sprint) to
// a fresh lowering of the same checked sources.

import (
	"fmt"
	"strings"

	"thinslice/internal/artifact"
	"thinslice/internal/lang/token"
	"thinslice/internal/lang/types"
)

// Instruction tags of the "ir" payload. Order is part of the format:
// renumbering requires an artifact.CodecVersion bump.
const (
	opParam = iota
	opConstInt
	opConstBool
	opConstStr
	opConstNull
	opCopy
	opBinOp
	opUnOp
	opStrOp
	opInput
	opNew
	opNewArray
	opGetField
	opSetField
	opGetStatic
	opSetStatic
	opArrayLoad
	opArrayStore
	opArrayLen
	opCast
	opInstanceOf
	opCall
	opPrint
	opAssert
	opReturn
	opThrow
	opIf
	opGoto
	opPhi
)

// MethodRegs returns every register of m in canonical order: walking
// blocks and instructions in program order, each instruction's
// definition first, then its unseen operands. Encoder and decoder (and
// the pointsto codec, which needs a program-wide register numbering)
// derive identical tables from identical programs.
func MethodRegs(m *Method) []*Reg {
	var regs []*Reg
	seen := make(map[*Reg]bool)
	add := func(r *Reg) {
		if r != nil && !seen[r] {
			seen[r] = true
			regs = append(regs, r)
		}
	}
	m.Instrs(func(ins Instr) {
		add(ins.Def())
		for _, u := range ins.Uses() {
			add(u)
		}
	})
	return regs
}

// EncodeProgram returns the persistent payload for p. Programs with
// lowering diagnostics are never cached and cannot be encoded.
func EncodeProgram(p *Program) ([]byte, error) {
	if len(p.Diags) > 0 {
		return nil, fmt.Errorf("ir: refusing to encode a program with %d diagnostic(s)", len(p.Diags))
	}
	var w artifact.Writer
	w.Uvarint(uint64(p.NumInstrs))
	w.Uvarint(uint64(len(p.Methods)))
	for _, m := range p.Methods {
		encodeMethod(&w, m)
	}
	return w.Bytes(), nil
}

func encodeMethod(w *artifact.Writer, m *Method) {
	w.String(m.Sig.QualifiedName())
	w.Uvarint(uint64(m.nextID))

	regs := MethodRegs(m)
	regIdx := make(map[*Reg]int, len(regs))
	for i, r := range regs {
		regIdx[r] = i
	}
	w.Uvarint(uint64(len(regs)))
	for _, r := range regs {
		w.Int(r.Num)
		w.String(typeString(r.Typ))
		w.String(r.Hint)
	}
	// ref encodes a nillable register operand as index+1.
	ref := func(r *Reg) {
		if r == nil {
			w.Uvarint(0)
			return
		}
		w.Uvarint(uint64(regIdx[r] + 1))
	}
	refs := func(rs []*Reg) {
		w.Uvarint(uint64(len(rs)))
		for _, r := range rs {
			ref(r)
		}
	}

	w.Uvarint(uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		w.Uvarint(uint64(len(b.Instrs)))
		for _, ins := range b.Instrs {
			encodeInstr(w, ins, ref, refs)
		}
	}
	// Preds and Succs both carry order that downstream passes rely on
	// (Phi edges parallel Preds), so both are explicit.
	for _, b := range m.Blocks {
		w.Uvarint(uint64(len(b.Preds)))
		for _, pr := range b.Preds {
			w.Uvarint(uint64(pr.Index))
		}
		w.Uvarint(uint64(len(b.Succs)))
		for _, sc := range b.Succs {
			w.Uvarint(uint64(sc.Index))
		}
	}
	// Params are Param instructions; store their position in the
	// method's flattened instruction sequence.
	instrSeq := make(map[Instr]int)
	n := 0
	m.Instrs(func(ins Instr) {
		instrSeq[ins] = n
		n++
	})
	w.Uvarint(uint64(len(m.Params)))
	for _, p := range m.Params {
		w.Uvarint(uint64(instrSeq[p]))
	}
}

func encodePos(w *artifact.Writer, p token.Pos) {
	w.String(p.File)
	w.Int(p.Line)
	w.Int(p.Col)
}

func encodeInstr(w *artifact.Writer, ins Instr, ref func(*Reg), refs func([]*Reg)) {
	tag := func(t int) {
		w.Uvarint(uint64(t))
		encodePos(w, ins.Pos())
	}
	switch ins := ins.(type) {
	case *Param:
		tag(opParam)
		ref(ins.Dst)
		w.Int(ins.Index)
		w.String(ins.Name)
	case *ConstInt:
		tag(opConstInt)
		ref(ins.Dst)
		w.Int64(ins.Val)
	case *ConstBool:
		tag(opConstBool)
		ref(ins.Dst)
		w.Bool(ins.Val)
	case *ConstStr:
		tag(opConstStr)
		ref(ins.Dst)
		w.String(ins.Val)
	case *ConstNull:
		tag(opConstNull)
		ref(ins.Dst)
	case *Copy:
		tag(opCopy)
		ref(ins.Dst)
		ref(ins.Src)
	case *BinOp:
		tag(opBinOp)
		ref(ins.Dst)
		w.Int(int(ins.Op))
		ref(ins.X)
		ref(ins.Y)
	case *UnOp:
		tag(opUnOp)
		ref(ins.Dst)
		w.Int(int(ins.Op))
		ref(ins.X)
	case *StrOp:
		tag(opStrOp)
		ref(ins.Dst)
		w.Int(int(ins.Op))
		refs(ins.Args)
	case *Input:
		tag(opInput)
		ref(ins.Dst)
		w.Bool(ins.IsInt)
	case *New:
		tag(opNew)
		ref(ins.Dst)
		w.String(ins.Class.Name)
	case *NewArray:
		tag(opNewArray)
		ref(ins.Dst)
		w.String(typeString(ins.Elem))
		ref(ins.Len)
	case *GetField:
		tag(opGetField)
		ref(ins.Dst)
		ref(ins.Obj)
		w.String(ins.Field.QualifiedName())
	case *SetField:
		tag(opSetField)
		ref(ins.Obj)
		w.String(ins.Field.QualifiedName())
		ref(ins.Val)
	case *GetStatic:
		tag(opGetStatic)
		ref(ins.Dst)
		w.String(ins.Field.QualifiedName())
	case *SetStatic:
		tag(opSetStatic)
		w.String(ins.Field.QualifiedName())
		ref(ins.Val)
	case *ArrayLoad:
		tag(opArrayLoad)
		ref(ins.Dst)
		ref(ins.Arr)
		ref(ins.Idx)
	case *ArrayStore:
		tag(opArrayStore)
		ref(ins.Arr)
		ref(ins.Idx)
		ref(ins.Val)
	case *ArrayLen:
		tag(opArrayLen)
		ref(ins.Dst)
		ref(ins.Arr)
	case *Cast:
		tag(opCast)
		ref(ins.Dst)
		ref(ins.Src)
		w.String(typeString(ins.Target))
	case *InstanceOf:
		tag(opInstanceOf)
		ref(ins.Dst)
		ref(ins.Src)
		w.String(ins.Class.Name)
	case *Call:
		tag(opCall)
		ref(ins.Dst)
		w.Int(int(ins.Mode))
		w.String(ins.Callee.QualifiedName())
		ref(ins.Recv)
		refs(ins.Args)
	case *Print:
		tag(opPrint)
		ref(ins.Val)
	case *Assert:
		tag(opAssert)
		ref(ins.Cond)
	case *Return:
		tag(opReturn)
		ref(ins.Val)
	case *Throw:
		tag(opThrow)
		ref(ins.Val)
	case *If:
		tag(opIf)
		ref(ins.Cond)
		w.Uvarint(uint64(ins.Then.Index))
		w.Uvarint(uint64(ins.Else.Index))
	case *Goto:
		tag(opGoto)
		w.Uvarint(uint64(ins.Target.Index))
	case *Phi:
		tag(opPhi)
		ref(ins.Dst)
		refs(ins.Edges)
	default:
		panic(fmt.Sprintf("ir: unencodable instruction %T", ins))
	}
}

// linker resolves the stable names of the encoding against a checked
// Info. A name that no longer resolves means the record does not match
// this build's semantics (a stale or corrupt entry) — an error, never
// a guess.
type linker struct {
	info      *types.Info
	methods   map[string]*types.MethodInfo
	fields    map[string]*types.FieldInfo
	typeCache map[string]types.Type
}

func newLinker(info *types.Info) *linker {
	l := &linker{
		info:      info,
		methods:   make(map[string]*types.MethodInfo),
		fields:    make(map[string]*types.FieldInfo),
		typeCache: make(map[string]types.Type),
	}
	for _, ci := range info.Classes {
		for _, mi := range ci.Methods {
			l.methods[mi.QualifiedName()] = mi
		}
		if ci.Ctor != nil {
			l.methods[ci.Ctor.QualifiedName()] = ci.Ctor
		}
		for _, fi := range ci.Fields {
			l.fields[fi.QualifiedName()] = fi
		}
	}
	return l
}

func (l *linker) class(name string) (*types.ClassInfo, error) {
	if ci, ok := l.info.Classes[name]; ok {
		return ci, nil
	}
	return nil, fmt.Errorf("ir: decode: unknown class %q", name)
}

func (l *linker) method(qname string) (*types.MethodInfo, error) {
	if mi, ok := l.methods[qname]; ok {
		return mi, nil
	}
	return nil, fmt.Errorf("ir: decode: unknown method %q", qname)
}

func (l *linker) field(qname string) (*types.FieldInfo, error) {
	if fi, ok := l.fields[qname]; ok {
		return fi, nil
	}
	return nil, fmt.Errorf("ir: decode: unknown field %q", qname)
}

// typeString renders a type in the stable syntax parseType reads:
// basic-type keywords, class names, and "elem[]" arrays. "" encodes a
// nil type (registers of unlowered values never have one in practice,
// but the format tolerates it).
func typeString(t types.Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

func (l *linker) parseType(s string) (types.Type, error) {
	if t, ok := l.typeCache[s]; ok {
		return t, nil
	}
	t, err := ParseType(l.info, s)
	if err != nil {
		return nil, err
	}
	l.typeCache[s] = t
	return t, nil
}

// ParseType resolves a type rendered by TypeString against info. The
// other artifact codecs (pointsto, modref) share it for element and
// cast-target types.
func ParseType(info *types.Info, s string) (types.Type, error) {
	switch {
	case s == "":
		return nil, nil
	case s == "int":
		return types.IntT, nil
	case s == "boolean":
		return types.BoolT, nil
	case s == "void":
		return types.VoidT, nil
	case s == "null":
		return types.NullT, nil
	case strings.HasSuffix(s, "[]"):
		elem, err := ParseType(info, s[:len(s)-2])
		if err != nil {
			return nil, err
		}
		return &types.Array{Elem: elem}, nil
	default:
		ci, ok := info.Classes[s]
		if !ok {
			return nil, fmt.Errorf("ir: decode: unknown type %q", s)
		}
		return types.ClassType(ci), nil
	}
}

// TypeString renders a type in the stable syntax ParseType reads:
// basic-type keywords, class names, and "elem[]" arrays. "" encodes a
// nil type.
func TypeString(t types.Type) string { return typeString(t) }

// DecodeProgram rebuilds a Program from data, relinking against info
// (the checked program the record was encoded from — same sources,
// same checker). Any structural fault in data is an error; decode
// never panics on corrupt input.
func DecodeProgram(data []byte, info *types.Info) (p *Program, err error) {
	// The reader is panic-free, but the relink arithmetic below indexes
	// slices with decoded values; a recover boundary turns any slip on
	// hostile input into an error.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("ir: decode: malformed payload: %v", r)
		}
	}()
	l := newLinker(info)
	r := artifact.NewReader(data)
	numInstrs := r.Uvarint()
	nMethods := r.Len()
	prog := &Program{Info: info, MethodOf: make(map[*types.MethodInfo]*Method, nMethods)}
	for i := 0; i < nMethods; i++ {
		m, err := decodeMethod(r, l)
		if err != nil {
			return nil, err
		}
		prog.Methods = append(prog.Methods, m)
		prog.MethodOf[m.Sig] = m
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	// Dense program-wide IDs, exactly as lowering assigns them.
	for _, m := range prog.Methods {
		m.Instrs(func(ins Instr) {
			ins.setID(prog.NumInstrs)
			prog.NumInstrs++
			prog.instrByID = append(prog.instrByID, ins)
		})
	}
	if uint64(prog.NumInstrs) != numInstrs {
		return nil, fmt.Errorf("ir: decode: %d instructions, header says %d", prog.NumInstrs, numInstrs)
	}
	return prog, nil
}

func decodeMethod(r *artifact.Reader, l *linker) (*Method, error) {
	sig, err := l.method(r.String())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if err != nil {
		return nil, err
	}
	m := &Method{Sig: sig}
	m.nextID = int(r.Uvarint())

	nRegs := r.Len()
	regs := make([]*Reg, nRegs)
	for i := range regs {
		num := r.Int()
		typ, terr := l.parseType(r.String())
		hint := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if terr != nil {
			return nil, terr
		}
		regs[i] = &Reg{Num: num, Typ: typ, Hint: hint, Method: m}
	}
	ref := func() (*Reg, error) {
		i := r.Uvarint()
		if i == 0 {
			return nil, nil
		}
		if i > uint64(len(regs)) {
			return nil, fmt.Errorf("ir: decode: register index %d of %d", i, len(regs))
		}
		return regs[i-1], nil
	}
	refList := func() ([]*Reg, error) {
		n := r.Len()
		if n == 0 {
			return nil, nil
		}
		out := make([]*Reg, n)
		for i := range out {
			reg, err := ref()
			if err != nil {
				return nil, err
			}
			out[i] = reg
		}
		return out, nil
	}

	nBlocks := r.Len()
	m.Blocks = make([]*Block, nBlocks)
	for i := range m.Blocks {
		m.Blocks[i] = &Block{Index: i, Method: m}
	}
	// Block bodies, then the forward-referencing fixups (branch
	// targets are decoded as indices inline, so one pass suffices).
	for _, b := range m.Blocks {
		nIns := r.Len()
		for j := 0; j < nIns; j++ {
			ins, err := decodeInstr(r, l, m, ref, refList)
			if err != nil {
				return nil, err
			}
			ins.setBlock(b)
			b.Instrs = append(b.Instrs, ins)
		}
	}
	blockAt := func(i uint64) *Block { return m.Blocks[i] } // recover boundary catches range faults
	for _, b := range m.Blocks {
		nPreds := r.Len()
		for j := 0; j < nPreds; j++ {
			b.Preds = append(b.Preds, blockAt(r.Uvarint()))
		}
		nSuccs := r.Len()
		for j := 0; j < nSuccs; j++ {
			b.Succs = append(b.Succs, blockAt(r.Uvarint()))
		}
	}

	var seq []Instr
	m.Instrs(func(ins Instr) { seq = append(seq, ins) })
	nParams := r.Len()
	for j := 0; j < nParams; j++ {
		idx := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		p, ok := seq[idx].(*Param)
		if !ok {
			return nil, fmt.Errorf("ir: decode: param slot %d is %T", idx, seq[idx])
		}
		m.Params = append(m.Params, p)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// SSA def links: each instruction that defines a register is that
	// register's unique definition.
	m.Instrs(func(ins Instr) {
		if d := ins.Def(); d != nil {
			d.Def = ins
		}
	})
	return m, nil
}

func decodePos(r *artifact.Reader) token.Pos {
	return token.Pos{File: r.String(), Line: r.Int(), Col: r.Int()}
}

func decodeInstr(r *artifact.Reader, l *linker, m *Method, ref func() (*Reg, error), refList func() ([]*Reg, error)) (Instr, error) {
	tag := r.Uvarint()
	base := instrBase{pos: decodePos(r)}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// reg / regs / fieldRef / etc. funnel the per-field error handling.
	var firstErr error
	reg := func() *Reg {
		v, err := ref()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	regs := func() []*Reg {
		v, err := refList()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	field := func() *types.FieldInfo {
		v, err := l.field(r.String())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	class := func() *types.ClassInfo {
		v, err := l.class(r.String())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	typ := func() types.Type {
		v, err := l.parseType(r.String())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	blk := func() *Block {
		i := r.Uvarint()
		if i >= uint64(len(m.Blocks)) {
			if firstErr == nil {
				firstErr = fmt.Errorf("ir: decode: block index %d of %d", i, len(m.Blocks))
			}
			return m.Blocks[0]
		}
		return m.Blocks[i]
	}

	var ins Instr
	switch tag {
	case opParam:
		ins = &Param{instrBase: base, Dst: reg(), Index: r.Int(), Name: r.String()}
	case opConstInt:
		ins = &ConstInt{instrBase: base, Dst: reg(), Val: r.Int64()}
	case opConstBool:
		ins = &ConstBool{instrBase: base, Dst: reg(), Val: r.Bool()}
	case opConstStr:
		ins = &ConstStr{instrBase: base, Dst: reg(), Val: r.String()}
	case opConstNull:
		ins = &ConstNull{instrBase: base, Dst: reg()}
	case opCopy:
		ins = &Copy{instrBase: base, Dst: reg(), Src: reg()}
	case opBinOp:
		ins = &BinOp{instrBase: base, Dst: reg(), Op: token.Kind(r.Int()), X: reg(), Y: reg()}
	case opUnOp:
		ins = &UnOp{instrBase: base, Dst: reg(), Op: token.Kind(r.Int()), X: reg()}
	case opStrOp:
		ins = &StrOp{instrBase: base, Dst: reg(), Op: StrKind(r.Int()), Args: regs()}
	case opInput:
		ins = &Input{instrBase: base, Dst: reg(), IsInt: r.Bool()}
	case opNew:
		ins = &New{instrBase: base, Dst: reg(), Class: class()}
	case opNewArray:
		ins = &NewArray{instrBase: base, Dst: reg(), Elem: typ(), Len: reg()}
	case opGetField:
		ins = &GetField{instrBase: base, Dst: reg(), Obj: reg(), Field: field()}
	case opSetField:
		ins = &SetField{instrBase: base, Obj: reg(), Field: field(), Val: reg()}
	case opGetStatic:
		ins = &GetStatic{instrBase: base, Dst: reg(), Field: field()}
	case opSetStatic:
		ins = &SetStatic{instrBase: base, Field: field(), Val: reg()}
	case opArrayLoad:
		ins = &ArrayLoad{instrBase: base, Dst: reg(), Arr: reg(), Idx: reg()}
	case opArrayStore:
		ins = &ArrayStore{instrBase: base, Arr: reg(), Idx: reg(), Val: reg()}
	case opArrayLen:
		ins = &ArrayLen{instrBase: base, Dst: reg(), Arr: reg()}
	case opCast:
		ins = &Cast{instrBase: base, Dst: reg(), Src: reg(), Target: typ()}
	case opInstanceOf:
		ins = &InstanceOf{instrBase: base, Dst: reg(), Src: reg(), Class: class()}
	case opCall:
		c := &Call{instrBase: base, Dst: reg(), Mode: CallMode(r.Int())}
		mi, err := l.method(r.String())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		c.Callee = mi
		c.Recv = reg()
		c.Args = regs()
		ins = c
	case opPrint:
		ins = &Print{instrBase: base, Val: reg()}
	case opAssert:
		ins = &Assert{instrBase: base, Cond: reg()}
	case opReturn:
		ins = &Return{instrBase: base, Val: reg()}
	case opThrow:
		ins = &Throw{instrBase: base, Val: reg()}
	case opIf:
		ins = &If{instrBase: base, Cond: reg(), Then: blk(), Else: blk()}
	case opGoto:
		ins = &Goto{instrBase: base, Target: blk()}
	case opPhi:
		ins = &Phi{instrBase: base, Dst: reg(), Edges: regs()}
	default:
		return nil, fmt.Errorf("ir: decode: unknown instruction tag %d", tag)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return ins, nil
}
