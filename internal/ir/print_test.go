package ir_test

import (
	"strings"
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
)

// TestInstructionStrings exercises every instruction's String method
// through a program using each construct, checking the rendering
// contains the expected mnemonic.
func TestInstructionStrings(t *testing.T) {
	info, err := loader.Load(map[string]string{"t.mj": `
		class E { E() { } }
		class Box {
			Object v;
			static int g;
			Box() { }
			Object pass(Object p) { return p; }
		}
		class Main {
			static void main() {
				Box b = new Box();
				Object o = new E();
				Object alias = o;
				print(alias);
				b.v = o;
				Object r = b.v;
				Box.g = 1;
				int gg = Box.g;
				Object[] arr = new Object[3];
				arr[0] = o;
				Object e0 = arr[0];
				int n = arr.length;
				E cast = (E) b.pass(o);
				boolean is = r instanceof E;
				string s = "x" + itoa(n);
				int inp = inputInt();
				string sinp = input();
				boolean both = is && n > 0;
				print(s);
				assert(n >= 0);
				if (both) {
					throw new E();
				}
			}
		}
	`})
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	wantMnemonics := []string{
		"param#", "const", "copy", "new Box", "new Object[", "null",
		".Box.v =", "= static", "static Box.g =", "[", ".length",
		"= (E)", "instanceof", "str.concat", "str.itoa", "inputInt()",
		"input()", "phi(", "call", "print", "assert", "return", "throw",
		"if", "goto",
	}
	var all strings.Builder
	for _, m := range prog.Methods {
		all.WriteString(m.String())
	}
	text := all.String()
	for _, want := range wantMnemonics {
		if !strings.Contains(text, want) {
			t.Errorf("rendered IR missing %q", want)
		}
	}
	// Role strings.
	for _, r := range []ir.Role{ir.RoleProducer, ir.RoleBase, ir.RoleControl} {
		if r.String() == "?" {
			t.Errorf("role %d renders as ?", r)
		}
	}
	for _, m := range []ir.CallMode{ir.CallVirtual, ir.CallStatic, ir.CallCtor} {
		if m.String() == "?" {
			t.Errorf("call mode %d renders as ?", m)
		}
	}
	for k := ir.StrConcat; k <= ir.StrItoa; k++ {
		if k.String() == "?" {
			t.Errorf("str kind %d renders as ?", k)
		}
	}
}

func TestRegString(t *testing.T) {
	var nilReg *ir.Reg
	if nilReg.String() != "<nil>" {
		t.Error("nil register rendering wrong")
	}
}

func TestUseRolesParallelUsesEverywhere(t *testing.T) {
	info, err := loader.Load(map[string]string{"t.mj": `
		class Main { static void main() { print(1); } }
	`})
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	for _, m := range prog.Methods {
		m.Instrs(func(ins ir.Instr) {
			if len(ins.Uses()) != len(ins.UseRoles()) {
				t.Errorf("%s: uses/roles mismatch", ins)
			}
		})
	}
}
