package ir_test

import (
	"bytes"
	"strings"
	"testing"

	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/types"
	"thinslice/internal/randprog"
)

// roundTrip encodes prog, decodes it against the same checked info,
// and asserts the decoded program is listing-identical (instruction
// IDs, register numbers, positions, diagnostics) and re-encodes to the
// same bytes.
func roundTrip(t *testing.T, info *types.Info, prog *ir.Program) {
	t.Helper()
	data, err := ir.EncodeProgram(prog)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	got, err := ir.DecodeProgram(data, info)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if want, have := ir.Sprint(prog), ir.Sprint(got); want != have {
		t.Fatalf("decoded program differs\nwant:\n%s\ngot:\n%s", want, have)
	}
	if err := ir.Verify(got); err != nil {
		t.Fatalf("decoded program fails verification: %v", err)
	}
	data2, err := ir.EncodeProgram(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding the decoded program produced different bytes")
	}
}

func TestCodecRoundTripPapercases(t *testing.T) {
	for name, srcs := range paperSources() {
		t.Run(name, func(t *testing.T) {
			info, err := loader.Load(srcs)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, info, ir.Lower(info))
		})
	}
}

func TestCodecRoundTripRandprog(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		info, err := loader.Load(randprog.Generate(int64(seed), randprog.DefaultConfig))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog := ir.Lower(info)
		if len(prog.Diags) > 0 {
			continue // uncacheable programs are never encoded
		}
		roundTrip(t, info, prog)
	}
}

func TestCodecRefusesDiagnostics(t *testing.T) {
	// A program with lowering diagnostics is uncacheable; encoding one
	// would persist a partial IR with placeholder values.
	info, err := loader.Load(paperSources()["toy"])
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	prog.Diags = append(prog.Diags, ir.Diagnostic{Msg: "synthetic"})
	if _, err := ir.EncodeProgram(prog); err == nil {
		t.Fatal("EncodeProgram accepted a program with diagnostics")
	}
}

func TestCodecRejectsCorruptPayloads(t *testing.T) {
	info, err := loader.Load(paperSources()["toy"])
	if err != nil {
		t.Fatal(err)
	}
	data, err := ir.EncodeProgram(ir.Lower(info))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length: must error, never panic.
	for n := 0; n < len(data); n += 7 {
		if _, err := ir.DecodeProgram(data[:n], info); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Bit flips across the payload: either a decode error or a program
	// that still verifies — never a panic. (Unlike the container layer,
	// the raw payload has no checksum of its own; the CRC lives in the
	// artifact record wrapper.)
	for i := 0; i < len(data); i += 11 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x04
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip at byte %d panicked: %v", i, r)
				}
			}()
			ir.DecodeProgram(mutated, info)
		}()
	}
	// Unknown names must be errors, not nil pointers.
	empty, err := loader.Load(map[string]string{"empty.mj": `class Main {
    static void main() {
        print("hello");
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.DecodeProgram(data, empty); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("decoding against a mismatched program: err = %v, want unknown-name error", err)
	}
}
