package ir

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
	"thinslice/internal/lang/types"
)

// Lower translates a checked program into SSA IR. Constructs that
// escaped the type checker are lowered to safe placeholder values and
// recorded in the program's Diags instead of panicking; callers should
// reject programs with non-empty Diags.
func Lower(info *types.Info) *Program { return LowerWorkers(info, 1) }

// LowerWorkers is Lower with per-method lowering spread over up to
// workers goroutines (workers < 1 selects GOMAXPROCS). Method bodies
// are independent SSA units — register numbering is method-local and
// diagnostics are collected per method — so the output is byte-
// identical to the sequential build: methods keep declaration order,
// diagnostics keep method order, and the dense program-unique
// instruction IDs are assigned in one deterministic pass at the end.
func LowerWorkers(info *types.Info, workers int) *Program {
	prog := &Program{Info: info, MethodOf: make(map[*types.MethodInfo]*Method)}
	// Collect the lowering jobs in deterministic declaration order.
	var jobs []*types.MethodInfo
	for _, decl := range info.Prog.Classes {
		ci := info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue
		}
		for _, mdecl := range decl.Methods {
			if mi := info.MethodOfDecl[mdecl]; mi != nil {
				jobs = append(jobs, mi)
			}
		}
		if ci.Ctor != nil && ci.Ctor.Decl == nil {
			jobs = append(jobs, ci.Ctor) // synthesized default constructor
		}
	}

	methods := make([]*Method, len(jobs))
	diags := make([]Diagnostics, len(jobs))
	lowerAll(info, jobs, methods, diags, workers)

	for i, mi := range jobs {
		prog.Methods = append(prog.Methods, methods[i])
		prog.MethodOf[mi] = methods[i]
		prog.Diags = append(prog.Diags, diags[i]...)
	}
	// Assign dense program-unique instruction IDs.
	for _, m := range prog.Methods {
		m.Instrs(func(ins Instr) {
			ins.setID(prog.NumInstrs)
			prog.NumInstrs++
			prog.instrByID = append(prog.instrByID, ins)
		})
	}
	return prog
}

// lowerParallelMinStmts gates the worker pool: below this many
// top-level statements across all methods, goroutine spawn and result
// merging cost more than the lowering itself, so small programs always
// take the sequential path and never pay pool overhead. A variable so
// the equivalence tests can force the parallel path on small programs.
var lowerParallelMinStmts = 4096

// estimateLowerWork is a cheap pre-lowering work proxy: the number of
// top-level statements in every method body (nested blocks uncounted —
// the estimate only has to separate "tiny program" from "real one").
func estimateLowerWork(jobs []*types.MethodInfo) int {
	stmts := 0
	for _, mi := range jobs {
		if mi.Decl != nil && mi.Decl.Body != nil {
			stmts += len(mi.Decl.Body.Stmts)
		}
	}
	return stmts
}

// lowerAll lowers jobs[i] into methods[i]/diags[i], fanning out over a
// bounded worker pool. A panic on a worker is re-raised on the calling
// goroutine so the facade's recover boundary still converts it to a
// typed internal error.
func lowerAll(info *types.Info, jobs []*types.MethodInfo, methods []*Method, diags []Diagnostics, workers int) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers > 1 && estimateLowerWork(jobs) < lowerParallelMinStmts {
		workers = 1
	}
	work := func(i int) { methods[i], diags[i] = lowerMethod(info, jobs[i]) }
	if workers <= 1 {
		for i := range jobs {
			work(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// varKey identifies an SSA-converted variable: a declaration node, a
// parameter, the receiver, or a synthetic temporary.
type varKey any

type thisVar struct{}

// tempVar is a synthetic variable for short-circuit lowering, keyed by
// the expression node.
type tempVar struct{ e ast.Expr }

type loopCtx struct {
	brk  *Block // break target
	cont *Block // continue target
}

// incompletePhi is a phi awaiting operands in a not-yet-sealed block.
type incompletePhi struct {
	v   varKey
	phi *Phi
}

type builder struct {
	info  *types.Info
	m     *Method
	sig   *types.MethodInfo
	diags Diagnostics

	cur    *Block // nil when the current point is unreachable
	sealed map[*Block]bool
	// currentDef[v][block] is the reaching SSA value of v at block end.
	currentDef map[varKey]map[*Block]*Reg
	// incomplete holds the pending phis of unsealed blocks in creation
	// order: sealing must process them deterministically, because
	// completing a phi can create further phis (and registers), and
	// that order is part of the program's canonical byte image.
	incomplete map[*Block][]incompletePhi
	// replacement maps removed trivial phi results to their value.
	replacement map[*Reg]*Reg
	phiUsers    map[*Reg][]*Phi
	deadPhis    map[*Phi]bool
	loops       []loopCtx
}

func lowerMethod(info *types.Info, sig *types.MethodInfo) (*Method, Diagnostics) {
	m := &Method{Sig: sig}
	b := &builder{
		info:        info,
		m:           m,
		sig:         sig,
		sealed:      make(map[*Block]bool),
		currentDef:  make(map[varKey]map[*Block]*Reg),
		incomplete:  make(map[*Block][]incompletePhi),
		replacement: make(map[*Reg]*Reg),
		phiUsers:    make(map[*Reg][]*Phi),
		deadPhis:    make(map[*Phi]bool),
	}
	entry := b.newBlock()
	b.seal(entry)
	b.cur = entry

	pos := token.Pos{}
	if sig.Decl != nil {
		pos = sig.Decl.Pos()
	} else if sig.Owner.Decl != nil {
		pos = sig.Owner.Decl.Pos()
	}

	// Formal parameters (including the receiver).
	idx := 0
	if !sig.Static {
		r := b.newReg(types.ClassType(sig.Owner))
		r.Hint = "this"
		p := &Param{Dst: r, Index: idx, Name: "this"}
		p.pos = pos
		b.emit(p)
		b.write(thisVar{}, r)
		idx++
	}
	if sig.Decl != nil {
		for _, pd := range sig.Decl.Params {
			r := b.newReg(b.resolveType(pd.Type))
			r.Hint = pd.Name
			p := &Param{Dst: r, Index: idx, Name: pd.Name}
			p.pos = pd.Pos()
			b.emit(p)
			b.write(pd, r)
			idx++
		}
		m.Params = collectParams(entry)
	} else {
		m.Params = collectParams(entry)
	}

	// Implicit super constructor call at the top of constructors whose
	// body does not begin with an explicit super(...) call.
	if sig.IsCtor && sig.Owner.Super != nil && sig.Owner.Super.Decl != nil {
		explicit := false
		if sig.Decl != nil && len(sig.Decl.Body.Stmts) > 0 {
			if es, ok := sig.Decl.Body.Stmts[0].(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.Call); ok && call.IsSuper {
					explicit = true
				}
			}
		}
		supCtor := sig.Owner.Super.Ctor
		if !explicit && supCtor != nil && len(supCtor.Params) == 0 {
			this := b.read(thisVar{}, pos)
			c := &Call{Mode: CallCtor, Callee: supCtor, Recv: this}
			c.pos = pos
			b.emit(c)
		}
	}

	if sig.Decl != nil {
		b.lowerStmt(sig.Decl.Body)
	}
	// Implicit return at the end of the body.
	if b.cur != nil {
		var val *Reg
		if sig.Ret != types.Type(types.VoidT) {
			val = b.zeroValue(sig.Ret, pos)
		}
		r := &Return{Val: val}
		r.pos = pos
		b.emit(r)
	}
	b.finalize()
	return m, b.diags
}

func collectParams(entry *Block) []*Param {
	var params []*Param
	for _, ins := range entry.Instrs {
		if p, ok := ins.(*Param); ok {
			params = append(params, p)
		}
	}
	return params
}

// diag records a malformed construct and lets lowering continue with a
// placeholder; the program is rejected afterwards via prog.Diags. Diags
// are collected per method so concurrent method lowering stays
// share-nothing, and merged in method order by LowerWorkers.
func (b *builder) diag(pos token.Pos, format string, args ...any) {
	b.diags = append(b.diags, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// badValue emits a well-formed placeholder definition for a value that
// could not be lowered, keeping the SSA invariants (every reachable use
// has a defining instruction) intact.
func (b *builder) badValue(t types.Type, pos token.Pos) *Reg {
	return b.zeroValue(t, pos)
}

func (b *builder) resolveType(t ast.TypeExpr) types.Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return types.IntT
		case ast.PrimBool:
			return types.BoolT
		case ast.PrimString:
			return types.ClassType(b.info.String)
		case ast.PrimVoid:
			return types.VoidT
		}
	case *ast.NamedType:
		if ci := b.info.Classes[t.Name]; ci != nil {
			return types.ClassType(ci)
		}
	case *ast.ArrayType:
		return &types.Array{Elem: b.resolveType(t.Elem)}
	}
	b.diag(t.Pos(), "unresolvable type")
	return types.IntT
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.m.Blocks), Method: b.m}
	b.m.Blocks = append(b.m.Blocks, blk)
	return blk
}

func (b *builder) newReg(t types.Type) *Reg {
	r := &Reg{Num: b.m.nextID, Typ: t, Method: b.m}
	b.m.nextID++
	return r
}

func (b *builder) emit(ins Instr) {
	if b.cur == nil {
		return // unreachable code: drop
	}
	ins.setBlock(b.cur)
	if d := ins.Def(); d != nil {
		d.Def = ins
	}
	b.cur.Instrs = append(b.cur.Instrs, ins)
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump emits a goto from the current block to target and kills cur.
func (b *builder) jump(target *Block, pos token.Pos) {
	if b.cur == nil {
		return
	}
	g := &Goto{Target: target}
	g.pos = pos
	b.emit(g)
	addEdge(b.cur, target)
	b.cur = nil
}

// --- Braun et al. on-the-fly SSA construction ---

func (b *builder) write(v varKey, val *Reg) {
	if b.cur == nil {
		return
	}
	b.writeIn(v, b.cur, val)
}

func (b *builder) writeIn(v varKey, blk *Block, val *Reg) {
	m := b.currentDef[v]
	if m == nil {
		m = make(map[*Block]*Reg)
		b.currentDef[v] = m
	}
	m[blk] = val
}

func (b *builder) resolve(r *Reg) *Reg {
	for {
		n, ok := b.replacement[r]
		if !ok {
			return r
		}
		r = n
	}
}

func (b *builder) read(v varKey, pos token.Pos) *Reg {
	if b.cur == nil {
		// Unreachable; synthesize a placeholder that will be dropped.
		return &Reg{Num: -1, Typ: types.IntT, Method: b.m}
	}
	return b.readIn(v, b.cur, pos)
}

func (b *builder) readIn(v varKey, blk *Block, pos token.Pos) *Reg {
	if m := b.currentDef[v]; m != nil {
		if r, ok := m[blk]; ok {
			return b.resolve(r)
		}
	}
	return b.readRecursive(v, blk, pos)
}

func (b *builder) readRecursive(v varKey, blk *Block, pos token.Pos) *Reg {
	var val *Reg
	switch {
	case !b.sealed[blk]:
		phi := b.newPhiIn(blk, pos)
		b.incomplete[blk] = append(b.incomplete[blk], incompletePhi{v, phi})
		val = phi.Dst
	case len(blk.Preds) == 1:
		val = b.readIn(v, blk.Preds[0], pos)
	case len(blk.Preds) == 0:
		// Read of an undefined variable: only possible in dead code or
		// for variables declared without initializers before any write
		// on some path; synthesize a zero value in the entry block.
		val = b.zeroValueIn(b.m.Blocks[0], types.IntT, pos)
	default:
		phi := b.newPhiIn(blk, pos)
		b.writeIn(v, blk, phi.Dst)
		val = b.addPhiOperands(v, phi, pos)
	}
	b.writeIn(v, blk, val)
	return val
}

func (b *builder) newPhiIn(blk *Block, pos token.Pos) *Phi {
	r := b.newReg(types.IntT) // type refined when operands resolve; unused by analyses
	phi := &Phi{Dst: r}
	phi.pos = pos
	phi.setBlock(blk)
	r.Def = phi
	// Phis go at the front of the block.
	blk.Instrs = append([]Instr{phi}, blk.Instrs...)
	return phi
}

func (b *builder) addPhiOperands(v varKey, phi *Phi, pos token.Pos) *Reg {
	for _, pred := range phi.Block().Preds {
		op := b.readIn(v, pred, pos)
		phi.Edges = append(phi.Edges, op)
		b.phiUsers[op] = append(b.phiUsers[op], phi)
	}
	return b.tryRemoveTrivialPhi(phi)
}

func (b *builder) tryRemoveTrivialPhi(phi *Phi) *Reg {
	var same *Reg
	for _, op := range phi.Edges {
		op = b.resolve(op)
		if op == phi.Dst || op == same {
			continue
		}
		if same != nil {
			// The phi merges at least two distinct values: refine its
			// register type from an operand and keep it.
			phi.Dst.Typ = op.Typ
			return phi.Dst
		}
		same = op
	}
	if same == nil {
		// Unreachable or undefined: keep the phi as an opaque value.
		return phi.Dst
	}
	// The phi is trivial: reroute all uses of it to same.
	b.deadPhis[phi] = true
	b.replacement[phi.Dst] = same
	users := b.phiUsers[phi.Dst]
	for _, q := range users {
		if b.deadPhis[q] || q == phi {
			continue
		}
		for i := range q.Edges {
			q.Edges[i] = b.resolve(q.Edges[i])
		}
		b.tryRemoveTrivialPhi(q)
	}
	return same
}

func (b *builder) seal(blk *Block) {
	if b.sealed[blk] {
		return
	}
	for _, ip := range b.incomplete[blk] {
		if len(ip.phi.Edges) == 0 {
			b.addPhiOperands(ip.v, ip.phi, ip.phi.Pos())
		}
	}
	delete(b.incomplete, blk)
	b.sealed[blk] = true
}

// finalize resolves replaced registers in every operand, removes dead
// phis, drops unreachable blocks, and re-indexes.
func (b *builder) finalize() {
	// Seal remaining blocks in construction order, not map order:
	// sealing creates phis and registers, whose numbering must be
	// deterministic.
	for _, blk := range b.m.Blocks {
		b.seal(blk)
	}
	reach := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(blk *Block) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(b.m.Blocks[0])

	var kept []*Block
	var cur Instr
	fixUse := func(u *Reg, _ Role) {
		if r := b.resolve(u); r != u {
			cur.replaceUse(u, r)
		}
	}
	for _, blk := range b.m.Blocks {
		if !reach[blk] {
			continue
		}
		var instrs []Instr
		for _, ins := range blk.Instrs {
			if phi, ok := ins.(*Phi); ok && b.deadPhis[phi] {
				continue
			}
			cur = ins
			ins.EachUse(fixUse)
			instrs = append(instrs, ins)
		}
		blk.Instrs = instrs
		blk.Index = len(kept)
		kept = append(kept, blk)
	}
	b.m.Blocks = kept
}

func (b *builder) zeroValue(t types.Type, pos token.Pos) *Reg {
	if b.cur == nil {
		return &Reg{Num: -1, Typ: t, Method: b.m}
	}
	return b.zeroValueIn(b.cur, t, pos)
}

func (b *builder) zeroValueIn(blk *Block, t types.Type, pos token.Pos) *Reg {
	r := b.newReg(t)
	var ins Instr
	switch t {
	case types.Type(types.IntT):
		c := &ConstInt{Dst: r}
		c.pos = pos
		ins = c
	case types.Type(types.BoolT):
		c := &ConstBool{Dst: r}
		c.pos = pos
		ins = c
	default:
		c := &ConstNull{Dst: r}
		c.pos = pos
		ins = c
	}
	ins.setBlock(blk)
	r.Def = ins
	// Insert after any leading phis so blocks stay well-formed.
	n := 0
	for n < len(blk.Instrs) {
		if _, ok := blk.Instrs[n].(*Phi); !ok {
			break
		}
		n++
	}
	blk.Instrs = append(blk.Instrs[:n], append([]Instr{ins}, blk.Instrs[n:]...)...)
	return r
}

// --- statement lowering ---

func (b *builder) lowerStmt(s ast.Stmt) {
	if s == nil || b.cur == nil {
		return
	}
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			if b.cur == nil {
				return // code after return/throw/break is unreachable
			}
			b.lowerStmt(st)
		}
	case *ast.VarDecl:
		var val *Reg
		if s.Init != nil {
			val = b.lowerExpr(s.Init)
			val = b.materializeCopy(s.Init, val, s.Pos())
		} else {
			val = b.zeroValue(b.resolveType(s.Type), s.Pos())
		}
		b.write(s, val)
	case *ast.Assign:
		b.lowerAssign(s)
	case *ast.If:
		b.lowerIf(s)
	case *ast.While:
		b.lowerWhile(s)
	case *ast.For:
		b.lowerFor(s)
	case *ast.Return:
		var val *Reg
		if s.Value != nil {
			val = b.lowerExpr(s.Value)
		}
		r := &Return{Val: val}
		r.pos = s.Pos()
		b.emit(r)
		b.cur = nil
	case *ast.ExprStmt:
		b.lowerExpr(s.X)
	case *ast.Throw:
		val := b.lowerExpr(s.X)
		t := &Throw{Val: val}
		t.pos = s.Pos()
		b.emit(t)
		b.cur = nil
	case *ast.Assert:
		cond := b.lowerExpr(s.Cond)
		a := &Assert{Cond: cond}
		a.pos = s.Pos()
		b.emit(a)
	case *ast.Break:
		if len(b.loops) == 0 {
			b.diag(s.Pos(), "break outside loop")
			b.cur = nil // code after the bad jump is unreachable
			return
		}
		b.jump(b.loops[len(b.loops)-1].brk, s.Pos())
	case *ast.Continue:
		if len(b.loops) == 0 {
			b.diag(s.Pos(), "continue outside loop")
			b.cur = nil
			return
		}
		b.jump(b.loops[len(b.loops)-1].cont, s.Pos())
	default:
		b.diag(s.Pos(), "unexpected statement %T", s)
	}
}

func (b *builder) lowerAssign(s *ast.Assign) {
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		ref := b.info.Refs[lhs]
		val := b.lowerExpr(s.RHS)
		if ref == nil {
			b.diag(lhs.Pos(), "unresolved assignment target %s", lhs.Name)
			return
		}
		switch ref.Kind {
		case types.RefLocal:
			b.write(ref.Local, b.materializeCopy(s.RHS, val, s.Pos()))
		case types.RefParam:
			b.write(ref.Param, b.materializeCopy(s.RHS, val, s.Pos()))
		case types.RefField:
			this := b.read(thisVar{}, s.Pos())
			st := &SetField{Obj: this, Field: ref.Field, Val: val}
			st.pos = s.Pos()
			b.emit(st)
		case types.RefStaticField:
			st := &SetStatic{Field: ref.Field, Val: val}
			st.pos = s.Pos()
			b.emit(st)
		default:
			b.diag(s.Pos(), "bad assign target %s", lhs.Name)
		}
	case *ast.FieldAccess:
		f := b.info.FieldRefs[lhs]
		if f == nil {
			b.diag(lhs.Pos(), "unresolved field in assignment")
			b.lowerExpr(s.RHS) // still lower the RHS for its effects
			return
		}
		if f.Static {
			val := b.lowerExpr(s.RHS)
			st := &SetStatic{Field: f, Val: val}
			st.pos = s.Pos()
			b.emit(st)
			return
		}
		obj := b.lowerExpr(lhs.X)
		val := b.lowerExpr(s.RHS)
		st := &SetField{Obj: obj, Field: f, Val: val}
		st.pos = s.Pos()
		b.emit(st)
	case *ast.Index:
		arr := b.lowerExpr(lhs.X)
		idx := b.lowerExpr(lhs.I)
		val := b.lowerExpr(s.RHS)
		st := &ArrayStore{Arr: arr, Idx: idx, Val: val}
		st.pos = s.Pos()
		b.emit(st)
	default:
		b.diag(s.Pos(), "bad assign target %T", s.LHS)
	}
}

func (b *builder) lowerIf(s *ast.If) {
	thenB := b.newBlock()
	var elseB *Block
	join := b.newBlock()
	if s.Else != nil {
		elseB = b.newBlock()
		b.lowerCond(s.Cond, thenB, elseB)
		b.seal(elseB)
	} else {
		b.lowerCond(s.Cond, thenB, join)
	}
	b.seal(thenB)
	b.cur = thenB
	b.lowerStmt(s.Then)
	b.jump(join, s.Pos())
	if s.Else != nil {
		b.cur = elseB
		b.lowerStmt(s.Else)
		b.jump(join, s.Pos())
	}
	b.seal(join)
	if len(join.Preds) == 0 {
		b.cur = nil
		return
	}
	b.cur = join
}

func (b *builder) lowerWhile(s *ast.While) {
	header := b.newBlock()
	b.jump(header, s.Pos())
	body := b.newBlock()
	exit := b.newBlock()
	b.cur = header
	b.lowerCond(s.Cond, body, exit)
	b.seal(body)
	b.cur = body
	b.loops = append(b.loops, loopCtx{brk: exit, cont: header})
	b.lowerStmt(s.Body)
	b.loops = b.loops[:len(b.loops)-1]
	b.jump(header, s.Pos())
	b.seal(header)
	b.seal(exit)
	b.cur = exit
}

func (b *builder) lowerFor(s *ast.For) {
	b.lowerStmt(s.Init)
	header := b.newBlock()
	b.jump(header, s.Pos())
	body := b.newBlock()
	exit := b.newBlock()
	post := b.newBlock()
	b.cur = header
	if s.Cond != nil {
		b.lowerCond(s.Cond, body, exit)
	} else {
		b.jump(body, s.Pos())
	}
	b.seal(body)
	b.cur = body
	b.loops = append(b.loops, loopCtx{brk: exit, cont: post})
	b.lowerStmt(s.Body)
	b.loops = b.loops[:len(b.loops)-1]
	b.jump(post, s.Pos())
	b.seal(post)
	b.cur = post
	b.lowerStmt(s.Post)
	b.jump(header, s.Pos())
	b.seal(header)
	b.seal(exit)
	b.cur = exit
}

// materializeCopy wraps a bare identifier/this RHS in an explicit Copy
// instruction, so that source-level copy statements (x = y) remain
// dependence-graph nodes instead of being elided by SSA construction.
func (b *builder) materializeCopy(rhs ast.Expr, val *Reg, pos token.Pos) *Reg {
	if b.cur == nil {
		return val
	}
	bare := false
	switch rhs := rhs.(type) {
	case *ast.This:
		bare = true
	case *ast.Ident:
		if ref := b.info.Refs[rhs]; ref != nil {
			bare = ref.Kind == types.RefLocal || ref.Kind == types.RefParam
		}
	}
	if !bare {
		return val
	}
	dst := b.newReg(val.Typ)
	dst.Hint = val.Hint
	c := &Copy{Dst: dst, Src: val}
	c.pos = pos
	b.emit(c)
	return dst
}

// lowerCond lowers e in a control position, branching to thenB/elseB,
// expanding short-circuit operators into control flow.
func (b *builder) lowerCond(e ast.Expr, thenB, elseB *Block) {
	if b.cur == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Binary:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock()
			b.lowerCond(e.X, mid, elseB)
			b.seal(mid)
			b.cur = mid
			b.lowerCond(e.Y, thenB, elseB)
			return
		case token.LOR:
			mid := b.newBlock()
			b.lowerCond(e.X, thenB, mid)
			b.seal(mid)
			b.cur = mid
			b.lowerCond(e.Y, thenB, elseB)
			return
		}
	case *ast.Unary:
		if e.Op == token.NOT {
			b.lowerCond(e.X, elseB, thenB)
			return
		}
	}
	cond := b.lowerExpr(e)
	if b.cur == nil {
		return
	}
	br := &If{Cond: cond, Then: thenB, Else: elseB}
	br.pos = e.Pos()
	b.emit(br)
	addEdge(b.cur, thenB)
	addEdge(b.cur, elseB)
	b.cur = nil
}

// --- expression lowering ---

func (b *builder) lowerExpr(e ast.Expr) *Reg {
	if b.cur == nil {
		return &Reg{Num: -1, Typ: types.IntT, Method: b.m}
	}
	switch e := e.(type) {
	case *ast.IntLit:
		r := b.newReg(types.IntT)
		c := &ConstInt{Dst: r, Val: e.Value}
		c.pos = e.Pos()
		b.emit(c)
		return r
	case *ast.BoolLit:
		r := b.newReg(types.BoolT)
		c := &ConstBool{Dst: r, Val: e.Value}
		c.pos = e.Pos()
		b.emit(c)
		return r
	case *ast.StrLit:
		r := b.newReg(types.ClassType(b.info.String))
		c := &ConstStr{Dst: r, Val: e.Value}
		c.pos = e.Pos()
		b.emit(c)
		return r
	case *ast.NullLit:
		return b.zeroValue(types.NullT, e.Pos())
	case *ast.This:
		return b.read(thisVar{}, e.Pos())
	case *ast.Ident:
		return b.lowerIdent(e)
	case *ast.Binary:
		return b.lowerBinary(e)
	case *ast.Unary:
		x := b.lowerExpr(e.X)
		t := types.Type(types.IntT)
		if e.Op == token.NOT {
			t = types.BoolT
		}
		r := b.newReg(t)
		u := &UnOp{Dst: r, Op: e.Op, X: x}
		u.pos = e.Pos()
		b.emit(u)
		return r
	case *ast.FieldAccess:
		return b.lowerFieldAccess(e)
	case *ast.Index:
		arr := b.lowerExpr(e.X)
		idx := b.lowerExpr(e.I)
		r := b.newReg(b.elemType(e.X))
		ld := &ArrayLoad{Dst: r, Arr: arr, Idx: idx}
		ld.pos = e.Pos()
		b.emit(ld)
		return r
	case *ast.Call:
		return b.lowerCall(e)
	case *ast.New:
		return b.lowerNew(e)
	case *ast.NewArray:
		ln := b.lowerExpr(e.Len)
		elem := b.resolveType(e.Elem)
		r := b.newReg(&types.Array{Elem: elem})
		na := &NewArray{Dst: r, Elem: elem, Len: ln}
		na.pos = e.Pos()
		b.emit(na)
		return r
	case *ast.Cast:
		src := b.lowerExpr(e.X)
		target := b.resolveType(e.Type)
		r := b.newReg(target)
		c := &Cast{Dst: r, Src: src, Target: target}
		c.pos = e.Pos()
		b.emit(c)
		return r
	case *ast.InstanceOf:
		src := b.lowerExpr(e.X)
		r := b.newReg(types.BoolT)
		io := &InstanceOf{Dst: r, Src: src, Class: b.info.Classes[e.Class]}
		io.pos = e.Pos()
		b.emit(io)
		return r
	}
	b.diag(e.Pos(), "unexpected expression %T", e)
	return b.badValue(types.IntT, e.Pos())
}

func (b *builder) elemType(arrExpr ast.Expr) types.Type {
	if at, ok := b.info.TypeOf(arrExpr).(*types.Array); ok {
		return at.Elem
	}
	return types.IntT
}

func (b *builder) lowerIdent(e *ast.Ident) *Reg {
	ref := b.info.Refs[e]
	if ref == nil {
		b.diag(e.Pos(), "unresolved identifier %s", e.Name)
		return b.badValue(types.IntT, e.Pos())
	}
	switch ref.Kind {
	case types.RefLocal:
		return b.read(ref.Local, e.Pos())
	case types.RefParam:
		return b.read(ref.Param, e.Pos())
	case types.RefField:
		this := b.read(thisVar{}, e.Pos())
		r := b.newReg(ref.Field.Type)
		g := &GetField{Dst: r, Obj: this, Field: ref.Field}
		g.pos = e.Pos()
		b.emit(g)
		return r
	case types.RefStaticField:
		r := b.newReg(ref.Field.Type)
		g := &GetStatic{Dst: r, Field: ref.Field}
		g.pos = e.Pos()
		b.emit(g)
		return r
	}
	b.diag(e.Pos(), "identifier %s names a class", e.Name)
	return b.badValue(types.IntT, e.Pos())
}

func (b *builder) lowerBinary(e *ast.Binary) *Reg {
	switch e.Op {
	case token.LAND, token.LOR:
		// Value-position short-circuit: lower via control flow into a
		// synthetic variable, then read it back (yields a phi).
		key := tempVar{e}
		thenB := b.newBlock()
		elseB := b.newBlock()
		join := b.newBlock()
		b.lowerCond(e, thenB, elseB)
		b.seal(thenB)
		b.seal(elseB)
		b.cur = thenB
		tr := b.newReg(types.BoolT)
		ct := &ConstBool{Dst: tr, Val: true}
		ct.pos = e.Pos()
		b.emit(ct)
		b.write(key, tr)
		b.jump(join, e.Pos())
		b.cur = elseB
		fr := b.newReg(types.BoolT)
		cf := &ConstBool{Dst: fr, Val: false}
		cf.pos = e.Pos()
		b.emit(cf)
		b.write(key, fr)
		b.jump(join, e.Pos())
		b.seal(join)
		b.cur = join
		return b.read(key, e.Pos())
	case token.ADD:
		// String concatenation.
		if isStrType(b.info.TypeOf(e)) {
			x := b.lowerExpr(e.X)
			y := b.lowerExpr(e.Y)
			r := b.newReg(types.ClassType(b.info.String))
			s := &StrOp{Dst: r, Op: StrConcat, Args: []*Reg{x, y}}
			s.pos = e.Pos()
			b.emit(s)
			return r
		}
	}
	x := b.lowerExpr(e.X)
	y := b.lowerExpr(e.Y)
	t := types.Type(types.IntT)
	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		t = types.BoolT
	}
	r := b.newReg(t)
	op := &BinOp{Dst: r, Op: e.Op, X: x, Y: y}
	op.pos = e.Pos()
	b.emit(op)
	return r
}

func isStrType(t types.Type) bool {
	c, ok := t.(*types.Class)
	return ok && c.Info.Name == "String"
}

func (b *builder) lowerFieldAccess(e *ast.FieldAccess) *Reg {
	if b.info.IsArrayLen[e] {
		arr := b.lowerExpr(e.X)
		r := b.newReg(types.IntT)
		al := &ArrayLen{Dst: r, Arr: arr}
		al.pos = e.Pos()
		b.emit(al)
		return r
	}
	f := b.info.FieldRefs[e]
	if f == nil {
		b.diag(e.Pos(), "unresolved field access")
		return b.badValue(types.IntT, e.Pos())
	}
	if f.Static {
		r := b.newReg(f.Type)
		g := &GetStatic{Dst: r, Field: f}
		g.pos = e.Pos()
		b.emit(g)
		return r
	}
	obj := b.lowerExpr(e.X)
	r := b.newReg(f.Type)
	g := &GetField{Dst: r, Obj: obj, Field: f}
	g.pos = e.Pos()
	b.emit(g)
	return r
}

var strIntrinsicKinds = map[types.Intrinsic]StrKind{
	types.StrLength:     StrLength,
	types.StrSubstring:  StrSubstring,
	types.StrIndexOf:    StrIndexOf,
	types.StrCharAt:     StrCharAt,
	types.StrEquals:     StrEquals,
	types.StrStartsWith: StrStartsWith,
}

func (b *builder) lowerCall(e *ast.Call) *Reg {
	ci := b.info.Calls[e]
	if ci == nil {
		b.diag(e.Pos(), "unresolved call %s", e.Name)
		return b.badValue(types.IntT, e.Pos())
	}
	switch ci.Intrinsic {
	case types.BuiltinPrint:
		val := b.lowerExpr(e.Args[0])
		p := &Print{Val: val}
		p.pos = e.Pos()
		b.emit(p)
		return nil
	case types.BuiltinItoa:
		val := b.lowerExpr(e.Args[0])
		r := b.newReg(types.ClassType(b.info.String))
		s := &StrOp{Dst: r, Op: StrItoa, Args: []*Reg{val}}
		s.pos = e.Pos()
		b.emit(s)
		return r
	case types.BuiltinInput, types.BuiltinInputInt:
		isInt := ci.Intrinsic == types.BuiltinInputInt
		t := types.Type(types.IntT)
		if !isInt {
			t = types.ClassType(b.info.String)
		}
		r := b.newReg(t)
		in := &Input{Dst: r, IsInt: isInt}
		in.pos = e.Pos()
		b.emit(in)
		return r
	}
	if k, ok := strIntrinsicKinds[ci.Intrinsic]; ok {
		args := []*Reg{b.lowerExpr(e.Recv)}
		for _, a := range e.Args {
			args = append(args, b.lowerExpr(a))
		}
		var t types.Type
		switch k {
		case StrSubstring:
			t = types.ClassType(b.info.String)
		case StrEquals, StrStartsWith:
			t = types.BoolT
		default:
			t = types.IntT
		}
		r := b.newReg(t)
		s := &StrOp{Dst: r, Op: k, Args: args}
		s.pos = e.Pos()
		b.emit(s)
		return r
	}
	// Regular method or constructor call.
	mi := ci.Method
	var recv *Reg
	mode := CallVirtual
	switch {
	case e.IsSuper:
		mode = CallCtor
		recv = b.read(thisVar{}, e.Pos())
	case mi.Static:
		mode = CallStatic
	case e.Recv == nil:
		recv = b.read(thisVar{}, e.Pos())
	default:
		recv = b.lowerExpr(e.Recv)
	}
	var args []*Reg
	for _, a := range e.Args {
		args = append(args, b.lowerExpr(a))
	}
	var dst *Reg
	if mi.Ret != types.Type(types.VoidT) {
		dst = b.newReg(mi.Ret)
	}
	c := &Call{Dst: dst, Mode: mode, Callee: mi, Recv: recv, Args: args}
	c.pos = e.Pos()
	b.emit(c)
	return dst
}

func (b *builder) lowerNew(e *ast.New) *Reg {
	ci := b.info.Classes[e.Class]
	if ci == nil {
		b.diag(e.Pos(), "unresolved class %s", e.Class)
		return b.badValue(types.IntT, e.Pos())
	}
	r := b.newReg(types.ClassType(ci))
	n := &New{Dst: r, Class: ci}
	n.pos = e.Pos()
	b.emit(n)
	var args []*Reg
	for _, a := range e.Args {
		args = append(args, b.lowerExpr(a))
	}
	if ci.Ctor != nil {
		c := &Call{Mode: CallCtor, Callee: ci.Ctor, Recv: r, Args: args}
		c.pos = e.Pos()
		b.emit(c)
	}
	return r
}
