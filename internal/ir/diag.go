package ir

import (
	"fmt"
	"strings"

	"thinslice/internal/lang/token"
)

// Diagnostic records a malformed construct encountered during lowering.
// Lower no longer panics on input that slipped past the type checker:
// it lowers such constructs to safe placeholder values and accumulates
// a Diagnostic per site, so the facade can reject the program with a
// descriptive error instead of crashing the caller.
type Diagnostic struct {
	Pos token.Pos
	Msg string
}

func (d Diagnostic) Error() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return d.Msg
}

// Diagnostics is an accumulated list of lowering problems; it
// implements error so the whole batch can be returned as one failure.
type Diagnostics []Diagnostic

func (ds Diagnostics) Error() string {
	const max = 10
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("ir: %d lowering diagnostic(s):", len(ds)))
	for i, d := range ds {
		if i == max {
			sb.WriteString(fmt.Sprintf("\n\t... and %d more", len(ds)-max))
			break
		}
		sb.WriteString("\n\t" + d.Error())
	}
	return sb.String()
}
