package ir

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a deterministic, byte-stable listing of the whole
// program: methods in construction order, blocks in index order,
// instructions with their program-unique IDs. Two programs lowered
// from the same checked source — sequentially or by any number of
// workers — must print identically; the equivalence tests pin exactly
// that.
func Fprint(w io.Writer, p *Program) {
	for _, m := range p.Methods {
		fmt.Fprintf(w, "method %s (%d params)\n", m.Name(), len(m.Params))
		for _, b := range m.Blocks {
			fmt.Fprintf(w, "  %s:", b)
			if len(b.Preds) > 0 {
				fmt.Fprint(w, " preds")
				for _, pr := range b.Preds {
					fmt.Fprintf(w, " %s", pr)
				}
			}
			fmt.Fprintln(w)
			for _, ins := range b.Instrs {
				fmt.Fprintf(w, "    #%d %s @ %s\n", ins.ID(), ins, ins.Pos())
			}
		}
	}
	if len(p.Diags) > 0 {
		fmt.Fprintf(w, "diags: %v\n", p.Diags)
	}
}

// Sprint returns Fprint's output as a string.
func Sprint(p *Program) string {
	var b strings.Builder
	Fprint(&b, p)
	return b.String()
}
