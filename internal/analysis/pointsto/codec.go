package pointsto

// Persistent encoding of a Result (package artifact's "pts" payload).
// The solver graph is not persisted — only the fixpoint the query API
// reads: objects, method contexts, per-context points-to sets, call
// edges, and reachability. Everything is stored over stable
// coordinates (instruction IDs, object IDs, MCtx IDs, qualified method
// names, a canonical program-wide register numbering) and relinked
// against the decoded *ir.Program, so a decoded Result answers every
// query identically to the one the solver produced.

import (
	"fmt"
	"sort"

	"thinslice/internal/artifact"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// progRegs returns the canonical program-wide register enumeration:
// methods in program order, ir.MethodRegs within each. Encoder and
// decoder derive identical tables from identical programs.
func progRegs(prog *ir.Program) ([]*ir.Reg, map[*ir.Reg]int) {
	var regs []*ir.Reg
	idx := make(map[*ir.Reg]int)
	for _, m := range prog.Methods {
		for _, r := range ir.MethodRegs(m) {
			idx[r] = len(regs)
			regs = append(regs, r)
		}
	}
	return regs, idx
}

func methodsByQName(prog *ir.Program) map[string]*ir.Method {
	byName := make(map[string]*ir.Method, len(prog.Methods))
	for _, m := range prog.Methods {
		byName[m.Sig.QualifiedName()] = m
	}
	return byName
}

// EncodeResult returns the persistent payload for r. Truncated results
// are incomplete fixpoints and are never cached, so encoding one is an
// error.
func EncodeResult(r *Result) ([]byte, error) {
	if r.Truncated || r.LimitErr != nil {
		return nil, fmt.Errorf("pointsto: refusing to encode a truncated result")
	}
	_, regIdx := progRegs(r.prog)

	var w artifact.Writer
	w.Bool(r.Downgraded)

	w.Uvarint(uint64(len(r.entries)))
	for _, m := range r.entries {
		w.String(m.Sig.QualifiedName())
	}

	// Objects in ID order. An object's heap context is always created
	// before the object itself, so Ctx references point backwards.
	w.Uvarint(uint64(len(r.objects)))
	for _, o := range r.objects {
		w.Uvarint(uint64(o.Site.ID()))
		if o.Ctx != nil {
			w.Uvarint(uint64(o.Ctx.ID + 1))
		} else {
			w.Uvarint(0)
		}
		if o.Class != nil {
			w.String(o.Class.Name)
		} else {
			w.String("")
		}
		w.String(ir.TypeString(o.Elem))
		w.Int(o.depth)
	}

	// Method contexts in ID order.
	w.Uvarint(uint64(len(r.mctxs)))
	for _, mc := range r.mctxs {
		w.String(mc.Method.Sig.QualifiedName())
		if mc.Ctx != nil {
			w.Uvarint(uint64(mc.Ctx.ID + 1))
		} else {
			w.Uvarint(0)
		}
	}

	// Per-context points-to sets, sorted by (register, context). Empty
	// sets are omitted: the query API cannot distinguish an empty set
	// from an absent one.
	type varEntry struct {
		reg int
		ctx int // object ID + 1, 0 for nil
		pts []int
	}
	var vars []varEntry
	for k, n := range r.varNodes { //determinism:ok — sorted below
		if n.pts.empty() {
			continue
		}
		ri, ok := regIdx[k.reg]
		if !ok {
			return nil, fmt.Errorf("pointsto: register %v not in canonical enumeration", k.reg)
		}
		e := varEntry{reg: ri}
		if k.ctx != nil {
			e.ctx = k.ctx.ID + 1
		}
		n.pts.forEach(func(id int) { e.pts = append(e.pts, id) })
		vars = append(vars, e)
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].reg != vars[j].reg {
			return vars[i].reg < vars[j].reg
		}
		return vars[i].ctx < vars[j].ctx
	})
	w.Uvarint(uint64(len(vars)))
	for _, e := range vars {
		w.Uvarint(uint64(e.reg))
		w.Uvarint(uint64(e.ctx))
		w.Uvarint(uint64(len(e.pts)))
		for _, id := range e.pts {
			w.Uvarint(uint64(id))
		}
	}

	// Call edges, sorted by (call site, caller context). The callee
	// list order is load-bearing: SDG construction iterates CalleesAt
	// and its fingerprint depends on edge order.
	type edgeEntry struct {
		call, caller int
		callees      []*MCtx
	}
	var edges []edgeEntry
	for k, v := range r.callEdges { //determinism:ok — sorted below
		edges = append(edges, edgeEntry{k.callID, k.callerID, v})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].call != edges[j].call {
			return edges[i].call < edges[j].call
		}
		return edges[i].caller < edges[j].caller
	})
	w.Uvarint(uint64(len(edges)))
	for _, e := range edges {
		w.Uvarint(uint64(e.call))
		w.Uvarint(uint64(e.caller))
		w.Uvarint(uint64(len(e.callees)))
		for _, mc := range e.callees {
			w.Uvarint(uint64(mc.ID))
		}
	}

	// Context-insensitive callee sets, sorted by call site; the per-call
	// sets are sorted by name (they are consumed through Callees, which
	// sorts anyway).
	type ciEntry struct {
		call  int
		names []string
	}
	var cis []ciEntry
	for call, set := range r.calleesCI { //determinism:ok — sorted below
		e := ciEntry{call: call.ID()}
		for m := range set { //determinism:ok — names sorted below
			e.names = append(e.names, m.Sig.QualifiedName())
		}
		sort.Strings(e.names)
		cis = append(cis, e)
	}
	sort.Slice(cis, func(i, j int) bool { return cis[i].call < cis[j].call })
	w.Uvarint(uint64(len(cis)))
	for _, e := range cis {
		w.Uvarint(uint64(e.call))
		w.Uvarint(uint64(len(e.names)))
		for _, n := range e.names {
			w.String(n)
		}
	}

	// Reachable methods, sorted by name.
	var reach []string
	for m := range r.reachableM { //determinism:ok — sorted below
		reach = append(reach, m.Sig.QualifiedName())
	}
	sort.Strings(reach)
	w.Uvarint(uint64(len(reach)))
	for _, n := range reach {
		w.String(n)
	}

	return w.Bytes(), nil
}

// DecodeResult rebuilds a Result from data against prog (the decoded
// or freshly lowered program the record was encoded from). Any
// structural fault in data is an error; decode never panics on corrupt
// input.
func DecodeResult(data []byte, prog *ir.Program) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("pointsto: decode: malformed payload: %v", rec)
		}
	}()
	regs, _ := progRegs(prog)
	byName := methodsByQName(prog)
	method := func(qname string) (*ir.Method, error) {
		if m, ok := byName[qname]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("pointsto: decode: unknown method %q", qname)
	}

	r := artifact.NewReader(data)
	res = &Result{
		prog:       prog,
		mctxsOf:    make(map[*ir.Method][]*MCtx),
		regNodes:   make(map[*ir.Reg][]*node),
		varNodes:   make(map[varKey]*node),
		callEdges:  make(map[callSiteKey][]*MCtx),
		calleesCI:  make(map[*ir.Call]map[*ir.Method]bool),
		reachableM: make(map[*ir.Method]bool),
	}
	res.Downgraded = r.Bool()

	nEntries := r.Len()
	for i := 0; i < nEntries; i++ {
		m, err := method(r.String())
		if err != nil {
			return nil, firstErr(r.Err(), err)
		}
		res.entries = append(res.entries, m)
	}

	nObjs := r.Len()
	res.objects = make([]*Object, nObjs)
	ctxIDs := make([]uint64, nObjs)
	for i := range res.objects {
		siteID := r.Uvarint()
		ctxIDs[i] = r.Uvarint()
		className := r.String()
		elemStr := r.String()
		depth := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		site := prog.InstrByID(int(siteID))
		if site == nil {
			return nil, fmt.Errorf("pointsto: decode: object %d has unknown site #%d", i, siteID)
		}
		var class *types.ClassInfo
		if className != "" {
			ci, ok := prog.Info.Classes[className]
			if !ok {
				return nil, fmt.Errorf("pointsto: decode: unknown class %q", className)
			}
			class = ci
		}
		elem, err := ir.ParseType(prog.Info, elemStr)
		if err != nil {
			return nil, err
		}
		res.objects[i] = &Object{ID: i, Site: site, Class: class, Elem: elem, depth: depth}
	}
	// Second pass: wire heap contexts now that every object exists.
	object := func(idPlus1 uint64) (*Object, error) {
		if idPlus1 == 0 {
			return nil, nil
		}
		if idPlus1 > uint64(len(res.objects)) {
			return nil, fmt.Errorf("pointsto: decode: object ID %d of %d", idPlus1-1, len(res.objects))
		}
		return res.objects[idPlus1-1], nil
	}
	for i, o := range res.objects {
		ctx, err := object(ctxIDs[i])
		if err != nil {
			return nil, err
		}
		o.Ctx = ctx
	}

	nMCtxs := r.Len()
	res.mctxs = make([]*MCtx, nMCtxs)
	for i := range res.mctxs {
		qname := r.String()
		ctxID := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		m, err := method(qname)
		if err != nil {
			return nil, err
		}
		ctx, err := object(ctxID)
		if err != nil {
			return nil, err
		}
		mc := &MCtx{ID: i, Method: m, Ctx: ctx}
		res.mctxs[i] = mc
		res.mctxsOf[m] = append(res.mctxsOf[m], mc)
	}
	mctx := func(id uint64) (*MCtx, error) {
		if id >= uint64(len(res.mctxs)) {
			return nil, fmt.Errorf("pointsto: decode: mctx ID %d of %d", id, len(res.mctxs))
		}
		return res.mctxs[id], nil
	}

	nVars := r.Len()
	for i := 0; i < nVars; i++ {
		regI := r.Uvarint()
		ctxID := r.Uvarint()
		nPts := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if regI >= uint64(len(regs)) {
			return nil, fmt.Errorf("pointsto: decode: register index %d of %d", regI, len(regs))
		}
		reg := regs[regI]
		ctx, err := object(ctxID)
		if err != nil {
			return nil, err
		}
		n := &node{}
		for j := 0; j < nPts; j++ {
			id := r.Uvarint()
			if id >= uint64(len(res.objects)) {
				return nil, firstErr(r.Err(), fmt.Errorf("pointsto: decode: points-to object ID %d of %d", id, len(res.objects)))
			}
			n.pts.add(int(id))
		}
		res.varNodes[varKey{reg, ctx}] = n
		res.regNodes[reg] = append(res.regNodes[reg], n)
	}

	nEdges := r.Len()
	for i := 0; i < nEdges; i++ {
		callID := r.Uvarint()
		callerID := r.Uvarint()
		nCallees := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		callees := make([]*MCtx, nCallees)
		for j := range callees {
			mc, err := mctx(r.Uvarint())
			if err != nil {
				return nil, firstErr(r.Err(), err)
			}
			callees[j] = mc
		}
		res.callEdges[callSiteKey{int(callID), int(callerID)}] = callees
	}

	nCIs := r.Len()
	for i := 0; i < nCIs; i++ {
		callID := r.Uvarint()
		nNames := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		call, ok := prog.InstrByID(int(callID)).(*ir.Call)
		if !ok {
			return nil, fmt.Errorf("pointsto: decode: instruction #%d is not a call", callID)
		}
		set := make(map[*ir.Method]bool, nNames)
		for j := 0; j < nNames; j++ {
			m, err := method(r.String())
			if err != nil {
				return nil, firstErr(r.Err(), err)
			}
			set[m] = true
		}
		res.calleesCI[call] = set
	}

	nReach := r.Len()
	for i := 0; i < nReach; i++ {
		m, err := method(r.String())
		if err != nil {
			return nil, firstErr(r.Err(), err)
		}
		res.reachableM[m] = true
	}

	if err := r.Finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// firstErr prefers the reader's error (the structural fault) over the
// resolution error derived from its zero-value output.
func firstErr(readerErr, resolveErr error) error {
	if readerErr != nil {
		return readerErr
	}
	return resolveErr
}
