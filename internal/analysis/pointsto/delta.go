package pointsto

import (
	"fmt"
	"sort"
	"strings"

	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// SolveDelta (PR 9) re-solves the pointer analysis after an edit by
// re-seeding the difference-propagation worklist instead of starting
// from an empty graph. The caller supplies the previous complete Result
// (solved with Config.RetainState), the newly lowered program, an
// ir.ProgramMap aligning the unchanged methods, and the depgraph view
// of the edit: removed lists old-world qualified names whose units are
// gone or changed, added lists new-world names that are new or changed
// (a changed unit appears in both).
//
// The algorithm runs in three acts over the retained constraint graph:
//
//  1. Dirtiness: a fixpoint marks every node, abstract object, and
//     field cell whose points-to content could differ in the new world,
//     seeded symmetrically from the old and new versions of the edited
//     bodies (stores, call cones by callee name, edited registers and
//     allocation sites) and closed under the solver's own propagation
//     rules (copy successors, filters, loads, stores at field-name
//     granularity, virtual dispatch). Interleaved with it, an
//     under-approximate reachability pass — rooted at the entries and
//     at calls whose target is certain, traversing only call sites
//     whose receiver is clean — retires contexts that may have become
//     unreachable: their heap contributions are marked dirty too.
//  2. Carry: clean ("inert") contexts and clean objects are replanted
//     into a fresh solver under their new-world identities with their
//     fixpoint points-to sets and empty frontiers, in the previous
//     result's canonical order. Inert bodies are never reprocessed; on
//     first reach only their call sites are replayed (reach's pending
//     hook) so call edges and argument/return flow regenerate.
//  3. Solve: the normal worklist drains the dirty frontier. finish()
//     canonicalizes IDs, so a delta result is byte-identical to a cold
//     solve of the new program — the equivalence suites assert this.
//
// Any precondition failure or internal inconsistency returns an error;
// the session then falls back to a full Analyze. Two runtime safety
// nets guard the dirtiness analysis itself: every carried context must
// be dynamically re-reached (pending must drain), and no carried node
// may end with a points-to set larger than it was carried with.
func SolveDelta(prev *Result, prog *ir.Program, pm *ir.ProgramMap, removed, added []string, cfg Config) (*Result, DeltaStats, error) {
	var stats DeltaStats
	ps := prev.solver
	if ps == nil {
		return nil, stats, fmt.Errorf("pointsto: delta: previous result has no retained solver state")
	}
	if prev.Truncated || prev.Downgraded || prev.LimitErr != nil {
		return nil, stats, fmt.Errorf("pointsto: delta: previous result is incomplete")
	}
	if cfg.Budget != nil {
		return nil, stats, fmt.Errorf("pointsto: delta: metered budgets are not supported")
	}
	if err := cfgCompatible(ps.cfg, cfg); err != nil {
		return nil, stats, err
	}

	d := &deltaState{prev: prev, ps: ps, prog: prog, pm: pm, cfg: cfg}
	if err := d.init(removed, added); err != nil {
		return nil, stats, err
	}
	d.seed()
	d.fixpoint()

	res, err := d.carryAndSolve(&stats)
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

// DeltaStats describes how much work a SolveDelta reused.
type DeltaStats struct {
	PrevCtxs       int // contexts in the previous result
	CarriedCtxs    int // contexts carried inert (bodies not reprocessed)
	PrevObjects    int
	CarriedObjects int
	DirtyNodes     int // constraint nodes invalidated by the edit
	PrevNodes      int
	// Inert holds the new-world contexts that were carried without
	// reprocessing: their per-register points-to sets are identical to
	// the previous solve. The SDG delta keys its per-context reuse off
	// this set.
	Inert map[*MCtx]bool
}

func cfgCompatible(old, new Config) error {
	depth := func(d int) int {
		if d == 0 {
			return 3
		}
		return d
	}
	containers := func(c Config) string {
		if !c.ObjSensContainers {
			return ""
		}
		s := append([]string(nil), c.ContainerClasses...)
		sort.Strings(s)
		return strings.Join(s, "\x00")
	}
	if old.ObjSensContainers != new.ObjSensContainers ||
		old.NoCycleElim != new.NoCycleElim ||
		depth(old.MaxCtxDepth) != depth(new.MaxCtxDepth) ||
		containers(old) != containers(new) {
		return fmt.Errorf("pointsto: delta: analysis configuration changed since the previous solve")
	}
	return nil
}

// bodyScan caches the per-method facts the dirtiness analysis needs.
type bodyScan struct {
	storedFields  []string // qualified names of ref-typed SetField targets
	storedStatics []string // qualified names of ref-typed SetStatic targets
	elemStore     bool     // has a ref-typed ArrayStore
	calls         []*ir.Call
}

// elemField is the dirtyField sentinel for array-element cells.
const elemField = "[]"

type deltaState struct {
	prev *Result
	ps   *solver
	prog *ir.Program
	pm   *ir.ProgramMap
	cfg  Config

	oldByQ     map[string]*ir.Method
	removedOld map[*ir.Method]bool     // old methods whose unit changed or vanished
	addedNew   map[*ir.Method]bool     // new methods whose unit changed or appeared
	siteMethod []*ir.Method            // old instruction ID -> old method
	byName     map[string][]*ir.Method // old methods by simple name (virtual cones)
	scans      map[*ir.Method]*bodyScan
	containers map[string]bool

	// Reverse view of the previous solver's field/static cells: when a
	// representative node is dirtied, every cell it stands for dirties
	// its field name too, so inertness (which reasons by stored names)
	// stays consistent with node-level dirt.
	fieldKeysByRep map[int32][]objFieldKey
	staticsByRep   map[int32][]*types.FieldInfo

	dirtyNode    []bool
	nodeQ        []int32
	dirtyObj     []bool
	dirtyObjBits bitset
	dirtyField   map[string]bool
	dirtyStatic  map[string]bool
	reached      map[*MCtx]bool
	purged       map[*MCtx]bool
	changed      bool
}

func (d *deltaState) init(removed, added []string) error {
	oldProg := d.prev.prog
	d.oldByQ = methodsByQName(oldProg)
	newByQ := methodsByQName(d.prog)
	d.removedOld = make(map[*ir.Method]bool, len(removed))
	for _, q := range removed {
		m := d.oldByQ[q]
		if m == nil {
			return fmt.Errorf("pointsto: delta: removed unit %s not in previous program", q)
		}
		d.removedOld[m] = true
	}
	d.addedNew = make(map[*ir.Method]bool, len(added))
	for _, q := range added {
		m := newByQ[q]
		if m == nil {
			return fmt.Errorf("pointsto: delta: added unit %s not in new program", q)
		}
		d.addedNew[m] = true
	}
	// Every method must be accounted for: unchanged (mapped) or edited.
	for _, m := range oldProg.Methods {
		if !d.removedOld[m] && d.pm.Method[m] == nil {
			return fmt.Errorf("pointsto: delta: old unit %s neither mapped nor removed", m.Name())
		}
	}
	mapped := make(map[*ir.Method]bool, len(d.pm.Method))
	for _, nm := range d.pm.Method { //determinism:ok — set build, order-free
		mapped[nm] = true
	}
	for _, m := range d.prog.Methods {
		if !d.addedNew[m] && !mapped[m] {
			return fmt.Errorf("pointsto: delta: new unit %s neither mapped nor added", m.Name())
		}
	}

	d.siteMethod = make([]*ir.Method, oldProg.NumInstrs)
	d.byName = make(map[string][]*ir.Method)
	for _, m := range oldProg.Methods {
		m := m
		m.Instrs(func(ins ir.Instr) { d.siteMethod[ins.ID()] = m })
		d.byName[m.Sig.Name] = append(d.byName[m.Sig.Name], m)
	}
	d.scans = make(map[*ir.Method]*bodyScan)
	d.containers = make(map[string]bool)
	if d.cfg.ObjSensContainers {
		for _, c := range d.cfg.ContainerClasses {
			d.containers[c] = true
		}
	}

	d.fieldKeysByRep = make(map[int32][]objFieldKey, len(d.ps.fieldNodes))
	for k, n := range d.ps.fieldNodes { //determinism:ok — feeds boolean dirt marks only
		id := d.ps.findID(n.id)
		d.fieldKeysByRep[id] = append(d.fieldKeysByRep[id], k)
	}
	d.staticsByRep = make(map[int32][]*types.FieldInfo, len(d.ps.staticNode))
	for f, n := range d.ps.staticNode { //determinism:ok — feeds boolean dirt marks only
		id := d.ps.findID(n.id)
		d.staticsByRep[id] = append(d.staticsByRep[id], f)
	}

	d.dirtyNode = make([]bool, len(d.ps.nodes))
	d.dirtyObj = make([]bool, len(d.prev.objects))
	d.dirtyField = make(map[string]bool)
	d.dirtyStatic = make(map[string]bool)
	d.purged = make(map[*MCtx]bool)
	return nil
}

func (d *deltaState) scan(m *ir.Method) *bodyScan {
	if sc := d.scans[m]; sc != nil {
		return sc
	}
	sc := &bodyScan{}
	m.Instrs(func(ins ir.Instr) {
		switch ins := ins.(type) {
		case *ir.SetField:
			if isRefType(ins.Val.Typ) {
				sc.storedFields = append(sc.storedFields, ins.Field.QualifiedName())
			}
		case *ir.SetStatic:
			if isRefType(ins.Val.Typ) {
				sc.storedStatics = append(sc.storedStatics, ins.Field.QualifiedName())
			}
		case *ir.ArrayStore:
			if isRefType(ins.Val.Typ) {
				sc.elemStore = true
			}
		case *ir.Call:
			sc.calls = append(sc.calls, ins)
		}
	})
	d.scans[m] = sc
	return sc
}

func (d *deltaState) markNode(n *node) {
	d.markNodeID(d.ps.findID(n.id))
}

func (d *deltaState) markNodeID(id int32) {
	if d.dirtyNode[id] {
		return
	}
	d.dirtyNode[id] = true
	d.changed = true
	d.nodeQ = append(d.nodeQ, id)
	// A dirty cell dirties its field name so inertness and carry
	// selection agree with node-level dirt.
	for _, k := range d.fieldKeysByRep[id] {
		if k.field == nil {
			d.addFieldDirt(elemField)
		} else {
			d.addFieldDirt(k.field.QualifiedName())
		}
	}
	for _, f := range d.staticsByRep[id] {
		d.addStaticDirt(f.QualifiedName())
	}
}

func (d *deltaState) addFieldDirt(q string) {
	if !d.dirtyField[q] {
		d.dirtyField[q] = true
		d.changed = true
	}
}

func (d *deltaState) addStaticDirt(q string) {
	if !d.dirtyStatic[q] {
		d.dirtyStatic[q] = true
		d.changed = true
	}
}

func (d *deltaState) markObj(o *Object) {
	if d.dirtyObj[o.ID] {
		return
	}
	d.dirtyObj[o.ID] = true
	d.dirtyObjBits.add(o.ID)
	d.changed = true
}

// markFormals dirties every parameter node of a previous context: its
// callers' argument flow may have changed.
func (d *deltaState) markFormals(mc *MCtx) {
	for _, p := range mc.Method.Params {
		if n, ok := d.ps.varNodes[varKey{p.Dst, mc.Ctx}]; ok {
			d.markNode(n)
		}
	}
}

// cone dirties the formals of every previous context a call site could
// have bound or could now bind: static and constructor calls name their
// target, virtual calls cover every method sharing the callee name.
func (d *deltaState) cone(call *ir.Call) {
	switch call.Mode {
	case ir.CallStatic, ir.CallCtor:
		if m := d.oldByQ[call.Callee.QualifiedName()]; m != nil {
			for _, mc := range d.prev.mctxsOf[m] {
				d.markFormals(mc)
			}
		}
	case ir.CallVirtual:
		for _, m := range d.byName[call.Callee.Name] {
			for _, mc := range d.prev.mctxsOf[m] {
				d.markFormals(mc)
			}
		}
	}
}

// seed plants the structural dirt of the edit, symmetrically over the
// old and new versions of the edited units: old-side registers and
// allocation sites, and both sides' stores and call cones (a removed
// store or call shrinks points-to sets just as an added one grows
// them).
func (d *deltaState) seed() {
	for _, m := range d.prev.prog.Methods {
		if !d.removedOld[m] {
			continue
		}
		for _, reg := range ir.MethodRegs(m) {
			for _, n := range d.prev.regNodes[reg] {
				d.markNode(n)
			}
		}
		d.seedScan(d.scan(m))
	}
	for _, o := range d.prev.objects {
		if d.removedOld[d.siteMethod[o.Site.ID()]] {
			d.markObj(o)
		}
	}
	for _, m := range d.prog.Methods {
		if d.addedNew[m] {
			d.seedScan(d.scan(m))
		}
	}
}

func (d *deltaState) seedScan(sc *bodyScan) {
	for _, q := range sc.storedFields {
		d.addFieldDirt(q)
	}
	for _, q := range sc.storedStatics {
		d.addStaticDirt(q)
	}
	if sc.elemStore {
		d.addFieldDirt(elemField)
	}
	for _, call := range sc.calls {
		d.cone(call)
	}
}

// fixpoint alternates dirt closure with reachability retirement until
// both stabilize. Dirt only grows and reach only shrinks, so the loop
// terminates.
func (d *deltaState) fixpoint() {
	for {
		d.changed = false
		d.markDirtyCells()
		d.markPolluted()
		d.drainNodes()
		d.reached = d.computeReach()
		d.purgeUnreached()
		d.applyObjectRules()
		if !d.changed {
			return
		}
	}
}

// markDirtyCells dirties field/static nodes whose name or owner object
// is dirty. Map iteration only marks, so order is immaterial.
func (d *deltaState) markDirtyCells() {
	for k, n := range d.ps.fieldNodes { //determinism:ok — marking fixpoint, order-free
		if d.dirtyNode[d.ps.findID(n.id)] {
			continue
		}
		dirty := d.dirtyObj[k.obj.ID]
		if k.field == nil {
			dirty = dirty || d.dirtyField[elemField]
		} else {
			dirty = dirty || d.dirtyField[k.field.QualifiedName()]
		}
		if dirty {
			d.markNode(n)
		}
	}
	for f, n := range d.ps.staticNode { //determinism:ok — marking fixpoint, order-free
		if d.dirtyStatic[f.QualifiedName()] && !d.dirtyNode[d.ps.findID(n.id)] {
			d.markNode(n)
		}
	}
}

// markPolluted dirties every node whose points-to set contains a dirty
// object: the object may no longer exist or may stand for different
// concrete state.
func (d *deltaState) markPolluted() {
	if d.dirtyObjBits.empty() {
		return
	}
	for _, n := range d.ps.nodes {
		if d.ps.parent[n.id] != n.id || d.dirtyNode[n.id] {
			continue
		}
		polluted := false
		for w, bits := range d.dirtyObjBits {
			if w < len(n.pts) && n.pts[w]&bits != 0 {
				polluted = true
				break
			}
		}
		if polluted {
			d.markNodeID(n.id)
		}
	}
}

// drainNodes closes node dirt under the solver's propagation rules.
func (d *deltaState) drainNodes() {
	for len(d.nodeQ) > 0 {
		id := d.nodeQ[len(d.nodeQ)-1]
		d.nodeQ = d.nodeQ[:len(d.nodeQ)-1]
		n := d.ps.nodes[id]
		for _, succ := range n.succs {
			d.markNode(succ)
		}
		for _, f := range n.filters {
			d.markNode(f.dst)
		}
		for _, lc := range n.loads {
			d.markNode(lc.dst)
		}
		for _, sc := range n.stores {
			if sc.field == nil {
				d.addFieldDirt(elemField)
			} else {
				d.addFieldDirt(sc.field.QualifiedName())
			}
		}
		for _, cc := range n.calls {
			// A dirty receiver may dispatch differently: the whole callee
			// name cone's argument flow and the call result are suspect.
			d.cone(cc.call)
			if dst := cc.call.Dst; dst != nil && isRefType(dst.Typ) {
				if dn, ok := d.ps.varNodes[varKey{dst, cc.caller.Ctx}]; ok {
					d.markNode(dn)
				}
			}
		}
	}
}

// computeReach under-approximates the new world's reachable previous
// contexts: it starts from the entries and from edited call sites whose
// target is certain, and follows a previous context's call edges only
// where the dispatch cannot have changed (static targets, or a receiver
// node that is clean). Everything it cannot prove reached is retired by
// purgeUnreached. The under-approximation is what makes carried objects
// safe: a carried (clean) object's allocating context is approx-reached,
// hence reached in the cold solve, hence the object exists there too.
func (d *deltaState) computeReach() map[*MCtx]bool {
	reached := make(map[*MCtx]bool)
	var queue []*MCtx
	tryReach := func(mc *MCtx) {
		if mc == nil || reached[mc] || d.pm.Method[mc.Method] == nil {
			return
		}
		reached[mc] = true
		queue = append(queue, mc)
	}
	rootQ := func(q string) {
		if om := d.oldByQ[q]; om != nil {
			tryReach(d.ps.mctxs[mctxKey{om, nil}])
		}
	}
	for _, m := range defaultEntries(d.prog, d.cfg) {
		rootQ(m.Sig.QualifiedName())
	}
	// Certain calls inside edited bodies also root the walk: a static
	// call always reaches its target, and a constructor call on a
	// non-container class always runs in the empty context.
	for _, m := range d.prog.Methods {
		if !d.addedNew[m] {
			continue
		}
		for _, call := range d.scan(m).calls {
			switch call.Mode {
			case ir.CallStatic:
				rootQ(call.Callee.QualifiedName())
			case ir.CallCtor:
				if !d.containers[call.Callee.Owner.Name] {
					rootQ(call.Callee.QualifiedName())
				}
			}
		}
	}
	for len(queue) > 0 {
		mc := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, call := range d.scan(mc.Method).calls {
			if call.Mode != ir.CallStatic {
				rn, ok := d.ps.varNodes[varKey{call.Recv, mc.Ctx}]
				if !ok || d.dirtyNode[d.ps.findID(rn.id)] {
					continue // dispatch may differ; callees handled by purge
				}
			}
			for _, callee := range d.prev.callEdges[callSiteKey{call.ID(), mc.ID}] {
				tryReach(callee)
			}
		}
	}
	return reached
}

// purgeUnreached retires contexts the walk could not prove reached:
// everything they contributed to shared state — stores by field name,
// statics, and the argument flow into their callees — is dirtied so the
// delta solve rebuilds it from the contexts that remain. Their
// allocations die through applyObjectRules.
func (d *deltaState) purgeUnreached() {
	for _, mc := range d.prev.mctxs {
		if d.reached[mc] || d.purged[mc] {
			continue
		}
		d.purged[mc] = true
		d.changed = true
		sc := d.scan(mc.Method)
		d.seedScanStores(sc)
		for _, call := range sc.calls {
			for _, callee := range d.prev.callEdges[callSiteKey{call.ID(), mc.ID}] {
				d.markFormals(callee)
				if dst := call.Dst; dst != nil && isRefType(dst.Typ) {
					if dn, ok := d.ps.varNodes[varKey{dst, mc.Ctx}]; ok {
						d.markNode(dn)
					}
				}
			}
		}
	}
}

func (d *deltaState) seedScanStores(sc *bodyScan) {
	for _, q := range sc.storedFields {
		d.addFieldDirt(q)
	}
	for _, q := range sc.storedStatics {
		d.addStaticDirt(q)
	}
	if sc.elemStore {
		d.addFieldDirt(elemField)
	}
}

// applyObjectRules dirties objects whose identity or existence is
// suspect: allocation site in an edited body, dirty heap context, or no
// provably-reached context that would allocate them.
func (d *deltaState) applyObjectRules() {
	for _, o := range d.prev.objects {
		if d.dirtyObj[o.ID] {
			continue
		}
		if o.Ctx != nil && d.dirtyObj[o.Ctx.ID] {
			d.markObj(o)
			continue
		}
		if !d.objAlive(o) {
			d.markObj(o)
		}
	}
}

// objAlive reports whether some approx-reached context of the site's
// method allocates under exactly o's heap context. Contexts deeper than
// the cloning cap truncate to the context-free object, so any deep
// reached context keeps a ctx-free object alive too.
func (d *deltaState) objAlive(o *Object) bool {
	m := d.siteMethod[o.Site.ID()]
	for _, mc := range d.prev.mctxsOf[m] {
		if !d.reached[mc] {
			continue
		}
		if mc.Ctx == o.Ctx {
			return true
		}
		if o.Ctx == nil && mc.Ctx != nil && mc.Ctx.depth+1 > d.ps.maxDepth {
			return true
		}
	}
	return false
}

// inertOld returns the previous contexts that can be carried without
// reprocessing, in canonical (res.mctxs) order: method unchanged,
// provably reached, clean receiver context, no store into a dirty field
// name, and every register node clean.
func (d *deltaState) inertOld() []*MCtx {
	var out []*MCtx
	for _, mc := range d.prev.mctxs {
		if d.pm.Method[mc.Method] == nil || !d.reached[mc] {
			continue
		}
		if mc.Ctx != nil && d.dirtyObj[mc.Ctx.ID] {
			continue
		}
		if d.storesDirty(d.scan(mc.Method)) {
			continue
		}
		clean := true
		for _, reg := range ir.MethodRegs(mc.Method) {
			if n, ok := d.ps.varNodes[varKey{reg, mc.Ctx}]; ok {
				if d.dirtyNode[d.ps.findID(n.id)] {
					clean = false
					break
				}
			}
		}
		if clean {
			out = append(out, mc)
		}
	}
	return out
}

func (d *deltaState) storesDirty(sc *bodyScan) bool {
	for _, q := range sc.storedFields {
		if d.dirtyField[q] {
			return true
		}
	}
	for _, q := range sc.storedStatics {
		if d.dirtyStatic[q] {
			return true
		}
	}
	return sc.elemStore && d.dirtyField[elemField]
}

// convType rebuilds an old-world type in the new world's class table.
func convType(t types.Type, classes map[string]*types.ClassInfo) (types.Type, error) {
	switch t := t.(type) {
	case *types.Class:
		ci := classes[t.Info.Name]
		if ci == nil {
			return nil, fmt.Errorf("pointsto: delta: class %s vanished", t.Info.Name)
		}
		return types.ClassType(ci), nil
	case *types.Array:
		e, err := convType(t.Elem, classes)
		if err != nil {
			return nil, err
		}
		return &types.Array{Elem: e}, nil
	default:
		return t, nil // value types are shared singletons
	}
}

// carryCheck records a carried node's expected final cardinality: an
// inert node must end the delta solve with exactly the points-to set it
// was carried with, or the dirtiness analysis missed something and the
// result cannot be trusted.
type carryCheck struct {
	n    *node
	want int
}

func (d *deltaState) carryAndSolve(stats *DeltaStats) (*Result, error) {
	stats.PrevCtxs = len(d.prev.mctxs)
	stats.PrevObjects = len(d.prev.objects)
	stats.PrevNodes = len(d.ps.nodes)
	for _, dirty := range d.dirtyNode {
		if dirty {
			stats.DirtyNodes++
		}
	}

	s := newSolver(d.prog, d.cfg)
	s.res.entries = defaultEntries(d.prog, d.cfg)
	newClasses := d.prog.Info.Classes
	fieldBy := make(map[string]*types.FieldInfo)
	for _, ci := range newClasses { //determinism:ok map rebuild, per-key independent
		for _, f := range ci.Fields {
			fieldBy[f.QualifiedName()] = f
		}
	}

	// Carried objects, in previous canonical order (heap contexts are
	// themselves clean objects and are created first, recursively).
	objMap := make([]*Object, len(d.prev.objects))
	var carryObj func(po *Object) error
	carryObj = func(po *Object) error {
		if objMap[po.ID] != nil {
			return nil
		}
		var ctx *Object
		if po.Ctx != nil {
			if d.dirtyObj[po.Ctx.ID] {
				return fmt.Errorf("pointsto: delta: clean object o%d has dirty context", po.ID)
			}
			if err := carryObj(po.Ctx); err != nil {
				return err
			}
			ctx = objMap[po.Ctx.ID]
		}
		site := d.pm.Instr[po.Site.ID()]
		if site == nil {
			return fmt.Errorf("pointsto: delta: clean object o%d allocated in an edited unit", po.ID)
		}
		var class *types.ClassInfo
		if po.Class != nil {
			class = newClasses[po.Class.Name]
			if class == nil {
				return fmt.Errorf("pointsto: delta: class %s vanished", po.Class.Name)
			}
		}
		var elem types.Type
		if po.Elem != nil {
			var err error
			if elem, err = convType(po.Elem, newClasses); err != nil {
				return err
			}
		}
		o := &Object{ID: len(s.res.objects), Site: site, Ctx: ctx, Class: class, Elem: elem, depth: po.depth}
		s.objects[objKey{site, ctx}] = o
		s.res.objects = append(s.res.objects, o)
		objMap[po.ID] = o
		return nil
	}
	for _, po := range d.prev.objects {
		if !d.dirtyObj[po.ID] {
			if err := carryObj(po); err != nil {
				return nil, err
			}
		}
	}
	stats.CarriedObjects = len(s.res.objects)

	remap := func(b bitset) (bitset, error) {
		var out bitset
		var bad error
		b.forEach(func(id int) {
			if objMap[id] == nil {
				bad = fmt.Errorf("pointsto: delta: clean node holds dirty object o%d", id)
				return
			}
			out.add(objMap[id].ID)
		})
		return out, bad
	}

	var checks []carryCheck
	carryNode := func(b bitset) (*node, error) {
		pts, err := remap(b)
		if err != nil {
			return nil, err
		}
		n := s.newNode()
		n.pts = pts
		checks = append(checks, carryCheck{n, pts.count()})
		return n, nil
	}

	// Carried contexts and their register nodes, in canonical order.
	inert := d.inertOld()
	s.pending = make(map[*MCtx]bool, len(inert))
	stats.Inert = make(map[*MCtx]bool, len(inert))
	for _, mc := range inert {
		newM := d.pm.Method[mc.Method]
		var ctx *Object
		if mc.Ctx != nil {
			ctx = objMap[mc.Ctx.ID]
		}
		nmc, fresh := s.mctx(newM, ctx)
		if !fresh {
			return nil, fmt.Errorf("pointsto: delta: carried context %s created twice", mc)
		}
		s.pending[nmc] = true
		stats.Inert[nmc] = true
		for _, reg := range ir.MethodRegs(mc.Method) {
			pn, ok := d.ps.varNodes[varKey{reg, mc.Ctx}]
			if !ok {
				continue
			}
			nn, err := carryNode(d.ps.find(pn).pts)
			if err != nil {
				return nil, err
			}
			newReg := d.pm.Reg[reg]
			if newReg == nil {
				return nil, fmt.Errorf("pointsto: delta: unmapped register in %s", mc.Method.Name())
			}
			s.varNodes[varKey{newReg, ctx}] = nn
			s.res.regNodes[newReg] = append(s.res.regNodes[newReg], nn)
		}
	}
	stats.CarriedCtxs = len(inert)

	// Carried field cells: clean object × clean field name, enumerated
	// deterministically (previous object order, then field name).
	type fieldCand struct {
		key   objFieldKey
		qname string
	}
	var cands []fieldCand
	for k, n := range d.ps.fieldNodes { //determinism:ok — sorted below
		if d.dirtyObj[k.obj.ID] || d.dirtyNode[d.ps.findID(n.id)] {
			continue
		}
		q := elemField
		if k.field != nil {
			q = k.field.QualifiedName()
		}
		if d.dirtyField[q] {
			continue
		}
		cands = append(cands, fieldCand{k, q})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key.obj.ID != cands[j].key.obj.ID {
			return cands[i].key.obj.ID < cands[j].key.obj.ID
		}
		return cands[i].qname < cands[j].qname
	})
	for _, c := range cands {
		var nf *types.FieldInfo
		if c.key.field != nil {
			if nf = fieldBy[c.qname]; nf == nil {
				return nil, fmt.Errorf("pointsto: delta: field %s vanished", c.qname)
			}
		}
		nn, err := carryNode(d.ps.find(d.ps.fieldNodes[c.key]).pts)
		if err != nil {
			return nil, err
		}
		s.fieldNodes[objFieldKey{objMap[c.key.obj.ID], nf}] = nn
	}

	// Carried statics, by field name.
	var statQ []string
	statOld := make(map[string]*node, len(d.ps.staticNode))
	for f, n := range d.ps.staticNode { //determinism:ok — sorted below
		q := f.QualifiedName()
		if d.dirtyStatic[q] {
			continue
		}
		statQ = append(statQ, q)
		statOld[q] = n
	}
	sort.Strings(statQ)
	for _, q := range statQ {
		nf := fieldBy[q]
		if nf == nil {
			return nil, fmt.Errorf("pointsto: delta: static field %s vanished", q)
		}
		nn, err := carryNode(d.ps.find(statOld[q]).pts)
		if err != nil {
			return nil, err
		}
		s.staticNode[nf] = nn
	}

	// Solve: entries re-reach the graph; carried contexts replay only
	// their call sites, everything else processes normally from the
	// carried state.
	for _, m := range s.res.entries {
		s.reach(m, nil)
	}
	s.solve()
	if s.stop != nil {
		return nil, fmt.Errorf("pointsto: delta: unexpected stop: %v", s.stop)
	}
	if len(s.pending) > 0 {
		return nil, fmt.Errorf("pointsto: delta: %d carried contexts never re-reached", len(s.pending))
	}
	for _, chk := range checks {
		if s.find(chk.n).pts.count() != chk.want {
			return nil, fmt.Errorf("pointsto: delta: carried node points-to set changed during solve")
		}
	}
	return s.finish(), nil
}
