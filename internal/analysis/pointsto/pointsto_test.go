package pointsto_test

import (
	"testing"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
)

func analyze(t *testing.T, src string, objSens bool) (*ir.Program, *pointsto.Result) {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	res, err := pointsto.Analyze(prog, pointsto.Config{
		ObjSensContainers: objSens,
		ContainerClasses:  prelude.ContainerClasses,
	})
	if err != nil {
		t.Fatalf("pointsto: %v", err)
	}
	return prog, res
}

func method(t *testing.T, prog *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s not found", name)
	return nil
}

// printArgs returns the points-to sets of all print arguments in m, in
// order of appearance.
func printArgs(res *pointsto.Result, m *ir.Method) [][]*pointsto.Object {
	var out [][]*pointsto.Object
	m.Instrs(func(ins ir.Instr) {
		if p, ok := ins.(*ir.Print); ok {
			out = append(out, res.PointsTo(p.Val))
		}
	})
	return out
}

func allocClasses(objs []*pointsto.Object) map[string]int {
	m := map[string]int{}
	for _, o := range objs {
		if o.Class != nil {
			m[o.Class.Name]++
		} else {
			m["<array>"]++
		}
	}
	return m
}

func TestAllocFlowsToVar(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Main { static void main() { P p = new P(); print(p); } }
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if len(args) != 1 || len(args[0]) != 1 || args[0][0].Class.Name != "P" {
		t.Fatalf("got %v", args)
	}
}

func TestCopyAndPhiFlow(t *testing.T) {
	prog, res := analyze(t, `
		class P { } class Q extends P { }
		class Main {
			static void main() {
				P p = null;
				if (inputInt() > 0) { p = new P(); } else { p = new Q(); }
				print(p);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	classes := allocClasses(args[0])
	if classes["P"] != 1 || classes["Q"] != 1 {
		t.Fatalf("phi should merge both allocs: %v", classes)
	}
}

func TestFieldSensitivity(t *testing.T) {
	prog, res := analyze(t, `
		class Box { Object v; Box() { } }
		class A { } class B { }
		class Main {
			static void main() {
				Box b1 = new Box();
				Box b2 = new Box();
				b1.v = new A();
				b2.v = new B();
				print(b1.v);
				print(b2.v);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["A"] != 1 || c["B"] != 0 {
		t.Errorf("b1.v: %v", c)
	}
	if c := allocClasses(args[1]); c["B"] != 1 || c["A"] != 0 {
		t.Errorf("b2.v: %v", c)
	}
}

func TestFieldMergingWhenAliased(t *testing.T) {
	prog, res := analyze(t, `
		class Box { Object v; Box() { } }
		class A { } class B { }
		class Main {
			static void main() {
				Box b1 = new Box();
				Box b2 = b1;
				b1.v = new A();
				b2.v = new B();
				print(b1.v);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	c := allocClasses(args[0])
	if c["A"] != 1 || c["B"] != 1 {
		t.Fatalf("aliased boxes must merge: %v", c)
	}
}

func TestParamAndReturnFlow(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Util { static Object id(Object x) { return x; } }
		class Main {
			static void main() {
				Object o = Util.id(new P());
				print(o);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["P"] != 1 {
		t.Fatalf("return flow lost: %v", c)
	}
}

func TestVirtualDispatch(t *testing.T) {
	prog, res := analyze(t, `
		class Shape { int area() { return 0; } }
		class Circle extends Shape { int area() { return 3; } }
		class Square extends Shape { int area() { return 4; } }
		class Main {
			static void main() {
				Shape s = null;
				if (inputInt() > 0) { s = new Circle(); } else { s = new Square(); }
				int a = s.area();
				print(a);
			}
		}
	`, false)
	m := method(t, prog, "Main.main")
	var call *ir.Call
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallVirtual {
			call = c
		}
	})
	if call == nil {
		t.Fatal("virtual call not found")
	}
	callees := res.Callees(call)
	names := map[string]bool{}
	for _, c := range callees {
		names[c.Name()] = true
	}
	if !names["Circle.area"] || !names["Square.area"] || names["Shape.area"] {
		t.Fatalf("dispatch targets wrong: %v", names)
	}
}

func TestOnTheFlyReachability(t *testing.T) {
	prog, res := analyze(t, `
		class Used { void m() { } }
		class Unused { void dead() { } }
		class Main {
			static void main() {
				Used u = new Used();
				u.m();
			}
		}
	`, false)
	if !res.Reachable(method(t, prog, "Used.m")) {
		t.Error("Used.m should be reachable")
	}
	if res.Reachable(method(t, prog, "Unused.dead")) {
		t.Error("Unused.dead should not be reachable")
	}
	// No receiver object of type Unused exists, so a virtual call on a
	// null-valued variable reaches nothing.
}

func TestDispatchRequiresReceiverObject(t *testing.T) {
	prog, res := analyze(t, `
		class A { void m() { print(1); } }
		class Main {
			static void main() {
				A a = null;
				a.m();
			}
		}
	`, false)
	if res.Reachable(method(t, prog, "A.m")) {
		t.Error("A.m unreachable: no A object is ever allocated")
	}
}

func TestCastFilter(t *testing.T) {
	prog, res := analyze(t, `
		class A { } class B extends A { } class C extends A { }
		class Main {
			static void main() {
				A a = null;
				if (inputInt() > 0) { a = new B(); } else { a = new C(); }
				B b = (B) a;
				print(b);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	c := allocClasses(args[0])
	if c["B"] != 1 || c["C"] != 0 {
		t.Fatalf("cast must filter C out: %v", c)
	}
}

func TestCastCheckable(t *testing.T) {
	prog, res := analyze(t, `
		class A { } class B extends A { }
		class Main {
			static void main() {
				A ok = new B();
				B b1 = (B) ok;
				A bad = null;
				if (inputInt() > 0) { bad = new A(); } else { bad = new B(); }
				B b2 = (B) bad;
				print(b1);
				print(b2);
			}
		}
	`, false)
	m := method(t, prog, "Main.main")
	var casts []*ir.Cast
	m.Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Cast); ok {
			casts = append(casts, c)
		}
	})
	if len(casts) != 2 {
		t.Fatalf("got %d casts", len(casts))
	}
	if ok, _ := res.CastCheckable(casts[0]); !ok {
		t.Error("cast of B-only value should verify")
	}
	if ok, nonEmpty := res.CastCheckable(casts[1]); ok || !nonEmpty {
		t.Error("cast of {A,B} value to B must not verify")
	}
}

func TestStaticFieldFlow(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class G { static Object cell; }
		class Main {
			static void main() {
				G.cell = new P();
				print(G.cell);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["P"] != 1 {
		t.Fatalf("static field flow lost: %v", c)
	}
}

func TestArrayElementFlow(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Main {
			static void main() {
				Object[] arr = new Object[4];
				arr[0] = new P();
				print(arr[1]);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["P"] != 1 {
		t.Fatalf("array element flow lost: %v", c)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Main {
			static void main() {
				Vector v = new Vector();
				v.add(new P());
				print(v.get(0));
			}
		}
	`, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["P"] != 1 {
		t.Fatalf("vector round trip lost value: %v", c)
	}
}

// The headline precision test: with object-sensitive containers, values
// stored in one Vector do not leak into reads from another; without,
// they merge. This is exactly the paper's ObjSens/NoObjSens contrast.
func TestObjectSensitivitySeparatesVectors(t *testing.T) {
	src := `
		class A { } class B { }
		class Main {
			static void main() {
				Vector v1 = new Vector();
				Vector v2 = new Vector();
				v1.add(new A());
				v2.add(new B());
				print(v1.get(0));
				print(v2.get(0));
			}
		}
	`
	prog, res := analyze(t, src, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["A"] != 1 || c["B"] != 0 {
		t.Errorf("objsens v1.get: %v", c)
	}
	if c := allocClasses(args[1]); c["B"] != 1 || c["A"] != 0 {
		t.Errorf("objsens v2.get: %v", c)
	}

	progNo, resNo := analyze(t, src, false)
	argsNo := printArgs(resNo, method(t, progNo, "Main.main"))
	if c := allocClasses(argsNo[0]); c["A"] != 1 || c["B"] != 1 {
		t.Errorf("noobjsens must merge vectors: %v", c)
	}
}

func TestObjectSensitivitySeparatesHashMaps(t *testing.T) {
	prog, res := analyze(t, `
		class A { } class B { }
		class Main {
			static void main() {
				HashMap m1 = new HashMap();
				HashMap m2 = new HashMap();
				m1.put("k", new A());
				m2.put("k", new B());
				print(m1.get("k"));
			}
		}
	`, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	c := allocClasses(args[0])
	if c["A"] != 1 || c["B"] != 0 {
		t.Fatalf("objsens m1.get: %v", c)
	}
}

func TestIteratorIsContextSensitive(t *testing.T) {
	prog, res := analyze(t, `
		class A { } class B { }
		class Main {
			static void main() {
				Vector v1 = new Vector();
				Vector v2 = new Vector();
				v1.add(new A());
				v2.add(new B());
				Iterator it = v1.iterator();
				print(it.next());
			}
		}
	`, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	c := allocClasses(args[0])
	if c["A"] != 1 || c["B"] != 0 {
		t.Fatalf("iterator over v1 leaked v2 contents: %v", c)
	}
}

func TestCGNodesExceedMethodsWithCloning(t *testing.T) {
	src := `
		class Main {
			static void main() {
				Vector v1 = new Vector();
				Vector v2 = new Vector();
				v1.add("a");
				v2.add("b");
			}
		}
	`
	_, res := analyze(t, src, true)
	_, resNo := analyze(t, src, false)
	if res.NumCGNodes() <= resNo.NumCGNodes() {
		t.Errorf("cloning should add CG nodes: objsens=%d noobjsens=%d",
			res.NumCGNodes(), resNo.NumCGNodes())
	}
}

func TestMayAlias(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Main {
			static void main() {
				P p = new P();
				P q = p;
				P r = new P();
				print(p); print(q); print(r);
			}
		}
	`, false)
	m := method(t, prog, "Main.main")
	var prints []*ir.Print
	m.Instrs(func(ins ir.Instr) {
		if p, ok := ins.(*ir.Print); ok {
			prints = append(prints, p)
		}
	})
	if !res.MayAlias(prints[0].Val, prints[1].Val) {
		t.Error("p and q must alias")
	}
	if res.MayAlias(prints[0].Val, prints[2].Val) {
		t.Error("p and r must not alias")
	}
}

func TestLinkedListFlow(t *testing.T) {
	prog, res := analyze(t, `
		class P { }
		class Main {
			static void main() {
				LinkedList l = new LinkedList();
				l.add(new P());
				print(l.get(0));
				print(l.first());
			}
		}
	`, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	for i, a := range args {
		if c := allocClasses(a); c["P"] != 1 {
			t.Errorf("list read %d lost value: %v", i, c)
		}
	}
}

func TestStringsAreObjects(t *testing.T) {
	prog, res := analyze(t, `
		class Main {
			static void main() {
				Vector v = new Vector();
				string s = input();
				string first = s.substring(0, 3);
				v.add(first);
				print(v.get(0));
			}
		}
	`, true)
	args := printArgs(res, method(t, prog, "Main.main"))
	c := allocClasses(args[0])
	if c["String"] != 1 {
		t.Fatalf("string object lost through vector: %v", c)
	}
}

func TestEntriesDefaultToMain(t *testing.T) {
	_, res := analyze(t, `
		class Main { static void main() { print(1); } }
		class Other { static void main2() { print(2); } }
	`, false)
	if len(res.Entries()) != 1 || res.Entries()[0].Name() != "Main.main" {
		t.Fatalf("entries: %v", res.Entries())
	}
}

func TestDeterministicObjectIDs(t *testing.T) {
	src := `
		class P { } class Q { }
		class Main {
			static void main() {
				Vector v = new Vector();
				v.add(new P());
				v.add(new Q());
				print(v.get(0));
			}
		}
	`
	_, res1 := analyze(t, src, true)
	_, res2 := analyze(t, src, true)
	if len(res1.Objects()) != len(res2.Objects()) {
		t.Fatalf("object counts differ: %d vs %d", len(res1.Objects()), len(res2.Objects()))
	}
	if res1.NumCGNodes() != res2.NumCGNodes() {
		t.Fatalf("CG node counts differ")
	}
}

func TestInheritedFieldThroughSubclass(t *testing.T) {
	prog, res := analyze(t, `
		class Base { Object slot; Base() { } }
		class Derived extends Base { Derived() { } }
		class P { }
		class Main {
			static void main() {
				Derived d = new Derived();
				d.slot = new P();
				print(d.slot);
			}
		}
	`, false)
	args := printArgs(res, method(t, prog, "Main.main"))
	if c := allocClasses(args[0]); c["P"] != 1 {
		t.Fatalf("inherited field flow lost: %v", c)
	}
}
