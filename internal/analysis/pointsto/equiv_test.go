package pointsto_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
)

// The cycle-eliminating difference-propagation solver must be
// observationally identical to the reference solver (NoCycleElim):
// same points-to sets, same call graph, under both the
// object-sensitive and context-insensitive configurations. Objects and
// contexts are compared by canonical descriptors (allocation-site
// instruction IDs plus the heap-context chain), since internal IDs may
// be assigned in a different order by the two solvers.

// objDesc canonically names an abstract object by its allocation site
// and heap-context chain.
func objDesc(o *pointsto.Object) string {
	if o == nil {
		return "-"
	}
	return fmt.Sprintf("%d[%s]", o.Site.ID(), objDesc(o.Ctx))
}

// ctxDesc canonically names a method context.
func ctxDesc(mc *pointsto.MCtx) string {
	return mc.Method.Name() + "/" + objDesc(mc.Ctx)
}

func sortedSet(xs []string) string {
	sort.Strings(xs)
	return strings.Join(xs, ",")
}

// summary flattens the observable analysis output into canonical maps:
// per-register context-insensitive points-to sets, per-register
// per-context sets, the call-edge relation, and the context set.
type summary struct {
	ptsCI   map[string]string // reg key -> sorted object descriptors
	ptsCtx  map[string]string // reg key + caller ctx -> sorted object descriptors
	callees map[string]string // call ID + caller ctx -> sorted callee ctx descriptors
	mctxs   string            // sorted context descriptors
}

// regKey names a register by its defining instruction (or parameter
// position), which is stable across solver runs on a shared program.
func regKey(m *ir.Method, idx int, r *ir.Reg) string {
	return fmt.Sprintf("%s#%d#%s", m.Name(), idx, r)
}

func summarize(prog *ir.Program, res *pointsto.Result) *summary {
	s := &summary{
		ptsCI:   make(map[string]string),
		ptsCtx:  make(map[string]string),
		callees: make(map[string]string),
	}
	var ctxs []string
	for _, mc := range res.MCtxs() {
		ctxs = append(ctxs, ctxDesc(mc))
	}
	s.mctxs = sortedSet(ctxs)
	for _, m := range prog.Methods {
		mcs := res.MCtxsOf(m)
		idx := 0
		m.Instrs(func(ins ir.Instr) {
			idx++
			if def := ins.Def(); def != nil {
				key := regKey(m, idx, def)
				var ci []string
				for _, o := range res.PointsTo(def) {
					ci = append(ci, objDesc(o))
				}
				s.ptsCI[key] = sortedSet(ci)
				for _, mc := range mcs {
					var inCtx []string
					for _, o := range res.PointsToIn(def, mc) {
						inCtx = append(inCtx, objDesc(o))
					}
					s.ptsCtx[key+"@"+ctxDesc(mc)] = sortedSet(inCtx)
				}
			}
			if call, ok := ins.(*ir.Call); ok {
				for _, mc := range mcs {
					var tgts []string
					for _, callee := range res.CalleesAt(call, mc) {
						tgts = append(tgts, ctxDesc(callee))
					}
					s.callees[fmt.Sprintf("%d@%s", call.ID(), ctxDesc(mc))] = sortedSet(tgts)
				}
			}
		})
	}
	return s
}

func diffSummaries(t *testing.T, label string, want, got *summary) {
	t.Helper()
	if want.mctxs != got.mctxs {
		t.Errorf("%s: context sets differ:\nref: %s\ngot: %s", label, want.mctxs, got.mctxs)
	}
	for _, pair := range []struct {
		name      string
		ref, test map[string]string
	}{
		{"pointsTo(CI)", want.ptsCI, got.ptsCI},
		{"pointsToIn", want.ptsCtx, got.ptsCtx},
		{"calleesAt", want.callees, got.callees},
	} {
		for k, v := range pair.ref {
			if gv, ok := pair.test[k]; !ok || gv != v {
				t.Errorf("%s: %s[%s]:\nref: %s\ngot: %s", label, pair.name, k, v, gv)
				return // one divergence is enough to fail the program
			}
		}
		if len(pair.ref) != len(pair.test) {
			t.Errorf("%s: %s has %d entries in reference, %d with cycle elimination",
				label, pair.name, len(pair.ref), len(pair.test))
		}
	}
}

func loadProg(t *testing.T, srcs map[string]string) *ir.Program {
	t.Helper()
	info, err := loader.Load(srcs)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	if len(prog.Diags) > 0 {
		t.Fatalf("lowering diagnostics: %v", prog.Diags)
	}
	return prog
}

// checkEquiv compares the cycle-eliminating solver (swept after every
// new copy edge — the most aggressive collapsing possible, far beyond
// the production threshold) against the reference solver, and returns
// how many nodes were collapsed so callers can assert the sweep is not
// vacuous across a corpus.
func checkEquiv(t *testing.T, label string, prog *ir.Program, objSens bool) int {
	t.Helper()
	cfg := pointsto.Config{
		ObjSensContainers: objSens,
		ContainerClasses:  prelude.ContainerClasses,
	}
	refCfg := cfg
	refCfg.NoCycleElim = true
	ref, err := pointsto.Analyze(prog, refCfg)
	if err != nil {
		t.Fatalf("%s: reference solver: %v", label, err)
	}
	restore := pointsto.SetSweepEveryForTest(1)
	res, err := pointsto.Analyze(prog, cfg)
	restore()
	if err != nil {
		t.Fatalf("%s: cycle-elim solver: %v", label, err)
	}
	diffSummaries(t, label, summarize(prog, ref), summarize(prog, res))
	return res.Collapsed
}

func TestCycleElimEquivalencePapercases(t *testing.T) {
	cases := map[string]map[string]string{
		"firstnames": {papercases.FirstNamesFile: papercases.FirstNames},
		"toy":        {papercases.ToyFile: papercases.Toy},
		"filebug":    {papercases.FileBugFile: papercases.FileBug},
		"toughcast":  {papercases.ToughCastFile: papercases.ToughCast},
	}
	for name, srcs := range cases {
		t.Run(name, func(t *testing.T) {
			prog := loadProg(t, srcs)
			checkEquiv(t, name+"/objsens", prog, true)
			checkEquiv(t, name+"/ci", prog, false)
		})
	}
}

func TestCycleElimEquivalenceRandprog(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 20
	}
	collapsed := 0
	for seed := 0; seed < n; seed++ {
		prog := loadProg(t, randprog.Generate(int64(seed), randprog.DefaultConfig))
		collapsed += checkEquiv(t, fmt.Sprintf("seed%d/objsens", seed), prog, true)
		collapsed += checkEquiv(t, fmt.Sprintf("seed%d/ci", seed), prog, false)
		if t.Failed() {
			return
		}
	}
	// Non-vacuity: the corpus must actually drive the collapse path, or
	// the equivalence above proves nothing about cycle elimination.
	if collapsed == 0 {
		t.Fatalf("no SCC was collapsed across %d programs; the equivalence sweep is vacuous", n)
	}
}

// subsetOf asserts every entry of got is contained in the
// corresponding full-run entry: a budget-stopped solve is a monotone
// under-approximation of the fixpoint (points-to sets only grow).
func subsetOf(t *testing.T, label string, partial, full *summary) {
	t.Helper()
	check := func(name string, p, f map[string]string) {
		for k, v := range p {
			if v == "" {
				continue
			}
			fullSet := make(map[string]bool)
			for _, x := range strings.Split(f[k], ",") {
				fullSet[x] = true
			}
			for _, x := range strings.Split(v, ",") {
				if !fullSet[x] {
					t.Errorf("%s: %s[%s]: partial result has %s not in full fixpoint %q", label, name, k, x, f[k])
					return
				}
			}
		}
	}
	check("pointsTo(CI)", partial.ptsCI, full.ptsCI)
	check("calleesAt", partial.callees, full.callees)
}

// TestCycleElimBudgetPaths drives the cycle-eliminating solver through
// the degradation ladder: step caps that exhaust mid-solve must yield
// Downgraded/Truncated results (never an error, never a panic) whose
// points-to sets are subsets of the corresponding full fixpoint.
func TestCycleElimBudgetPaths(t *testing.T) {
	defer pointsto.SetSweepEveryForTest(1)()
	prog := loadProg(t, map[string]string{papercases.FirstNamesFile: papercases.FirstNames})
	fullCI, err := pointsto.Analyze(prog, pointsto.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullCISum := summarize(prog, fullCI)
	for _, steps := range []int64{1, 10, 100, 1000, 5000} {
		for _, objSens := range []bool{true, false} {
			label := fmt.Sprintf("steps=%d objsens=%v", steps, objSens)
			res, err := pointsto.Analyze(prog, pointsto.Config{
				ObjSensContainers: objSens,
				ContainerClasses:  prelude.ContainerClasses,
				Budget:            budget.New(nil, budget.WithSteps(steps)),
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !res.Truncated && !res.Downgraded {
				// Generous caps may finish; nothing to assert then.
				continue
			}
			if res.Truncated && res.LimitErr == nil {
				t.Errorf("%s: truncated result missing LimitErr", label)
			}
			// A downgraded or truncated-CI run under-approximates the
			// CI fixpoint. (A truncated obj-sens run without downgrade
			// cannot occur: exhaustion always triggers the CI restart.)
			if objSens && !res.Downgraded {
				t.Errorf("%s: exhausted obj-sens run did not downgrade", label)
				continue
			}
			subsetOf(t, label, summarize(prog, res), fullCISum)
		}
	}
}
