// Package pointsto implements a subset-based (Andersen-style) pointer
// analysis with on-the-fly call graph construction for the IR, in the
// style the thin slicing paper builds on (Andersen [4] with on-the-fly
// call graph [23] and object-sensitive cloning for key collections
// classes [16], paper §6.1).
//
// The analysis is field-sensitive (one points-to cell per abstract
// object and field) and optionally object-sensitive for a configured
// set of container classes: methods of those classes are analyzed once
// per abstract receiver object, and allocation sites inside them are
// cloned per context. This is the precision lever behind the paper's
// ThinNoObjSens/TradNoObjSens ablation columns.
package pointsto

import (
	"fmt"
	"math/bits"
	"sort"

	"thinslice/internal/budget"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// Object is an abstract heap object: an allocation site plus a heap
// context (the receiver object of the container method that allocated
// it, or nil).
type Object struct {
	ID    int
	Site  ir.Instr // New, NewArray, ConstStr, StrOp, or Input
	Ctx   *Object  // heap context; nil for context-insensitive sites
	Class *types.ClassInfo
	// Elem is non-nil for array objects and holds the element type.
	Elem  types.Type
	depth int
}

// IsArray reports whether o is an array object.
func (o *Object) IsArray() bool { return o.Elem != nil }

func (o *Object) String() string {
	name := "?"
	if o.Class != nil {
		name = o.Class.Name
	} else if o.Elem != nil {
		name = o.Elem.String() + "[]"
	}
	s := fmt.Sprintf("o%d<%s@%s>", o.ID, name, o.Site.Pos())
	if o.Ctx != nil {
		s += fmt.Sprintf("[ctx o%d]", o.Ctx.ID)
	}
	return s
}

// MCtx is a method analyzed under a context (a call-graph node).
type MCtx struct {
	ID     int
	Method *ir.Method
	Ctx    *Object // receiver object for container methods; nil otherwise
}

func (mc *MCtx) String() string {
	if mc.Ctx == nil {
		return mc.Method.Name()
	}
	return fmt.Sprintf("%s[o%d]", mc.Method.Name(), mc.Ctx.ID)
}

// Config controls the analysis.
type Config struct {
	// Entries are the root methods; if empty, all static methods named
	// "main" are used, and if none exist, all methods are roots.
	Entries []*ir.Method
	// ObjSensContainers enables object-sensitive cloning of container
	// classes. When false the analysis is fully context-insensitive
	// (the paper's NoObjSens configuration).
	ObjSensContainers bool
	// ContainerClasses names the classes treated object-sensitively.
	ContainerClasses []string
	// MaxCtxDepth caps heap-context nesting (contexts deeper than this
	// are truncated to keep the abstraction finite). 0 means 3.
	MaxCtxDepth int
	// Budget bounds the solver (PhasePointsTo steps, cancellation,
	// deadline). Nil means unlimited. When the step cap is exhausted
	// under object-sensitive cloning, Analyze restarts the solver
	// context-insensitively with a fresh allowance before giving up.
	Budget *budget.Budget
	// NoCycleElim disables online cycle elimination, leaving the plain
	// difference-propagation solver. This is the reference mode the
	// equivalence property tests compare against; production callers
	// leave it false and get pointer-equivalent variable nodes collapsed
	// into union-find representatives (Nuutila/HCD-style).
	NoCycleElim bool
	// RetainState keeps the solver's constraint graph alive on a
	// complete Result so a later SolveDelta can reuse it after an edit.
	// Costs memory proportional to the solve; watch-mode sessions
	// enable it.
	RetainState bool
}

// Result is the analysis output.
type Result struct {
	// Downgraded reports that the object-sensitive run exhausted its
	// step budget and the analysis restarted context-insensitively
	// (the paper's NoObjSens precision), trading precision for
	// termination within budget.
	Downgraded bool
	// Truncated reports that the solver stopped before reaching its
	// fixpoint: points-to sets and the call graph are valid but
	// incomplete. LimitErr carries the triggering *budget.ErrExhausted.
	Truncated bool
	LimitErr  error
	// Collapsed counts the variable/field nodes the online cycle
	// elimination merged into representatives (0 in NoCycleElim mode).
	Collapsed int

	prog       *ir.Program
	objects    []*Object
	mctxs      []*MCtx
	mctxsOf    map[*ir.Method][]*MCtx
	regNodes   map[*ir.Reg][]*node // all context instances of a register
	varNodes   map[varKey]*node
	callEdges  map[callSiteKey][]*MCtx
	calleesCI  map[*ir.Call]map[*ir.Method]bool
	reachableM map[*ir.Method]bool
	entries    []*ir.Method
	// solver is retained on complete results when Config.RetainState is
	// set, for SolveDelta. The retained linked map holds pre-canonical
	// IDs and is never consulted again; callEdges is the durable view.
	solver *solver
}

// callSiteKey identifies a call site in a caller context.
type callSiteKey struct {
	callID   int
	callerID int
}

// MCtxs returns every reachable method-context (call graph node), in
// discovery order.
func (r *Result) MCtxs() []*MCtx { return r.mctxs }

// MCtxsOf returns the contexts under which m was analyzed.
func (r *Result) MCtxsOf(m *ir.Method) []*MCtx { return r.mctxsOf[m] }

// PointsToIn returns the points-to set of reg in a specific method
// context (empty for untracked or non-reference registers).
func (r *Result) PointsToIn(reg *ir.Reg, mc *MCtx) []*Object {
	n := r.varNodes[varKey{reg, mc.Ctx}]
	if n == nil {
		return nil
	}
	var out []*Object
	n.pts.forEach(func(id int) { out = append(out, r.objects[id]) })
	return out
}

// PointsToIDsIn appends the object IDs of reg's points-to set in
// context mc to dst (in ascending ID order — bitset order is ID order)
// and returns the extended slice. It is the allocation-light variant
// of PointsToIn for callers that only need IDs, like the SDG build's
// heap-access pairing.
func (r *Result) PointsToIDsIn(dst []int, reg *ir.Reg, mc *MCtx) []int {
	n := r.varNodes[varKey{reg, mc.Ctx}]
	if n == nil {
		return dst
	}
	if need := len(dst) + n.pts.count(); cap(dst) < need {
		grown := make([]int, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	n.pts.forEach(func(id int) { dst = append(dst, id) })
	return dst
}

// CalleesAt returns the callee contexts of a call site as invoked from
// a specific caller context.
func (r *Result) CalleesAt(call *ir.Call, caller *MCtx) []*MCtx {
	return r.callEdges[callSiteKey{call.ID(), caller.ID}]
}

// Objects returns all abstract objects, in creation order.
func (r *Result) Objects() []*Object { return r.objects }

// NumCGNodes returns the number of call-graph nodes (method-context
// pairs); with cloning this exceeds the number of distinct methods,
// matching Table 1's "call graph nodes" metric.
func (r *Result) NumCGNodes() int { return len(r.mctxs) }

// ReachableMethods returns the distinct methods discovered during
// on-the-fly call graph construction, in deterministic order.
func (r *Result) ReachableMethods() []*ir.Method {
	ms := make([]*ir.Method, 0, len(r.reachableM))
	for m := range r.reachableM {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name() < ms[j].Name() })
	return ms
}

// Reachable reports whether m was discovered by the analysis.
func (r *Result) Reachable(m *ir.Method) bool { return r.reachableM[m] }

// Entries returns the root methods used.
func (r *Result) Entries() []*ir.Method { return r.entries }

// PointsTo returns the context-insensitive projection of the points-to
// set of reg: the union over all analyzed contexts.
func (r *Result) PointsTo(reg *ir.Reg) []*Object {
	seen := make(map[int]bool)
	var out []*Object
	for _, n := range r.regNodes[reg] {
		n.pts.forEach(func(id int) {
			if !seen[id] {
				seen[id] = true
				out = append(out, r.objects[id])
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MayAlias reports whether two registers may point to a common object.
func (r *Result) MayAlias(a, b *ir.Reg) bool {
	seen := make(map[int]bool)
	for _, n := range r.regNodes[a] {
		n.pts.forEach(func(id int) { seen[id] = true })
	}
	for _, n := range r.regNodes[b] {
		found := false
		n.pts.forEach(func(id int) {
			if seen[id] {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// Callees returns the possible concrete targets of a call site,
// context-insensitively, in deterministic order.
func (r *Result) Callees(call *ir.Call) []*ir.Method {
	set := r.calleesCI[call]
	ms := make([]*ir.Method, 0, len(set))
	for m := range set {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name() < ms[j].Name() })
	return ms
}

// CastCheckable reports whether the points-to analysis verifies that a
// cast cannot fail: every object in pts(src) is compatible with the
// target type. A cast with a non-empty points-to set that is not
// checkable is a "tough cast" candidate (paper §6.3).
func (r *Result) CastCheckable(c *ir.Cast) (verified bool, nonEmpty bool) {
	objs := r.PointsTo(c.Src)
	if len(objs) == 0 {
		return true, false
	}
	for _, o := range objs {
		if !objCompatible(o, c.Target) {
			return false, true
		}
	}
	return true, true
}

// CompatibleWith reports whether the object's dynamic type conforms to
// t: a cast of a reference pointing (only) to compatible objects cannot
// fail. Exported for client analyses (the checker suite).
func (o *Object) CompatibleWith(t types.Type) bool { return objCompatible(o, t) }

func objCompatible(o *Object, t types.Type) bool {
	switch t := t.(type) {
	case *types.Class:
		return o.Class != nil && o.Class.IsSubclassOf(t.Info)
	case *types.Array:
		return o.IsArray()
	}
	return false
}

// --- solver internals ---

// bitset is a dense bitset over object IDs.
type bitset []uint64

func (b *bitset) add(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	if (*b)[w]&m != 0 {
		return false
	}
	(*b)[w] |= m
	return true
}

func (b bitset) has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(i%64)) != 0
}

// orDiff ors src into b and returns the newly-set bits. The result
// aliases s.diffScratch and is valid only until the next call.
func (s *solver) orDiff(b *bitset, src bitset) bitset {
	for len(*b) < len(src) {
		*b = append(*b, 0)
	}
	if cap(s.diffScratch) < len(src) {
		s.diffScratch = make(bitset, 0, len(src)+4)
	}
	diff := s.diffScratch[:0]
	for w, v := range src {
		d := v &^ (*b)[w]
		if d != 0 {
			(*b)[w] |= d
			for len(diff) <= w {
				diff = append(diff, 0)
			}
			diff[w] = d
		}
	}
	s.diffScratch = diff[:0]
	return diff
}

// or merges src into b without tracking the difference.
func (b *bitset) or(src bitset) {
	for len(*b) < len(src) {
		*b = append(*b, 0)
	}
	for w, x := range src {
		(*b)[w] |= x
	}
}

func (b bitset) forEach(f func(int)) {
	for w, word := range b {
		for word != 0 {
			f(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

type loadCon struct {
	field *types.FieldInfo // nil for array elements
	dst   *node
}

type storeCon struct {
	field *types.FieldInfo
	src   *node
}

type callCon struct {
	call   *ir.Call
	caller *MCtx
}

// node is one constraint-graph variable. Nodes are slab-allocated by
// the solver and unified by union-find when cycle elimination collapses
// a strongly connected component of copy edges: after a collapse only
// the representative's fields are live, and every access goes through
// solver.find.
type node struct {
	id       int32
	inWork   bool
	pts      bitset
	frontier bitset // bits not yet propagated
	succs    []*node
	loads    []loadCon
	stores   []storeCon
	calls    []callCon
	filters  []*filter
}

type objFieldKey struct {
	obj   *Object
	field *types.FieldInfo // nil = array elements
}

type varKey struct {
	reg *ir.Reg
	ctx *Object
}

type objKey struct {
	site ir.Instr
	ctx  *Object
}

type mctxKey struct {
	m   *ir.Method
	ctx *Object
}

type solver struct {
	prog     *ir.Program
	cfg      Config
	res      *Result
	maxDepth int

	containers map[string]bool
	nodes      []*node
	varNodes   map[varKey]*node
	fieldNodes map[objFieldKey]*node
	staticNode map[*types.FieldInfo]*node
	objects    map[objKey]*Object
	mctxs      map[mctxKey]*MCtx
	processed  map[*MCtx]bool
	linked     map[[3]int]bool // (caller MCtx ID, call instr ID, callee MCtx ID)
	returnsOf  map[*ir.Method][]*ir.Return
	work       []*node

	// Slab allocation: nodes and objects are carved out of fixed-size
	// chunks so building the constraint graph costs one allocation per
	// slab instead of one per node, and neighbors stay cache-adjacent.
	nodeSlab []node
	objSlab  []Object

	// Union-find over node IDs for cycle elimination. parent[i] == i
	// marks a representative. edgeSet dedups copy edges by packed
	// (from, to) representative IDs, replacing a per-node successor map.
	cycleElim  bool
	parent     []int32
	edgeSet    map[uint64]struct{}
	edgesSince int // copy edges added since the last SCC sweep

	// diffScratch backs orDiff's result. Both call sites copy the diff
	// into the target's frontier before the next orDiff call, so one
	// buffer serves the whole solve instead of one allocation per
	// propagation step.
	diffScratch bitset

	meter *budget.Meter
	// stop is the sticky budget violation that ended the run early.
	stop error

	// pending holds carried-over inert contexts (SolveDelta) that have
	// not been re-reached yet: their bodies are never reprocessed, but
	// on first reach their call sites are replayed to re-register call
	// edges and value flow into non-inert callees. Nil on cold solves.
	pending map[*MCtx]bool
}

// findID returns the representative ID of i, with path halving.
func (s *solver) findID(i int32) int32 {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

// find returns the live representative of n.
func (s *solver) find(n *node) *node {
	if s.parent[n.id] == n.id {
		return n
	}
	return s.nodes[s.findID(n.id)]
}

// tick spends one budget step; once it fails the solver stops
// generating constraints and drains no further work.
func (s *solver) tick() bool {
	if s.stop != nil {
		return false
	}
	if err := s.meter.Tick(); err != nil {
		s.stop = err
		return false
	}
	return true
}

// Analyze runs the pointer analysis over prog under cfg.Budget.
//
// Degradation ladder: a canceled context or passed deadline aborts with
// a typed *budget.ErrCanceled. An exhausted step cap first downgrades —
// when object-sensitive cloning is on, the solver restarts
// context-insensitively with a fresh allowance and marks the result
// Downgraded — and only if that run also exhausts does Analyze return
// the partial fixpoint marked Truncated (with a nil error): callers get
// a sound-but-incomplete call graph rather than a hang or a crash.
func Analyze(prog *ir.Program, cfg Config) (*Result, error) {
	res := run(prog, cfg)
	stop := res.LimitErr
	if stop == nil {
		return res, nil
	}
	if budget.IsCanceled(stop) {
		return nil, stop
	}
	if cfg.ObjSensContainers {
		cfg2 := cfg
		cfg2.ObjSensContainers = false
		res2 := run(prog, cfg2)
		res2.Downgraded = true
		switch {
		case res2.LimitErr == nil:
			return res2, nil
		case budget.IsCanceled(res2.LimitErr):
			return nil, res2.LimitErr
		}
		res2.Truncated = true
		return res2, nil
	}
	res.Truncated = true
	return res, nil
}

// newSolver builds an initialized solver (shared by the cold run and
// SolveDelta).
func newSolver(prog *ir.Program, cfg Config) *solver {
	// The big solver tables all scale with program size: presizing them
	// from the instruction count avoids their incremental rehashes
	// (varNodes and edgeSet grow to a few entries per instruction on
	// the larger corpora).
	sz := prog.NumInstrs
	s := &solver{
		prog:       prog,
		cfg:        cfg,
		maxDepth:   cfg.MaxCtxDepth,
		containers: make(map[string]bool),
		varNodes:   make(map[varKey]*node, 2*sz),
		fieldNodes: make(map[objFieldKey]*node),
		staticNode: make(map[*types.FieldInfo]*node),
		objects:    make(map[objKey]*Object),
		mctxs:      make(map[mctxKey]*MCtx),
		processed:  make(map[*MCtx]bool),
		linked:     make(map[[3]int]bool, sz),
		returnsOf:  make(map[*ir.Method][]*ir.Return, len(prog.Methods)),
		cycleElim:  !cfg.NoCycleElim,
		edgeSet:    make(map[uint64]struct{}, 2*sz),
		meter:      cfg.Budget.Phase(budget.PhasePointsTo),
	}
	if s.maxDepth == 0 {
		s.maxDepth = 3
	}
	if cfg.ObjSensContainers {
		for _, c := range cfg.ContainerClasses {
			s.containers[c] = true
		}
	}
	s.res = &Result{
		prog:       prog,
		mctxsOf:    make(map[*ir.Method][]*MCtx),
		regNodes:   make(map[*ir.Reg][]*node),
		callEdges:  make(map[callSiteKey][]*MCtx),
		calleesCI:  make(map[*ir.Call]map[*ir.Method]bool),
		reachableM: make(map[*ir.Method]bool),
	}
	s.res.varNodes = s.varNodes
	for _, m := range prog.Methods {
		m.Instrs(func(ins ir.Instr) {
			if r, ok := ins.(*ir.Return); ok {
				s.returnsOf[m] = append(s.returnsOf[m], r)
			}
		})
	}
	return s
}

// defaultEntries resolves the configured entry methods against prog.
func defaultEntries(prog *ir.Program, cfg Config) []*ir.Method {
	entries := cfg.Entries
	if len(entries) == 0 {
		for _, m := range prog.Methods {
			if m.Sig.Static && m.Sig.Name == "main" {
				entries = append(entries, m)
			}
		}
	}
	if len(entries) == 0 {
		entries = prog.Methods
	}
	return entries
}

// finish drains nothing further: it records the stop state, normalizes
// query maps, canonicalizes complete fixpoints, and optionally retains
// the solver for the incremental path.
func (s *solver) finish() *Result {
	s.res.LimitErr = s.stop
	if s.cycleElim {
		// Normalize the query-facing node maps to representatives so the
		// Result never reads a collapsed member's (stale, nil'd) fields.
		for k, n := range s.varNodes { //determinism:ok in-place per-key rewrite, independent
			s.varNodes[k] = s.find(n)
		}
		for _, list := range s.res.regNodes { //determinism:ok in-place per-key rewrite, independent
			for i, n := range list {
				list[i] = s.find(n)
			}
		}
	}
	if s.stop == nil {
		s.canonicalize()
		if s.cfg.RetainState {
			s.res.solver = s
		}
	}
	return s.res
}

// run performs one solver pass; budget violations are left in the
// result's LimitErr for Analyze to interpret.
func run(prog *ir.Program, cfg Config) *Result {
	s := newSolver(prog, cfg)
	entries := defaultEntries(prog, cfg)
	s.res.entries = entries
	for _, m := range entries {
		s.reach(m, nil)
	}
	s.solve()
	return s.finish()
}

func isRefType(t types.Type) bool { return types.IsRef(t) }

// nodeSlabSize and objSlabSize are the slab-allocation chunk sizes.
// Slabs are never reallocated once handed out, so node and Object
// pointers stay stable for the lifetime of the result.
const (
	nodeSlabSize = 256
	objSlabSize  = 128
)

func (s *solver) newNode() *node {
	if len(s.nodeSlab) == cap(s.nodeSlab) {
		s.nodeSlab = make([]node, 0, nodeSlabSize)
	}
	s.nodeSlab = append(s.nodeSlab, node{id: int32(len(s.nodes))})
	n := &s.nodeSlab[len(s.nodeSlab)-1]
	s.nodes = append(s.nodes, n)
	s.parent = append(s.parent, n.id)
	return n
}

func (s *solver) varNode(reg *ir.Reg, ctx *Object) *node {
	k := varKey{reg, ctx}
	if n, ok := s.varNodes[k]; ok {
		return s.find(n)
	}
	n := s.newNode()
	s.varNodes[k] = n
	s.res.regNodes[reg] = append(s.res.regNodes[reg], n)
	return n
}

func (s *solver) fieldNode(o *Object, f *types.FieldInfo) *node {
	k := objFieldKey{o, f}
	if n, ok := s.fieldNodes[k]; ok {
		return s.find(n)
	}
	n := s.newNode()
	s.fieldNodes[k] = n
	return n
}

func (s *solver) staticFieldNode(f *types.FieldInfo) *node {
	if n, ok := s.staticNode[f]; ok {
		return s.find(n)
	}
	n := s.newNode()
	s.staticNode[f] = n
	return n
}

func (s *solver) object(site ir.Instr, ctx *Object, class *types.ClassInfo, elem types.Type) *Object {
	// Truncate over-deep contexts to keep the abstraction finite.
	depth := 0
	if ctx != nil {
		depth = ctx.depth + 1
	}
	if depth > s.maxDepth {
		ctx = nil
		depth = 0
	}
	k := objKey{site, ctx}
	if o, ok := s.objects[k]; ok {
		return o
	}
	if len(s.objSlab) == cap(s.objSlab) {
		s.objSlab = make([]Object, 0, objSlabSize)
	}
	s.objSlab = append(s.objSlab, Object{ID: len(s.res.objects), Site: site, Ctx: ctx, Class: class, Elem: elem, depth: depth})
	o := &s.objSlab[len(s.objSlab)-1]
	s.objects[k] = o
	s.res.objects = append(s.res.objects, o)
	return o
}

func (s *solver) mctx(m *ir.Method, ctx *Object) (*MCtx, bool) {
	k := mctxKey{m, ctx}
	if mc, ok := s.mctxs[k]; ok {
		return mc, false
	}
	mc := &MCtx{ID: len(s.res.mctxs), Method: m, Ctx: ctx}
	s.mctxs[k] = mc
	s.res.mctxs = append(s.res.mctxs, mc)
	s.res.mctxsOf[m] = append(s.res.mctxsOf[m], mc)
	return mc, true
}

func (s *solver) push(n *node) {
	if !n.inWork {
		n.inWork = true
		s.work = append(s.work, n)
	}
}

func (s *solver) addObj(n *node, o *Object) {
	n = s.find(n)
	if n.pts.add(o.ID) {
		n.frontier.add(o.ID)
		s.push(n)
	}
}

func edgeKey(from, to int32) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

func (s *solver) addEdge(from, to *node) {
	from, to = s.find(from), s.find(to)
	if from == to {
		return
	}
	key := edgeKey(from.id, to.id)
	if _, ok := s.edgeSet[key]; ok {
		return
	}
	s.edgeSet[key] = struct{}{}
	from.succs = append(from.succs, to)
	s.edgesSince++
	if !from.pts.empty() {
		diff := s.orDiff(&to.pts, from.pts)
		if !diff.empty() {
			mergeFrontier(to, diff)
			s.push(to)
		}
	}
}

func mergeFrontier(n *node, diff bitset) {
	for len(n.frontier) < len(diff) {
		n.frontier = append(n.frontier, 0)
	}
	for w, d := range diff {
		n.frontier[w] |= d
	}
}

// reach ensures (m, ctx) is a call graph node and its constraints are
// generated; returns the node.
func (s *solver) reach(m *ir.Method, ctx *Object) *MCtx {
	mc, fresh := s.mctx(m, ctx)
	if fresh {
		s.res.reachableM[m] = true
		s.processBody(mc)
	} else if s.pending != nil && s.pending[mc] {
		// Carried inert context (SolveDelta): its value constraints are
		// already baked into the carried nodes; only its call sites need
		// replaying so edges into non-inert callees regenerate.
		delete(s.pending, mc)
		s.res.reachableM[m] = true
		s.replayCalls(mc)
	}
	return mc
}

// replayCalls re-registers only the call sites of a carried context:
// processCall for static sites links the callee directly, and for
// virtual/ctor sites registers the call constraint on the (carried)
// receiver node and replays its objects through dispatch.
func (s *solver) replayCalls(mc *MCtx) {
	mc.Method.Instrs(func(ins ir.Instr) {
		if call, ok := ins.(*ir.Call); ok {
			s.processCall(mc, call)
		}
	})
}

// calleeCtx decides the analysis context for a target method given the
// receiver object.
func (s *solver) calleeCtx(target *ir.Method, recv *Object) *Object {
	if recv != nil && s.containers[target.Sig.Owner.Name] {
		return recv
	}
	return nil
}

// heapCtx is the cloning context for allocation sites in mc.
func (s *solver) heapCtx(mc *MCtx) *Object { return mc.Ctx }

func (s *solver) processBody(mc *MCtx) {
	ctx := mc.Ctx
	strClass := s.prog.Info.String
	mc.Method.Instrs(func(ins ir.Instr) {
		if !s.tick() {
			return
		}
		switch ins := ins.(type) {
		case *ir.New:
			o := s.object(ins, s.heapCtx(mc), ins.Class, nil)
			s.addObj(s.varNode(ins.Dst, ctx), o)
		case *ir.NewArray:
			o := s.object(ins, s.heapCtx(mc), nil, ins.Elem)
			s.addObj(s.varNode(ins.Dst, ctx), o)
		case *ir.ConstStr:
			o := s.object(ins, s.heapCtx(mc), strClass, nil)
			s.addObj(s.varNode(ins.Dst, ctx), o)
		case *ir.StrOp:
			if isRefType(ins.Dst.Typ) {
				o := s.object(ins, s.heapCtx(mc), strClass, nil)
				s.addObj(s.varNode(ins.Dst, ctx), o)
			}
		case *ir.Input:
			if !ins.IsInt {
				o := s.object(ins, s.heapCtx(mc), strClass, nil)
				s.addObj(s.varNode(ins.Dst, ctx), o)
			}
		case *ir.Copy:
			if isRefType(ins.Src.Typ) {
				s.addEdge(s.varNode(ins.Src, ctx), s.varNode(ins.Dst, ctx))
			}
		case *ir.Cast:
			if isRefType(ins.Dst.Typ) && isRefType(ins.Src.Typ) {
				// Filtered edge: model checkcast by registering a
				// load-like constraint that copies only compatible
				// objects. Implemented as a direct edge plus filter in
				// propagation would complicate the solver; instead use
				// a dedicated filter node pattern: connect src -> dst
				// and rely on the filter at propagation time.
				s.addFilteredEdge(s.varNode(ins.Src, ctx), s.varNode(ins.Dst, ctx), ins.Target)
			}
		case *ir.Phi:
			if isRefType(ins.Dst.Typ) || anyRef(ins.Edges) {
				dst := s.varNode(ins.Dst, ctx)
				for _, e := range ins.Edges {
					s.addEdge(s.varNode(e, ctx), dst)
				}
			}
		case *ir.GetField:
			if isRefType(ins.Dst.Typ) {
				base := s.varNode(ins.Obj, ctx)
				base.loads = append(base.loads, loadCon{ins.Field, s.varNode(ins.Dst, ctx)})
				s.replayObjects(base)
			}
		case *ir.SetField:
			if isRefType(ins.Val.Typ) {
				base := s.varNode(ins.Obj, ctx)
				base.stores = append(base.stores, storeCon{ins.Field, s.varNode(ins.Val, ctx)})
				s.replayObjects(base)
			}
		case *ir.GetStatic:
			if isRefType(ins.Dst.Typ) {
				s.addEdge(s.staticFieldNode(ins.Field), s.varNode(ins.Dst, ctx))
			}
		case *ir.SetStatic:
			if isRefType(ins.Val.Typ) {
				s.addEdge(s.varNode(ins.Val, ctx), s.staticFieldNode(ins.Field))
			}
		case *ir.ArrayLoad:
			if isRefType(ins.Dst.Typ) {
				base := s.varNode(ins.Arr, ctx)
				base.loads = append(base.loads, loadCon{nil, s.varNode(ins.Dst, ctx)})
				s.replayObjects(base)
			}
		case *ir.ArrayStore:
			if isRefType(ins.Val.Typ) {
				base := s.varNode(ins.Arr, ctx)
				base.stores = append(base.stores, storeCon{nil, s.varNode(ins.Val, ctx)})
				s.replayObjects(base)
			}
		case *ir.Call:
			s.processCall(mc, ins)
		}
	})
}

func anyRef(regs []*ir.Reg) bool {
	for _, r := range regs {
		if isRefType(r.Typ) {
			return true
		}
	}
	return false
}

// addFilteredEdge adds a subset edge that only lets objects compatible
// with t through (checkcast semantics, as in WALA's cast handling).
func (s *solver) addFilteredEdge(from, to *node, t types.Type) {
	from.filters = append(from.filters, &filter{dst: to, typ: t})
	s.replayObjects(from)
}

type filter struct {
	dst *node
	typ types.Type
}

func (s *solver) processCall(mc *MCtx, call *ir.Call) {
	ctx := mc.Ctx
	switch call.Mode {
	case ir.CallStatic:
		target := s.prog.MethodOf[call.Callee]
		if target == nil {
			return
		}
		callee := s.reach(target, nil)
		s.linkCall(mc, call, callee, nil)
	case ir.CallVirtual, ir.CallCtor:
		recv := s.varNode(call.Recv, ctx)
		recv.calls = append(recv.calls, callCon{call: call, caller: mc})
		s.replayObjects(recv)
	}
}

// replayObjects re-applies complex constraints for objects already in a
// node's points-to set (needed when constraints are registered after
// propagation began).
func (s *solver) replayObjects(n *node) {
	n = s.find(n)
	if !n.pts.empty() {
		// Move everything back into the frontier so the new constraint
		// sees all known objects.
		for len(n.frontier) < len(n.pts) {
			n.frontier = append(n.frontier, 0)
		}
		for w, bits := range n.pts {
			n.frontier[w] |= bits
		}
		s.push(n)
	}
}

// linkCall connects a call site in (caller) to callee with the given
// receiver object (nil for static calls).
func (s *solver) linkCall(caller *MCtx, call *ir.Call, callee *MCtx, recvObj *Object) {
	key := [3]int{caller.ID, call.ID(), callee.ID}
	if s.linked[key] {
		if recvObj != nil {
			// Still need to flow this receiver object into the formal.
			s.flowReceiver(callee, recvObj)
		}
		return
	}
	s.linked[key] = true
	ck := callSiteKey{call.ID(), caller.ID}
	s.res.callEdges[ck] = append(s.res.callEdges[ck], callee)
	set := s.res.calleesCI[call]
	if set == nil {
		set = make(map[*ir.Method]bool)
		s.res.calleesCI[call] = set
	}
	set[callee.Method] = true

	params := callee.Method.Params
	offset := 0
	if !callee.Method.Sig.Static {
		offset = 1
		if recvObj != nil {
			s.flowReceiver(callee, recvObj)
		}
	}
	for i, arg := range call.Args {
		if i+offset >= len(params) {
			break
		}
		formal := params[i+offset]
		if isRefType(arg.Typ) && isRefType(formal.Dst.Typ) {
			s.addEdge(s.varNode(arg, caller.Ctx), s.varNode(formal.Dst, callee.Ctx))
		}
	}
	if call.Dst != nil && isRefType(call.Dst.Typ) {
		dst := s.varNode(call.Dst, caller.Ctx)
		for _, ret := range s.returnsOf[callee.Method] {
			if ret.Val != nil && isRefType(ret.Val.Typ) {
				s.addEdge(s.varNode(ret.Val, callee.Ctx), dst)
			}
		}
	}
}

func (s *solver) flowReceiver(callee *MCtx, recvObj *Object) {
	if callee.Method.Sig.Static || len(callee.Method.Params) == 0 {
		return
	}
	thisFormal := callee.Method.Params[0]
	s.addObj(s.varNode(thisFormal.Dst, callee.Ctx), recvObj)
}

// sweepEveryOverride, when positive, forces a sweep after that many
// new copy edges regardless of graph size (test hook: small programs
// never reach the proportional threshold, and the equivalence sweeps
// must still exercise the collapse path).
var sweepEveryOverride int

// sweepThreshold is the number of new copy edges that triggers an SCC
// sweep: proportional to the graph so sweep cost (O(V+E)) amortizes.
func (s *solver) sweepThreshold() int {
	if sweepEveryOverride > 0 {
		return sweepEveryOverride
	}
	if t := len(s.nodes); t > 256 {
		return t
	}
	return 256
}

func (s *solver) solve() {
	for len(s.work) > 0 {
		if !s.tick() {
			return
		}
		if s.cycleElim && s.edgesSince >= s.sweepThreshold() {
			s.edgesSince = 0
			s.collapseCycles()
		}
		n := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		n.inWork = false
		if s.find(n) != n {
			continue // collapsed into a representative that owns its frontier
		}
		delta := n.frontier
		n.frontier = nil
		if delta.empty() {
			continue
		}
		// Apply complex constraints for each new object.
		delta.forEach(func(id int) {
			if !s.tick() {
				return
			}
			o := s.res.objects[id]
			for _, lc := range n.loads {
				if lc.field == nil && !o.IsArray() {
					continue
				}
				if lc.field != nil && (o.Class == nil || !o.Class.IsSubclassOf(lc.field.Owner)) {
					// Field loads only apply to objects whose class
					// actually declares or inherits the field.
					continue
				}
				s.addEdge(s.fieldNode(o, lc.field), lc.dst)
			}
			for _, sc := range n.stores {
				if sc.field == nil && !o.IsArray() {
					continue
				}
				if sc.field != nil && (o.Class == nil || !o.Class.IsSubclassOf(sc.field.Owner)) {
					continue
				}
				s.addEdge(sc.src, s.fieldNode(o, sc.field))
			}
			for _, f := range n.filters {
				if objCompatible(o, f.typ) {
					s.addObj(f.dst, o)
				}
			}
			for _, cc := range n.calls {
				s.dispatch(cc, o)
			}
		})
		// Propagate along copy edges.
		for _, succ := range n.succs {
			succ = s.find(succ)
			if succ == n {
				continue
			}
			diff := s.orDiff(&succ.pts, delta)
			if !diff.empty() {
				mergeFrontier(succ, diff)
				s.push(succ)
			}
		}
	}
}

// collapseCycles runs one Nuutila/HCD-style sweep: an iterative Tarjan
// SCC pass over the current copy-edge graph (successors resolved
// through union-find), then collapses every multi-node component into
// its minimum-ID member. Components are collected first and collapsed
// after the pass, so detection runs over a stable graph. Deterministic:
// roots are visited in node-ID order and successor lists keep insertion
// order.
func (s *solver) collapseCycles() {
	if !s.tick() {
		return
	}
	n := len(s.nodes)
	index := make([]int32, n) // 0 = unvisited, else discovery index+1
	low := make([]int32, n)
	onStack := make([]bool, n)
	var (
		sccStack []int32
		comps    [][]int32
		idx      int32
	)
	type frame struct {
		v  int32
		si int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		v := int32(root)
		if s.parent[v] != v || index[v] != 0 {
			continue
		}
		idx++
		index[v], low[v] = idx, idx
		sccStack = append(sccStack, v)
		onStack[v] = true
		dfs = append(dfs[:0], frame{v, 0})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			nd := s.nodes[f.v]
			if f.si < len(nd.succs) {
				w := s.findID(nd.succs[f.si].id)
				f.si++
				switch {
				case w == f.v:
					// self edge after earlier collapses
				case index[w] == 0:
					idx++
					index[w], low[w] = idx, idx
					sccStack = append(sccStack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				case onStack[w] && index[w] < low[f.v]:
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int32
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				if len(comp) > 1 {
					comps = append(comps, comp)
				}
			}
			child := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[child] < low[p.v] {
					low[p.v] = low[child]
				}
			}
		}
	}
	for _, comp := range comps {
		s.collapse(comp)
	}
}

// collapse unifies one SCC into its minimum-ID member: points-to sets
// and constraint lists merge onto the representative, successor lists
// are rewritten through union-find with internal edges dropped, and the
// representative replays its full set so constraints that members had
// not yet processed fire exactly once (idempotent adds make the replay
// safe).
func (s *solver) collapse(comp []int32) {
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	rep := comp[0]
	rn := s.nodes[rep]
	for _, id := range comp[1:] {
		m := s.nodes[id]
		s.parent[id] = rep
		rn.pts.or(m.pts)
		rn.succs = append(rn.succs, m.succs...)
		rn.loads = append(rn.loads, m.loads...)
		rn.stores = append(rn.stores, m.stores...)
		rn.calls = append(rn.calls, m.calls...)
		rn.filters = append(rn.filters, m.filters...)
		m.pts, m.frontier, m.succs = nil, nil, nil
		m.loads, m.stores, m.calls, m.filters = nil, nil, nil, nil
		s.res.Collapsed++
	}
	// Rewrite successors through find, dropping internal and duplicate
	// edges, and register the surviving keys so later addEdge calls
	// dedup against representative IDs.
	out := rn.succs[:0]
	seen := make(map[int32]bool, len(rn.succs))
	for _, sc := range rn.succs {
		t := s.findID(sc.id)
		if t == rep || seen[t] {
			continue
		}
		seen[t] = true
		s.edgeSet[edgeKey(rep, t)] = struct{}{}
		out = append(out, s.nodes[t])
	}
	rn.succs = out
	if !rn.pts.empty() {
		rn.frontier = rn.frontier[:0]
		rn.frontier.or(rn.pts)
		s.push(rn)
	}
}

func (s *solver) dispatch(cc callCon, o *Object) {
	call := cc.call
	var targetSig *types.MethodInfo
	if call.Mode == ir.CallCtor {
		targetSig = call.Callee
	} else {
		if o.Class == nil {
			return // arrays have no methods
		}
		targetSig = o.Class.LookupMethod(call.Callee.Name)
		if targetSig == nil {
			return
		}
	}
	target := s.prog.MethodOf[targetSig]
	if target == nil {
		return
	}
	ctx := s.calleeCtx(target, o)
	callee := s.reach(target, ctx)
	s.linkCall(cc.caller, call, callee, o)
}
