package pointsto

// SetSweepEveryForTest forces an SCC sweep after every n new copy
// edges (bypassing the proportional production threshold), so small
// test programs exercise the collapse path. Returns a restore func.
func SetSweepEveryForTest(n int) (restore func()) {
	old := sweepEveryOverride
	sweepEveryOverride = n
	return func() { sweepEveryOverride = old }
}
