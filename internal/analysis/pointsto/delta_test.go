package pointsto_test

import (
	"bytes"
	"strings"
	"testing"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/depgraph"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
)

// deltaProg is a multi-class program with enough shape to exercise the
// carry machinery: virtual dispatch, field stores and loads, statics,
// arrays, a container (Vector is in prelude.ContainerClasses), and
// methods main never reaches.
const deltaProg = `
class Box {
  Object val;
  void put(Object v) { this.val = v; }
  Object get() { return this.val; }
}
class Leaf {
  int twice(int x) { return x + x; }
  Object wrap(Box b) { return b.get(); }
}
class Store {
  static Object cell;
  static void stash(Object o) { Store.cell = o; }
  static Object grab() { return Store.cell; }
}
class Dead {
  Object never(Box b) { return b.get(); }
}
class Main {
  static void main() {
    Box b = new Box();
    Leaf l = new Leaf();
    b.put(l);
    Object got = l.wrap(b);
    Store.stash(got);
    Object back = Store.grab();
    Vector list = new Vector();
    list.add(b);
    Object popped = list.get(0);
    Object[] arr = new Object[2];
    arr[0] = popped;
    Object out = arr[1];
    int n = l.twice(3);
  }
}
`

// runDelta loads both revisions, solves old cold with retained state,
// runs SolveDelta for the depgraph diff, and returns the delta result,
// its stats, and the cold solve of the new revision.
func runDelta(t *testing.T, oldSrcs, newSrcs map[string]string, objSens bool) (*pointsto.Result, pointsto.DeltaStats, *pointsto.Result) {
	t.Helper()
	oldInfo, err := loader.Load(oldSrcs)
	if err != nil {
		t.Fatalf("load old: %v", err)
	}
	newInfo, err := loader.Load(newSrcs)
	if err != nil {
		t.Fatalf("load new: %v", err)
	}
	oldProg, newProg := ir.Lower(oldInfo), ir.Lower(newInfo)
	if len(oldProg.Diags) > 0 || len(newProg.Diags) > 0 {
		t.Fatalf("lowering diagnostics: %v %v", oldProg.Diags, newProg.Diags)
	}
	d := depgraph.Diff(depgraph.Build(oldInfo), depgraph.Build(newInfo))
	removed := append(append([]string(nil), d.Changed...), d.Removed...)
	added := append(append([]string(nil), d.Changed...), d.Added...)
	edited := make(map[string]bool)
	for _, q := range removed {
		edited[q] = true
	}
	var unchanged []string
	for _, m := range oldProg.Methods {
		if !edited[m.Sig.QualifiedName()] {
			unchanged = append(unchanged, m.Sig.QualifiedName())
		}
	}
	pm, err := ir.MapPrograms(oldProg, newProg, unchanged)
	if err != nil {
		t.Fatalf("map programs: %v", err)
	}
	cfg := pointsto.Config{
		ObjSensContainers: objSens,
		ContainerClasses:  prelude.ContainerClasses,
		RetainState:       true,
	}
	prev, err := pointsto.Analyze(oldProg, cfg)
	if err != nil {
		t.Fatalf("cold solve (old): %v", err)
	}
	delta, stats, err := pointsto.SolveDelta(prev, newProg, pm, removed, added, cfg)
	if err != nil {
		t.Fatalf("SolveDelta: %v", err)
	}
	cold, err := pointsto.Analyze(newProg, cfg)
	if err != nil {
		t.Fatalf("cold solve (new): %v", err)
	}
	return delta, stats, cold
}

func assertByteIdentical(t *testing.T, label string, delta, cold *pointsto.Result) {
	t.Helper()
	db, err := pointsto.EncodeResult(delta)
	if err != nil {
		t.Fatalf("%s: encode delta: %v", label, err)
	}
	cb, err := pointsto.EncodeResult(cold)
	if err != nil {
		t.Fatalf("%s: encode cold: %v", label, err)
	}
	if !bytes.Equal(db, cb) {
		t.Errorf("%s: delta result is not byte-identical to cold solve (%d vs %d bytes)", label, len(db), len(cb))
	}
}

func editOne(t *testing.T, old, from, to string) map[string]string {
	t.Helper()
	edited := strings.Replace(old, from, to, 1)
	if edited == old {
		t.Fatalf("edit %q not applied", from)
	}
	return map[string]string{"prog.tj": edited}
}

func TestSolveDeltaEquivalence(t *testing.T) {
	oldSrcs := map[string]string{"prog.tj": deltaProg}
	cases := []struct {
		name     string
		from, to string
		// wantCarried asserts reuse actually happened: the edit is local,
		// so a healthy delta must carry at least this many contexts.
		wantCarried int
	}{
		{"leaf-body", "return x + x;", "return x * 2;", 1},
		{"field-load", "return this.val;", "Object v = this.val; return v;", 0},
		{"static-store", "Store.cell = o;", "Object t = o; Store.cell = t;", 0},
		{"dead-method", "return b.get(); }\n}\nclass Main", "Object d = null; return d; }\n}\nclass Main", 1},
		{"signature-rename", "int twice(int x)", "int twize(int x)", 0},
		{"main-body", "int n = l.twice(3);", "int n = l.twice(4);", 0},
	}
	for _, objSens := range []bool{true, false} {
		mode := map[bool]string{true: "objsens", false: "ci"}[objSens]
		for _, tc := range cases {
			t.Run(mode+"/"+tc.name, func(t *testing.T) {
				newSrcs := editOne(t, deltaProg, tc.from, tc.to)
				if tc.name == "signature-rename" {
					// Fix the call site too, or the edit fails to check.
					newSrcs["prog.tj"] = strings.Replace(newSrcs["prog.tj"], "l.twice(3)", "l.twize(3)", 1)
				}
				delta, stats, cold := runDelta(t, oldSrcs, newSrcs, objSens)
				assertByteIdentical(t, tc.name, delta, cold)
				if stats.CarriedCtxs < tc.wantCarried {
					t.Errorf("%s: carried %d contexts, want at least %d (stats %+v)",
						tc.name, stats.CarriedCtxs, tc.wantCarried, stats)
				}
			})
		}
	}
}

// TestSolveDeltaChains applies two edits in sequence, reusing the delta
// result's own retained state for the second step.
func TestSolveDeltaChains(t *testing.T) {
	src1 := deltaProg
	src2 := strings.Replace(src1, "return x + x;", "return x * 2;", 1)
	src3 := strings.Replace(src2, "Store.cell = o;", "Object t = o; Store.cell = t;", 1)

	delta1, _, cold1 := runDelta(t,
		map[string]string{"prog.tj": src1},
		map[string]string{"prog.tj": src2}, false)
	assertByteIdentical(t, "chain-step1", delta1, cold1)
	// The delta result itself retains state (RetainState passes through
	// finish), so a second SolveDelta off it must also work; runDelta
	// re-solves from scratch, so chain manually here.
	info2, _ := loader.Load(map[string]string{"prog.tj": src2})
	info3, _ := loader.Load(map[string]string{"prog.tj": src3})
	prog2, prog3 := ir.Lower(info2), ir.Lower(info3)
	d := depgraph.Diff(depgraph.Build(info2), depgraph.Build(info3))
	removed := append(append([]string(nil), d.Changed...), d.Removed...)
	added := append(append([]string(nil), d.Changed...), d.Added...)
	edited := make(map[string]bool)
	for _, q := range removed {
		edited[q] = true
	}
	var unchanged []string
	for _, m := range prog2.Methods {
		if !edited[m.Sig.QualifiedName()] {
			unchanged = append(unchanged, m.Sig.QualifiedName())
		}
	}
	pm, err := ir.MapPrograms(prog2, prog3, unchanged)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	cfg2 := pointsto.Config{RetainState: true}
	prev2, err := pointsto.Analyze(prog2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	delta2, _, err := pointsto.SolveDelta(prev2, prog3, pm, removed, added, cfg2)
	if err != nil {
		t.Fatalf("second delta: %v", err)
	}
	// Chain once more off the delta's own retained state: identity edit.
	pmID, err := ir.MapPrograms(prog3, prog3, func() []string {
		var all []string
		for _, m := range prog3.Methods {
			all = append(all, m.Sig.QualifiedName())
		}
		return all
	}())
	if err != nil {
		t.Fatalf("identity map: %v", err)
	}
	delta3, stats3, err := pointsto.SolveDelta(delta2, prog3, pmID, nil, nil, cfg2)
	if err != nil {
		t.Fatalf("delta off delta: %v", err)
	}
	cold3, err := pointsto.Analyze(prog3, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, "identity-delta", delta3, cold3)
	if stats3.CarriedCtxs != stats3.PrevCtxs {
		t.Errorf("identity edit carried %d of %d contexts; all should be inert", stats3.CarriedCtxs, stats3.PrevCtxs)
	}
}

func TestSolveDeltaPreconditions(t *testing.T) {
	info, err := loader.Load(map[string]string{"prog.tj": deltaProg})
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	res, err := pointsto.Analyze(prog, pointsto.Config{}) // no RetainState
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ir.MapPrograms(prog, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pointsto.SolveDelta(res, prog, pm, nil, nil, pointsto.Config{}); err == nil {
		t.Fatal("SolveDelta accepted a result without retained state")
	}
	retained, err := pointsto.Analyze(prog, pointsto.Config{RetainState: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pointsto.SolveDelta(retained, prog, pm, nil, nil, pointsto.Config{MaxCtxDepth: 1}); err == nil {
		t.Fatal("SolveDelta accepted a changed configuration")
	}
}
