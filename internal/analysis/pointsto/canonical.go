package pointsto

import (
	"sort"

	"thinslice/internal/ir"
)

// Canonical renumbering (PR 9). A solver run discovers objects and
// method-contexts in worklist order, which depends on how the run was
// seeded: a cold solve and an incremental SolveDelta reach the same
// fixpoint through different discovery sequences. To make the two
// byte-identical — EncodeResult payloads, Fingerprints, and the SDG
// built on top all read raw IDs — every complete solve renumbers its
// objects and contexts into an order that is a pure function of the
// analyzed program:
//
//   - objects sort by their allocation-site chain: the site's dense
//     program instruction ID, then the heap context's chain,
//     lexicographically (nil context first). Site+context is an
//     object's identity, so the order is total.
//   - method-contexts sort by (method's index in prog.Methods, context
//     object's canonical ID, nil context first). Method+context is an
//     MCtx's identity.
//
// Truncated runs skip canonicalization: their frontiers may be
// undrained, the codec refuses them anyway, and the incremental path
// never consumes them.

// objLess orders objects by site-ID chain, context-insensitive sites
// before cloned ones.
func objLess(a, b *Object) bool {
	for {
		if a.Site.ID() != b.Site.ID() {
			return a.Site.ID() < b.Site.ID()
		}
		a, b = a.Ctx, b.Ctx
		if a == nil || b == nil {
			return a == nil && b != nil
		}
	}
}

// remapBits rewrites a bitset through an object-ID permutation.
func remapBits(b bitset, perm []int32) bitset {
	var out bitset
	b.forEach(func(id int) { out.add(int(perm[id])) })
	return out
}

// canonicalize renumbers s.res in place. Object and MCtx structs keep
// their addresses (solver maps keyed by pointer stay valid); only IDs,
// slice orders, per-node bitsets, and the ID-keyed callEdges map
// change. solver.linked still holds pre-canonical IDs afterwards and
// must not be consulted again — the incremental path reads
// res.callEdges instead.
func (s *solver) canonicalize() {
	// Capture the old ID → MCtx view before any IDs move: callEdges
	// keys embed caller IDs.
	oldMCByID := make([]*MCtx, len(s.res.mctxs))
	for _, mc := range s.res.mctxs {
		oldMCByID[mc.ID] = mc
	}

	// Objects: sort, build the old→new permutation, then reassign.
	objs := s.res.objects
	sort.Slice(objs, func(i, j int) bool { return objLess(objs[i], objs[j]) })
	perm := make([]int32, len(objs))
	for newID, o := range objs {
		perm[o.ID] = int32(newID)
	}
	for newID, o := range objs {
		o.ID = newID
	}

	// Rewrite every live node's points-to bits through the permutation.
	// Collapsed members have nil sets; frontiers are drained at a
	// complete fixpoint but are remapped defensively.
	for _, n := range s.nodes {
		if s.parent[n.id] != n.id {
			continue
		}
		if !n.pts.empty() {
			n.pts = remapBits(n.pts, perm)
		}
		if !n.frontier.empty() {
			n.frontier = remapBits(n.frontier, perm)
		}
	}

	// Method-contexts: sort by (method position, canonical context ID).
	mIdx := make(map[*ir.Method]int, len(s.prog.Methods))
	for i, m := range s.prog.Methods {
		mIdx[m] = i
	}
	ctxKey := func(mc *MCtx) int {
		if mc.Ctx == nil {
			return -1
		}
		return mc.Ctx.ID
	}
	mcs := s.res.mctxs
	sort.Slice(mcs, func(i, j int) bool {
		mi, mj := mIdx[mcs[i].Method], mIdx[mcs[j].Method]
		if mi != mj {
			return mi < mj
		}
		return ctxKey(mcs[i]) < ctxKey(mcs[j])
	})
	for newID, mc := range mcs {
		mc.ID = newID
	}

	// mctxsOf lists contexts in res.mctxs order.
	s.res.mctxsOf = make(map[*ir.Method][]*MCtx, len(s.res.mctxsOf))
	for _, mc := range mcs {
		s.res.mctxsOf[mc.Method] = append(s.res.mctxsOf[mc.Method], mc)
	}

	// callEdges: re-key by the new caller IDs and order each callee
	// list canonically. The per-site callee order is load-bearing for
	// SDG edge emission, so sorting here is what makes an incremental
	// SDG rebuild byte-identical to a cold one.
	edges := make(map[callSiteKey][]*MCtx, len(s.res.callEdges))
	for k, list := range s.res.callEdges { //determinism:ok map rebuild, per-key independent
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
		edges[callSiteKey{k.callID, oldMCByID[k.callerID].ID}] = list
	}
	s.res.callEdges = edges
}
