package pointsto

// White-box property tests for the solver's bitset, the core data
// structure the points-to propagation relies on, checked against a
// map-based reference implementation with testing/quick.

import (
	"testing"
	"testing/quick"
)

// model mirrors a bitset as a set of ints.
type model map[int]bool

func clampIdx(raw []uint16) []int {
	out := make([]int, len(raw))
	for i, r := range raw {
		out[i] = int(r % 512)
	}
	return out
}

func TestBitsetAddHasAgainstModel(t *testing.T) {
	f := func(raw []uint16) bool {
		var b bitset
		m := model{}
		for _, i := range clampIdx(raw) {
			fresh := b.add(i)
			if fresh == m[i] {
				// add must report true exactly when the bit was absent.
				return false
			}
			m[i] = true
		}
		for i := 0; i < 512; i++ {
			if b.has(i) != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetOrDiffAgainstModel(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		var a, b bitset
		ma, mb := model{}, model{}
		for _, i := range clampIdx(rawA) {
			a.add(i)
			ma[i] = true
		}
		for _, i := range clampIdx(rawB) {
			b.add(i)
			mb[i] = true
		}
		var sv solver
		diff := sv.orDiff(&a, b)
		// a must now be the union.
		for i := 0; i < 512; i++ {
			want := ma[i] || mb[i]
			if a.has(i) != want {
				return false
			}
			// diff must be exactly b \ old-a.
			wantDiff := mb[i] && !ma[i]
			if diff.has(i) != wantDiff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetForEachVisitsExactlySetBits(t *testing.T) {
	f := func(raw []uint16) bool {
		var b bitset
		m := model{}
		for _, i := range clampIdx(raw) {
			b.add(i)
			m[i] = true
		}
		seen := model{}
		b.forEach(func(i int) {
			if seen[i] {
				t.Logf("bit %d visited twice", i)
			}
			seen[i] = true
		})
		if len(seen) != len(m) {
			return false
		}
		for i := range m {
			if !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetEmpty(t *testing.T) {
	var b bitset
	if !b.empty() {
		t.Error("zero bitset must be empty")
	}
	b.add(100)
	if b.empty() {
		t.Error("bitset with a bit must not be empty")
	}
	var c bitset
	c = append(c, 0, 0, 0) // explicit zero words
	if !c.empty() {
		t.Error("zero-word bitset must be empty")
	}
}

func TestBitsetOrAgainstModel(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		var a, b bitset
		ma, mb := model{}, model{}
		for _, i := range clampIdx(rawA) {
			a.add(i)
			ma[i] = true
		}
		for _, i := range clampIdx(rawB) {
			b.add(i)
			mb[i] = true
		}
		a.or(b)
		for i := 0; i < 512; i++ {
			if a.has(i) != (ma[i] || mb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
