package modref_test

import (
	"strings"
	"testing"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
)

func setup(t *testing.T, src string) (*ir.Program, *pointsto.Result, *modref.Result) {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := ir.Lower(info)
	pts, err := pointsto.Analyze(prog, pointsto.Config{
		ObjSensContainers: true,
		ContainerClasses:  prelude.ContainerClasses,
	})
	if err != nil {
		t.Fatalf("pointsto: %v", err)
	}
	return prog, pts, modref.Compute(prog, pts)
}

func method(t *testing.T, prog *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s not found", name)
	return nil
}

func hasLocWithField(locs []modref.Loc, fieldName string) bool {
	for _, l := range locs {
		if l.Field != nil && l.Field.Name == fieldName {
			return true
		}
	}
	return false
}

func TestDirectModRef(t *testing.T) {
	prog, _, mr := setup(t, `
		class Box { int v; Box() { } void set(int x) { this.v = x; } int get() { return this.v; } }
		class Main {
			static void main() {
				Box b = new Box();
				b.set(1);
				print(b.get());
			}
		}
	`)
	set := method(t, prog, "Box.set")
	get := method(t, prog, "Box.get")
	if !hasLocWithField(mr.Mod(set), "v") {
		t.Errorf("Box.set MOD missing v: %v", mr.Mod(set))
	}
	if hasLocWithField(mr.Ref(set), "v") {
		t.Errorf("Box.set REF should not include v: %v", mr.Ref(set))
	}
	if !hasLocWithField(mr.Ref(get), "v") {
		t.Errorf("Box.get REF missing v: %v", mr.Ref(get))
	}
}

func TestTransitiveModThroughCallee(t *testing.T) {
	prog, _, mr := setup(t, `
		class Box { int v; Box() { } void set(int x) { this.v = x; } }
		class Main {
			static void helper(Box b) { b.set(7); }
			static void main() {
				Box b = new Box();
				helper(b);
			}
		}
	`)
	helper := method(t, prog, "Main.helper")
	main := method(t, prog, "Main.main")
	if !hasLocWithField(mr.Mod(helper), "v") {
		t.Errorf("helper MOD missing transitive v")
	}
	if !hasLocWithField(mr.Mod(main), "v") {
		t.Errorf("main MOD missing transitive v")
	}
}

func TestRecursionTerminatesAndMerges(t *testing.T) {
	prog, _, mr := setup(t, `
		class Node { int val; Node next; Node() { } }
		class Main {
			static void visit(Node n) {
				if (n == null) { return; }
				n.val = 1;
				visit(n.next);
			}
			static void main() {
				Node a = new Node();
				Node b = new Node();
				a.next = b;
				visit(a);
			}
		}
	`)
	visit := method(t, prog, "Main.visit")
	if !hasLocWithField(mr.Mod(visit), "val") {
		t.Errorf("recursive visit MOD missing val")
	}
}

func TestVectorAddModsBackingStore(t *testing.T) {
	prog, _, mr := setup(t, `
		class Main {
			static void main() {
				Vector v = new Vector();
				v.add("x");
			}
		}
	`)
	main := method(t, prog, "Main.main")
	// Through v.add, main transitively mods the Vector's count field
	// and its backing array elements.
	mods := mr.Mod(main)
	hasCount, hasElems, hasArray := false, false, false
	for _, l := range mods {
		if l.Field != nil && l.Field.Name == "count" {
			hasCount = true
		}
		if l.Field != nil && l.Field.Name == "elems" {
			hasElems = true
		}
		if l.Obj != nil && l.Field == nil && !l.ArrayLen && l.Obj.IsArray() {
			hasArray = true
		}
	}
	if !hasCount || !hasElems || !hasArray {
		t.Errorf("main MOD missing vector internals (count=%t elems=%t array=%t)",
			hasCount, hasElems, hasArray)
	}
}

func TestStaticFieldLoc(t *testing.T) {
	prog, _, mr := setup(t, `
		class G { static int counter; }
		class Main {
			static void bump() { G.counter = G.counter + 1; }
			static void main() { bump(); }
		}
	`)
	main := method(t, prog, "Main.main")
	foundMod, foundRef := false, false
	for _, l := range mr.Mod(main) {
		if l.Obj == nil && l.Field != nil && l.Field.Name == "counter" {
			foundMod = true
			if !strings.Contains(l.String(), "static") {
				t.Errorf("static loc should render as static: %s", l)
			}
		}
	}
	for _, l := range mr.Ref(main) {
		if l.Obj == nil && l.Field != nil && l.Field.Name == "counter" {
			foundRef = true
		}
	}
	if !foundMod || !foundRef {
		t.Errorf("static counter missing (mod=%t ref=%t)", foundMod, foundRef)
	}
}

func TestArrayLenLoc(t *testing.T) {
	prog, _, mr := setup(t, `
		class Main {
			static int size(int[] a) { return a.length; }
			static void main() {
				int[] a = new int[3];
				print(size(a));
			}
		}
	`)
	size := method(t, prog, "Main.size")
	found := false
	for _, l := range mr.Ref(size) {
		if l.ArrayLen {
			found = true
		}
	}
	if !found {
		t.Errorf("size REF missing array length: %v", mr.Ref(size))
	}
}

func TestObjectSensitivityKeepsModSetsApart(t *testing.T) {
	prog, _, mr := setup(t, `
		class Main {
			static void fill1(Vector v) { v.add("a"); }
			static void main() {
				Vector v1 = new Vector();
				Vector v2 = new Vector();
				fill1(v1);
				v2.size();
			}
		}
	`)
	fill1 := method(t, prog, "Main.fill1")
	// fill1 only touches v1's backing store (the initial array and the
	// grown copy from ensure). Every modified array clone must carry
	// v1's Vector as its heap context — none may belong to v2.
	var ctxs []*pointsto.Object
	for _, l := range mr.Mod(fill1) {
		if l.Obj != nil && l.Obj.IsArray() && l.Field == nil && !l.ArrayLen {
			ctxs = append(ctxs, l.Obj.Ctx)
		}
	}
	if len(ctxs) == 0 {
		t.Fatal("fill1 mods no array clones")
	}
	for _, c := range ctxs {
		if c == nil || c != ctxs[0] {
			t.Errorf("array clone context mismatch: %v", ctxs)
		}
	}
}
