package modref

// Persistent encoding of a Result (package artifact's "modref"
// payload). Locations are stored over stable coordinates — object IDs
// from the points-to result and qualified field names — and relinked
// against prog and pts at decode.

import (
	"fmt"
	"sort"

	"thinslice/internal/artifact"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// EncodeResult returns the persistent payload for r.
func EncodeResult(r *Result) ([]byte, error) {
	// Method set: mod and ref are always populated together.
	var names []string
	byName := make(map[string]*ir.Method, len(r.mod))
	for m := range r.mod { //determinism:ok — sorted below
		n := m.Sig.QualifiedName()
		names = append(names, n)
		byName[n] = m
	}
	sort.Strings(names)

	var w artifact.Writer
	w.Uvarint(uint64(len(names)))
	for _, n := range names {
		m := byName[n]
		w.String(n)
		encodeLocs(&w, r.mod[m])
		encodeLocs(&w, r.ref[m])
	}
	return w.Bytes(), nil
}

func encodeLocs(w *artifact.Writer, set map[Loc]bool) {
	locs := sortLocs(set)
	w.Uvarint(uint64(len(locs)))
	for _, l := range locs {
		if l.Obj != nil {
			w.Uvarint(uint64(l.Obj.ID + 1))
		} else {
			w.Uvarint(0)
		}
		if l.Field != nil {
			w.String(l.Field.QualifiedName())
		} else {
			w.String("")
		}
		w.Bool(l.ArrayLen)
	}
}

// DecodeResult rebuilds a Result from data against prog and pts. Any
// structural fault in data is an error.
func DecodeResult(data []byte, prog *ir.Program, pts *pointsto.Result) (*Result, error) {
	byName := make(map[string]*ir.Method, len(prog.Methods))
	for _, m := range prog.Methods {
		byName[m.Sig.QualifiedName()] = m
	}
	fields := make(map[string]*types.FieldInfo)
	for _, ci := range prog.Info.Classes {
		for _, fi := range ci.Fields {
			fields[fi.QualifiedName()] = fi
		}
	}
	objects := pts.Objects()

	res := &Result{
		mod: make(map[*ir.Method]map[Loc]bool),
		ref: make(map[*ir.Method]map[Loc]bool),
	}
	r := artifact.NewReader(data)
	n := r.Len()
	for i := 0; i < n; i++ {
		qname := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		m, ok := byName[qname]
		if !ok {
			return nil, fmt.Errorf("modref: decode: unknown method %q", qname)
		}
		mod, err := decodeLocs(r, fields, objects)
		if err != nil {
			return nil, err
		}
		ref, err := decodeLocs(r, fields, objects)
		if err != nil {
			return nil, err
		}
		res.mod[m] = mod
		res.ref[m] = ref
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return res, nil
}

func decodeLocs(r *artifact.Reader, fields map[string]*types.FieldInfo, objects []*pointsto.Object) (map[Loc]bool, error) {
	n := r.Len()
	set := make(map[Loc]bool, n)
	for i := 0; i < n; i++ {
		objID := r.Uvarint()
		fname := r.String()
		arrayLen := r.Bool()
		if r.Err() != nil {
			return nil, r.Err()
		}
		var l Loc
		if objID > 0 {
			if objID > uint64(len(objects)) {
				return nil, fmt.Errorf("modref: decode: object ID %d of %d", objID-1, len(objects))
			}
			l.Obj = objects[objID-1]
		}
		if fname != "" {
			fi, ok := fields[fname]
			if !ok {
				return nil, fmt.Errorf("modref: decode: unknown field %q", fname)
			}
			l.Field = fi
		}
		l.ArrayLen = arrayLen
		if l.Obj == nil && l.Field == nil {
			return nil, fmt.Errorf("modref: decode: location with neither object nor field")
		}
		set[l] = true
	}
	return set, nil
}
