// Package modref computes interprocedural MOD/REF sets: for each
// method, the abstract heap locations (object × field, array elements,
// and static fields) it may write or read, directly or transitively
// through callees. The context-sensitive slicer uses these sets to
// introduce heap parameters on procedures, following Ryder et al. [24]
// as cited by the paper (§5.3).
package modref

import (
	"sort"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// Loc is an abstract heap location.
type Loc struct {
	// Obj is the abstract object whose field is accessed; nil for
	// static fields.
	Obj *pointsto.Object
	// Field is the accessed field; nil means array elements of Obj.
	Field *types.FieldInfo
	// ArrayLen marks the pseudo-location holding an array's length.
	ArrayLen bool
}

func (l Loc) String() string {
	switch {
	case l.Obj == nil:
		return "static " + l.Field.QualifiedName()
	case l.ArrayLen:
		return l.Obj.String() + ".length"
	case l.Field == nil:
		return l.Obj.String() + "[*]"
	default:
		return l.Obj.String() + "." + l.Field.Name
	}
}

// Result holds per-method MOD/REF sets.
type Result struct {
	mod map[*ir.Method]map[Loc]bool
	ref map[*ir.Method]map[Loc]bool
}

// Mod returns the locations m may write (transitively), sorted
// deterministically.
func (r *Result) Mod(m *ir.Method) []Loc { return sortLocs(r.mod[m]) }

// Ref returns the locations m may read (transitively).
func (r *Result) Ref(m *ir.Method) []Loc { return sortLocs(r.ref[m]) }

// ModSet returns the raw MOD set (do not mutate).
func (r *Result) ModSet(m *ir.Method) map[Loc]bool { return r.mod[m] }

// RefSet returns the raw REF set (do not mutate).
func (r *Result) RefSet(m *ir.Method) map[Loc]bool { return r.ref[m] }

// ModUnion returns the union of all methods' MOD sets: every abstract
// location written anywhere in the analyzed program. Client analyses
// use it to find locations that are read but never initialized.
func (r *Result) ModUnion() map[Loc]bool {
	out := make(map[Loc]bool)
	for _, set := range r.mod {
		for l := range set {
			out[l] = true
		}
	}
	return out
}

func sortLocs(set map[Loc]bool) []Loc {
	out := make([]Loc, 0, len(set))
	for l := range set { //determinism:ok — sorted below
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return locLess(out[i], out[j]) })
	return out
}

func locLess(a, b Loc) bool {
	ai, bi := -1, -1
	if a.Obj != nil {
		ai = a.Obj.ID
	}
	if b.Obj != nil {
		bi = b.Obj.ID
	}
	if ai != bi {
		return ai < bi
	}
	an, bn := "", ""
	if a.Field != nil {
		an = a.Field.QualifiedName()
	}
	if b.Field != nil {
		bn = b.Field.QualifiedName()
	}
	if an != bn {
		return an < bn
	}
	return !a.ArrayLen && b.ArrayLen
}

// Compute builds MOD/REF sets for every method reachable in pts.
func Compute(prog *ir.Program, pts *pointsto.Result) *Result {
	r := &Result{
		mod: make(map[*ir.Method]map[Loc]bool),
		ref: make(map[*ir.Method]map[Loc]bool),
	}
	methods := pts.ReachableMethods()
	for _, m := range methods {
		r.mod[m] = make(map[Loc]bool)
		r.ref[m] = make(map[Loc]bool)
	}
	// Direct effects.
	for _, m := range methods {
		mod, ref := r.mod[m], r.ref[m]
		m.Instrs(func(ins ir.Instr) {
			switch ins := ins.(type) {
			case *ir.SetField:
				for _, o := range pts.PointsTo(ins.Obj) {
					mod[Loc{Obj: o, Field: ins.Field}] = true
				}
			case *ir.GetField:
				for _, o := range pts.PointsTo(ins.Obj) {
					ref[Loc{Obj: o, Field: ins.Field}] = true
				}
			case *ir.SetStatic:
				mod[Loc{Field: ins.Field}] = true
			case *ir.GetStatic:
				ref[Loc{Field: ins.Field}] = true
			case *ir.ArrayStore:
				for _, o := range pts.PointsTo(ins.Arr) {
					mod[Loc{Obj: o}] = true
				}
			case *ir.ArrayLoad:
				for _, o := range pts.PointsTo(ins.Arr) {
					ref[Loc{Obj: o}] = true
				}
			case *ir.NewArray:
				for _, o := range pts.PointsTo(ins.Dst) {
					mod[Loc{Obj: o, ArrayLen: true}] = true
				}
			case *ir.ArrayLen:
				for _, o := range pts.PointsTo(ins.Arr) {
					ref[Loc{Obj: o, ArrayLen: true}] = true
				}
			}
		})
	}
	// Transitive closure over the call graph (iterate to fixpoint to
	// handle recursion).
	callees := make(map[*ir.Method][]*ir.Method)
	for _, m := range methods {
		seen := make(map[*ir.Method]bool)
		m.Instrs(func(ins ir.Instr) {
			if call, ok := ins.(*ir.Call); ok {
				for _, c := range pts.Callees(call) {
					if !seen[c] {
						seen[c] = true
						callees[m] = append(callees[m], c)
					}
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			for _, c := range callees[m] {
				for l := range r.mod[c] {
					if !r.mod[m][l] {
						r.mod[m][l] = true
						changed = true
					}
				}
				for l := range r.ref[c] {
					if !r.ref[m][l] {
						r.ref[m][l] = true
						changed = true
					}
				}
			}
		}
	}
	return r
}
