// Package cdg computes intraprocedural control dependences using the
// Ferrante-Ottenstein-Warren construction over the postdominator tree.
// A block B is control dependent on branch edge A->S when B
// postdominates S but does not postdominate A.
package cdg

import (
	"thinslice/internal/ir"
	"thinslice/internal/ir/ssa"
)

// Graph holds the control dependences of one method.
type Graph struct {
	m *ir.Method
	// deps[b.Index] is the set of branch instructions (If terminators)
	// that block b is control dependent on.
	deps [][]*ir.If
}

// Build computes control dependences for m.
func Build(m *ir.Method) *Graph {
	pd := ssa.PostDominators(m)
	g := &Graph{m: m, deps: make([][]*ir.If, len(m.Blocks))}
	seen := make([]map[*ir.If]bool, len(m.Blocks))
	for i := range seen {
		seen[i] = make(map[*ir.If]bool)
	}
	for _, a := range m.Blocks {
		if len(a.Instrs) == 0 {
			continue
		}
		br, ok := a.Instrs[len(a.Instrs)-1].(*ir.If)
		if !ok {
			continue
		}
		ipdomA := pd.IpdomIndex(a)
		for _, s := range a.Succs {
			// Walk up the postdominator tree from s to ipdom(a),
			// marking every visited block control dependent on br.
			runner := s.Index
			for runner != ipdomA && runner < len(m.Blocks) {
				if !seen[runner][br] {
					seen[runner][br] = true
					g.deps[runner] = append(g.deps[runner], br)
				}
				next := pd.IpdomIndex(m.Blocks[runner])
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return g
}

// BlockDeps returns the branches that b is control dependent on.
func (g *Graph) BlockDeps(b *ir.Block) []*ir.If { return g.deps[b.Index] }

// InstrDeps returns the branches that ins is control dependent on
// (those of its block).
func (g *Graph) InstrDeps(ins ir.Instr) []*ir.If {
	return g.deps[ins.Block().Index]
}

// DependsOnEntry reports whether ins executes whenever the method is
// entered, i.e. it has no intraprocedural control dependences. Such
// instructions are (interprocedurally) control dependent on the call
// sites of their method.
func (g *Graph) DependsOnEntry(ins ir.Instr) bool {
	return len(g.deps[ins.Block().Index]) == 0
}
