package cdg_test

import (
	"testing"

	"thinslice/internal/analysis/cdg"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return ir.Lower(info)
}

func method(t *testing.T, prog *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s not found", name)
	return nil
}

// findPrint returns the i-th print instruction of m.
func findPrint(t *testing.T, m *ir.Method, i int) *ir.Print {
	t.Helper()
	var prints []*ir.Print
	m.Instrs(func(ins ir.Instr) {
		if p, ok := ins.(*ir.Print); ok {
			prints = append(prints, p)
		}
	})
	if i >= len(prints) {
		t.Fatalf("only %d prints", len(prints))
	}
	return prints[i]
}

func TestIfControlDependence(t *testing.T) {
	prog := lower(t, `class A {
		void m(boolean c) {
			print(0);
			if (c) { print(1); }
			print(2);
		}
	}`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	if deps := g.InstrDeps(findPrint(t, m, 0)); len(deps) != 0 {
		t.Errorf("print(0) should be entry-dependent, got %v", deps)
	}
	if deps := g.InstrDeps(findPrint(t, m, 1)); len(deps) != 1 {
		t.Errorf("print(1) should depend on the if, got %d deps", len(deps))
	}
	if deps := g.InstrDeps(findPrint(t, m, 2)); len(deps) != 0 {
		t.Errorf("print(2) after join should be entry-dependent, got %d", len(deps))
	}
}

func TestBothBranchesDependOnIf(t *testing.T) {
	prog := lower(t, `class A {
		void m(boolean c) {
			if (c) { print(1); } else { print(2); }
		}
	}`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	for i := 0; i < 2; i++ {
		if deps := g.InstrDeps(findPrint(t, m, i)); len(deps) != 1 {
			t.Errorf("print(%d): got %d deps, want 1", i+1, len(deps))
		}
	}
}

func TestLoopBodyDependsOnCondition(t *testing.T) {
	prog := lower(t, `class A {
		void m(int n) {
			int i = 0;
			while (i < n) {
				print(i);
				i = i + 1;
			}
			print(99);
		}
	}`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	if deps := g.InstrDeps(findPrint(t, m, 0)); len(deps) != 1 {
		t.Errorf("loop body: got %d deps, want 1", len(deps))
	}
	if deps := g.InstrDeps(findPrint(t, m, 1)); len(deps) != 0 {
		t.Errorf("after loop: got %d deps, want 0", len(deps))
	}
	// The loop condition block is control dependent on itself (it runs
	// again only if it takes the back edge).
	var condIf *ir.If
	m.Instrs(func(ins ir.Instr) {
		if br, ok := ins.(*ir.If); ok {
			condIf = br
		}
	})
	deps := g.BlockDeps(condIf.Block())
	self := false
	for _, d := range deps {
		if d == condIf {
			self = true
		}
	}
	if !self {
		t.Error("loop header should be control dependent on itself")
	}
}

func TestNestedIfTransitivity(t *testing.T) {
	prog := lower(t, `class A {
		void m(boolean a, boolean b) {
			if (a) {
				if (b) {
					print(1);
				}
			}
		}
	}`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	// print(1) directly depends only on the inner if.
	deps := g.InstrDeps(findPrint(t, m, 0))
	if len(deps) != 1 {
		t.Fatalf("got %d direct deps, want 1", len(deps))
	}
	// The inner if's block depends on the outer if.
	inner := deps[0]
	outerDeps := g.BlockDeps(inner.Block())
	if len(outerDeps) != 1 {
		t.Fatalf("inner if should depend on outer if, got %d", len(outerDeps))
	}
}

func TestThrowGuardDependence(t *testing.T) {
	prog := lower(t, `
		class E { }
		class A {
			void m(boolean open) {
				if (!open) {
					throw new E();
				}
				print(1);
			}
		}
	`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	var thr *ir.Throw
	m.Instrs(func(ins ir.Instr) {
		if x, ok := ins.(*ir.Throw); ok {
			thr = x
		}
	})
	if deps := g.InstrDeps(thr); len(deps) != 1 {
		t.Errorf("throw: got %d deps, want 1", len(deps))
	}
	// print(1) only executes when the exception is not thrown, so it is
	// control dependent on the guard too.
	if deps := g.InstrDeps(findPrint(t, m, 0)); len(deps) != 1 {
		t.Errorf("statement after conditional throw: got %d deps, want 1", len(deps))
	}
}

func TestDependsOnEntry(t *testing.T) {
	prog := lower(t, `class A {
		void m(boolean c) {
			print(0);
			if (c) { print(1); }
		}
	}`)
	m := method(t, prog, "A.m")
	g := cdg.Build(m)
	if !g.DependsOnEntry(findPrint(t, m, 0)) {
		t.Error("print(0) should be entry-dependent")
	}
	if g.DependsOnEntry(findPrint(t, m, 1)) {
		t.Error("print(1) should not be entry-dependent")
	}
}
