// Package cha implements class hierarchy analysis: a cheap, imprecise
// call graph used as a baseline and for tests. A virtual call x.m()
// with static receiver type C may target the m() implementation
// inherited or overridden by any subclass of C.
package cha

import (
	"sort"

	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// CallGraph is a class-hierarchy-based call graph.
type CallGraph struct {
	prog *ir.Program
	// subclasses maps each class to all its subclasses (reflexive).
	subclasses map[*types.ClassInfo][]*types.ClassInfo
	reachable  map[*ir.Method]bool
}

// Build computes the CHA call graph of prog, with reachability seeded
// from the given entry methods (or all static mains when nil).
func Build(prog *ir.Program, entries []*ir.Method) *CallGraph {
	g := &CallGraph{
		prog:       prog,
		subclasses: make(map[*types.ClassInfo][]*types.ClassInfo),
		reachable:  make(map[*ir.Method]bool),
	}
	for _, ci := range prog.Info.Classes {
		for c := ci; c != nil; c = c.Super {
			g.subclasses[c] = append(g.subclasses[c], ci)
		}
	}
	for _, subs := range g.subclasses {
		sort.Slice(subs, func(i, j int) bool { return subs[i].Name < subs[j].Name })
	}
	if len(entries) == 0 {
		for _, m := range prog.Methods {
			if m.Sig.Static && m.Sig.Name == "main" {
				entries = append(entries, m)
			}
		}
	}
	var work []*ir.Method
	push := func(m *ir.Method) {
		if m != nil && !g.reachable[m] {
			g.reachable[m] = true
			work = append(work, m)
		}
	}
	for _, m := range entries {
		push(m)
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		m.Instrs(func(ins ir.Instr) {
			if call, ok := ins.(*ir.Call); ok {
				for _, callee := range g.Callees(call) {
					push(callee)
				}
			}
		})
	}
	return g
}

// Callees returns the CHA-possible targets of a call, in deterministic
// order.
func (g *CallGraph) Callees(call *ir.Call) []*ir.Method {
	switch call.Mode {
	case ir.CallStatic, ir.CallCtor:
		if m := g.prog.MethodOf[call.Callee]; m != nil {
			return []*ir.Method{m}
		}
		return nil
	}
	// Virtual: dispatch over every subclass of the static receiver type.
	recvClass := call.Callee.Owner
	seen := make(map[*types.MethodInfo]bool)
	var out []*ir.Method
	for _, sub := range g.subclasses[recvClass] {
		target := sub.LookupMethod(call.Callee.Name)
		if target == nil || seen[target] {
			continue
		}
		seen[target] = true
		if m := g.prog.MethodOf[target]; m != nil {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Cone returns the type cone of c: c and all its (transitive)
// subclasses, sorted by name. A downcast to c can only succeed for
// objects whose class is in this cone — the checker suite compares
// points-to sets against it to find unsafe casts.
func (g *CallGraph) Cone(c *types.ClassInfo) []*types.ClassInfo {
	return g.subclasses[c]
}

// InCone reports whether class c is in the type cone of target.
func (g *CallGraph) InCone(c, target *types.ClassInfo) bool {
	return c != nil && c.IsSubclassOf(target)
}

// Reachable reports whether m is CHA-reachable from the entries.
func (g *CallGraph) Reachable(m *ir.Method) bool { return g.reachable[m] }

// NumReachable returns the count of CHA-reachable methods.
func (g *CallGraph) NumReachable() int { return len(g.reachable) }
