package cha

// Persistent encoding of a CallGraph (package artifact's "cha"
// payload). The subclass index is a pure function of the class
// hierarchy, so only reachability is stored; DecodeCallGraph rebuilds
// the index exactly as Build does.

import (
	"fmt"
	"sort"

	"thinslice/internal/artifact"
	"thinslice/internal/ir"
	"thinslice/internal/lang/types"
)

// EncodeCallGraph returns the persistent payload for g.
func EncodeCallGraph(g *CallGraph) ([]byte, error) {
	var reach []string
	for m := range g.reachable { //determinism:ok — sorted below
		reach = append(reach, m.Sig.QualifiedName())
	}
	sort.Strings(reach)
	var w artifact.Writer
	w.Uvarint(uint64(len(reach)))
	for _, n := range reach {
		w.String(n)
	}
	return w.Bytes(), nil
}

// DecodeCallGraph rebuilds a CallGraph from data against prog. Any
// structural fault in data is an error.
func DecodeCallGraph(data []byte, prog *ir.Program) (*CallGraph, error) {
	g := &CallGraph{
		prog:       prog,
		subclasses: make(map[*types.ClassInfo][]*types.ClassInfo),
		reachable:  make(map[*ir.Method]bool),
	}
	for _, ci := range prog.Info.Classes {
		for c := ci; c != nil; c = c.Super {
			g.subclasses[c] = append(g.subclasses[c], ci)
		}
	}
	for _, subs := range g.subclasses {
		sort.Slice(subs, func(i, j int) bool { return subs[i].Name < subs[j].Name })
	}
	byName := make(map[string]*ir.Method, len(prog.Methods))
	for _, m := range prog.Methods {
		byName[m.Sig.QualifiedName()] = m
	}
	r := artifact.NewReader(data)
	n := r.Len()
	for i := 0; i < n; i++ {
		qname := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		m, ok := byName[qname]
		if !ok {
			return nil, fmt.Errorf("cha: decode: unknown method %q", qname)
		}
		g.reachable[m] = true
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}
