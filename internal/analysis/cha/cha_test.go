package cha_test

import (
	"testing"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	info, err := loader.Load(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return ir.Lower(info)
}

func method(t *testing.T, prog *ir.Program, name string) *ir.Method {
	t.Helper()
	for _, m := range prog.Methods {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s not found", name)
	return nil
}

func TestCHAOverapproximatesDispatch(t *testing.T) {
	prog := lower(t, `
		class Shape { int area() { return 0; } }
		class Circle extends Shape { int area() { return 3; } }
		class Square extends Shape { int area() { return 4; } }
		class Main {
			static void main() {
				Shape s = new Circle();
				print(s.area());
			}
		}
	`)
	g := cha.Build(prog, nil)
	var call *ir.Call
	method(t, prog, "Main.main").Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallVirtual {
			call = c
		}
	})
	names := map[string]bool{}
	for _, m := range g.Callees(call) {
		names[m.Name()] = true
	}
	// CHA cannot rule out Square.area or Shape.area: all three targets.
	if !names["Shape.area"] || !names["Circle.area"] || !names["Square.area"] {
		t.Fatalf("CHA targets wrong: %v", names)
	}
}

func TestCHAReachability(t *testing.T) {
	prog := lower(t, `
		class A { void used() { } void dead() { } }
		class Main {
			static void main() {
				A a = new A();
				a.used();
			}
		}
	`)
	g := cha.Build(prog, nil)
	if !g.Reachable(method(t, prog, "A.used")) {
		t.Error("A.used should be CHA-reachable")
	}
	if g.Reachable(method(t, prog, "A.dead")) {
		t.Error("A.dead should not be reachable")
	}
	if g.NumReachable() == 0 {
		t.Error("no methods reachable")
	}
}

func TestCHAInheritedMethodTarget(t *testing.T) {
	prog := lower(t, `
		class Base { void m() { } }
		class Derived extends Base { }
		class Main {
			static void main() {
				Derived d = new Derived();
				d.m();
			}
		}
	`)
	g := cha.Build(prog, nil)
	var call *ir.Call
	method(t, prog, "Main.main").Instrs(func(ins ir.Instr) {
		if c, ok := ins.(*ir.Call); ok && c.Mode == ir.CallVirtual {
			call = c
		}
	})
	callees := g.Callees(call)
	if len(callees) != 1 || callees[0].Name() != "Base.m" {
		t.Fatalf("inherited dispatch wrong: %v", callees)
	}
}
