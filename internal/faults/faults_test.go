package faults_test

import (
	"errors"
	"testing"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/faults"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

func sources() map[string]string {
	return map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
}

// TestInjectedPanicBecomesTypedError: a Panic rule on the points-to
// phase surfaces as a phase-tagged *budget.ErrInternal, never a crash.
func TestInjectedPanicBecomesTypedError(t *testing.T) {
	reg := faults.NewRegistry()
	h := reg.Add(faults.Rule{Phase: budget.PhasePointsTo, Mode: faults.Panic})
	defer reg.Install()()

	_, err := session.Open(sources()).Graph()
	var internal *budget.ErrInternal
	if !errors.As(err, &internal) || internal.Phase != budget.PhasePointsTo {
		t.Fatalf("got %v, want *budget.ErrInternal in pointsto", err)
	}
	if h.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", h.Fired())
	}
}

// TestAfterTimesWindow: After skips matches, Times bounds fires, and
// the pipeline recovers once the window closes. Load fires many times
// per pipeline (per-artifact), so target a phase that runs once.
func TestAfterTimesWindow(t *testing.T) {
	reg := faults.NewRegistry()
	h := reg.Add(faults.Rule{Phase: budget.PhaseSDG, Mode: faults.Exhaust, After: 1, Times: 2})
	defer reg.Install()()

	s := session.Open(sources())
	if _, err := s.Graph(); err != nil {
		t.Fatalf("first query (inside After window) failed: %v", err)
	}
	// The SDG artifact is cached now; drop it by opening fresh
	// sessions so the SDG phase actually runs again.
	for i := 0; i < 2; i++ {
		_, err := session.Open(sources()).Graph()
		if !budget.IsExhausted(err) {
			t.Fatalf("query %d: got %v, want ErrExhausted", i, err)
		}
	}
	if _, err := session.Open(sources()).Graph(); err != nil {
		t.Fatalf("query after Times window still failing: %v", err)
	}
	if h.Fired() != 2 {
		t.Fatalf("rule fired %d times, want 2", h.Fired())
	}
}

// TestKeyPrefixScopesRule: a rule keyed to one program's content hash
// leaves other programs untouched.
func TestKeyPrefixScopesRule(t *testing.T) {
	poisoned := session.Open(sources())
	healthy := session.Open(map[string]string{papercases.FirstNamesFile: papercases.Toy})

	reg := faults.NewRegistry()
	reg.Add(faults.Rule{KeyPrefix: string(poisoned.SourceKey())[:16], Mode: faults.Error})
	defer reg.Install()()

	if _, err := poisoned.Graph(); err == nil {
		t.Fatal("poisoned program analyzed cleanly")
	}
	if _, err := healthy.Graph(); err != nil {
		t.Fatalf("healthy program caught a scoped fault: %v", err)
	}
}

// TestSleepAndCall: Sleep delays but proceeds; Call runs the callback.
func TestSleepAndCall(t *testing.T) {
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhaseLower, Mode: faults.Sleep, Delay: 20 * time.Millisecond})
	calls := 0
	reg.Add(faults.Rule{Phase: budget.PhaseSDG, Mode: faults.Call, Func: func() error { calls++; return nil }})
	defer reg.Install()()

	start := time.Now()
	if _, err := session.Open(sources()).Graph(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Sleep rule did not delay the pipeline")
	}
	if calls != 1 {
		t.Fatalf("Call rule ran %d times, want 1", calls)
	}
}

// TestUninstallRestores: after uninstall the pipeline runs clean.
func TestUninstallRestores(t *testing.T) {
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Mode: faults.Panic})
	uninstall := reg.Install()
	if _, err := session.Open(sources()).Graph(); err == nil {
		uninstall()
		t.Fatal("installed registry injected nothing")
	}
	uninstall()
	if _, err := session.Open(sources()).Graph(); err != nil {
		t.Fatalf("pipeline still faulting after uninstall: %v", err)
	}
}
