package faults

// Disk-fault injection for the persistent artifact cache
// (internal/diskstore). A DiskRegistry holds deterministic rules —
// match a disk operation and/or a path substring, then fail with EIO,
// tear the write, shorten the read, or flip a bit — and installs
// itself into the diskstore I/O hook (diskstore.SetIOHook). The
// robustness suites use it to prove the read path quarantines every
// corruption instead of serving it, and that the write path never
// publishes a torn record.

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"thinslice/internal/diskstore"
)

// DiskMode selects what a matching disk rule does to the operation.
type DiskMode int

const (
	// EIO fails the operation with a synthetic I/O error, as a dying
	// disk would.
	EIO DiskMode = iota
	// TornWrite hands the store only a prefix of the bytes and fails
	// the write — a crash mid-write. Nothing may be published.
	TornWrite
	// ShortRead silently returns only a prefix of the stored bytes —
	// a truncated file. The container checksum must catch it.
	ShortRead
	// BitFlip silently flips one bit in the data. On a read the
	// checksum must catch it; on a write the corrupt record is
	// published and must be caught by the next read.
	BitFlip
)

// DiskRule injects one disk fault wherever it matches. The zero value
// matches every operation on every path and fires forever.
type DiskRule struct {
	// Op restricts the rule to one operation ("" = any).
	Op diskstore.Op
	// PathContains restricts the rule to paths containing this
	// substring — a store key, a directory name ("" = any).
	PathContains string

	Mode DiskMode

	// After skips the first After matches; Times then fires at most
	// Times times (0 = no limit), as for Rule.
	After int
	Times int
}

// DiskHandle tracks one registered disk rule's fire count.
type DiskHandle struct {
	rule    DiskRule
	mu      sync.Mutex
	matched int
	fired   int
}

// Fired reports how many times the rule has injected its fault.
func (h *DiskHandle) Fired() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

func (h *DiskHandle) take() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.matched++
	if h.matched <= h.rule.After {
		return false
	}
	if h.rule.Times > 0 && h.fired >= h.rule.Times {
		return false
	}
	h.fired++
	return true
}

// DiskRegistry is a set of disk-fault rules. Safe for concurrent use;
// the zero value is not valid, use NewDiskRegistry.
type DiskRegistry struct {
	mu    sync.Mutex
	rules []*DiskHandle
}

// NewDiskRegistry returns an empty registry.
func NewDiskRegistry() *DiskRegistry { return &DiskRegistry{} }

// Add registers a rule and returns its handle for fire-count
// assertions.
func (r *DiskRegistry) Add(rule DiskRule) *DiskHandle {
	h := &DiskHandle{rule: rule}
	r.mu.Lock()
	r.rules = append(r.rules, h)
	r.mu.Unlock()
	return h
}

// Clear drops every rule.
func (r *DiskRegistry) Clear() {
	r.mu.Lock()
	r.rules = nil
	r.mu.Unlock()
}

// Install wires the registry into the diskstore I/O hook and returns
// an uninstall func restoring the previous hook.
func (r *DiskRegistry) Install() (uninstall func()) {
	return diskstore.SetIOHook(r.hook)
}

// hook is the diskstore.IOHook: first matching rule that fires wins.
func (r *DiskRegistry) hook(op diskstore.Op, path string, data []byte) ([]byte, error) {
	r.mu.Lock()
	rules := make([]*DiskHandle, len(r.rules))
	copy(rules, r.rules)
	r.mu.Unlock()
	for _, h := range rules {
		if h.rule.Op != "" && h.rule.Op != op {
			continue
		}
		if h.rule.PathContains != "" && !strings.Contains(path, h.rule.PathContains) {
			continue
		}
		if !h.take() {
			continue
		}
		return fireDisk(h.rule, op, path, data)
	}
	return data, nil
}

func fireDisk(rule DiskRule, op diskstore.Op, path string, data []byte) ([]byte, error) {
	switch rule.Mode {
	case EIO:
		return data, fmt.Errorf("faults: injected EIO on %s %s", op, filepath.Base(path))
	case TornWrite:
		return data[:len(data)/2], fmt.Errorf("faults: injected torn write on %s", filepath.Base(path))
	case ShortRead:
		return data[:len(data)/2], nil
	case BitFlip:
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			mutated[len(mutated)/2] ^= 0x40
		}
		return mutated, nil
	default:
		panic(fmt.Sprintf("faults: unknown disk mode %d", rule.Mode))
	}
}
