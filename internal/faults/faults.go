// Package faults is a test-only fault-injection harness for the
// analysis pipeline. A Registry holds deterministic rules — match a
// session phase and/or a program content-hash prefix, then panic,
// error, exhaust the budget, sleep, or run an arbitrary callback — and
// installs itself into the session phase boundary
// (session.SetPhaseHook). The robustness suites use it to prove the
// serving layer survives panics, timeouts, budget exhaustion, and slow
// builds in every phase without leaking goroutines or caching
// poisoned artifacts.
//
// Rules are matched and fired deterministically (counter-based, no
// randomness), so a failing soak run replays exactly.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"thinslice/internal/budget"
	"thinslice/internal/session"
)

// Mode selects what a matching rule does to the phase.
type Mode int

const (
	// Panic panics inside the phase boundary; the session recovers it
	// into a *budget.ErrInternal.
	Panic Mode = iota
	// Error aborts the phase with Rule.Err (default: a synthesized
	// *budget.ErrInternal).
	Error
	// Exhaust aborts the phase with a *budget.ErrExhausted, as if the
	// phase spent its step cap.
	Exhaust
	// Sleep delays the phase by Rule.Delay, then lets it proceed —
	// for driving requests into their deadlines.
	Sleep
	// Call runs Rule.Func; a non-nil result aborts the phase. Use it
	// for bespoke actions (cancelling a context mid-pipeline).
	Call
)

// Rule injects one fault wherever it matches. The zero value matches
// every phase of every program and fires forever.
type Rule struct {
	// Phase restricts the rule to one pipeline phase ("" = any).
	Phase budget.Phase
	// KeyPrefix restricts the rule to programs whose source-set key
	// (session.SourceKey, hex) starts with this prefix ("" = any).
	KeyPrefix string

	Mode  Mode
	Err   error         // Error mode override
	Delay time.Duration // Sleep mode
	Func  func() error  // Call mode

	// After skips the first After matches; Times then fires at most
	// Times times (0 = no limit). Matches are counted per rule across
	// all goroutines, so "fail twice, then recover" is expressible.
	After int
	Times int
}

// Handle tracks one registered rule's fire count.
type Handle struct {
	rule    Rule
	mu      sync.Mutex
	matched int
	fired   int
}

// Fired reports how many times the rule has injected its fault.
func (h *Handle) Fired() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

// take atomically decides whether this match fires, honouring
// After/Times windows.
func (h *Handle) take() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.matched++
	if h.matched <= h.rule.After {
		return false
	}
	if h.rule.Times > 0 && h.fired >= h.rule.Times {
		return false
	}
	h.fired++
	return true
}

// Registry is a set of injection rules. Safe for concurrent use; the
// zero value is not valid, use NewRegistry.
type Registry struct {
	mu    sync.Mutex
	rules []*Handle
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a rule and returns its handle for fire-count
// assertions.
func (r *Registry) Add(rule Rule) *Handle {
	h := &Handle{rule: rule}
	r.mu.Lock()
	r.rules = append(r.rules, h)
	r.mu.Unlock()
	return h
}

// Clear drops every rule (an installed registry stays installed but
// injects nothing).
func (r *Registry) Clear() {
	r.mu.Lock()
	r.rules = nil
	r.mu.Unlock()
}

// Install wires the registry into the session phase boundary and
// returns an uninstall func. Installations do not stack: the last
// Install wins until its uninstall restores the previous hook.
func (r *Registry) Install() (uninstall func()) {
	return session.SetPhaseHook(r.hook)
}

// hook is the session.PhaseHook: first matching rule that fires wins.
func (r *Registry) hook(p budget.Phase, srcKey session.Key) error {
	r.mu.Lock()
	rules := make([]*Handle, len(r.rules))
	copy(rules, r.rules)
	r.mu.Unlock()
	for _, h := range rules {
		if h.rule.Phase != "" && h.rule.Phase != p {
			continue
		}
		if h.rule.KeyPrefix != "" && !strings.HasPrefix(string(srcKey), h.rule.KeyPrefix) {
			continue
		}
		if !h.take() {
			continue
		}
		return fire(h.rule, p)
	}
	return nil
}

func fire(rule Rule, p budget.Phase) error {
	switch rule.Mode {
	case Panic:
		panic(fmt.Sprintf("faults: injected panic in %s", p))
	case Error:
		if rule.Err != nil {
			return rule.Err
		}
		return &budget.ErrInternal{Phase: p, Value: "faults: injected error"}
	case Exhaust:
		return &budget.ErrExhausted{Phase: p, Limit: 1, Spent: 1}
	case Sleep:
		time.Sleep(rule.Delay)
		return nil
	case Call:
		if rule.Func != nil {
			return rule.Func()
		}
		return nil
	default:
		panic(fmt.Sprintf("faults: unknown mode %d", rule.Mode))
	}
}
