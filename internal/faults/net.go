package faults

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The network fault layer mirrors the phase-fault Registry for the
// cluster's HTTP paths: deterministic, counter-based rules that drop,
// delay, corrupt, or partition traffic between named nodes. It is
// wired in as an http.RoundTripper wrapper (cluster.Config.Transport),
// so forwarding, hedging, peer artifact fetch, health probes, and
// handoff all flow through the same rule set — exactly what the
// replica-kill soak schedules against.

// NetMode selects what a matching network rule does to the request.
type NetMode int

const (
	// NetDrop fails the round trip with a transport error (as if the
	// connection was refused or reset).
	NetDrop NetMode = iota
	// NetDelay sleeps Rule.Delay (bounded by the request context),
	// then lets the request proceed.
	NetDelay
	// NetCorrupt lets the request through but flips one byte in the
	// middle of the response body — the wire-corruption case the
	// artifact container's CRC must catch.
	NetCorrupt
	// NetPartition drops traffic in both directions between From and
	// To (set-matched, unlike NetDrop's one-way match).
	NetPartition
)

// NetRule injects one network fault wherever it matches. From/To are
// node names (bind addresses to names with NetRegistry.Bind); empty
// means any. Path matches a URL path prefix ("" = any).
type NetRule struct {
	From string
	To   string
	Path string

	Mode  NetMode
	Delay time.Duration

	// After skips the first After matches; Times then fires at most
	// Times times (0 = no limit) — same deterministic windowing as the
	// phase-fault rules.
	After int
	Times int
}

// NetHandle tracks one registered network rule's fire count.
type NetHandle struct {
	rule    NetRule
	mu      sync.Mutex
	matched int
	fired   int
}

// Fired reports how many times the rule has injected its fault.
func (h *NetHandle) Fired() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

func (h *NetHandle) take() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.matched++
	if h.matched <= h.rule.After {
		return false
	}
	if h.rule.Times > 0 && h.fired >= h.rule.Times {
		return false
	}
	h.fired++
	return true
}

// NetRegistry is a set of network fault rules shared by every node in
// an in-process cluster under test. Safe for concurrent use.
type NetRegistry struct {
	mu    sync.Mutex
	rules []*NetHandle
	nodes map[string]string // addr (host:port) -> node name
}

// NewNetRegistry returns an empty network fault registry.
func NewNetRegistry() *NetRegistry {
	return &NetRegistry{nodes: make(map[string]string)}
}

// Bind associates a listen address with a node name so rules can match
// destinations by name rather than ephemeral test ports.
func (r *NetRegistry) Bind(name, addr string) {
	r.mu.Lock()
	r.nodes[addr] = name
	r.mu.Unlock()
}

// Add registers a rule and returns its handle for fire-count
// assertions.
func (r *NetRegistry) Add(rule NetRule) *NetHandle {
	h := &NetHandle{rule: rule}
	r.mu.Lock()
	r.rules = append(r.rules, h)
	r.mu.Unlock()
	return h
}

// Clear drops every rule.
func (r *NetRegistry) Clear() {
	r.mu.Lock()
	r.rules = nil
	r.mu.Unlock()
}

// Transport wraps base (nil = http.DefaultTransport) with the fault
// rules, tagging outgoing traffic as coming from the named node.
func (r *NetRegistry) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{reg: r, from: from, base: base}
}

type faultTransport struct {
	reg  *NetRegistry
	from string
	base http.RoundTripper
}

// droppedError is the transport error surfaced for NetDrop and
// NetPartition — indistinguishable from a refused connection to the
// caller's error handling.
type droppedError struct{ from, to string }

func (e droppedError) Error() string {
	return "faults: dropped connection " + e.from + " -> " + e.to
}

// Timeout and Temporary make the error quack like a net error.
func (droppedError) Timeout() bool   { return false }
func (droppedError) Temporary() bool { return true }

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.reg.mu.Lock()
	to := t.reg.nodes[req.URL.Host]
	rules := make([]*NetHandle, len(t.reg.rules))
	copy(rules, t.reg.rules)
	t.reg.mu.Unlock()

	for _, h := range rules {
		if !netRuleMatches(h.rule, t.from, to, req.URL.Path) {
			continue
		}
		if !h.take() {
			continue
		}
		switch h.rule.Mode {
		case NetDrop, NetPartition:
			return nil, droppedError{from: t.from, to: to}
		case NetDelay:
			if err := sleepCtx(req.Context(), h.rule.Delay); err != nil {
				return nil, err
			}
		case NetCorrupt:
			resp, err := t.base.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			return corruptResponse(resp)
		}
		// First firing rule wins, like the phase-fault hook.
		break
	}
	return t.base.RoundTrip(req)
}

func netRuleMatches(rule NetRule, from, to, path string) bool {
	if rule.Path != "" && !strings.HasPrefix(path, rule.Path) {
		return false
	}
	if rule.Mode == NetPartition {
		// Set-matched: the partition severs both directions.
		return (rule.From == from && rule.To == to) || (rule.From == to && rule.To == from)
	}
	if rule.From != "" && rule.From != from {
		return false
	}
	if rule.To != "" && rule.To != to {
		return false
	}
	return true
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// corruptResponse reads the body, flips one byte in the middle, and
// rebuilds the response. An empty body is returned untouched (there is
// nothing to corrupt).
func corruptResponse(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		body[len(body)/2] ^= 0x40
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}
