package faults

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func netTestServer(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return ts, u.Host
}

func doVia(t *testing.T, rt http.RoundTripper, rawURL string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestNetDropMatchesDirectionAndCounts(t *testing.T) {
	ts, addr := netTestServer(t, "payload")
	reg := NewNetRegistry()
	reg.Bind("b", addr)
	h := reg.Add(NetRule{From: "a", To: "b", Mode: NetDrop, Times: 1})

	fromA := reg.Transport("a", nil)
	fromC := reg.Transport("c", nil)

	if _, err := doVia(t, fromA, ts.URL); err == nil {
		t.Fatal("a->b should be dropped")
	} else if !strings.Contains(err.Error(), "dropped connection a -> b") {
		t.Fatalf("unexpected drop error: %v", err)
	}
	// Other sources unaffected.
	resp, err := doVia(t, fromC, ts.URL)
	if err != nil {
		t.Fatalf("c->b should pass: %v", err)
	}
	resp.Body.Close()
	// Times=1 window exhausted: a->b passes now.
	resp, err = doVia(t, fromA, ts.URL)
	if err != nil {
		t.Fatalf("a->b after window: %v", err)
	}
	resp.Body.Close()
	if h.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", h.Fired())
	}
}

func TestNetPartitionIsSymmetric(t *testing.T) {
	ts, addr := netTestServer(t, "x")
	reg := NewNetRegistry()
	reg.Bind("b", addr)
	reg.Add(NetRule{From: "a", To: "b", Mode: NetPartition})

	if _, err := doVia(t, reg.Transport("a", nil), ts.URL); err == nil {
		t.Fatal("a->b should be partitioned")
	}
	// The reverse direction (b talking to the node bound at addr...
	// here the destination is still "b", so simulate b->a by binding a
	// second name and matching the set).
	ts2, addr2 := netTestServer(t, "y")
	reg.Bind("a", addr2)
	if _, err := doVia(t, reg.Transport("b", nil), ts2.URL); err == nil {
		t.Fatal("b->a should be partitioned too")
	}
	// A third node talks to both sides fine.
	for _, u := range []string{ts.URL, ts2.URL} {
		resp, err := doVia(t, reg.Transport("c", nil), u)
		if err != nil {
			t.Fatalf("c should cross the partition: %v", err)
		}
		resp.Body.Close()
	}
}

func TestNetCorruptFlipsOneByte(t *testing.T) {
	const body = "hello artifact container bytes"
	ts, addr := netTestServer(t, body)
	reg := NewNetRegistry()
	reg.Bind("b", addr)
	reg.Add(NetRule{To: "b", Path: "/", Mode: NetCorrupt})

	resp, err := doVia(t, reg.Transport("a", nil), ts.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte(body)) {
		t.Fatal("body not corrupted")
	}
	if len(got) != len(body) {
		t.Fatalf("corruption changed length: %d vs %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly one flipped byte, got %d", diff)
	}
}

func TestNetDelayHonoursContext(t *testing.T) {
	ts, addr := netTestServer(t, "x")
	reg := NewNetRegistry()
	reg.Bind("b", addr)
	reg.Add(NetRule{To: "b", Mode: NetDelay, Delay: 10 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = reg.Transport("a", nil).RoundTrip(req)
	if err == nil {
		t.Fatal("delayed request should fail on context deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored context: took %v", elapsed)
	}
}

func TestNetRulePathPrefixAndAfterWindow(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/internal/artifact", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "art") })
	mux.HandleFunc("/slice", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "slice") })
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	u, _ := url.Parse(ts.URL)

	reg := NewNetRegistry()
	reg.Bind("b", u.Host)
	h := reg.Add(NetRule{To: "b", Path: "/internal/artifact", Mode: NetDrop, After: 1})

	rt := reg.Transport("a", nil)
	// /slice never matches.
	resp, err := doVia(t, rt, ts.URL+"/slice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// First artifact fetch is skipped by After=1...
	resp, err = doVia(t, rt, ts.URL+"/internal/artifact")
	if err != nil {
		t.Fatalf("After=1 should skip first match: %v", err)
	}
	resp.Body.Close()
	// ...every later one drops.
	if _, err := doVia(t, rt, ts.URL+"/internal/artifact"); err == nil {
		t.Fatal("second artifact fetch should drop")
	}
	if h.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", h.Fired())
	}
}
