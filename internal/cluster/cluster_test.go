package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"thinslice/internal/artifact"
	"thinslice/internal/faults"
	"thinslice/internal/papercases"
	"thinslice/internal/server"
	"thinslice/internal/session"
)

// --- harness ---

// testCluster is N in-process nodes on real loopback listeners, so the
// forwarded requests, peer fetches, and handoffs cross an actual TCP
// stack (and, when reg is non-nil, the deterministic fault layer).
type testCluster struct {
	topo  *Topology
	nodes map[string]*Node
	srvs  map[string]*server.Server
	addrs map[string]string
}

func serverConfig(t *testing.T) server.Config {
	return server.Config{
		Workers:        2,
		QueueDepth:     8,
		QueueWait:      2 * time.Second,
		DefaultTimeout: 10 * time.Second,
		StoreEntries:   64,
		StoreBytes:     64 << 20,
		CacheDir:       t.TempDir(),
	}
}

func startCluster(t *testing.T, names []string, reg *faults.NetRegistry, tune func(string, *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes: make(map[string]*Node),
		srvs:  make(map[string]*server.Server),
		addrs: make(map[string]string),
	}
	listeners := make(map[string]net.Listener, len(names))
	members := make([]Member, 0, len(names))
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[name] = ln
		tc.addrs[name] = ln.Addr().String()
		members = append(members, Member{Name: name, Addr: ln.Addr().String()})
		if reg != nil {
			reg.Bind(name, ln.Addr().String())
		}
	}
	repl := 2
	if len(names) < 2 {
		repl = 1
	}
	tc.topo = &Topology{Replication: repl, VNodes: 64, Replicas: members}
	for _, name := range names {
		srv, err := server.New(serverConfig(t))
		if err != nil {
			t.Fatalf("server.New(%s): %v", name, err)
		}
		cfg := Config{
			Self:     name,
			Topology: tc.topo,
			Health:   HealthConfig{Interval: time.Hour}, // probes driven manually in tests
		}
		if reg != nil {
			cfg.Transport = reg.Transport(name, nil)
		}
		if tune != nil {
			tune(name, &cfg)
		}
		node, err := New(srv, cfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", name, err)
		}
		node.Start(listeners[name])
		tc.nodes[name] = node
		tc.srvs[name] = srv
	}
	t.Cleanup(func() {
		for _, n := range tc.nodes {
			n.Kill()
		}
	})
	return tc
}

// programOwnedBy derives a source-set variant whose routing key is
// owned by the wanted member (with the wanted first fallback, when
// given) — appending comment lines changes the content hash without
// moving the seed marker.
func programOwnedBy(t *testing.T, ring *Ring, repl int, owner string, fallback string) (map[string]string, string) {
	t.Helper()
	for i := 0; i < 512; i++ {
		src := papercases.FirstNames + "\n// cluster variant " + strconv.Itoa(i) + "\n"
		m := map[string]string{papercases.FirstNamesFile: src}
		key := string(session.Open(m).SourceKey())
		owners := ring.Owners(key, repl)
		if owners[0].Name != owner {
			continue
		}
		if fallback != "" && (len(owners) < 2 || owners[1].Name != fallback) {
			continue
		}
		seed := fmt.Sprintf("%s:%d", papercases.FirstNamesFile, papercases.Line(src, "// SEED"))
		return m, seed
	}
	t.Fatalf("no variant found with owner %s fallback %q", owner, fallback)
	return nil, ""
}

// postRaw returns the verbatim response bytes — byte-identity across
// routes is the cluster's core invariant, so tests compare raw bodies,
// not decoded structs.
func postRaw(t *testing.T, addr, path string, req server.Request, forwarded bool) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if forwarded {
		hreq.Header.Set(ForwardedHeader, "test")
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, data, resp.Header
}

// --- topology ---

func TestParseTopologyDefaultsAndValidation(t *testing.T) {
	topo, err := ParseTopology([]byte(`{"replicas":[{"name":"a","addr":"1:1"},{"name":"b","addr":"1:2"},{"name":"c","addr":"1:3"}]}`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if topo.Replication != 2 || topo.VNodes != 64 {
		t.Fatalf("defaults: replication %d vnodes %d, want 2 and 64", topo.Replication, topo.VNodes)
	}

	over, err := ParseTopology([]byte(`{"replication":9,"replicas":[{"name":"a","addr":"1:1"},{"name":"b","addr":"1:2"}]}`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if over.Replication != 2 {
		t.Fatalf("replication not clamped to member count: %d", over.Replication)
	}

	for name, doc := range map[string]string{
		"malformed":      `{`,
		"empty":          `{"replicas":[]}`,
		"missing name":   `{"replicas":[{"addr":"1:1"}]}`,
		"missing addr":   `{"replicas":[{"name":"a"}]}`,
		"duplicate name": `{"replicas":[{"name":"a","addr":"1:1"},{"name":"a","addr":"1:2"}]}`,
		"duplicate addr": `{"replicas":[{"name":"a","addr":"1:1"},{"name":"b","addr":"1:1"}]}`,
	} {
		if _, err := ParseTopology([]byte(doc)); err == nil {
			t.Errorf("%s topology accepted", name)
		}
	}
}

func TestNewRejectsBadWiring(t *testing.T) {
	topo := &Topology{Replication: 1, VNodes: 8, Replicas: []Member{{Name: "a", Addr: "127.0.0.1:1"}}}
	cfg := serverConfig(t)
	cfg.CacheDir = "" // cluster mode requires the disk tier
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if _, err := New(srv, Config{Self: "a", Topology: topo}); err == nil || !strings.Contains(err.Error(), "disk cache") {
		t.Fatalf("cacheless server accepted: %v", err)
	}

	srv2, err := server.New(serverConfig(t))
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if _, err := New(srv2, Config{Self: "ghost", Topology: topo}); err == nil || !strings.Contains(err.Error(), "not in the topology") {
		t.Fatalf("unknown self accepted: %v", err)
	}
	if _, err := New(srv2, Config{Self: "a"}); err == nil {
		t.Fatalf("missing topology accepted")
	}
}

// --- routing ---

// TestForwardByteIdentityAndLoopPrevention pins the tentpole's core
// contract: a request landing on the wrong replica is forwarded to the
// owner and the client sees the exact bytes the owner produced; a
// request that already crossed one hop is never forwarded again.
func TestForwardByteIdentityAndLoopPrevention(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "")
	req := server.Request{Sources: sources, Seed: seed}

	// Direct answer from the owner, forced local.
	codeB, bodyB, _ := postRaw(t, tc.addrs["b"], "/slice", req, true)
	if codeB != http.StatusOK {
		t.Fatalf("owner direct: code %d body %s", codeB, bodyB)
	}
	// Same request via the non-owner: forwarded, byte-identical.
	codeA, bodyA, hdrA := postRaw(t, tc.addrs["a"], "/slice", req, false)
	if codeA != http.StatusOK {
		t.Fatalf("via non-owner: code %d body %s", codeA, bodyA)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("forwarded response differs from owner's:\n a: %s\n b: %s", bodyA, bodyB)
	}
	if ct := hdrA.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("forwarded Content-Type %q", ct)
	}
	if got := tc.nodes["a"].stats.forwards.Load(); got != 1 {
		t.Fatalf("node a forwards = %d, want 1", got)
	}
	if got := tc.nodes["b"].stats.forwards.Load(); got != 0 {
		t.Fatalf("owner b forwarded its own request: %d", got)
	}

	// A forwarded-marked request is served locally even off-owner.
	before := tc.nodes["a"].stats.forwards.Load()
	code, body, _ := postRaw(t, tc.addrs["a"], "/slice", req, true)
	if code != http.StatusOK {
		t.Fatalf("forwarded-marked request: code %d body %s", code, body)
	}
	if got := tc.nodes["a"].stats.forwards.Load(); got != before {
		t.Fatalf("forwarded-marked request was re-forwarded (forwards %d -> %d)", before, got)
	}
	if !bytes.Equal(body, bodyB) {
		t.Fatalf("locally-served copy differs from owner's:\n local: %s\n owner: %s", body, bodyB)
	}
}

// TestUnroutableRequestsServedLocally: requests the router cannot key
// (malformed JSON, empty sources) fall through to the local server so
// its typed validation answers — never a router-invented error.
func TestUnroutableRequestsServedLocally(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	resp, err := http.Post("http://"+tc.addrs["a"]+"/slice", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var parsed server.Response
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest || parsed.Kind != "bad_request" {
		t.Fatalf("malformed body: code %d kind %q, want typed bad_request", resp.StatusCode, parsed.Kind)
	}
	if got := tc.nodes["a"].stats.forwards.Load(); got != 0 {
		t.Fatalf("malformed request was forwarded: %d", got)
	}
}

// TestOwnerDeadDegradesToLocalBuild kills the owner and checks the
// non-owner's promise: transport failure costs a cold local build,
// never a 5xx or a transport error surfaced to the client.
func TestOwnerDeadDegradesToLocalBuild(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "")
	req := server.Request{Sources: sources, Seed: seed}

	// Canonical bytes first, while the owner lives.
	_, want, _ := postRaw(t, tc.addrs["b"], "/slice", req, true)

	tc.nodes["b"].Kill()
	code, got, _ := postRaw(t, tc.addrs["a"], "/slice", req, false)
	if code != http.StatusOK {
		t.Fatalf("owner dead: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("local fallback diverged:\n got:  %s\n want: %s", got, want)
	}
	a := tc.nodes["a"]
	if a.stats.localFallbacks.Load() == 0 {
		t.Fatalf("no local fallback recorded")
	}
	if a.stats.forwardErrors.Load() == 0 {
		t.Fatalf("no forward error recorded")
	}
	// The failed forwards were reported passively; after DownAfter
	// failures the peer is Down and later requests skip it entirely.
	for i := 0; i < 3; i++ {
		postRaw(t, tc.addrs["a"], "/slice", req, false)
	}
	if st := a.health.State("b"); st != Down {
		t.Fatalf("dead peer state %v after repeated forward failures, want Down", st)
	}
	fallbacks := a.stats.localFallbacks.Load()
	errsBefore := a.stats.forwardErrors.Load()
	if code, _, _ := postRaw(t, tc.addrs["a"], "/slice", req, false); code != http.StatusOK {
		t.Fatalf("post-Down request: code %d", code)
	}
	if a.stats.forwardErrors.Load() != errsBefore {
		t.Fatalf("request still forwarded to a Down peer")
	}
	_ = fallbacks
}

// TestHedgeWinsOverSlowOwner delays the owner with the fault layer; the
// hedged attempt at the second owner must answer, byte-identically.
func TestHedgeWinsOverSlowOwner(t *testing.T) {
	reg := faults.NewNetRegistry()
	tc := startCluster(t, []string{"a", "b", "c"}, reg, func(name string, cfg *Config) {
		cfg.HedgeAfter = 30 * time.Millisecond
	})
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "c")
	req := server.Request{Sources: sources, Seed: seed}

	// Canonical bytes from the hedge target, forced local.
	_, want, _ := postRaw(t, tc.addrs["c"], "/slice", req, true)

	reg.Add(faults.NetRule{From: "a", To: "b", Path: "/slice", Mode: faults.NetDelay, Delay: 2 * time.Second})
	start := time.Now()
	code, got, _ := postRaw(t, tc.addrs["a"], "/slice", req, false)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged request: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("hedged response diverged:\n got:  %s\n want: %s", got, want)
	}
	if hedges := tc.nodes["a"].stats.hedges.Load(); hedges != 1 {
		t.Fatalf("hedges = %d, want 1", hedges)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("request waited out the delayed owner (%v); hedge did not win", elapsed)
	}
}

// --- peer artifact fetch ---

// TestPeerFetchWarmsColdReplica: a replica serving a program it has no
// artifacts for pulls the owner's verified records instead of
// rebuilding, and publishes them to its own disk tier.
func TestPeerFetchWarmsColdReplica(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "")
	req := server.Request{Sources: sources, Seed: seed}

	// Warm the owner.
	if code, body, _ := postRaw(t, tc.addrs["b"], "/slice", req, true); code != http.StatusOK {
		t.Fatalf("warming owner: code %d body %s", code, body)
	}
	if len(tc.srvs["b"].DiskCache().Keys()) == 0 {
		t.Fatalf("owner disk empty after a successful slice")
	}

	// Force the cold replica to serve locally: its session should fetch
	// the owner's artifacts over /internal/artifact rather than rebuild.
	_, want, _ := postRaw(t, tc.addrs["b"], "/slice", req, true)
	code, got, _ := postRaw(t, tc.addrs["a"], "/slice", req, true)
	if code != http.StatusOK {
		t.Fatalf("cold replica: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-fetched response diverged:\n got:  %s\n want: %s", got, want)
	}
	a := tc.nodes["a"]
	if a.stats.fetchHits.Load() == 0 {
		t.Fatalf("no peer fetch hits; replica rebuilt from scratch")
	}
	if len(tc.srvs["a"].DiskCache().Keys()) == 0 {
		t.Fatalf("fetched artifacts were not published to the local disk tier")
	}
}

// TestCorruptPeerPayloadNeverDecoded runs the byzantine-peer drill: the
// fault layer flips a byte in every artifact fetch response. The
// verified container must reject each one (counted corrupt), and the
// replica must answer from a local rebuild — byte-identical, never
// poisoned.
func TestCorruptPeerPayloadNeverDecoded(t *testing.T) {
	reg := faults.NewNetRegistry()
	tc := startCluster(t, []string{"a", "b"}, reg, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "")
	req := server.Request{Sources: sources, Seed: seed}

	if code, _, _ := postRaw(t, tc.addrs["b"], "/slice", req, true); code != http.StatusOK {
		t.Fatalf("warming owner failed")
	}
	_, want, _ := postRaw(t, tc.addrs["b"], "/slice", req, true)

	reg.Add(faults.NetRule{From: "a", To: "b", Path: "/internal/artifact", Mode: faults.NetCorrupt})
	code, got, _ := postRaw(t, tc.addrs["a"], "/slice", req, true)
	if code != http.StatusOK {
		t.Fatalf("replica with corrupt peer: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("corrupt peer poisoned the answer:\n got:  %s\n want: %s", got, want)
	}
	a := tc.nodes["a"]
	if a.stats.fetchCorrupt.Load() == 0 {
		t.Fatalf("corrupted fetches were not detected")
	}
	if a.stats.fetchHits.Load() != 0 {
		t.Fatalf("corrupted fetch counted as a hit")
	}
}

// --- /internal/artifact ---

func TestArtifactEndpointVerifiesHandoffs(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	addr := tc.addrs["b"]
	key := strings.Repeat("ab", 32)
	payload := []byte("payload bytes for the container")
	rec := artifact.Encode("sdg", key, payload)

	put := func(kind, key string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut,
			fmt.Sprintf("http://%s/internal/artifact?kind=%s&key=%s", addr, kind, key), bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// A garbage record must be rejected before it touches the store.
	if code := put("sdg", key, []byte("not a container")); code != http.StatusBadRequest {
		t.Fatalf("garbage handoff accepted: %d", code)
	}
	// A bit-flipped valid record must fail CRC verification.
	flipped := append([]byte(nil), rec...)
	flipped[len(flipped)-1] ^= 0x01
	if code := put("sdg", key, flipped); code != http.StatusBadRequest {
		t.Fatalf("bit-flipped handoff accepted: %d", code)
	}
	// A record claiming the wrong identity must be rejected too.
	if code := put("pts", key, rec); code != http.StatusBadRequest {
		t.Fatalf("kind-mismatched handoff accepted: %d", code)
	}
	if rejects := tc.nodes["b"].stats.handoffRejects.Load(); rejects != 3 {
		t.Fatalf("handoff rejects = %d, want 3", rejects)
	}
	if got := len(tc.srvs["b"].DiskCache().Keys()); got != 0 {
		t.Fatalf("rejected handoffs reached the store: %d keys", got)
	}

	// The genuine record lands.
	if code := put("sdg", key, rec); code != http.StatusNoContent {
		t.Fatalf("valid handoff rejected: %d", code)
	}
	if data, ok := tc.srvs["b"].DiskCache().Get("sdg", key); !ok || !bytes.Equal(data, payload) {
		t.Fatalf("handed-off payload not retrievable")
	}

	// GET round-trips the verbatim record; non-hex keys are refused.
	resp, err := http.Get(fmt.Sprintf("http://%s/internal/artifact?kind=sdg&key=%s", addr, key))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET existing record: %d", resp.StatusCode)
	}
	if _, err := artifact.Decode(data, "sdg", key); err != nil {
		t.Fatalf("served record fails verification: %v", err)
	}
	for _, bad := range []string{"../../etc/passwd", "ZZ", "", strings.Repeat("a", 200)} {
		resp, err := http.Get(fmt.Sprintf("http://%s/internal/artifact?kind=sdg&key=%s", addr, bad))
		if err != nil {
			continue // some of these are unparseable URLs, equally fine
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("key %q served", bad)
		}
	}
}

// --- warm handoff ---

// TestGracefulStopHandsOffWarmArtifacts drains a warm node and checks
// the survivor received its verified records and can serve the program
// warm (no rebuild: disk tier already holds the artifacts).
func TestGracefulStopHandsOffWarmArtifacts(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "a", "")
	req := server.Request{Sources: sources, Seed: seed}

	if code, _, _ := postRaw(t, tc.addrs["a"], "/slice", req, false); code != http.StatusOK {
		t.Fatalf("warming a failed")
	}
	_, want, _ := postRaw(t, tc.addrs["a"], "/slice", req, true)
	warmKeys := len(tc.srvs["a"].DiskCache().Keys())
	if warmKeys == 0 {
		t.Fatalf("node a disk empty after serving")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.nodes["a"].Stop(ctx); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if sent := tc.nodes["a"].stats.handoffsSent.Load(); sent != int64(warmKeys) {
		t.Fatalf("handoffs sent = %d, want %d", sent, warmKeys)
	}
	if recv := tc.nodes["b"].stats.handoffsReceived.Load(); recv != int64(warmKeys) {
		t.Fatalf("handoffs received = %d, want %d", recv, warmKeys)
	}
	if got := len(tc.srvs["b"].DiskCache().Keys()); got != warmKeys {
		t.Fatalf("survivor holds %d keys, want %d", got, warmKeys)
	}

	// The survivor answers identically, and warm: every artifact it
	// needs is already on its disk, so no pointer analysis reruns.
	ptsBefore := tc.srvs["b"].Stats().Phases.PointsTos
	code, got, _ := postRaw(t, tc.addrs["b"], "/slice", req, true)
	if code != http.StatusOK {
		t.Fatalf("survivor: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("survivor diverged:\n got:  %s\n want: %s", got, want)
	}
	if pts := tc.srvs["b"].Stats().Phases.PointsTos; pts != ptsBefore {
		t.Fatalf("survivor re-ran pointer analysis (%d -> %d); handoff was not warm", ptsBefore, pts)
	}
}

// --- /statsz integration ---

func TestStatszExposesClusterSection(t *testing.T) {
	tc := startCluster(t, []string{"a", "b"}, nil, nil)
	sources, seed := programOwnedBy(t, tc.nodes["a"].ring, tc.topo.Replication, "b", "")
	postRaw(t, tc.addrs["a"], "/slice", server.Request{Sources: sources, Seed: seed}, false)

	resp, err := http.Get("http://" + tc.addrs["a"] + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cluster *server.ClusterStats `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if stats.Cluster == nil {
		t.Fatalf("/statsz has no cluster section")
	}
	if stats.Cluster.Self != "a" || stats.Cluster.Members != 2 {
		t.Fatalf("cluster section self=%q members=%d", stats.Cluster.Self, stats.Cluster.Members)
	}
	if stats.Cluster.Forwards != 1 {
		t.Fatalf("cluster forwards = %d, want 1", stats.Cluster.Forwards)
	}
	if stats.Cluster.PeersUp != 1 {
		t.Fatalf("peers up = %d, want 1", stats.Cluster.PeersUp)
	}
}
