package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// Topology is the cluster's static membership file (JSON). Every
// replica loads the same file and is named in it; membership changes
// are rolling restarts with a new file — a draining replica streams
// its warm artifacts to the new owners on the way out, and an abruptly
// killed one just costs the survivors a cold build per program.
type Topology struct {
	// Replication is the preference-list length per program: the owner
	// plus Replication-1 fallbacks for hedging and peer fetch
	// (default 2, clamped to the member count).
	Replication int `json:"replication"`
	// VNodes is the virtual-node count per replica on the hash ring
	// (default 64).
	VNodes int `json:"vnodes"`
	// Replicas is the member list; names and addrs must be unique.
	Replicas []Member `json:"replicas"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: malformed topology: %w", err)
	}
	if len(t.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: topology has no replicas")
	}
	names := make(map[string]bool, len(t.Replicas))
	addrs := make(map[string]bool, len(t.Replicas))
	for _, m := range t.Replicas {
		if m.Name == "" || m.Addr == "" {
			return nil, fmt.Errorf("cluster: replica needs both name and addr: %+v", m)
		}
		if names[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", m.Name)
		}
		if addrs[m.Addr] {
			return nil, fmt.Errorf("cluster: duplicate replica addr %q", m.Addr)
		}
		names[m.Name], addrs[m.Addr] = true, true
	}
	if t.Replication <= 0 {
		t.Replication = 2
	}
	if t.Replication > len(t.Replicas) {
		t.Replication = len(t.Replicas)
	}
	if t.VNodes <= 0 {
		t.VNodes = 64
	}
	return &t, nil
}

// LoadTopology reads and parses a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading topology: %w", err)
	}
	return ParseTopology(data)
}
