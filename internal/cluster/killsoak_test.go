package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"thinslice/internal/faults"
	"thinslice/internal/server"
)

// soakProg is one program in the soak's working set, pinned to its
// canonical response bytes.
type soakProg struct {
	req  server.Request
	want []byte
}

// soakPrograms builds one program per replica (so every node owns part
// of the working set) and records each one's canonical bytes from a
// forced-local computation.
func soakPrograms(t *testing.T, tc *testCluster, owners []string) []soakProg {
	t.Helper()
	progs := make([]soakProg, 0, len(owners))
	for _, owner := range owners {
		sources, seed := programOwnedBy(t, tc.nodes[owners[0]].ring, tc.topo.Replication, owner, "")
		req := server.Request{Sources: sources, Seed: seed}
		code, want, _ := postRaw(t, tc.addrs[owner], "/slice", req, true)
		if code != http.StatusOK {
			t.Fatalf("canonical compute on %s: code %d body %s", owner, code, want)
		}
		progs = append(progs, soakProg{req: req, want: want})
	}
	return progs
}

// typedKinds is the closed set of error classifications a client may
// ever see — anything else (or an unparseable body) fails the soak.
var typedKinds = map[string]bool{
	"bad_request": true, "program_error": true, "deadline": true,
	"canceled": true, "exhausted": true, "internal": true,
	"saturated": true, "breaker_open": true, "draining": true,
}

// soakCheck asserts the cluster's client-visible contract on one
// response: a 200 is byte-identical to the canonical answer, anything
// else is a typed error — never a bare 5xx, never divergent bytes.
func soakCheck(t *testing.T, code int, body []byte, want []byte) bool {
	t.Helper()
	if code == http.StatusOK {
		if !bytes.Equal(body, want) {
			t.Errorf("response diverged from canonical:\n got:  %s\n want: %s", body, want)
		}
		return true
	}
	var resp server.Response
	if err := json.Unmarshal(body, &resp); err != nil || !typedKinds[resp.Kind] {
		t.Errorf("untyped failure: code %d body %s", code, body)
	}
	return false
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

func p50(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// soakLoad drives workers×perWorker requests round-robin over targets
// and programs, checking every response, and returns the latencies of
// the successful ones.
func soakLoad(t *testing.T, tc *testCluster, targets []string, progs []soakProg, workers, perWorker int, midLoad func()) []time.Duration {
	t.Helper()
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				target := targets[(w+i)%len(targets)]
				prog := progs[(w*perWorker+i)%len(progs)]
				start := time.Now()
				code, body, _ := postRaw(t, tc.addrs[target], "/slice", prog.req, false)
				elapsed := time.Since(start)
				if soakCheck(t, code, body, prog.want) {
					mu.Lock()
					latencies = append(latencies, elapsed)
					mu.Unlock()
				}
			}
		}(w)
	}
	if midLoad != nil {
		midLoad()
	}
	wg.Wait()
	return latencies
}

// TestClusterKillSoak is the acceptance drill: three replicas under
// mixed load with corrupt faults on the peer artifact path, one
// replica killed abruptly mid-load. Every response the survivors
// produce must be byte-identical to the canonical answer or a typed
// error; post-kill warm p99 must stay within 5x the no-failure
// baseline; the dead peer must be marked Down by passive observation.
func TestClusterKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	names := []string{"a", "b", "c"}
	reg := faults.NewNetRegistry()
	tc := startCluster(t, names, reg, nil)
	progs := soakPrograms(t, tc, names)

	// A byzantine streak: the next several peer artifact fetches are
	// corrupted in flight. Receivers must quarantine, rebuild, and
	// still answer canonically.
	reg.Add(faults.NetRule{Path: "/internal/artifact", Mode: faults.NetCorrupt, Times: 6})

	// Force every replica to serve every program locally once while
	// the corruption window is open: off-owner replicas peer-fetch warm
	// records, get poisoned bytes, and must reject them.
	for _, name := range names {
		for _, p := range progs {
			code, body, _ := postRaw(t, tc.addrs[name], "/slice", p.req, true)
			soakCheck(t, code, body, p.want)
		}
	}
	corrupt := tc.nodes["a"].stats.fetchCorrupt.Load() +
		tc.nodes["b"].stats.fetchCorrupt.Load() +
		tc.nodes["c"].stats.fetchCorrupt.Load()
	if corrupt == 0 {
		t.Errorf("byzantine window fired no corrupt-fetch detections")
	}

	// Warm every replica through normal routing.
	for _, name := range names {
		for _, p := range progs {
			code, body, _ := postRaw(t, tc.addrs[name], "/slice", p.req, false)
			soakCheck(t, code, body, p.want)
		}
	}

	// No-failure baseline.
	base := soakLoad(t, tc, names, progs, 4, 15, nil)
	basep99 := p99(base)

	// Kill b abruptly ~mid-load; clients keep hammering the survivors
	// (a real balancer drops the dead backend; the cluster's promise is
	// about what the survivors answer).
	survivors := []string{"a", "c"}
	killed := soakLoad(t, tc, survivors, progs, 4, 25, func() {
		time.Sleep(20 * time.Millisecond)
		tc.nodes["b"].Kill()
	})
	if len(killed) == 0 {
		t.Fatalf("no successful responses after the kill")
	}
	killp99 := p99(killed)

	// The p99 bound: 5x the healthy baseline, with a floor generous
	// enough for -race CI noise on tiny absolute latencies.
	bound := 5 * basep99
	if floor := 2 * time.Second; bound < floor {
		bound = floor
	}
	if killp99 > bound {
		t.Errorf("post-kill p99 %v exceeds bound %v (baseline %v)", killp99, bound, basep99)
	}

	// Passive health: the survivors observed the corpse.
	deadline := time.Now().Add(5 * time.Second)
	for {
		aDown := tc.nodes["a"].health.State("b") == Down
		cDown := tc.nodes["c"].health.State("b") == Down
		if aDown && cDown {
			break
		}
		if time.Now().After(deadline) {
			// Drive a few more b-owned requests to accumulate failures.
			for _, name := range survivors {
				for _, p := range progs {
					postRaw(t, tc.addrs[name], "/slice", p.req, false)
				}
			}
			if tc.nodes["a"].health.State("b") != Down || tc.nodes["c"].health.State("b") != Down {
				t.Fatalf("survivors never marked the killed peer Down (a: %v, c: %v)",
					tc.nodes["a"].health.State("b"), tc.nodes["c"].health.State("b"))
			}
			break
		}
		for _, p := range progs {
			postRaw(t, tc.addrs["a"], "/slice", p.req, false)
			postRaw(t, tc.addrs["c"], "/slice", p.req, false)
		}
	}

	// Post-Down steady state: everything is served without touching
	// the corpse, still byte-identical.
	steady := soakLoad(t, tc, survivors, progs, 2, 10, nil)
	if len(steady) != 2*10 {
		t.Errorf("steady state had failures: %d/20 successes", len(steady))
	}
	t.Logf("soak: baseline p99 %v, post-kill p99 %v, corrupt fetches detected %d",
		basep99, killp99,
		tc.nodes["a"].stats.fetchCorrupt.Load()+tc.nodes["b"].stats.fetchCorrupt.Load()+tc.nodes["c"].stats.fetchCorrupt.Load())
}

// --- benchmark recording ---

type clusterBenchRow struct {
	Replicas      int     `json:"replicas"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	WarmP50US     float64 `json:"warm_p50_us"`
	WarmP99US     float64 `json:"warm_p99_us"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type clusterBenchReport struct {
	Note    string            `json:"note"`
	Rows    []clusterBenchRow `json:"rows"`
	KillOne struct {
		Replicas   int     `json:"replicas"`
		RecoveryMS float64 `json:"recovery_ms"`
	} `json:"kill_one"`
}

// TestRecordClusterBenchmarks measures warm-path latency at 1 and 3
// replicas (the 3-replica numbers include the forwarding hop for the
// ~2/3 of requests that land off-owner) plus the recovery time after
// an abrupt replica kill, and merges a "cluster" section into
// BENCH_serve.json. Skipped under -short.
func TestRecordClusterBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark recording skipped in -short mode")
	}
	report := clusterBenchReport{
		Note: "warm /slice over loopback; 1-replica rows are all-local, 3-replica rows " +
			"include one forwarding hop for off-owner requests; kill_one is the time from " +
			"an abrupt replica kill to 10 consecutive good responses from the survivors",
	}

	measure := func(names []string) (int, []time.Duration, time.Duration) {
		tc := startCluster(t, names, nil, nil)
		progs := soakPrograms(t, tc, names)
		for _, name := range names { // warm every replica
			for _, p := range progs {
				postRaw(t, tc.addrs[name], "/slice", p.req, false)
			}
		}
		wall := time.Now()
		lat := soakLoad(t, tc, names, progs, 4, 25, nil)
		return 4 * 25, lat, time.Since(wall)
	}
	for _, names := range [][]string{{"a"}, {"a", "b", "c"}} {
		total, lat, wall := measure(names)
		report.Rows = append(report.Rows, clusterBenchRow{
			Replicas:      len(names),
			Clients:       4,
			Requests:      total,
			WarmP50US:     float64(p50(lat)) / float64(time.Microsecond),
			WarmP99US:     float64(p99(lat)) / float64(time.Microsecond),
			ThroughputRPS: float64(total) / wall.Seconds(),
		})
	}

	// Kill-one recovery: time from the kill until 10 consecutive good
	// responses (including the dead node's programs) from survivors.
	names := []string{"a", "b", "c"}
	tc := startCluster(t, names, nil, nil)
	progs := soakPrograms(t, tc, names)
	for _, name := range names {
		for _, p := range progs {
			postRaw(t, tc.addrs[name], "/slice", p.req, false)
		}
	}
	tc.nodes["b"].Kill()
	killAt := time.Now()
	consecutive, recovered := 0, time.Duration(0)
	for i := 0; consecutive < 10 && i < 200; i++ {
		prog := progs[i%len(progs)]
		target := []string{"a", "c"}[i%2]
		code, body, _ := postRaw(t, tc.addrs[target], "/slice", prog.req, false)
		if code == http.StatusOK && bytes.Equal(body, prog.want) {
			consecutive++
			if consecutive == 10 {
				recovered = time.Since(killAt)
			}
		} else {
			consecutive = 0
		}
	}
	if consecutive < 10 {
		t.Fatalf("cluster never recovered after kill")
	}
	report.KillOne.Replicas = 3
	report.KillOne.RecoveryMS = float64(recovered) / float64(time.Millisecond)

	// Merge into BENCH_serve.json without disturbing the serve rows.
	const path = "../../BENCH_serve.json"
	doc := map[string]json.RawMessage{}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &doc); err != nil {
			t.Fatalf("existing %s is unparseable: %v", path, err)
		}
	}
	section, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	doc["cluster"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Rows {
		fmt.Printf("cluster bench: %d replicas  p50 %7.0fus  p99 %7.0fus  %7.1f req/s\n",
			r.Replicas, r.WarmP50US, r.WarmP99US, r.ThroughputRPS)
	}
	fmt.Printf("cluster bench: kill-one recovery %.1fms\n", report.KillOne.RecoveryMS)
}
