package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// scriptedProbe fails peers listed in its fail set.
type scriptedProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptedProbe) probe(_ context.Context, addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[addr] {
		return errors.New("probe refused")
	}
	return nil
}

func (p *scriptedProbe) set(addr string, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fail[addr] = failing
}

func TestHealthStateMachine(t *testing.T) {
	probe := &scriptedProbe{fail: map[string]bool{}}
	h := NewHealth(map[string]string{"a": "addr-a", "b": "addr-b"},
		HealthConfig{DownAfter: 3, Probe: probe.probe}, nil)

	// Peers start Up.
	if got := h.State("a"); got != Up {
		t.Fatalf("initial state = %v, want up", got)
	}
	// Unknown peers are Down (never routable).
	if got := h.State("nope"); got != Down {
		t.Fatalf("unknown peer state = %v, want down", got)
	}

	probe.set("addr-a", true)
	h.ProbeOnce(context.Background())
	if got := h.State("a"); got != Degraded {
		t.Fatalf("after 1 failure: %v, want degraded", got)
	}
	if got := h.State("b"); got != Up {
		t.Fatalf("healthy peer: %v, want up", got)
	}
	h.ProbeOnce(context.Background())
	if got := h.State("a"); got != Degraded {
		t.Fatalf("after 2 failures: %v, want degraded", got)
	}
	h.ProbeOnce(context.Background())
	if got := h.State("a"); got != Down {
		t.Fatalf("after 3 failures: %v, want down", got)
	}
	up, degraded, down := h.Counts()
	if up != 1 || degraded != 0 || down != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/0/1", up, degraded, down)
	}

	// Recovery: one success resets to Up immediately.
	probe.set("addr-a", false)
	h.ProbeOnce(context.Background())
	if got := h.State("a"); got != Up {
		t.Fatalf("after recovery: %v, want up", got)
	}
}

func TestHealthPassiveObservations(t *testing.T) {
	h := NewHealth(map[string]string{"a": "addr-a"},
		HealthConfig{DownAfter: 2, Probe: func(context.Context, string) error { return nil }}, nil)
	h.ReportFailure("a", errors.New("connection refused"))
	if got := h.State("a"); got != Degraded {
		t.Fatalf("after passive failure: %v, want degraded", got)
	}
	h.ReportFailure("a", errors.New("connection refused"))
	if got := h.State("a"); got != Down {
		t.Fatalf("after second passive failure: %v, want down", got)
	}
	h.ReportSuccess("a")
	if got := h.State("a"); got != Up {
		t.Fatalf("after passive success: %v, want up", got)
	}
	// Reports about unknown peers are ignored, not tracked.
	h.ReportFailure("ghost", errors.New("x"))
	if got := h.State("ghost"); got != Down {
		t.Fatalf("unknown peer: %v, want down", got)
	}
}

func TestHealthStateStrings(t *testing.T) {
	for want, s := range map[string]State{"up": Up, "degraded": Degraded, "down": Down} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if got := fmt.Sprint(State(99)); got != "state(99)" {
		t.Fatalf("out-of-range state string = %q", got)
	}
}
