package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// State is a peer's typed health state.
type State int

const (
	// Up: the last probe (or observed request) succeeded.
	Up State = iota
	// Degraded: recent failures below the down threshold — still
	// routable, but deprioritized for hedging targets.
	Degraded
	// Down: consecutive failures reached the threshold; the peer is
	// skipped for routing until a probe succeeds again.
	Down
)

func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// HealthConfig tunes the active prober.
type HealthConfig struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout per probe (default 500ms).
	Timeout time.Duration
	// DownAfter is the consecutive-failure count that flips a peer to
	// Down (default 3). Failures below it leave the peer Degraded.
	DownAfter int
	// Probe checks one peer; the default issues GET /healthz over the
	// supplied transport. Injectable for tests.
	Probe func(ctx context.Context, addr string) error
}

func (c *HealthConfig) fillDefaults(transport http.RoundTripper) {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Probe == nil {
		client := &http.Client{Transport: transport}
		c.Probe = func(ctx context.Context, addr string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("healthz status %d", resp.StatusCode)
			}
			return nil
		}
	}
}

type peerHealth struct {
	state   State
	fails   int
	lastErr error
}

// Health tracks typed peer states from active probes plus passive
// observations (forward/fetch outcomes). Peers start Up so a cold
// cluster routes immediately; the first failed round degrades them.
type Health struct {
	cfg   HealthConfig
	peers map[string]string // name -> addr

	mu    sync.Mutex
	state map[string]*peerHealth
}

// NewHealth builds a prober over the given peers (name -> addr),
// normally every topology member except self.
func NewHealth(peers map[string]string, cfg HealthConfig, transport http.RoundTripper) *Health {
	cfg.fillDefaults(transport)
	h := &Health{
		cfg:   cfg,
		peers: make(map[string]string, len(peers)),
		state: make(map[string]*peerHealth, len(peers)),
	}
	for name, addr := range peers {
		h.peers[name] = addr
		h.state[name] = &peerHealth{state: Up}
	}
	return h
}

// Start launches the probe loop; it stops when ctx is cancelled.
func (h *Health) Start(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(h.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				h.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce runs one probe round across all peers (exported so tests
// and a just-started node can force a round synchronously).
func (h *Health) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for name, addr := range h.peers {
		wg.Add(1)
		go func(name, addr string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
			defer cancel()
			err := h.cfg.Probe(pctx, addr)
			if err != nil {
				h.ReportFailure(name, err)
			} else {
				h.ReportSuccess(name)
			}
		}(name, addr)
	}
	wg.Wait()
}

// ReportSuccess records a successful probe or forwarded request.
func (h *Health) ReportSuccess(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.state[name]; ok {
		p.state, p.fails, p.lastErr = Up, 0, nil
	}
}

// ReportFailure records a failed probe or a transport-level failure
// observed while talking to the peer; passive failures accelerate
// detection between probe rounds.
func (h *Health) ReportFailure(name string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.state[name]
	if !ok {
		return
	}
	p.fails++
	p.lastErr = err
	if p.fails >= h.cfg.DownAfter {
		p.state = Down
	} else {
		p.state = Degraded
	}
}

// State returns the peer's current typed state. Unknown peers (self,
// or names outside the topology) report Down so routing skips them.
func (h *Health) State(name string) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.state[name]; ok {
		return p.state
	}
	return Down
}

// Counts returns how many peers are in each state.
func (h *Health) Counts() (up, degraded, down int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.state {
		switch p.state {
		case Up:
			up++
		case Degraded:
			degraded++
		default:
			down++
		}
	}
	return
}
