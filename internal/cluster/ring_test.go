package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("node-%c", 'a'+i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return ms
}

func TestRingDeterministicAcrossConstructionOrder(t *testing.T) {
	ms := testMembers(4)
	r1, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	rev := []Member{ms[3], ms[1], ms[0], ms[2]}
	r2, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("program-%d", i)
		o1 := r1.Owners(key, 3)
		o2 := r2.Owners(key, 3)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %q: owners differ across construction order: %v vs %v", key, o1, o2)
		}
	}
}

func TestRingOwnersDistinctAndComplete(t *testing.T) {
	r, err := NewRing(testMembers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: want 3 owners, got %d", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o.Name] {
				t.Fatalf("key %q: duplicate owner %s", key, o.Name)
			}
			seen[o.Name] = true
		}
	}
	// Asking for more replicas than members clamps.
	if got := r.Owners("x", 10); len(got) != 3 {
		t.Fatalf("want clamp to 3 members, got %d", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(testMembers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).Name]++
	}
	for name, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys — ring badly unbalanced: %v", name, frac*100, counts)
		}
	}
}

func TestRingMinimalDisruptionOnMemberLoss(t *testing.T) {
	full, err := NewRing(testMembers(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := full.Without("node-d")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	moved, owned := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before.Name == "node-d" {
			owned++
			continue // must move, by definition
		}
		if before.Name != after.Name {
			moved++
		}
	}
	if owned == 0 {
		t.Fatal("node-d owned nothing — test is vacuous")
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner (consistent hashing should move only the removed member's keys)", moved)
	}
}

// TestRingRendezvousTiebreak forces a full vnode-hash collision by
// using a degenerate hash for vnode points, and checks the per-key
// rendezvous score decides ownership deterministically and key-
// dependently.
func TestRingRendezvousTiebreak(t *testing.T) {
	ms := testMembers(3)
	r := &Ring{members: ms, hash: fnvHash}
	r.build(4)
	// Collapse every point to one hash value: all vnodes collide.
	for i := range r.points {
		r.points[i].hash = 42
	}
	ownerByKey := map[string]string{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("want full preference list under collision, got %v", owners)
		}
		// Verify the winner really is the rendezvous max.
		best, bestScore := -1, uint64(0)
		for m := range ms {
			if s := r.rendezvous(m, key); best == -1 || s > bestScore {
				best, bestScore = m, s
			}
		}
		if owners[0].Name != ms[best].Name {
			t.Fatalf("key %q: owner %s is not the rendezvous winner %s", key, owners[0].Name, ms[best].Name)
		}
		ownerByKey[key] = owners[0].Name
	}
	// Key-dependent: not every key lands on the same member.
	distinct := map[string]bool{}
	for _, o := range ownerByKey {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("rendezvous tiebreak ignored the key: all owners = %v", ownerByKey)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty member set should fail")
	}
	if _, err := NewRing([]Member{{Name: "a"}, {Name: "a"}}, 8); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if _, err := NewRing([]Member{{Name: ""}}, 8); err == nil {
		t.Fatal("empty name should fail")
	}
	r, err := NewRing([]Member{{Name: "solo"}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Without("solo"); err == nil {
		t.Fatal("emptying the ring should fail")
	}
}
