// Package cluster shards the slicing service across replicas: a
// consistent-hash ring routes each program (by content hash) to one
// owner plus a short replica preference list, an active health prober
// keeps typed up/degraded/down state per peer, and a Node fronts a
// *server.Server with forwarding, hedging, verified peer artifact
// fetch, and warm handoff on drain.
//
// The design goal is the robustness contract from the service framing:
// any single replica failure may cost latency (a cold build, a hedged
// hop) but never correctness — responses stay byte-identical to a
// single-node server and errors stay inside the typed closed set.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Member is one replica in the topology.
type Member struct {
	// Name is the stable identity used for routing and fault rules.
	Name string `json:"name"`
	// Addr is the host:port the replica listens on.
	Addr string `json:"addr"`
}

// Ring is an immutable consistent-hash ring over a member set. Each
// member contributes vnodes points; a key is owned by the first point
// at or after its hash, and the preference list continues clockwise
// collecting distinct members. Points that collide exactly (possible
// in principle with a 64-bit hash, forced in tests) are ordered per
// key by rendezvous score — highest-random-weight hashing — so ties
// break deterministically without depending on member insertion order.
type Ring struct {
	members []Member
	points  []ringPoint
	hash    func(string) uint64
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a Murmur3-style finalizer. Raw FNV-1a over short sequential
// strings ("vnode\x00a\x001", "vnode\x00a\x002", ...) has weak high-bit
// avalanche, which skews point placement badly; the finalizer restores
// uniform spread while staying deterministic across processes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring with vnodes virtual points per member.
// Members must have unique non-empty names.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" {
			return nil, fmt.Errorf("cluster: member with empty name")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
	}
	r := &Ring{
		members: append([]Member(nil), members...),
		hash:    fnvHash,
	}
	r.build(vnodes)
	return r, nil
}

func (r *Ring) build(vnodes int) {
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for i, m := range r.members {
		for v := 0; v < vnodes; v++ {
			h := r.hash("vnode\x00" + m.Name + "\x00" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Stable order for equal hashes; the per-key rendezvous
		// tiebreak in Owners decides which member wins a collision.
		return r.members[r.points[a].member].Name < r.members[r.points[b].member].Name
	})
}

// Members returns the full member set in topology order.
func (r *Ring) Members() []Member {
	return append([]Member(nil), r.members...)
}

// Without returns a new ring over the same points minus the named
// member — the topology a drain handoff targets.
func (r *Ring) Without(name string) (*Ring, error) {
	rest := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		if m.Name != name {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("cluster: removing %q empties the ring", name)
	}
	// Points per member is uniform by construction; recover it.
	vnodes := len(r.points) / len(r.members)
	nr := &Ring{members: rest, hash: r.hash}
	nr.build(vnodes)
	return nr, nil
}

// rendezvous scores a member for a key; higher wins a tie.
func (r *Ring) rendezvous(member int, key string) uint64 {
	return r.hash("rdv\x00" + r.members[member].Name + "\x00" + key)
}

// Owners returns the preference list for key: up to n distinct
// members, the first being the owner. Deterministic for a given
// member set regardless of construction order.
func (r *Ring) Owners(key string, n int) []Member {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	kh := r.hash("key\x00" + key)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= kh
	})
	out := make([]Member, 0, n)
	taken := make(map[int]bool, n)
	add := func(member int) bool {
		if taken[member] {
			return false
		}
		taken[member] = true
		out = append(out, r.members[member])
		return true
	}
	for scanned := 0; scanned < len(r.points) && len(out) < n; {
		i := (start + scanned) % len(r.points)
		// Gather the run of points sharing one hash value and order the
		// run per key by rendezvous score (descending) — the tiebreak.
		run := []int{r.points[i].member}
		j := scanned + 1
		for ; j < len(r.points); j++ {
			k := (start + j) % len(r.points)
			if r.points[k].hash != r.points[i].hash {
				break
			}
			run = append(run, r.points[k].member)
		}
		if len(run) > 1 {
			sort.Slice(run, func(a, b int) bool {
				return r.rendezvous(run[a], key) > r.rendezvous(run[b], key)
			})
		}
		for _, m := range run {
			if len(out) == n {
				break
			}
			add(m)
		}
		scanned = j
	}
	return out
}

// Owner returns just the owning member for key.
func (r *Ring) Owner(key string) Member {
	owners := r.Owners(key, 1)
	return owners[0]
}
