package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"thinslice/internal/artifact"
	"thinslice/internal/budget"
	"thinslice/internal/server"
	"thinslice/internal/session"
)

// ForwardedHeader marks a request that already crossed one hop. A node
// receiving it always serves locally — forwarding is never transitive,
// so routing disagreement during a topology change costs one extra
// hop, never a loop.
const ForwardedHeader = "X-Thinslice-Forwarded"

// maxArtifactBytes bounds one fetched or handed-off artifact record.
const maxArtifactBytes = 64 << 20

// Config tunes one cluster node.
type Config struct {
	// Self names this replica in the topology (required).
	Self string
	// Topology is the shared membership document (required).
	Topology *Topology
	// HedgeAfter is the latency threshold after which a forwarded
	// request gets one hedged attempt at the next preference-list
	// member (default 75ms).
	HedgeAfter time.Duration
	// ForwardTimeout bounds one forwarded request end-to-end,
	// independent of the client's own analysis deadline (default 30s).
	ForwardTimeout time.Duration
	// FetchTimeout bounds one peer artifact fetch (default 2s) — a
	// slow peer must degrade to a local cold build, not stall the
	// pipeline.
	FetchTimeout time.Duration
	// Health tunes the active prober.
	Health HealthConfig
	// Transport is the base RoundTripper for all peer traffic (nil =
	// http.DefaultTransport); the fault layer injects here.
	Transport http.RoundTripper
}

func (c *Config) fillDefaults() {
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 75 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
}

// counters are the node's monotonic cluster metrics.
type counters struct {
	forwards, forwardErrors, hedges, localFallbacks atomic.Int64
	fetchHits, fetchMisses, fetchCorrupt            atomic.Int64
	handoffsSent, handoffsReceived, handoffRejects  atomic.Int64
}

// Node fronts a *server.Server with cluster routing. Build with New,
// serve Handler (or Run), and stop with Stop (graceful, hands warm
// artifacts off) or Kill (abrupt, survivors cold-build).
type Node struct {
	cfg         Config
	srv         *server.Server
	ring        *Ring
	ringMinus   *Ring // topology minus self: where handoffs go
	health      *Health
	client      *http.Client
	fetchClient *http.Client
	mux         *http.ServeMux
	stats       counters

	hs           *http.Server
	healthCancel context.CancelFunc
	serveErr     chan error
	stopped      atomic.Bool
}

// New wires a node in front of srv. The server must have a disk cache
// (cluster mode serves peer fetches and handoffs from it) and must not
// be serving yet: New registers the remote-fetch tier and the /statsz
// cluster section on it.
func New(srv *server.Server, cfg Config) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cluster: config needs a topology")
	}
	if srv.DiskCache() == nil {
		return nil, fmt.Errorf("cluster: server needs a disk cache (set Config.CacheDir); peer fetch and handoff serve from it")
	}
	found := false
	for _, m := range cfg.Topology.Replicas {
		if m.Name == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the topology", cfg.Self)
	}
	ring, err := NewRing(cfg.Topology.Replicas, cfg.Topology.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, srv: srv, ring: ring}
	if len(cfg.Topology.Replicas) > 1 {
		if n.ringMinus, err = ring.Without(cfg.Self); err != nil {
			return nil, err
		}
	}
	peers := make(map[string]string)
	for _, m := range cfg.Topology.Replicas {
		if m.Name != cfg.Self {
			peers[m.Name] = m.Addr
		}
	}
	n.health = NewHealth(peers, cfg.Health, cfg.Transport)
	n.client = &http.Client{Transport: cfg.Transport}
	n.fetchClient = &http.Client{Transport: cfg.Transport}

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("/slice", n.route)
	n.mux.HandleFunc("/batch", n.route)
	n.mux.HandleFunc("/check", n.route)
	n.mux.HandleFunc("/internal/artifact", n.artifactHandler)
	n.mux.Handle("/", srv.Handler())

	srv.SetRemoteFetch(n.remoteFetch)
	srv.SetClusterStats(n.clusterStats)
	return n, nil
}

// Handler returns the node's HTTP handler: cluster routing over the
// analysis endpoints, the internal artifact endpoint, and the wrapped
// server for everything else (/watch is always served locally — a
// full-duplex stream is pinned to the replica that accepted it).
func (n *Node) Handler() http.Handler { return n.mux }

// Health exposes the peer health tracker (tests and /statsz).
func (n *Node) Health() *Health { return n.health }

func (n *Node) clusterStats() server.ClusterStats {
	up, degraded, down := n.health.Counts()
	return server.ClusterStats{
		Self:             n.cfg.Self,
		Members:          len(n.cfg.Topology.Replicas),
		PeersUp:          up,
		PeersDegraded:    degraded,
		PeersDown:        down,
		Forwards:         n.stats.forwards.Load(),
		ForwardErrors:    n.stats.forwardErrors.Load(),
		Hedges:           n.stats.hedges.Load(),
		LocalFallbacks:   n.stats.localFallbacks.Load(),
		PeerFetchHits:    n.stats.fetchHits.Load(),
		PeerFetchMisses:  n.stats.fetchMisses.Load(),
		PeerFetchCorrupt: n.stats.fetchCorrupt.Load(),
		HandoffsSent:     n.stats.handoffsSent.Load(),
		HandoffsReceived: n.stats.handoffsReceived.Load(),
		HandoffRejects:   n.stats.handoffRejects.Load(),
	}
}

// --- routing ---

// route decides where an analysis request runs. Every degradation path
// lands on the local server, whose responses are always typed — a peer
// failure can cost latency, never a 5xx of its own making.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	local := n.srv.Handler()
	if r.Header.Get(ForwardedHeader) != "" || n.srv.Stats().Draining {
		local.ServeHTTP(w, r)
		return
	}
	// Buffer the body (bounded as the server would) so it can be
	// replayed: once to compute the routing key, and once into either
	// the local handler or the forwarded request.
	body, err := io.ReadAll(io.LimitReader(r.Body, n.srv.RequestByteLimit()+1))
	r.Body.Close()
	if err != nil {
		r.Body = io.NopCloser(bytes.NewReader(nil))
		local.ServeHTTP(w, r)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	key := routingKey(body, n.srv.RequestByteLimit())
	if key == "" {
		// Malformed or oversized request: let the local server produce
		// its typed bad_request.
		local.ServeHTTP(w, r)
		return
	}
	targets := n.forwardTargets(key)
	if len(targets) == 0 {
		local.ServeHTTP(w, r)
		return
	}
	res := n.forwardHedged(r.Context(), targets, r.URL.Path, body)
	if res.err != nil {
		// Every candidate peer failed at the transport level. Degrade
		// to a local build — slower, still byte-identical, never a 5xx.
		n.stats.localFallbacks.Add(1)
		r.Body = io.NopCloser(bytes.NewReader(body))
		local.ServeHTTP(w, r)
		return
	}
	n.stats.forwards.Add(1)
	copyResponse(w, res)
}

// routingKey extracts the program content hash from a request body, or
// "" when the body cannot be routed (malformed, oversized, no
// sources) — those requests are answered locally so the server's own
// validation speaks.
func routingKey(body []byte, limit int64) string {
	if int64(len(body)) > limit {
		return ""
	}
	var req struct {
		Sources map[string]string `json:"sources"`
	}
	if err := json.Unmarshal(body, &req); err != nil || len(req.Sources) == 0 {
		return ""
	}
	// The same key the server's breaker uses: the session's content
	// hash over the source set (prelude included), independent of
	// per-request options.
	return string(session.Open(req.Sources).SourceKey())
}

// forwardTargets returns the remote members this node should try, in
// preference order — empty when this node should serve locally (it is
// the healthy owner, or no healthy peer owns the key).
func (n *Node) forwardTargets(key string) []Member {
	owners := n.ring.Owners(key, n.cfg.Topology.Replication)
	candidates := owners[:0:0]
	for _, m := range owners {
		if m.Name == n.cfg.Self {
			// Self is in the preference list: serve locally unless a
			// higher-priority owner is healthy (then candidates already
			// holds it and we forward).
			break
		}
		if n.health.State(m.Name) == Down {
			continue
		}
		candidates = append(candidates, m)
	}
	if len(candidates) > 2 {
		candidates = candidates[:2] // primary plus one hedge target
	}
	return candidates
}

// fwdResult is one forwarded response, buffered whole so a mid-body
// transport failure can still fall back to a local build.
type fwdResult struct {
	status int
	header http.Header
	body   []byte
	err    error
}

func copyResponse(w http.ResponseWriter, res fwdResult) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// forward sends the request to one peer with budget.Retry backoff over
// transport errors. Any HTTP response — including a typed 4xx/5xx — is
// a success to pass through verbatim; only failing to get a response
// at all is retried.
func (n *Node) forward(ctx context.Context, m Member, path string, body []byte) fwdResult {
	var res fwdResult
	transportErr := func(error) bool { return true }
	err := budget.Retry(ctx, budget.RetryConfig{
		MaxAttempts: 2,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Retryable:   transportErr,
	}, func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://"+m.Addr+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, n.cfg.Self)
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		res = fwdResult{status: resp.StatusCode, header: resp.Header, body: data}
		return nil
	})
	if err != nil {
		n.stats.forwardErrors.Add(1)
		n.health.ReportFailure(m.Name, err)
		return fwdResult{err: err}
	}
	n.health.ReportSuccess(m.Name)
	return res
}

// forwardHedged tries targets[0], launching targets[1] (when present)
// either after the hedge latency threshold or immediately once the
// primary fails. First complete response wins; the loser's context is
// cancelled.
func (n *Node) forwardHedged(ctx context.Context, targets []Member, path string, body []byte) fwdResult {
	fctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	results := make(chan fwdResult, len(targets))
	launch := func(i int) {
		go func() { results <- n.forward(fctx, targets[i], path, body) }()
	}
	launch(0)
	launched, failed := 1, 0
	var hedge <-chan time.Time
	if len(targets) > 1 {
		t := time.NewTimer(n.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var lastErr fwdResult
	for {
		select {
		case res := <-results:
			if res.err == nil {
				return res
			}
			failed++
			lastErr = res
			if launched < len(targets) {
				// Primary failed before the hedge fired: escalate now.
				launch(launched)
				launched++
				continue
			}
			if failed == launched {
				return lastErr
			}
		case <-hedge:
			hedge = nil
			if launched < len(targets) {
				n.stats.hedges.Add(1)
				launch(launched)
				launched++
			}
		case <-fctx.Done():
			return fwdResult{err: fctx.Err()}
		}
	}
}

// --- peer artifact fetch ---

// remoteFetch is the session's remote tier: ask the key's other owners
// for the verified artifact record. Every record is CRC-verified
// before the payload is surfaced; a corrupt response is counted and
// the next peer tried — a byzantine peer can cause a miss, never a
// wrong answer.
func (n *Node) remoteFetch(kind string, key session.Key) []byte {
	owners := n.ring.Owners(string(key), n.cfg.Topology.Replication)
	asked := false
	for _, m := range owners {
		if m.Name == n.cfg.Self || n.health.State(m.Name) == Down {
			continue
		}
		asked = true
		if payload := n.fetchFrom(m, kind, string(key)); payload != nil {
			n.stats.fetchHits.Add(1)
			return payload
		}
	}
	if asked {
		n.stats.fetchMisses.Add(1)
	}
	return nil
}

func (n *Node) fetchFrom(m Member, kind, key string) []byte {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.FetchTimeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/internal/artifact?kind=%s&key=%s", m.Addr, kind, key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil
	}
	resp, err := n.fetchClient.Do(req)
	if err != nil {
		n.health.ReportFailure(m.Name, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
	if err != nil || len(data) > maxArtifactBytes {
		return nil
	}
	// End-to-end container verification: magic, versions, kind, key,
	// CRC — all checked before a single payload byte is trusted.
	payload, err := artifact.Decode(data, kind, key)
	if err != nil {
		n.stats.fetchCorrupt.Add(1)
		return nil
	}
	n.health.ReportSuccess(m.Name)
	return payload
}

// --- /internal/artifact: serve fetches, accept handoffs ---

func isHexKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (n *Node) artifactHandler(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	key := r.URL.Query().Get("key")
	if kind == "" || !isHexKey(key) {
		http.Error(w, "kind and hex key required", http.StatusBadRequest)
		return
	}
	disk := n.srv.DiskCache()
	switch r.Method {
	case http.MethodGet:
		rec, recKind, ok := disk.GetRecord(key)
		if !ok || recKind != kind {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(rec)
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
		if err != nil || len(data) > maxArtifactBytes {
			n.stats.handoffRejects.Add(1)
			http.Error(w, "oversized or unreadable record", http.StatusBadRequest)
			return
		}
		// Re-verify the full container against the claimed identity
		// before anything touches the local tier.
		payload, err := artifact.Decode(data, kind, key)
		if err != nil {
			n.stats.handoffRejects.Add(1)
			http.Error(w, "record failed verification: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := disk.Put(kind, key, payload); err != nil {
			http.Error(w, "store failed", http.StatusInsufficientStorage)
			return
		}
		n.stats.handoffsReceived.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT required", http.StatusMethodNotAllowed)
	}
}

// --- warm handoff ---

// Handoff streams every local artifact to its new owner under the
// topology minus this node — the graceful half of a topology change.
// Bounded by ctx; artifacts that fail to transfer are simply cold for
// the survivors.
func (n *Node) Handoff(ctx context.Context) {
	if n.ringMinus == nil {
		return // single-node topology: nowhere to hand off to
	}
	disk := n.srv.DiskCache()
	for _, key := range disk.Keys() {
		if ctx.Err() != nil {
			return
		}
		rec, kind, ok := disk.GetRecord(key)
		if !ok {
			continue // evicted or quarantined since the snapshot
		}
		for _, m := range n.ringMinus.Owners(key, n.cfg.Topology.Replication) {
			if n.health.State(m.Name) == Down {
				continue
			}
			if n.handoffTo(ctx, m, kind, key, rec) {
				n.stats.handoffsSent.Add(1)
				break
			}
		}
	}
}

func (n *Node) handoffTo(ctx context.Context, m Member, kind, key string, rec []byte) bool {
	url := fmt.Sprintf("http://%s/internal/artifact?kind=%s&key=%s", m.Addr, kind, key)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(rec))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.client.Do(req)
	if err != nil {
		n.health.ReportFailure(m.Name, err)
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent
}

// --- lifecycle ---

// Start begins serving ln and probing peers. Use Stop or Kill to end.
func (n *Node) Start(ln net.Listener) {
	hctx, cancel := context.WithCancel(context.Background())
	n.healthCancel = cancel
	n.health.Start(hctx)
	n.hs = &http.Server{Handler: n.Handler()}
	n.serveErr = make(chan error, 1)
	go func() { n.serveErr <- n.hs.Serve(ln) }()
}

// Stop drains gracefully: the wrapped server stops admitting work,
// warm artifacts stream to their new owners, and in-flight requests
// finish — all bounded by ctx.
func (n *Node) Stop(ctx context.Context) error {
	if !n.stopped.CompareAndSwap(false, true) {
		return nil
	}
	n.srv.StartDrain()
	n.Handoff(ctx)
	err := n.hs.Shutdown(ctx)
	n.healthCancel()
	<-n.serveErr
	return err
}

// Kill is the abrupt death used by the soak tests: active connections
// are torn down mid-flight, nothing is handed off. Survivors observe
// transport errors, mark the peer down, and cold-build its programs.
func (n *Node) Kill() {
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	n.healthCancel()
	n.hs.Close()
	<-n.serveErr
}

// Run serves until ctx is cancelled, then drains via Stop with
// drainTimeout as the bound. The cmd serve -cluster path.
func (n *Node) Run(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	n.Start(ln)
	select {
	case err := <-n.serveErr:
		n.healthCancel()
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := n.Stop(sctx)
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
