// Package sdg builds the context-insensitive dependence graph variant
// of paper §5.2. Nodes are (instruction, call-graph-context) pairs:
// like WALA, the graph contains one copy of a method's statements per
// call graph node, so the object-sensitive cloning of container classes
// performed by the pointer analysis (paper §6.1) is visible to the
// slicers. Edges carry the classification thin slicing needs —
// producer flow, base-pointer flow, heap flow (direct store→load edges
// justified by the points-to analysis), parameter/return flow, and
// control dependence.
//
// Following §5.2, heap dependences are direct interprocedural edges
// from stores to may-aliased loads, avoiding the heap parameters that
// make the context-sensitive SDG (§5.3, package csslice) blow up.
package sdg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"thinslice/internal/analysis/cdg"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
)

// EdgeKind classifies a dependence edge.
type EdgeKind int

// Edge kinds. Thin slices traverse Local/Heap/Param/Return flow;
// traditional slices additionally traverse Base flow and control.
const (
	// EdgeLocal is intraprocedural SSA def-use flow into a producer
	// (or branch-condition) operand.
	EdgeLocal EdgeKind = iota
	// EdgeBase is def-use flow into a base-pointer or array-index
	// operand: a "base pointer flow dependence" (paper §3), ignored by
	// thin slicing.
	EdgeBase
	// EdgeHeap is a direct store→load edge between may-aliased heap
	// accesses (producer flow through the heap).
	EdgeHeap
	// EdgeParam is actual-argument → formal-parameter flow; Via names
	// the call site, which is itself a producer statement.
	EdgeParam
	// EdgeReturn is return-value → call-result flow.
	EdgeReturn
	// EdgeControl is intraprocedural control dependence on a branch.
	EdgeControl
	// EdgeCallControl makes callee statements that always execute on
	// entry control dependent on the call sites of their method.
	EdgeCallControl
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeLocal:
		return "local"
	case EdgeBase:
		return "base"
	case EdgeHeap:
		return "heap"
	case EdgeParam:
		return "param"
	case EdgeReturn:
		return "return"
	case EdgeControl:
		return "control"
	case EdgeCallControl:
		return "call-control"
	}
	return "?"
}

// IsProducerFlow reports whether edges of kind k carry producer value
// flow (the edges a thin slice follows).
func (k EdgeKind) IsProducerFlow() bool {
	switch k {
	case EdgeLocal, EdgeHeap, EdgeParam, EdgeReturn:
		return true
	}
	return false
}

// IsControl reports whether k is a control dependence kind.
func (k EdgeKind) IsControl() bool {
	return k == EdgeControl || k == EdgeCallControl
}

// Node identifies one statement instance: an instruction in a
// particular call-graph context.
type Node int32

// NoNode is the absent-node sentinel (e.g. Dep.Via on non-param edges).
const NoNode Node = -1

// Dep is one incoming dependence of a node: the node depends on Src.
// Via is the call-site node mediating param flow (itself part of the
// producer chain), or NoNode.
type Dep struct {
	Src  Node
	Kind EdgeKind
	Via  Node
}

// Graph is the dependence graph, stored as in-edges per node.
type Graph struct {
	Prog *ir.Program
	Pts  *pointsto.Result

	// Truncated reports that construction stopped at the edge budget:
	// the node set is complete but some dependence edges are missing,
	// so slices over this graph may be under-approximate. LimitErr
	// carries the triggering *budget.ErrExhausted.
	Truncated bool
	LimitErr  error

	bud      *budget.Budget
	meter    *budget.Meter
	stop     error
	deps     [][]Dep
	mctxs    []*pointsto.MCtx
	base     map[*pointsto.MCtx]int32 // first node of each context
	nodeCtx  []*pointsto.MCtx         // dense: node → context (one entry per node)
	firstID  map[*ir.Method]int       // first instruction ID of each method
	numEdges int
	// callerNodes are the call-site nodes that may invoke a context.
	callerNodes map[*pointsto.MCtx][]Node
}

// NumNodes returns the number of statement instances (the paper's
// "SDG Statements": scalar statements across call-graph clones,
// without heap parameters).
func (g *Graph) NumNodes() int { return len(g.nodeCtx) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Deps returns the dependences of node n.
func (g *Graph) Deps(n Node) []Dep { return g.deps[n] }

// CtxOf returns the call-graph context of n.
func (g *Graph) CtxOf(n Node) *pointsto.MCtx { return g.nodeCtx[n] }

// InstrOf returns the instruction of n.
func (g *Graph) InstrOf(n Node) ir.Instr {
	mc := g.nodeCtx[n]
	local := int(n) - int(g.base[mc])
	return g.Prog.InstrByID(g.firstID[mc.Method] + local)
}

// NodeOf returns the node for an instruction in a specific context.
func (g *Graph) NodeOf(mc *pointsto.MCtx, ins ir.Instr) Node {
	return Node(int(g.base[mc]) + ins.ID() - g.firstID[ins.Block().Method])
}

// NodesOf returns all statement instances of an instruction (one per
// context its method was analyzed under).
func (g *Graph) NodesOf(ins ir.Instr) []Node {
	m := ins.Block().Method
	var out []Node
	for _, mc := range g.Pts.MCtxsOf(m) {
		out = append(out, g.NodeOf(mc, ins))
	}
	return out
}

// Reachable reports whether m has at least one analyzed context.
func (g *Graph) Reachable(m *ir.Method) bool {
	return len(g.Pts.MCtxsOf(m)) > 0
}

// CallerNodes returns the call-site nodes that may invoke context mc.
func (g *Graph) CallerNodes(mc *pointsto.MCtx) []Node { return g.callerNodes[mc] }

// Fingerprint returns a sha256 digest of the graph's full structure —
// every node's ordered dependence list, the per-context caller-node
// lists, and the edge count. Two builds of the same program (sequential
// or parallel, any worker count) must produce identical fingerprints;
// the equivalence tests pin exactly that.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	buf := make([]byte, 8)
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		h.Write(buf)
	}
	wr(int64(len(g.nodeCtx)))
	wr(int64(g.numEdges))
	for n := range g.nodeCtx {
		deps := g.deps[n]
		wr(int64(len(deps)))
		for _, d := range deps {
			wr(int64(d.Src))
			wr(int64(d.Kind))
			wr(int64(d.Via))
		}
	}
	for _, mc := range g.mctxs {
		callers := g.callerNodes[mc]
		wr(int64(len(callers)))
		for _, c := range callers {
			wr(int64(c))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

type heapAccess struct {
	node Node
	objs []int // sorted object IDs of the base pointer in this context
}

// heapIndex collects the heap accesses discovered during the scan
// phase, keyed so the pairing phase can match stores to may-aliased
// loads. Accesses are appended in deterministic (context, instruction)
// order; the pairing phase relies on that order for reproducible edge
// lists.
type heapIndex struct {
	fieldStores  map[string][]heapAccess
	fieldLoads   map[string][]heapAccess
	elemStores   []heapAccess
	elemLoads    []heapAccess
	lenReads     []heapAccess
	staticStores map[string][]Node
	staticLoads  map[string][]Node
}

func newHeapIndex() *heapIndex {
	return &heapIndex{
		fieldStores:  make(map[string][]heapAccess),
		fieldLoads:   make(map[string][]heapAccess),
		staticStores: make(map[string][]Node),
		staticLoads:  make(map[string][]Node),
	}
}

// merge appends o's accesses after h's. Called in context order by the
// parallel build, this reproduces the sequential append order exactly.
func (h *heapIndex) merge(o *heapIndex) {
	for k, v := range o.fieldStores {
		h.fieldStores[k] = append(h.fieldStores[k], v...)
	}
	for k, v := range o.fieldLoads {
		h.fieldLoads[k] = append(h.fieldLoads[k], v...)
	}
	h.elemStores = append(h.elemStores, o.elemStores...)
	h.elemLoads = append(h.elemLoads, o.elemLoads...)
	h.lenReads = append(h.lenReads, o.lenReads...)
	for k, v := range o.staticStores {
		h.staticStores[k] = append(h.staticStores[k], v...)
	}
	for k, v := range o.staticLoads {
		h.staticLoads[k] = append(h.staticLoads[k], v...)
	}
}

// scanEmit sinks one context's scan-phase discoveries. The sequential
// build writes straight into the graph (ticking the shared budget per
// edge); the parallel build records into per-context buffers that are
// merged in context order afterwards.
type scanEmit struct {
	// tick is called once per instruction; returning false stops the
	// scan of the remaining instructions.
	tick func() bool
	// dep adds one dependence edge.
	dep func(to Node, d Dep)
	// caller records a call-site node that may invoke callee.
	caller func(callee *pointsto.MCtx, n Node)
	heap   *heapIndex
}

// Build constructs the dependence graph over the contexts reachable in
// pts, unbounded.
func Build(prog *ir.Program, pts *pointsto.Result) *Graph {
	g, err := BuildBudget(prog, pts, nil)
	if err != nil {
		// Unreachable: a nil budget cannot be canceled or exhausted.
		panic(err)
	}
	return g
}

// BuildBudget constructs the dependence graph under a budget
// (PhaseSDG, one step per instruction scanned or edge added). A
// canceled context or passed deadline aborts with *budget.ErrCanceled;
// an exhausted step cap returns the partial graph flagged Truncated
// with a nil error — all nodes present, some edges missing.
func BuildBudget(prog *ir.Program, pts *pointsto.Result, b *budget.Budget) (*Graph, error) {
	return BuildWorkers(prog, pts, b, 1)
}

// BuildWorkers is BuildBudget with construction spread over up to
// workers goroutines (workers < 1 selects GOMAXPROCS). The three
// construction phases parallelize independently — per-context scans
// are buffered and merged in context order, heap pairing fans out over
// node-disjoint access groups, and control dependences fan out per
// context — so a completed parallel build is byte-identical to the
// sequential one. A step-capped budget forces workers = 1: truncation
// must stop at the same deterministic point the sequential build
// stops at, which requires the sequential tick interleaving. Workers
// draw per-goroutine meters from the budget, so cancellation and
// deadlines are still honored promptly on the parallel path.
func BuildWorkers(prog *ir.Program, pts *pointsto.Result, b *budget.Budget, workers int) (*Graph, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && b.Limited(budget.PhaseSDG) {
		workers = 1
	}
	g := &Graph{
		Prog:        prog,
		Pts:         pts,
		bud:         b,
		meter:       b.Phase(budget.PhaseSDG),
		base:        make(map[*pointsto.MCtx]int32),
		firstID:     make(map[*ir.Method]int),
		callerNodes: make(map[*pointsto.MCtx][]Node),
	}
	for _, m := range prog.Methods {
		first := -1
		m.Instrs(func(ins ir.Instr) {
			if first < 0 {
				first = ins.ID()
			}
		})
		g.firstID[m] = first
	}
	g.mctxs = pts.MCtxs()
	total := 0
	for _, mc := range g.mctxs {
		g.base[mc] = int32(total)
		n := 0
		mc.Method.Instrs(func(ir.Instr) { n++ })
		total += n
		for i := 0; i < n; i++ {
			g.nodeCtx = append(g.nodeCtx, mc)
		}
	}
	g.deps = make([][]Dep, total)

	if workers <= 1 {
		return g.buildSequential()
	}
	return g.buildParallel(workers)
}

// scanCtx performs the per-context scan phase: intraprocedural def-use
// edges, heap-access collection, and call linking.
func (g *Graph) scanCtx(mc *pointsto.MCtx, em scanEmit) {
	objIDs := func(r *ir.Reg) []int {
		objs := g.Pts.PointsToIn(r, mc)
		ids := make([]int, len(objs))
		for i, o := range objs {
			ids[i] = o.ID
		}
		sort.Ints(ids)
		return ids
	}
	mc.Method.Instrs(func(ins ir.Instr) {
		if !em.tick() {
			return
		}
		node := g.NodeOf(mc, ins)
		// Local/base def-use edges from operand definitions. Call
		// operands are excluded: argument flow reaches the callee's
		// formal parameters via EdgeParam, and the call node itself
		// only receives EdgeReturn flow — following the SDG shape,
		// where a call result does not directly depend on the
		// arguments in the caller.
		if _, isCall := ins.(*ir.Call); !isCall {
			uses := ins.Uses()
			roles := ins.UseRoles()
			for i, u := range uses {
				if u.Def == nil {
					continue
				}
				kind := EdgeLocal
				if roles[i] == ir.RoleBase {
					kind = EdgeBase
				}
				em.dep(node, Dep{Src: g.NodeOf(mc, u.Def), Kind: kind, Via: NoNode})
			}
		}
		switch ins := ins.(type) {
		case *ir.SetField:
			em.heap.fieldStores[ins.Field.QualifiedName()] = append(
				em.heap.fieldStores[ins.Field.QualifiedName()], heapAccess{node, objIDs(ins.Obj)})
		case *ir.GetField:
			em.heap.fieldLoads[ins.Field.QualifiedName()] = append(
				em.heap.fieldLoads[ins.Field.QualifiedName()], heapAccess{node, objIDs(ins.Obj)})
		case *ir.ArrayStore:
			em.heap.elemStores = append(em.heap.elemStores, heapAccess{node, objIDs(ins.Arr)})
		case *ir.ArrayLoad:
			em.heap.elemLoads = append(em.heap.elemLoads, heapAccess{node, objIDs(ins.Arr)})
		case *ir.ArrayLen:
			em.heap.lenReads = append(em.heap.lenReads, heapAccess{node, objIDs(ins.Arr)})
		case *ir.SetStatic:
			em.heap.staticStores[ins.Field.QualifiedName()] = append(em.heap.staticStores[ins.Field.QualifiedName()], node)
		case *ir.GetStatic:
			em.heap.staticLoads[ins.Field.QualifiedName()] = append(em.heap.staticLoads[ins.Field.QualifiedName()], node)
		case *ir.Call:
			g.linkCall(mc, node, ins, em)
		}
	})
}

// lenDeps returns the heap edges of one array-length read: the
// allocation sites of its may-pointees, across every context instance
// of the allocation (the object's heap context names the allocating
// container context only indirectly).
func (g *Graph) lenDeps(lr heapAccess, add func(to Node, d Dep)) {
	seen := make(map[Node]bool)
	for _, id := range lr.objs {
		o := g.Pts.Objects()[id]
		if !o.IsArray() {
			continue
		}
		for _, src := range g.NodesOf(o.Site) {
			if !seen[src] {
				seen[src] = true
			add(lr.node, Dep{Src: src, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
}

// controlCtx adds one context's control dependence edges using the
// method's (shared, immutable) intraprocedural CDG.
func (g *Graph) controlCtx(mc *pointsto.MCtx, cg *cdg.Graph, add func(to Node, d Dep)) {
	callers := g.callerNodes[mc]
	mc.Method.Instrs(func(ins ir.Instr) {
		node := g.NodeOf(mc, ins)
		for _, br := range cg.InstrDeps(ins) {
			if br != ins {
				add(node, Dep{Src: g.NodeOf(mc, br), Kind: EdgeControl, Via: NoNode})
			}
		}
		if cg.DependsOnEntry(ins) {
			for _, caller := range callers {
				add(node, Dep{Src: caller, Kind: EdgeCallControl, Via: NoNode})
			}
		}
	})
}

// buildSequential is the reference construction: one goroutine, every
// step ticking the shared meter, deterministic truncation on an
// exhausted step cap.
func (g *Graph) buildSequential() (*Graph, error) {
	h := newHeapIndex()
	em := scanEmit{
		tick: g.tick,
		dep:  g.addDep,
		caller: func(callee *pointsto.MCtx, n Node) {
			g.callerNodes[callee] = append(g.callerNodes[callee], n)
		},
		heap: h,
	}
	for _, mc := range g.mctxs {
		if g.stop != nil {
			break
		}
		g.scanCtx(mc, em)
	}

	// Heap edges: store→load when the base points-to sets (in the
	// respective contexts) intersect. These pairings are the graph's
	// quadratic hot spot, so each candidate load ticks the budget.
	for fname, loads := range h.fieldLoads {
		if g.stop != nil {
			break
		}
		for _, ld := range loads {
			if !g.tick() {
				break
			}
			for _, st := range h.fieldStores[fname] {
				if intersects(ld.objs, st.objs) {
					g.addDep(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
				}
			}
		}
	}
	for _, ld := range h.elemLoads {
		if !g.tick() {
			break
		}
		for _, st := range h.elemStores {
			if intersects(ld.objs, st.objs) {
				g.addDep(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
	for _, lr := range h.lenReads {
		if g.stop != nil {
			break
		}
		g.lenDeps(lr, g.addDep)
	}
	// Static fields are single global locations: every store reaches
	// every load of the same field.
	for fname, loads := range h.staticLoads {
		if g.stop != nil {
			break
		}
		for _, ld := range loads {
			for _, st := range h.staticStores[fname] {
				g.addDep(ld, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}

	// Control dependence edges (intraprocedural graphs are shared
	// across contexts; edges are added per context instance).
	cdgCache := make(map[*ir.Method]*cdg.Graph)
	for _, mc := range g.mctxs {
		if g.stop != nil {
			break
		}
		cg := cdgCache[mc.Method]
		if cg == nil {
			cg = cdg.Build(mc.Method)
			cdgCache[mc.Method] = cg
		}
		g.controlCtx(mc, cg, g.addDep)
	}
	if g.stop != nil {
		if budget.IsCanceled(g.stop) {
			return nil, g.stop
		}
		g.Truncated = true
		g.LimitErr = g.stop
	}
	return g, nil
}

// depAdd is one buffered edge addition of the parallel scan phase.
type depAdd struct {
	to Node
	d  Dep
}

// callerAdd is one buffered caller-node record of the parallel scan.
type callerAdd struct {
	callee *pointsto.MCtx
	node   Node
}

// ctxScan is the buffered outcome of scanning one context.
type ctxScan struct {
	deps    []depAdd
	callers []callerAdd
	heap    *heapIndex
}

// buildParallel runs the three construction phases over a bounded
// worker pool. Only cancellation/deadline errors can occur here (step
// caps force the sequential path), so an error aborts the whole build.
func (g *Graph) buildParallel(workers int) (*Graph, error) {
	// Phase 1: scan contexts into per-context buffers.
	scans := make([]*ctxScan, len(g.mctxs))
	err := g.forEach(workers, len(g.mctxs), func(m *budget.Meter, i int) error {
		mc := g.mctxs[i]
		cs := &ctxScan{heap: newHeapIndex()}
		var stopErr error
		g.scanCtx(mc, scanEmit{
			tick: func() bool {
				if stopErr != nil {
					return false
				}
				if err := m.Tick(); err != nil {
					stopErr = err
					return false
				}
				return true
			},
			dep:    func(to Node, d Dep) { cs.deps = append(cs.deps, depAdd{to, d}) },
			caller: func(callee *pointsto.MCtx, n Node) { cs.callers = append(cs.callers, callerAdd{callee, n}) },
			heap:   cs.heap,
		})
		scans[i] = cs
		return stopErr
	})
	if err != nil {
		return nil, err
	}
	// Merge in context order: replays the sequential addDep order.
	h := newHeapIndex()
	for _, cs := range scans {
		for _, da := range cs.deps {
			g.deps[da.to] = append(g.deps[da.to], da.d)
		}
		for _, ca := range cs.callers {
			g.callerNodes[ca.callee] = append(g.callerNodes[ca.callee], ca.node)
		}
		h.merge(cs.heap)
	}

	// Phase 2: heap pairing over node-disjoint access groups. Each
	// group owns its load nodes exclusively (an instruction accesses
	// exactly one field), so tasks append to disjoint g.deps rows.
	var tasks []func(m *budget.Meter) error
	for _, fname := range sortedKeys(h.fieldLoads) {
		loads, stores := h.fieldLoads[fname], h.fieldStores[fname]
		tasks = append(tasks, func(m *budget.Meter) error {
			for _, ld := range loads {
				if err := m.Tick(); err != nil {
					return err
				}
				for _, st := range stores {
					if intersects(ld.objs, st.objs) {
						g.deps[ld.node] = append(g.deps[ld.node], Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
					}
				}
			}
			return nil
		})
	}
	tasks = append(tasks, func(m *budget.Meter) error {
		for _, ld := range h.elemLoads {
			if err := m.Tick(); err != nil {
				return err
			}
			for _, st := range h.elemStores {
				if intersects(ld.objs, st.objs) {
					g.deps[ld.node] = append(g.deps[ld.node], Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
				}
			}
		}
		return nil
	})
	tasks = append(tasks, func(m *budget.Meter) error {
		for _, lr := range h.lenReads {
			if err := m.Tick(); err != nil {
				return err
			}
			g.lenDeps(lr, func(to Node, d Dep) { g.deps[to] = append(g.deps[to], d) })
		}
		return nil
	})
	for _, fname := range sortedKeys(h.staticLoads) {
		loads, stores := h.staticLoads[fname], h.staticStores[fname]
		tasks = append(tasks, func(m *budget.Meter) error {
			if err := m.Err(); err != nil {
				return err
			}
			for _, ld := range loads {
				for _, st := range stores {
					g.deps[ld] = append(g.deps[ld], Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
				}
			}
			return nil
		})
	}
	if err := g.forEach(workers, len(tasks), func(m *budget.Meter, i int) error {
		return tasks[i](m)
	}); err != nil {
		return nil, err
	}

	// Phase 3: control dependences. Intraprocedural CDGs first (one
	// per method, in first-context order), then per-context edges;
	// each context appends only to its own nodes' rows.
	var methods []*ir.Method
	cdgOf := make(map[*ir.Method]*cdg.Graph)
	for _, mc := range g.mctxs {
		if _, ok := cdgOf[mc.Method]; !ok {
			cdgOf[mc.Method] = nil
			methods = append(methods, mc.Method)
		}
	}
	cgs := make([]*cdg.Graph, len(methods))
	if err := g.forEach(workers, len(methods), func(m *budget.Meter, i int) error {
		if err := m.Err(); err != nil {
			return err
		}
		cgs[i] = cdg.Build(methods[i])
		return nil
	}); err != nil {
		return nil, err
	}
	for i, m := range methods {
		cdgOf[m] = cgs[i]
	}
	if err := g.forEach(workers, len(g.mctxs), func(m *budget.Meter, i int) error {
		if err := m.Err(); err != nil {
			return err
		}
		mc := g.mctxs[i]
		g.controlCtx(mc, cdgOf[mc.Method], func(to Node, d Dep) { g.deps[to] = append(g.deps[to], d) })
		return nil
	}); err != nil {
		return nil, err
	}

	g.numEdges = 0
	for _, deps := range g.deps {
		g.numEdges += len(deps)
	}
	return g, nil
}

// forEach runs f(meter, i) for i in [0,n) over a bounded worker pool.
// Each worker draws its own budget meter (shared meters are not
// goroutine-safe); the first error aborts the pool and is returned.
// A worker panic is re-raised on the calling goroutine so the facade's
// recover boundary still converts it to a typed internal error.
func (g *Graph) forEach(workers, n int, f func(m *budget.Meter, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		panicV any
		halt   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicV == nil {
						panicV = r
					}
					mu.Unlock()
					halt.Store(true)
				}
			}()
			m := g.bud.Phase(budget.PhaseSDG)
			for !halt.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(m, i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					halt.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return first
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// tick spends one construction step; once the budget fails the graph
// stops growing (sticky), and Build interprets the violation.
func (g *Graph) tick() bool {
	if g.stop != nil {
		return false
	}
	if err := g.meter.Tick(); err != nil {
		g.stop = err
		return false
	}
	return true
}

func (g *Graph) addDep(to Node, d Dep) {
	if !g.tick() {
		return
	}
	g.deps[to] = append(g.deps[to], d)
	g.numEdges++
}

// linkCall adds parameter and return edges for every callee context of
// a call site in a caller context.
func (g *Graph) linkCall(caller *pointsto.MCtx, callNode Node, call *ir.Call, em scanEmit) {
	for _, callee := range g.Pts.CalleesAt(call, caller) {
		em.caller(callee, callNode)
		params := callee.Method.Params
		offset := 0
		if !callee.Method.Sig.Static {
			offset = 1
			if call.Recv != nil && call.Recv.Def != nil {
				em.dep(g.NodeOf(callee, params[0]),
					Dep{Src: g.NodeOf(caller, call.Recv.Def), Kind: EdgeParam, Via: callNode})
			}
		}
		for i, arg := range call.Args {
			if i+offset >= len(params) {
				break
			}
			if arg.Def != nil {
				em.dep(g.NodeOf(callee, params[i+offset]),
					Dep{Src: g.NodeOf(caller, arg.Def), Kind: EdgeParam, Via: callNode})
			}
		}
		if call.Dst != nil {
			callee.Method.Instrs(func(ins ir.Instr) {
				if ret, ok := ins.(*ir.Return); ok && ret.Val != nil {
					em.dep(callNode, Dep{Src: g.NodeOf(callee, ret), Kind: EdgeReturn, Via: NoNode})
				}
			})
		}
	}
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
